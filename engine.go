package daesim

import (
	"context"
	"errors"
	"sync"

	"repro/internal/runner"
)

// EngineOpts configures an Engine.
type EngineOpts struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS). The bound
	// is global across every Run/RunBatch call sharing the Engine.
	Workers int
	// Parallel, when > 1, lets eligible multi-core requests run their
	// cores on up to Parallel goroutines in deterministic epochs, with
	// the workers budgeted from the same global Workers semaphore (see
	// runner.Options.Parallel). Results — and request hashes, and cache
	// entries — are bit-identical to serial execution.
	Parallel int
	// CacheDir enables the on-disk result cache tier ("" = in-memory
	// only). The directory is shared with dae-sweep/dae-sim -cache:
	// entries are one JSON file per Request hash, so results computed by
	// any of them serve the others.
	CacheDir string
	// SnapshotEvery is the progress-snapshot cadence in graduated
	// instructions (<= 0 applies the simulator default of 100k).
	SnapshotEvery int64
}

// Stats counts an Engine's lifetime activity: fresh simulations, cache
// hits (memory, disk, or deduplicated in-flight runs), failures, and
// cache write errors.
type Stats = runner.Stats

// ProgressEvent distinguishes the two kinds of Progress.
type ProgressEvent string

// Progress event kinds.
const (
	// ProgressSnapshot is a periodic in-run snapshot of an executing
	// simulation.
	ProgressSnapshot ProgressEvent = "snapshot"
	// ProgressDone reports one finished request (fresh, cached or
	// failed) with the Engine's cache-stats snapshot.
	ProgressDone ProgressEvent = "done"
)

// Progress is one event on an Engine's progress stream (see Watch).
type Progress struct {
	Event ProgressEvent `json:"event"`
	// Label and Hash identify the request.
	Label string `json:"label"`
	Hash  string `json:"hash,omitempty"`
	// Phase, Graduated, TargetInsts, Cycles and TotalCycles describe an
	// executing run (ProgressSnapshot; Graduated/Cycles count within the
	// current phase window).
	Phase       string `json:"phase,omitempty"`
	Graduated   int64  `json:"graduated,omitempty"`
	TargetInsts int64  `json:"targetInsts,omitempty"`
	Cycles      int64  `json:"cycles,omitempty"`
	TotalCycles int64  `json:"totalCycles,omitempty"`
	// Done/Total position the finished request within its batch, and
	// Cached/Err describe its outcome (ProgressDone).
	Done   int   `json:"done,omitempty"`
	Total  int   `json:"total,omitempty"`
	Cached bool  `json:"cached,omitempty"`
	Err    error `json:"-"`
	// Error carries Err's message for serialized streams (dae-serve's
	// /v1/runs/{hash}/events endpoint marshals Progress verbatim; error
	// values themselves do not round-trip through JSON).
	Error string `json:"error,omitempty"`
	// Stats is the Engine's lifetime cache-stats snapshot (ProgressDone).
	Stats Stats `json:"stats,omitzero"`
}

// RunResult is one request's outcome in a RunBatch. Results align with
// the request slice: results[i] belongs to reqs[i] (normalized).
type RunResult struct {
	// Request is the normalized request.
	Request Request
	// Hash is the request's content hash ("" when validation failed
	// before hashing).
	Hash string
	// Report is valid when Err is nil.
	Report Report
	// Cached reports whether Report came from the cache (memory, disk,
	// or a deduplicated concurrent run) rather than a fresh simulation.
	Cached bool
	Err    error
}

// Engine executes Requests: it validates them up front, consults the
// two-level result cache, deduplicates identical in-flight Requests so
// concurrent clients share one simulation, bounds concurrency with a
// global worker semaphore, and persists every fresh result the moment
// it completes (when a cache directory is configured). An Engine is safe
// for concurrent use and is intended to be shared — dae-serve runs one
// Engine for all of its HTTP traffic.
type Engine struct {
	r *runner.Runner

	mu      sync.Mutex
	subs    map[int]chan Progress
	nextSub int
}

// NewEngine builds an Engine.
func NewEngine(opts EngineOpts) (*Engine, error) {
	e := &Engine{subs: make(map[int]chan Progress)}
	r, err := runner.New(runner.Options{
		Workers:       opts.Workers,
		Parallel:      opts.Parallel,
		CacheDir:      opts.CacheDir,
		SnapshotEvery: opts.SnapshotEvery,
		OnProgress: func(p runner.Progress) {
			errMsg := ""
			if p.Err != nil {
				errMsg = p.Err.Error()
			}
			e.publish(Progress{
				Event:  ProgressDone,
				Label:  p.Job.Key,
				Hash:   p.Hash,
				Done:   p.Done,
				Total:  p.Total,
				Cached: p.Cached,
				Err:    p.Err,
				Error:  errMsg,
				Stats:  e.Stats(),
			})
		},
		OnSnapshot: func(s runner.Snapshot) {
			e.publish(Progress{
				Event:       ProgressSnapshot,
				Label:       s.Job.Key,
				Hash:        s.Hash,
				Phase:       s.Sim.Phase,
				Graduated:   s.Sim.Graduated,
				TargetInsts: s.Sim.TargetInsts,
				Cycles:      s.Sim.Cycles,
				TotalCycles: s.Sim.TotalCycles,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	e.r = r
	return e, nil
}

// Run executes one Request and returns its Report. Identical concurrent
// Requests (same Hash) execute the simulation once — later callers wait
// for the first and share its result — and previously computed results
// are served from the cache without simulating. Cancelling ctx aborts
// the run promptly and returns ctx's error; aborted runs are never
// cached.
func (e *Engine) Run(ctx context.Context, req Request) (Report, error) {
	req = req.Normalized()
	if err := req.Validate(); err != nil {
		return Report{}, err
	}
	results, _ := e.r.RunContext(ctx, []runner.Job{req.job()})
	res := results[0]
	if res.Err != nil {
		// Surface the caller's own cancellation as the bare context
		// error, the contract ctx-aware callers test with ==.
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(res.Err, ctxErr) {
			return Report{}, ctxErr
		}
		return Report{}, res.Err
	}
	return res.Report, nil
}

// RunBatch executes every Request of a batch and returns one RunResult
// per request, in request order. Failures never abort the batch; the
// returned error (a *BatchError, nil when everything succeeded)
// aggregates them. Requests duplicated within the batch — or already
// cached, or identical to anything else in flight on the Engine —
// simulate once.
func (e *Engine) RunBatch(ctx context.Context, reqs []Request) ([]RunResult, error) {
	out := make([]RunResult, len(reqs))
	jobs := make([]runner.Job, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, rq := range reqs {
		rq = rq.Normalized()
		out[i].Request = rq
		if err := rq.Validate(); err != nil {
			out[i].Err = err
			continue
		}
		jobs = append(jobs, rq.job())
		idx = append(idx, i)
	}
	// Per-job failures are carried in the results; the aggregate error is
	// rebuilt below so it also covers validation failures.
	results, _ := e.r.RunContext(ctx, jobs)
	for k, res := range results {
		i := idx[k]
		out[i].Hash = res.Hash
		out[i].Report = res.Report
		out[i].Cached = res.Cached
		out[i].Err = res.Err
	}
	var batchErr *BatchError
	for _, res := range out {
		if res.Err != nil {
			if batchErr == nil {
				batchErr = &BatchError{Total: len(reqs)}
			}
			batchErr.Errors = append(batchErr.Errors, res.Err)
		}
	}
	if batchErr != nil {
		return out, batchErr
	}
	return out, nil
}

// Lookup returns the cached Report for a Request content hash without
// executing anything: the read-only path behind dae-serve's GET
// endpoint.
func (e *Engine) Lookup(hash string) (Report, bool) {
	return e.r.Lookup(hash)
}

// Stats returns a snapshot of the Engine's lifetime counters.
func (e *Engine) Stats() Stats {
	return e.r.Stats()
}

// Watch subscribes to the Engine's progress stream: periodic
// ProgressSnapshot events from every executing simulation (graduated
// instructions, cycles) and a ProgressDone event per finished request
// (with cache-stats snapshots). The channel's buffer holds buf events
// (minimum 16); events beyond a full buffer are dropped rather than
// slowing the simulation. The returned stop function unsubscribes and
// closes the channel; it must be called exactly once.
func (e *Engine) Watch(buf int) (<-chan Progress, func()) {
	if buf < 16 {
		buf = 16
	}
	ch := make(chan Progress, buf)
	e.mu.Lock()
	id := e.nextSub
	e.nextSub++
	e.subs[id] = ch
	e.mu.Unlock()
	stop := func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(ch)
		}
	}
	return ch, stop
}

// WatchHash subscribes to one request's slice of the progress stream:
// the returned channel relays only events whose Hash matches, and is
// closed after relaying that request's ProgressDone event — the
// subscription ends itself when the run does. This is the plumbing
// behind dae-serve's GET /v1/runs/{hash}/events stream: one HTTP client
// watches one run to completion without filtering the full firehose.
//
// Like Watch, events are dropped rather than allowed to slow the
// simulation when the consumer lags (buf is the channel buffer, minimum
// 16). The returned stop function unsubscribes early; it is safe to call
// even after the channel has closed itself.
func (e *Engine) WatchHash(hash string, buf int) (<-chan Progress, func()) {
	if buf < 16 {
		buf = 16
	}
	in, stopIn := e.Watch(buf)
	out := make(chan Progress, buf)
	stopped := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			stopIn() // closes in, ending the relay goroutine
			close(stopped)
		})
	}
	go func() {
		defer close(out)
		defer stop()
		for p := range in {
			if p.Hash != hash {
				continue
			}
			select {
			case out <- p:
			case <-stopped:
				return
			}
			if p.Event == ProgressDone {
				return
			}
		}
	}()
	return out, stop
}

// publish fans an event out to every subscriber, dropping it for
// subscribers whose buffer is full.
func (e *Engine) publish(p Progress) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ch := range e.subs {
		select {
		case ch <- p:
		default:
		}
	}
}
