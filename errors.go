package daesim

import (
	"errors"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Typed error classification. Every validation failure surfaced by the
// package — from Request.Validate, the Engine, or the deprecated Run*
// wrappers — wraps exactly one of these sentinels, so callers (and the
// dae-serve HTTP layer, which maps them to status codes) classify with
// errors.Is instead of matching message text.
var (
	// ErrInvalidRequest is wrapped by every malformed-Request failure:
	// negative budgets, an unknown workload kind, a custom workload
	// without (or with an inconsistent) benchmark model.
	ErrInvalidRequest = errors.New("daesim: invalid request")
	// ErrUnknownBenchmark is wrapped when a workload names a benchmark
	// that is not one of the ten built-in models (see Benchmarks).
	ErrUnknownBenchmark = workload.ErrUnknownBenchmark
	// ErrInvalidConfig is wrapped by every Machine validation failure.
	ErrInvalidConfig = config.ErrInvalid
)

// BatchError aggregates the failures of a RunBatch: one error per failed
// request, in request order, plus the batch size. RunBatch returns it
// (via the error interface) whenever at least one request failed;
// errors.As recovers it and Unwrap exposes the individual failures to
// errors.Is.
type BatchError = runner.BatchError
