package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const profile = `mode: set
repro/internal/core/core.go:10.2,12.3 3 1
repro/internal/core/core.go:14.2,20.3 5 0
repro/internal/mem/mem.go:5.2,9.3 4 1
`

func TestPackageCoverage(t *testing.T) {
	dir := t.TempDir()
	cov, err := packageCoverage(write(t, dir, "cover.out", profile))
	if err != nil {
		t.Fatal(err)
	}
	core := cov["repro/internal/core"]
	if core.covered != 3 || core.total != 8 {
		t.Errorf("core counts = %+v", core)
	}
	if got := core.percent(); got < 37.4 || got > 37.6 {
		t.Errorf("core percent = %.2f, want 37.5", got)
	}
	if mem := cov["repro/internal/mem"]; mem.percent() != 100 {
		t.Errorf("mem percent = %.2f", mem.percent())
	}
}

func TestPackageCoverageRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, bad := range map[string]string{
		"empty":     "mode: set\n",
		"malformed": "mode: set\nnot a block line\n",
		"badcount":  "mode: set\nf.go:1.2,3.4 x 1\n",
	} {
		if _, err := packageCoverage(write(t, dir, name, bad)); err == nil {
			t.Errorf("%s profile accepted", name)
		}
	}
}

func TestGateExitCodes(t *testing.T) {
	dir := t.TempDir()
	prof := write(t, dir, "cover.out", profile)

	pass := write(t, dir, "pass.json", `{"repro/internal/core": 30, "repro/internal/mem": 95}`)
	if code := run([]string{"-profile", prof, "-floors", pass}); code != 0 {
		t.Errorf("passing gate exited %d", code)
	}

	below := write(t, dir, "below.json", `{"repro/internal/core": 50}`)
	if code := run([]string{"-profile", prof, "-floors", below}); code != 1 {
		t.Errorf("below-floor gate exited %d, want 1", code)
	}

	missing := write(t, dir, "missing.json", `{"repro/internal/nosuch": 10}`)
	if code := run([]string{"-profile", prof, "-floors", missing}); code != 1 {
		t.Errorf("missing-package gate exited %d, want 1", code)
	}

	empty := write(t, dir, "empty.json", `{}`)
	if code := run([]string{"-profile", prof, "-floors", empty}); code != 1 {
		t.Errorf("empty floors exited %d, want 1", code)
	}
}
