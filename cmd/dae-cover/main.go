// Command dae-cover gates CI on per-package statement coverage: it
// parses a `go test -coverprofile` file, computes coverage for each
// package named in a floors file (COVERAGE.json at the repository
// root), prints a markdown table suitable for a GitHub job summary, and
// exits non-zero when any package falls below its committed floor.
//
//	go test -short -coverprofile=cover.out ./...
//	dae-cover -profile cover.out -floors COVERAGE.json
//
// The floors file maps import paths to minimum statement-coverage
// percentages:
//
//	{"repro/internal/core": 80, "repro/internal/mem": 85}
//
// Raising a floor is how a PR locks in coverage it added; the gate only
// ever fails on regressions below the committed value.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dae-cover", flag.ContinueOnError)
	profile := fs.String("profile", "cover.out", "coverage profile from `go test -coverprofile`")
	floorsPath := fs.String("floors", "COVERAGE.json", "JSON file mapping import paths to minimum coverage percentages")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	floors, err := loadFloors(*floorsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dae-cover:", err)
		return 1
	}
	cov, err := packageCoverage(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dae-cover:", err)
		return 1
	}

	pkgs := make([]string, 0, len(floors))
	for p := range floors {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	fmt.Println("| package | coverage | floor | status |")
	fmt.Println("|---|---:|---:|---|")
	failed := false
	for _, p := range pkgs {
		c, measured := cov[p]
		status := "ok"
		switch {
		case !measured:
			status = "**missing from profile**"
			failed = true
		case c.percent() < floors[p]:
			status = "**below floor**"
			failed = true
		}
		fmt.Printf("| %s | %.1f%% | %.1f%% | %s |\n", p, c.percent(), floors[p], status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "dae-cover: coverage below the committed floor (see table)")
		return 1
	}
	return 0
}

func loadFloors(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var floors map[string]float64
	if err := json.Unmarshal(b, &floors); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(floors) == 0 {
		return nil, fmt.Errorf("%s: no coverage floors committed", path)
	}
	return floors, nil
}

// counts accumulates one package's profile blocks.
type counts struct{ covered, total int64 }

func (c counts) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

// packageCoverage parses a coverprofile into per-package statement
// counts. Block lines look like
//
//	repro/internal/core/core.go:95.64,100.16 3 1
//
// (file:startLine.col,endLine.col numStatements hitCount); the package
// is the file path's directory. Overlapping re-runs of the same block
// (profiles merged across packages by `go test ./...`) count once per
// line, which is exactly how `go tool cover -func` totals them.
func packageCoverage(profile string) (map[string]counts, error) {
	f, err := os.Open(profile)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	cov := make(map[string]counts)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		file, rest, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("%s:%d: malformed block %q", profile, line, text)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed block %q", profile, line, text)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: statement count: %w", profile, line, err)
		}
		hits, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: hit count: %w", profile, line, err)
		}
		c := cov[path.Dir(file)]
		c.total += stmts
		if hits > 0 {
			c.covered += stmts
		}
		cov[path.Dir(file)] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cov) == 0 {
		return nil, fmt.Errorf("%s: empty coverage profile", profile)
	}
	return cov, nil
}
