package main

import (
	"encoding/json"
	"testing"
)

// TestMeasureSmoke runs one tiny measurement per mode and checks the
// record is sane and serializable.
func TestMeasureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke test is not short")
	}
	cfg := configs()[0]
	for _, mode := range []string{"run", "stepped"} {
		rec, err := measure(cfg, mode, 2_000)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rec.NsPerRun <= 0 || rec.InstsPerS <= 0 {
			t.Fatalf("%s: degenerate record %+v", mode, rec)
		}
		if _, err := json.Marshal(rec); err != nil {
			t.Fatalf("%s: marshal: %v", mode, err)
		}
	}
}

// TestConfigsValid guards the benchmark configurations against config
// API drift.
func TestConfigsValid(t *testing.T) {
	for _, cfg := range configs() {
		m := cfg.machine.Effective()
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.name, err)
		}
	}
}
