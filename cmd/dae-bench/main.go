// Command dae-bench runs the core simulation-throughput benchmarks and
// writes a machine-readable snapshot, so CI can accumulate a performance
// trajectory across commits (one BENCH_<n>.json artifact per PR).
//
//	dae-bench                    # all configs, JSON to stdout
//	dae-bench -out BENCH_3.json  # write to a file
//	dae-bench -insts 40000       # quicker, less stable numbers
//
// Each record measures one machine configuration in one scheduler mode:
// ns per run of the instruction budget, simulated cycles and graduated
// instructions per wall-clock second, and the fraction of cycles the
// fast-forward scheduler skipped. Modes: "run" is the default
// event-driven scheduler (Core.Run), "stepped" the cycle-by-cycle
// reference (Core.RunStepped).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Record is one (config, mode) measurement.
type Record struct {
	Config     string  `json:"config"`
	Mode       string  `json:"mode"`
	Insts      int64   `json:"insts"`
	NsPerRun   int64   `json:"ns_per_run"`
	CyclesPerS float64 `json:"cycles_per_s"`
	InstsPerS  float64 `json:"insts_per_s"`
	SkippedPct float64 `json:"skipped_pct"`
}

// Snapshot is the file format: environment plus all records.
type Snapshot struct {
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Timestamp string   `json:"timestamp"`
	Insts     int64    `json:"insts"`
	Records   []Record `json:"records"`
}

type benchConfig struct {
	name    string
	machine config.Machine
}

func configs() []benchConfig {
	sharedL2 := func(m config.Machine) config.Machine {
		return m.WithHierarchy(64, config.SharedL2(256<<10, 8))
	}
	return []benchConfig{
		{"1T-L2_16", config.Figure2(1)},
		{"1T-L2_256", config.Figure2(1).WithL2Latency(256)},
		{"4T-L2_16", config.Figure2(4)},
		{"4T-L2_256", config.Figure2(4).WithL2Latency(256)},
		// CMP cores-scaling configs (one context per core, 256KB shared
		// L2 + DRAM): the wall-clock cost of composing cores over the
		// shared fabric.
		{"2C1T-sharedL2", sharedL2(config.Figure2(1).WithCores(2))},
		{"4C1T-sharedL2", sharedL2(config.Figure2(1).WithCores(4))},
	}
}

func main() {
	var (
		out   = flag.String("out", "", "output file (default stdout)")
		insts = flag.Int64("insts", 120_000, "graduated instructions per measured run")
	)
	flag.Parse()

	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Insts:     *insts,
	}
	for _, cfg := range configs() {
		for _, mode := range []string{"run", "stepped"} {
			rec, err := measure(cfg, mode, *insts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dae-bench:", err)
				os.Exit(1)
			}
			snap.Records = append(snap.Records, rec)
			fmt.Fprintf(os.Stderr, "%-10s %-8s %8.2f ms/run %12.0f insts/s %6.1f%% skipped\n",
				rec.Config, rec.Mode, float64(rec.NsPerRun)/1e6, rec.InstsPerS, rec.SkippedPct)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dae-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "dae-bench:", err)
		os.Exit(1)
	}
}

// measure benchmarks one configuration in one mode via testing.Benchmark
// (the same measurement machinery `go test -bench` uses, so the numbers
// are comparable with internal/core's microbenchmarks).
func measure(cfg benchConfig, mode string, insts int64) (Record, error) {
	const horizon = int64(1) << 50
	var buildErr error
	var skipped, cycles int64
	res := testing.Benchmark(func(b *testing.B) {
		skipped, cycles = 0, 0
		for i := 0; i < b.N; i++ {
			m, err := build(cfg.machine)
			if err != nil {
				buildErr = err
				b.FailNow()
			}
			if mode == "stepped" {
				for m.graduated() < insts {
					m.tick()
				}
			} else {
				for m.graduated() < insts {
					m.step(horizon)
				}
			}
			skipped += m.skipped()
			cycles += m.cycles()
		}
	})
	if buildErr != nil {
		return Record{}, buildErr
	}
	sec := res.T.Seconds()
	rec := Record{
		Config:   cfg.name,
		Mode:     mode,
		Insts:    insts,
		NsPerRun: res.NsPerOp(),
	}
	if sec > 0 {
		rec.CyclesPerS = float64(cycles) / sec
		rec.InstsPerS = float64(insts) * float64(res.N) / sec
	}
	if cycles > 0 {
		rec.SkippedPct = 100 * float64(skipped) / float64(cycles)
	}
	return rec, nil
}

func sources(threads int) []trace.Reader {
	return workload.MixSources(threads, workload.MixOpts{})
}

// machine abstracts the single-core Core and the multi-core CMP behind
// the benchmark loop's five probes.
type machine struct {
	tick      func()
	step      func(int64)
	graduated func() int64
	cycles    func() int64
	skipped   func() int64
}

func build(m config.Machine) (machine, error) {
	if m.CoreCount() > 1 {
		p, err := core.NewCMP(m, sources(m.TotalContexts()))
		if err != nil {
			return machine{}, err
		}
		return machine{
			tick:      p.Tick,
			step:      p.Step,
			graduated: p.Graduated,
			cycles:    func() int64 { return p.Core(0).Collector().Cycles },
			skipped:   p.SkippedCycles,
		}, nil
	}
	c, err := core.New(m, sources(m.Threads))
	if err != nil {
		return machine{}, err
	}
	return machine{
		tick:      c.Tick,
		step:      func(h int64) { c.Step(h) },
		graduated: func() int64 { return c.Collector().Graduated },
		cycles:    func() int64 { return c.Collector().Cycles },
		skipped:   c.SkippedCycles,
	}, nil
}
