// Command dae-bench runs the core simulation-throughput benchmarks and
// writes a machine-readable snapshot, so CI can accumulate a performance
// trajectory across commits (one BENCH_<n>.json artifact per PR).
//
//	dae-bench                    # all configs, JSON to stdout
//	dae-bench -out BENCH_3.json  # write to a file
//	dae-bench -insts 40000       # quicker, less stable numbers
//
// Each record measures one machine configuration in one scheduler mode:
// ns per run of the instruction budget, simulated cycles and graduated
// instructions per wall-clock second, and the fraction of cycles the
// fast-forward scheduler skipped. Modes: "adaptive" (the default driver
// — sim's per-window fast-forward/stepping controller), "run" the plain
// event-driven scheduler (Core.Step every step), "stepped" the
// cycle-by-cycle reference, "sampled" the SMARTS sampling schedule
// over the same budget (an estimate, so its record is about wall-clock,
// not bit-exact results), and "parallel" (CMP configs only) the
// epoch-parallel scheduler with one goroutine per core — bit-identical
// results to "run", so the pair measures the intra-run speedup.
//
// With -compare old.json,new.json it instead prints a markdown delta
// table between two snapshots (for the CI bench job) and exits; rows
// regressing ≥10% in insts/s are flagged, and snapshots recorded under
// different host fingerprints (num_cpu, goarch, go_version) get a
// cross-host warning plus per-row annotations instead of being treated
// as comparable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Record is one (config, mode) measurement.
type Record struct {
	Config     string  `json:"config"`
	Mode       string  `json:"mode"`
	Insts      int64   `json:"insts"`
	NsPerRun   int64   `json:"ns_per_run"`
	CyclesPerS float64 `json:"cycles_per_s"`
	InstsPerS  float64 `json:"insts_per_s"`
	SkippedPct float64 `json:"skipped_pct"`
}

// Snapshot is the file format: environment plus all records.
type Snapshot struct {
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Timestamp string   `json:"timestamp"`
	Insts     int64    `json:"insts"`
	Records   []Record `json:"records"`
}

type benchConfig struct {
	name    string
	machine config.Machine
}

func configs() []benchConfig {
	sharedL2 := func(m config.Machine) config.Machine {
		return m.WithHierarchy(64, config.SharedL2(256<<10, 8))
	}
	return []benchConfig{
		{"1T-L2_16", config.Figure2(1)},
		{"1T-L2_256", config.Figure2(1).WithL2Latency(256)},
		{"4T-L2_16", config.Figure2(4)},
		{"4T-L2_256", config.Figure2(4).WithL2Latency(256)},
		// CMP cores-scaling configs (one context per core, 256KB shared
		// L2 + DRAM): the wall-clock cost of composing cores over the
		// shared fabric.
		{"2C1T-sharedL2", sharedL2(config.Figure2(1).WithCores(2))},
		{"4C1T-sharedL2", sharedL2(config.Figure2(1).WithCores(4))},
		{"8C1T-sharedL2", sharedL2(config.Figure2(1).WithCores(8))},
	}
}

func main() {
	var (
		out     = flag.String("out", "", "output file (default stdout)")
		insts   = flag.Int64("insts", 120_000, "graduated instructions per measured run")
		repeat  = flag.Int("repeat", 3, "measurements per (config, mode); the fastest is recorded (best-of-N strips scheduler noise)")
		compare = flag.String("compare", "", "old.json,new.json: print a markdown delta table between two snapshots and exit")
	)
	flag.Parse()

	if *compare != "" {
		if err := compareSnapshots(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "dae-bench:", err)
			os.Exit(1)
		}
		return
	}

	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Insts:     *insts,
	}
	// Passes interleave over the whole (config, mode) matrix and each
	// cell keeps its fastest observation: host-load noise drifts over the
	// minutes a full run takes, so consecutive repetitions of one cell
	// would share the same bad weather — spreading the repetitions lets
	// every cell catch a quiet window, and cells being compared (adaptive
	// vs run vs stepped) sample the same windows.
	best := make(map[string]Record)
	modes := []string{"adaptive", "run", "stepped", "sampled", "parallel"}
	for pass := 0; pass < *repeat || pass == 0; pass++ {
		for _, cfg := range configs() {
			for _, mode := range modes {
				if mode == "parallel" && cfg.machine.CoreCount() < 2 {
					continue // epoch-parallel execution needs a CMP
				}
				rec, err := measure(cfg, mode, *insts)
				if err != nil {
					fmt.Fprintln(os.Stderr, "dae-bench:", err)
					os.Exit(1)
				}
				key := cfg.name + "/" + mode
				if b, ok := best[key]; !ok || rec.NsPerRun < b.NsPerRun {
					best[key] = rec
				}
			}
		}
	}
	for _, cfg := range configs() {
		for _, mode := range modes {
			if mode == "parallel" && cfg.machine.CoreCount() < 2 {
				continue
			}
			rec := best[cfg.name+"/"+mode]
			snap.Records = append(snap.Records, rec)
			fmt.Fprintf(os.Stderr, "%-10s %-8s %8.2f ms/run %12.0f insts/s %6.1f%% skipped\n",
				rec.Config, rec.Mode, float64(rec.NsPerRun)/1e6, rec.InstsPerS, rec.SkippedPct)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dae-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "dae-bench:", err)
		os.Exit(1)
	}
}

// measure benchmarks one configuration in one mode via testing.Benchmark
// (the same measurement machinery `go test -bench` uses, so the numbers
// are comparable with internal/core's microbenchmarks).
func measure(cfg benchConfig, mode string, insts int64) (Record, error) {
	const horizon = int64(1) << 50
	var buildErr error
	var skipped, cycles int64
	res := testing.Benchmark(func(b *testing.B) {
		skipped, cycles = 0, 0
		for i := 0; i < b.N; i++ {
			if mode == "sampled" || mode == "parallel" {
				o := sim.Options{
					Machine:      cfg.machine,
					Sources:      sources(cfg.machine.TotalContexts()),
					MeasureInsts: insts,
				}
				if mode == "sampled" {
					o.Mode = sim.ModeSampled
				} else {
					// Epoch-parallel exact run: one worker per core,
					// bit-identical results to the serial "run" rows (its
					// wall-clock baseline).
					o.DisjointAddressSpaces = true
					o.Parallel = cfg.machine.CoreCount()
				}
				r, err := sim.Run(context.Background(), o)
				if err != nil {
					buildErr = err
					b.FailNow()
				}
				cycles += r.Report.Cycles
				continue
			}
			m, err := build(cfg.machine)
			if err != nil {
				buildErr = err
				b.FailNow()
			}
			switch mode {
			case "stepped":
				for m.graduated() < insts {
					m.tick()
				}
			case "adaptive":
				// The exact controller sim uses for -mode adaptive, driven
				// over the same primitives.
				step := sim.NewAdaptiveStepper(m.tick, m.step, m.now, m.skipped, horizon)
				for m.graduated() < insts {
					step()
				}
			default:
				for m.graduated() < insts {
					m.step(horizon)
				}
			}
			skipped += m.skipped()
			cycles += m.cycles()
		}
	})
	if buildErr != nil {
		return Record{}, buildErr
	}
	sec := res.T.Seconds()
	rec := Record{
		Config:   cfg.name,
		Mode:     mode,
		Insts:    insts,
		NsPerRun: res.NsPerOp(),
	}
	if sec > 0 {
		rec.CyclesPerS = float64(cycles) / sec
		rec.InstsPerS = float64(insts) * float64(res.N) / sec
	}
	if cycles > 0 {
		rec.SkippedPct = 100 * float64(skipped) / float64(cycles)
	}
	return rec, nil
}

func sources(threads int) []trace.Reader {
	return workload.MixSources(threads, workload.MixOpts{})
}

// machine abstracts the single-core Core and the multi-core CMP behind
// the benchmark loop's probes.
type machine struct {
	tick      func()
	step      func(int64)
	graduated func() int64
	cycles    func() int64
	skipped   func() int64
	now       func() int64
}

func build(m config.Machine) (machine, error) {
	if m.CoreCount() > 1 {
		p, err := core.NewCMP(m, sources(m.TotalContexts()))
		if err != nil {
			return machine{}, err
		}
		return machine{
			tick:      p.Tick,
			step:      p.Step,
			graduated: p.Graduated,
			cycles:    func() int64 { return p.Core(0).Collector().Cycles },
			skipped:   p.SkippedCycles,
			now:       p.Now,
		}, nil
	}
	c, err := core.New(m, sources(m.Threads))
	if err != nil {
		return machine{}, err
	}
	return machine{
		tick:      c.Tick,
		step:      func(h int64) { c.Step(h) },
		graduated: func() int64 { return c.Collector().Graduated },
		cycles:    func() int64 { return c.Collector().Cycles },
		skipped:   c.SkippedCycles,
		now:       c.Now,
	}, nil
}

// compareSnapshots prints a markdown delta table between two snapshot
// files ("old,new"), keyed by (config, mode). Rows whose insts/s
// regressed by 10% or more are flagged; the exit status stays 0 (the
// table is advisory — machine variance between CI runs is real).
func compareSnapshots(arg string) error {
	parts := strings.Split(arg, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants old.json,new.json, got %q", arg)
	}
	read := func(path string) (Snapshot, error) {
		var s Snapshot
		b, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			return s, err
		}
		return s, json.Unmarshal(b, &s)
	}
	oldSnap, err := read(parts[0])
	if err != nil {
		return err
	}
	newSnap, err := read(parts[1])
	if err != nil {
		return err
	}
	old := make(map[string]Record, len(oldSnap.Records))
	for _, r := range oldSnap.Records {
		old[r.Config+"/"+r.Mode] = r
	}
	// Wall-clock numbers only compare within one host fingerprint: a
	// snapshot recorded with a different CPU count (BENCH_8.json was
	// recorded with num_cpu: 1), architecture or Go version measures a
	// different machine, so deltas against it are provenance, not
	// regressions. Surface the mismatch above the table and annotate it.
	var envDiffs []string
	for _, d := range []struct{ field, old, new string }{
		{"num_cpu", fmt.Sprint(oldSnap.NumCPU), fmt.Sprint(newSnap.NumCPU)},
		{"goarch", oldSnap.GOARCH, newSnap.GOARCH},
		{"go_version", oldSnap.GoVersion, newSnap.GoVersion},
	} {
		if d.old != d.new {
			envDiffs = append(envDiffs, fmt.Sprintf("%s %s → %s", d.field, d.old, d.new))
		}
	}
	if len(envDiffs) > 0 {
		fmt.Printf("> ⚠️ **environment changed between snapshots** (%s): wall-clock deltas below compare different hosts and are not comparable as regressions.\n\n",
			strings.Join(envDiffs, ", "))
	}
	fmt.Printf("| config | mode | old insts/s | new insts/s | delta |\n")
	fmt.Printf("|---|---|---:|---:|---:|\n")
	warned := false
	annot := ""
	if len(envDiffs) > 0 {
		annot = " *"
	}
	for _, r := range newSnap.Records {
		o, ok := old[r.Config+"/"+r.Mode]
		if !ok || o.InstsPerS <= 0 {
			fmt.Printf("| %s | %s | — | %.0f | new |\n", r.Config, r.Mode, r.InstsPerS)
			continue
		}
		delta := 100 * (r.InstsPerS - o.InstsPerS) / o.InstsPerS
		flag := annot
		if delta <= -10 {
			flag += " ⚠️"
			warned = true
		}
		fmt.Printf("| %s | %s | %.0f | %.0f | %+.1f%%%s |\n",
			r.Config, r.Mode, o.InstsPerS, r.InstsPerS, delta, flag)
	}
	if len(envDiffs) > 0 {
		fmt.Printf("\n\\* cross-host delta (%s)\n", strings.Join(envDiffs, ", "))
	}
	if warned {
		fmt.Printf("\n⚠️ at least one (config, mode) regressed ≥10%% in insts/s vs the previous snapshot.\n")
	}
	return nil
}
