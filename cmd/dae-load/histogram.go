package main

import (
	"math/bits"
	"sort"
	"sync"
)

// histogram is an HDR-style log-linear latency histogram: values bucket
// into 32 linear sub-buckets per power-of-two octave, so relative
// quantization error stays under ~3% across the full range (1µs to
// days) with a few hundred buckets at most — constant memory however
// long the tail. Values are recorded in microseconds. Safe for
// concurrent use.
type histogram struct {
	mu     sync.Mutex
	counts map[int]int64
	total  int64
	sum    int64
	max    int64
}

// log2SubBuckets fixes 2^5 = 32 linear sub-buckets per octave.
const log2SubBuckets = 5

func newHistogram() *histogram {
	return &histogram{counts: make(map[int]int64)}
}

// record adds one latency observation in microseconds.
func (h *histogram) record(us int64) {
	if us < 0 {
		us = 0
	}
	h.mu.Lock()
	h.counts[bucketIndex(us)]++
	h.total++
	h.sum += us
	if us > h.max {
		h.max = us
	}
	h.mu.Unlock()
}

// bucketIndex maps a value to its log-linear bucket: exact below 32,
// then 32 sub-buckets per octave.
func bucketIndex(us int64) int {
	v := uint64(us)
	if v < 1<<log2SubBuckets {
		return int(v)
	}
	m := bits.Len64(v) - 1
	shift := m - log2SubBuckets
	return int(uint64(shift)<<log2SubBuckets) + int(v>>shift)
}

// bucketUpper is the largest value mapping into bucket idx.
func bucketUpper(idx int) int64 {
	if idx < 1<<log2SubBuckets {
		return int64(idx)
	}
	shift := idx>>log2SubBuckets - 1
	sub := idx - shift<<log2SubBuckets
	return int64(sub+1)<<shift - 1
}

// bucket is one non-empty histogram cell in the JSON report.
type bucket struct {
	// UpperUs is the bucket's inclusive upper bound in microseconds.
	UpperUs int64 `json:"upperUs"`
	Count   int64 `json:"count"`
}

// latencySummary is the report-facing digest of a histogram.
type latencySummary struct {
	Count  int64   `json:"count"`
	MeanUs int64   `json:"meanUs"`
	P50Us  int64   `json:"p50Us"`
	P90Us  int64   `json:"p90Us"`
	P99Us  int64   `json:"p99Us"`
	MaxUs  int64   `json:"maxUs"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	// Histogram lists the non-empty buckets in ascending order, enough
	// to recompute any percentile offline.
	Histogram []bucket `json:"histogram,omitempty"`
}

// summarize digests the histogram. Percentiles report their bucket's
// upper bound (pessimistic by at most one sub-bucket width).
func (h *histogram) summarize() latencySummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := latencySummary{Count: h.total, MaxUs: h.max}
	if h.total == 0 {
		return s
	}
	s.MeanUs = h.sum / h.total
	idxs := make([]int, 0, len(h.counts))
	for idx := range h.counts {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	s.Histogram = make([]bucket, 0, len(idxs))
	for _, idx := range idxs {
		s.Histogram = append(s.Histogram, bucket{UpperUs: bucketUpper(idx), Count: h.counts[idx]})
	}
	s.P50Us = h.percentileLocked(idxs, 50)
	s.P90Us = h.percentileLocked(idxs, 90)
	s.P99Us = h.percentileLocked(idxs, 99)
	s.MeanMs = float64(s.MeanUs) / 1000
	s.P50Ms = float64(s.P50Us) / 1000
	s.P99Ms = float64(s.P99Us) / 1000
	return s
}

// percentileLocked returns the pth percentile's bucket upper bound.
func (h *histogram) percentileLocked(sortedIdxs []int, p int) int64 {
	need := (h.total*int64(p) + 99) / 100
	if need < 1 {
		need = 1
	}
	var cum int64
	for _, idx := range sortedIdxs {
		cum += h.counts[idx]
		if cum >= need {
			return bucketUpper(idx)
		}
	}
	return h.max
}
