package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	daesim "repro"
	"repro/internal/fabric"
	"repro/internal/serveapi"
)

// TestHistogramPercentiles: exact values at the linear bottom, bounded
// relative error (one sub-bucket, ~3%) in the log-linear range.
func TestHistogramPercentiles(t *testing.T) {
	h := newHistogram()
	// 1..100 µs: p50 = 50, p99 = 99, max = 100, all exact (< 2^5 is
	// linear; above it buckets are narrow at this scale).
	for v := int64(1); v <= 100; v++ {
		h.record(v)
	}
	s := h.summarize()
	if s.Count != 100 || s.MaxUs != 100 {
		t.Fatalf("count=%d max=%d", s.Count, s.MaxUs)
	}
	if s.P50Us < 50 || s.P50Us > 52 {
		t.Errorf("p50 = %d, want ~50", s.P50Us)
	}
	if s.P99Us < 99 || s.P99Us > 103 {
		t.Errorf("p99 = %d, want ~99", s.P99Us)
	}

	// Far outliers past the p99 rank move p99 into their (coarse)
	// bucket: upper bound must be >= the value and within ~3.2% above.
	h2 := newHistogram()
	for i := 0; i < 98; i++ {
		h2.record(10)
	}
	h2.record(5_000_000) // two 5s outliers: ranks 99 and 100 of 100
	h2.record(5_000_000)
	s2 := h2.summarize()
	if s2.P99Us < 5_000_000 || float64(s2.P99Us) > 5_000_000*1.04 {
		t.Errorf("p99 = %d, want 5e6..5.2e6", s2.P99Us)
	}
	if s2.P50Us != 10 {
		t.Errorf("p50 = %d, want 10", s2.P50Us)
	}
}

// TestBucketIndexContinuity: the bucket mapping is monotone and every
// value is <= its bucket's upper bound, with bounded relative width.
func TestBucketIndexContinuity(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Errorf("bucketIndex(%d) = %d < previous %d (not monotone)", v, idx, prev)
		}
		prev = idx
		up := bucketUpper(idx)
		if up < v {
			t.Errorf("bucketUpper(%d) = %d < value %d", idx, up, v)
		}
		if v >= 32 && float64(up) > float64(v)*1.04 {
			t.Errorf("bucket for %d too wide: upper %d", v, up)
		}
	}
}

// TestParseMix normalizes weights and rejects junk.
func TestParseMix(t *testing.T) {
	c, f, s, err := parseMix("cached=3,fresh=1,sweep=0")
	if err != nil {
		t.Fatal(err)
	}
	if c != 0.75 || f != 0.25 || s != 0 {
		t.Errorf("mix = %v %v %v", c, f, s)
	}
	for _, bad := range []string{"cached", "cached=x", "bogus=1", "cached=-1", "cached=0,fresh=0,sweep=0"} {
		if _, _, _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestBuildPlanDeterministic: the same seed yields a byte-identical
// schedule; a different seed does not.
func TestBuildPlanDeterministic(t *testing.T) {
	cfg := loadConfig{Requests: 50, Seed: 7, WarmPool: 4, SweepSize: 3,
		MixCached: 0.6, MixFresh: 0.3, MixSweep: 0.1, Warmup: 500, Measure: 2000}
	w1, s1, err := buildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, s2, _ := buildPlan(cfg)
	if len(s1) != cfg.Requests || len(w1) != cfg.WarmPool {
		t.Fatalf("plan sizes: warm=%d schedule=%d", len(w1), len(s1))
	}
	for i := range s1 {
		if s1[i].class != s2[i].class || !bytes.Equal(s1[i].body, s2[i].body) {
			t.Fatalf("schedule diverges at %d with identical seeds", i)
		}
	}
	for i := range w1 {
		if !bytes.Equal(w1[i].body, w2[i].body) {
			t.Fatalf("warm pool diverges at %d", i)
		}
	}
	cfg.Seed = 8
	_, s3, _ := buildPlan(cfg)
	same := true
	for i := range s1 {
		if s1[i].class != s3[i].class || !bytes.Equal(s1[i].body, s3[i].body) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// newTestFabric boots 2 replicas + router in-process and returns the
// router's base URL.
func newTestFabric(t *testing.T) string {
	t.Helper()
	storeDir := t.TempDir()
	var bases []string
	for i := 0; i < 2; i++ {
		eng, err := daesim.NewEngine(daesim.EngineOpts{CacheDir: storeDir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(serveapi.NewHandler(eng, 30*time.Second, serveapi.DefaultMaxBody))
		t.Cleanup(ts.Close)
		bases = append(bases, ts.URL)
	}
	rt, err := fabric.NewRouter(fabric.Config{Replicas: bases, StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestLoadEndToEnd drives a real in-process fabric with both loop modes
// and grades the report against a permissive SLO.
func TestLoadEndToEnd(t *testing.T) {
	target := newTestFabric(t)
	cfg := loadConfig{
		Target: target, Mode: "closed", Requests: 30, Concurrency: 4,
		Seed: 1, WarmPool: 4, SweepSize: 3,
		MixCached: 0.6, MixFresh: 0.3, MixSweep: 0.1,
		Warmup: 500, Measure: 2000, Timeout: 60 * time.Second,
	}
	rep, err := run(context.Background(), cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for class, cr := range rep.Classes {
		total += cr.Requests
		if cr.Errors != 0 {
			t.Errorf("%s: %d errors (first: %s)", class, cr.Errors, cr.FirstErr)
		}
	}
	if total != cfg.Requests {
		t.Errorf("measured %d requests, want %d", total, cfg.Requests)
	}
	cached := rep.Classes[classCached]
	if cached.Requests == 0 || cached.CacheHits != cached.Requests {
		t.Errorf("cached class: %d requests, %d hits — warm pool not warm",
			cached.Requests, cached.CacheHits)
	}
	if cached.Latency.P99Us <= 0 {
		t.Errorf("cached p99 = %d", cached.Latency.P99Us)
	}

	// SLO grading: a permissive SLO passes, an impossible one fails.
	dir := t.TempDir()
	writeSLO := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	res, err := checkSLO(writeSLO("ok.json", `{"cachedRunP99Ms": 60000, "freshRunMaxErrorRate": 0}`), rep)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Errorf("permissive SLO failed: %v", res.Violations)
	}
	res, err = checkSLO(writeSLO("strict.json", `{"cachedRunP99Ms": 0.0001, "freshRunMaxErrorRate": 0}`), rep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("impossible SLO passed")
	}

	// Open loop over the now-warm store: fast and still error-free.
	cfg.Mode, cfg.RateHz, cfg.Requests = "open", 200, 20
	rep2, err := run(context.Background(), cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for class, cr := range rep2.Classes {
		if cr.Errors != 0 {
			t.Errorf("open loop %s: %d errors (first: %s)", class, cr.Errors, cr.FirstErr)
		}
	}
}

// TestLoadReportShape: the report round-trips through JSON with the
// fields the CI summary script reads.
func TestLoadReportShape(t *testing.T) {
	target := newTestFabric(t)
	cfg := loadConfig{
		Target: target, Mode: "closed", Requests: 6, Concurrency: 2,
		Seed: 3, WarmPool: 2, SweepSize: 2,
		MixCached: 1, Warmup: 500, Measure: 2000, Timeout: 60 * time.Second,
	}
	rep, err := run(context.Background(), cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	classes, ok := decoded["classes"].(map[string]any)
	if !ok {
		t.Fatalf("no classes in %s", raw)
	}
	cc, ok := classes["cached"].(map[string]any)
	if !ok {
		t.Fatalf("no cached class in %s", raw)
	}
	lat, ok := cc["latency"].(map[string]any)
	if !ok || lat["p99Ms"] == nil {
		t.Fatalf("no latency.p99Ms in %s", raw)
	}
}
