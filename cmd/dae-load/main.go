// Command dae-load is the fabric's deterministic load-generator
// harness: it drives a dae-router (or a bare dae-serve) with a seeded,
// reproducible mix of cached runs, fresh runs, and sweeps, measures
// per-class latency into HDR-style histograms, and emits a JSON report.
// With -slo it doubles as a gate: the process exits nonzero when the
// measured numbers violate the thresholds in an SLO file, which is how
// CI fails the build on a latency or error-rate regression.
//
// Examples:
//
//	dae-load -target http://127.0.0.1:8180 -requests 200 -mode closed -concurrency 8
//	dae-load -target http://127.0.0.1:8180 -mode open -rate 50 -requests 100 \
//	  -mix cached=0.8,fresh=0.1,sweep=0.1 -out load.json -slo SLO.json
//
// Determinism: the request schedule — class sequence, which cached
// request each draw hits, fresh-request seeds, sweep compositions — is
// fully determined by -seed. Two runs with the same flags issue the
// same requests in the same order; only the measured latencies differ.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	daesim "repro"
	"repro/internal/serveapi"
)

// classes of generated traffic.
const (
	classCached = "cached" // a pre-warmed run: must hit the store
	classFresh  = "fresh"  // a never-seen run: must simulate
	classSweep  = "sweep"  // a batch mixing warm and fresh points
)

// loadConfig is the full harness configuration (the parsed flags).
type loadConfig struct {
	Target      string  `json:"target"`
	Mode        string  `json:"mode"` // "closed" or "open"
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	RateHz      float64 `json:"rateHz"`
	Seed        int64   `json:"seed"`
	WarmPool    int     `json:"warmPool"`
	SweepSize   int     `json:"sweepSize"`
	MixCached   float64 `json:"mixCached"`
	MixFresh    float64 `json:"mixFresh"`
	MixSweep    float64 `json:"mixSweep"`
	Warmup      int64   `json:"warmupInsts"`
	Measure     int64   `json:"measureInsts"`
	Timeout     time.Duration
}

// classStats accumulates one traffic class's outcomes.
type classStats struct {
	hist      *histogram
	mu        sync.Mutex
	requests  int
	errors    int
	shed      int
	cacheHits int
	firstErr  string
}

func (c *classStats) fail(msg string) {
	c.mu.Lock()
	c.errors++
	if c.firstErr == "" {
		c.firstErr = msg
	}
	c.mu.Unlock()
}

// classReport is one class's slice of the JSON report.
type classReport struct {
	Requests int `json:"requests"`
	// Errors are hard failures (transport errors, 5xx, malformed
	// replies). Backpressure refusals (429/503 + Retry-After) count as
	// Shed, not Errors: the fabric refusing load it cannot absorb is the
	// admission queue working, not the fabric breaking.
	Errors    int            `json:"errors"`
	Shed      int            `json:"shed"`
	CacheHits int            `json:"cacheHits"`
	ErrorRate float64        `json:"errorRate"`
	FirstErr  string         `json:"firstError,omitempty"`
	Latency   latencySummary `json:"latency"`
}

// loadReport is the harness's JSON output.
type loadReport struct {
	Config      loadConfig             `json:"config"`
	DurationSec float64                `json:"durationSec"`
	Throughput  float64                `json:"throughputRps"`
	Classes     map[string]classReport `json:"classes"`
	SLO         *sloResult             `json:"slo,omitempty"`
}

// sloThresholds is the committed SLO file's shape (SLO.json).
type sloThresholds struct {
	// CachedRunP99Ms caps the cached-run class's p99 latency.
	CachedRunP99Ms float64 `json:"cachedRunP99Ms"`
	// FreshRunMaxErrorRate caps the fresh-run class's hard-error rate
	// (shed requests excluded).
	FreshRunMaxErrorRate float64 `json:"freshRunMaxErrorRate"`
}

// sloResult records the gate's verdict inside the report.
type sloResult struct {
	Thresholds sloThresholds `json:"thresholds"`
	Violations []string      `json:"violations,omitempty"`
	Pass       bool          `json:"pass"`
}

func main() {
	var (
		target      = flag.String("target", "", "base URL of the dae-router (or dae-serve) to load (required)")
		mode        = flag.String("mode", "closed", "loop mode: closed (fixed concurrency) or open (fixed arrival rate)")
		requests    = flag.Int("requests", 100, "total requests to issue")
		concurrency = flag.Int("concurrency", 4, "closed-loop worker count")
		rate        = flag.Float64("rate", 20, "open-loop arrival rate (requests/s)")
		seed        = flag.Int64("seed", 1, "schedule seed (same seed = same request sequence)")
		warmPool    = flag.Int("warm-pool", 8, "distinct requests pre-warmed for the cached class")
		sweepSize   = flag.Int("sweep-size", 4, "requests per generated sweep")
		mix         = flag.String("mix", "cached=0.7,fresh=0.2,sweep=0.1", "traffic mix as class=weight pairs")
		warmup      = flag.Int64("budget-warmup", 500, "simulation warmup instructions per request")
		measure     = flag.Int64("budget-measure", 2000, "simulation measure instructions per request")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		out         = flag.String("out", "-", "JSON report path (\"-\" = stdout)")
		sloPath     = flag.String("slo", "", "SLO thresholds file; violations exit nonzero")
	)
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "dae-load: -target is required")
		os.Exit(2)
	}
	cfg := loadConfig{
		Target: strings.TrimRight(*target, "/"), Mode: *mode,
		Requests: *requests, Concurrency: *concurrency, RateHz: *rate,
		Seed: *seed, WarmPool: *warmPool, SweepSize: *sweepSize,
		Warmup: *warmup, Measure: *measure, Timeout: *timeout,
	}
	var err error
	if cfg.MixCached, cfg.MixFresh, cfg.MixSweep, err = parseMix(*mix); err != nil {
		fmt.Fprintln(os.Stderr, "dae-load:", err)
		os.Exit(2)
	}

	rep, err := run(context.Background(), cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dae-load:", err)
		os.Exit(1)
	}

	exit := 0
	if *sloPath != "" {
		res, err := checkSLO(*sloPath, rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dae-load:", err)
			os.Exit(1)
		}
		rep.SLO = res
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "dae-load: SLO VIOLATION:", v)
		}
		if res.Pass {
			fmt.Fprintln(os.Stderr, "dae-load: SLO gate passed")
		} else {
			exit = 1
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dae-load:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "dae-load:", err)
		os.Exit(1)
	}
	os.Exit(exit)
}

// parseMix parses "cached=0.7,fresh=0.2,sweep=0.1" (weights are
// normalized, so any positive scale works).
func parseMix(s string) (cached, fresh, sweep float64, err error) {
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("bad -mix entry %q (want class=weight)", part)
		}
		w, perr := strconv.ParseFloat(v, 64)
		if perr != nil || w < 0 {
			return 0, 0, 0, fmt.Errorf("bad -mix weight %q", v)
		}
		switch k {
		case classCached:
			cached = w
		case classFresh:
			fresh = w
		case classSweep:
			sweep = w
		default:
			return 0, 0, 0, fmt.Errorf("unknown -mix class %q", k)
		}
	}
	total := cached + fresh + sweep
	if total <= 0 {
		return 0, 0, 0, fmt.Errorf("-mix has no positive weight")
	}
	return cached / total, fresh / total, sweep / total, nil
}

// op is one planned request: a class tag and the pre-marshaled body.
type op struct {
	class string
	path  string
	body  []byte
}

// buildPlan deterministically expands the config into the warm pool and
// the full request schedule.
func buildPlan(cfg loadConfig) (warm []op, schedule []op, err error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqAt := func(seed uint64) daesim.Request {
		r := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{
			WarmupInsts: cfg.Warmup, MeasureInsts: cfg.Measure, Seed: seed})
		r.Label = fmt.Sprintf("load-%d", seed)
		return r
	}
	marshal := func(v any) []byte {
		b, merr := json.Marshal(v)
		if merr != nil && err == nil {
			err = merr
		}
		return b
	}
	// Warm pool: seeds 1..W, POSTed once before measurement begins.
	pool := make([]daesim.Request, cfg.WarmPool)
	for i := range pool {
		pool[i] = reqAt(uint64(i + 1))
		warm = append(warm, op{class: classCached, path: "/v1/runs", body: marshal(pool[i])})
	}
	// Fresh seeds count up from far above the warm pool's range.
	freshSeed := uint64(1_000_000)
	nextFresh := func() daesim.Request {
		freshSeed++
		return reqAt(freshSeed)
	}
	for i := 0; i < cfg.Requests; i++ {
		switch x := rng.Float64(); {
		case x < cfg.MixCached:
			schedule = append(schedule, op{class: classCached, path: "/v1/runs",
				body: marshal(pool[rng.Intn(len(pool))])})
		case x < cfg.MixCached+cfg.MixFresh:
			schedule = append(schedule, op{class: classFresh, path: "/v1/runs",
				body: marshal(nextFresh())})
		default:
			sw := serveapi.SweepRequest{}
			for j := 0; j < cfg.SweepSize; j++ {
				if rng.Float64() < 0.5 {
					sw.Requests = append(sw.Requests, pool[rng.Intn(len(pool))])
				} else {
					sw.Requests = append(sw.Requests, nextFresh())
				}
			}
			schedule = append(schedule, op{class: classSweep, path: "/v1/sweeps",
				body: marshal(sw)})
		}
	}
	return warm, schedule, err
}

// run executes the plan and assembles the report.
func run(ctx context.Context, cfg loadConfig, logw io.Writer) (*loadReport, error) {
	warm, schedule, err := buildPlan(cfg)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: cfg.Timeout}

	// Warm phase (unmeasured): populate the store so the cached class
	// actually measures the cached path.
	fmt.Fprintf(logw, "dae-load: warming %d requests against %s\n", len(warm), cfg.Target)
	for i, o := range warm {
		if _, _, _, err := issue(ctx, client, cfg.Target, o); err != nil {
			return nil, fmt.Errorf("warm request %d: %w", i, err)
		}
	}

	stats := map[string]*classStats{
		classCached: {hist: newHistogram()},
		classFresh:  {hist: newHistogram()},
		classSweep:  {hist: newHistogram()},
	}
	fmt.Fprintf(logw, "dae-load: %s loop, %d requests (mix cached=%.2f fresh=%.2f sweep=%.2f, seed %d)\n",
		cfg.Mode, len(schedule), cfg.MixCached, cfg.MixFresh, cfg.MixSweep, cfg.Seed)

	start := time.Now()
	switch cfg.Mode {
	case "closed":
		ops := make(chan op)
		var wg sync.WaitGroup
		workers := cfg.Concurrency
		if workers < 1 {
			workers = 1
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for o := range ops {
					measureOne(ctx, client, cfg.Target, o, stats[o.class])
				}
			}()
		}
		for _, o := range schedule {
			ops <- o
		}
		close(ops)
		wg.Wait()
	case "open":
		if cfg.RateHz <= 0 {
			return nil, fmt.Errorf("open loop needs -rate > 0")
		}
		interval := time.Duration(float64(time.Second) / cfg.RateHz)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var wg sync.WaitGroup
		for _, o := range schedule {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-ticker.C:
			}
			wg.Add(1)
			go func(o op) {
				defer wg.Done()
				measureOne(ctx, client, cfg.Target, o, stats[o.class])
			}(o)
		}
		wg.Wait()
	default:
		return nil, fmt.Errorf("unknown -mode %q (want closed or open)", cfg.Mode)
	}
	elapsed := time.Since(start)

	rep := &loadReport{
		Config:      cfg,
		DurationSec: elapsed.Seconds(),
		Classes:     make(map[string]classReport),
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(schedule)) / elapsed.Seconds()
	}
	for class, cs := range stats {
		cr := classReport{
			Requests: cs.requests, Errors: cs.errors, Shed: cs.shed,
			CacheHits: cs.cacheHits, FirstErr: cs.firstErr,
			Latency: cs.hist.summarize(),
		}
		if cs.requests > 0 {
			cr.ErrorRate = float64(cs.errors) / float64(cs.requests)
		}
		rep.Classes[class] = cr
		fmt.Fprintf(logw, "dae-load: %-6s n=%-4d err=%-3d shed=%-3d hit=%-4d p50=%.1fms p99=%.1fms\n",
			class, cr.Requests, cr.Errors, cr.Shed, cr.CacheHits,
			cr.Latency.P50Ms, cr.Latency.P99Ms)
	}
	return rep, nil
}

// issue POSTs one op and classifies the outcome.
func issue(ctx context.Context, client *http.Client, target string, o op) (status int, cached int, shed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+o.path, bytes.NewReader(o.body))
	if err != nil {
		return 0, 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, false, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return resp.StatusCode, 0, false, err
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		if resp.Header.Get("Retry-After") != "" {
			return resp.StatusCode, 0, true, nil
		}
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, 0, false, fmt.Errorf("status %d: %.200s", resp.StatusCode, body)
	}
	switch o.path {
	case "/v1/runs":
		var rr serveapi.RunResponse
		if err := json.Unmarshal(body, &rr); err != nil || rr.Report == nil {
			return resp.StatusCode, 0, false, fmt.Errorf("malformed run response: %.200s", body)
		}
		if rr.Cached {
			cached = 1
		}
	case "/v1/sweeps":
		var sr serveapi.SweepResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			return resp.StatusCode, 0, false, fmt.Errorf("malformed sweep response: %.200s", body)
		}
		if sr.Failed > 0 {
			return resp.StatusCode, 0, false, fmt.Errorf("sweep failed %d results", sr.Failed)
		}
		for _, r := range sr.Results {
			if r.Cached {
				cached++
			}
		}
	}
	return resp.StatusCode, cached, false, nil
}

// measureOne times one op into its class's stats.
func measureOne(ctx context.Context, client *http.Client, target string, o op, cs *classStats) {
	begin := time.Now()
	_, cached, shed, err := issue(ctx, client, target, o)
	lat := time.Since(begin)
	cs.mu.Lock()
	cs.requests++
	cs.cacheHits += cached
	if shed {
		cs.shed++
	}
	cs.mu.Unlock()
	switch {
	case err != nil:
		cs.fail(err.Error())
	case !shed:
		cs.hist.record(lat.Microseconds())
	}
}

// checkSLO loads thresholds and grades the report against them.
func checkSLO(path string, rep *loadReport) (*sloResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo file: %w", err)
	}
	var thr sloThresholds
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&thr); err != nil {
		return nil, fmt.Errorf("slo file %s: %w", path, err)
	}
	res := &sloResult{Thresholds: thr}
	cached := rep.Classes[classCached]
	fresh := rep.Classes[classFresh]
	if thr.CachedRunP99Ms > 0 {
		if cached.Latency.Count == 0 {
			res.Violations = append(res.Violations, "no cached-run samples to grade p99 against")
		} else if cached.Latency.P99Ms > thr.CachedRunP99Ms {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"cached-run p99 %.1fms exceeds %.1fms", cached.Latency.P99Ms, thr.CachedRunP99Ms))
		}
	}
	if fresh.Requests > 0 && fresh.ErrorRate > thr.FreshRunMaxErrorRate {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"fresh-run error rate %.3f exceeds %.3f (first error: %s)",
			fresh.ErrorRate, thr.FreshRunMaxErrorRate, fresh.FirstErr))
	}
	res.Pass = len(res.Violations) == 0
	return res, nil
}
