// Command dae-trace generates, inspects and summarizes instruction traces
// in the repository's binary trace format.
//
// Usage:
//
//	dae-trace gen -bench swim -n 1000000 -o swim.trace   # write a trace file
//	dae-trace dump -i swim.trace -n 20                   # print records
//	dae-trace stat -i swim.trace                         # mix/footprint summary
//	dae-trace stat -bench fpppp -n 500000                # stat a generator directly
//	dae-trace list                                       # list built-in benchmarks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "dump":
		err = cmdDump(args)
	case "stat":
		err = cmdStat(args)
	case "list":
		err = cmdList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dae-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dae-trace <gen|dump|stat|list> [flags]
  gen  -bench NAME -n COUNT -o FILE [-seed S] [-offset A]
  dump -i FILE [-n COUNT]
  stat (-i FILE | -bench NAME -n COUNT) [-seed S]
  list`)
}

func cmdList() error {
	for _, b := range workload.All() {
		insts := 0
		for _, k := range b.Kernels {
			insts += k.InstsPerIteration()
		}
		fmt.Printf("%-8s  %d streams, %d kernels, ≤%d insts/iteration\n",
			b.Name, len(b.Streams), len(b.Kernels), insts)
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	n := fs.Int64("n", 1_000_000, "instructions to generate")
	out := fs.String("o", "", "output file")
	seed := fs.Uint64("seed", 0, "workload seed")
	offset := fs.Uint64("offset", 0, "address-space offset")
	fs.Parse(args)
	if *bench == "" || *out == "" {
		return fmt.Errorf("gen requires -bench and -o")
	}
	b, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	r := trace.Limit(b.NewReader(workload.ReaderOpts{Seed: *seed, AddrOffset: *offset}), *n)
	written, err := w.WriteAll(r)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", written, *out)
	return nil
}

func openTrace(path string) (*trace.FileReader, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	fr, err := trace.NewFileReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return fr, func() { f.Close() }, nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	n := fs.Int64("n", 32, "records to print")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("dump requires -i")
	}
	fr, done, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer done()
	var inst isa.Inst
	for i := int64(0); i < *n && fr.Next(&inst); i++ {
		fmt.Printf("%8d  %s\n", i, inst.String())
	}
	return fr.Err()
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	bench := fs.String("bench", "", "benchmark name (instead of a file)")
	n := fs.Int64("n", 1_000_000, "instructions to scan (generator mode)")
	seed := fs.Uint64("seed", 0, "workload seed")
	fs.Parse(args)

	var r trace.Reader
	var cleanup func()
	switch {
	case *in != "":
		fr, done, err := openTrace(*in)
		if err != nil {
			return err
		}
		r, cleanup = fr, done
	case *bench != "":
		b, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		r = trace.Limit(b.NewReader(workload.ReaderOpts{Seed: *seed}), *n)
		cleanup = func() {}
	default:
		return fmt.Errorf("stat requires -i or -bench")
	}
	defer cleanup()

	var (
		counts  [isa.NumOps]int64
		total   int64
		taken   int64
		lines   = make(map[uint64]struct{})
		pcs     = make(map[uint64]struct{})
		minAddr = ^uint64(0)
		maxAddr uint64
	)
	var inst isa.Inst
	for r.Next(&inst) {
		total++
		counts[inst.Op]++
		pcs[inst.PC] = struct{}{}
		if inst.IsBranch() && inst.Taken {
			taken++
		}
		if inst.IsMem() {
			lines[inst.Addr>>5] = struct{}{}
			if inst.Addr < minAddr {
				minAddr = inst.Addr
			}
			if inst.Addr > maxAddr {
				maxAddr = inst.Addr
			}
		}
	}
	if total == 0 {
		return fmt.Errorf("empty trace")
	}
	fmt.Printf("instructions: %d\n", total)
	fmt.Printf("static PCs:   %d\n", len(pcs))
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		fmt.Printf("  %-7s %8d  (%5.1f%%)\n", op, counts[op], 100*float64(counts[op])/float64(total))
	}
	if counts[isa.OpBranch] > 0 {
		fmt.Printf("taken branches: %.1f%%\n", 100*float64(taken)/float64(counts[isa.OpBranch]))
	}
	if len(lines) > 0 {
		fmt.Printf("touched lines: %d (%.1f KB footprint), address range [%#x, %#x]\n",
			len(lines), float64(len(lines))*32/1024, minAddr, maxAddr)
	}
	return nil
}
