// Command dae-trace generates, ingests, inspects and summarizes
// instruction traces.
//
// Usage:
//
//	dae-trace export -bench swim -t 4 -n 1000000 -o swim.dct  # multi-stream container
//	dae-trace import -i ext.txt -format text -o ext.dct       # ingest an external trace
//	dae-trace gen -bench swim -n 1000000 -o swim.trace        # legacy single-stream file
//	dae-trace dump -i swim.dct -n 20                          # print records
//	dae-trace stat -i swim.dct                                # mix/footprint summary
//	cat ext.bin | dae-trace stat -i -                         # any input reads stdin via -i -
//	dae-trace stat -bench fpppp -n 500000                     # stat a generator directly
//	dae-trace list                                            # the curated workload catalog
//
// File formats are sniffed from their magic bytes (text is the magic-less
// fallback), so -format is only needed to override the detection.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/traceio"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "export":
		err = cmdExport(args)
	case "import":
		err = cmdImport(args)
	case "dump":
		err = cmdDump(args)
	case "stat":
		err = cmdStat(args)
	case "list":
		err = cmdList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dae-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dae-trace <export|import|gen|dump|stat|list> [flags]
  export -bench NAME -o FILE [-t CONTEXTS] [-n PER-STREAM] [-seed S] [-note TEXT]
  import -i FILE|- -o FILE [-format auto|container|legacy|bin|text] [-name N] [-note TEXT]
  gen    -bench NAME -n COUNT -o FILE [-seed S] [-offset A]
  dump   -i FILE|- [-n COUNT] [-format F]
  stat   (-i FILE|- | -bench NAME -n COUNT) [-seed S] [-format F]
  list`)
}

func cmdList() error {
	for _, e := range workload.Catalog() {
		fmt.Printf("%-8s  %-9s  %d streams, %d kernels, ≤%d insts/iteration, %.1f MB footprint\n",
			e.Name, e.Kind, e.Streams, e.Kernels, e.InstsPerIteration,
			float64(e.FootprintBytes)/(1<<20))
		fmt.Printf("          %s\n", e.Provenance)
	}
	return nil
}

// openInput opens the input path, where "-" means stdin.
func openInput(path string) (io.Reader, func() error, error) {
	if path == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// decodeStreams reads a whole trace in any accepted format into
// per-stream slices, plus the container header when there is one
// (single-stream formats report a synthesized one-stream header).
func decodeStreams(r io.Reader, format string) (traceio.Header, [][]isa.Inst, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	f, err := traceio.ParseFormat(format)
	if err != nil {
		return traceio.Header{}, nil, err
	}
	if f == traceio.FormatAuto {
		if f, err = traceio.Detect(br); err != nil {
			return traceio.Header{}, nil, err
		}
	}
	one := func(insts []isa.Inst, err error) (traceio.Header, [][]isa.Inst, error) {
		if err != nil {
			return traceio.Header{}, nil, err
		}
		return traceio.Header{Streams: 1}, [][]isa.Inst{insts}, nil
	}
	switch f {
	case traceio.FormatContainer:
		return traceio.ReadAll(br)
	case traceio.FormatLegacy:
		fr, err := trace.NewFileReader(br)
		if err != nil {
			return traceio.Header{}, nil, err
		}
		var insts []isa.Inst
		var in isa.Inst
		for fr.Next(&in) {
			insts = append(insts, in)
		}
		return one(insts, fr.Err())
	case traceio.FormatBinary:
		return one(traceio.ParseBinary(br))
	case traceio.FormatText:
		return one(traceio.ParseText(br))
	default:
		return traceio.Header{}, nil, fmt.Errorf("unsupported trace format %q", f)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	n := fs.Int64("n", 1_000_000, "instructions to generate")
	out := fs.String("o", "", "output file")
	seed := fs.Uint64("seed", 0, "workload seed")
	offset := fs.Uint64("offset", 0, "address-space offset")
	fs.Parse(args)
	if *bench == "" || *out == "" {
		return fmt.Errorf("gen requires -bench and -o")
	}
	b, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	r := trace.Limit(b.NewReader(workload.ReaderOpts{Seed: *seed, AddrOffset: *offset}), *n)
	written, err := w.WriteAll(r)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", written, *out)
	return nil
}

// cmdExport captures a built-in benchmark's exact per-context streams
// into a container, so `dae-sim -trace` replays what the generator would
// have produced bit-identically.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	contexts := fs.Int("t", 1, "hardware contexts (one stream per context)")
	n := fs.Int64("n", 1_000_000, "instructions per stream")
	out := fs.String("o", "", "output container file")
	seed := fs.Uint64("seed", 0, "workload seed")
	note := fs.String("note", "", "provenance note stored in the container")
	fs.Parse(args)
	if *bench == "" || *out == "" {
		return fmt.Errorf("export requires -bench and -o")
	}
	b, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	counts, err := workload.ExportTrace(f, b, *contexts, *seed, *n, *note)
	if err != nil {
		return err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	fmt.Printf("wrote %d records (%d streams × %d) to %s\n", total, len(counts), *n, *out)
	return nil
}

// cmdImport ingests a trace in any accepted format and writes it as a
// container, validating every record on the way in.
func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	in := fs.String("i", "-", "input trace file (- reads stdin)")
	out := fs.String("o", "", "output container file")
	format := fs.String("format", "auto", "input format (auto, container, legacy, bin, text)")
	name := fs.String("name", "", "container display name (default: the input's, if any)")
	note := fs.String("note", "", "provenance note (default: the input's, if any)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("import requires -o")
	}
	r, done, err := openInput(*in)
	if err != nil {
		return err
	}
	defer done()
	h, streams, err := decodeStreams(r, *format)
	if err != nil {
		return err
	}
	if *name == "" {
		*name = h.Name
	}
	if *note == "" {
		*note = h.Note
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := traceio.NewWriter(f, traceio.Header{Streams: len(streams), Name: *name, Note: *note})
	if err != nil {
		return err
	}
	var total int64
	for s, insts := range streams {
		n, err := w.AppendAll(s, trace.Slice(insts))
		if err != nil {
			return err
		}
		total += n
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("imported %d records (%d streams) to %s\n", total, len(streams), *out)
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (- reads stdin)")
	n := fs.Int64("n", 32, "records to print")
	format := fs.String("format", "auto", "input format (auto sniffs)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("dump requires -i")
	}
	r, done, err := openInput(*in)
	if err != nil {
		return err
	}
	defer done()
	h, streams, err := decodeStreams(r, *format)
	if err != nil {
		return err
	}
	printed := int64(0)
	for s, insts := range streams {
		for i, inst := range insts {
			if printed >= *n {
				return nil
			}
			if h.Streams > 1 {
				fmt.Printf("s%-3d %8d  %s\n", s, i, inst.String())
			} else {
				fmt.Printf("%8d  %s\n", i, inst.String())
			}
			printed++
		}
	}
	return nil
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (- reads stdin)")
	bench := fs.String("bench", "", "benchmark name (instead of a file)")
	n := fs.Int64("n", 1_000_000, "instructions to scan (generator mode)")
	seed := fs.Uint64("seed", 0, "workload seed")
	format := fs.String("format", "auto", "input format (auto sniffs)")
	fs.Parse(args)

	var streams [][]isa.Inst
	switch {
	case *in != "":
		r, done, err := openInput(*in)
		if err != nil {
			return err
		}
		defer done()
		h, s, err := decodeStreams(r, *format)
		if err != nil {
			return err
		}
		streams = s
		if h.Name != "" || h.Note != "" {
			fmt.Printf("container:    %q", h.Name)
			if h.Note != "" {
				fmt.Printf("  (%s)", h.Note)
			}
			fmt.Println()
		}
	case *bench != "":
		b, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		r := trace.Limit(b.NewReader(workload.ReaderOpts{Seed: *seed}), *n)
		var insts []isa.Inst
		var inst isa.Inst
		for r.Next(&inst) {
			insts = append(insts, inst)
		}
		streams = [][]isa.Inst{insts}
	default:
		return fmt.Errorf("stat requires -i or -bench")
	}

	var (
		counts  [isa.NumOps]int64
		total   int64
		taken   int64
		lines   = make(map[uint64]struct{})
		pcs     = make(map[uint64]struct{})
		minAddr = ^uint64(0)
		maxAddr uint64
	)
	for _, insts := range streams {
		for _, inst := range insts {
			total++
			counts[inst.Op]++
			pcs[inst.PC] = struct{}{}
			if inst.IsBranch() && inst.Taken {
				taken++
			}
			if inst.IsMem() {
				lines[inst.Addr>>5] = struct{}{}
				if inst.Addr < minAddr {
					minAddr = inst.Addr
				}
				if inst.Addr > maxAddr {
					maxAddr = inst.Addr
				}
			}
		}
	}
	if total == 0 {
		return fmt.Errorf("empty trace")
	}
	if len(streams) > 1 {
		fmt.Printf("streams:      %d\n", len(streams))
	}
	fmt.Printf("instructions: %d\n", total)
	fmt.Printf("static PCs:   %d\n", len(pcs))
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		fmt.Printf("  %-7s %8d  (%5.1f%%)\n", op, counts[op], 100*float64(counts[op])/float64(total))
	}
	if counts[isa.OpBranch] > 0 {
		fmt.Printf("taken branches: %.1f%%\n", 100*float64(taken)/float64(counts[isa.OpBranch]))
	}
	if len(lines) > 0 {
		fmt.Printf("touched lines: %d (%.1f KB footprint), address range [%#x, %#x]\n",
			len(lines), float64(len(lines))*32/1024, minAddr, maxAddr)
	}
	return nil
}
