// Command dae-sim runs one simulator configuration and prints the full
// statistics report.
//
// Examples:
//
//	dae-sim -threads 3                     # Figure-2 machine, mixed workload
//	dae-sim -threads 1 -bench swim -l2 64  # single benchmark, L2 latency 64
//	dae-sim -threads 4 -nondecoupled       # decoupling disabled
//	dae-sim -section2 -bench fpppp -l2 256 # the paper's Section-2 machine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	daesim "repro"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		threads      = flag.Int("threads", 1, "hardware contexts")
		bench        = flag.String("bench", "", "single benchmark to run (default: the all-benchmark mix); one of "+strings.Join(daesim.Benchmarks(), ","))
		l2           = flag.Int64("l2", 16, "L2 latency in cycles")
		nondecoupled = flag.Bool("nondecoupled", false, "disable access/execute decoupling (no AP/EP slippage)")
		section2     = flag.Bool("section2", false, "use the paper's Section-2 machine (4-way, shared FUs, scaled queues)")
		warmup       = flag.Int64("warmup", daesim.DefaultWarmup, "warm-up instructions (excluded from stats)")
		measure      = flag.Int64("measure", daesim.DefaultMeasure, "measured instructions")
		seed         = flag.Uint64("seed", 0, "workload seed")
		forwarding   = flag.Bool("forwarding", false, "enable store-to-load forwarding in the SAQ")
		fetchRR      = flag.Bool("fetch-rr", false, "use round-robin fetch instead of ICOUNT")
		mix          = flag.Bool("mixdetail", false, "also print the graduated instruction mix")
		traceFiles   = flag.String("trace", "", "comma-separated trace files (one per thread; overrides -bench/mix)")
		jsonOut      = flag.Bool("json", false, "emit the report as JSON (for scripting)")
		cacheDir     = flag.String("cache", "", "on-disk result cache directory shared with dae-sweep (bench/mix runs only)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file (inspect with go tool pprof)")
	)
	flag.Parse()

	// fail stops an active CPU profile (a no-op otherwise, keeping the
	// output file valid) before exiting on an error.
	fail := func(err error) {
		pprof.StopCPUProfile()
		fmt.Fprintln(os.Stderr, "dae-sim:", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	var m daesim.Machine
	if *section2 {
		m = daesim.Section2()
	} else {
		m = daesim.Figure2(*threads)
	}
	m = m.WithThreads(*threads).WithL2Latency(*l2)
	if *nondecoupled {
		m = m.NonDecoupled()
	}
	m.StoreForwarding = *forwarding
	if *fetchRR {
		m.FetchPolicy = daesim.FetchRoundRobin
	}

	opts := daesim.RunOpts{WarmupInsts: *warmup, MeasureInsts: *measure, Seed: *seed}
	var (
		rep daesim.Report
		err error
	)
	if *traceFiles != "" {
		rep, err = runFromFiles(m, strings.Split(*traceFiles, ","), opts)
	} else {
		rep, err = runJob(m, *bench, *cacheDir, opts)
	}
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(rep.String())
	if *mix {
		mixes := rep.InstMix()
		fmt.Printf("inst mix: int=%.1f%% fp=%.1f%% load=%.1f%% store=%.1f%% branch=%.1f%%\n",
			100*mixes[0], 100*mixes[1], 100*mixes[2], 100*mixes[3], 100*mixes[4])
	}
}

// runJob executes a synthetic-workload run through the batch runner, so
// a single point computed here lands in (and is served from) the same
// result cache dae-sweep uses.
func runJob(m daesim.Machine, bench, cacheDir string, opts daesim.RunOpts) (daesim.Report, error) {
	// Preserve the daesim.RunOpts convention: explicit zero budgets
	// select the documented defaults.
	if opts.WarmupInsts <= 0 {
		opts.WarmupInsts = daesim.DefaultWarmup
	}
	if opts.MeasureInsts <= 0 {
		opts.MeasureInsts = daesim.DefaultMeasure
	}
	w := runner.MixWorkload(opts.Seed, opts.SegmentLen)
	key := fmt.Sprintf("dae-sim mix threads=%d L2=%d", m.Threads, m.Mem.L2Latency)
	if bench != "" {
		w = runner.BenchWorkload(bench, opts.Seed)
		key = fmt.Sprintf("dae-sim %s threads=%d L2=%d", bench, m.Threads, m.Mem.L2Latency)
	}
	r, err := runner.New(runner.Options{Workers: 1, CacheDir: cacheDir})
	if err != nil {
		return daesim.Report{}, err
	}
	results, err := r.Run([]runner.Job{{
		Key:      key,
		Machine:  m,
		Workload: w,
		Budget: runner.Budget{
			WarmupInsts:  opts.WarmupInsts,
			MeasureInsts: opts.MeasureInsts,
			MaxCycles:    opts.MaxCycles,
		},
	}})
	if err != nil {
		return daesim.Report{}, err
	}
	return results[0].Report, nil
}

// runFromFiles drives the machine with pre-recorded trace files (one per
// thread), as produced by `dae-trace gen`. Finite traces run to
// completion; the measurement window still applies if smaller.
func runFromFiles(m daesim.Machine, paths []string, opts daesim.RunOpts) (daesim.Report, error) {
	if len(paths) != m.Threads {
		return daesim.Report{}, fmt.Errorf("%d trace files for %d threads", len(paths), m.Threads)
	}
	sources := make([]trace.Reader, len(paths))
	closers := make([]*os.File, len(paths))
	defer func() {
		for _, f := range closers {
			if f != nil {
				f.Close()
			}
		}
	}()
	for i, p := range paths {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return daesim.Report{}, err
		}
		closers[i] = f
		fr, err := trace.NewFileReader(f)
		if err != nil {
			return daesim.Report{}, fmt.Errorf("%s: %w", p, err)
		}
		sources[i] = fr
	}
	res, err := sim.Run(sim.Options{
		Machine:      m,
		Sources:      sources,
		WarmupInsts:  opts.WarmupInsts,
		MeasureInsts: opts.MeasureInsts,
		MaxCycles:    opts.MaxCycles,
	})
	if err != nil {
		return daesim.Report{}, err
	}
	return res.Report, nil
}
