// Command dae-sim runs one simulator configuration and prints the full
// statistics report.
//
// Examples:
//
//	dae-sim -threads 3                     # Figure-2 machine, mixed workload
//	dae-sim -threads 1 -bench swim -l2 64  # single benchmark, L2 latency 64
//	dae-sim -threads 4 -nondecoupled       # decoupling disabled
//	dae-sim -section2 -bench fpppp -l2 256 # the paper's Section-2 machine
//	dae-sim -threads 4 -l2size 262144      # finite 256KB shared L2 + DRAM
//	                                       # instead of the flat infinite L2
//	dae-sim -cores 2 -threads 2 -l2size 262144   # 2-core CMP sharing the L2
//	dae-sim -cores 4 -threads 1 -l2size 65536 -privatel2  # per-core L2s
//	dae-sim -threads 4 -trace swim.dct           # replay a dae-trace container
//	dae-sim -threads 2 -spec-frac 0.3 -spec-misspec 0.05  # speculative-DAE
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"

	daesim "repro"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		threads      = flag.Int("threads", 1, "hardware contexts (per core with -cores)")
		cores        = flag.Int("cores", 1, "CMP cores, each with its own contexts and private L1, composed over the finite shared hierarchy (-l2size) or the flat L2")
		privateL2    = flag.Bool("privatel2", false, "replicate the finite L2 per core instead of sharing it (with -cores and -l2size)")
		bench        = flag.String("bench", "", "single benchmark to run (default: the all-benchmark mix); one of "+strings.Join(daesim.Benchmarks(), ","))
		l2           = flag.Int64("l2", 16, "flat L2 latency in cycles (ignored with -l2size)")
		l2Size       = flag.Int("l2size", 0, "finite shared L2 capacity in bytes; 0 keeps the paper's infinite flat L2")
		l2Assoc      = flag.Int("l2assoc", 8, "finite L2 associativity (with -l2size)")
		l2MSHRs      = flag.Int("l2mshrs", 16, "finite L2 MSHR count (with -l2size)")
		l2HitLat     = flag.Int64("l2hitlat", 16, "finite L2 array access latency in cycles (with -l2size)")
		memBus       = flag.Int("membus", 16, "L2↔memory bus width in bytes/cycle (with -l2size)")
		dram         = flag.Int64("dram", 64, "DRAM access latency in cycles behind the finite L2 (with -l2size)")
		nondecoupled = flag.Bool("nondecoupled", false, "disable access/execute decoupling (no AP/EP slippage)")
		section2     = flag.Bool("section2", false, "use the paper's Section-2 machine (4-way, shared FUs, scaled queues)")
		warmup       = flag.Int64("warmup", daesim.DefaultWarmup, "warm-up instructions (excluded from stats)")
		measure      = flag.Int64("measure", daesim.DefaultMeasure, "measured instructions")
		mode         = flag.String("mode", "exact", "execution mode: exact (detailed, bit-exact), adaptive (detailed, auto-tuned driver, bit-identical to exact) or sampled (SMARTS-style estimate with confidence interval)")
		samplePeriod = flag.Int64("sample-period", 0, "sampled mode: sampling period in instructions (0 = default "+fmt.Sprint(sim.DefaultSamplingPeriod)+")")
		sampleUnit   = flag.Int64("sample-unit", 0, "sampled mode: measured unit length in instructions (0 = default "+fmt.Sprint(sim.DefaultSamplingUnit)+")")
		sampleWarmup = flag.Int64("sample-warmup", 0, "sampled mode: detailed warm-up before each unit (0 = default "+fmt.Sprint(sim.DefaultSamplingWarmup)+")")
		seed         = flag.Uint64("seed", 0, "workload seed")
		forwarding   = flag.Bool("forwarding", false, "enable store-to-load forwarding in the SAQ")
		fetchRR      = flag.Bool("fetch-rr", false, "use round-robin fetch instead of ICOUNT")
		mix          = flag.Bool("mixdetail", false, "also print the graduated instruction mix")
		traceFiles   = flag.String("trace", "", "trace file to replay (overrides -bench/mix); a single path runs as a content-addressed trace Request in any dae-trace format, a comma-separated list replays one legacy file per thread")
		traceFormat  = flag.String("trace-format", "", "single -trace file format (auto, container, legacy, bin, text; default sniffs)")
		specFrac     = flag.Float64("spec-frac", 0, "speculative-DAE: fraction of access-slice loads hoisted speculatively [0,1]")
		specMisspec  = flag.Float64("spec-misspec", 0, "speculative-DAE: misspeculation probability per speculative load [0,1]")
		specSquash   = flag.Int64("spec-squash", 0, "speculative-DAE: squash refetch penalty in cycles (0 = default "+fmt.Sprint(daesim.DefaultSquashCycles)+" when loads speculate)")
		specLoD      = flag.Int64("spec-lod", 0, "speculative-DAE: force a loss-of-decoupling event every N fetched instructions per context (0 = never)")
		parallel     = flag.Int("parallel", 1, "advance a multi-core run's cores on up to N goroutines in deterministic epochs; results are bit-identical to -parallel 1 and the knob never changes the Request hash (generator workloads only — trace replay stays serial)")
		jsonOut      = flag.Bool("json", false, "emit the report as JSON (for scripting)")
		cacheDir     = flag.String("cache", "", "on-disk result cache directory shared with dae-sweep and dae-serve (bench/mix runs only)")
		hashOnly     = flag.Bool("hash", false, "print the run's Request content hash and exit without simulating")
		requestOut   = flag.Bool("request", false, "print the run's Request JSON (the dae-serve POST /v1/runs body) and exit without simulating")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file (inspect with go tool pprof)")
	)
	flag.Parse()

	// fail stops an active CPU profile (a no-op otherwise, keeping the
	// output file valid) before exiting on an error.
	fail := func(err error) {
		pprof.StopCPUProfile()
		fmt.Fprintln(os.Stderr, "dae-sim:", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	var m daesim.Machine
	if *section2 {
		m = daesim.Section2()
	} else {
		m = daesim.Figure2(*threads)
	}
	m = m.WithThreads(*threads).WithL2Latency(*l2).WithCores(*cores)
	if *l2Size > 0 {
		spec := daesim.SharedL2(*l2Size, *l2Assoc)
		spec.MSHRs = *l2MSHRs
		spec.HitLatency = *l2HitLat
		spec.BusBytesPerCycle = *memBus
		m = m.WithHierarchy(*dram, spec)
	}
	if *privateL2 {
		m = m.WithPrivateHierarchy()
	}
	if *nondecoupled {
		m = m.NonDecoupled()
	}
	m.StoreForwarding = *forwarding
	if *fetchRR {
		m.FetchPolicy = daesim.FetchRoundRobin
	}
	if *specFrac != 0 || *specMisspec != 0 || *specSquash != 0 || *specLoD != 0 {
		m = m.WithSpeculation(daesim.Speculation{
			SpecLoadFrac: *specFrac,
			MisspecProb:  *specMisspec,
			SquashCycles: *specSquash,
			LoDEvery:     *specLoD,
		})
	}

	// Ctrl-C cancels the simulation through the Engine's context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := daesim.RunOpts{WarmupInsts: *warmup, MeasureInsts: *measure, Seed: *seed}
	var sampling *daesim.Sampling
	if *mode == daesim.ModeSampled {
		sampling = &daesim.Sampling{
			PeriodInsts: *samplePeriod,
			UnitInsts:   *sampleUnit,
			WarmupInsts: *sampleWarmup,
		}
	} else if *samplePeriod != 0 || *sampleUnit != 0 || *sampleWarmup != 0 {
		fail(fmt.Errorf("-sample-* flags require -mode sampled"))
	}
	var (
		rep daesim.Report
		err error
	)
	if strings.Contains(*traceFiles, ",") {
		// Legacy multi-file replay: one single-stream file per thread,
		// outside the Request/cache surface.
		if *hashOnly || *requestOut {
			fail(fmt.Errorf("-hash/-request require a single -trace file or a synthetic workload"))
		}
		rep, err = runFromFiles(ctx, m, strings.Split(*traceFiles, ","), opts, *mode, sampling)
	} else {
		req := daesim.MixRequest(m, opts)
		what := "mix"
		switch {
		case *traceFiles != "":
			// A single trace file is a first-class content-addressed
			// Request: hashable, cacheable and servable like any other.
			if *seed != 0 {
				fail(fmt.Errorf("-seed applies to generator workloads, not trace replay"))
			}
			req = daesim.TraceRequest(*traceFiles, *traceFormat, m, opts)
			what = "trace"
		case *bench != "":
			req = daesim.BenchmarkRequest(*bench, m, opts)
			what = *bench
		}
		req.Budget.Mode = *mode
		req.Budget.Sampling = sampling
		req = req.Normalized()
		if err := req.Validate(); err != nil {
			fail(err)
		}
		memDesc := fmt.Sprintf("L2=%d", m.Mem.L2Latency)
		if *l2Size > 0 {
			memDesc = fmt.Sprintf("l2size=%d", *l2Size)
		}
		coresDesc := ""
		if m.CoreCount() > 1 {
			coresDesc = fmt.Sprintf("cores=%d ", m.CoreCount())
		}
		req.Label = fmt.Sprintf("dae-sim %s %sthreads=%d %s", what, coresDesc, m.Threads, memDesc)
		if *hashOnly {
			fmt.Println(req.Hash())
			return
		}
		if *requestOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(req); err != nil {
				fail(err)
			}
			return
		}
		rep, err = runRequest(ctx, req, *cacheDir, *parallel)
	}
	if err != nil {
		fail(err)
	}
	if *traceFiles != "" && rep.Graduated == 0 {
		// Finite traces run to exhaustion; a warm-up budget at least as
		// long as the trace leaves nothing to measure.
		fmt.Fprintf(os.Stderr, "dae-sim: warning: measurement window is empty — the trace ran dry during warm-up (lower -warmup below the trace's per-stream length)\n")
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(rep.String())
	if *mix {
		mixes := rep.InstMix()
		fmt.Printf("inst mix: int=%.1f%% fp=%.1f%% load=%.1f%% store=%.1f%% branch=%.1f%%\n",
			100*mixes[0], 100*mixes[1], 100*mixes[2], 100*mixes[3], 100*mixes[4])
	}
}

// runRequest executes a synthetic-workload run through the public
// Engine, so a single point computed here lands in (and is served from)
// the same content-addressed result cache dae-sweep and dae-serve use.
func runRequest(ctx context.Context, req daesim.Request, cacheDir string, parallel int) (daesim.Report, error) {
	// The Engine budgets intra-run workers from its global Workers
	// semaphore, so a single-request process must provision one slot per
	// requested epoch worker (Workers: 1 would always fall back to serial).
	workers := 1
	if parallel > workers {
		workers = parallel
	}
	eng, err := daesim.NewEngine(daesim.EngineOpts{Workers: workers, Parallel: parallel, CacheDir: cacheDir})
	if err != nil {
		return daesim.Report{}, err
	}
	return eng.Run(ctx, req)
}

// runFromFiles drives the machine with pre-recorded trace files (one per
// thread), as produced by `dae-trace gen`. Finite traces run to
// completion; the measurement window still applies if smaller.
func runFromFiles(ctx context.Context, m daesim.Machine, paths []string, opts daesim.RunOpts, mode string, sampling *daesim.Sampling) (daesim.Report, error) {
	if len(paths) != m.TotalContexts() {
		return daesim.Report{}, fmt.Errorf("%d trace files for %d contexts", len(paths), m.TotalContexts())
	}
	sources := make([]trace.Reader, len(paths))
	closers := make([]*os.File, len(paths))
	defer func() {
		for _, f := range closers {
			if f != nil {
				f.Close()
			}
		}
	}()
	for i, p := range paths {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return daesim.Report{}, err
		}
		closers[i] = f
		fr, err := trace.NewFileReader(f)
		if err != nil {
			return daesim.Report{}, fmt.Errorf("%s: %w", p, err)
		}
		sources[i] = fr
	}
	res, err := sim.Run(ctx, sim.Options{
		Machine:      m,
		Sources:      sources,
		WarmupInsts:  opts.WarmupInsts,
		MeasureInsts: opts.MeasureInsts,
		MaxCycles:    opts.MaxCycles,
		Mode:         simMode(mode),
		Sampling:     simSampling(sampling),
	})
	if err != nil {
		return daesim.Report{}, err
	}
	return res.Report, nil
}

func simMode(mode string) sim.Mode {
	if mode == daesim.ModeExact {
		return sim.ModeExact
	}
	return sim.Mode(mode)
}

func simSampling(s *daesim.Sampling) sim.Sampling {
	if s == nil {
		return sim.Sampling{}
	}
	return sim.Sampling{
		PeriodInsts: s.PeriodInsts,
		UnitInsts:   s.UnitInsts,
		WarmupInsts: s.WarmupInsts,
	}
}
