package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseArgsDefaults(t *testing.T) {
	opts, err := parseArgs(nil, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if opts.fig != "all" {
		t.Errorf("default fig = %q, want all", opts.fig)
	}
	def := opts.budget
	if def.WarmupPerThread != 150_000 || def.MeasurePerThread != 500_000 {
		t.Errorf("default budget = %d/%d", def.WarmupPerThread, def.MeasurePerThread)
	}
	if opts.cacheDir != "" || opts.csvDir != "" || opts.progress {
		t.Error("cache/csv/progress should default off")
	}
}

func TestParseArgsOverrides(t *testing.T) {
	opts, err := parseArgs([]string{
		"-fig", "4B", "-warmup", "123", "-measure", "456", "-seed", "9",
		"-workers", "3", "-csv", "out", "-cache", "cachedir", "-progress",
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if opts.fig != "4b" {
		t.Errorf("fig not lower-cased: %q", opts.fig)
	}
	b := opts.budget
	if b.WarmupPerThread != 123 || b.MeasurePerThread != 456 || b.Seed != 9 || b.Parallelism != 3 {
		t.Errorf("budget = %+v", b)
	}
	if opts.csvDir != "out" || opts.cacheDir != "cachedir" || !opts.progress {
		t.Errorf("opts = %+v", opts)
	}
}

func TestParseArgsRejectsGarbage(t *testing.T) {
	var stderr strings.Builder
	if _, err := parseArgs([]string{"-no-such-flag"}, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseArgs([]string{"positional"}, &stderr); err == nil {
		t.Error("positional argument accepted")
	}
}

func TestFlagErrorsPrintedOnce(t *testing.T) {
	for _, args := range [][]string{{"-no-such-flag"}, {"positional"}} {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit code %d, want 2", args, code)
		}
		out := stderr.String()
		for _, msg := range []string{"not defined", "unexpected arguments"} {
			if n := strings.Count(out, msg); n > 1 {
				t.Errorf("%v: error %q printed %d times:\n%s", args, msg, n, out)
			}
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-fig", "9z"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), `unknown figure "9z"`) {
		t.Errorf("stderr = %q", stderr.String())
	}
	// The error enumerates every known key so the user need not guess.
	for _, key := range []string{"1a", "a7", "i1", "c1", "-fig list"} {
		if !strings.Contains(stderr.String(), key) {
			t.Errorf("unknown-figure error does not mention %q: %q", key, stderr.String())
		}
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected stdout: %q", stdout.String())
	}
}

func TestRunFigList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-fig", "list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	// Every catalog key appears with a description, including the
	// interference study and the catch-all.
	for _, f := range figureCatalog {
		if !strings.Contains(out, f.key) || !strings.Contains(out, f.desc) {
			t.Errorf("list output missing %q (%s)", f.key, f.desc)
		}
	}
	if !strings.Contains(out, "all") {
		t.Error("list output missing the 'all' key")
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "-fig") {
		t.Error("usage text missing flag documentation")
	}
}

// tinyArgs keeps test sweeps to a few thousand instructions per run.
func tinyArgs(extra ...string) []string {
	return append([]string{"-warmup", "1000", "-measure", "4000"}, extra...)
}

func TestRunAblationOutputShape(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(tinyArgs("-fig", "a4"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Ablation A4", "config", "IPC", "bypass only (paper)", "forwarding"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunInterferenceOutputShape(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(tinyArgs("-fig", "i1"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Ablation I1", "L2 miss", "mem-bus", "64KB", "1024KB", "6T"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCachedRerunIsBitIdentical(t *testing.T) {
	cache := t.TempDir()
	csvDir := t.TempDir()
	args := tinyArgs("-fig", "a2", "-cache", cache, "-csv", csvDir, "-progress")

	var out1, err1 strings.Builder
	if code := run(args, &out1, &err1); code != 0 {
		t.Fatalf("first run failed: %s", err1.String())
	}
	csv1, err := os.ReadFile(filepath.Join(csvDir, "a2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // ICOUNT and round-robin points
		t.Fatalf("%d cache entries after A2, want 2", len(entries))
	}
	if !strings.Contains(err1.String(), "2 simulated, 0 cache hits") {
		t.Errorf("first-run progress summary: %q", err1.String())
	}

	var out2, err2 strings.Builder
	if code := run(args, &out2, &err2); code != 0 {
		t.Fatalf("second run failed: %s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("cached re-run changed stdout:\n--- first\n%s--- second\n%s", out1.String(), out2.String())
	}
	csv2, err := os.ReadFile(filepath.Join(csvDir, "a2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(csv1) != string(csv2) {
		t.Error("cached re-run changed the CSV output")
	}
	if !strings.Contains(err2.String(), "0 simulated, 2 cache hits") {
		t.Errorf("re-run progress summary: %q", err2.String())
	}
}

func TestRunFigure3Table(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(tinyArgs("-fig", "3", "-workers", "2"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Figure 3", "threads", "speedup 1→3 threads"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestJSONStreamKeepsStdoutMachineParseable is the stream-separation
// gate: with -json and -progress together, every stdout line must parse
// as a point record while all human diagnostics land on stderr.
func TestJSONStreamKeepsStdoutMachineParseable(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(tinyArgs("-fig", "3", "-json", "-progress"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d stdout records for fig3's 6 points", len(lines))
	}
	for i, line := range lines {
		var rec pointRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stdout line %d is not JSON: %v\n%s", i, err, line)
		}
		if rec.Key == "" || rec.Hash == "" || rec.Report == nil || rec.Error != "" {
			t.Errorf("record %d incomplete: %+v", i, rec)
		}
		if rec.Report.Graduated == 0 {
			t.Errorf("record %d carries an empty report", i)
		}
	}
	// Progress went to stderr, not stdout.
	if !strings.Contains(stderr.String(), "[1/6]") {
		t.Error("-progress output missing from stderr")
	}
	if strings.Contains(stdout.String(), "[1/6]") {
		t.Error("-progress output leaked onto stdout")
	}
	// And without -json the tables appear; with it they are suppressed.
	if strings.Contains(stdout.String(), "Figure 3") {
		t.Error("text table leaked into the JSON stream")
	}
}

// TestProgressNeverWritesStdout pins the satellite contract directly:
// -progress alone must leave stdout exactly as table output (no
// progress lines), keeping piped output clean.
func TestProgressNeverWritesStdout(t *testing.T) {
	var plain, withProgress, stderr1, stderr2 strings.Builder
	if code := run(tinyArgs("-fig", "3"), &plain, &stderr1); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr1.String())
	}
	if code := run(tinyArgs("-fig", "3", "-progress"), &withProgress, &stderr2); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr2.String())
	}
	if plain.String() != withProgress.String() {
		t.Error("-progress changed stdout")
	}
	if !strings.Contains(stderr2.String(), "done") {
		t.Error("progress lines missing from stderr")
	}
}

func TestRunC1OutputShape(t *testing.T) {
	csvDir := t.TempDir()
	var stdout, stderr strings.Builder
	if code := run(tinyArgs("-fig", "c1", "-csv", csvDir), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Figure C1", "cores", "shared", "private", "256KB", "invals"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	b, err := os.ReadFile(filepath.Join(csvDir, "c1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "cores,contexts,l2_bytes,private") {
		t.Errorf("c1.csv header: %q", string(b[:60]))
	}
}
