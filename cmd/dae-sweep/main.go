// Command dae-sweep regenerates the paper's figures and the repository's
// ablation studies as text tables.
//
// Usage:
//
//	dae-sweep -fig all                 # everything (minutes)
//	dae-sweep -fig 1a|1b|1c|1d         # Figure 1 panels (Section-2 machine)
//	dae-sweep -fig 3                   # Figure 3 issue-slot breakdown
//	dae-sweep -fig 4a|4b|4c            # Figure 4 latency tolerance
//	dae-sweep -fig 5                   # Figure 5 thread requirements
//	dae-sweep -fig a1..a6              # ablations
//	dae-sweep -fig 1d -measure 2000000 # bigger budget per thread
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure/ablation to regenerate (1a,1b,1c,1d,3,4a,4b,4c,5,a1..a7,all)")
		warmup  = flag.Int64("warmup", 0, "warm-up instructions per thread (0 = default)")
		measure = flag.Int64("measure", 0, "measured instructions per thread (0 = default)")
		seed    = flag.Uint64("seed", 0, "workload seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		csvDir  = flag.String("csv", "", "also write raw results as CSV files into this directory")
	)
	flag.Parse()

	budget := experiments.DefaultBudget()
	if *warmup > 0 {
		budget.WarmupPerThread = *warmup
	}
	if *measure > 0 {
		budget.MeasurePerThread = *measure
	}
	budget.Seed = *seed
	budget.Parallelism = *workers

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dae-sweep:", err)
			os.Exit(1)
		}
	}
	if err := run(strings.ToLower(*fig), budget, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "dae-sweep:", err)
		os.Exit(1)
	}
}

// csvWriter is implemented by every experiment result.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

// saveCSV writes one result's raw data when a CSV directory is set.
func saveCSV(dir, name string, r csvWriter) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(dir, name))
	return nil
}

func run(fig string, budget experiments.Budget, csvDir string) error {
	want := func(keys ...string) bool {
		if fig == "all" {
			return true
		}
		for _, k := range keys {
			if fig == k {
				return true
			}
		}
		return false
	}

	if want("1a", "1b", "1c", "1d", "1") {
		r, err := experiments.Fig1(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig1.csv", r); err != nil {
			return err
		}
		if want("1a", "1") {
			fmt.Println(r.TableA())
		}
		if want("1b", "1") {
			fmt.Println(r.TableB())
		}
		if want("1c", "1") {
			fmt.Println(r.TableC())
		}
		if want("1d", "1") {
			fmt.Println(r.TableD())
		}
	}
	if want("3") {
		r, err := experiments.Fig3(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig3.csv", r); err != nil {
			return err
		}
		fmt.Println(r.Table())
		fmt.Printf("speedup 1→3 threads: %.2fx (paper: 2.31x)\n\n", r.Speedup(3))
	}
	if want("4a", "4b", "4c", "4") {
		r, err := experiments.Fig4(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig4.csv", r); err != nil {
			return err
		}
		if want("4a", "4") {
			fmt.Println(r.TableA())
		}
		if want("4b", "4") {
			fmt.Println(r.TableB())
		}
		if want("4c", "4") {
			fmt.Println(r.TableC())
		}
	}
	if want("5") {
		r, err := experiments.Fig5(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig5.csv", r); err != nil {
			return err
		}
		fmt.Println(r.Table())
	}

	ablations := []struct {
		key string
		run func(experiments.Budget) (*experiments.AblationResult, error)
	}{
		{"a1", experiments.AblationUnitWidths},
		{"a2", experiments.AblationFetchPolicy},
		{"a3", experiments.AblationAssoc},
		{"a4", experiments.AblationForwarding},
		{"a5", experiments.AblationMemory},
		{"a6", experiments.AblationScaling},
		{"a7", experiments.AblationPolicies},
	}
	ranAny := fig == "all"
	for _, a := range ablations {
		if want(a.key) {
			r, err := a.run(budget)
			if err != nil {
				return err
			}
			if err := saveCSV(csvDir, a.key+".csv", r); err != nil {
				return err
			}
			fmt.Println(r.Table())
			ranAny = true
		}
	}
	if !ranAny && !want("1a", "1b", "1c", "1d", "1", "3", "4a", "4b", "4c", "4", "5") {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
