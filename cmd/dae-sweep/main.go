// Command dae-sweep regenerates the paper's figures and the repository's
// ablation studies as text tables, executing every sweep through the
// batch runner so figures that share simulation points compute them
// once.
//
// Usage:
//
//	dae-sweep -fig list                # enumerate every figure/ablation
//	dae-sweep -fig all                 # everything (minutes)
//	dae-sweep -fig 1a|1b|1c|1d         # Figure 1 panels (Section-2 machine)
//	dae-sweep -fig 3                   # Figure 3 issue-slot breakdown
//	dae-sweep -fig 4a|4b|4c            # Figure 4 latency tolerance
//	dae-sweep -fig 5                   # Figure 5 thread requirements
//	dae-sweep -fig a1..a7              # ablations
//	dae-sweep -fig i1                  # shared-L2 interference study
//	dae-sweep -fig c1                  # CMP scaling study (multi-core)
//	dae-sweep -fig d1                  # speculative-DAE study
//	dae-sweep -fig 1d -measure 2000000 # bigger budget per thread
//	dae-sweep -fig all -cache .sweeps  # persist results; re-runs and
//	                                   # crashed sweeps resume from disk
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options is the parsed command line.
type options struct {
	fig      string
	budget   experiments.Budget
	parallel int
	csvDir   string
	cacheDir string
	hashFile string
	progress bool
	jsonOut  bool
}

// parseArgs parses the command line into options. Errors are already
// reported on stderr when it returns one (flag.Parse prints its own).
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("dae-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "all", "which figure/ablation to regenerate ('list' enumerates them; 'all' runs everything)")
		warmup   = fs.Int64("warmup", 0, "warm-up instructions per thread (0 = default)")
		measure  = fs.Int64("measure", 0, "measured instructions per thread (0 = default)")
		seed     = fs.Uint64("seed", 0, "workload seed")
		workers  = fs.Int("workers", 0, "parallel simulations (0 = all cores)")
		parallel = fs.Int("parallel", 0, "let each eligible multi-core point also use up to N goroutines for its own cores (epoch-parallel, bit-identical results; workers are budgeted from the shared -workers pool)")
		csvDir   = fs.String("csv", "", "also write raw results as CSV files into this directory")
		cacheDir = fs.String("cache", "", "on-disk result cache directory: re-runs skip already-computed points and interrupted sweeps resume")
		hashFile = fs.String("hashfile", "", "write the sorted result content hashes (one 'jobhash reporthash key' line per point) to this file; two runs of the same sweep must produce identical files (the CI determinism gate)")
		progress = fs.Bool("progress", false, "report per-point progress on stderr")
		jsonOut  = fs.Bool("json", false, "stream one JSON object per completed point to stdout (key, hash, cached, report) instead of the text tables; diagnostics and -progress stay on stderr, so stdout remains machine-parseable")
	)
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		err := fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
		fmt.Fprintln(stderr, "dae-sweep:", err)
		return options{}, err
	}

	budget := experiments.DefaultBudget()
	if *warmup > 0 {
		budget.WarmupPerThread = *warmup
	}
	if *measure > 0 {
		budget.MeasurePerThread = *measure
	}
	budget.Seed = *seed
	budget.Parallelism = *workers

	return options{
		fig:      strings.ToLower(*fig),
		budget:   budget,
		parallel: *parallel,
		csvDir:   *csvDir,
		cacheDir: *cacheDir,
		hashFile: *hashFile,
		progress: *progress,
		jsonOut:  *jsonOut,
	}, nil
}

// pointRecord is one line of the -json stream.
type pointRecord struct {
	// Key is the point's human-readable label and Hash its canonical
	// content hash (shared with dae-sim -hash and dae-serve).
	Key  string `json:"key"`
	Hash string `json:"hash,omitempty"`
	// Cached reports whether the point was served without simulating.
	Cached bool `json:"cached"`
	// Report is the result (absent on error).
	Report *stats.Report `json:"report,omitempty"`
	// Error is the point's failure, if any.
	Error string `json:"error,omitempty"`
}

// run is main's testable body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseArgs(args, stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	// The catalog listing needs no runner and must reach stdout even
	// under -json (which discards table output).
	if opts.fig == "list" {
		listFigures(stdout)
		return 0
	}
	if opts.csvDir != "" {
		if err := os.MkdirAll(opts.csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "dae-sweep:", err)
			return 1
		}
	}

	// Ctrl-C cancels the sweep; with -cache, a re-run resumes from the
	// completed points.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.budget.Ctx = ctx

	// One runner serves every figure of the invocation, so points shared
	// between sweeps (fig3's thread axis inside fig5's L2=16 curve)
	// simulate once; a cache directory extends that reuse across
	// invocations.
	ropts := runner.Options{Workers: opts.budget.Parallelism, Parallel: opts.parallel, CacheDir: opts.cacheDir}
	// The per-point callback serializes under the batch lock, so the
	// human -progress lines (stderr) and the machine-parseable -json
	// stream (stdout) never interleave mid-record. The two streams are
	// strictly separated: stdout carries only tables or JSON.
	var jsonErr error
	enc := json.NewEncoder(stdout)
	ropts.OnProgress = func(p runner.Progress) {
		if opts.progress {
			switch {
			case p.Err != nil:
				fmt.Fprintf(stderr, "[%d/%d] FAIL %s: %v\n", p.Done, p.Total, p.Job.Key, p.Err)
			case p.Cached:
				fmt.Fprintf(stderr, "[%d/%d] cached %s\n", p.Done, p.Total, p.Job.Key)
			default:
				fmt.Fprintf(stderr, "[%d/%d] done %s\n", p.Done, p.Total, p.Job.Key)
			}
		}
		if opts.jsonOut {
			rec := pointRecord{Key: p.Job.Key, Hash: p.Hash, Cached: p.Cached}
			if p.Err != nil {
				rec.Error = p.Err.Error()
			} else {
				rep := p.Report
				rec.Report = &rep
			}
			if err := enc.Encode(rec); err != nil && jsonErr == nil {
				jsonErr = err
			}
		}
	}
	if !opts.progress && !opts.jsonOut {
		ropts.OnProgress = nil
	}
	r, err := runner.New(ropts)
	if err != nil {
		fmt.Fprintln(stderr, "dae-sweep:", err)
		return 1
	}
	opts.budget.Runner = r

	// With -json the text tables are suppressed: stdout is the record
	// stream.
	tableOut := stdout
	if opts.jsonOut {
		tableOut = io.Discard
	}
	if err := sweep(opts.fig, opts.budget, opts.csvDir, tableOut, stderr); err != nil {
		fmt.Fprintln(stderr, "dae-sweep:", err)
		return 1
	}
	if jsonErr != nil {
		fmt.Fprintln(stderr, "dae-sweep:", jsonErr)
		return 1
	}
	if opts.hashFile != "" {
		if err := writeHashFile(opts.hashFile, r, stderr); err != nil {
			fmt.Fprintln(stderr, "dae-sweep:", err)
			return 1
		}
	}
	if opts.progress {
		s := r.Stats()
		fmt.Fprintf(stderr, "sweep: %d simulated, %d cache hits\n", s.Simulated, s.CacheHits)
	}
	return 0
}

// writeHashFile dumps the runner's result content hashes for the
// determinism gate.
func writeHashFile(path string, r *runner.Runner, stderr io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := r.WriteHashes(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d result hashes to %s\n", n, path)
	return nil
}

// csvWriter is implemented by every experiment result.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

// saveCSV writes one result's raw data when a CSV directory is set.
func saveCSV(dir, name string, r csvWriter, stderr io.Writer) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", filepath.Join(dir, name))
	return nil
}

// figureCatalog names every selectable figure and ablation with a
// one-line description; `-fig list` prints it and the unknown-figure
// error points at it.
var figureCatalog = []struct{ key, desc string }{
	{"1a", "Figure 1-a: average perceived FP-load miss latency vs L2 latency (Section-2 machine)"},
	{"1b", "Figure 1-b: average perceived integer-load miss latency vs L2 latency"},
	{"1c", "Figure 1-c: per-benchmark L1 miss ratios at L2 latency 256"},
	{"1d", "Figure 1-d: IPC loss vs L2 latency, relative to the 1-cycle point"},
	{"3", "Figure 3: AP/EP issue-slot breakdown vs hardware contexts (L2=16)"},
	{"4a", "Figure 4-a: perceived load-miss latency vs L2 latency, 4 configurations"},
	{"4b", "Figure 4-b: IPC loss vs L2 latency, 4 configurations"},
	{"4c", "Figure 4-c: absolute IPC vs L2 latency, 4 configurations"},
	{"5", "Figure 5: IPC vs contexts at L2 16/64 — decoupling cuts thread requirements"},
	{"a1", "Ablation A1: per-unit issue widths (4 threads, L2=16)"},
	{"a2", "Ablation A2: ICOUNT vs round-robin fetch (4 threads, L2=16)"},
	{"a3", "Ablation A3: L1 associativity (4 threads, L2=16)"},
	{"a4", "Ablation A4: SAQ store-to-load forwarding (4 threads, L2=16)"},
	{"a5", "Ablation A5: MSHR count and bus width (4 threads, L2=64)"},
	{"a6", "Ablation A6: fixed vs latency-scaled buffering (4 threads, L2=256)"},
	{"a7", "Ablation A7: issue priority and branch predictor (4 threads, L2=16)"},
	{"i1", "Ablation I1: shared-L2 interference — IPC and per-thread L2 miss ratio vs contexts at several finite L2 sizes (L2+DRAM hierarchy)"},
	{"c1", "Figure C1: CMP scaling — aggregate IPC vs cores × contexts, shared vs private L2, cross-core interference"},
	{"s1", "Study S1: sampled vs exact — IPC error, confidence intervals and wall-clock speedup on the four figure configs"},
	{"d1", "Figure D1: speculative-DAE — IPC vs contexts × speculation aggressiveness × loss-of-decoupling rate (L2=64)"},
}

// listFigures renders the catalog.
func listFigures(w io.Writer) {
	fmt.Fprintln(w, "figures and ablations (-fig <key>, grouped keys like '1' or '4' select every panel):")
	for _, f := range figureCatalog {
		fmt.Fprintf(w, "  %-4s %s\n", f.key, f.desc)
	}
	fmt.Fprintln(w, "  all  every figure and ablation above")
}

// figureKeys returns the comma-joined catalog keys (for error text).
func figureKeys() string {
	keys := make([]string, len(figureCatalog))
	for i, f := range figureCatalog {
		keys[i] = f.key
	}
	return strings.Join(keys, ",")
}

// knownFigure reports whether fig selects something: a catalog key, a
// panel group ("1", "4") or the catch-all ("list" never reaches here —
// run() intercepts it before building a runner). The catalog is the
// single source of truth for selectable keys — a new sweep branch below
// is unreachable until its key is registered there, which is what keeps
// `-fig list` and the dispatch from drifting apart.
func knownFigure(fig string) bool {
	switch fig {
	case "all", "1", "4":
		return true
	}
	for _, f := range figureCatalog {
		if fig == f.key {
			return true
		}
	}
	return false
}

func sweep(fig string, budget experiments.Budget, csvDir string, stdout, stderr io.Writer) error {
	if !knownFigure(fig) {
		return fmt.Errorf("unknown figure %q (known: %s,all — run -fig list for descriptions)", fig, figureKeys())
	}
	want := func(keys ...string) bool {
		if fig == "all" {
			return true
		}
		for _, k := range keys {
			if fig == k {
				return true
			}
		}
		return false
	}

	if want("1a", "1b", "1c", "1d", "1") {
		r, err := experiments.Fig1(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig1.csv", r, stderr); err != nil {
			return err
		}
		if want("1a", "1") {
			fmt.Fprintln(stdout, r.TableA())
		}
		if want("1b", "1") {
			fmt.Fprintln(stdout, r.TableB())
		}
		if want("1c", "1") {
			fmt.Fprintln(stdout, r.TableC())
		}
		if want("1d", "1") {
			fmt.Fprintln(stdout, r.TableD())
		}
	}
	if want("3") {
		r, err := experiments.Fig3(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig3.csv", r, stderr); err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Table())
		fmt.Fprintf(stdout, "speedup 1→3 threads: %.2fx (paper: 2.31x)\n\n", r.Speedup(3))
	}
	if want("4a", "4b", "4c", "4") {
		r, err := experiments.Fig4(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig4.csv", r, stderr); err != nil {
			return err
		}
		if want("4a", "4") {
			fmt.Fprintln(stdout, r.TableA())
		}
		if want("4b", "4") {
			fmt.Fprintln(stdout, r.TableB())
		}
		if want("4c", "4") {
			fmt.Fprintln(stdout, r.TableC())
		}
	}
	if want("5") {
		r, err := experiments.Fig5(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig5.csv", r, stderr); err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Table())
	}

	ablations := []struct {
		key string
		run func(experiments.Budget) (*experiments.AblationResult, error)
	}{
		{"a1", experiments.AblationUnitWidths},
		{"a2", experiments.AblationFetchPolicy},
		{"a3", experiments.AblationAssoc},
		{"a4", experiments.AblationForwarding},
		{"a5", experiments.AblationMemory},
		{"a6", experiments.AblationScaling},
		{"a7", experiments.AblationPolicies},
	}
	for _, a := range ablations {
		if want(a.key) {
			r, err := a.run(budget)
			if err != nil {
				return err
			}
			if err := saveCSV(csvDir, a.key+".csv", r, stderr); err != nil {
				return err
			}
			fmt.Fprintln(stdout, r.Table())
		}
	}
	if want("i1") {
		r, err := experiments.Interference(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "i1.csv", r, stderr); err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Table())
	}
	if want("c1") {
		r, err := experiments.C1(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "c1.csv", r, stderr); err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Table())
	}
	if want("s1") {
		r, err := experiments.S1(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "s1.csv", r, stderr); err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Table())
	}
	if want("d1") {
		r, err := experiments.D1(budget)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "d1.csv", r, stderr); err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Table())
	}
	return nil
}
