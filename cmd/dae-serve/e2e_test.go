package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	daesim "repro"
	"repro/internal/serveapi"
)

// TestServeEndToEnd boots the real server loop (listener, engine, HTTP
// stack, graceful shutdown) on a random port and drives it with
// concurrent clients — run under -race in CI, this is the service's
// thread-safety gate. It also asserts the issue's dedup contract at the
// HTTP level: N concurrent identical POSTs simulate once.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e server test skipped in -short mode")
	}
	cacheDir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, "127.0.0.1:0", daesim.EngineOpts{Workers: 2, CacheDir: cacheDir},
			0, true, io.Discard, func(a net.Addr) { ready <- a })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	req := daesim.MixRequest(daesim.Figure2(2), daesim.RunOpts{WarmupInsts: 2_000, MeasureInsts: 8_000})
	raw, _ := json.Marshal(req)

	// Concurrent identical requests from independent clients.
	const clients = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], err = io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// Every client got a result; modulo the cached flag they are
	// identical (exactly one response carries cached=false).
	fresh := 0
	var reference map[string]any
	for i, b := range bodies {
		if len(b) == 0 {
			t.Fatalf("client %d got no body", i)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if m["cached"] == false {
			fresh++
		}
		rep := m["report"]
		if reference == nil {
			reference = rep.(map[string]any)
		} else if got, _ := json.Marshal(rep); string(got) != string(mustMarshal(t, reference)) {
			t.Errorf("client %d received a different report", i)
		}
	}
	if fresh != 1 {
		t.Errorf("%d fresh executions for %d concurrent identical requests, want 1", fresh, clients)
	}

	// The engine behind the server confirms: one simulation.
	var health serveapi.HealthResponse
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Stats.Simulated != 1 {
		t.Errorf("server simulated %d times for %d identical requests", health.Stats.Simulated, clients)
	}

	// A second sweep over the same point plus a new one: the first is a
	// cache hit, and the per-request results come back in order.
	sweep := serveapi.SweepRequest{Requests: []daesim.Request{
		req,
		daesim.BenchmarkRequest("swim", daesim.Figure2(1), daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 2_000}),
	}}
	sraw, _ := json.Marshal(sweep)
	resp, err = http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(sraw))
	if err != nil {
		t.Fatal(err)
	}
	var sres serveapi.SweepResponse
	json.NewDecoder(resp.Body).Decode(&sres)
	resp.Body.Close()
	if len(sres.Results) != 2 || sres.Failed != 0 {
		t.Fatalf("sweep results: %+v", sres)
	}
	if !sres.Results[0].Cached {
		t.Error("previously computed point not served from cache in the sweep")
	}

	// The events stream is reachable end-to-end: the computed hash yields
	// an immediate SSE done event over the real server stack.
	sresp, err := http.Get(base + "/v1/runs/" + req.Hash() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sbody, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events Content-Type %q", ct)
	}
	if !bytes.Contains(sbody, []byte("event: done")) || !bytes.Contains(sbody, []byte(req.Hash())) {
		t.Errorf("events stream missing done event for the run: %q", sbody)
	}

	// Graceful shutdown: cancel the serve context and the loop returns
	// cleanly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeRefusesBusyPort covers the operational error path: a second
// server on the same port fails fast with a useful error.
func TestServeRefusesBusyPort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = serve(context.Background(), ln.Addr().String(), daesim.EngineOpts{}, 0, false, io.Discard, nil)
	if err == nil {
		t.Fatal("second listener on a busy port succeeded")
	}
	if _, ok := err.(*net.OpError); !ok {
		t.Logf("error type %T: %v (accepted)", err, err)
	}
	_ = fmt.Sprint(err)
}
