package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	daesim "repro"
)

// API limits.
const (
	// defaultMaxBody bounds request bodies (a Request is a few KB; custom
	// workload models stay well under this).
	defaultMaxBody = 8 << 20
	// maxSweepRequests bounds one sweep submission.
	maxSweepRequests = 4096
)

// server wires a shared Engine into the HTTP API. All endpoints speak
// JSON; simulation results are served from the Engine's content-addressed
// cache when present and computed through its bounded worker pool on a
// miss.
type server struct {
	eng *daesim.Engine
	// timeout caps one run's wall time (0 = none). Sweeps are capped as
	// a whole.
	timeout time.Duration
	maxBody int64
}

// runResponse is one executed (or failed) request.
type runResponse struct {
	// Label echoes the request's display name.
	Label string `json:"label,omitempty"`
	// Hash is the request's content hash; GET /v1/runs/{hash} serves the
	// same result from cache from now on.
	Hash string `json:"hash,omitempty"`
	// Cached reports whether the result was served without simulating
	// (cache tier or deduplicated in-flight run).
	Cached bool `json:"cached"`
	// Report is the simulation result (absent on error).
	Report *daesim.Report `json:"report,omitempty"`
	// Error is the failure, if any.
	Error string `json:"error,omitempty"`
}

// sweepRequest is the POST /v1/sweeps body.
type sweepRequest struct {
	Requests []daesim.Request `json:"requests"`
}

// sweepResponse is the POST /v1/sweeps reply: one result per request, in
// request order.
type sweepResponse struct {
	Results []runResponse `json:"results"`
	// Failed counts results carrying an error.
	Failed int `json:"failed"`
}

// healthResponse is the GET /healthz reply.
type healthResponse struct {
	OK bool `json:"ok"`
	// Stats snapshots the Engine's lifetime counters.
	Stats daesim.Stats `json:"stats"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// newHandler builds the HTTP API over eng.
func newHandler(eng *daesim.Engine, timeout time.Duration, maxBody int64) http.Handler {
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	s := &server{eng: eng, timeout: timeout, maxBody: maxBody}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/runs/{hash}", s.handleGet)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON writes v with the same encoder settings dae-sim -json uses,
// so the "report" object inside every response is byte-identical to the
// CLI's output for the same Request.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // best effort: the client may already be gone
}

// statusFor maps an execution error to an HTTP status via the package's
// typed sentinels.
func statusFor(err error) int {
	switch {
	case errors.Is(err, daesim.ErrInvalidRequest),
		errors.Is(err, daesim.ErrUnknownBenchmark),
		errors.Is(err, daesim.ErrInvalidConfig):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is written into the void but
		// keeps access logs honest (nginx's 499 convention).
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// decode strictly parses the JSON body into v.
func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	return nil
}

// runCtx applies the per-run wall cap to the request context.
func (s *server) runCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// handleRun executes one Request: POST /v1/runs with a daesim.Request
// body. Cached results return instantly with "cached": true.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req daesim.Request
	if err := s.decode(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	// RunBatch rather than Run for the per-result Cached flag.
	results, _ := s.eng.RunBatch(ctx, []daesim.Request{req})
	res := results[0]
	if res.Err != nil {
		writeJSON(w, statusFor(res.Err), errorResponse{Error: res.Err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		Label:  res.Request.Label,
		Hash:   res.Hash,
		Cached: res.Cached,
		Report: &res.Report,
	})
}

// handleSweep executes a batch: POST /v1/sweeps with {"requests": [...]}.
// Individual failures never fail the sweep; each result carries its own
// error and the reply is always 200 once the body parses.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := s.decode(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(req.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty sweep: requests must name at least one run"})
		return
	}
	if len(req.Requests) > maxSweepRequests {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("sweep of %d requests exceeds the %d-request limit", len(req.Requests), maxSweepRequests)})
		return
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	results, _ := s.eng.RunBatch(ctx, req.Requests)
	resp := sweepResponse{Results: make([]runResponse, len(results))}
	for i, res := range results {
		rr := runResponse{Label: res.Request.Label, Hash: res.Hash, Cached: res.Cached}
		if res.Err != nil {
			rr.Error = res.Err.Error()
			resp.Failed++
		} else {
			rep := res.Report
			rr.Report = &rep
		}
		resp.Results[i] = rr
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleGet serves a previously computed result by content hash:
// GET /v1/runs/{hash}. It never simulates; unknown hashes are 404.
func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rep, ok := s.eng.Lookup(hash)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: fmt.Sprintf("no cached result for hash %q (POST the request to /v1/runs to compute it)", hash)})
		return
	}
	writeJSON(w, http.StatusOK, runResponse{Hash: hash, Cached: true, Report: &rep})
}

// handleHealth reports liveness and the Engine's counters.
func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{OK: true, Stats: s.eng.Stats()})
}
