// Command dae-serve exposes the simulator as an HTTP JSON service over
// the shared content-addressed result cache: cached results are served
// instantly, misses execute through one bounded, deduplicating Engine.
//
// Endpoints:
//
//	POST /v1/runs                execute one daesim.Request (JSON body)
//	POST /v1/sweeps              execute {"requests": [...]}; per-result errors
//	GET  /v1/runs/{hash}         serve a previously computed result by content hash
//	GET  /v1/runs/{hash}/events  stream a run's progress (SSE; NDJSON via Accept)
//	GET  /healthz                liveness + engine cache statistics
//
// Examples:
//
//	dae-serve -addr :8177 -cache .sweeps
//	curl -s localhost:8177/healthz
//	curl -s -X POST localhost:8177/v1/runs -d \
//	  '{"machine": <dae-sim compatible config>, "workload": {"kind":"mix"}}'
//
// A Request executed here produces a Report byte-identical to
// `dae-sim -json` with the same parameters, and the cache directory is
// interchangeable with dae-sweep's: a nightly sweep warms the cache the
// service then serves from. Pointing several replicas at one shared
// cache directory turns it into the fabric's content-addressed result
// store: any replica serves any hash, and cmd/dae-router consistent-hash
// routes requests across the replicas (see DESIGN.md §8).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	daesim "repro"
	"repro/internal/serveapi"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8177", "listen address")
		cacheDir = flag.String("cache", "", "on-disk result cache directory shared with dae-sweep/dae-sim (\"\" = in-memory only)")
		workers  = flag.Int("workers", 0, "max concurrent simulations (0 = all cores)")
		timeout  = flag.Duration("timeout", 0, "wall-clock cap per run/sweep request (0 = none)")
		snapshot = flag.Int64("snapshot-every", 0, "progress-snapshot cadence in graduated instructions for /v1/runs/{hash}/events streams (0 = the simulator default)")
		progress = flag.Bool("progress", false, "log per-run progress to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, *addr, daesim.EngineOpts{Workers: *workers, CacheDir: *cacheDir, SnapshotEvery: *snapshot}, *timeout, *progress, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dae-serve:", err)
		os.Exit(1)
	}
}

// serve runs the service until ctx is cancelled, then drains in-flight
// requests. It is main's testable body: the e2e tests call it with a
// ":0" address and receive the bound address through onReady.
func serve(ctx context.Context, addr string, opts daesim.EngineOpts, timeout time.Duration, progress bool, logw io.Writer, onReady func(net.Addr)) error {
	eng, err := daesim.NewEngine(opts)
	if err != nil {
		return err
	}
	if progress {
		events, stopWatch := eng.Watch(64)
		defer stopWatch()
		go func() {
			for p := range events {
				switch {
				case p.Event == daesim.ProgressSnapshot:
					fmt.Fprintf(logw, "dae-serve: run %s %s: %d/%d insts (cycle %d)\n",
						p.Hash[:12], p.Phase, p.Graduated, p.TargetInsts, p.TotalCycles)
				case p.Err != nil:
					fmt.Fprintf(logw, "dae-serve: FAIL %s: %v\n", p.Label, p.Err)
				case p.Cached:
					fmt.Fprintf(logw, "dae-serve: cached %s (%s)\n", p.Label, p.Hash[:12])
				default:
					fmt.Fprintf(logw, "dae-serve: done %s (%s)\n", p.Label, p.Hash[:12])
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "dae-serve: listening on %s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr())
	}
	srv := &http.Server{
		Handler:           serveapi.NewHandler(eng, timeout, serveapi.DefaultMaxBody),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	// Graceful drain, then hard close: Close cancels the remaining
	// handlers' request contexts, which aborts their simulations.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
