// Command dae-router is the fabric front end: it consistent-hash routes
// simulation requests across a set of dae-serve replicas by Request
// content hash, so every hash has one owning replica (maximizing each
// replica's in-memory cache hit rate) and adding or removing a replica
// remaps only that replica's share of the key space.
//
// Endpoints (same shapes as dae-serve — clients cannot tell them apart):
//
//	POST /v1/runs                route one daesim.Request to its owner
//	POST /v1/sweeps              scatter {"requests": [...]} across the fabric
//	GET  /v1/runs/{hash}         serve a result from the shared store or owner
//	GET  /v1/runs/{hash}/events  proxy the owner's SSE/NDJSON progress stream
//	GET  /healthz                router liveness: replica states + queue depth
//
// Examples:
//
//	dae-serve -addr :8181 -cache .fabric &
//	dae-serve -addr :8182 -cache .fabric &
//	dae-router -addr :8180 -store .fabric \
//	  -replicas http://127.0.0.1:8181,http://127.0.0.1:8182
//
// Responses relayed from replicas are byte-identical to hitting the
// replica directly — and therefore to `dae-sim -json` with the same
// parameters. A dead replica is detected on the first failed forward,
// its in-flight work retried against the ring successor (collapsed by
// single-flight so a retry stampede recomputes each hash exactly once),
// and recovery is picked up by background health probes. Admission is
// bounded: past -max-active concurrent requests and -max-queue waiters,
// clients get 429 + Retry-After. See DESIGN.md §8.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fabric"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8180", "listen address")
		replicaList = flag.String("replicas", "", "comma-separated dae-serve base URLs (required)")
		storeDir    = flag.String("store", "", "shared result-store directory (the replicas' -cache dir); lets the router answer cached hashes itself (\"\" = always forward)")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
		healthEvery = flag.Duration("health-every", time.Second, "replica health-probe interval")
		maxActive   = flag.Int("max-active", 64, "max concurrently admitted requests")
		maxQueue    = flag.Int("max-queue", 256, "max queued requests beyond -max-active before 429")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429/503")
	)
	flag.Parse()

	var replicas []string
	for _, r := range strings.Split(*replicaList, ",") {
		if r = strings.TrimSpace(r); r != "" {
			replicas = append(replicas, r)
		}
	}
	if len(replicas) == 0 {
		fmt.Fprintln(os.Stderr, "dae-router: -replicas is required (comma-separated dae-serve URLs)")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := fabric.Config{
		Replicas:    replicas,
		VNodes:      *vnodes,
		HealthEvery: *healthEvery,
		MaxActive:   *maxActive,
		MaxQueue:    *maxQueue,
		RetryAfter:  *retryAfter,
		StoreDir:    *storeDir,
	}
	if err := serve(ctx, *addr, cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dae-router:", err)
		os.Exit(1)
	}
}

// serve runs the router until ctx is cancelled, then drains: the
// admission queue sheds its waiters (503, clients retry elsewhere) while
// admitted requests finish. It is main's testable body: e2e tests call
// it with a ":0" address and receive the bound address through onReady.
func serve(ctx context.Context, addr string, cfg fabric.Config, logw io.Writer, onReady func(net.Addr)) error {
	rt, err := fabric.NewRouter(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "dae-router: listening on %s (%d replicas)\n", ln.Addr(), len(cfg.Replicas))
	if onReady != nil {
		onReady(ln.Addr())
	}
	srv := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	rt.Close() // shed the queue before the listener stops accepting
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
