package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	daesim "repro"
	"repro/internal/fabric"
	"repro/internal/serveapi"
)

// TestRouterServeEndToEnd boots the real router loop (listener, fabric,
// graceful shutdown) on a random port in front of two in-process
// replicas sharing one store, and drives the full client surface: run,
// cached run, sweep, events stream, health.
func TestRouterServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e router test skipped in -short mode")
	}
	storeDir := t.TempDir()
	var replicas []string
	for i := 0; i < 2; i++ {
		eng, err := daesim.NewEngine(daesim.EngineOpts{CacheDir: storeDir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(serveapi.NewHandler(eng, 30*time.Second, serveapi.DefaultMaxBody))
		t.Cleanup(ts.Close)
		replicas = append(replicas, ts.URL)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, "127.0.0.1:0", fabric.Config{
			Replicas: replicas,
			StoreDir: storeDir,
		}, io.Discard, func(a net.Addr) { ready <- a })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case <-time.After(5 * time.Second):
		t.Fatal("router never became ready")
	}

	req := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 2_000})
	req.Label = "router-e2e"
	raw, _ := json.Marshal(req)

	// Fresh run through the fabric.
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d: %s", resp.StatusCode, body)
	}
	var rr serveapi.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Cached || rr.Report == nil {
		t.Fatalf("first run: cached=%v report=%v", rr.Cached, rr.Report != nil)
	}

	// Again: now a store hit.
	resp, err = http.Post(base+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"cached": true`) {
		t.Errorf("second run not cached: %s", body)
	}

	// Sweep with a fresh point.
	req2 := daesim.MixRequest(daesim.Figure2(2), daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 2_000})
	sweepRaw, _ := json.Marshal(serveapi.SweepRequest{Requests: []daesim.Request{req, req2}})
	resp, err = http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(sweepRaw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var sr serveapi.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Failed != 0 || len(sr.Results) != 2 {
		t.Fatalf("sweep: failed=%d results=%d: %s", sr.Failed, len(sr.Results), body)
	}

	// Events stream for the cached hash, proxied through the router.
	resp, err = http.Get(base + "/v1/runs/" + rr.Hash + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("events Content-Type = %q", ct)
	}
	if !strings.Contains(string(stream), "event: done") {
		t.Errorf("no done event: %s", stream)
	}

	// Router health reports both replicas alive.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var h fabric.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || len(h.Replicas) != 2 {
		t.Errorf("health: %s", body)
	}

	// Graceful shutdown.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not shut down")
	}
}
