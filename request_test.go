package daesim

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestRequestNormalizationAndHashStability(t *testing.T) {
	m := Figure2(2)
	implicit := Request{Machine: m} // zero workload kind, zero budgets
	explicit := Request{
		Machine:  m,
		Workload: Workload{Kind: WorkloadMix},
		Budget:   Budget{WarmupInsts: DefaultWarmup, MeasureInsts: DefaultMeasure},
	}
	if implicit.Hash() != explicit.Hash() {
		t.Error("defaulted and spelled-out requests hash differently")
	}
	if got := implicit.Normalized().Workload.Kind; got != WorkloadMix {
		t.Errorf("empty kind normalized to %q, want mix", got)
	}
}

func TestRequestHashExcludesLabel(t *testing.T) {
	a := MixRequest(Figure2(1), RunOpts{})
	b := a
	b.Label = "completely different label"
	if a.Hash() != b.Hash() {
		t.Error("hash depends on the label")
	}
	c := a
	c.Workload.Seed = 7
	if a.Hash() == c.Hash() {
		t.Error("seed change did not change the hash")
	}
	d := a
	d.Machine = d.Machine.WithL2Latency(64)
	if a.Hash() == d.Hash() {
		t.Error("machine change did not change the hash")
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	b, err := BenchmarkByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	for name, req := range map[string]Request{
		"mix":    MixRequest(Figure2(3), RunOpts{Seed: 5, SegmentLen: 1000}),
		"bench":  BenchmarkRequest("fpppp", Section2().WithL2Latency(64), RunOpts{}),
		"custom": CustomRequest(b, Figure2(1), RunOpts{Seed: 9}),
	} {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Request
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if back.Hash() != req.Hash() {
			t.Errorf("%s: request hash not preserved across JSON round trip", name)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: round-tripped request invalid: %v", name, err)
		}
	}
}

func TestValidateTypedErrors(t *testing.T) {
	valid := MixRequest(Figure2(1), RunOpts{})
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}

	cases := []struct {
		name     string
		mutate   func(*Request)
		sentinel error
	}{
		{"negative warmup", func(r *Request) { r.Budget.WarmupInsts = -1 }, ErrInvalidRequest},
		{"negative measure", func(r *Request) { r.Budget.MeasureInsts = -5 }, ErrInvalidRequest},
		{"negative max cycles", func(r *Request) { r.Budget.MaxCycles = -1 }, ErrInvalidRequest},
		{"negative segment", func(r *Request) { r.Workload.SegmentLen = -1 }, ErrInvalidRequest},
		{"unknown kind", func(r *Request) { r.Workload.Kind = "interleaved" }, ErrInvalidRequest},
		{"mix with bench", func(r *Request) { r.Workload.Bench = "swim" }, ErrInvalidRequest},
		{"custom without model", func(r *Request) { r.Workload.Kind = WorkloadCustom }, ErrInvalidRequest},
		// Stray cross-field content would silently fork the content hash
		// (every field is hashed), so it is rejected up front.
		{"bench with segment", func(r *Request) {
			r.Workload.Kind = WorkloadBench
			r.Workload.Bench = "swim"
			r.Workload.SegmentLen = 500
		}, ErrInvalidRequest},
		{"custom with stray bench", func(r *Request) {
			b, _ := BenchmarkByName("swim")
			r.Workload.Kind = WorkloadCustom
			r.Workload.Custom = &b
			r.Workload.Bench = "swim"
		}, ErrInvalidRequest},
		{"unknown benchmark", func(r *Request) {
			r.Workload.Kind = WorkloadBench
			r.Workload.Bench = "quake3"
		}, ErrUnknownBenchmark},
		{"zero threads", func(r *Request) { r.Machine.Threads = 0 }, ErrInvalidConfig},
		{"bad fetch policy", func(r *Request) { r.Machine.FetchPolicy = "lru" }, ErrInvalidConfig},
	}
	for _, tc := range cases {
		req := valid
		tc.mutate(&req)
		err := req.Validate()
		if err == nil {
			t.Errorf("%s: invalid request accepted", tc.name)
			continue
		}
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: error %v does not wrap the expected sentinel", tc.name, err)
		}
	}
}

func TestDeprecatedWrappersValidateUpFront(t *testing.T) {
	// The old entry points share the Request validation: a negative
	// budget or a bad benchmark fails fast with a typed error instead of
	// deep in the simulator.
	if _, err := RunMix(Figure2(1), RunOpts{MeasureInsts: -1}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("RunMix with negative budget: %v, want ErrInvalidRequest", err)
	}
	if _, err := RunBenchmark("quake3", Figure2(1), RunOpts{}); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("RunBenchmark with unknown name: %v, want ErrUnknownBenchmark", err)
	}
	if _, err := RunMix(Figure2(0), RunOpts{}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("RunMix with zero threads: %v, want ErrInvalidConfig", err)
	}
	if _, err := RunCustom(Benchmark{}, Figure2(1), RunOpts{}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("RunCustom with empty model: %v, want ErrInvalidRequest", err)
	}
}

func TestRequestLabelDerivation(t *testing.T) {
	req := BenchmarkRequest("swim", Figure2(2).WithL2Latency(64), RunOpts{})
	if got := req.label(); !strings.Contains(got, "swim") || !strings.Contains(got, "threads=2") {
		t.Errorf("derived label %q missing workload or config", got)
	}
	req.Label = "mine"
	if req.label() != "mine" {
		t.Error("explicit label not honoured")
	}
}
