package daesim

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRequestNormalizationAndHashStability(t *testing.T) {
	m := Figure2(2)
	implicit := Request{Machine: m} // zero workload kind, zero budgets
	explicit := Request{
		Machine:  m,
		Workload: Workload{Kind: WorkloadMix},
		Budget:   Budget{WarmupInsts: DefaultWarmup, MeasureInsts: DefaultMeasure},
	}
	if implicit.Hash() != explicit.Hash() {
		t.Error("defaulted and spelled-out requests hash differently")
	}
	if got := implicit.Normalized().Workload.Kind; got != WorkloadMix {
		t.Errorf("empty kind normalized to %q, want mix", got)
	}
}

func TestRequestHashExcludesLabel(t *testing.T) {
	a := MixRequest(Figure2(1), RunOpts{})
	b := a
	b.Label = "completely different label"
	if a.Hash() != b.Hash() {
		t.Error("hash depends on the label")
	}
	c := a
	c.Workload.Seed = 7
	if a.Hash() == c.Hash() {
		t.Error("seed change did not change the hash")
	}
	d := a
	d.Machine = d.Machine.WithL2Latency(64)
	if a.Hash() == d.Hash() {
		t.Error("machine change did not change the hash")
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	b, err := BenchmarkByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	for name, req := range map[string]Request{
		"mix":    MixRequest(Figure2(3), RunOpts{Seed: 5, SegmentLen: 1000}),
		"bench":  BenchmarkRequest("fpppp", Section2().WithL2Latency(64), RunOpts{}),
		"custom": CustomRequest(b, Figure2(1), RunOpts{Seed: 9}),
	} {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Request
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if back.Hash() != req.Hash() {
			t.Errorf("%s: request hash not preserved across JSON round trip", name)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: round-tripped request invalid: %v", name, err)
		}
	}
}

func TestValidateTypedErrors(t *testing.T) {
	valid := MixRequest(Figure2(1), RunOpts{})
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}

	cases := []struct {
		name     string
		mutate   func(*Request)
		sentinel error
	}{
		{"negative warmup", func(r *Request) { r.Budget.WarmupInsts = -1 }, ErrInvalidRequest},
		{"negative measure", func(r *Request) { r.Budget.MeasureInsts = -5 }, ErrInvalidRequest},
		{"negative max cycles", func(r *Request) { r.Budget.MaxCycles = -1 }, ErrInvalidRequest},
		{"negative segment", func(r *Request) { r.Workload.SegmentLen = -1 }, ErrInvalidRequest},
		{"unknown kind", func(r *Request) { r.Workload.Kind = "interleaved" }, ErrInvalidRequest},
		{"mix with bench", func(r *Request) { r.Workload.Bench = "swim" }, ErrInvalidRequest},
		{"custom without model", func(r *Request) { r.Workload.Kind = WorkloadCustom }, ErrInvalidRequest},
		// Stray cross-field content would silently fork the content hash
		// (every field is hashed), so it is rejected up front.
		{"bench with segment", func(r *Request) {
			r.Workload.Kind = WorkloadBench
			r.Workload.Bench = "swim"
			r.Workload.SegmentLen = 500
		}, ErrInvalidRequest},
		{"custom with stray bench", func(r *Request) {
			b, _ := BenchmarkByName("swim")
			r.Workload.Kind = WorkloadCustom
			r.Workload.Custom = &b
			r.Workload.Bench = "swim"
		}, ErrInvalidRequest},
		{"unknown benchmark", func(r *Request) {
			r.Workload.Kind = WorkloadBench
			r.Workload.Bench = "quake3"
		}, ErrUnknownBenchmark},
		{"zero threads", func(r *Request) { r.Machine.Threads = 0 }, ErrInvalidConfig},
		{"bad fetch policy", func(r *Request) { r.Machine.FetchPolicy = "lru" }, ErrInvalidConfig},
	}
	for _, tc := range cases {
		req := valid
		tc.mutate(&req)
		err := req.Validate()
		if err == nil {
			t.Errorf("%s: invalid request accepted", tc.name)
			continue
		}
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: error %v does not wrap the expected sentinel", tc.name, err)
		}
	}
}

func TestDeprecatedWrappersValidateUpFront(t *testing.T) {
	// The old entry points share the Request validation: a negative
	// budget or a bad benchmark fails fast with a typed error instead of
	// deep in the simulator.
	if _, err := RunMix(Figure2(1), RunOpts{MeasureInsts: -1}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("RunMix with negative budget: %v, want ErrInvalidRequest", err)
	}
	if _, err := RunBenchmark("quake3", Figure2(1), RunOpts{}); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("RunBenchmark with unknown name: %v, want ErrUnknownBenchmark", err)
	}
	if _, err := RunMix(Figure2(0), RunOpts{}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("RunMix with zero threads: %v, want ErrInvalidConfig", err)
	}
	if _, err := RunCustom(Benchmark{}, Figure2(1), RunOpts{}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("RunCustom with empty model: %v, want ErrInvalidRequest", err)
	}
}

// TestRequestHashesPinned pins the content hashes of representative
// mix/bench requests to their values from before the memory-hierarchy
// refactor (PR 4 tree). If any of these move, every existing on-disk
// cache entry and golden hashfile silently stops matching — new Machine
// fields must marshal to nothing at their defaults (omitempty +
// normalization) precisely so this test keeps passing.
func TestRequestHashesPinned(t *testing.T) {
	pinned := []struct {
		name string
		req  Request
		hash string
	}{
		{"mix t=1", MixRequest(Figure2(1), RunOpts{}),
			"d37cb27686f513a943a88325b94fc9ef35cedad83d89e78509cf590b288f8c99"},
		{"mix t=2", MixRequest(Figure2(2), RunOpts{}),
			"10e4ec7487a2baf5903960bb71dd0dd58a337a04f3bb608e165b43c3131f8264"},
		{"mix t=4", MixRequest(Figure2(4), RunOpts{}),
			"b77110730512b6dbacb4b1654998ce4eac19f32c20469c035ccdf045cde8bbad"},
		{"mix t=8", MixRequest(Figure2(8), RunOpts{}),
			"7d9a3f0a21458333550909136e835da7ea627bfd6dbc13814bbc7fa97a494f4f"},
		{"bench swim", BenchmarkRequest("swim", Section2().WithL2Latency(64), RunOpts{MeasureInsts: 1_000_000}),
			"3dc76f7a88651c9d8941af6b3c11a5f4090ee18f8f42e970501e13ae47fd8df6"},
		{"bench tomcatv", BenchmarkRequest("tomcatv", Section2().WithL2Latency(64), RunOpts{MeasureInsts: 1_000_000}),
			"567bdafa56cbf2625ab018eec7931469326d30e76fb9e0683167f159f085b2f4"},
		{"bench fpppp", BenchmarkRequest("fpppp", Section2().WithL2Latency(64), RunOpts{MeasureInsts: 1_000_000}),
			"05ce630b1b6e81f766ee3a7ac99bdfc3227866c4dcb854aa396a5d898973dc19"},
		{"mix nondecoupled", MixRequest(Figure2(4).WithL2Latency(256).NonDecoupled(),
			RunOpts{WarmupInsts: 2000, MeasureInsts: 8000, Seed: 7}),
			"7bd9dd8b54d451ae39c4a2e39aafa3918dfba21128abf1a6d02e660b1c356bd1"},
	}
	// CMP requests (PR 7): pinned at introduction. Cores and the
	// coherence stats are omitempty, so these join the schema without
	// moving any hash above.
	pinned = append(pinned, []struct {
		name string
		req  Request
		hash string
	}{
		{"cmp 2x2 shared", MixRequest(Figure2(2).WithCores(2).
			WithHierarchy(64, SharedL2(256<<10, 8)), RunOpts{}),
			"03c499234b2ed9d2c05d0c09c19d7c55cfcbdfb3beb67fb844d854d29da64002"},
		{"cmp 2x1 private", MixRequest(Figure2(1).WithCores(2).
			WithHierarchy(64, SharedL2(64<<10, 8)).WithPrivateHierarchy(), RunOpts{}),
			"d90cf9c962b025ad0528bc1d7f09fec7bc2f19b3f2dd8f02919249697e496858"},
	}...)
	// Execution-mode requests (PR 8): pinned at introduction. Mode and
	// Sampling are omitempty and exact mode normalizes to the zero value,
	// so these join the schema without moving any hash above; adaptive
	// hashes *distinctly* from exact even though results are bit-identical
	// (the cache never has to trust that equivalence), and sampled
	// requests always hash with their parameters spelled out.
	pinned = append(pinned, []struct {
		name string
		req  Request
		hash string
	}{
		{"mode adaptive t=4", func() Request {
			r := MixRequest(Figure2(4), RunOpts{})
			r.Budget.Mode = ModeAdaptive
			return r.Normalized()
		}(),
			"2c2af3dcd1c40559e60aa1160f526e4bd17a6c2a2137663d8ea6b5d50ff8d922"},
		{"mode sampled defaults", func() Request {
			r := MixRequest(Figure2(4), RunOpts{MeasureInsts: 10_000_000})
			r.Budget.Mode = ModeSampled
			return r.Normalized()
		}(),
			"71da26cf2745ccbd091c3394a021c1976e969ff17293ed1f8845bc55fa026a64"},
		{"mode sampled custom", func() Request {
			r := MixRequest(Figure2(1).WithL2Latency(256), RunOpts{MeasureInsts: 1_000_000})
			r.Budget.Mode = ModeSampled
			r.Budget.Sampling = &Sampling{PeriodInsts: 50_000, UnitInsts: 1_000, WarmupInsts: 2_000}
			return r.Normalized()
		}(),
			"55306547d455ce5ef9109fc66d86afaa755d222954cdfda9132741f9ec33dadd"},
	}...)
	// Trace-replay and speculative-DAE requests (PR 9): pinned at
	// introduction. Workload.Trace and Machine.Spec are omitempty and
	// fold to nothing when absent, so these join the schema without
	// moving any hash above; a speculation block always hashes with its
	// squash penalty spelled out.
	pinned = append(pinned, []struct {
		name string
		req  Request
		hash string
	}{
		{"trace t=4", TraceRequest("traces/swim.dct", "", Figure2(4), RunOpts{}),
			"e4fc435a99fa411ce6500cf79175c9e180ce84f76c70d16a10ab97a335316fd2"},
		{"spec t=4", MixRequest(Figure2(4).WithSpeculation(
			Speculation{SpecLoadFrac: 0.3, MisspecProb: 0.05, LoDEvery: 500}), RunOpts{}),
			"7775e919901691f767890c26120a85d11baeeaadce502a1b83cb2c372ebf773b"},
		{"lod only t=1", MixRequest(Figure2(1).WithSpeculation(
			Speculation{LoDEvery: 200}), RunOpts{}),
			"5d44b9cfc20505aa29f093931b6498fe9f6ca7be24216da84be176608eb522cd"},
	}...)
	for _, p := range pinned {
		if got := p.req.Hash(); got != p.hash {
			t.Errorf("%s: hash %s, want pinned %s (cache schema broken)", p.name, got, p.hash)
		}
	}
}

// TestRequestModeNormalization: exact is the zero mode — a spelled-out
// "exact" canonicalizes away so it cannot fork the cache keyspace, a
// sampled request always hashes with its sampling parameters spelled out
// (never depending on the compiled-in defaults), and mode/sampling
// mismatches fail validation.
func TestRequestModeNormalization(t *testing.T) {
	base := MixRequest(Figure2(2), RunOpts{})
	spelled := MixRequest(Figure2(2), RunOpts{})
	spelled.Budget.Mode = ModeExact
	if spelled.Normalized().Hash() != base.Hash() {
		t.Error("explicit exact mode hashes apart from the default request")
	}

	adaptive := MixRequest(Figure2(2), RunOpts{})
	adaptive.Budget.Mode = ModeAdaptive
	if adaptive.Normalized().Hash() == base.Hash() {
		t.Error("adaptive request shares the exact hash")
	}

	// Defaults spelled out: a sampled request with nil sampling must hash
	// identically to one naming the default parameters explicitly.
	implicit := MixRequest(Figure2(2), RunOpts{MeasureInsts: 1_000_000})
	implicit.Budget.Mode = ModeSampled
	explicit := MixRequest(Figure2(2), RunOpts{MeasureInsts: 1_000_000})
	explicit.Budget.Mode = ModeSampled
	explicit.Budget.Sampling = &Sampling{
		PeriodInsts: sim.DefaultSamplingPeriod,
		UnitInsts:   sim.DefaultSamplingUnit,
		WarmupInsts: sim.DefaultSamplingWarmup,
	}
	if implicit.Normalized().Hash() != explicit.Normalized().Hash() {
		t.Error("sampled defaults not spelled out by Normalized: implicit and explicit requests hash apart")
	}
	if got := implicit.Normalized().Budget.Sampling; got == nil || got.PeriodInsts != sim.DefaultSamplingPeriod {
		t.Errorf("Normalized left sampling parameters unresolved: %+v", got)
	}

	// Sampling parameters only make sense in sampled mode.
	stray := MixRequest(Figure2(2), RunOpts{})
	stray.Budget.Sampling = &Sampling{PeriodInsts: 1000, UnitInsts: 100, WarmupInsts: 100}
	if err := stray.Validate(); err == nil {
		t.Error("sampling parameters accepted outside sampled mode")
	}

	bad := MixRequest(Figure2(2), RunOpts{MeasureInsts: 1_000_000})
	bad.Budget.Mode = "turbo"
	if err := bad.Validate(); err == nil {
		t.Error("unknown mode accepted")
	}

	overlong := MixRequest(Figure2(2), RunOpts{MeasureInsts: 1_000_000})
	overlong.Budget.Mode = ModeSampled
	overlong.Budget.Sampling = &Sampling{PeriodInsts: 500, UnitInsts: 400, WarmupInsts: 200}
	if err := overlong.Validate(); err == nil {
		t.Error("unit+warmup exceeding the period accepted")
	}
}

// TestRequestCoresNormalization: one core IS the single-core machine —
// an explicit Cores=1 canonicalizes to the zero value, so it cannot fork
// the cache keyspace, and multi-core requests hash apart from their
// single-core bases.
func TestRequestCoresNormalization(t *testing.T) {
	base := MixRequest(Figure2(2), RunOpts{})
	one := MixRequest(Figure2(2).WithCores(1), RunOpts{})
	if one.Hash() != base.Hash() {
		t.Error("Cores=1 request hashes apart from the default single-core request")
	}
	two := MixRequest(Figure2(2).WithCores(2), RunOpts{})
	if two.Hash() == base.Hash() {
		t.Error("2-core request shares the single-core hash")
	}
	if !strings.Contains(two.label(), "cores=2") {
		t.Errorf("multi-core label %q does not name the core count", two.label())
	}
	if strings.Contains(base.label(), "cores") {
		t.Errorf("single-core label %q mentions cores", base.label())
	}
}

// TestRequestHierarchyNormalization: hierarchy requests canonicalize —
// the unused flat L2 latency is zeroed so hand-assembled and
// WithHierarchy-built machines share a hash — and an empty Hierarchy
// stays the default model with its default hash.
func TestRequestHierarchyNormalization(t *testing.T) {
	flat := MixRequest(Figure2(2), RunOpts{})

	byHand := flat
	byHand.Machine.Mem.Hierarchy = []LevelSpec{SharedL2(512<<10, 8)}
	byHand.Machine.Mem.DRAMLatency = 64 // leaves L2Latency=16 stale

	built := MixRequest(Figure2(2).WithHierarchy(64, SharedL2(512<<10, 8)), RunOpts{})
	if byHand.Hash() != built.Hash() {
		t.Error("hand-assembled hierarchy request hashes apart from WithHierarchy")
	}
	if byHand.Hash() == flat.Hash() {
		t.Error("hierarchy request shares the flat model's hash")
	}
	if err := byHand.Validate(); err != nil {
		t.Errorf("normalizable hierarchy request rejected: %v", err)
	}

	// JSON "Hierarchy":[] round-trips back to the default model.
	empty := flat
	empty.Machine.Mem.Hierarchy = []LevelSpec{}
	if empty.Hash() != flat.Hash() {
		t.Error("empty non-nil hierarchy changed the default hash")
	}

	// The hierarchy request round-trips through JSON with its hash.
	raw, err := json.Marshal(built)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hash() != built.Hash() {
		t.Error("hierarchy request hash not preserved across JSON round trip")
	}

	// Stray DRAM latency without levels is rejected, not silently hashed.
	stray := flat
	stray.Machine.Mem.DRAMLatency = 64
	if err := stray.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("DRAM latency without hierarchy: %v, want ErrInvalidConfig", err)
	}
}

func TestRequestLabelDerivation(t *testing.T) {
	req := BenchmarkRequest("swim", Figure2(2).WithL2Latency(64), RunOpts{})
	if got := req.label(); !strings.Contains(got, "swim") || !strings.Contains(got, "threads=2") {
		t.Errorf("derived label %q missing workload or config", got)
	}
	req.Label = "mine"
	if req.label() != "mine" {
		t.Error("explicit label not honoured")
	}
}

func TestRequestSpeculationNormalization(t *testing.T) {
	base := MixRequest(Figure2(2), RunOpts{})

	// An all-zero speculation block is the disabled model: it folds to nil
	// and hashes as the plain machine, so "no speculation" has one hash.
	zero := MixRequest(Figure2(2).WithSpeculation(Speculation{}), RunOpts{})
	if zero.Hash() != base.Hash() {
		t.Error("zero speculation block forked the hash from the plain machine")
	}
	if zero.Normalized().Machine.Spec != nil {
		t.Error("zero speculation block did not normalize to nil")
	}

	// A defaulted squash penalty hashes as the spelled-out default.
	implicit := MixRequest(Figure2(2).WithSpeculation(
		Speculation{SpecLoadFrac: 0.4}), RunOpts{})
	explicit := MixRequest(Figure2(2).WithSpeculation(
		Speculation{SpecLoadFrac: 0.4, SquashCycles: DefaultSquashCycles}), RunOpts{})
	if implicit.Hash() != explicit.Hash() {
		t.Error("defaulted and spelled-out squash penalties hash differently")
	}
	// Normalization copies; the input request's block is untouched.
	m := Figure2(2).WithSpeculation(Speculation{SpecLoadFrac: 0.4})
	Request{Machine: m}.Normalized()
	if got := m.Spec.SquashCycles; got != 0 {
		t.Errorf("Normalized mutated the input's speculation block (SquashCycles=%d)", got)
	}

	// An LoD-only block keeps SquashCycles at zero: there is nothing to
	// squash without speculative loads, so no default is invented.
	lod := MixRequest(Figure2(1).WithSpeculation(Speculation{LoDEvery: 100}), RunOpts{})
	if got := lod.Normalized().Machine.Spec.SquashCycles; got != 0 {
		t.Errorf("LoD-only block grew a squash penalty (%d)", got)
	}

	bad := []struct {
		name string
		spec Speculation
	}{
		{"frac above one", Speculation{SpecLoadFrac: 1.5}},
		{"negative frac", Speculation{SpecLoadFrac: -0.1}},
		{"misspec above one", Speculation{SpecLoadFrac: 0.5, MisspecProb: 2}},
		{"negative squash", Speculation{SpecLoadFrac: 0.5, SquashCycles: -1}},
		{"negative lod", Speculation{LoDEvery: -3}},
		{"misspec without loads", Speculation{MisspecProb: 0.2}},
	}
	for _, tc := range bad {
		req := MixRequest(Figure2(1).WithSpeculation(tc.spec), RunOpts{})
		if err := req.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: %v, want ErrInvalidConfig", tc.name, err)
		}
	}
}

func TestRequestTraceNormalizationAndValidation(t *testing.T) {
	// The explicit "auto" format is the empty default spelled out, and
	// redundant path segments do not fork the hash.
	a := TraceRequest("traces/swim.dct", "", Figure2(2), RunOpts{})
	b := TraceRequest("traces/swim.dct", "auto", Figure2(2), RunOpts{})
	c := TraceRequest("./traces//swim.dct", "", Figure2(2), RunOpts{})
	if a.Hash() != b.Hash() {
		t.Error(`format "auto" hashes differently from the empty default`)
	}
	if a.Hash() != c.Hash() {
		t.Error("uncleaned trace path forked the hash")
	}
	if got := b.Normalized().Workload.Trace.Format; got != "" {
		t.Errorf(`format "auto" normalized to %q, want ""`, got)
	}
	// A distinct explicit format is a different request.
	d := TraceRequest("traces/swim.dct", "legacy", Figure2(2), RunOpts{})
	if a.Hash() == d.Hash() {
		t.Error("explicit legacy format did not change the hash")
	}

	if err := a.Validate(); err != nil {
		t.Fatalf("valid trace request rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Request)
	}{
		{"stray trace on mix", func(r *Request) {
			*r = MixRequest(Figure2(1), RunOpts{})
			r.Workload.Trace = &TraceRef{Path: "x.dct"}
		}},
		{"missing reference", func(r *Request) { r.Workload.Trace = nil }},
		{"empty path", func(r *Request) { r.Workload.Trace = &TraceRef{} }},
		{"unknown format", func(r *Request) { r.Workload.Trace.Format = "pcap" }},
		{"trace with bench", func(r *Request) { r.Workload.Bench = "swim" }},
		{"trace with seed", func(r *Request) { r.Workload.Seed = 9 }},
		{"trace with segment", func(r *Request) { r.Workload.SegmentLen = 100 }},
	}
	for _, tc := range bad {
		req := a
		req.Workload.Trace = &TraceRef{Path: a.Workload.Trace.Path, Format: a.Workload.Trace.Format}
		tc.mutate(&req)
		if err := req.Validate(); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: %v, want ErrInvalidRequest", tc.name, err)
		}
	}
}
