// Thread-requirement study: how many hardware contexts does each machine
// need to reach its peak throughput? Reproduces the solid lines of the
// paper's Figure 5 and prints where each machine saturates.
//
// The whole sweep is submitted as ONE Engine batch: the points execute
// concurrently across the worker pool, duplicates (including re-runs of
// the example) are deduplicated, and Ctrl-C cancels cleanly.
//
//	go run ./examples/threads [-maxthreads 7] [-l2 16]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	daesim "repro"
)

func main() {
	maxThreads := flag.Int("maxthreads", 7, "largest context count to sweep")
	l2 := flag.Int64("l2", 16, "L2 latency in cycles")
	measure := flag.Int64("measure", 600_000, "instructions per thread per run")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		log.Fatal(err)
	}

	// Build the whole grid as Requests: decoupled and non-decoupled
	// interleaved, so results come back position-addressable.
	var reqs []daesim.Request
	for t := 1; t <= *maxThreads; t++ {
		opts := daesim.RunOpts{
			WarmupInsts:  100_000 * int64(t),
			MeasureInsts: *measure * int64(t),
		}
		m := daesim.Figure2(t).WithL2Latency(*l2)
		reqs = append(reqs,
			daesim.MixRequest(m, opts),
			daesim.MixRequest(m.NonDecoupled(), opts))
	}
	results, err := eng.RunBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("IPC vs hardware contexts (L2=%d)\n\n", *l2)
	fmt.Printf("%8s  %10s  %14s\n", "threads", "decoupled", "non-decoupled")
	var dec, non []float64
	for t := 1; t <= *maxThreads; t++ {
		d := results[2*(t-1)].Report
		n := results[2*(t-1)+1].Report
		dec = append(dec, d.IPC())
		non = append(non, n.IPC())
		fmt.Printf("%8d  %10.2f  %14.2f\n", t, d.IPC(), n.IPC())
	}

	fmt.Printf("\ndecoupled reaches %.2f IPC with %d threads;\n", peak(dec), atPeak(dec))
	fmt.Printf("non-decoupled needs %d threads for %.2f IPC.\n", atPeak(non), peak(non))
	fmt.Println("paper: the decoupled machine peaks with 3-4 threads, the")
	fmt.Println("non-decoupled needs ~6 — fewer contexts mean less hardware")
	fmt.Println("and less pressure on the shared cache and bus.")
}

func peak(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

// atPeak returns the smallest thread count within 5% of the series peak.
func atPeak(xs []float64) int {
	p := peak(xs)
	for i, x := range xs {
		if x >= 0.95*p {
			return i + 1
		}
	}
	return len(xs)
}
