// Bus-saturation study: the dotted lines of the paper's Figure 5. At a
// 64-cycle L2 latency the non-decoupled machine needs so many contexts to
// hide memory latency that their combined working set thrashes the L1 and
// the L1↔L2 bus saturates — it can never match the decoupled machine.
//
// The sweep runs as one Engine batch and demonstrates the progress
// stream: Engine.Watch reports per-run graduation snapshots and
// per-point completions live on stderr while the table builds.
//
//	go run ./examples/busstudy [-maxthreads 16]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	daesim "repro"
)

func main() {
	maxThreads := flag.Int("maxthreads", 16, "largest context count to sweep")
	measure := flag.Int64("measure", 400_000, "instructions per thread per run")
	flag.Parse()

	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		log.Fatal(err)
	}

	// Live progress on stderr: completions as they happen.
	events, stop := eng.Watch(256)
	defer stop()
	go func() {
		for p := range events {
			if p.Event == daesim.ProgressDone && p.Err == nil {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", p.Done, p.Total, p.Label)
			}
		}
	}()

	var reqs []daesim.Request
	for t := 1; t <= *maxThreads; t++ {
		opts := daesim.RunOpts{
			WarmupInsts:  100_000 * int64(t),
			MeasureInsts: *measure * int64(t),
		}
		m := daesim.Figure2(t).WithL2Latency(64)
		reqs = append(reqs,
			daesim.MixRequest(m, opts),
			daesim.MixRequest(m.NonDecoupled(), opts))
	}
	results, err := eng.RunBatch(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("L2 latency = 64 cycles: IPC and bus utilization vs contexts")
	fmt.Println()
	fmt.Printf("%7s  %24s  %24s\n", "", "decoupled", "non-decoupled")
	fmt.Printf("%7s  %8s %15s  %8s %15s\n", "threads", "IPC", "bus", "IPC", "bus")

	for t := 1; t <= *maxThreads; t++ {
		dec := results[2*(t-1)].Report
		non := results[2*(t-1)+1].Report
		fmt.Printf("%7d  %8.2f %6.1f%% %s  %8.2f %6.1f%% %s\n",
			t,
			dec.IPC(), 100*dec.BusUtilization, bar(dec.BusUtilization),
			non.IPC(), 100*non.BusUtilization, bar(non.BusUtilization))
	}

	fmt.Println("\npaper: with decoupling disabled the bus reaches 89% utilization")
	fmt.Println("at 12 threads and 98% at 16 — bandwidth, not latency, becomes the")
	fmt.Println("bottleneck, so no number of contexts recovers the lost throughput.")
}

// bar renders a tiny utilization bar for terminal output.
func bar(frac float64) string {
	const width = 8
	n := int(frac*width + 0.5)
	if n > width {
		n = width
	}
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
