// Bus-saturation study: the dotted lines of the paper's Figure 5. At a
// 64-cycle L2 latency the non-decoupled machine needs so many contexts to
// hide memory latency that their combined working set thrashes the L1 and
// the L1↔L2 bus saturates — it can never match the decoupled machine.
//
// With -l2size the flat infinite L2 is replaced by a finite shared L2
// over DRAM and the table adds the per-level view: the L1↔L2 bus and
// the L2↔memory bus saturate at different thread counts, which the flat
// model cannot show.
//
// The sweep runs as one Engine batch and demonstrates the progress
// stream: Engine.Watch reports per-run graduation snapshots and
// per-point completions live on stderr while the table builds.
//
//	go run ./examples/busstudy [-maxthreads 16] [-l2size 262144]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	daesim "repro"
)

func main() {
	maxThreads := flag.Int("maxthreads", 16, "largest context count to sweep (per core)")
	measure := flag.Int64("measure", 400_000, "instructions per thread per run")
	l2Size := flag.Int("l2size", 0, "finite shared L2 capacity in bytes (0 = the paper's infinite flat L2)")
	cores := flag.Int("cores", 1, "CMP cores sharing the hierarchy (each context count then applies per core)")
	flag.Parse()

	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		log.Fatal(err)
	}

	// Live progress on stderr: completions as they happen.
	events, stop := eng.Watch(256)
	defer stop()
	go func() {
		for p := range events {
			if p.Event == daesim.ProgressDone && p.Err == nil {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", p.Done, p.Total, p.Label)
			}
		}
	}()

	var reqs []daesim.Request
	for t := 1; t <= *maxThreads; t++ {
		opts := daesim.RunOpts{
			WarmupInsts:  100_000 * int64(t**cores),
			MeasureInsts: *measure * int64(t**cores),
		}
		m := daesim.Figure2(t).WithL2Latency(64)
		if *l2Size > 0 {
			m = daesim.Figure2(t).WithHierarchy(64, daesim.SharedL2(*l2Size, 8))
		}
		m = m.WithCores(*cores)
		reqs = append(reqs,
			daesim.MixRequest(m, opts),
			daesim.MixRequest(m.NonDecoupled(), opts))
	}
	results, err := eng.RunBatch(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	if *l2Size > 0 {
		fmt.Printf("finite %d KB shared L2 + DRAM: IPC and per-level bus utilization vs contexts\n\n", *l2Size>>10)
		fmt.Printf("%7s  %36s  %36s\n", "", "decoupled", "non-decoupled")
		fmt.Printf("%7s  %8s %13s %13s  %8s %13s %13s\n",
			"threads", "IPC", "L1<->L2", "L2<->mem", "IPC", "L1<->L2", "L2<->mem")
	} else {
		fmt.Println("L2 latency = 64 cycles: IPC and bus utilization vs contexts")
		fmt.Println()
		fmt.Printf("%7s  %24s  %24s\n", "", "decoupled", "non-decoupled")
		fmt.Printf("%7s  %8s %15s  %8s %15s\n", "threads", "IPC", "bus", "IPC", "bus")
	}

	for t := 1; t <= *maxThreads; t++ {
		dec := results[2*(t-1)].Report
		non := results[2*(t-1)+1].Report
		if *l2Size > 0 {
			memBus := func(r daesim.Report) float64 {
				if len(r.MemLevels) == 0 {
					return 0
				}
				return r.MemLevels[len(r.MemLevels)-1].BusUtilization
			}
			fmt.Printf("%7d  %8.2f %5.1f%% %s %5.1f%% %s  %8.2f %5.1f%% %s %5.1f%% %s\n",
				t,
				dec.IPC(), 100*dec.BusUtilization, bar(dec.BusUtilization, 5),
				100*memBus(dec), bar(memBus(dec), 5),
				non.IPC(), 100*non.BusUtilization, bar(non.BusUtilization, 5),
				100*memBus(non), bar(memBus(non), 5))
			continue
		}
		fmt.Printf("%7d  %8.2f %6.1f%% %s  %8.2f %6.1f%% %s\n",
			t,
			dec.IPC(), 100*dec.BusUtilization, bar(dec.BusUtilization, 8),
			non.IPC(), 100*non.BusUtilization, bar(non.BusUtilization, 8))
	}

	if *l2Size > 0 {
		fmt.Println("\nthe finite-L2 view separates the two bandwidth walls: the L1<->L2")
		fmt.Println("bus carries every L1 miss, the memory bus only the shared-cache")
		fmt.Println("misses — adding contexts moves pressure from one to the other as")
		fmt.Println("the combined working set outgrows the shared capacity.")
		return
	}
	fmt.Println("\npaper: with decoupling disabled the bus reaches 89% utilization")
	fmt.Println("at 12 threads and 98% at 16 — bandwidth, not latency, becomes the")
	fmt.Println("bottleneck, so no number of contexts recovers the lost throughput.")
}

// bar renders a utilization bar of the given width for terminal output
// (narrow bars fit two per column pair in the per-level table).
func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
