// Custom workload: define your own benchmark model against the public API
// and see how well it decouples. The example builds a pointer-chasing
// gather kernel (the worst case for an access/execute machine: the AP
// serializes on its own loads) and a blocked stencil kernel (the best
// case), then compares their latency tolerance.
//
// Custom models are first-class Requests: the full benchmark definition
// is part of the content hash, so custom-workload results cache, dedup
// and serve over dae-serve exactly like the built-ins.
//
//	go run ./examples/custom
package main

import (
	"context"
	"fmt"
	"log"

	daesim "repro"
)

func main() {
	gather := daesim.Benchmark{
		Name: "gather-chase",
		Seed: 0xC0FFEE,
		Streams: []daesim.StreamSpec{
			{Name: "index", SizeBytes: 2 << 20, StrideBytes: 8}, // sweeps, misses
			{Name: "data", SizeBytes: 2 << 20, StrideBytes: 8},  // gathered through idx
			{Name: "out", SizeBytes: 8 << 10, StrideBytes: 8},   // resident
		},
		Kernels: []daesim.Kernel{{
			Name: "chase", Weight: 1000, InnerTrip: 100,
			FPLoads: []int{1}, Stores: []int{2},
			FPOps: 4, FPChains: 4, IntOps: 1,
			// Every iteration: an integer index load whose value feeds
			// the FP load's address, one instruction apart — the AP
			// cannot run ahead of memory.
			IntLoad: daesim.IntLoadSpec{Stream: 0, Every: 1, Feeds: true, Dist: 1},
		}},
	}

	stencil := daesim.Benchmark{
		Name: "stencil-blocked",
		Seed: 0xBEEF,
		Streams: []daesim.StreamSpec{
			{Name: "grid", SizeBytes: 4 << 20, StrideBytes: 8, Reuse: 3},
			{Name: "coef", SizeBytes: 8 << 10, StrideBytes: 8},
			{Name: "out", SizeBytes: 4 << 20, StrideBytes: 8, Reuse: 3},
		},
		Kernels: []daesim.Kernel{{
			Name: "sweep", Weight: 1000, InnerTrip: 200,
			FPLoads: []int{0, 1}, Stores: []int{2},
			FPOps: 6, FPChains: 6, IntOps: 2,
		}},
	}

	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("decoupling quality of two custom kernels (1 thread):")
	fmt.Printf("%-16s %8s %8s %12s %12s\n", "kernel", "L2=16", "L2=128", "loss", "perceived@128")
	for _, b := range []daesim.Benchmark{stencil, gather} {
		fast := run(eng, b, 16)
		slow := run(eng, b, 128)
		fmt.Printf("%-16s %8.2f %8.2f %11.1f%% %12.1f\n",
			b.Name, fast.IPC(), slow.IPC(),
			100*(1-slow.IPC()/fast.IPC()),
			slow.Perceived().Mean())
	}
	fmt.Println("\nthe stencil's address stream is independent of its data, so the")
	fmt.Println("AP prefetches it arbitrarily far ahead; the gather's addresses")
	fmt.Println("come from memory, so decoupling cannot help — exactly the")
	fmt.Println("distinction the paper draws between its benchmarks.")
}

func run(eng *daesim.Engine, b daesim.Benchmark, l2 int64) daesim.Report {
	m := daesim.Figure2(1).WithL2Latency(l2)
	// Scale the slip window with the latency (the paper's Section-2 rule)
	// so the comparison isolates the *workloads'* decoupling quality from
	// buffer sizing (see DESIGN.md §5 and ablation A6).
	m.ScaleWithLatency = true
	rep, err := eng.Run(context.Background(), daesim.CustomRequest(b, m, daesim.RunOpts{
		WarmupInsts:  100_000,
		MeasureInsts: 400_000,
	}))
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
