// Latency study: how tolerant is each machine to L2 latency? Reproduces
// the shape of the paper's Figure 4 on a small budget and prints the
// per-configuration IPC-loss curves. The sweep runs as one Engine batch
// across all cores.
//
//	go run ./examples/latency [-threads 4] [-measure 800000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	daesim "repro"
)

func main() {
	threads := flag.Int("threads", 4, "hardware contexts")
	measure := flag.Int64("measure", 800_000, "instructions per run")
	flag.Parse()

	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		log.Fatal(err)
	}

	latencies := []int64{1, 16, 32, 64, 128, 256}
	opts := daesim.RunOpts{WarmupInsts: 150_000, MeasureInsts: *measure}
	var reqs []daesim.Request
	for _, lat := range latencies {
		m := daesim.Figure2(*threads).WithL2Latency(lat)
		// The large-latency points need latency-scaled buffering, as in
		// the paper's Section 2 (see DESIGN.md).
		m.ScaleWithLatency = true
		reqs = append(reqs,
			daesim.MixRequest(m, opts),
			daesim.MixRequest(m.NonDecoupled(), opts))
	}
	results, err := eng.RunBatch(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("L2 latency tolerance, %d threads (IPC and loss vs L2=1)\n\n", *threads)
	fmt.Printf("%8s  %22s  %22s\n", "", "decoupled", "non-decoupled")
	fmt.Printf("%8s  %10s %10s  %10s %10s\n", "L2", "IPC", "loss", "IPC", "loss")

	var decBase, nonBase float64
	for i, lat := range latencies {
		dec := results[2*i].Report
		non := results[2*i+1].Report
		if lat == 1 {
			decBase, nonBase = dec.IPC(), non.IPC()
		}
		fmt.Printf("%8d  %10.2f %9.1f%%  %10.2f %9.1f%%\n",
			lat,
			dec.IPC(), 100*(dec.IPC()-decBase)/decBase,
			non.IPC(), 100*(non.IPC()-nonBase)/nonBase)
	}
	fmt.Println("\npaper: decoupled loses <4% up to L2=32 and <39% at 256;")
	fmt.Println("       non-decoupled loses >23% at 32 and >79% at 256.")
}
