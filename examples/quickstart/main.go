// Quickstart: build the paper's machine, run the multiprogrammed mix
// through the Engine, and print the headline statistics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	daesim "repro"
)

func main() {
	ctx := context.Background()

	// The Engine validates, caches and deduplicates every Request it
	// executes; one engine serves a whole program (or, via dae-serve, a
	// whole fleet of clients).
	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Figure-2 machine with three hardware contexts — the
	// configuration where the AP first saturates (Section 3.1).
	machine := daesim.Figure2(3)

	// Each context runs a rotated sequence of the ten SPEC FP95 workload
	// models, exactly like the paper's Section-3 experiments. The Request
	// is pure data: print req.Hash() and any other process (or a
	// dae-serve instance) can name this exact result.
	req := daesim.MixRequest(machine, daesim.RunOpts{
		WarmupInsts:  200_000,
		MeasureInsts: 1_500_000,
	})
	report, err := eng.Run(ctx, req)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("request hash: %s\n", req.Hash())
	fmt.Printf("headline: %.2f IPC on a 3-context decoupled machine "+
		"(the paper reports 6.19)\n", report.IPC())

	// Decoupling is the latency-hiding mechanism: compare against the
	// same machine with the instruction queues' slippage disabled.
	nonDec, err := eng.Run(ctx, daesim.MixRequest(machine.NonDecoupled(), daesim.RunOpts{
		WarmupInsts:  200_000,
		MeasureInsts: 1_500_000,
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without decoupling: %.2f IPC (%.0f%% slower), "+
		"perceived load-miss latency %.1f vs %.1f cycles\n",
		nonDec.IPC(),
		100*(1-nonDec.IPC()/report.IPC()),
		nonDec.Perceived().Mean(),
		report.Perceived().Mean())
}
