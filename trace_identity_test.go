package daesim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// TestTraceReplayByteIdentity is the trace frontend's acceptance gate: a
// trace exported from a built-in benchmark and re-imported must produce a
// report byte-identical to running the generator directly, on all four
// figure-2/4 machine configurations. Byte equality of the JSON encoding
// is deliberate — every counter, not just IPC, must survive the round
// trip through the container format.
func TestTraceReplayByteIdentity(t *testing.T) {
	const (
		bench     = "swim"
		warmup    = 2_000
		measure   = 8_000
		perStream = 30_000 // covers warmup+measure per context plus fetch run-ahead
	)
	b, err := BenchmarkByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	export := func(contexts int) string {
		path := filepath.Join(dir, "swim.dct")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := workload.ExportTrace(f, b, contexts, 0, perStream, "identity gate"); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	configs := []struct {
		name string
		m    Machine
	}{
		{"t=1 L2=64", Figure2(1)},
		{"t=1 L2=256", Figure2(1).WithL2Latency(256)},
		{"t=4 L2=64", Figure2(4)},
		{"t=4 L2=256", Figure2(4).WithL2Latency(256)},
	}
	opts := RunOpts{WarmupInsts: warmup, MeasureInsts: measure}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			path := export(tc.m.TotalContexts())
			want, err := runRequest(BenchmarkRequest(bench, tc.m, opts))
			if err != nil {
				t.Fatal(err)
			}
			got, err := runRequest(TraceRequest(path, "", tc.m, opts))
			if err != nil {
				t.Fatal(err)
			}
			wj, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gj, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(wj) != string(gj) {
				t.Errorf("trace replay diverged from the generator run\ngenerator: %s\ntrace:     %s", wj, gj)
			}
		})
	}
}
