// Package daesim is the public API of the multithreaded decoupled
// access/execute processor simulator, a from-scratch reproduction of
//
//	J.-M. Parcerisa and A. González,
//	"The Synergy of Multithreading and Access/Execute Decoupling",
//	HPCA 1999.
//
// The simulator models a simultaneous-multithreaded processor whose
// contexts each execute in access/execute-decoupled mode: an in-order
// Address Processor (AP) runs ahead computing addresses and issuing loads
// while an in-order Execute Processor (EP) consumes the data through a
// per-thread instruction queue. See DESIGN.md for the full model and
// EXPERIMENTS.md for the reproduction of every figure in the paper.
//
// # Quick start
//
// The unit of work is a Request — a serializable (machine, workload,
// budget) triple with a stable content hash — executed by an Engine,
// which caches, deduplicates and bounds concurrent simulations:
//
//	eng, err := daesim.NewEngine(daesim.EngineOpts{})
//	if err != nil { ... }
//	m := daesim.Figure2(3)                    // the paper's machine, 3 threads
//	rep, err := eng.Run(ctx, daesim.MixRequest(m, daesim.RunOpts{MeasureInsts: 1e6}))
//	if err != nil { ... }
//	fmt.Printf("IPC = %.2f\n", rep.IPC())
//
// Single benchmarks (the paper's Section-2 study) run the same way:
//
//	m := daesim.Section2().WithL2Latency(64)
//	rep, err := eng.Run(ctx, daesim.BenchmarkRequest("swim", m, daesim.RunOpts{MeasureInsts: 1e6}))
//
// All runs are deterministic: the same Request always produces identical
// statistics, which is why results are content-addressed by Request.Hash
// and can be shared between processes (see EngineOpts.CacheDir) or
// served over HTTP by cmd/dae-serve.
//
// The blocking package-level RunMix/RunBenchmark/RunCustom helpers
// predate the Engine and remain as thin uncached wrappers; new code
// should construct Requests and use an Engine.
package daesim

import (
	"context"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Machine is a complete processor configuration. Construct one with
// Figure2 or Section2 and adjust it with the With* builders or direct
// field access.
type Machine = config.Machine

// Report is the statistics snapshot of a finished run: IPC, issue-slot
// breakdown, perceived load-miss latencies, memory counters and bus
// utilization (per level, for finite-hierarchy machines).
type Report = stats.Report

// LevelSpec configures one shared cache level of a finite memory
// hierarchy; attach levels to a Machine with Machine.WithHierarchy. The
// default Machine (empty hierarchy) runs the paper's infinite
// flat-latency L2.
type LevelSpec = mem.LevelSpec

// LevelStats is one shared level's counter snapshot (Report.MemLevels).
type LevelStats = mem.LevelStats

// SharedL2 returns a LevelSpec for a finite shared L2 with the given
// capacity and associativity and Figure-2-flavoured defaults (32-byte
// lines, 16 MSHRs, 16-cycle array access, 16-byte/cycle memory bus).
func SharedL2(sizeBytes, assoc int) LevelSpec { return config.SharedL2(sizeBytes, assoc) }

// Benchmark is a synthetic workload model (one of the ten SPEC FP95
// equivalents, or a custom definition built from StreamSpec and Kernel).
type Benchmark = workload.Benchmark

// StreamSpec describes one array access stream of a custom Benchmark.
type StreamSpec = workload.StreamSpec

// Kernel is one loop nest of a custom Benchmark.
type Kernel = workload.Kernel

// IntLoadSpec configures a Kernel's integer (index/gather) loads.
type IntLoadSpec = workload.IntLoadSpec

// CatalogEntry describes one curated workload: name, kind, provenance,
// footprint and mix shape (see Catalog).
type CatalogEntry = workload.CatalogEntry

// Catalog returns the curated workload catalog, built-ins first in the
// paper's order. `dae-trace list` renders the same entries.
func Catalog() []CatalogEntry { return workload.Catalog() }

// CatalogByName returns the named catalog entry.
func CatalogByName(name string) (CatalogEntry, error) { return workload.CatalogByName(name) }

// Speculation parameterizes the speculative-DAE extension (speculative
// access-slice loads, squash penalties and loss-of-decoupling events);
// attach it to a Machine with Machine.WithSpeculation.
type Speculation = config.Speculation

// DefaultSquashCycles is the squash refetch penalty applied when
// Speculation.SquashCycles is zero.
const DefaultSquashCycles = config.DefaultSquashCycles

// FetchPolicy selects the fetch thread-choice policy.
type FetchPolicy = config.FetchPolicy

// Fetch policies.
const (
	FetchICOUNT     = config.FetchICOUNT
	FetchRoundRobin = config.FetchRoundRobin
)

// Figure2 returns the paper's Section-3 multithreaded decoupled machine
// (Figure 2 parameters) with the given number of hardware contexts.
func Figure2(threads int) Machine { return config.Figure2(threads) }

// Section2 returns the paper's Section-2 single-threaded machine: 4-way
// issue from 4 shared general-purpose FUs, 2-port L1, with queue and
// register-file sizes scaling proportionally to the L2 latency.
func Section2() Machine { return config.Section2() }

// Benchmarks returns the names of the ten built-in SPEC FP95 workload
// models, in the paper's order.
func Benchmarks() []string { return workload.Names() }

// BenchmarkByName returns the named built-in workload model.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// RunOpts controls a simulation run's instruction budget.
type RunOpts struct {
	// WarmupInsts is the cache/pipeline warm-up window (graduated
	// instructions, machine-wide total) excluded from the measurement.
	// Zero applies DefaultWarmup.
	WarmupInsts int64
	// MeasureInsts is the measurement window (graduated instructions,
	// machine-wide total). Zero applies DefaultMeasure.
	MeasureInsts int64
	// Seed perturbs workload randomness (branch outcomes); runs with the
	// same seed are bit-identical.
	Seed uint64
	// SegmentLen overrides the benchmark rotation length for mixes.
	SegmentLen int64
	// MaxCycles caps the run as a deadlock guard (0 = a large default).
	MaxCycles int64
}

// Default instruction budgets. The paper simulates 100M-instruction
// windows; these defaults keep interactive runs fast while remaining in
// steady state — raise them for publication-grade numbers.
const (
	DefaultWarmup  = 200_000
	DefaultMeasure = 1_000_000
)

// RunBenchmark simulates one built-in benchmark. On a single-thread
// machine the benchmark runs alone (the paper's Section-2 methodology); on
// a multithreaded machine every context runs an independent copy with a
// private address space and perturbed data-dependent behaviour (distinct
// "inputs").
//
// Deprecated: RunBenchmark blocks without cancellation and caches
// nothing. Use Engine.Run with a BenchmarkRequest; results are
// bit-identical.
func RunBenchmark(name string, m Machine, opts RunOpts) (Report, error) {
	return runRequest(BenchmarkRequest(name, m, opts))
}

// RunCustom simulates a custom workload model (see Benchmark) the same way
// RunBenchmark runs the built-ins.
//
// Deprecated: RunCustom blocks without cancellation and caches nothing.
// Use Engine.Run with a CustomRequest; results are bit-identical.
func RunCustom(b Benchmark, m Machine, opts RunOpts) (Report, error) {
	return runRequest(CustomRequest(b, m, opts))
}

// RunMix simulates the paper's Section-3 workload: every context runs a
// rotated concatenation of all ten benchmarks ("a sequence of traces from
// all SpecFP95 programs, in a different order for each thread").
//
// Deprecated: RunMix blocks without cancellation and caches nothing.
// Use Engine.Run with a MixRequest; results are bit-identical.
func RunMix(m Machine, opts RunOpts) (Report, error) {
	return runRequest(MixRequest(m, opts))
}

// runRequest is the uncached one-shot execution path behind the
// deprecated wrappers: same validation and same simulation as the
// Engine, minus the cache, the deduplication and the worker semaphore.
func runRequest(req Request) (Report, error) {
	if err := req.Validate(); err != nil {
		return Report{}, err
	}
	return req.Normalized().job().Execute(context.Background(), nil, 0)
}
