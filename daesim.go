// Package daesim is the public API of the multithreaded decoupled
// access/execute processor simulator, a from-scratch reproduction of
//
//	J.-M. Parcerisa and A. González,
//	"The Synergy of Multithreading and Access/Execute Decoupling",
//	HPCA 1999.
//
// The simulator models a simultaneous-multithreaded processor whose
// contexts each execute in access/execute-decoupled mode: an in-order
// Address Processor (AP) runs ahead computing addresses and issuing loads
// while an in-order Execute Processor (EP) consumes the data through a
// per-thread instruction queue. See DESIGN.md for the full model and
// EXPERIMENTS.md for the reproduction of every figure in the paper.
//
// # Quick start
//
//	m := daesim.Figure2(3)                    // the paper's machine, 3 threads
//	rep, err := daesim.RunMix(m, daesim.RunOpts{MeasureInsts: 1e6})
//	if err != nil { ... }
//	fmt.Printf("IPC = %.2f\n", rep.IPC())
//
// Single benchmarks (the paper's Section-2 study) run with RunBenchmark:
//
//	m := daesim.Section2().WithL2Latency(64)
//	rep, err := daesim.RunBenchmark("swim", m, daesim.RunOpts{MeasureInsts: 1e6})
//
// All runs are deterministic: the same configuration and options always
// produce identical statistics.
package daesim

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Machine is a complete processor configuration. Construct one with
// Figure2 or Section2 and adjust it with the With* builders or direct
// field access.
type Machine = config.Machine

// Report is the statistics snapshot of a finished run: IPC, issue-slot
// breakdown, perceived load-miss latencies, memory counters and bus
// utilization.
type Report = stats.Report

// Benchmark is a synthetic workload model (one of the ten SPEC FP95
// equivalents, or a custom definition built from StreamSpec and Kernel).
type Benchmark = workload.Benchmark

// StreamSpec describes one array access stream of a custom Benchmark.
type StreamSpec = workload.StreamSpec

// Kernel is one loop nest of a custom Benchmark.
type Kernel = workload.Kernel

// IntLoadSpec configures a Kernel's integer (index/gather) loads.
type IntLoadSpec = workload.IntLoadSpec

// FetchPolicy selects the fetch thread-choice policy.
type FetchPolicy = config.FetchPolicy

// Fetch policies.
const (
	FetchICOUNT     = config.FetchICOUNT
	FetchRoundRobin = config.FetchRoundRobin
)

// Figure2 returns the paper's Section-3 multithreaded decoupled machine
// (Figure 2 parameters) with the given number of hardware contexts.
func Figure2(threads int) Machine { return config.Figure2(threads) }

// Section2 returns the paper's Section-2 single-threaded machine: 4-way
// issue from 4 shared general-purpose FUs, 2-port L1, with queue and
// register-file sizes scaling proportionally to the L2 latency.
func Section2() Machine { return config.Section2() }

// Benchmarks returns the names of the ten built-in SPEC FP95 workload
// models, in the paper's order.
func Benchmarks() []string { return workload.Names() }

// BenchmarkByName returns the named built-in workload model.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// RunOpts controls a simulation run's instruction budget.
type RunOpts struct {
	// WarmupInsts is the cache/pipeline warm-up window (graduated
	// instructions, machine-wide total) excluded from the measurement.
	// Zero applies DefaultWarmup.
	WarmupInsts int64
	// MeasureInsts is the measurement window (graduated instructions,
	// machine-wide total). Zero applies DefaultMeasure.
	MeasureInsts int64
	// Seed perturbs workload randomness (branch outcomes); runs with the
	// same seed are bit-identical.
	Seed uint64
	// SegmentLen overrides the benchmark rotation length for mixes.
	SegmentLen int64
	// MaxCycles caps the run as a deadlock guard (0 = a large default).
	MaxCycles int64
}

// Default instruction budgets. The paper simulates 100M-instruction
// windows; these defaults keep interactive runs fast while remaining in
// steady state — raise them for publication-grade numbers.
const (
	DefaultWarmup  = 200_000
	DefaultMeasure = 1_000_000
)

func (o RunOpts) withDefaults() RunOpts {
	if o.WarmupInsts <= 0 {
		o.WarmupInsts = DefaultWarmup
	}
	if o.MeasureInsts <= 0 {
		o.MeasureInsts = DefaultMeasure
	}
	return o
}

// RunBenchmark simulates one built-in benchmark. On a single-thread
// machine the benchmark runs alone (the paper's Section-2 methodology); on
// a multithreaded machine every context runs an independent copy with a
// private address space and perturbed data-dependent behaviour (distinct
// "inputs").
func RunBenchmark(name string, m Machine, opts RunOpts) (Report, error) {
	b, err := workload.ByName(name)
	if err != nil {
		return Report{}, err
	}
	return RunCustom(b, m, opts)
}

// RunCustom simulates a custom workload model (see Benchmark) the same way
// RunBenchmark runs the built-ins.
func RunCustom(b Benchmark, m Machine, opts RunOpts) (Report, error) {
	if err := b.Validate(); err != nil {
		return Report{}, err
	}
	opts = opts.withDefaults()
	sources := make([]trace.Reader, m.Threads)
	for t := 0; t < m.Threads; t++ {
		sources[t] = b.NewReader(workload.ReaderOpts{
			AddrOffset: workload.ThreadAddrOffset(t),
			Seed:       opts.Seed + uint64(t),
		})
	}
	return run(m, sources, opts)
}

// RunMix simulates the paper's Section-3 workload: every context runs a
// rotated concatenation of all ten benchmarks ("a sequence of traces from
// all SpecFP95 programs, in a different order for each thread").
func RunMix(m Machine, opts RunOpts) (Report, error) {
	opts = opts.withDefaults()
	sources := workload.MixSources(m.Threads, workload.MixOpts{
		SegmentLen: opts.SegmentLen,
		Seed:       opts.Seed,
	})
	return run(m, sources, opts)
}

func run(m Machine, sources []trace.Reader, opts RunOpts) (Report, error) {
	res, err := sim.Run(sim.Options{
		Machine:      m,
		Sources:      sources,
		WarmupInsts:  opts.WarmupInsts,
		MeasureInsts: opts.MeasureInsts,
		MaxCycles:    opts.MaxCycles,
	})
	if err != nil {
		return Report{}, err
	}
	if !res.Completed {
		return res.Report, fmt.Errorf("daesim: run hit the cycle cap before finishing its measurement window")
	}
	return res.Report, nil
}
