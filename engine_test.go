package daesim

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testEngine(t *testing.T, opts EngineOpts) *Engine {
	t.Helper()
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func shortOpts() RunOpts {
	return RunOpts{WarmupInsts: 2_000, MeasureInsts: 8_000}
}

// TestEngineMatchesDirectRunByteForByte is the bit-identity acceptance
// gate: for each of the four figure configurations the Engine's Report
// must serialize to exactly the bytes the direct (deprecated,
// engine-less) path produces.
func TestEngineMatchesDirectRunByteForByte(t *testing.T) {
	eng := testEngine(t, EngineOpts{Workers: 2})
	ctx := context.Background()
	configs := []struct {
		name    string
		machine Machine
	}{
		{"1T-L2_16", Figure2(1)},
		{"1T-L2_256", Figure2(1).WithL2Latency(256)},
		{"4T-L2_16", Figure2(4)},
		{"4T-L2_256", Figure2(4).WithL2Latency(256)},
	}
	for _, cfg := range configs {
		direct, err := RunMix(cfg.machine, shortOpts())
		if err != nil {
			t.Fatalf("%s: direct: %v", cfg.name, err)
		}
		viaEngine, err := eng.Run(ctx, MixRequest(cfg.machine, shortOpts()))
		if err != nil {
			t.Fatalf("%s: engine: %v", cfg.name, err)
		}
		want, _ := json.Marshal(direct)
		got, _ := json.Marshal(viaEngine)
		if string(want) != string(got) {
			t.Errorf("%s: engine report differs from direct run\nwant %s\ngot  %s", cfg.name, want, got)
		}
	}
}

func TestEngineCancellationIsPrompt(t *testing.T) {
	eng := testEngine(t, EngineOpts{Workers: 1})
	// A measurement window ~3 orders of magnitude beyond the test budget:
	// only cancellation can end this run quickly.
	req := MixRequest(Figure2(1), RunOpts{WarmupInsts: 1_000, MeasureInsts: 200_000_000})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := eng.Run(ctx, req)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v, want < 1s", elapsed)
	}
	// Aborted runs must not be cached.
	if _, ok := eng.Lookup(req.Hash()); ok {
		t.Error("aborted run left a cache entry")
	}
	// The engine stays healthy: the same request runs fine afterwards
	// with a workable budget.
	req.Budget.MeasureInsts = 8_000
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatalf("engine broken after cancellation: %v", err)
	}
}

func TestEngineDeduplicatesConcurrentIdenticalRequests(t *testing.T) {
	eng := testEngine(t, EngineOpts{Workers: 4})
	req := MixRequest(Figure2(1), shortOpts())
	const callers = 8

	var wg sync.WaitGroup
	reports := make([]Report, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = eng.Run(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(reports[i], reports[0]) {
			t.Fatalf("caller %d received a different report", i)
		}
	}
	if sim := eng.Stats().Simulated; sim != 1 {
		t.Fatalf("%d simulations for %d concurrent identical requests, want 1", sim, callers)
	}
}

func TestEngineRunBatchAlignmentAndAggregation(t *testing.T) {
	eng := testEngine(t, EngineOpts{Workers: 2})
	reqs := []Request{
		MixRequest(Figure2(1), shortOpts()),
		BenchmarkRequest("quake3", Figure2(1), shortOpts()), // invalid: unknown name
		BenchmarkRequest("swim", Figure2(1), shortOpts()),
		MixRequest(Figure2(0), shortOpts()), // invalid: zero threads
	}
	results, err := eng.RunBatch(context.Background(), reqs)
	if err == nil {
		t.Fatal("batch with invalid requests returned nil error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BatchError", err)
	}
	if len(be.Errors) != 2 || be.Total != 4 {
		t.Fatalf("BatchError has %d/%d failures, want 2/4", len(be.Errors), be.Total)
	}
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("valid requests failed alongside invalid ones")
	}
	if results[0].Report.Graduated == 0 || results[2].Report.Graduated == 0 {
		t.Error("valid requests missing reports")
	}
	if !errors.Is(results[1].Err, ErrUnknownBenchmark) {
		t.Errorf("request 1 error %v, want ErrUnknownBenchmark", results[1].Err)
	}
	if !errors.Is(results[3].Err, ErrInvalidConfig) {
		t.Errorf("request 3 error %v, want ErrInvalidConfig", results[3].Err)
	}
	if results[1].Hash != "" {
		t.Error("invalid request was assigned a content hash")
	}
}

func TestEngineDiskCacheInteropAndLookup(t *testing.T) {
	dir := t.TempDir()
	req := MixRequest(Figure2(1), shortOpts())

	first := testEngine(t, EngineOpts{Workers: 1, CacheDir: dir})
	rep, err := first.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// The disk entry is named by the Request's public content hash — the
	// contract that makes results addressable across processes and tools
	// (dae-sweep, dae-sim -cache, dae-serve share the directory format).
	if _, err := os.Stat(filepath.Join(dir, req.Hash()+".json")); err != nil {
		t.Fatalf("no cache entry named by Request.Hash: %v", err)
	}

	second := testEngine(t, EngineOpts{Workers: 1, CacheDir: dir})
	got, ok := second.Lookup(req.Hash())
	if !ok {
		t.Fatal("fresh engine cannot look up the on-disk result")
	}
	if a, b := mustJSON(t, rep), mustJSON(t, got); a != b {
		t.Errorf("disk round-trip altered the report\nwant %s\ngot  %s", a, b)
	}
	if sim := second.Stats().Simulated; sim != 0 {
		t.Errorf("lookup simulated %d runs", sim)
	}
}

func TestEngineWatchStreamsProgress(t *testing.T) {
	eng := testEngine(t, EngineOpts{Workers: 1, SnapshotEvery: 1_000})
	events, stop := eng.Watch(256)
	defer stop()

	req := MixRequest(Figure2(1), shortOpts())
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	var snapshots, done int
	var sawMeasure bool
	var lastStats Stats
deadline:
	for {
		select {
		case p := <-events:
			switch p.Event {
			case ProgressSnapshot:
				snapshots++
				if p.Phase == "measure" {
					sawMeasure = true
				}
				if p.Hash != req.Hash() {
					t.Errorf("snapshot hash %q, want %q", p.Hash, req.Hash())
				}
			case ProgressDone:
				done++
				lastStats = p.Stats
				break deadline
			}
		case <-time.After(2 * time.Second):
			t.Fatal("no ProgressDone event")
		}
	}
	if snapshots == 0 {
		t.Error("no in-run snapshots streamed")
	}
	if !sawMeasure {
		t.Error("no measurement-phase snapshot streamed")
	}
	if done != 1 {
		t.Errorf("%d done events, want 1", done)
	}
	if lastStats.Simulated != 1 {
		t.Errorf("done event carries stats %+v, want Simulated=1", lastStats)
	}
	// A cache hit produces a done event but no snapshots.
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-events:
		if p.Event != ProgressDone || !p.Cached {
			t.Errorf("cache hit produced %+v, want a cached done event", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event for the cache hit")
	}
}

// TestEngineWatchHashFiltersAndSelfCloses covers the Watch-over-HTTP
// plumbing: a WatchHash subscription sees only its own run's events and
// the channel closes itself after that run's done event, while events
// for other hashes never leak in.
func TestEngineWatchHashFiltersAndSelfCloses(t *testing.T) {
	eng := testEngine(t, EngineOpts{Workers: 2, SnapshotEvery: 1_000})
	watched := MixRequest(Figure2(1), shortOpts())
	other := MixRequest(Figure2(2), shortOpts())

	events, stop := eng.WatchHash(watched.Hash(), 256)
	defer stop()

	// Run the other request first so its events are in the stream before
	// the watched run's; none of them may come through.
	if _, err := eng.Run(context.Background(), other); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), watched); err != nil {
		t.Fatal(err)
	}

	var snapshots, done int
	deadline := time.After(5 * time.Second)
	for {
		select {
		case p, ok := <-events:
			if !ok {
				if done != 1 {
					t.Fatalf("channel closed after %d done events, want 1", done)
				}
				if snapshots == 0 {
					t.Error("no snapshots relayed for the watched run")
				}
				// stop after self-close must be a harmless no-op.
				stop()
				return
			}
			if p.Hash != watched.Hash() {
				t.Errorf("event for foreign hash %q leaked through the filter", p.Hash)
			}
			switch p.Event {
			case ProgressSnapshot:
				snapshots++
			case ProgressDone:
				done++
				if p.Error != "" || p.Err != nil {
					t.Errorf("successful run's done event carries error %q", p.Error)
				}
			}
		case <-deadline:
			t.Fatal("WatchHash channel never closed after the watched run finished")
		}
	}
}

// TestEngineWatchHashCacheHit: watching an already-cached hash yields a
// single cached done event as soon as any Run for it completes.
func TestEngineWatchHashCacheHit(t *testing.T) {
	eng := testEngine(t, EngineOpts{Workers: 1})
	req := MixRequest(Figure2(1), shortOpts())
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	events, stop := eng.WatchHash(req.Hash(), 16)
	defer stop()
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-events:
		if p.Event != ProgressDone || !p.Cached {
			t.Errorf("got %+v, want a cached done event", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event for the cache hit")
	}
	if _, ok := <-events; ok {
		t.Error("channel not closed after the done event")
	}
}

func TestEngineCustomWorkloadsAreCacheable(t *testing.T) {
	eng := testEngine(t, EngineOpts{Workers: 1})
	b, err := BenchmarkByName("mgrid")
	if err != nil {
		t.Fatal(err)
	}
	b.Name = "mgrid-variant"
	b.Kernels[0].FPChains = 2
	req := CustomRequest(b, Figure2(1), shortOpts())

	direct, err := RunCustom(b, Figure2(1), shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	viaEngine, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := mustJSON(t, direct), mustJSON(t, viaEngine); a != b {
		t.Error("custom workload: engine report differs from direct run")
	}
	// Same custom spec → cache hit; different spec → different hash.
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Simulated != 1 || s.CacheHits != 1 {
		t.Errorf("custom workload not deduplicated: %+v", s)
	}
	other := req
	vb := *req.Workload.Custom
	vb.Kernels = append([]Kernel(nil), vb.Kernels...) // don't alias req's model
	vb.Kernels[0].FPChains = 3
	other.Workload.Custom = &vb
	if other.Hash() == req.Hash() {
		t.Error("custom model change did not change the request hash")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
