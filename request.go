package daesim

import (
	"fmt"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/traceio"
	"repro/internal/workload"
)

// WorkloadKind selects how a Request's instruction streams are built.
type WorkloadKind string

// Workload kinds.
const (
	// WorkloadMix is the paper's Section-3 workload: every context runs a
	// rotated concatenation of all ten benchmarks.
	WorkloadMix WorkloadKind = "mix"
	// WorkloadBench runs one named built-in benchmark on every context,
	// each copy with a private address space and a perturbed seed.
	WorkloadBench WorkloadKind = "bench"
	// WorkloadCustom runs a caller-defined Benchmark model the same way.
	WorkloadCustom WorkloadKind = "custom"
	// WorkloadTrace replays an ingested trace file: a container exported
	// by `dae-trace export` (or an imported external trace) feeds one
	// stream per context, streams replicating modulo the context count
	// with per-context address relocation when the shapes differ.
	WorkloadTrace WorkloadKind = "trace"
)

// TraceRef locates the trace file of a WorkloadTrace request. The
// reference is what hashes: the hash names the result of replaying
// whatever the path holds, so replacing file content behind an unchanged
// path reuses the stale cache entry.
type TraceRef struct {
	// Path is the trace file location.
	Path string `json:"path"`
	// Format names the on-disk format ("container", "legacy", "bin",
	// "text"); empty — the canonical spelling of "auto" — sniffs the
	// magic bytes.
	Format string `json:"format,omitempty"`
}

// Workload is the serializable description of a Request's instruction
// streams. An empty Kind normalizes to WorkloadMix.
type Workload struct {
	Kind WorkloadKind `json:"kind"`
	// Bench names the built-in benchmark for WorkloadBench.
	Bench string `json:"bench,omitempty"`
	// Custom is the benchmark model for WorkloadCustom.
	Custom *Benchmark `json:"custom,omitempty"`
	// Trace locates the trace file for WorkloadTrace (nil otherwise; the
	// omitempty keeps every generator-workload request hash pinned).
	Trace *TraceRef `json:"trace,omitempty"`
	// SegmentLen overrides the mix rotation length for WorkloadMix
	// (0 = the default).
	SegmentLen int64 `json:"segmentLen,omitempty"`
	// Seed perturbs the workload's data-dependent randomness; runs with
	// the same Request (seed included) are bit-identical.
	Seed uint64 `json:"seed,omitempty"`
}

// Execution modes a Request can ask for (Budget.Mode).
const (
	// ModeExact is full detailed simulation (the default; an empty mode
	// normalizes to it, and "exact" spelled out hashes identically).
	ModeExact = "exact"
	// ModeAdaptive is detailed simulation with the per-window
	// fast-forward/stepping controller — bit-identical results, usually
	// faster wall-clock.
	ModeAdaptive = "adaptive"
	// ModeSampled is SMARTS-style systematic sampling: an IPC *estimate*
	// with a 95% confidence interval in Report.Sampled, at a fraction of
	// the detailed cost.
	ModeSampled = "sampled"
)

// Sampling parameterizes ModeSampled. Zero fields normalize to the
// simulator's documented defaults, spelled out — so a request relying on
// defaults hashes identically to one writing them explicitly, and a
// cached sampled result always records the exact schedule it ran.
type Sampling struct {
	// PeriodInsts is the sampling period in instructions.
	PeriodInsts int64 `json:"periodInsts,omitempty"`
	// UnitInsts is the measured unit length.
	UnitInsts int64 `json:"unitInsts,omitempty"`
	// WarmupInsts is the detailed warm-up before each unit.
	WarmupInsts int64 `json:"warmupInsts,omitempty"`
}

// Budget is a Request's instruction budget in machine-wide totals.
type Budget struct {
	// WarmupInsts graduates before statistics reset (0 = DefaultWarmup).
	WarmupInsts int64 `json:"warmupInsts"`
	// MeasureInsts is the measurement window (0 = DefaultMeasure). In
	// sampled mode it is the total instruction budget the sampling
	// schedule covers.
	MeasureInsts int64 `json:"measureInsts"`
	// MaxCycles caps the run as a deadlock guard (0 = a large default).
	MaxCycles int64 `json:"maxCycles,omitempty"`
	// Mode selects the execution mode: ModeExact (default), ModeAdaptive
	// or ModeSampled. Omitted — and normalized away for "exact" — so
	// every pre-mode Request hashes exactly as it always did.
	Mode string `json:"mode,omitempty"`
	// Sampling parameterizes ModeSampled; it must be nil otherwise.
	Sampling *Sampling `json:"sampling,omitempty"`
}

// Request is the canonical, JSON-serializable description of one
// simulation: a machine configuration, a workload, and an instruction
// budget. Everything a run's result depends on is in these fields —
// which is what makes Requests content-addressable (Hash) and their
// results cacheable and shareable between clients. Label is the one
// exception: a human-readable name used in errors, progress events and
// cache-entry metadata, deliberately excluded from the hash.
type Request struct {
	Label    string   `json:"label,omitempty"`
	Machine  Machine  `json:"machine"`
	Workload Workload `json:"workload"`
	Budget   Budget   `json:"budget"`
}

// MixRequest describes the paper's Section-3 mixed workload on machine m.
func MixRequest(m Machine, opts RunOpts) Request {
	return Request{
		Machine:  m,
		Workload: Workload{Kind: WorkloadMix, Seed: opts.Seed, SegmentLen: opts.SegmentLen},
		Budget:   budgetFrom(opts),
	}.Normalized()
}

// BenchmarkRequest describes one built-in benchmark on machine m.
func BenchmarkRequest(name string, m Machine, opts RunOpts) Request {
	return Request{
		Machine:  m,
		Workload: Workload{Kind: WorkloadBench, Bench: name, Seed: opts.Seed},
		Budget:   budgetFrom(opts),
	}.Normalized()
}

// CustomRequest describes a caller-defined benchmark model on machine m.
func CustomRequest(b Benchmark, m Machine, opts RunOpts) Request {
	return Request{
		Machine:  m,
		Workload: Workload{Kind: WorkloadCustom, Custom: &b, Seed: opts.Seed},
		Budget:   budgetFrom(opts),
	}.Normalized()
}

// TraceRequest describes the replay of a trace file on machine m. An
// empty format sniffs the file's magic bytes.
func TraceRequest(path, format string, m Machine, opts RunOpts) Request {
	return Request{
		Machine:  m,
		Workload: Workload{Kind: WorkloadTrace, Trace: &TraceRef{Path: path, Format: format}},
		Budget:   budgetFrom(opts),
	}.Normalized()
}

func budgetFrom(opts RunOpts) Budget {
	return Budget{
		WarmupInsts:  opts.WarmupInsts,
		MeasureInsts: opts.MeasureInsts,
		MaxCycles:    opts.MaxCycles,
	}
}

// Normalized returns the Request with defaults resolved: an empty
// workload kind becomes WorkloadMix and zero budgets become the
// documented defaults. Hash and the Engine normalize implicitly, so a
// Request relying on defaults and one spelling them out name the same
// result; negative fields are never "fixed" here — Validate rejects
// them.
func (r Request) Normalized() Request {
	if r.Workload.Kind == "" {
		r.Workload.Kind = WorkloadMix
	}
	if r.Budget.WarmupInsts == 0 {
		r.Budget.WarmupInsts = DefaultWarmup
	}
	if r.Budget.MeasureInsts == 0 {
		r.Budget.MeasureInsts = DefaultMeasure
	}
	// Mode canonicalization: exact is the zero value ("exact" spelled out
	// folds to it, pinning pre-mode request hashes), and sampled requests
	// get their schedule spelled out in full so their hashes never depend
	// on which simulator version's defaults were compiled in.
	if r.Budget.Mode == ModeExact {
		r.Budget.Mode = ""
	}
	if r.Budget.Mode == ModeSampled {
		s := sim.Sampling{}
		if r.Budget.Sampling != nil {
			s = sim.Sampling{
				PeriodInsts: r.Budget.Sampling.PeriodInsts,
				UnitInsts:   r.Budget.Sampling.UnitInsts,
				WarmupInsts: r.Budget.Sampling.WarmupInsts,
			}
		}
		s = s.WithDefaults()
		r.Budget.Sampling = &Sampling{
			PeriodInsts: s.PeriodInsts,
			UnitInsts:   s.UnitInsts,
			WarmupInsts: s.WarmupInsts,
		}
	}
	// Memory-hierarchy canonicalization: an empty-but-non-nil Hierarchy
	// (a JSON "Hierarchy":[] round-trip) is the default flat model, and
	// under a real hierarchy the flat L2 latency is meaningless — zero
	// it so a Figure2-derived machine with levels attached by hand
	// hashes identically to one built with Machine.WithHierarchy.
	if len(r.Machine.Mem.Hierarchy) == 0 {
		r.Machine.Mem.Hierarchy = nil
	} else {
		r.Machine.Mem.L2Latency = 0
	}
	// Cores canonicalization: one core IS the single-core machine, so an
	// explicit Cores=1 hashes (and caches) identically to the default 0.
	if r.Machine.Cores == 1 {
		r.Machine.Cores = 0
	}
	// Speculation canonicalization: the all-zero block is "off" and folds
	// to the canonical nil, and an active block's zero squash penalty is
	// spelled out (DefaultSquashCycles) so a request relying on the
	// default hashes identically to one writing it. The input's block is
	// never mutated — requests are values.
	if s := r.Machine.Spec; s != nil {
		switch {
		case *s == (config.Speculation{}):
			r.Machine.Spec = nil
		case s.SpecLoadFrac > 0 && s.SquashCycles == 0:
			cp := *s
			cp.SquashCycles = config.DefaultSquashCycles
			r.Machine.Spec = &cp
		}
	}
	// Trace canonicalization: "auto" spelled out folds to the empty
	// string, and the path is lexically cleaned, so trivially different
	// spellings of the same reference share one hash (and cache entry).
	if t := r.Workload.Trace; t != nil {
		cp := *t
		if cp.Format == string(traceio.FormatAuto) {
			cp.Format = ""
		}
		if cp.Path != "" { // Clean("") is "."; keep "" so Validate rejects it
			cp.Path = filepath.Clean(cp.Path)
		}
		if cp != *t {
			r.Workload.Trace = &cp
		}
	}
	return r
}

// Validate checks the Request up front, before any simulation state is
// built. Every failure wraps one of the package's typed sentinels:
// ErrInvalidRequest (malformed budgets or workload), ErrUnknownBenchmark
// (bad benchmark name), or ErrInvalidConfig (bad Machine).
func (r Request) Validate() error {
	n := r.Normalized()
	invalid := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidRequest, fmt.Sprintf(format, args...))
	}
	switch {
	case n.Budget.WarmupInsts < 0:
		return invalid("negative warm-up budget %d", n.Budget.WarmupInsts)
	case n.Budget.MeasureInsts < 0:
		return invalid("negative measurement budget %d", n.Budget.MeasureInsts)
	case n.Budget.MaxCycles < 0:
		return invalid("negative cycle cap %d", n.Budget.MaxCycles)
	case n.Workload.SegmentLen < 0:
		return invalid("negative mix segment length %d", n.Workload.SegmentLen)
	}
	// Execution mode. Normalization already folded "exact" to "" and
	// spelled out sampled schedules, so only the canonical forms remain.
	switch n.Budget.Mode {
	case "", ModeAdaptive:
		if n.Budget.Sampling != nil {
			return invalid("sampling parameters require sampled mode")
		}
	case ModeSampled:
		s := n.Budget.Sampling
		switch {
		case s.PeriodInsts <= 0 || s.UnitInsts <= 0 || s.WarmupInsts < 0:
			return invalid("non-positive sampling parameters (period=%d unit=%d warmup=%d)",
				s.PeriodInsts, s.UnitInsts, s.WarmupInsts)
		case s.UnitInsts+s.WarmupInsts > s.PeriodInsts:
			return invalid("sampling unit+warmup (%d+%d) exceed the period (%d)",
				s.UnitInsts, s.WarmupInsts, s.PeriodInsts)
		}
	default:
		return invalid("unknown execution mode %q", n.Budget.Mode)
	}
	// Stray cross-field content is rejected rather than ignored: every
	// field is part of the content hash, so a bench request carrying a
	// leftover SegmentLen (say) would hash — and cache — apart from the
	// canonical spelling of the same run.
	if n.Workload.Kind != WorkloadTrace && n.Workload.Trace != nil {
		return invalid("trace reference applies only to trace workloads")
	}
	switch n.Workload.Kind {
	case WorkloadMix:
		if n.Workload.Bench != "" || n.Workload.Custom != nil {
			return invalid("mix workload must not name a benchmark")
		}
	case WorkloadBench:
		if n.Workload.Custom != nil {
			return invalid("bench workload must not carry a custom model")
		}
		if n.Workload.SegmentLen != 0 {
			return invalid("segment length applies only to mix workloads")
		}
		if _, err := workload.ByName(n.Workload.Bench); err != nil {
			return fmt.Errorf("daesim: %w", err)
		}
	case WorkloadCustom:
		if n.Workload.Bench != "" {
			return invalid("custom workload must not also name a built-in benchmark")
		}
		if n.Workload.SegmentLen != 0 {
			return invalid("segment length applies only to mix workloads")
		}
		if n.Workload.Custom == nil {
			return invalid("custom workload without a benchmark model")
		}
		if err := n.Workload.Custom.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrInvalidRequest, err)
		}
	case WorkloadTrace:
		if n.Workload.Bench != "" || n.Workload.Custom != nil {
			return invalid("trace workload must not also name a benchmark")
		}
		if n.Workload.SegmentLen != 0 {
			return invalid("segment length applies only to mix workloads")
		}
		if n.Workload.Seed != 0 {
			// A replay has no data-dependent randomness to perturb; the
			// stray seed would hash the same run apart.
			return invalid("seed applies only to generator workloads")
		}
		if n.Workload.Trace == nil || n.Workload.Trace.Path == "" {
			return invalid("trace workload without a trace path")
		}
		if _, err := traceio.ParseFormat(n.Workload.Trace.Format); err != nil {
			return fmt.Errorf("%w: %w", ErrInvalidRequest, err)
		}
	default:
		return invalid("unknown workload kind %q", n.Workload.Kind)
	}
	if err := n.Machine.Validate(); err != nil {
		return fmt.Errorf("daesim: %w", err)
	}
	return nil
}

// Hash returns the Request's canonical content hash: a hex SHA-256 of
// the normalized (machine, workload, budget) triple plus the result
// cache's schema version. The hash identifies the run's *result* —
// Label is excluded, and it is the same hash the sweep runner's on-disk
// cache files are named by, so a Request can address results computed by
// dae-sweep and vice versa.
func (r Request) Hash() string {
	return r.Normalized().job().Hash()
}

// job bridges the public Request to the runner's job description. The
// mapping is 1:1 by construction, which is what keeps Request.Hash equal
// to the runner's job hash (asserted by tests).
func (r Request) job() runner.Job {
	return runner.Job{
		Key:     r.label(),
		Machine: r.Machine,
		Workload: runner.Workload{
			Kind:       runner.WorkloadKind(r.Workload.Kind),
			Bench:      r.Workload.Bench,
			Custom:     r.Workload.Custom,
			Trace:      r.Workload.Trace.toRunner(),
			SegmentLen: r.Workload.SegmentLen,
			Seed:       r.Workload.Seed,
		},
		Budget: runner.Budget{
			WarmupInsts:  r.Budget.WarmupInsts,
			MeasureInsts: r.Budget.MeasureInsts,
			MaxCycles:    r.Budget.MaxCycles,
			Mode:         sim.Mode(r.Budget.Mode),
			Sampling:     r.Budget.Sampling.toSim(),
		},
	}
}

// toRunner converts the serializable trace reference to the runner's.
func (t *TraceRef) toRunner() *runner.TraceRef {
	if t == nil {
		return nil
	}
	return &runner.TraceRef{Path: t.Path, Format: t.Format}
}

// toSim converts the serializable sampling schedule to the simulator's.
func (s *Sampling) toSim() *sim.Sampling {
	if s == nil {
		return nil
	}
	return &sim.Sampling{
		PeriodInsts: s.PeriodInsts,
		UnitInsts:   s.UnitInsts,
		WarmupInsts: s.WarmupInsts,
	}
}

// label returns the request's display name, deriving one from the
// configuration when no Label was set.
func (r Request) label() string {
	if r.Label != "" {
		return r.Label
	}
	what := "mix"
	switch r.Workload.Kind {
	case WorkloadBench:
		what = r.Workload.Bench
	case WorkloadCustom:
		what = "custom"
		if r.Workload.Custom != nil && r.Workload.Custom.Name != "" {
			what = r.Workload.Custom.Name
		}
	case WorkloadTrace:
		what = "trace"
		if r.Workload.Trace != nil {
			what = "trace:" + filepath.Base(r.Workload.Trace.Path)
		}
	}
	cores := ""
	if r.Machine.CoreCount() > 1 {
		cores = fmt.Sprintf("cores=%d ", r.Machine.CoreCount())
	}
	if h := r.Machine.Mem.Hierarchy; len(h) > 0 {
		return fmt.Sprintf("%s %sthreads=%d l2size=%d", what, cores, r.Machine.Threads, h[0].Cache.SizeBytes)
	}
	return fmt.Sprintf("%s %sthreads=%d L2=%d", what, cores, r.Machine.Threads, r.Machine.Mem.L2Latency)
}
