package daesim_test

import (
	"context"
	"fmt"

	daesim "repro"
)

// The godoc examples run as part of the test suite; they use fixed seeds
// and small budgets so their output is stable and fast.

// Running the paper's machine on the multiprogrammed benchmark mix
// through the Engine — the canonical entry point.
func Example() {
	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		panic(err)
	}
	m := daesim.Figure2(3) // Figure-2 machine, 3 hardware contexts
	rep, err := eng.Run(context.Background(), daesim.MixRequest(m, daesim.RunOpts{
		WarmupInsts:  100_000,
		MeasureInsts: 600_000,
	}))
	if err != nil {
		panic(err)
	}
	fmt.Printf("threads=%d decoupled=%v\n", rep.Threads, rep.Decoupled)
	fmt.Printf("IPC above 5: %v\n", rep.IPC() > 5)
	fmt.Printf("perceived miss latency under 5 cycles: %v\n", rep.Perceived().Mean() < 5)
	// Output:
	// threads=3 decoupled=true
	// IPC above 5: true
	// perceived miss latency under 5 cycles: true
}

// Comparing the decoupled machine against the paper's non-decoupled
// baseline at a high memory latency, as one batch.
func Example_nonDecoupled() {
	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		panic(err)
	}
	m := daesim.Figure2(2).WithL2Latency(64)
	opts := daesim.RunOpts{WarmupInsts: 50_000, MeasureInsts: 300_000}
	results, err := eng.RunBatch(context.Background(), []daesim.Request{
		daesim.MixRequest(m, opts),
		daesim.MixRequest(m.NonDecoupled(), opts),
	})
	if err != nil {
		panic(err)
	}
	dec, non := results[0].Report, results[1].Report
	fmt.Printf("decoupling wins: %v\n", dec.IPC() > non.IPC()*1.5)
	// Output:
	// decoupling wins: true
}

// Requests are serializable and content-addressed: the hash names the
// result in the Engine cache, on disk, and over dae-serve's HTTP API.
func ExampleRequest_Hash() {
	req := daesim.MixRequest(daesim.Figure2(2), daesim.RunOpts{Seed: 42})
	relabelled := req
	relabelled.Label = "tuesday night batch"
	fmt.Printf("hash length: %d\n", len(req.Hash()))
	fmt.Printf("label changes the hash: %v\n", req.Hash() != relabelled.Hash())
	// Output:
	// hash length: 64
	// label changes the hash: false
}

// Running a single benchmark on the paper's Section-2 machine.
func ExampleBenchmarkRequest() {
	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		panic(err)
	}
	m := daesim.Section2().WithL2Latency(256)
	rep, err := eng.Run(context.Background(), daesim.BenchmarkRequest("tomcatv", m, daesim.RunOpts{
		WarmupInsts:  50_000,
		MeasureInsts: 200_000,
	}))
	if err != nil {
		panic(err)
	}
	// tomcatv decouples almost perfectly: even at a 256-cycle L2 the
	// perceived FP miss latency is near zero (paper Figure 1-a).
	fmt.Printf("fp misses sampled: %v\n", rep.PerceivedFP.Count > 0)
	fmt.Printf("fp latency hidden: %v\n", rep.PerceivedFP.Mean() < 2)
	// Output:
	// fp misses sampled: true
	// fp latency hidden: true
}

// Defining a custom workload model. The full model is part of the
// Request hash, so custom results cache like the built-ins.
func ExampleCustomRequest() {
	b := daesim.Benchmark{
		Name: "saxpy",
		Seed: 7,
		Streams: []daesim.StreamSpec{
			{Name: "x", SizeBytes: 1 << 20, StrideBytes: 8},
			{Name: "y", SizeBytes: 1 << 20, StrideBytes: 8},
		},
		Kernels: []daesim.Kernel{{
			Name: "axpy", Weight: 100, InnerTrip: 64,
			FPLoads: []int{0, 1}, Stores: []int{1},
			FPOps: 2, FPChains: 2, IntOps: 1,
		}},
	}
	eng, err := daesim.NewEngine(daesim.EngineOpts{})
	if err != nil {
		panic(err)
	}
	rep, err := eng.Run(context.Background(), daesim.CustomRequest(b, daesim.Figure2(1), daesim.RunOpts{
		WarmupInsts:  20_000,
		MeasureInsts: 100_000,
	}))
	if err != nil {
		panic(err)
	}
	fmt.Printf("ran %v instructions: %v\n", rep.Graduated >= 100_000, err == nil)
	// Output:
	// ran true instructions: true
}

// Inspecting the machine configuration presets.
func ExampleFigure2() {
	m := daesim.Figure2(4)
	fmt.Printf("issue width %d+%d, IQ %d, SAQ %d, regs %d+%d\n",
		m.APWidth, m.EPWidth, m.IQSize, m.SAQSize, m.APRegs, m.EPRegs)
	// Output:
	// issue width 4+4, IQ 48, SAQ 32, regs 64+96
}
