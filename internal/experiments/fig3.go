package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Fig3Result reproduces the paper's Figure 3: the issue-slot breakdown of
// the multithreaded decoupled machine (Figure-2 parameters, L2 = 16) as
// hardware contexts are added, on the per-thread benchmark mixes.
type Fig3Result struct {
	// Threads is the context-count axis (the paper plots 1–6).
	Threads []int
	// IPC[t] is the machine throughput with Threads[t] contexts.
	IPC []float64
	// Slots[t][unit] is the per-unit slot accounting.
	Slots [][isa.NumUnits]stats.UnitSlots
}

// Fig3Threads is the paper's x-axis.
var Fig3Threads = []int{1, 2, 3, 4, 5, 6}

// Fig3 runs the issue-slot breakdown sweep.
func Fig3(b Budget) (*Fig3Result, error) {
	r := &Fig3Result{
		Threads: Fig3Threads,
		IPC:     make([]float64, len(Fig3Threads)),
		Slots:   make([][isa.NumUnits]stats.UnitSlots, len(Fig3Threads)),
	}
	jobs := make([]runner.Job, len(Fig3Threads))
	for i, t := range Fig3Threads {
		jobs[i] = b.mixJob(fmt.Sprintf("fig3 threads=%d", t), config.Figure2(t))
	}
	reps, err := b.sweep(jobs)
	if err != nil {
		return nil, err
	}
	for i, rep := range reps {
		r.IPC[i] = rep.IPC()
		r.Slots[i] = rep.Slots
	}
	return r, nil
}

// Table renders the breakdown in the paper's five activity categories for
// both units, one row per thread count.
func (r *Fig3Result) Table() string {
	header := []string{"threads", "IPC",
		"AP useful", "AP mem", "AP fu", "AP other", "AP idle",
		"EP useful", "EP mem", "EP fu", "EP other", "EP idle"}
	rows := make([][]string, len(r.Threads))
	for i, t := range r.Threads {
		row := []string{fmt.Sprintf("%d", t), f2(r.IPC[i])}
		for u := 0; u < isa.NumUnits; u++ {
			s := r.Slots[i][u]
			row = append(row,
				pct(s.UsefulFrac()),
				pct(s.WastedFrac(stats.WasteMem)),
				pct(s.WastedFrac(stats.WasteFU)),
				pct(s.WastedFrac(stats.WasteOther)),
				pct(s.WastedFrac(stats.WasteIdle)))
		}
		rows[i] = row
	}
	return formatTable("Figure 3: issue-slot breakdown vs hardware contexts (L2=16, decoupled)", header, rows)
}

// Speedup returns IPC(threads)/IPC(1) for the paper's headline numbers.
func (r *Fig3Result) Speedup(threads int) float64 {
	var base, at float64
	for i, t := range r.Threads {
		if t == 1 {
			base = r.IPC[i]
		}
		if t == threads {
			at = r.IPC[i]
		}
	}
	if base == 0 {
		return 0
	}
	return at / base
}
