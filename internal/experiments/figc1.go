package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/stats"
)

// This file implements the CMP scaling study (figure C1), the first
// experiment over the multi-core composition: Figure-2 cores — each with
// its own SMT contexts, decoupled queues and private L1 — sharing a
// finite L2 over DRAM. Three questions, three sections of one sweep:
//
//   - scaling: aggregate throughput vs cores × contexts-per-core at a
//     fixed shared L2 — does the machine scale, and where does the
//     shared level saturate?
//   - private vs shared L2: the same multi-core points with the L2
//     replicated per core (config.Machine.WithPrivateHierarchy) — how
//     much of the loss is contention rather than capacity?
//   - interference: cores × L2 capacity at one context per core,
//     extending the I1 study across cores (Desai 2023's two-program
//     shared-cache coupling, here with whole decoupled cores).
//
// Every context runs its own benchmark-mix copy in a private address
// space, so cores couple only through shared-level capacity, MSHRs and
// bus bandwidth — write-invalidate coherence traffic stays zero by
// construction, which the C1 test pins (cross-core sharing is exercised
// by the mem package's coherence tests instead).

// C1Cores is the core-count axis.
var C1Cores = []int{1, 2, 4}

// C1Contexts is the contexts-per-core axis of the scaling section.
var C1Contexts = []int{1, 2}

// C1SharedL2Size is the fixed shared-L2 capacity of the scaling and
// private-vs-shared sections.
const C1SharedL2Size = 256 << 10

// C1InterferenceSizes is the L2-capacity axis of the interference
// section (C1SharedL2Size points come from the scaling section).
var C1InterferenceSizes = []int{64 << 10, 1 << 20}

// c1Machine builds a C1 point: Figure-2 with the given contexts per
// core, cores sharing (or, with private set, replicating) an 8-way L2 of
// the given capacity over DRAM.
func c1Machine(cores, contexts, l2Size int, private bool) config.Machine {
	m := config.Figure2(contexts).WithCores(cores).
		WithHierarchy(InterferenceDRAMLatency, config.SharedL2(l2Size, 8))
	if private {
		m = m.WithPrivateHierarchy()
	}
	return m
}

// C1Point is one measured configuration of the study.
type C1Point struct {
	// Cores and Contexts (per core) identify the machine shape.
	Cores, Contexts int
	// L2Size is the L2 capacity in bytes (per core when Private).
	L2Size int
	// Private marks the replicated-L2 machines.
	Private bool

	// IPC is aggregate machine throughput.
	IPC float64
	// L2Miss is the L2 miss ratio (misses per accepted access, summed
	// over the per-core L2s when Private).
	L2Miss float64
	// MemBus is the L2↔memory bus utilization (mean over per-core L2s
	// when Private).
	MemBus float64
	// Invalidations sums write-invalidate coherence events across all
	// levels (zero for this workload: private address spaces).
	Invalidations int64
}

// C1Result is the study's point list, scaling section first, then
// private-vs-shared, then interference (fixed deterministic order).
type C1Result struct {
	Cores    []int
	Contexts []int
	Sizes    []int
	Points   []C1Point
}

// C1 runs the canonical study.
func C1(b Budget) (*C1Result, error) {
	return C1Grid(b, C1Cores, C1Contexts, C1InterferenceSizes)
}

// C1Grid runs the study over caller-chosen axes (tests trim them; the
// canonical axes make the committed figure).
func C1Grid(b Budget, cores, contexts []int, sizes []int) (*C1Result, error) {
	r := &C1Result{Cores: cores, Contexts: contexts, Sizes: sizes}
	var jobs []runner.Job
	add := func(p C1Point) {
		r.Points = append(r.Points, p)
		kind := "shared"
		if p.Private {
			kind = "private"
		}
		jobs = append(jobs, b.mixJob(
			fmt.Sprintf("c1 cores=%d ctx=%d L2=%dKB %s", p.Cores, p.Contexts, p.L2Size>>10, kind),
			c1Machine(p.Cores, p.Contexts, p.L2Size, p.Private)))
	}
	// Scaling: cores × contexts at the fixed shared L2.
	for _, c := range cores {
		for _, t := range contexts {
			add(C1Point{Cores: c, Contexts: t, L2Size: C1SharedL2Size})
		}
	}
	// Private-vs-shared: multi-core points at one context per core (the
	// shared counterparts are the scaling rows above).
	for _, c := range cores {
		if c > 1 && len(contexts) > 0 {
			add(C1Point{Cores: c, Contexts: contexts[0], L2Size: C1SharedL2Size, Private: true})
		}
	}
	// Interference: cores × capacity at one context per core.
	for _, size := range sizes {
		for _, c := range cores {
			if len(contexts) > 0 {
				add(C1Point{Cores: c, Contexts: contexts[0], L2Size: size})
			}
		}
	}
	reps, err := b.sweep(jobs)
	if err != nil {
		return nil, err
	}
	for i := range r.Points {
		r.Points[i].fill(reps[i])
	}
	return r, nil
}

// fill extracts the point's metrics from its report. The L2 rows of
// Report.MemLevels are every level that is not a per-core L1: the one
// shared "L2" entry, or the "c<i>.L2" entries of a private-hierarchy
// machine (summed counters, bus utilization averaged).
func (p *C1Point) fill(rep stats.Report) {
	p.IPC = rep.IPC()
	var accesses, misses int64
	var bus float64
	l2s := 0
	for _, lv := range rep.MemLevels {
		p.Invalidations += lv.Invalidations
		if strings.HasSuffix(lv.Name, ".L1") {
			continue
		}
		accesses += lv.Accesses
		misses += lv.Misses
		bus += lv.BusUtilization
		l2s++
	}
	if accesses > 0 {
		p.L2Miss = float64(misses) / float64(accesses)
	}
	if l2s > 0 {
		p.MemBus = bus / float64(l2s)
	}
}

// Lookup returns the first point matching the machine shape (nil when
// the grid did not include it).
func (r *C1Result) Lookup(cores, contexts, l2Size int, private bool) *C1Point {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Cores == cores && p.Contexts == contexts && p.L2Size == l2Size && p.Private == private {
			return p
		}
	}
	return nil
}

// Table renders the three sections.
func (r *C1Result) Table() string {
	var b strings.Builder
	header := []string{"cores", "ctx/core", "L2", "mode", "IPC", "L2 miss", "mem-bus", "invals"}
	var rows [][]string
	for _, p := range r.Points {
		mode := "shared"
		if p.Private {
			mode = "private"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Cores),
			fmt.Sprintf("%d", p.Contexts),
			fmt.Sprintf("%dKB", p.L2Size>>10),
			mode,
			f2(p.IPC),
			pct(p.L2Miss),
			pct(p.MemBus),
			fmt.Sprintf("%d", p.Invalidations),
		})
	}
	b.WriteString(formatTable(
		"Figure C1: CMP scaling — aggregate IPC vs cores × contexts, shared vs private L2, cross-core interference",
		header, rows))
	return b.String()
}
