package experiments

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestFig1CSV(t *testing.T) {
	r, err := Fig1(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	want := 1 + len(r.Benchmarks)*len(r.Latencies)
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	if rows[0][0] != "benchmark" || rows[0][1] != "l2" {
		t.Fatalf("header = %v", rows[0])
	}
	// Every row has the full column count (csv.Reader enforces
	// rectangularity, but check the benchmark column is populated).
	for _, row := range rows[1:] {
		if row[0] == "" {
			t.Fatal("empty benchmark cell")
		}
	}
}

func TestFig3CSV(t *testing.T) {
	r, err := Fig3(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	if len(rows) != 1+len(r.Threads)*2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Fractions per unit must sum to ~1 (the accounting identity).
	for _, row := range rows[1:] {
		sum := 0.0
		for _, cell := range row[3:] {
			v := parseF(t, cell)
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("slot fractions sum to %v in %v", sum, row)
		}
	}
}

func TestFig4And5CSV(t *testing.T) {
	r4, err := Fig4(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r4.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	if len(rows) != 1+len(r4.Configs)*len(r4.Latencies) {
		t.Fatalf("fig4: %d rows", len(rows))
	}

	r5, err := Fig5(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := r5.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, b.String())
	want := 1 + 2*len(r5.ThreadsShort) + 2*len(r5.ThreadsLong)
	if len(rows) != want {
		t.Fatalf("fig5: %d rows, want %d", len(rows), want)
	}
	// L2=16 rows have empty bus cells; L2=64 rows are populated.
	for _, row := range rows[1:] {
		if row[0] == "16" && row[4] != "" {
			t.Fatal("L2=16 row has bus utilization")
		}
		if row[0] == "64" && row[4] == "" {
			t.Fatal("L2=64 row missing bus utilization")
		}
	}
}

func TestAblationCSV(t *testing.T) {
	r, err := AblationFetchPolicy(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	if len(rows) != 1+len(r.Rows) {
		t.Fatalf("%d rows", len(rows))
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func TestInterferenceCSV(t *testing.T) {
	r, err := InterferenceGrid(testBudget(), []int{64 << 10, 1 << 20}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	if len(rows) != 1+len(r.Sizes)*len(r.Threads) {
		t.Fatalf("%d rows, want header + %d points", len(rows), len(r.Sizes)*len(r.Threads))
	}
	for _, row := range rows[1:] {
		if miss := parseF(t, row[3]); miss < 0 || miss > 1 {
			t.Fatalf("miss ratio %s out of range", row[3])
		}
	}
}
