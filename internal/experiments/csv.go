package experiments

// CSV export of the figure grids, for plotting pipelines. Every method
// writes RFC-4180 rows with a header line; numeric cells use enough
// precision to round-trip the measurements.

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/stats"
)

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fs(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteCSV emits the Figure-1 grids in long form:
// benchmark,l2,perceived_fp,perceived_int,ipc,ipc_loss,load_miss,store_miss
// (miss ratios repeat their L2=256 value on every row of a benchmark).
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	header := []string{"benchmark", "l2", "perceived_fp", "perceived_int", "ipc", "ipc_loss", "load_miss", "store_miss"}
	var rows [][]string
	for bi, name := range r.Benchmarks {
		for li, lat := range r.Latencies {
			rows = append(rows, []string{
				name,
				strconv.FormatInt(lat, 10),
				fs(r.PerceivedFP[bi][li]),
				fs(r.PerceivedInt[bi][li]),
				fs(r.IPC[bi][li]),
				fs(r.IPCLoss[bi][li]),
				fs(r.LoadMiss[bi]),
				fs(r.StoreMiss[bi]),
			})
		}
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the Figure-3 breakdown in long form:
// threads,ipc,unit,useful,wait_mem,wait_fu,other,idle
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	header := []string{"threads", "ipc", "unit", "useful", "wait_mem", "wait_fu", "other", "idle"}
	var rows [][]string
	units := []string{"AP", "EP"}
	for i, t := range r.Threads {
		for u, name := range units {
			s := r.Slots[i][u]
			rows = append(rows, []string{
				strconv.Itoa(t),
				fs(r.IPC[i]),
				name,
				fs(s.UsefulFrac()),
				fs(s.WastedFrac(stats.WasteMem)),
				fs(s.WastedFrac(stats.WasteFU)),
				fs(s.WastedFrac(stats.WasteOther)),
				fs(s.WastedFrac(stats.WasteIdle)),
			})
		}
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the Figure-4 grids in long form:
// threads,decoupled,l2,perceived,ipc,ipc_loss
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	header := []string{"threads", "decoupled", "l2", "perceived", "ipc", "ipc_loss"}
	var rows [][]string
	for ci, cfg := range r.Configs {
		for li, lat := range r.Latencies {
			rows = append(rows, []string{
				strconv.Itoa(cfg.Threads),
				strconv.FormatBool(cfg.Decoupled),
				strconv.FormatInt(lat, 10),
				fs(r.Perceived[ci][li]),
				fs(r.IPC[ci][li]),
				fs(r.IPCLoss[ci][li]),
			})
		}
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the Figure-5 series in long form:
// l2,decoupled,threads,ipc,bus_util (bus only recorded for the L2=64 runs).
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	header := []string{"l2", "decoupled", "threads", "ipc", "bus_util"}
	var rows [][]string
	add := func(l2 int, dec bool, threads []int, ipc, bus []float64) {
		for i, t := range threads {
			b := ""
			if bus != nil {
				b = fs(bus[i])
			}
			rows = append(rows, []string{
				strconv.Itoa(l2), strconv.FormatBool(dec), strconv.Itoa(t), fs(ipc[i]), b,
			})
		}
	}
	add(16, true, r.ThreadsShort, r.IPC16Dec, nil)
	add(16, false, r.ThreadsShort, r.IPC16Non, nil)
	add(64, true, r.ThreadsLong, r.IPC64Dec, r.Bus64Dec)
	add(64, false, r.ThreadsLong, r.IPC64Non, r.Bus64Non)
	return writeCSV(w, header, rows)
}

// WriteCSV emits an ablation sweep: config,ipc,bus_util,perceived
func (r *AblationResult) WriteCSV(w io.Writer) error {
	header := []string{"config", "ipc", "bus_util", "perceived"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Label, fs(row.IPC), fs(row.BusUtil), fs(row.Perceived)})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the C1 point list in long form:
// cores,contexts,l2_bytes,private,ipc,l2_miss,mem_bus_util,invalidations
func (r *C1Result) WriteCSV(w io.Writer) error {
	header := []string{"cores", "contexts", "l2_bytes", "private", "ipc", "l2_miss", "mem_bus_util", "invalidations"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Cores), strconv.Itoa(p.Contexts), strconv.Itoa(p.L2Size),
			strconv.FormatBool(p.Private),
			fs(p.IPC), fs(p.L2Miss), fs(p.MemBus),
			strconv.FormatInt(p.Invalidations, 10),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the D1 point list in long form:
// threads,spec_frac,lod_every,ipc,spec_loads,squashes,lod_stalls,spec_per_ki,squash_per_ki,lod_stall_frac
func (r *D1Result) WriteCSV(w io.Writer) error {
	header := []string{"threads", "spec_frac", "lod_every", "ipc",
		"spec_loads", "squashes", "lod_stalls", "spec_per_ki", "squash_per_ki", "lod_stall_frac"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Threads), fs(p.SpecFrac), strconv.FormatInt(p.LoDEvery, 10),
			fs(p.IPC),
			strconv.FormatInt(p.SpecLoads, 10),
			strconv.FormatInt(p.Squashes, 10),
			strconv.FormatInt(p.LoDStalls, 10),
			fs(p.SpecLoadsPerKI), fs(p.SquashesPerKI), fs(p.LoDStallFrac),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the S1 study in long form:
// config,threads,l2,exact_ipc,sampled_ipc,ci,units,err_pct,in_ci,exact_ms,sampled_ms,speedup
// (the wall-clock columns are measured per run and are NOT deterministic;
// the determinism gate hashes only the simulation reports).
func (r *S1Result) WriteCSV(w io.Writer) error {
	header := []string{"config", "threads", "l2", "exact_ipc", "sampled_ipc", "ci", "units", "err_pct", "in_ci", "exact_ms", "sampled_ms", "speedup"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Config,
			strconv.Itoa(p.Threads),
			strconv.FormatInt(p.L2, 10),
			fs(p.ExactIPC), fs(p.SampledIPC), fs(p.CI),
			strconv.Itoa(p.Units),
			fs(p.ErrPct),
			strconv.FormatBool(p.InCI),
			fs(p.ExactWall.Seconds() * 1e3), fs(p.SampledWall.Seconds() * 1e3), fs(p.Speedup),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the interference grid in long form:
// l2_bytes,threads,ipc,l2_miss,mem_bus_util
func (r *InterferenceResult) WriteCSV(w io.Writer) error {
	header := []string{"l2_bytes", "threads", "ipc", "l2_miss", "mem_bus_util"}
	var rows [][]string
	for si, size := range r.Sizes {
		for ti, t := range r.Threads {
			rows = append(rows, []string{
				strconv.Itoa(size), strconv.Itoa(t),
				fs(r.IPC[si][ti]), fs(r.L2Miss[si][ti]), fs(r.MemBus[si][ti]),
			})
		}
	}
	return writeCSV(w, header, rows)
}
