package experiments

import (
	"strings"
	"testing"
)

func TestD1Structure(t *testing.T) {
	b := testBudget()
	// Trimmed axes: baseline vs one aggressive speculation point, with
	// and without forced LoD; the canonical grid runs via
	// `dae-sweep -fig d1`.
	threads := []int{1, 2}
	fracs := []float64{0, 0.5}
	lods := []int64{0, 200}
	r, err := D1Grid(b, threads, fracs, lods)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(threads) * len(fracs) * len(lods); len(r.Points) != want {
		t.Fatalf("%d points, want %d", len(r.Points), want)
	}
	for _, p := range r.Points {
		if p.IPC <= 0 {
			t.Errorf("t=%d spec=%.2f lod=%d: non-positive IPC", p.Threads, p.SpecFrac, p.LoDEvery)
		}
		// The counters must fire exactly when their knob is on.
		if (p.SpecFrac > 0) != (p.SpecLoads > 0) {
			t.Errorf("t=%d spec=%.2f: %d speculative loads", p.Threads, p.SpecFrac, p.SpecLoads)
		}
		if p.SpecFrac > 0 && p.Squashes == 0 {
			t.Errorf("t=%d spec=%.2f: speculation without squashes at misspec=%.2f",
				p.Threads, p.SpecFrac, D1MisspecProb)
		}
		if (p.LoDEvery > 0) != (p.LoDStalls > 0) {
			t.Errorf("t=%d lod=%d: %d LoD stalls", p.Threads, p.LoDEvery, p.LoDStalls)
		}
		if p.LoDStallFrac < 0 || p.LoDStallFrac > 1 {
			t.Errorf("t=%d lod=%d: LoD stall fraction %f out of range",
				p.Threads, p.LoDEvery, p.LoDStallFrac)
		}
	}

	if p := r.Lookup(2, 0.5, 200); p == nil {
		t.Error("Lookup missed the aggressive 2-thread point")
	}
	if r.Lookup(4, 0.5, 200) != nil {
		t.Error("Lookup invented a point outside the grid")
	}

	for _, wantStr := range []string{"Figure D1", "spec-frac", "lod-every", "never"} {
		if !strings.Contains(r.Table(), wantStr) {
			t.Errorf("table missing %q", wantStr)
		}
	}

	if quant() {
		// Forced LoD must cost throughput at one thread: every event
		// freezes the only context's fetch until its EPQ drains.
		base := r.Lookup(1, 0, 0)
		lod := r.Lookup(1, 0, 200)
		if lod.IPC >= base.IPC {
			t.Errorf("1-thread LoD IPC %.2f not below baseline %.2f", lod.IPC, base.IPC)
		}
		// LoD erosion must not compound with threads: a stalled context's
		// fetch slots are usable by the others, so the relative loss at 2
		// threads stays in the 1-thread ballpark or below (the canonical
		// 4-thread grid is where the flattening shows; at 2 threads the
		// machine is not yet issue-limited, so losses are about equal).
		base2 := r.Lookup(2, 0, 0)
		lod2 := r.Lookup(2, 0, 200)
		loss1 := (base.IPC - lod.IPC) / base.IPC
		loss2 := (base2.IPC - lod2.IPC) / base2.IPC
		if loss2 > loss1*1.25 {
			t.Errorf("LoD loss compounded with threads: 1t %.3f vs 2t %.3f", loss1, loss2)
		}
	}
}

func TestD1CSV(t *testing.T) {
	r := &D1Result{Points: []D1Point{
		{Threads: 2, SpecFrac: 0.3, LoDEvery: 500, IPC: 3.5,
			SpecLoads: 1200, Squashes: 60, LoDStalls: 900,
			SpecLoadsPerKI: 12, SquashesPerKI: 0.6, LoDStallFrac: 0.05},
	}}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{"threads,spec_frac,lod_every,ipc", "2,0.3,500,3.5,1200,60,900"} {
		if !strings.Contains(got, want) {
			t.Errorf("CSV missing %q in:\n%s", want, got)
		}
	}
}
