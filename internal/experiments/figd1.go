package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/stats"
)

// This file implements the speculative-DAE study (figure D1): how much of
// multithreading's latency tolerance survives when the access slice turns
// speculative. The paper's machine decouples conservatively — loads wait
// for their addresses and control; speculative-DAE proposals (Speculative
// Decoupling, slipstream-style access skipping) hoist a fraction of the
// access slice ahead of resolution, buying prefetch distance at the price
// of squashes, and lose decoupling entirely at hard dependences. The
// study sweeps that trade-off over the paper's context axis:
//
//   - threads × speculation aggressiveness: does SMT's latency hiding
//     subsume the speculative prefetch benefit (the paper's synergy
//     argument), or do the two compose?
//   - loss-of-decoupling rate: periodic forced AP/EP synchronization
//     (the paper's LoD events, here injected at a fixed cadence) — how
//     fast does decoupling's benefit erode per LoD, and does
//     multithreading flatten that erosion too?
//
// Machines are Figure-2 at L2=64 (the mid-latency point where decoupling
// is stressed but not saturated), every context running the benchmark
// mix.

// D1Threads is the context axis.
var D1Threads = []int{1, 2, 4}

// D1SpecFracs is the speculation-aggressiveness axis (fraction of
// access-slice loads hoisted speculatively; 0 is the paper's baseline).
var D1SpecFracs = []float64{0, 0.3, 0.6}

// D1LoDEvery is the loss-of-decoupling axis (forced AP/EP sync every N
// fetched instructions per context; 0 never forces one).
var D1LoDEvery = []int64{0, 500}

// D1MisspecProb is the per-speculative-load misspeculation probability of
// every speculating point (squash penalty: config.DefaultSquashCycles).
const D1MisspecProb = 0.05

// D1L2Latency is the fixed L2 latency of the study.
const D1L2Latency = 64

// d1Machine builds one D1 point's machine.
func d1Machine(threads int, frac float64, lod int64) config.Machine {
	m := config.Figure2(threads).WithL2Latency(D1L2Latency)
	if frac > 0 || lod > 0 {
		s := config.Speculation{SpecLoadFrac: frac, LoDEvery: lod}
		if frac > 0 {
			s.MisspecProb = D1MisspecProb
		}
		m = m.WithSpeculation(s)
	}
	return m
}

// D1Point is one measured configuration of the study.
type D1Point struct {
	// Threads, SpecFrac and LoDEvery identify the configuration.
	Threads  int
	SpecFrac float64
	LoDEvery int64

	// IPC is machine throughput.
	IPC float64
	// SpecLoads, Squashes and LoDStalls are the raw speculation counters
	// of the measurement window.
	SpecLoads, Squashes, LoDStalls int64
	// SpecLoadsPerKI and SquashesPerKI normalize per 1000 graduated
	// instructions.
	SpecLoadsPerKI, SquashesPerKI float64
	// LoDStallFrac is the fraction of context-cycles spent fetch-blocked
	// waiting for the EP queue to drain at an LoD event.
	LoDStallFrac float64
}

// D1Result is the study's point list in sweep order (threads outermost,
// then speculation fraction, then LoD cadence).
type D1Result struct {
	Threads   []int
	SpecFracs []float64
	LoDs      []int64
	Points    []D1Point
}

// D1 runs the canonical study.
func D1(b Budget) (*D1Result, error) {
	return D1Grid(b, D1Threads, D1SpecFracs, D1LoDEvery)
}

// D1Grid runs the study over caller-chosen axes (tests trim them; the
// canonical axes make the committed figure).
func D1Grid(b Budget, threads []int, fracs []float64, lods []int64) (*D1Result, error) {
	r := &D1Result{Threads: threads, SpecFracs: fracs, LoDs: lods}
	var jobs []runner.Job
	for _, t := range threads {
		for _, f := range fracs {
			for _, lod := range lods {
				r.Points = append(r.Points, D1Point{Threads: t, SpecFrac: f, LoDEvery: lod})
				jobs = append(jobs, b.mixJob(
					fmt.Sprintf("d1 t=%d spec=%.2f lod=%d", t, f, lod),
					d1Machine(t, f, lod)))
			}
		}
	}
	reps, err := b.sweep(jobs)
	if err != nil {
		return nil, err
	}
	for i := range r.Points {
		r.Points[i].fill(reps[i])
	}
	return r, nil
}

// fill extracts the point's metrics from its report.
func (p *D1Point) fill(rep stats.Report) {
	p.IPC = rep.IPC()
	p.SpecLoads = rep.SpeculativeLoads
	p.Squashes = rep.Squashes
	p.LoDStalls = rep.LoDStalls
	if rep.Graduated > 0 {
		p.SpecLoadsPerKI = 1000 * float64(rep.SpeculativeLoads) / float64(rep.Graduated)
		p.SquashesPerKI = 1000 * float64(rep.Squashes) / float64(rep.Graduated)
	}
	if rep.Cycles > 0 && p.Threads > 0 {
		p.LoDStallFrac = float64(rep.LoDStalls) / float64(rep.Cycles*int64(p.Threads))
	}
}

// Lookup returns the first point matching the configuration (nil when
// the grid did not include it).
func (r *D1Result) Lookup(threads int, frac float64, lod int64) *D1Point {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Threads == threads && p.SpecFrac == frac && p.LoDEvery == lod {
			return p
		}
	}
	return nil
}

// Table renders the study.
func (r *D1Result) Table() string {
	var b strings.Builder
	header := []string{"threads", "spec-frac", "lod-every", "IPC", "spec/kI", "squash/kI", "lod-stall"}
	var rows [][]string
	for _, p := range r.Points {
		lod := "never"
		if p.LoDEvery > 0 {
			lod = strconv.FormatInt(p.LoDEvery, 10)
		}
		rows = append(rows, []string{
			strconv.Itoa(p.Threads),
			fmt.Sprintf("%.2f", p.SpecFrac),
			lod,
			f2(p.IPC),
			f1(p.SpecLoadsPerKI),
			f2(p.SquashesPerKI),
			pct(p.LoDStallFrac),
		})
	}
	b.WriteString(formatTable(
		"Figure D1: speculative-DAE — IPC vs contexts × speculation aggressiveness × loss-of-decoupling rate (L2=64)",
		header, rows))
	return b.String()
}
