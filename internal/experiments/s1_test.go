package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// testSampling shrinks the sampling period so the quick test budgets
// still yield several measured units per configuration (the committed
// figure uses the defaults over budgets two orders of magnitude larger).
// Like the default period, it is incommensurate with the mix's 40k
// rotation.
var testSampling = sim.Sampling{PeriodInsts: 9_700, UnitInsts: 500, WarmupInsts: 1_000}

func TestS1Structure(t *testing.T) {
	r, err := S1Sampled(testBudget(), testSampling)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(S1Configs) {
		t.Fatalf("%d points, want %d", len(r.Points), len(S1Configs))
	}
	for _, p := range r.Points {
		if p.ExactIPC <= 0 || p.SampledIPC <= 0 {
			t.Errorf("%s: non-positive IPC (exact %.3f, sampled %.3f)", p.Config, p.ExactIPC, p.SampledIPC)
		}
		if p.CI < 0 {
			t.Errorf("%s: negative CI %.4f", p.Config, p.CI)
		}
		if p.Units < 1 {
			t.Errorf("%s: no measured units", p.Config)
		}
		if quant() && p.Units < 2 {
			t.Errorf("%s: %d units — the test sampling should yield several at QuickBudget", p.Config, p.Units)
		}
	}
	for _, want := range []string{"Study S1", "1T-L2_16", "4T-L2_256", "speedup", "in CI"} {
		if !strings.Contains(r.Table(), want) {
			t.Errorf("table missing %q", want)
		}
	}

	// The quantitative honesty check: the sampled estimate's error against
	// the exact run must lie inside the estimate's own 95% confidence
	// interval. Deterministic — fixed workloads, fixed schedule — so this
	// either always passes or always fails for a given parameterization.
	if quant() {
		for _, p := range r.Points {
			if !p.InCI {
				t.Errorf("%s: |error| %.2f%% outside the reported 95%% CI (sampled %.3f ±%.3f, exact %.3f, %d units)",
					p.Config, p.ErrPct, p.SampledIPC, p.CI, p.ExactIPC, p.Units)
			}
		}
	}
}

func TestS1CSV(t *testing.T) {
	r, err := S1Sampled(testBudget(), testSampling)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(r.Points) {
		t.Fatalf("%d CSV lines, want %d", len(lines), 1+len(r.Points))
	}
	if !strings.HasPrefix(lines[0], "config,threads,l2,exact_ipc,sampled_ipc,ci,units,err_pct,in_ci") {
		t.Errorf("unexpected CSV header: %s", lines[0])
	}
}

func TestS1RejectsBadSampling(t *testing.T) {
	if _, err := S1Sampled(testBudget(), sim.Sampling{PeriodInsts: 100, UnitInsts: 90, WarmupInsts: 20}); err == nil {
		t.Error("unit+warmup exceeding the period accepted")
	}
}
