package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/runner"
)

// Fig5Result reproduces the paper's Figure 5: hardware-context
// requirements of the decoupled and non-decoupled machines at L2
// latencies 16 (1–7 threads, solid lines) and 64 (1–16 threads, dotted
// lines), plus the external-bus utilization that explains why the
// non-decoupled machine saturates at L2 = 64 (89% at 12 threads, 98% at
// 16 in the paper).
type Fig5Result struct {
	// ThreadsShort and ThreadsLong are the two x-axes.
	ThreadsShort, ThreadsLong []int
	// IPC16Dec/IPC16Non are the L2=16 curves over ThreadsShort.
	IPC16Dec, IPC16Non []float64
	// IPC64Dec/IPC64Non are the L2=64 curves over ThreadsLong.
	IPC64Dec, IPC64Non []float64
	// Bus64Dec/Bus64Non are the bus utilizations of the L2=64 curves.
	Bus64Dec, Bus64Non []float64
}

// Fig5ThreadsShort and Fig5ThreadsLong are the paper's axes.
var (
	Fig5ThreadsShort = []int{1, 2, 3, 4, 5, 6, 7}
	Fig5ThreadsLong  = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
)

// Fig5 runs the thread-requirement sweep.
func Fig5(b Budget) (*Fig5Result, error) {
	r := &Fig5Result{
		ThreadsShort: Fig5ThreadsShort,
		ThreadsLong:  Fig5ThreadsLong,
		IPC16Dec:     make([]float64, len(Fig5ThreadsShort)),
		IPC16Non:     make([]float64, len(Fig5ThreadsShort)),
		IPC64Dec:     make([]float64, len(Fig5ThreadsLong)),
		IPC64Non:     make([]float64, len(Fig5ThreadsLong)),
		Bus64Dec:     make([]float64, len(Fig5ThreadsLong)),
		Bus64Non:     make([]float64, len(Fig5ThreadsLong)),
	}
	type point struct {
		lat       int64
		decoupled bool
		idx       int // index into the axis slice
		threads   int
	}
	var points []point
	for i, t := range Fig5ThreadsShort {
		points = append(points,
			point{16, true, i, t},
			point{16, false, i, t})
	}
	for i, t := range Fig5ThreadsLong {
		points = append(points,
			point{64, true, i, t},
			point{64, false, i, t})
	}
	jobs := make([]runner.Job, len(points))
	for i, p := range points {
		m := config.Figure2(p.threads).WithL2Latency(p.lat)
		if !p.decoupled {
			m = m.NonDecoupled()
		}
		jobs[i] = b.mixJob(
			fmt.Sprintf("fig5 threads=%d L2=%d dec=%v", p.threads, p.lat, p.decoupled), m)
	}
	reps, err := b.sweep(jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		rep := reps[i]
		switch {
		case p.lat == 16 && p.decoupled:
			r.IPC16Dec[p.idx] = rep.IPC()
		case p.lat == 16:
			r.IPC16Non[p.idx] = rep.IPC()
		case p.decoupled:
			r.IPC64Dec[p.idx] = rep.IPC()
			r.Bus64Dec[p.idx] = rep.BusUtilization
		default:
			r.IPC64Non[p.idx] = rep.IPC()
			r.Bus64Non[p.idx] = rep.BusUtilization
		}
	}
	return r, nil
}

// Table renders the four IPC series plus the L2=64 bus utilizations.
func (r *Fig5Result) Table() string {
	header := []string{"threads",
		"L2=16 dec", "L2=16 non-dec",
		"L2=64 dec", "L2=64 non-dec",
		"bus64 dec", "bus64 non-dec"}
	rows := make([][]string, len(r.ThreadsLong))
	for i, t := range r.ThreadsLong {
		row := []string{fmt.Sprintf("%d", t)}
		if i < len(r.ThreadsShort) {
			row = append(row, f2(r.IPC16Dec[i]), f2(r.IPC16Non[i]))
		} else {
			row = append(row, "-", "-")
		}
		row = append(row, f2(r.IPC64Dec[i]), f2(r.IPC64Non[i]),
			pct(r.Bus64Dec[i]), pct(r.Bus64Non[i]))
		rows[i] = row
	}
	return formatTable("Figure 5: IPC vs hardware contexts (decoupling reduces thread requirements)", header, rows)
}

// PeakThreads returns the smallest thread count whose IPC is within tol
// of the series' maximum — "threads needed to reach peak".
func PeakThreads(threads []int, ipc []float64, tol float64) int {
	peak := 0.0
	for _, v := range ipc {
		if v > peak {
			peak = v
		}
	}
	for i, v := range ipc {
		if v >= peak*(1-tol) {
			return threads[i]
		}
	}
	return threads[len(threads)-1]
}
