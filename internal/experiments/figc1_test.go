package experiments

import (
	"strings"
	"testing"
)

func TestC1Structure(t *testing.T) {
	b := testBudget()
	// Trimmed axes: the capacity extremes and the core-count extremes
	// carry the signal; the canonical grid runs via `dae-sweep -fig c1`.
	cores := []int{1, 2}
	contexts := []int{1, 2}
	sizes := []int{64 << 10}
	r, err := C1Grid(b, cores, contexts, sizes)
	if err != nil {
		t.Fatal(err)
	}

	// Point count: scaling (cores × contexts) + private (multi-core
	// counts) + interference (sizes × cores).
	want := len(cores)*len(contexts) + 1 + len(sizes)*len(cores)
	if len(r.Points) != want {
		t.Fatalf("%d points, want %d", len(r.Points), want)
	}
	for _, p := range r.Points {
		if p.IPC <= 0 {
			t.Errorf("cores=%d ctx=%d: non-positive IPC", p.Cores, p.Contexts)
		}
		if p.L2Miss < 0 || p.L2Miss > 1 {
			t.Errorf("cores=%d ctx=%d: miss ratio %f out of range", p.Cores, p.Contexts, p.L2Miss)
		}
		// Private address spaces: the coherence machinery must stay
		// silent for this workload. A non-zero count means cross-core
		// address collisions (or a broadcast bug).
		if p.Invalidations != 0 {
			t.Errorf("cores=%d ctx=%d private=%v: %d invalidations, want 0",
				p.Cores, p.Contexts, p.Private, p.Invalidations)
		}
	}

	if p := r.Lookup(2, 1, C1SharedL2Size, true); p == nil || !p.Private {
		t.Error("Lookup missed the private 2-core point")
	}
	if p := r.Lookup(1, 1, 64<<10, false); p == nil {
		t.Error("Lookup missed the interference point")
	}
	if r.Lookup(8, 1, C1SharedL2Size, false) != nil {
		t.Error("Lookup invented a point outside the grid")
	}

	for _, wantStr := range []string{"Figure C1", "shared", "private", "invals", "256KB"} {
		if !strings.Contains(r.Table(), wantStr) {
			t.Errorf("table missing %q", wantStr)
		}
	}

	if quant() {
		// More cores, more aggregate throughput: the scaling section's
		// point of existing.
		one := r.Lookup(1, 1, C1SharedL2Size, false)
		two := r.Lookup(2, 1, C1SharedL2Size, false)
		if two.IPC <= one.IPC {
			t.Errorf("2-core IPC %.2f not above 1-core %.2f", two.IPC, one.IPC)
		}
		// Cross-core interference: two cores on a 64KB shared L2 miss
		// more than one core does.
		oneSmall := r.Lookup(1, 1, 64<<10, false)
		twoSmall := r.Lookup(2, 1, 64<<10, false)
		if twoSmall.L2Miss <= oneSmall.L2Miss {
			t.Errorf("2-core 64KB miss ratio %.3f not above 1-core %.3f",
				twoSmall.L2Miss, oneSmall.L2Miss)
		}
	}
}

func TestC1CSV(t *testing.T) {
	r := &C1Result{Points: []C1Point{
		{Cores: 2, Contexts: 1, L2Size: 64 << 10, Private: true, IPC: 1.5, L2Miss: 0.25, MemBus: 0.5},
	}}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{"cores,contexts,l2_bytes,private", "2,1,65536,true,1.5"} {
		if !strings.Contains(got, want) {
			t.Errorf("CSV missing %q in:\n%s", want, got)
		}
	}
}
