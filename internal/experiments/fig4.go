package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/runner"
)

// Fig4Result reproduces the paper's Figure 4: memory-latency tolerance of
// the eight configurations {1..4 threads} × {decoupled, non-decoupled}
// across L2 latencies 1–256, on the per-thread benchmark mixes.
//
// Interpretation note (see DESIGN.md): the architectural queues, register
// files and the lockup-free miss capacity scale proportionally with the
// L2 latency, as in the paper's Section 2 — with the Figure-2 sizes held
// fixed, Little's law caps memory-level parallelism at 16 outstanding
// lines and no configuration can approach the paper's large-latency
// points. The fixed-size variant is available as ablation A6.
type Fig4Result struct {
	// Latencies is the swept L2 axis.
	Latencies []int64
	// Configs labels the eight machine configurations.
	Configs []Fig4Config
	// Perceived[c][l] is the combined perceived load-miss latency
	// (Figure 4-a).
	Perceived [][]float64
	// IPC[c][l] is absolute IPC (Figure 4-c); IPCLoss[c][l] is relative
	// to the 1-cycle point (Figure 4-b).
	IPC, IPCLoss [][]float64
}

// Fig4Config identifies one line of Figure 4.
type Fig4Config struct {
	Threads   int
	Decoupled bool
}

func (c Fig4Config) String() string {
	mode := "decoupled"
	if !c.Decoupled {
		mode = "non-dec"
	}
	return fmt.Sprintf("%dT %s", c.Threads, mode)
}

// Fig4Configs is the paper's eight configurations, non-decoupled first
// (matching the figure legend's top-to-bottom order).
var Fig4Configs = []Fig4Config{
	{4, false}, {3, false}, {2, false}, {1, false},
	{4, true}, {3, true}, {2, true}, {1, true},
}

// Fig4 runs the latency-tolerance sweep.
func Fig4(b Budget) (*Fig4Result, error) {
	r := &Fig4Result{
		Latencies: PaperLatencies,
		Configs:   Fig4Configs,
		Perceived: grid(len(Fig4Configs), len(PaperLatencies)),
		IPC:       grid(len(Fig4Configs), len(PaperLatencies)),
		IPCLoss:   grid(len(Fig4Configs), len(PaperLatencies)),
	}
	var jobs []runner.Job
	for _, cfg := range Fig4Configs {
		for _, lat := range PaperLatencies {
			m := config.Figure2(cfg.Threads).WithL2Latency(lat)
			m.ScaleWithLatency = true
			if !cfg.Decoupled {
				m = m.NonDecoupled()
			}
			jobs = append(jobs, b.mixJob(fmt.Sprintf("fig4 %v L2=%d", cfg, lat), m))
		}
	}
	reps, err := b.sweep(jobs)
	if err != nil {
		return nil, err
	}
	for ci := range Fig4Configs {
		for li := range PaperLatencies {
			rep := reps[ci*len(PaperLatencies)+li]
			r.Perceived[ci][li] = rep.Perceived().Mean()
			r.IPC[ci][li] = rep.IPC()
		}
	}
	for ci := range Fig4Configs {
		base := r.IPC[ci][0]
		for li := range PaperLatencies {
			if base > 0 {
				r.IPCLoss[ci][li] = (r.IPC[ci][li] - base) / base
			}
		}
	}
	return r, nil
}

// TableA renders Figure 4-a (perceived load-miss latency per config).
func (r *Fig4Result) TableA() string {
	return r.configTable("Figure 4-a: perceived load-miss latency (cycles)", r.Perceived, f1)
}

// TableB renders Figure 4-b (relative IPC loss per config).
func (r *Fig4Result) TableB() string {
	return r.configTable("Figure 4-b: IPC loss relative to L2 latency 1", r.IPCLoss,
		func(v float64) string { return pct(v) })
}

// TableC renders Figure 4-c (absolute IPC per config).
func (r *Fig4Result) TableC() string {
	return r.configTable("Figure 4-c: IPC", r.IPC, f2)
}

func (r *Fig4Result) configTable(title string, data [][]float64, fmtCell func(float64) string) string {
	header := []string{"config"}
	for _, l := range r.Latencies {
		header = append(header, fmt.Sprintf("L2=%d", l))
	}
	rows := make([][]string, len(r.Configs))
	for i, cfg := range r.Configs {
		row := []string{cfg.String()}
		for j := range r.Latencies {
			row = append(row, fmtCell(data[i][j]))
		}
		rows[i] = row
	}
	return formatTable(title, header, rows)
}

// At returns the value grid cell for a configuration and latency, for
// tests and EXPERIMENTS.md extraction.
func (r *Fig4Result) At(threads int, decoupled bool, lat int64) (perceived, ipc, loss float64, ok bool) {
	ci := -1
	for i, c := range r.Configs {
		if c.Threads == threads && c.Decoupled == decoupled {
			ci = i
		}
	}
	li := -1
	for i, l := range r.Latencies {
		if l == lat {
			li = i
		}
	}
	if ci < 0 || li < 0 {
		return 0, 0, 0, false
	}
	return r.Perceived[ci][li], r.IPC[ci][li], r.IPCLoss[ci][li], true
}
