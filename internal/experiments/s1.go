package experiments

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file implements study S1: sampled-mode validation. For each of the
// four figure configurations it runs the same instruction budget twice —
// once in exact mode, once under SMARTS-style systematic sampling — and
// reports the sampled IPC estimate with its 95% confidence interval, the
// error against the exact result, and the wall-clock speedup. The report
// hashes of both runs are deterministic (and land in -hashfile for the CI
// determinism gate); the wall-clock columns are measured here and appear
// only in the table/CSV, never in a hash. Speedups are only meaningful
// when the runs actually simulate — on a warm result cache they collapse
// toward 1.
//
// The quantitative claim (error inside the estimate's own CI, speedup
// ≥5× at large budgets) is asserted by the tests at QuickBudget with a
// proportionally shrunk sampling period; the committed figure uses the
// default sampling parameters.

// S1Configs is the study's machine axis: the four figure configurations
// (threads × L2 latency) the paper's evaluation revolves around.
var S1Configs = []struct {
	Name    string
	Threads int
	L2      int64
}{
	{"1T-L2_16", 1, 16},
	{"1T-L2_256", 1, 256},
	{"4T-L2_16", 4, 16},
	{"4T-L2_256", 4, 256},
}

// S1Point is one configuration's exact-vs-sampled comparison.
type S1Point struct {
	// Config labels the machine (S1Configs entry).
	Config  string
	Threads int
	L2      int64
	// ExactIPC is the exact-mode reference over the full budget.
	ExactIPC float64
	// SampledIPC and CI are the sampling estimate (Report.Sampled).
	SampledIPC float64
	CI         float64
	// Units is the number of measured sampling units.
	Units int
	// ErrPct is 100·|sampled−exact|/exact.
	ErrPct float64
	// InCI reports whether the exact IPC lies inside the estimate's own
	// 95% confidence interval — the honesty check: an estimator may be
	// wrong, but it must know how wrong.
	InCI bool
	// ExactWall and SampledWall are the measured wall-clock times; their
	// ratio is Speedup. Only meaningful on a cold cache.
	ExactWall   time.Duration
	SampledWall time.Duration
	Speedup     float64
}

// S1Result is the study output.
type S1Result struct {
	// Sampling is the resolved sampling parameterization used.
	Sampling sim.Sampling
	Points   []S1Point
}

// S1 runs the study with the default sampling parameters.
func S1(b Budget) (*S1Result, error) {
	return S1Sampled(b, sim.Sampling{})
}

// S1Sampled runs the study with explicit sampling parameters (zero fields
// take the defaults). Tests shrink the period so a quick budget still
// yields enough units for a meaningful confidence interval.
func S1Sampled(b Budget, sp sim.Sampling) (*S1Result, error) {
	sp = sp.WithDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	r := &S1Result{Sampling: sp}
	// Jobs run one at a time so each point's wall clock is its own: the
	// study measures simulation speed, and overlapping the runs would
	// charge each one for its neighbors' cores.
	run := func(job runner.Job) (stats.Report, time.Duration, error) {
		start := time.Now()
		reps, err := b.sweep([]runner.Job{job})
		if err != nil {
			return stats.Report{}, 0, err
		}
		return reps[0], time.Since(start), nil
	}
	for _, c := range S1Configs {
		m := config.Figure2(c.Threads).WithL2Latency(c.L2)
		exactJob := b.mixJob(fmt.Sprintf("s1 %s exact", c.Name), m)
		sampledJob := b.mixJob(fmt.Sprintf("s1 %s sampled", c.Name), m)
		sampledJob.Budget.Mode = sim.ModeSampled
		spc := sp
		sampledJob.Budget.Sampling = &spc

		exact, exactWall, err := run(exactJob)
		if err != nil {
			return nil, err
		}
		sampled, sampledWall, err := run(sampledJob)
		if err != nil {
			return nil, err
		}
		if sampled.Sampled == nil {
			return nil, fmt.Errorf("s1 %s: sampled run carried no Sampled summary", c.Name)
		}
		p := S1Point{
			Config:      c.Name,
			Threads:     c.Threads,
			L2:          c.L2,
			ExactIPC:    exact.IPC(),
			SampledIPC:  sampled.Sampled.Mean,
			CI:          sampled.Sampled.CI,
			Units:       sampled.Sampled.Units,
			ExactWall:   exactWall,
			SampledWall: sampledWall,
		}
		if p.ExactIPC > 0 {
			p.ErrPct = 100 * abs(p.SampledIPC-p.ExactIPC) / p.ExactIPC
		}
		p.InCI = abs(p.SampledIPC-p.ExactIPC) <= p.CI
		if sampledWall > 0 {
			p.Speedup = float64(exactWall) / float64(sampledWall)
		}
		r.Points = append(r.Points, p)
	}
	return r, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Table renders the study.
func (r *S1Result) Table() string {
	header := []string{"config", "exact IPC", "sampled IPC", "±95% CI", "units", "err", "in CI", "speedup"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Config,
			f2(p.ExactIPC),
			f2(p.SampledIPC),
			fmt.Sprintf("±%.3f", p.CI),
			fmt.Sprintf("%d", p.Units),
			fmt.Sprintf("%.1f%%", p.ErrPct),
			fmt.Sprintf("%v", p.InCI),
			fmt.Sprintf("%.1fx", p.Speedup),
		})
	}
	return formatTable(
		fmt.Sprintf("Study S1: sampled vs exact — IPC error and wall-clock speedup (period=%d unit=%d warmup=%d)",
			r.Sampling.PeriodInsts, r.Sampling.UnitInsts, r.Sampling.WarmupInsts),
		header, rows)
}
