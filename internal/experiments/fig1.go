package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Fig1Result reproduces the paper's Figure 1: the latency-hiding
// effectiveness of single-threaded decoupling on the Section-2 machine,
// per benchmark, across L2 latencies 1–256 (queues and register files
// scaled proportionally to latency, per the paper).
type Fig1Result struct {
	// Benchmarks lists the benchmark names (paper order).
	Benchmarks []string
	// Latencies is the swept L2 latency axis.
	Latencies []int64
	// PerceivedFP[b][l] is the average perceived FP-load miss latency
	// (Figure 1-a).
	PerceivedFP [][]float64
	// PerceivedInt[b][l] is the integer equivalent (Figure 1-b).
	PerceivedInt [][]float64
	// LoadMiss[b] and StoreMiss[b] are the L1 primary miss ratios at
	// L2 = 256 (Figure 1-c).
	LoadMiss, StoreMiss []float64
	// IPC[b][l] is the absolute IPC; IPCLoss[b][l] is the loss relative
	// to the 1-cycle point (Figure 1-d, negative percentages).
	IPC, IPCLoss [][]float64
}

// Fig1 runs the Section-2 single-threaded latency-hiding study.
func Fig1(b Budget) (*Fig1Result, error) {
	benches := workload.All()
	r := &Fig1Result{
		Benchmarks:   workload.Names(),
		Latencies:    PaperLatencies,
		PerceivedFP:  grid(len(benches), len(PaperLatencies)),
		PerceivedInt: grid(len(benches), len(PaperLatencies)),
		LoadMiss:     make([]float64, len(benches)),
		StoreMiss:    make([]float64, len(benches)),
		IPC:          grid(len(benches), len(PaperLatencies)),
		IPCLoss:      grid(len(benches), len(PaperLatencies)),
	}
	var jobs []runner.Job
	for _, bench := range benches {
		for _, lat := range PaperLatencies {
			m := config.Section2().WithL2Latency(lat)
			jobs = append(jobs, b.benchJob(
				fmt.Sprintf("fig1 %s L2=%d", bench.Name, lat), m, bench.Name))
		}
	}
	reps, err := b.sweep(jobs)
	if err != nil {
		return nil, err
	}
	for bi := range benches {
		for li, lat := range PaperLatencies {
			rep := reps[bi*len(PaperLatencies)+li]
			r.PerceivedFP[bi][li] = rep.PerceivedFP.Mean()
			r.PerceivedInt[bi][li] = rep.PerceivedInt.Mean()
			r.IPC[bi][li] = rep.IPC()
			if lat == 256 {
				r.LoadMiss[bi] = rep.Mem.LoadMissRatio()
				r.StoreMiss[bi] = rep.Mem.StoreMissRatio()
			}
		}
	}
	for bi := range benches {
		base := r.IPC[bi][0]
		for li := range PaperLatencies {
			if base > 0 {
				r.IPCLoss[bi][li] = (r.IPC[bi][li] - base) / base
			}
		}
	}
	return r, nil
}

func grid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

// TableA renders Figure 1-a (perceived FP-load miss latency).
func (r *Fig1Result) TableA() string {
	return r.latencyTable("Figure 1-a: average perceived FP-load miss latency (cycles)", r.PerceivedFP, f1)
}

// TableB renders Figure 1-b (perceived integer-load miss latency).
func (r *Fig1Result) TableB() string {
	return r.latencyTable("Figure 1-b: average perceived integer-load miss latency (cycles)", r.PerceivedInt, f1)
}

// TableC renders Figure 1-c (L1 miss ratios at L2 latency 256).
func (r *Fig1Result) TableC() string {
	header := []string{"benchmark", "load-miss", "store-miss"}
	rows := make([][]string, len(r.Benchmarks))
	for i, name := range r.Benchmarks {
		rows[i] = []string{name, pct(r.LoadMiss[i]), pct(r.StoreMiss[i])}
	}
	return formatTable("Figure 1-c: L1 miss ratios (L2 latency = 256)", header, rows)
}

// TableD renders Figure 1-d (% IPC loss relative to L2 latency 1).
func (r *Fig1Result) TableD() string {
	return r.latencyTable("Figure 1-d: IPC loss relative to L2 latency 1", r.IPCLoss,
		func(v float64) string { return pct(v) })
}

func (r *Fig1Result) latencyTable(title string, data [][]float64, fmtCell func(float64) string) string {
	header := []string{"benchmark"}
	for _, l := range r.Latencies {
		header = append(header, fmt.Sprintf("L2=%d", l))
	}
	rows := make([][]string, len(r.Benchmarks))
	for i, name := range r.Benchmarks {
		row := []string{name}
		for j := range r.Latencies {
			row = append(row, fmtCell(data[i][j]))
		}
		rows[i] = row
	}
	return formatTable(title, header, rows)
}
