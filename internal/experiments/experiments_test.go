package experiments

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/runner"
)

// The experiment tests normally run with QuickBudget (tens of thousands
// of instructions per run) — enough to exercise every code path and the
// robust qualitative invariants, far too little for figure-quality
// numbers. With -short they drop to ShortBudget: every sweep still runs
// its full grid through the runner, but only the structural assertions
// apply (the qualitative ones need QuickBudget's steadier numbers). The
// headline reproduction numbers live in EXPERIMENTS.md and the
// root-level benchmarks.
//
// All tests share one runner, so sweeps that revisit a point another
// test already simulated (the CSV tests re-run whole figures) are served
// from the result cache.
var sweepRunner = func() *runner.Runner {
	r, err := runner.New(runner.Options{})
	if err != nil {
		panic(err)
	}
	return r
}()

// testBudget returns the sweep budget for the current test mode, wired
// to the shared runner.
func testBudget() Budget {
	b := QuickBudget()
	if testing.Short() {
		b = ShortBudget()
	}
	b.Runner = sweepRunner
	return b
}

// quant reports whether the paper's quantitative invariants should be
// asserted (they need at least QuickBudget).
func quant() bool { return !testing.Short() }

func TestFig1Structure(t *testing.T) {
	r, err := Fig1(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 10 || len(r.Latencies) != 6 {
		t.Fatalf("grid shape: %d benchmarks × %d latencies", len(r.Benchmarks), len(r.Latencies))
	}
	idx := func(name string) int {
		for i, b := range r.Benchmarks {
			if b == name {
				return i
			}
		}
		t.Fatalf("benchmark %s missing", name)
		return -1
	}
	for bi := range r.Benchmarks {
		for li := range r.Latencies {
			if r.IPC[bi][li] <= 0 {
				t.Errorf("%s L2=%d: non-positive IPC", r.Benchmarks[bi], r.Latencies[li])
			}
		}
	}
	if quant() {
		last := len(r.Latencies) - 1
		// fpppp has the worst perceived FP latency at 256 (Fig 1-a).
		fp := idx("fpppp")
		for _, name := range []string{"tomcatv", "swim", "mgrid", "applu", "apsi"} {
			if r.PerceivedFP[fp][last] <= r.PerceivedFP[idx(name)][last] {
				t.Errorf("fpppp perceived FP (%.1f) not above %s (%.1f)",
					r.PerceivedFP[fp][last], name, r.PerceivedFP[idx(name)][last])
			}
		}
		// The gather codes dominate perceived integer latency (Fig 1-b).
		for _, gather := range []string{"su2cor", "wave5", "turb3d", "fpppp"} {
			if r.PerceivedInt[idx(gather)][last] < 10 {
				t.Errorf("%s perceived int latency %.1f too small at 256", gather, r.PerceivedInt[idx(gather)][last])
			}
		}
		for _, regular := range []string{"tomcatv", "swim", "mgrid"} {
			if r.PerceivedInt[idx(regular)][last] > 10 {
				t.Errorf("%s perceived int latency %.1f unexpectedly high", regular, r.PerceivedInt[idx(regular)][last])
			}
		}
		// fpppp has a near-zero miss ratio; hydro2d/swim are tall (Fig 1-c).
		if r.LoadMiss[idx("fpppp")] > 0.03 {
			t.Errorf("fpppp load miss %.3f too high", r.LoadMiss[idx("fpppp")])
		}
		if r.LoadMiss[idx("hydro2d")] < 2*r.LoadMiss[idx("mgrid")] {
			t.Errorf("hydro2d (%.3f) not well above mgrid (%.3f)",
				r.LoadMiss[idx("hydro2d")], r.LoadMiss[idx("mgrid")])
		}
		// The degraded trio loses the most IPC at 256 (Fig 1-d).
		for _, bad := range []string{"su2cor", "hydro2d", "wave5"} {
			for _, good := range []string{"mgrid", "applu", "turb3d"} {
				if r.IPCLoss[idx(bad)][last] > r.IPCLoss[idx(good)][last] {
					t.Errorf("%s (%.2f) does not degrade more than %s (%.2f)",
						bad, r.IPCLoss[idx(bad)][last], good, r.IPCLoss[idx(good)][last])
				}
			}
		}
	}
	// Tables render without panicking and mention every benchmark.
	for _, table := range []string{r.TableA(), r.TableB(), r.TableC(), r.TableD()} {
		for _, b := range r.Benchmarks {
			if !strings.Contains(table, b) {
				t.Errorf("table missing %s:\n%s", b, table)
			}
		}
	}
}

func TestFig3Structure(t *testing.T) {
	r, err := Fig3(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Threads) != 6 || len(r.IPC) != 6 || len(r.Slots) != 6 {
		t.Fatalf("axis shape: %d threads, %d IPC, %d slots", len(r.Threads), len(r.IPC), len(r.Slots))
	}
	for i, t2 := range r.Threads {
		if r.IPC[i] <= 0 {
			t.Errorf("threads=%d: non-positive IPC", t2)
		}
	}
	if quant() {
		// Multithreading raises throughput substantially from 1 to 3 threads
		// and the curve flattens beyond 4 (paper: 2.31x, ~flat after 4).
		if s := r.Speedup(3); s < 1.6 {
			t.Errorf("3-thread speedup %.2f too small", s)
		}
		if r.IPC[3] < r.IPC[2] {
			t.Errorf("IPC dropped from 3 to 4 threads: %.2f -> %.2f", r.IPC[2], r.IPC[3])
		}
		// With one thread the EP wastes more slots on FU latency than on
		// memory (the paper's central single-thread observation).
		ep := r.Slots[0][1]
		if ep.Wasted[2] <= ep.Wasted[1] { // WasteFU vs WasteMem
			t.Errorf("1-thread EP not FU-bound: fu=%.0f mem=%.0f", ep.Wasted[2], ep.Wasted[1])
		}
		// AP utilization grows monotonically in threads.
		for i := 1; i < len(r.Threads); i++ {
			if r.Slots[i][0].UsefulFrac()+1e-9 < r.Slots[i-1][0].UsefulFrac()-0.05 {
				t.Errorf("AP utilization regressed at %d threads", r.Threads[i])
			}
		}
	}
	if !strings.Contains(r.Table(), "threads") {
		t.Error("table missing header")
	}
}

func TestFig4Structure(t *testing.T) {
	r, err := Fig4(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Configs) != 8 || len(r.Latencies) != 6 {
		t.Fatalf("grid shape: %d configs × %d latencies", len(r.Configs), len(r.Latencies))
	}
	for ci, cfg := range r.Configs {
		for li := range r.Latencies {
			if r.IPC[ci][li] <= 0 {
				t.Errorf("%v L2=%d: non-positive IPC", cfg, r.Latencies[li])
			}
		}
	}
	if quant() {
		// Decoupled configurations lose far less IPC from 1→32 cycles than
		// non-decoupled ones (paper: <4% vs >23%).
		for threads := 1; threads <= 4; threads++ {
			_, _, decLoss, ok := r.At(threads, true, 32)
			if !ok {
				t.Fatal("missing decoupled config")
			}
			_, _, nonLoss, ok := r.At(threads, false, 32)
			if !ok {
				t.Fatal("missing non-decoupled config")
			}
			// Losses are negative; decoupled must lose less (be closer to 0).
			if decLoss < nonLoss {
				t.Errorf("%dT: decoupled loss %.1f%% worse than non-decoupled %.1f%%",
					threads, 100*decLoss, 100*nonLoss)
			}
		}
		// Perceived latency: decoupled stays low, non-decoupled grows with
		// the L2 latency.
		decP, _, _, _ := r.At(4, true, 256)
		nonP, _, _, _ := r.At(4, false, 256)
		if decP > nonP/4 {
			t.Errorf("4T perceived at 256: decoupled %.1f vs non-decoupled %.1f — gap too small", decP, nonP)
		}
		// Multithreading raises absolute IPC at every latency.
		for _, lat := range []int64{1, 64} {
			_, one, _, _ := r.At(1, true, lat)
			_, four, _, _ := r.At(4, true, lat)
			if four <= one {
				t.Errorf("4T IPC (%.2f) not above 1T (%.2f) at L2=%d", four, one, lat)
			}
		}
	}
	for _, table := range []string{r.TableA(), r.TableB(), r.TableC()} {
		if !strings.Contains(table, "decoupled") {
			t.Error("table missing config labels")
		}
	}
}

func TestFig5Structure(t *testing.T) {
	r, err := Fig5(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ThreadsShort) != 7 || len(r.ThreadsLong) != 16 {
		t.Fatalf("axis shape: %d short, %d long", len(r.ThreadsShort), len(r.ThreadsLong))
	}
	for i := range r.ThreadsLong {
		if r.IPC64Dec[i] <= 0 || r.IPC64Non[i] <= 0 {
			t.Errorf("threads=%d: non-positive L2=64 IPC", r.ThreadsLong[i])
		}
	}
	if quant() {
		// The decoupled machine reaches near-peak with fewer threads than the
		// non-decoupled machine at L2=16.
		decPeak := PeakThreads(r.ThreadsShort, r.IPC16Dec, 0.05)
		nonPeak := PeakThreads(r.ThreadsShort, r.IPC16Non, 0.05)
		if decPeak >= nonPeak {
			t.Errorf("peak threads: decoupled %d, non-decoupled %d — decoupling should need fewer", decPeak, nonPeak)
		}
		// At L2=64, the decoupled machine beats the non-decoupled one at
		// every matched thread count.
		for i := range r.ThreadsLong {
			if r.IPC64Dec[i] < r.IPC64Non[i] {
				t.Errorf("L2=64 at %d threads: decoupled %.2f below non-decoupled %.2f",
					r.ThreadsLong[i], r.IPC64Dec[i], r.IPC64Non[i])
			}
		}
		// Non-decoupled bus utilization grows with thread count at L2=64.
		if r.Bus64Non[len(r.Bus64Non)-1] < r.Bus64Non[3] {
			t.Error("non-decoupled bus utilization did not grow with threads")
		}
	}
	if !strings.Contains(r.Table(), "bus64") {
		t.Error("table missing bus columns")
	}
}

func TestPeakThreads(t *testing.T) {
	threads := []int{1, 2, 3, 4}
	ipc := []float64{2, 5.8, 6.0, 6.05}
	if got := PeakThreads(threads, ipc, 0.05); got != 2 {
		t.Fatalf("PeakThreads = %d, want 2 (within 5%% of peak)", got)
	}
	if got := PeakThreads(threads, ipc, 0.0001); got != 4 {
		t.Fatalf("strict PeakThreads = %d, want 4", got)
	}
}

func TestAblationsRun(t *testing.T) {
	b := testBudget()
	for _, a := range []struct {
		name string
		run  func(Budget) (*AblationResult, error)
		rows int
	}{
		{"unit widths", AblationUnitWidths, 5},
		{"fetch policy", AblationFetchPolicy, 2},
		{"associativity", AblationAssoc, 3},
		{"forwarding", AblationForwarding, 2},
		{"memory", AblationMemory, 6},
		{"scaling", AblationScaling, 2},
	} {
		r, err := a.run(b)
		if err != nil {
			t.Errorf("%s: %v", a.name, err)
			continue
		}
		if len(r.Rows) != a.rows {
			t.Errorf("%s: %d rows, want %d", a.name, len(r.Rows), a.rows)
		}
		for _, row := range r.Rows {
			if row.IPC <= 0 {
				t.Errorf("%s [%s]: non-positive IPC", a.name, row.Label)
			}
		}
		if !strings.Contains(r.Table(), "IPC") {
			t.Errorf("%s: table malformed", a.name)
		}
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := formatTable("T", []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"yyyy", "22"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("table has %d lines", len(lines))
	}
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator width mismatch")
	}
}

func TestBudgetParallelism(t *testing.T) {
	b := Budget{Parallelism: 3}
	if b.parallelism() != 3 {
		t.Fatal("explicit parallelism ignored")
	}
	if (Budget{}).parallelism() < 1 {
		t.Fatal("default parallelism invalid")
	}
}

// TestSweepAggregatesAllErrors pins the semantics that replaced the old
// parallel() helper: a sweep with several failing points reports every
// failure, not just the first.
func TestSweepAggregatesAllErrors(t *testing.T) {
	b := ShortBudget()
	badA := b.mixJob("bad-a", config.Machine{}) // fails validation
	badB := b.benchJob("bad-b", config.Figure2(1), "no-such-benchmark")
	_, err := b.sweep([]runner.Job{b.mixJob("ok", config.Figure2(1)), badA, badB})
	if err == nil {
		t.Fatal("sweep with failing jobs returned nil error")
	}
	var be *runner.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("sweep error is %T, want *runner.BatchError", err)
	}
	if len(be.Errors) != 2 {
		t.Fatalf("sweep reported %d errors, want 2: %v", len(be.Errors), err)
	}
	for _, want := range []string{"bad-a", "bad-b"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated sweep error missing %q:\n%v", want, err)
		}
	}
}

// TestFigSweepsHitSharedCache verifies the cross-figure reuse the runner
// exists for: re-running a figure through the same runner simulates
// nothing new, and fig3's thread axis is a subset of fig5's L2=16 curve.
func TestFigSweepsHitSharedCache(t *testing.T) {
	r, err := runner.New(runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := ShortBudget()
	b.Runner = r

	first, err := Fig3(b)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := r.Stats()
	if afterFirst.Simulated == 0 {
		t.Fatal("first sweep simulated nothing")
	}
	second, err := Fig3(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Simulated; got != afterFirst.Simulated {
		t.Fatalf("re-run simulated %d new points, want 0", got-afterFirst.Simulated)
	}
	for i := range first.IPC {
		if first.IPC[i] != second.IPC[i] {
			t.Fatalf("cached fig3 IPC differs at %d threads", first.Threads[i])
		}
	}

	// Fig5's L2=16 decoupled curve revisits fig3's six points (same
	// machine, workload and budget), so a shared runner skips them.
	before := r.Stats()
	f5, err := Fig5(b)
	if err != nil {
		t.Fatal(err)
	}
	delta := r.Stats()
	newPoints := delta.Simulated - before.Simulated
	total := int64(2*len(f5.ThreadsShort) + 2*len(f5.ThreadsLong))
	if newPoints != total-int64(len(first.Threads)) {
		t.Errorf("fig5 simulated %d of %d points after fig3; want %d shared",
			newPoints, total, len(first.Threads))
	}
	for i, threads := range first.Threads {
		if f5.IPC16Dec[i] != first.IPC[i] {
			t.Errorf("shared point threads=%d: fig5 %.4f != fig3 %.4f",
				threads, f5.IPC16Dec[i], first.IPC[i])
		}
	}
}

func TestInterferenceStructure(t *testing.T) {
	b := testBudget()
	// The trimmed grid keeps the quantitative invariants (the capacity
	// extremes, where the interference signal lives) at a fraction of
	// the canonical grid's cost; the canonical axes are exercised by the
	// -fig i1 CLI path and the determinism gate.
	sizes := []int{64 << 10, 1 << 20}
	threads := []int{1, 2, 4, 6}
	r, err := InterferenceGrid(b, sizes, threads)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IPC) != len(sizes) || len(r.IPC[0]) != len(threads) {
		t.Fatalf("grid shape %dx%d, want %dx%d", len(r.IPC), len(r.IPC[0]), len(sizes), len(threads))
	}
	for si := range sizes {
		for ti := range threads {
			if r.IPC[si][ti] <= 0 {
				t.Errorf("L2=%d t=%d: non-positive IPC", sizes[si], threads[ti])
			}
			if r.L2Miss[si][ti] < 0 || r.L2Miss[si][ti] > 1 {
				t.Errorf("L2=%d t=%d: miss ratio %f out of range", sizes[si], threads[ti], r.L2Miss[si][ti])
			}
		}
	}
	for _, want := range []string{"L2 miss", "64KB", "1024KB", "mem-bus"} {
		if !strings.Contains(r.Table(), want) {
			t.Errorf("table missing %q", want)
		}
	}
	if quant() {
		small, large := 0, 1
		lastT := len(threads) - 1
		// One context cannot interfere with itself: at a single thread
		// the L2 capacity barely matters (both runs are compulsory-miss
		// dominated over this budget).
		if d := r.L2Miss[small][0] - r.L2Miss[large][0]; d > 0.1 || d < -0.1 {
			t.Errorf("1-thread miss ratios differ by %.3f across capacities (%.3f vs %.3f)",
				d, r.L2Miss[small][0], r.L2Miss[large][0])
		}
		// The interference signature: at six contexts the small L2's
		// per-thread miss ratio is far above the large one's.
		gap := r.L2Miss[small][lastT] - r.L2Miss[large][lastT]
		if gap < 0.2 {
			t.Errorf("6-thread capacity gap %.3f, want > 0.2 (small %.3f, large %.3f)",
				gap, r.L2Miss[small][lastT], r.L2Miss[large][lastT])
		}
		// At the small capacity the miss ratio climbs as contexts are
		// added (from 2 contexts on: the 1-thread point is cold-start
		// dominated); at the large one it never climbs comparably.
		for ti := 2; ti <= lastT; ti++ {
			if r.L2Miss[small][ti] <= r.L2Miss[small][ti-1] {
				t.Errorf("small L2 miss ratio not rising: t=%d %.3f <= t=%d %.3f",
					threads[ti], r.L2Miss[small][ti], threads[ti-1], r.L2Miss[small][ti-1])
			}
		}
		if rise := r.L2Miss[large][lastT] - r.L2Miss[large][1]; rise > 0.1 {
			t.Errorf("large L2 miss ratio rose %.3f from 2 to %d contexts, want flat",
				rise, threads[lastT])
		}
		// Interference costs throughput: the roomy L2 outruns the tiny
		// one at full occupancy.
		if r.IPC[large][lastT] <= r.IPC[small][lastT] {
			t.Errorf("6-thread IPC %.2f (1MB) not above %.2f (64KB)",
				r.IPC[large][lastT], r.IPC[small][lastT])
		}
		// Contention shows on the memory bus too.
		if r.MemBus[small][lastT] <= r.MemBus[large][lastT] {
			t.Errorf("6-thread memory-bus utilization %.2f (64KB) not above %.2f (1MB)",
				r.MemBus[small][lastT], r.MemBus[large][lastT])
		}
	}
}
