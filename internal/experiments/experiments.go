// Package experiments regenerates every figure in the paper's evaluation
// (Figures 1, 3, 4 and 5 — the paper has no numbered tables; Figure 2 is
// the parameter table, reproduced by config.Figure2) plus the ablation
// studies DESIGN.md calls out.
//
// Each experiment is a deterministic sweep of independent simulation runs;
// the runs execute concurrently on the host's cores, but every run is
// itself single-threaded and seeded, so results are bit-reproducible.
// Formatting helpers print the same rows/series the paper plots.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Budget controls the instruction budgets of every run in a sweep.
type Budget struct {
	// WarmupPerThread and MeasurePerThread are per-hardware-context
	// instruction counts: a run with T threads warms up T×WarmupPerThread
	// and measures T×MeasurePerThread graduated instructions.
	WarmupPerThread  int64
	MeasurePerThread int64
	// SegmentLen overrides the mix rotation length (0 = default).
	SegmentLen int64
	// Seed perturbs the workloads.
	Seed uint64
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultBudget is sized for figure-quality sweeps: large enough for
// steady state, small enough to regenerate every figure in minutes.
func DefaultBudget() Budget {
	return Budget{WarmupPerThread: 150_000, MeasurePerThread: 500_000}
}

// QuickBudget is sized for tests.
func QuickBudget() Budget {
	return Budget{WarmupPerThread: 20_000, MeasurePerThread: 60_000}
}

func (b Budget) parallelism() int {
	if b.Parallelism > 0 {
		return b.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// run executes one simulation with budgets scaled by the thread count.
func (b Budget) run(m config.Machine, sources []trace.Reader) (stats.Report, error) {
	t := int64(m.Threads)
	res, err := sim.Run(sim.Options{
		Machine:      m,
		Sources:      sources,
		WarmupInsts:  b.WarmupPerThread * t,
		MeasureInsts: b.MeasurePerThread * t,
	})
	if err != nil {
		return stats.Report{}, err
	}
	if !res.Completed {
		return res.Report, fmt.Errorf("experiments: run (threads=%d, L2=%d) hit the cycle cap",
			m.Threads, m.Mem.L2Latency)
	}
	return res.Report, nil
}

// runMix executes one simulation on the paper's per-thread benchmark
// mixes.
func (b Budget) runMix(m config.Machine) (stats.Report, error) {
	return b.run(m, workload.MixSources(m.Threads, workload.MixOpts{
		SegmentLen: b.SegmentLen,
		Seed:       b.Seed,
	}))
}

// runBench executes one simulation of a single named benchmark.
func (b Budget) runBench(m config.Machine, bench workload.Benchmark) (stats.Report, error) {
	sources := make([]trace.Reader, m.Threads)
	for t := 0; t < m.Threads; t++ {
		sources[t] = bench.NewReader(workload.ReaderOpts{
			AddrOffset: workload.ThreadAddrOffset(t),
			Seed:       b.Seed + uint64(t),
		})
	}
	return b.run(m, sources)
}

// parallel executes n jobs concurrently, preserving index order of
// results. The first error aborts the batch result.
func parallel(n, workers int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
		mu   sync.Mutex
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if e := job(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return err
}

// PaperLatencies is the L2 sweep of Figures 1 and 4.
var PaperLatencies = []int64{1, 16, 32, 64, 128, 256}

// ----------------------------------------------------------------------------
// Table formatting.

// formatTable renders a fixed-width text table.
func formatTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
