// Package experiments regenerates every figure in the paper's evaluation
// (Figures 1, 3, 4 and 5 — the paper has no numbered tables; Figure 2 is
// the parameter table, reproduced by config.Figure2) plus the ablation
// studies DESIGN.md calls out.
//
// Each experiment is a deterministic sweep of independent simulation
// runs, described as runner.Jobs and executed by the internal/runner
// batch engine: the runs execute concurrently on the host's cores, every
// run is itself single-threaded and seeded (so results are
// bit-reproducible), and points shared between figures — or re-run after
// a crash, with an on-disk cache — are simulated once and served from
// the result cache afterwards. Formatting helpers print the same
// rows/series the paper plots.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Budget controls the instruction budgets of every run in a sweep and
// how the sweep executes.
type Budget struct {
	// WarmupPerThread and MeasurePerThread are per-hardware-context
	// instruction counts: a run with T threads warms up T×WarmupPerThread
	// and measures T×MeasurePerThread graduated instructions.
	WarmupPerThread  int64
	MeasurePerThread int64
	// SegmentLen overrides the mix rotation length (0 = default).
	SegmentLen int64
	// Seed perturbs the workloads.
	Seed uint64
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS). Ignored when
	// Runner is set (the runner's own worker count governs).
	Parallelism int
	// Runner executes the sweep's jobs. Sharing one runner across
	// figures lets them reuse each other's points (fig3 and fig5 sweep
	// the same L2=16 thread axis) and, with a cache directory, resume
	// interrupted sweeps. When nil, each sweep uses a private in-memory
	// runner.
	Runner *runner.Runner
	// Ctx cancels the sweep: in-flight simulations abort promptly and
	// remaining points fail with the context's error (nil =
	// context.Background()). With a cache directory, completed points
	// are already durable, so a cancelled sweep resumes where it
	// stopped.
	Ctx context.Context
}

// ctx returns the sweep context.
func (b Budget) ctx() context.Context {
	if b.Ctx != nil {
		return b.Ctx
	}
	return context.Background()
}

// DefaultBudget is sized for figure-quality sweeps: large enough for
// steady state, small enough to regenerate every figure in minutes.
func DefaultBudget() Budget {
	return Budget{WarmupPerThread: 150_000, MeasurePerThread: 500_000}
}

// QuickBudget is sized for tests.
func QuickBudget() Budget {
	return Budget{WarmupPerThread: 20_000, MeasurePerThread: 60_000}
}

// ShortBudget is sized for CI (`go test -short`): every sweep still
// exercises its full grid, but with budgets too small for the paper's
// quantitative invariants — tests assert only structure in short mode.
func ShortBudget() Budget {
	return Budget{WarmupPerThread: 2_000, MeasurePerThread: 8_000}
}

func (b Budget) parallelism() int {
	if b.Parallelism > 0 {
		return b.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// totals converts the per-thread budget into a job's machine-wide
// instruction totals.
func (b Budget) totals(threads int) runner.Budget {
	t := int64(threads)
	return runner.Budget{
		WarmupInsts:  b.WarmupPerThread * t,
		MeasureInsts: b.MeasurePerThread * t,
	}
}

// mixJob describes one simulation of the paper's per-thread benchmark
// mixes on machine m.
func (b Budget) mixJob(key string, m config.Machine) runner.Job {
	return runner.Job{
		Key:      key,
		Machine:  m,
		Workload: runner.MixWorkload(b.Seed, b.SegmentLen),
		Budget:   b.totals(m.TotalContexts()),
	}
}

// benchJob describes one simulation of a single named benchmark.
func (b Budget) benchJob(key string, m config.Machine, bench string) runner.Job {
	return runner.Job{
		Key:      key,
		Machine:  m,
		Workload: runner.BenchWorkload(bench, b.Seed),
		Budget:   b.totals(m.TotalContexts()),
	}
}

// sweep executes a figure's jobs on the budget's runner (or a private
// one) and returns the reports in job order. Every job runs even when
// some fail; the returned error aggregates all failures.
func (b Budget) sweep(jobs []runner.Job) ([]stats.Report, error) {
	r := b.Runner
	if r == nil {
		var err error
		r, err = runner.New(runner.Options{Workers: b.parallelism()})
		if err != nil {
			return nil, err
		}
	}
	results, err := r.RunContext(b.ctx(), jobs)
	if err != nil {
		return nil, err
	}
	return runner.Reports(results), nil
}

// PaperLatencies is the L2 sweep of Figures 1 and 4.
var PaperLatencies = []int64{1, 16, 32, 64, 128, 256}

// ----------------------------------------------------------------------------
// Table formatting.

// formatTable renders a fixed-width text table.
func formatTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
