package experiments

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/runner"
)

// This file implements the ablation studies DESIGN.md calls out (A1–A6):
// design choices the paper fixes (or defers to future work) whose impact
// the harness quantifies on the 4-thread Figure-2 machine with the
// benchmark mixes.

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label   string
	IPC     float64
	BusUtil float64
	// Perceived is the combined perceived load-miss latency.
	Perceived float64
}

// AblationResult is a labelled sweep.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Table renders the sweep.
func (r *AblationResult) Table() string {
	header := []string{"config", "IPC", "bus-util", "perceived"}
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Label, f2(row.IPC), pct(row.BusUtil), f1(row.Perceived)}
	}
	return formatTable(r.Title, header, rows)
}

// runAblation executes one machine per label.
func runAblation(b Budget, title string, labels []string, machines []config.Machine) (*AblationResult, error) {
	r := &AblationResult{Title: title, Rows: make([]AblationRow, len(machines))}
	jobs := make([]runner.Job, len(machines))
	for i, m := range machines {
		jobs[i] = b.mixJob(fmt.Sprintf("%s [%s]", title, labels[i]), m)
	}
	reps, err := b.sweep(jobs)
	if err != nil {
		return nil, err
	}
	for i, rep := range reps {
		r.Rows[i] = AblationRow{
			Label:     labels[i],
			IPC:       rep.IPC(),
			BusUtil:   rep.BusUtilization,
			Perceived: rep.Perceived().Mean(),
		}
	}
	return r, nil
}

// AblationUnitWidths quantifies the paper's deferred idea (§3.1): the AP
// saturates before the EP because of the instruction-mix imbalance, so a
// wider AP should raise the effective peak.
func AblationUnitWidths(b Budget) (*AblationResult, error) {
	shapes := []struct {
		ap, ep int
	}{{4, 4}, {5, 3}, {6, 4}, {4, 6}, {6, 6}}
	var labels []string
	var machines []config.Machine
	for _, s := range shapes {
		m := config.Figure2(4)
		m.APWidth, m.EPWidth = s.ap, s.ep
		labels = append(labels, fmt.Sprintf("AP=%d EP=%d", s.ap, s.ep))
		machines = append(machines, m)
	}
	return runAblation(b, "Ablation A1: per-unit issue widths (4 threads, L2=16)", labels, machines)
}

// AblationFetchPolicy compares ICOUNT with plain round-robin fetch.
func AblationFetchPolicy(b Budget) (*AblationResult, error) {
	icount := config.Figure2(4)
	rr := config.Figure2(4)
	rr.FetchPolicy = config.FetchRoundRobin
	return runAblation(b, "Ablation A2: fetch policy (4 threads, L2=16)",
		[]string{"ICOUNT", "round-robin"},
		[]config.Machine{icount, rr})
}

// AblationAssoc sweeps L1 associativity (the paper's cache is
// direct-mapped; higher ways cut the cross-thread conflicts that grow
// with context count).
func AblationAssoc(b Budget) (*AblationResult, error) {
	var labels []string
	var machines []config.Machine
	for _, assoc := range []int{1, 2, 4} {
		m := config.Figure2(4)
		m.Mem.L1.Assoc = assoc
		labels = append(labels, fmt.Sprintf("%d-way", assoc))
		machines = append(machines, m)
	}
	return runAblation(b, "Ablation A3: L1 associativity (4 threads, L2=16)", labels, machines)
}

// AblationForwarding toggles SAQ store→load forwarding (the paper's SAQ
// only lets loads bypass non-conflicting stores).
func AblationForwarding(b Budget) (*AblationResult, error) {
	off := config.Figure2(4)
	on := config.Figure2(4)
	on.StoreForwarding = true
	return runAblation(b, "Ablation A4: SAQ store-to-load forwarding (4 threads, L2=16)",
		[]string{"bypass only (paper)", "forwarding"},
		[]config.Machine{off, on})
}

// AblationMemory sweeps MSHR count and bus width around the Figure-2
// design point.
func AblationMemory(b Budget) (*AblationResult, error) {
	var labels []string
	var machines []config.Machine
	for _, mshrs := range []int{4, 8, 16, 32} {
		m := config.Figure2(4).WithL2Latency(64)
		m.MSHRsPerThread = mshrs
		labels = append(labels, fmt.Sprintf("MSHRs/thread=%d bus=16B", mshrs))
		machines = append(machines, m)
	}
	for _, busB := range []int{8, 32} {
		m := config.Figure2(4).WithL2Latency(64)
		m.Mem.BusBytesPerCycle = busB
		labels = append(labels, fmt.Sprintf("MSHRs/thread=16 bus=%dB", busB))
		machines = append(machines, m)
	}
	return runAblation(b, "Ablation A5: memory-system sizing (4 threads, L2=64)", labels, machines)
}

// AblationPolicies compares the paper's round-robin issue priority with
// oldest-first, and the 2-bit BHT with gshare and static predictors.
func AblationPolicies(b Budget) (*AblationResult, error) {
	var labels []string
	var machines []config.Machine

	rr := config.Figure2(4)
	labels = append(labels, "issue=RR pred=BHT (paper)")
	machines = append(machines, rr)

	oldest := config.Figure2(4)
	oldest.IssuePolicy = config.IssueOldestFirst
	labels = append(labels, "issue=oldest pred=BHT")
	machines = append(machines, oldest)

	for _, kind := range []branch.Kind{branch.KindGshare, branch.KindTaken, branch.KindNotTaken} {
		m := config.Figure2(4)
		m.Predictor = kind
		labels = append(labels, fmt.Sprintf("issue=RR pred=%s", kind))
		machines = append(machines, m)
	}
	return runAblation(b, "Ablation A7: issue priority and branch predictor (4 threads, L2=16)", labels, machines)
}

// AblationScaling contrasts fixed Figure-2 queue/MSHR sizes with the
// latency-proportional scaling rule at a large L2 latency — the
// interpretation difference discussed in DESIGN.md.
func AblationScaling(b Budget) (*AblationResult, error) {
	fixed := config.Figure2(4).WithL2Latency(256)
	scaled := config.Figure2(4).WithL2Latency(256)
	scaled.ScaleWithLatency = true
	return runAblation(b, "Ablation A6: fixed vs latency-scaled buffering (4 threads, L2=256)",
		[]string{"fixed Figure-2 sizes", "scaled (Section-2 rule)"},
		[]config.Machine{fixed, scaled})
}
