package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/runner"
)

// This file implements the shared-L2 interference study (ablation I1),
// the first experiment built on the composable memory hierarchy: the
// Figure-2 machine with its infinite flat L2 replaced by a finite shared
// L2 over DRAM, swept across hardware contexts at several L2 capacities.
// It reproduces the structure of thread-coupling-through-a-shared-cache
// studies (Desai 2023): every context runs its own working set, so as
// contexts are added the per-thread L2 miss ratio climbs at small
// capacities — the threads evict each other — and flattens once the
// cache is large enough to hold the combined working sets.

// InterferenceThreads is the context-count axis (the Figure-3 axis).
var InterferenceThreads = []int{1, 2, 3, 4, 5, 6}

// InterferenceL2Sizes is the canonical L2-capacity axis: an L2 no larger
// than the L1 (pure conflict territory), a middling capacity, and one
// roomy enough that the miss curve flattens.
var InterferenceL2Sizes = []int{64 << 10, 256 << 10, 1 << 20}

// InterferenceDRAMLatency is the fixed DRAM latency behind the L2.
const InterferenceDRAMLatency = 64

// interferenceMachine builds the study's machine: Figure-2 with a
// finite shared L2 (8-way, Figure-2-flavoured defaults) of the given
// capacity, backed by DRAM.
func interferenceMachine(threads, l2Size int) config.Machine {
	return config.Figure2(threads).WithHierarchy(InterferenceDRAMLatency, config.SharedL2(l2Size, 8))
}

// InterferenceResult is the sweep grid: rows are L2 sizes, columns are
// context counts.
type InterferenceResult struct {
	// Sizes is the L2 capacity axis in bytes.
	Sizes []int
	// Threads is the context-count axis.
	Threads []int
	// IPC[s][t] is machine throughput.
	IPC [][]float64
	// L2Miss[s][t] is the per-thread L2 miss ratio (primary misses per
	// accepted L2 access — the miss ratio each thread experiences at the
	// shared level).
	L2Miss [][]float64
	// MemBus[s][t] is the L2↔memory bus utilization.
	MemBus [][]float64
}

// Interference runs the canonical grid.
func Interference(b Budget) (*InterferenceResult, error) {
	return InterferenceGrid(b, InterferenceL2Sizes, InterferenceThreads)
}

// InterferenceGrid runs the study over a caller-chosen grid (tests trim
// it; the canonical axes make the committed figure).
func InterferenceGrid(b Budget, sizes []int, threads []int) (*InterferenceResult, error) {
	r := &InterferenceResult{
		Sizes:   sizes,
		Threads: threads,
		IPC:     make([][]float64, len(sizes)),
		L2Miss:  make([][]float64, len(sizes)),
		MemBus:  make([][]float64, len(sizes)),
	}
	var jobs []runner.Job
	for _, size := range sizes {
		for _, t := range threads {
			jobs = append(jobs, b.mixJob(
				fmt.Sprintf("interference L2=%dKB threads=%d", size>>10, t),
				interferenceMachine(t, size)))
		}
	}
	reps, err := b.sweep(jobs)
	if err != nil {
		return nil, err
	}
	for si := range sizes {
		r.IPC[si] = make([]float64, len(threads))
		r.L2Miss[si] = make([]float64, len(threads))
		r.MemBus[si] = make([]float64, len(threads))
		for ti := range threads {
			rep := reps[si*len(threads)+ti]
			r.IPC[si][ti] = rep.IPC()
			if len(rep.MemLevels) > 0 {
				r.L2Miss[si][ti] = rep.MemLevels[0].MissRatio()
				r.MemBus[si][ti] = rep.MemLevels[0].BusUtilization
			}
		}
	}
	return r, nil
}

// Table renders the grid: one row per (L2 size, metric) pair across the
// context axis.
func (r *InterferenceResult) Table() string {
	header := []string{"L2 size", "metric"}
	for _, t := range r.Threads {
		header = append(header, fmt.Sprintf("%dT", t))
	}
	var rows [][]string
	for si, size := range r.Sizes {
		label := fmt.Sprintf("%dKB", size>>10)
		ipc := []string{label, "IPC"}
		miss := []string{"", "L2 miss"}
		bus := []string{"", "mem-bus"}
		for ti := range r.Threads {
			ipc = append(ipc, f2(r.IPC[si][ti]))
			miss = append(miss, pct(r.L2Miss[si][ti]))
			bus = append(bus, pct(r.MemBus[si][ti]))
		}
		rows = append(rows, ipc, miss, bus)
	}
	return formatTable(
		"Ablation I1: shared-L2 interference — IPC and per-thread L2 miss ratio vs contexts (finite L2 + DRAM)",
		header, rows)
}
