// Package runner is the batch sweep engine behind the repository's
// figure regeneration and ablation studies: a deterministic worker-pool
// scheduler with content-addressed result caching.
//
// Every simulation point is described by a Job — a pure-data triple of
// (machine configuration, workload spec, instruction budget) — and
// identified by a canonical hash of that triple. The runner executes
// batches of jobs across a bounded worker pool and consults a two-level
// result cache first: repeated points within a process (two figures
// sweeping the same configuration) are simulated once, and with an
// on-disk cache directory, re-runs across processes skip every point
// that already completed. Because each result is persisted the moment
// its simulation finishes, a long sweep that crashes or is cancelled
// resumes from where it stopped: re-running the same batch recomputes
// only the missing points.
//
// Unlike the ad-hoc helper it replaces, the runner never aborts a batch
// on the first failure: every job runs, partial results are collected,
// and all failures come back aggregated in a single *BatchError.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures a Runner.
type Options struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS). The bound
	// is global: concurrent batches (and single-job runs) share one
	// semaphore, so a Runner embedded in a long-lived service never
	// exceeds it no matter how many callers overlap.
	Workers int
	// Parallel, when > 1, lets each eligible job (a multi-core CMP on a
	// generator workload) run its cores on up to Parallel goroutines in
	// deterministic epochs. Intra-run workers are budgeted from the SAME
	// semaphore as cross-job concurrency: a job grabs up to
	// min(cores, Parallel)-1 extra slots without blocking (on top of the
	// slot it already holds) and falls back to serial execution when none
	// are free, so Workers stays the one global simulation bound whether
	// the parallelism lands across jobs or inside one. Results are
	// bit-identical either way (the epoch barrier replays serial order),
	// so the knob never affects hashes or caching.
	Parallel int
	// CacheDir enables the on-disk result cache tier ("" = in-memory
	// only). The directory is created if missing.
	CacheDir string
	// OnProgress, when set, is called after every job completes
	// (including cache hits and failures). Calls are serialized and
	// Done is monotonic; keep the callback fast — it runs under the
	// batch's bookkeeping lock.
	OnProgress func(Progress)
	// OnSnapshot, when set, receives periodic in-run progress snapshots
	// from every executing simulation (cache hits produce none). Calls
	// may arrive concurrently from different workers; keep the callback
	// fast and synchronize any shared state it touches.
	OnSnapshot func(Snapshot)
	// SnapshotEvery is the in-run snapshot cadence in graduated
	// instructions (<= 0 applies the sim default). Ignored without
	// OnSnapshot.
	SnapshotEvery int64
}

// Snapshot is an in-run progress report: one executing job's identity
// plus the simulator's point-in-time counters.
type Snapshot struct {
	// Job is the executing job and Hash its canonical content hash.
	Job  Job
	Hash string
	// Sim is the simulator's progress snapshot.
	Sim sim.Snapshot
}

// Progress is a structured progress report for one completed job.
type Progress struct {
	// Done and Total describe the batch ("Done of Total finished").
	Done, Total int
	// CacheHits and Failures count within the current batch.
	CacheHits, Failures int
	// Job is the job that just finished.
	Job Job
	// Hash is the job's canonical content hash ("" when validation
	// failed before hashing).
	Hash string
	// Report is the job's result when Err is nil (zero otherwise), so
	// streaming consumers need no second lookup.
	Report stats.Report
	// Cached reports whether Job was served from the cache.
	Cached bool
	// Err is Job's failure, if any.
	Err error
}

// Result is one job's outcome. A batch's results always align with its
// jobs slice: results[i] belongs to jobs[i].
type Result struct {
	Job Job
	// Hash is the job's canonical content hash ("" when validation
	// failed before hashing).
	Hash string
	// Report is valid when Err is nil.
	Report stats.Report
	// Cached reports whether Report came from the cache (memory, disk,
	// or another in-flight worker) rather than a fresh simulation.
	Cached bool
	Err    error
}

// Stats counts a Runner's lifetime activity (across batches).
type Stats struct {
	// Simulated counts jobs that ran a fresh simulation.
	Simulated int64
	// CacheHits counts jobs served from the cache or an in-flight
	// duplicate.
	CacheHits int64
	// Failures counts jobs that returned an error.
	Failures int64
	// CacheWriteErrors counts disk-cache writes that failed. A failed
	// write never fails the job — the result is still returned and kept
	// in memory — but a non-zero count means re-runs will recompute.
	CacheWriteErrors int64
}

// call tracks an in-flight computation so concurrent duplicates of the
// same point wait for the first worker instead of re-simulating.
type call struct {
	done chan struct{}
	rep  stats.Report
	err  error
}

// Runner schedules batches of simulation jobs. It is safe for
// concurrent use; the cache, the in-flight deduplication table and the
// worker semaphore are shared across batches.
type Runner struct {
	workers    int
	parallel   int
	cache      *cache
	onProgress func(Progress)
	onSnapshot func(Snapshot)
	snapEvery  int64
	// sem is the global simulation semaphore: every fresh simulation
	// (never a cache hit) holds one slot for its duration, bounding
	// concurrency across overlapping batches.
	sem chan struct{}

	mu       sync.Mutex
	inflight map[string]*call
	stats    Stats
	// hashes records, per job hash, the content hash of the result this
	// runner produced or served (see WriteHashes — the determinism gate).
	hashes map[string]resultHash
}

// New builds a Runner.
func New(opts Options) (*Runner, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c, err := newCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	return &Runner{
		workers:    workers,
		parallel:   opts.Parallel,
		cache:      c,
		onProgress: opts.OnProgress,
		onSnapshot: opts.OnSnapshot,
		snapEvery:  opts.SnapshotEvery,
		sem:        make(chan struct{}, workers),
		inflight:   make(map[string]*call),
	}, nil
}

// Stats returns a snapshot of the runner's lifetime counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Run executes a batch. See RunContext.
func (r *Runner) Run(jobs []Job) ([]Result, error) {
	return r.RunContext(context.Background(), jobs)
}

// RunContext executes every job of a batch across the worker pool and
// returns one Result per job, in job order. Failures never abort the
// batch: the remaining jobs still run, their results are collected, and
// the returned error (a *BatchError, nil when everything succeeded)
// aggregates every failure. Cancelling the context stops dispatching
// new jobs, aborts already-running simulations promptly (aborted runs
// are not cached), and fails undispatched jobs with the context's
// error; results completed before the cancellation are kept.
func (r *Runner) RunContext(ctx context.Context, jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	workers := r.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		batchMu  sync.Mutex
		done     int
		hits     int
		failures int
	)
	finish := func(i int, res Result) {
		results[i] = res
		batchMu.Lock()
		done++
		if res.Cached {
			hits++
		}
		if res.Err != nil {
			failures++
		}
		// The callback runs under the same lock as the counters so the
		// reported Done sequence is monotonic.
		if r.onProgress != nil {
			r.onProgress(Progress{
				Done: done, Total: len(jobs),
				CacheHits: hits, Failures: failures,
				Job: res.Job, Hash: res.Hash, Report: res.Report,
				Cached: res.Cached, Err: res.Err,
			})
		}
		batchMu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				finish(i, r.runJob(ctx, jobs[i]))
			}
		}()
	}

	cancelled := -1
dispatch:
	for i := range jobs {
		select {
		case <-ctx.Done():
			cancelled = i
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()

	if cancelled >= 0 {
		for i := cancelled; i < len(jobs); i++ {
			// Workers may have consumed indexes past the cancellation
			// point before it hit; only mark truly undispatched jobs.
			if results[i].Err == nil && results[i].Hash == "" {
				err := fmt.Errorf("runner: job %q: %w", jobs[i].Key, ctx.Err())
				r.mu.Lock()
				r.stats.Failures++
				r.mu.Unlock()
				finish(i, Result{Job: jobs[i], Err: err})
			}
		}
	}

	var batchErr *BatchError
	for _, res := range results {
		if res.Err != nil {
			if batchErr == nil {
				batchErr = &BatchError{Total: len(jobs)}
			}
			batchErr.Errors = append(batchErr.Errors, res.Err)
		}
	}
	if batchErr != nil {
		return results, batchErr
	}
	return results, nil
}

// runJob resolves one job: validation, cache lookup, in-flight
// deduplication, then a fresh simulation under the global semaphore.
func (r *Runner) runJob(ctx context.Context, j Job) Result {
	if err := j.Validate(); err != nil {
		r.mu.Lock()
		r.stats.Failures++
		r.mu.Unlock()
		return Result{Job: j, Err: err}
	}
	h := j.Hash()
	for {
		if rep, ok := r.cache.get(h); ok {
			r.mu.Lock()
			r.stats.CacheHits++
			r.mu.Unlock()
			r.recordHash(h, j.Key, rep)
			return Result{Job: j, Hash: h, Report: rep, Cached: true}
		}

		r.mu.Lock()
		if c, ok := r.inflight[h]; ok {
			r.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				r.mu.Lock()
				r.stats.Failures++
				r.mu.Unlock()
				return Result{Job: j, Hash: h, Err: fmt.Errorf("runner: job %q: %w", j.Key, ctx.Err())}
			}
			if c.err != nil && ctx.Err() == nil &&
				(errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				// The owning caller was cancelled or timed out, not us: its
				// abort says nothing about this job's result. Loop and
				// recompute.
				continue
			}
			res := Result{Job: j, Hash: h, Report: c.rep, Cached: true, Err: c.err}
			r.mu.Lock()
			if c.err != nil {
				r.stats.Failures++
			} else {
				r.stats.CacheHits++
			}
			r.mu.Unlock()
			if c.err == nil {
				r.recordHash(h, j.Key, c.rep)
			}
			return res
		}
		// Re-check under the lock: a duplicate may have completed (and
		// deregistered) between the miss above and here, in which case its
		// result is in the memory tier now.
		if rep, ok := r.cache.get(h); ok {
			r.stats.CacheHits++
			r.mu.Unlock()
			r.recordHash(h, j.Key, rep)
			return Result{Job: j, Hash: h, Report: rep, Cached: true}
		}
		c := &call{done: make(chan struct{})}
		r.inflight[h] = c
		r.mu.Unlock()

		// This caller owns the computation. Waiting for a semaphore slot
		// still observes cancellation, but once registered the call MUST
		// resolve (close done, deregister) or duplicates would hang.
		var (
			rep stats.Report
			err error
		)
		select {
		case r.sem <- struct{}{}:
			var snap func(sim.Snapshot)
			if r.onSnapshot != nil {
				snap = func(s sim.Snapshot) { r.onSnapshot(Snapshot{Job: j, Hash: h, Sim: s}) }
			}
			// Intra-run parallelism shares the same budget as cross-job
			// concurrency: top up the slot this worker already holds with
			// whatever is free right now, serial when nothing is.
			run := j
			extras := r.grabIntraSlots(j)
			if extras > 0 {
				run.Parallel = 1 + extras
			}
			rep, err = run.Execute(ctx, snap, r.snapEvery)
			r.releaseSlots(extras)
			<-r.sem
		case <-ctx.Done():
			err = fmt.Errorf("runner: job %q: %w", j.Key, ctx.Err())
		}
		var writeErr error
		if err == nil {
			writeErr = r.cache.put(h, j.Key, rep)
		}
		c.rep, c.err = rep, err
		close(c.done)

		r.mu.Lock()
		delete(r.inflight, h)
		if err != nil {
			r.stats.Failures++
		} else {
			r.stats.Simulated++
			if writeErr != nil {
				r.stats.CacheWriteErrors++
			}
		}
		r.mu.Unlock()
		if err == nil {
			r.recordHash(h, j.Key, rep)
		}
		return Result{Job: j, Hash: h, Report: rep, Err: err}
	}
}

// grabIntraSlots sizes a job's epoch-parallel worker pool from the
// shared semaphore: for an eligible job it acquires, without blocking,
// up to min(cores, Options.Parallel)-1 extra slots beyond the one the
// calling worker already holds, and returns how many it got (0 = run
// serially). Non-blocking acquisition cannot deadlock — a job never
// waits for slots held by other jobs — and keeps the global Workers
// bound exact: every concurrently running goroutine, across and within
// jobs, holds one slot.
func (r *Runner) grabIntraSlots(j Job) int {
	if r.parallel < 2 || j.Parallel != 0 {
		return 0
	}
	m := j.Machine.Effective()
	if m.CoreCount() < 2 || j.Workload.Kind == KindTrace {
		return 0
	}
	want := m.CoreCount()
	if want > r.parallel {
		want = r.parallel
	}
	got := 0
	for got < want-1 {
		select {
		case r.sem <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

// releaseSlots returns n extra slots to the semaphore.
func (r *Runner) releaseSlots(n int) {
	for i := 0; i < n; i++ {
		<-r.sem
	}
}

// Lookup returns the cached report for a job content hash, consulting
// the memory tier first and the disk tier second, without scheduling
// anything. It is the read-only path behind GET endpoints that serve
// previously computed results by hash.
func (r *Runner) Lookup(hash string) (stats.Report, bool) {
	return r.cache.get(hash)
}

// DiskEntries reports how many results the on-disk cache tier currently
// holds (0 with no cache directory).
func (r *Runner) DiskEntries() (int, error) {
	return r.cache.diskEntries()
}

// Reports extracts the report slice from a batch's results, preserving
// job order, for callers that fill result grids. It must only be used
// when RunContext returned a nil error.
func Reports(results []Result) []stats.Report {
	reps := make([]stats.Report, len(results))
	for i, res := range results {
		reps[i] = res.Report
	}
	return reps
}
