package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/stats"
)

// cache is the two-level result store: a map serving repeated points
// within a process, and an optional directory of one JSON file per job
// hash serving re-runs across processes (which is also what makes long
// sweeps resumable — every completed point is durable the moment it
// finishes, so a crashed or cancelled sweep re-runs only its remainder).
type cache struct {
	mu  sync.Mutex
	mem map[string]stats.Report
	dir string
}

// entry is the on-disk format. Hash is stored redundantly so a file
// corrupted by a partial write (or hand-edited) is detected and
// recomputed rather than trusted.
type entry struct {
	Hash string
	// Key records the label of the job that first computed the entry,
	// for humans inspecting the cache directory.
	Key    string
	Report stats.Report
}

func newCache(dir string) (*cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: cache dir: %w", err)
		}
		// Sweep temp files orphaned by a crash between CreateTemp and
		// Rename in put, so interrupted sweeps don't accumulate junk.
		if names, err := os.ReadDir(dir); err == nil {
			for _, de := range names {
				if !de.IsDir() && strings.Contains(de.Name(), ".tmp") {
					os.Remove(filepath.Join(dir, de.Name()))
				}
			}
		}
	}
	return &cache{mem: make(map[string]stats.Report), dir: dir}, nil
}

func (c *cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// get returns the cached report for a hash, consulting memory first and
// the disk tier second. Unreadable or mismatched disk entries are
// treated as misses.
func (c *cache) get(hash string) (stats.Report, bool) {
	c.mu.Lock()
	rep, ok := c.mem[hash]
	c.mu.Unlock()
	if ok {
		return rep, true
	}
	if c.dir == "" {
		return stats.Report{}, false
	}
	rep, ok = LoadEntry(c.dir, hash)
	if !ok {
		return stats.Report{}, false
	}
	c.mu.Lock()
	c.mem[hash] = rep
	c.mu.Unlock()
	return rep, true
}

// LoadEntry reads one on-disk cache entry by content hash straight from
// a cache directory, without a Runner. Unreadable or mismatched entries
// are misses. It is the read-only path behind the fabric's shared result
// store: any process that can see the directory can serve any hash a
// replica has computed.
func LoadEntry(dir, hash string) (stats.Report, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, hash+".json"))
	if err != nil {
		return stats.Report{}, false
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil || e.Hash != hash {
		return stats.Report{}, false
	}
	return e.Report, true
}

// put stores a computed report in both tiers. The disk write goes
// through a rename so a crash mid-write never leaves a half-entry that
// get would have to guess about.
func (c *cache) put(hash, key string, rep stats.Report) error {
	c.mu.Lock()
	c.mem[hash] = rep
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	raw, err := json.MarshalIndent(entry{Hash: hash, Key: key, Report: rep}, "", " ")
	if err != nil {
		return fmt.Errorf("runner: encode cache entry %s: %w", hash, err)
	}
	tmp, err := os.CreateTemp(c.dir, hash+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: write cache entry: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: write cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: write cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: write cache entry: %w", err)
	}
	return nil
}

// diskEntries counts well-formed entries in the disk tier (for tools and
// tests; the hot path never scans the directory).
func (c *cache) diskEntries() (int, error) {
	if c.dir == "" {
		return 0, nil
	}
	names, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, de := range names {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			n++
		}
	}
	return n, nil
}
