package runner

import (
	"fmt"
	"strings"
)

// BatchError aggregates every job failure of a batch. The old
// experiments.parallel helper kept only the first error and silently
// dropped the rest; a sweep of hundreds of points reports all of its
// failures here, in job order.
type BatchError struct {
	// Errors holds one error per failed job, each prefixed with the
	// job's Key.
	Errors []error
	// Total is the batch size, for "3 of 48 points failed" reporting.
	Total int
}

// Error lists every failure, one per line.
func (e *BatchError) Error() string {
	if len(e.Errors) == 1 {
		return fmt.Sprintf("runner: 1 of %d jobs failed: %v", e.Total, e.Errors[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d of %d jobs failed:", len(e.Errors), e.Total)
	for _, err := range e.Errors {
		fmt.Fprintf(&b, "\n  %v", err)
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is / errors.As.
func (e *BatchError) Unwrap() []error { return e.Errors }
