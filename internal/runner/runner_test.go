package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/workload"
)

// testBudget is small enough that a single job runs in milliseconds but
// still graduates through warm-up and measurement windows.
func testBudget() Budget {
	return Budget{WarmupInsts: 500, MeasureInsts: 2_000}
}

// mixJob builds a quick mix job on an n-thread Figure-2 machine.
func mixJob(key string, threads int, seed uint64) Job {
	return Job{
		Key:      key,
		Machine:  config.Figure2(threads),
		Workload: MixWorkload(seed, 0),
		Budget:   testBudget(),
	}
}

// benchJob builds a quick single-benchmark job.
func benchJob(key, bench string, l2 int64) Job {
	return Job{
		Key:      key,
		Machine:  config.Figure2(1).WithL2Latency(l2),
		Workload: BenchWorkload(bench, 0),
		Budget:   testBudget(),
	}
}

func testJobs() []Job {
	return []Job{
		mixJob("mix-1t", 1, 0),
		mixJob("mix-2t", 2, 0),
		benchJob("swim-16", "swim", 16),
		benchJob("swim-64", "swim", 64),
	}
}

func mustRunner(t *testing.T, opts Options) *Runner {
	t.Helper()
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHashIgnoresKeyAndSeparatesContent(t *testing.T) {
	a := mixJob("fig3 threads=1", 1, 0)
	b := mixJob("fig5 threads=1 L2=16", 1, 0)
	if a.Hash() != b.Hash() {
		t.Error("hash depends on the human-readable key")
	}
	for name, other := range map[string]Job{
		"seed":    mixJob("x", 1, 7),
		"threads": mixJob("x", 2, 0),
		"bench":   benchJob("x", "swim", 16),
		"budget": {Key: "x", Machine: config.Figure2(1),
			Workload: MixWorkload(0, 0), Budget: Budget{WarmupInsts: 500, MeasureInsts: 2_001}},
	} {
		if other.Hash() == a.Hash() {
			t.Errorf("%s change did not change the hash", name)
		}
	}
	m := config.Figure2(1)
	m.Mem.L2Latency = 17
	diff := Job{Key: "x", Machine: m, Workload: MixWorkload(0, 0), Budget: testBudget()}
	if diff.Hash() == a.Hash() {
		t.Error("machine change did not change the hash")
	}
}

func TestSecondRunHitsCacheAndIsIdentical(t *testing.T) {
	r := mustRunner(t, Options{Workers: 4})
	jobs := testJobs()
	first, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Simulated; got != int64(len(jobs)) {
		t.Fatalf("first run simulated %d jobs, want %d", got, len(jobs))
	}
	second, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Simulated; got != int64(len(jobs)) {
		t.Fatalf("second run performed %d new simulations, want 0", got-int64(len(jobs)))
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("job %q not served from cache on re-run", second[i].Job.Key)
		}
		if !reflect.DeepEqual(first[i].Report, second[i].Report) {
			t.Errorf("job %q: cached report differs from computed report", second[i].Job.Key)
		}
	}
}

func TestCachedAndUncachedReportsBitIdentical(t *testing.T) {
	jobs := testJobs()
	// Uncached reference: a fresh runner per run.
	ref, err := mustRunner(t, Options{Workers: 2}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Cached path: a disk-backed runner, run twice, then a second
	// disk-backed runner reading the first one's entries.
	dir := t.TempDir()
	warm := mustRunner(t, Options{Workers: 2, CacheDir: dir})
	if _, err := warm.Run(jobs); err != nil {
		t.Fatal(err)
	}
	cold := mustRunner(t, Options{Workers: 2, CacheDir: dir})
	got, err := cold.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sim := cold.Stats().Simulated; sim != 0 {
		t.Fatalf("disk-cached run simulated %d jobs, want 0", sim)
	}
	for i := range jobs {
		want, _ := json.Marshal(ref[i].Report)
		have, _ := json.Marshal(got[i].Report)
		if string(want) != string(have) {
			t.Errorf("job %q: disk round-trip altered the report\nwant %s\nhave %s",
				jobs[i].Key, want, have)
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	jobs := testJobs()
	ref, err := mustRunner(t, Options{Workers: 1}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := mustRunner(t, Options{Workers: 7}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(ref[i].Report, wide[i].Report) {
			t.Errorf("job %q: report depends on the worker count", jobs[i].Key)
		}
	}
}

func TestDuplicatePointsSimulateOnce(t *testing.T) {
	r := mustRunner(t, Options{Workers: 8})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = mixJob(fmt.Sprintf("dup-%d", i), 1, 0) // same point, different keys
	}
	results, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Simulated; got != 1 {
		t.Fatalf("%d simulations for 8 identical points, want 1", got)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0].Report, results[i].Report) {
			t.Fatal("deduplicated results differ")
		}
	}
}

func TestBatchCollectsAllErrorsAndPartialResults(t *testing.T) {
	r := mustRunner(t, Options{Workers: 4})
	bad1 := mixJob("bad-threads", 1, 0)
	bad1.Machine.Threads = 0
	bad2 := benchJob("bad-bench", "no-such-benchmark", 16)
	jobs := []Job{mixJob("good-a", 1, 0), bad1, bad2, mixJob("good-b", 2, 0)}

	results, err := r.Run(jobs)
	if err == nil {
		t.Fatal("batch with invalid jobs returned nil error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BatchError", err)
	}
	if len(be.Errors) != 2 || be.Total != 4 {
		t.Fatalf("BatchError has %d/%d failures, want 2/4", len(be.Errors), be.Total)
	}
	msg := err.Error()
	for _, want := range []string{"bad-threads", "no-such-benchmark"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error missing %q:\n%s", want, msg)
		}
	}
	// The good jobs still produced reports (partial-result collection).
	for _, i := range []int{0, 3} {
		if results[i].Err != nil || results[i].Report.Graduated == 0 {
			t.Errorf("good job %q has no result alongside failures", results[i].Job.Key)
		}
	}
}

func TestCancelledSweepResumesFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{
		mixJob("p0", 1, 0), mixJob("p1", 1, 1), mixJob("p2", 1, 2),
		mixJob("p3", 1, 3), mixJob("p4", 1, 4), mixJob("p5", 1, 5),
	}

	// Cancel the sweep after the second completed point; one worker so
	// the dispatch order is deterministic.
	ctx, cancel := context.WithCancel(context.Background())
	r1, err := New(Options{Workers: 1, CacheDir: dir, OnProgress: func(p Progress) {
		if p.Done == 2 {
			cancel()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.RunContext(ctx, jobs); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	completed := r1.Stats().Simulated
	if completed == 0 || completed == int64(len(jobs)) {
		t.Fatalf("cancelled sweep completed %d of %d points", completed, len(jobs))
	}
	onDisk, err := r1.DiskEntries()
	if err != nil {
		t.Fatal(err)
	}
	if int64(onDisk) != completed {
		t.Fatalf("%d checkpointed entries for %d completed points", onDisk, completed)
	}

	// A fresh process re-runs the same sweep: only the remainder is
	// simulated.
	r2 := mustRunner(t, Options{Workers: 2, CacheDir: dir})
	results, err := r2.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats().Simulated; got != int64(len(jobs))-completed {
		t.Fatalf("resume simulated %d points, want %d", got, int64(len(jobs))-completed)
	}
	for _, res := range results {
		if res.Err != nil || res.Report.Graduated == 0 {
			t.Errorf("job %q missing after resume", res.Job.Key)
		}
	}
}

func TestCorruptedDiskEntryIsRecomputed(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{mixJob("p", 1, 0)}
	r1 := mustRunner(t, Options{CacheDir: dir})
	want, err := r1.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the entry to garbage.
	path := filepath.Join(dir, jobs[0].Hash()+".json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := mustRunner(t, Options{CacheDir: dir})
	got, err := r2.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats().Simulated != 1 {
		t.Fatal("corrupted entry was served instead of recomputed")
	}
	if !reflect.DeepEqual(want[0].Report, got[0].Report) {
		t.Fatal("recomputed report differs")
	}
}

func TestMismatchedHashEntryIsIgnored(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{mixJob("p", 1, 0)}
	r1 := mustRunner(t, Options{CacheDir: dir})
	if _, err := r1.Run(jobs); err != nil {
		t.Fatal(err)
	}
	// Copy the valid entry under a different point's hash — a model of a
	// renamed/aliased file. The embedded hash no longer matches.
	raw, err := os.ReadFile(filepath.Join(dir, jobs[0].Hash()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	other := mixJob("q", 1, 99)
	if err := os.WriteFile(filepath.Join(dir, other.Hash()+".json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := mustRunner(t, Options{CacheDir: dir})
	if _, err := r2.Run([]Job{other}); err != nil {
		t.Fatal(err)
	}
	if r2.Stats().Simulated != 1 {
		t.Fatal("entry with mismatched hash was trusted")
	}
}

func TestOrphanedTempFilesSwept(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, strings.Repeat("ab", 8)+".tmp1234")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs := []Job{mixJob("p", 1, 0)}
	r := mustRunner(t, Options{CacheDir: dir})
	if _, err := r.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned .tmp file survived cache startup")
	}
	if n, _ := r.DiskEntries(); n != 1 {
		t.Errorf("%d disk entries, want 1", n)
	}
}

func TestProgressReporting(t *testing.T) {
	var events []Progress
	r := mustRunner(t, Options{Workers: 2, OnProgress: func(p Progress) {
		events = append(events, p)
	}})
	jobs := testJobs()
	if _, err := r.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("%d progress events for %d jobs", len(events), len(jobs))
	}
	last := events[len(events)-1]
	if last.Done != len(jobs) || last.Total != len(jobs) {
		t.Fatalf("final progress %d/%d, want %d/%d", last.Done, last.Total, len(jobs), len(jobs))
	}
	// Re-run: every event reports a cache hit.
	events = nil
	if _, err := r.Run(jobs); err != nil {
		t.Fatal(err)
	}
	for _, p := range events {
		if !p.Cached {
			t.Errorf("job %q not reported as cached on re-run", p.Job.Key)
		}
	}
	if events[len(events)-1].CacheHits != len(jobs) {
		t.Errorf("final cache-hit count %d, want %d", events[len(events)-1].CacheHits, len(jobs))
	}
}

func TestValidateRejectsBadJobs(t *testing.T) {
	good := mixJob("ok", 1, 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	noBudget := good
	noBudget.Budget.MeasureInsts = 0
	badKind := good
	badKind.Workload.Kind = "interleaved"
	badMachine := good
	badMachine.Machine.Threads = -1
	for name, j := range map[string]Job{
		"budget": noBudget, "kind": badKind, "machine": badMachine,
	} {
		if err := j.Validate(); err == nil {
			t.Errorf("%s: invalid job accepted", name)
		}
	}
}

func TestReportsAlignsWithJobs(t *testing.T) {
	r := mustRunner(t, Options{Workers: 2})
	jobs := []Job{mixJob("a", 1, 0), mixJob("b", 2, 0)}
	results, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	reps := Reports(results)
	if len(reps) != 2 {
		t.Fatalf("%d reports", len(reps))
	}
	if reps[0].Threads != 1 || reps[1].Threads != 2 {
		t.Fatalf("report order does not match job order: %d/%d threads", reps[0].Threads, reps[1].Threads)
	}
}

func TestCancelAbortsRunningSimulationPromptly(t *testing.T) {
	r := mustRunner(t, Options{Workers: 1})
	huge := mixJob("huge", 1, 0)
	huge.Budget = Budget{WarmupInsts: 500, MeasureInsts: 500_000_000}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, err := r.RunContext(ctx, []Job{huge})
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("mid-run cancellation took %v", elapsed)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("job error %v, want context.Canceled", results[0].Err)
	}
	// Aborted simulations must not poison the cache.
	if _, ok := r.Lookup(huge.Hash()); ok {
		t.Fatal("aborted run left a cache entry")
	}
	// The runner stays usable after a cancellation.
	ok := mixJob("ok", 1, 0)
	if _, err := r.Run([]Job{ok}); err != nil {
		t.Fatalf("runner broken after cancellation: %v", err)
	}
}

func TestGlobalSemaphoreBoundsOverlappingBatches(t *testing.T) {
	// A 1-worker runner receiving two concurrent batches may only ever
	// have one simulation in flight; the OnSnapshot stream proves it: no
	// snapshot of one job may arrive between two snapshots of another
	// unless the first job finished in between.
	var mu sync.Mutex
	running := make(map[string]bool)
	peak := 0
	r, err := New(Options{
		Workers:       1,
		SnapshotEvery: 200,
		OnSnapshot: func(s Snapshot) {
			mu.Lock()
			running[s.Job.Key] = true
			mu.Unlock()
		},
		OnProgress: func(p Progress) {
			mu.Lock()
			if n := len(running); n > peak {
				peak = n
			}
			delete(running, p.Job.Key)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for b := 0; b < 3; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			// Distinct seeds so batches cannot dedup onto each other.
			if _, err := r.Run([]Job{mixJob(fmt.Sprintf("b%d", b), 1, uint64(10+b))}); err != nil {
				t.Error(err)
			}
		}(b)
	}
	wg.Wait()
	if peak > 1 {
		t.Fatalf("%d simulations were in flight on a 1-worker runner", peak)
	}
	if got := r.Stats().Simulated; got != 3 {
		t.Fatalf("simulated %d, want 3", got)
	}
}

func TestLookupServesBothTiers(t *testing.T) {
	dir := t.TempDir()
	j := mixJob("p", 1, 0)
	r1 := mustRunner(t, Options{CacheDir: dir})
	if _, ok := r1.Lookup(j.Hash()); ok {
		t.Fatal("lookup hit before anything ran")
	}
	want, err := r1.Run([]Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if rep, ok := r1.Lookup(j.Hash()); !ok || rep.Graduated != want[0].Report.Graduated {
		t.Fatal("memory-tier lookup failed")
	}
	// A fresh runner sees the entry through the disk tier — and lookup
	// never simulates.
	r2 := mustRunner(t, Options{CacheDir: dir})
	if _, ok := r2.Lookup(j.Hash()); !ok {
		t.Fatal("disk-tier lookup failed")
	}
	if r2.Stats().Simulated != 0 {
		t.Fatal("lookup triggered a simulation")
	}
}

func TestCustomWorkloadJobs(t *testing.T) {
	b, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	b.Name = "swim-variant"
	j := Job{
		Key:      "custom",
		Machine:  config.Figure2(1),
		Workload: CustomWorkload(b, 3),
		Budget:   testBudget(),
	}
	if err := j.Validate(); err != nil {
		t.Fatalf("valid custom job rejected: %v", err)
	}
	r := mustRunner(t, Options{})
	results, err := r.Run([]Job{j, j})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().Simulated != 1 {
		t.Error("identical custom jobs not deduplicated")
	}
	if results[0].Report.Graduated == 0 {
		t.Error("custom job produced no work")
	}
	// The equivalent bench job must hash differently (kind + spec are in
	// the hash) even though the generated stream would match.
	bench := Job{Key: "bench", Machine: j.Machine, Workload: BenchWorkload("swim", 3), Budget: j.Budget}
	if bench.Hash() == j.Hash() {
		t.Error("custom and bench jobs share a hash")
	}
	missing := j
	missing.Workload.Custom = nil
	if err := missing.Validate(); err == nil {
		t.Error("custom job without a model accepted")
	}
}

// TestMixBenchHashesUnchangedByCustomField pins the cache schema: adding
// the Custom workload field must not move any existing mix/bench job
// hash (the on-disk sweep caches would all be invalidated).
func TestMixBenchHashesUnchangedByCustomField(t *testing.T) {
	for _, j := range testJobs() {
		raw, err := json.Marshal(j.Workload)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), "Custom") {
			t.Fatalf("nil Custom field leaks into the hash input: %s", raw)
		}
	}
}

// TestWaiterRecomputesAfterOwnerTimeout mirrors the owner-cancelled
// retry for the deadline flavor: a dedup waiter whose owner hit its own
// per-request deadline must recompute under its own context instead of
// inheriting the timeout.
func TestWaiterRecomputesAfterOwnerTimeout(t *testing.T) {
	r := mustRunner(t, Options{Workers: 2})
	j := mixJob("shared", 1, 0)
	j.Budget = Budget{WarmupInsts: 500, MeasureInsts: 500_000_000}

	// Owner: a context that times out almost immediately.
	ownerCtx, cancelOwner := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelOwner()
	ownerDone := make(chan Result, 1)
	go func() {
		res, _ := r.RunContext(ownerCtx, []Job{j})
		ownerDone <- res[0]
	}()
	time.Sleep(5 * time.Millisecond) // let the owner register in-flight

	// Waiter: no deadline of its own. After the owner times out it must
	// retry the (deliberately enormous) job as the new owner — proven
	// below by it still running after the owner failed — and then our
	// explicit cancel ends it with its own error, not an inherited one.
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan Result, 1)
	go func() {
		res, _ := r.RunContext(waiterCtx, []Job{j})
		waiterDone <- res[0]
	}()

	owner := <-ownerDone
	if !errors.Is(owner.Err, context.DeadlineExceeded) {
		t.Fatalf("owner error %v, want deadline exceeded", owner.Err)
	}
	// The waiter must still be running (it retried as the new owner)
	// rather than having inherited the owner's timeout.
	select {
	case res := <-waiterDone:
		t.Fatalf("waiter finished with inherited error: %v", res.Err)
	case <-time.After(100 * time.Millisecond):
	}
	cancelWaiter()
	res := <-waiterDone
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("waiter error %v, want its own cancellation", res.Err)
	}
}
