package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traceio"
	"repro/internal/workload"
)

// schemaVersion is folded into every job hash. Bump it whenever the
// simulator's observable behaviour changes (new stats, different timing
// model), so stale on-disk cache entries stop matching instead of
// silently serving results from an older model.
const schemaVersion = 1

// WorkloadKind selects how a job's instruction sources are built.
type WorkloadKind string

const (
	// KindMix runs the paper's Section-3 workload: every context executes
	// a rotated concatenation of all ten benchmarks.
	KindMix WorkloadKind = "mix"
	// KindBench runs one named benchmark on every context, each copy with
	// a private address space and a perturbed seed.
	KindBench WorkloadKind = "bench"
	// KindCustom runs a caller-defined benchmark model (Workload.Custom)
	// on every context, like KindBench runs a built-in.
	KindCustom WorkloadKind = "custom"
	// KindTrace replays an ingested trace file (Workload.Trace): each
	// context replays one of the file's streams via workload.TraceSources.
	KindTrace WorkloadKind = "trace"
)

// TraceRef locates a trace file for KindTrace. The *reference* is what
// hashes — the job hash names the result of replaying whatever the path
// holds, so replacing a file's content behind an unchanged path reuses
// the stale cache entry (the same contract file-driven simulators
// conventionally accept; dae-sweep's cache can be cleared per file).
type TraceRef struct {
	// Path is the trace file location.
	Path string
	// Format names the on-disk format ("container", "legacy", "bin",
	// "text"); empty sniffs the magic bytes (traceio.FormatAuto).
	Format string `json:",omitempty"`
}

// Workload is the canonical description of a job's instruction streams.
// It is part of the job hash, so two workloads with equal fields are
// assumed to generate identical streams (which the workload package
// guarantees for a given seed).
type Workload struct {
	Kind WorkloadKind
	// Bench names the benchmark for KindBench.
	Bench string
	// Custom is the full benchmark model for KindCustom. It must be nil
	// for the other kinds (the omitempty keeps mix/bench job hashes
	// identical to the pre-custom cache schema, so existing on-disk
	// entries stay valid).
	Custom *workload.Benchmark `json:",omitempty"`
	// Trace locates the trace file for KindTrace. It must be nil for the
	// other kinds (omitempty keeps every generator-workload job hash —
	// and on-disk cache entry — identical to the pre-trace schema).
	Trace *TraceRef `json:",omitempty"`
	// SegmentLen overrides the mix rotation length for KindMix (0 =
	// workload.DefaultSegmentLen).
	SegmentLen int64
	// Seed perturbs the workload's data-dependent randomness.
	Seed uint64
}

// MixWorkload describes the all-benchmark mix.
func MixWorkload(seed uint64, segmentLen int64) Workload {
	return Workload{Kind: KindMix, Seed: seed, SegmentLen: segmentLen}
}

// BenchWorkload describes a single named benchmark.
func BenchWorkload(name string, seed uint64) Workload {
	return Workload{Kind: KindBench, Bench: name, Seed: seed}
}

// CustomWorkload describes a caller-defined benchmark model.
func CustomWorkload(b workload.Benchmark, seed uint64) Workload {
	return Workload{Kind: KindCustom, Custom: &b, Seed: seed}
}

// TraceWorkload describes an ingested trace file replay.
func TraceWorkload(path, format string) Workload {
	return Workload{Kind: KindTrace, Trace: &TraceRef{Path: path, Format: format}}
}

// Budget is a job's instruction budget in machine-wide totals (callers
// with per-thread budgets multiply by the thread count first, as the
// experiments package does).
type Budget struct {
	// WarmupInsts graduates before statistics reset.
	WarmupInsts int64
	// MeasureInsts is the measurement window.
	MeasureInsts int64
	// MaxCycles caps the run (0 = sim.DefaultMaxCycles).
	MaxCycles int64
	// Mode selects the execution mode (sim.Mode; empty = exact). Both
	// new fields are omitempty so every pre-existing exact-mode job
	// hashes exactly as it did before modes existed, keeping on-disk
	// cache entries valid. Adaptive runs are bit-identical to exact ones
	// but hash distinctly: the cache never has to trust that equivalence,
	// it only ever replays what that mode actually produced.
	Mode sim.Mode `json:",omitempty"`
	// Sampling parameterizes sampled mode. Callers must spell the
	// parameters out (daesim.Request.Normalized resolves the defaults),
	// so a job's hash never depends on which sim version's defaults were
	// compiled in. Nil for exact and adaptive jobs.
	Sampling *sim.Sampling `json:",omitempty"`
}

// Job describes one simulation point. Jobs are pure data: everything a
// run depends on is in the Machine, Workload and Budget fields, which is
// what makes result caching sound.
type Job struct {
	// Key is a human-readable label used in errors and progress lines
	// (e.g. "fig1 swim L2=64"). It is NOT part of the hash: two figures
	// that sweep the same point share one cache entry.
	Key      string
	Machine  config.Machine
	Workload Workload
	Budget   Budget
	// Parallel, when > 1, runs an eligible CMP job's cores on up to that
	// many goroutines in deterministic epochs (sim.Options.Parallel).
	// Like Key it is an execution hint, NOT part of the hash: parallel
	// results are bit-identical to serial ones, so the knob must never
	// split the cache. The Runner sizes it from its shared worker budget
	// (Options.Parallel); callers normally leave it zero.
	Parallel int `json:"-"`
}

// hashable is the canonical hash input. Field order is fixed by the
// struct definition, so encoding/json produces a deterministic byte
// stream for a given value.
type hashable struct {
	Version  int
	Machine  config.Machine
	Workload Workload
	Budget   Budget
}

// Hash returns the canonical content hash identifying the job's result:
// a hex SHA-256 of the (Machine, Workload, Budget) triple plus the cache
// schema version. Job.Key is deliberately excluded.
func (j Job) Hash() string {
	b, err := json.Marshal(hashable{
		Version:  schemaVersion,
		Machine:  j.Machine,
		Workload: j.Workload,
		Budget:   j.Budget,
	})
	if err != nil {
		// Machine/Workload/Budget are plain data; Marshal cannot fail.
		panic(fmt.Sprintf("runner: hash job %q: %v", j.Key, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Validate checks the job before it is scheduled.
func (j Job) Validate() error {
	switch j.Workload.Kind {
	case KindMix:
	case KindBench:
		if _, err := workload.ByName(j.Workload.Bench); err != nil {
			return fmt.Errorf("runner: job %q: %w", j.Key, err)
		}
	case KindCustom:
		if j.Workload.Custom == nil {
			return fmt.Errorf("runner: job %q: custom workload without a benchmark model", j.Key)
		}
		if err := j.Workload.Custom.Validate(); err != nil {
			return fmt.Errorf("runner: job %q: %w", j.Key, err)
		}
	case KindTrace:
		if j.Workload.Trace == nil || j.Workload.Trace.Path == "" {
			return fmt.Errorf("runner: job %q: trace workload without a trace path", j.Key)
		}
		if _, err := traceio.ParseFormat(j.Workload.Trace.Format); err != nil {
			return fmt.Errorf("runner: job %q: %w", j.Key, err)
		}
	default:
		return fmt.Errorf("runner: job %q: unknown workload kind %q", j.Key, j.Workload.Kind)
	}
	if j.Budget.MeasureInsts <= 0 {
		return fmt.Errorf("runner: job %q: non-positive measurement budget", j.Key)
	}
	switch j.Budget.Mode {
	case sim.ModeExact, sim.ModeAdaptive:
		if j.Budget.Sampling != nil {
			return fmt.Errorf("runner: job %q: sampling parameters without sampled mode", j.Key)
		}
	case sim.ModeSampled:
		if j.Budget.Sampling == nil {
			return fmt.Errorf("runner: job %q: sampled mode without sampling parameters", j.Key)
		}
		if err := j.Budget.Sampling.Validate(); err != nil {
			return fmt.Errorf("runner: job %q: %w", j.Key, err)
		}
	default:
		return fmt.Errorf("runner: job %q: unknown execution mode %q", j.Key, j.Budget.Mode)
	}
	if err := j.Machine.Validate(); err != nil {
		return fmt.Errorf("runner: job %q: %w", j.Key, err)
	}
	return nil
}

// benchSources builds one per-context reader copy of benchmark b, each
// with a private address space and a perturbed seed. On CMP machines
// every context across every core gets its own copy (contexts are
// numbered core-major), so cores interfere through the shared levels
// only, never by sharing a stream.
func (j Job) benchSources(b workload.Benchmark) []trace.Reader {
	n := j.Machine.TotalContexts()
	srcs := make([]trace.Reader, n)
	for t := 0; t < n; t++ {
		srcs[t] = b.NewReader(workload.ReaderOpts{
			AddrOffset: workload.ThreadAddrOffset(t),
			Seed:       j.Workload.Seed + uint64(t),
		})
	}
	return srcs
}

// sources builds the per-context instruction streams.
func (j Job) sources() ([]trace.Reader, error) {
	switch j.Workload.Kind {
	case KindMix:
		return workload.MixSources(j.Machine.TotalContexts(), workload.MixOpts{
			SegmentLen: j.Workload.SegmentLen,
			Seed:       j.Workload.Seed,
		}), nil
	case KindBench:
		b, err := workload.ByName(j.Workload.Bench)
		if err != nil {
			return nil, err
		}
		return j.benchSources(b), nil
	case KindCustom:
		if j.Workload.Custom == nil {
			return nil, fmt.Errorf("custom workload without a benchmark model")
		}
		return j.benchSources(*j.Workload.Custom), nil
	case KindTrace:
		if j.Workload.Trace == nil {
			return nil, fmt.Errorf("trace workload without a trace reference")
		}
		return workload.TraceSources(j.Workload.Trace.Path, j.Workload.Trace.Format,
			j.Machine.TotalContexts())
	default:
		return nil, fmt.Errorf("unknown workload kind %q", j.Workload.Kind)
	}
}

// Execute runs the job's simulation once, bypassing every cache tier and
// the worker pool — the uncached one-shot path behind the public
// package-level Run* wrappers. Cancelling ctx aborts the run promptly
// with an error wrapping ctx.Err(). onProgress, when non-nil, receives
// periodic in-run snapshots (every "every" graduated instructions;
// <= 0 applies the sim default).
func (j Job) Execute(ctx context.Context, onProgress func(sim.Snapshot), every int64) (stats.Report, error) {
	srcs, err := j.sources()
	if err != nil {
		return stats.Report{}, fmt.Errorf("runner: job %q: %w", j.Key, err)
	}
	o := sim.Options{
		Machine:      j.Machine,
		Sources:      srcs,
		WarmupInsts:  j.Budget.WarmupInsts,
		MeasureInsts: j.Budget.MeasureInsts,
		MaxCycles:    j.Budget.MaxCycles,
		Mode:         j.Budget.Mode,
		// Every generator workload gives each context a private address
		// space (ThreadAddrOffset); an imported trace's addresses are
		// whatever was captured, so only traces withhold the promise.
		DisjointAddressSpaces: j.Workload.Kind != KindTrace,
		Parallel:              j.Parallel,
		OnProgress:            onProgress,
		ProgressEvery:         every,
	}
	if j.Budget.Sampling != nil {
		o.Sampling = *j.Budget.Sampling
	}
	res, err := sim.Run(ctx, o)
	if err != nil {
		return stats.Report{}, fmt.Errorf("runner: job %q: %w", j.Key, err)
	}
	if !res.Completed {
		return res.Report, fmt.Errorf("runner: job %q (threads=%d, L2=%d) hit the cycle cap",
			j.Key, j.Machine.Threads, j.Machine.Mem.L2Latency)
	}
	return res.Report, nil
}
