package runner

import (
	"strings"
	"testing"
)

// TestWriteHashesDeterministic is the in-process determinism gate: two
// independent runners executing the same batch must emit byte-identical
// hash files.
func TestWriteHashesDeterministic(t *testing.T) {
	dump := func() string {
		r := mustRunner(t, Options{Workers: 4})
		if _, err := r.Run(testJobs()); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		n, err := r.WriteHashes(&b)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(testJobs()) {
			t.Fatalf("wrote %d hash lines for %d jobs", n, len(testJobs()))
		}
		return b.String()
	}
	first, second := dump(), dump()
	if first != second {
		t.Fatalf("hash files differ between identical sweeps:\n%s\nvs\n%s", first, second)
	}
	for _, line := range strings.Split(strings.TrimSpace(first), "\n") {
		if fields := strings.Fields(line); len(fields) < 3 || len(fields[0]) != 64 || len(fields[1]) != 64 {
			t.Fatalf("malformed hash line %q", line)
		}
	}
}

// TestWriteHashesCoversCacheHits ensures served-from-cache results are
// recorded too: a second batch over the same jobs adds no new lines and
// changes no hashes.
func TestWriteHashesCoversCacheHits(t *testing.T) {
	r := mustRunner(t, Options{Workers: 2})
	if _, err := r.Run(testJobs()); err != nil {
		t.Fatal(err)
	}
	var first strings.Builder
	if _, err := r.WriteHashes(&first); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(testJobs()); err != nil { // all cache hits
		t.Fatal(err)
	}
	var second strings.Builder
	if _, err := r.WriteHashes(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("cache-served batch changed the recorded hashes")
	}
	if s := r.Stats(); s.CacheHits == 0 {
		t.Fatal("second batch did not hit the cache")
	}
}

// TestReportHashSeparatesResults guards against a degenerate hash: two
// different simulation points must (overwhelmingly) hash differently.
func TestReportHashSeparatesResults(t *testing.T) {
	r := mustRunner(t, Options{})
	results, err := r.Run([]Job{benchJob("a", "swim", 16), benchJob("b", "swim", 256)})
	if err != nil {
		t.Fatal(err)
	}
	if ReportHash(results[0].Report) == ReportHash(results[1].Report) {
		t.Fatal("distinct simulation points produced identical report hashes")
	}
}
