package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// ReportHash returns a canonical content hash of a simulation result: a
// hex SHA-256 of the report's JSON encoding. Two runs of the same job are
// deterministic by construction, so their report hashes must be equal —
// the CI determinism gate runs a sweep twice and diffs the hash sets.
func ReportHash(rep stats.Report) string {
	b, err := json.Marshal(rep)
	if err != nil {
		// Report is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("runner: hash report: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// resultHash pairs one computed result's identifying hashes.
type resultHash struct {
	report string
	key    string
}

// recordHash remembers the result hash for a job (first key wins: the
// same point swept by two figures keeps its first label).
func (r *Runner) recordHash(jobHash, key string, rep stats.Report) {
	h := ReportHash(rep)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hashes == nil {
		r.hashes = make(map[string]resultHash)
	}
	if _, ok := r.hashes[jobHash]; !ok {
		r.hashes[jobHash] = resultHash{report: h, key: key}
	}
}

// WriteHashes writes one line per distinct result this runner has
// produced or served — "jobhash reporthash key" — sorted by job hash, so
// two invocations over the same sweep are diffable byte for byte. It
// returns the number of lines written.
func (r *Runner) WriteHashes(w io.Writer) (int, error) {
	type line struct {
		job string
		resultHash
	}
	r.mu.Lock()
	lines := make([]line, 0, len(r.hashes))
	for j, h := range r.hashes {
		lines = append(lines, line{j, h})
	}
	r.mu.Unlock()

	sort.Slice(lines, func(i, j int) bool { return lines[i].job < lines[j].job })
	for n, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %s %s\n", l.job, l.report, l.key); err != nil {
			return n, err
		}
	}
	return len(lines), nil
}
