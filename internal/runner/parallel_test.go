package runner

import (
	"reflect"
	"testing"

	"repro/internal/config"
)

// cmpMixJob builds a quick multi-core mix job (epoch-parallel eligible).
func cmpMixJob(key string, cores int) Job {
	return Job{
		Key: key,
		Machine: config.Figure2(1).WithCores(cores).
			WithHierarchy(64, config.SharedL2(256<<10, 8)),
		Workload: MixWorkload(0, 0),
		Budget:   testBudget(),
	}
}

// TestGrabIntraSlots pins the shared-budget sizing rules: intra-run
// workers come from the same semaphore as cross-job concurrency, are
// capped at min(cores, Options.Parallel)-1 extras, never block, and
// are refused entirely for ineligible jobs.
func TestGrabIntraSlots(t *testing.T) {
	cmp4 := cmpMixJob("cmp4", 4)
	cases := []struct {
		name     string
		workers  int
		parallel int
		held     int // slots already occupied (beyond the job's own)
		job      Job
		want     int
	}{
		{"full budget", 8, 8, 0, cmp4, 3},   // min(4 cores, 8)-1
		{"parallel caps", 8, 2, 0, cmp4, 1}, // min(4, 2)-1
		{"budget shared", 4, 4, 2, cmp4, 1}, // only 1 slot free
		{"one slot free means serial", 4, 4, 3, cmp4, 0},
		{"parallel off", 8, 0, 0, cmp4, 0},
		{"single core", 8, 8, 0, mixJob("1c", 2, 0), 0},
		{"caller preset", 8, 8, 0, func() Job { j := cmpMixJob("preset", 4); j.Parallel = 2; return j }(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := mustRunner(t, Options{Workers: tc.workers, Parallel: tc.parallel})
			r.sem <- struct{}{} // the job's own slot, held by its worker
			for i := 0; i < tc.held; i++ {
				r.sem <- struct{}{}
			}
			got := r.grabIntraSlots(tc.job)
			if got != tc.want {
				t.Fatalf("grabIntraSlots = %d extras, want %d", got, tc.want)
			}
			r.releaseSlots(got)
			if free := cap(r.sem) - len(r.sem); free != tc.workers-1-tc.held {
				t.Fatalf("slot leak: %d free after release, want %d", free, tc.workers-1-tc.held)
			}
		})
	}
}

// TestTraceJobsStaySerial: trace workloads withhold the disjoint
// address-space promise, so they must never be granted intra-run
// workers.
func TestTraceJobsStaySerial(t *testing.T) {
	r := mustRunner(t, Options{Workers: 8, Parallel: 8})
	j := cmpMixJob("trace", 4)
	j.Workload = TraceWorkload("/tmp/x.dct", "")
	r.sem <- struct{}{}
	if got := r.grabIntraSlots(j); got != 0 {
		t.Fatalf("trace job granted %d intra-run workers", got)
	}
}

// TestParallelRunnerBitIdentical: a batch run through a Parallel-enabled
// runner produces byte-identical reports (and hashes) to a serial one —
// the end-to-end form of the epoch equivalence guarantee at the runner
// layer, cache and all.
func TestParallelRunnerBitIdentical(t *testing.T) {
	jobs := []Job{cmpMixJob("cmp2", 2), cmpMixJob("cmp4", 4), mixJob("mix-2t", 2, 0)}

	serial := mustRunner(t, Options{Workers: 1})
	sres, err := serial.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	par := mustRunner(t, Options{Workers: 4, Parallel: 4})
	pres, err := par.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if sres[i].Hash != pres[i].Hash {
			t.Fatalf("job %q: hash changed under Parallel (%s vs %s)",
				jobs[i].Key, sres[i].Hash, pres[i].Hash)
		}
		if !reflect.DeepEqual(sres[i].Report, pres[i].Report) {
			t.Fatalf("job %q: report diverged under Parallel\nserial:   %+v\nparallel: %+v",
				jobs[i].Key, sres[i].Report, pres[i].Report)
		}
	}
}
