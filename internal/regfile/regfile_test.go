package regfile

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAllocUntilExhausted(t *testing.T) {
	f := New(4)
	seen := map[PhysReg]bool{}
	for i := 0; i < 4; i++ {
		p, ok := f.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[p] {
			t.Fatalf("register %d allocated twice", p)
		}
		seen[p] = true
	}
	if _, ok := f.Alloc(); ok {
		t.Fatal("alloc succeeded on exhausted file")
	}
	if f.FreeCount() != 0 || f.InUse() != 4 {
		t.Fatalf("counts = (%d,%d)", f.FreeCount(), f.InUse())
	}
}

func TestAllocDeterministicOrder(t *testing.T) {
	a, b := New(8), New(8)
	for i := 0; i < 8; i++ {
		pa, _ := a.Alloc()
		pb, _ := b.Alloc()
		if pa != pb {
			t.Fatalf("allocation order differs at %d: %d vs %d", i, pa, pb)
		}
	}
}

func TestFreeRecycles(t *testing.T) {
	f := New(2)
	p1, _ := f.Alloc()
	p2, _ := f.Alloc()
	f.Free(p1)
	p3, ok := f.Alloc()
	if !ok || p3 != p1 {
		t.Fatalf("recycled register = %d, want %d", p3, p1)
	}
	_ = p2
}

func TestFreeNoneIsNoop(t *testing.T) {
	f := New(2)
	f.Free(None) // must not panic or change state
	if f.FreeCount() != 2 {
		t.Fatal("Free(None) changed state")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	f := New(2)
	p, _ := f.Alloc()
	f.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	f.Free(p)
}

func TestReadiness(t *testing.T) {
	f := New(4)
	p, _ := f.Alloc()
	if f.Ready(p, 1<<40) {
		t.Fatal("freshly allocated register is ready")
	}
	f.SetReadyAt(p, 100)
	if f.Ready(p, 99) {
		t.Fatal("ready before its time")
	}
	if !f.Ready(p, 100) {
		t.Fatal("not ready at its time")
	}
	if got := f.ReadyAt(p); got != 100 {
		t.Fatalf("ReadyAt = %d", got)
	}
}

func TestNoneAlwaysReady(t *testing.T) {
	f := New(1)
	if !f.Ready(None, 0) {
		t.Fatal("None not ready")
	}
}

func TestAllocReady(t *testing.T) {
	f := New(2)
	p, ok := f.AllocReady(5)
	if !ok {
		t.Fatal("AllocReady failed")
	}
	if !f.Ready(p, 5) || f.Ready(p, 4) {
		t.Fatal("AllocReady readiness wrong")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	f := New(2)
	for _, p := range []PhysReg{2, 100, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ReadyAt(%d) did not panic", p)
				}
			}()
			f.ReadyAt(p)
		}()
	}
}

func TestPhysRegValid(t *testing.T) {
	if None.Valid() {
		t.Fatal("None is valid")
	}
	if !PhysReg(0).Valid() {
		t.Fatal("register 0 invalid")
	}
}

// Property: alloc/free conservation — free count + in-use always equals
// the file size, and allocation never hands out a register twice without
// an intervening free.
func TestQuickConservation(t *testing.T) {
	f := func(ops []bool, sizeRaw uint8) bool {
		size := int(sizeRaw%32) + 1
		file := New(size)
		var live []PhysReg
		for _, alloc := range ops {
			if alloc {
				p, ok := file.Alloc()
				if ok != (len(live) < size) {
					return false
				}
				if ok {
					for _, q := range live {
						if q == p {
							return false // duplicate allocation
						}
					}
					live = append(live, p)
				}
			} else if len(live) > 0 {
				file.Free(live[len(live)-1])
				live = live[:len(live)-1]
			}
			if file.FreeCount()+file.InUse() != size || file.InUse() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	f := New(96)
	for i := 0; i < b.N; i++ {
		p, _ := f.Alloc()
		f.Free(p)
	}
}
