// Package regfile models a physical register file with an explicit free
// list and per-register result timing, as required by the paper's renaming
// scheme (Figure 2: 64 AP physical registers and 96 EP physical registers
// per thread).
//
// The timing model never stores architectural values — only *when* each
// physical register's value becomes available, which is all in-order issue
// needs to decide whether an instruction's operands are ready.
package regfile

import "fmt"

// PhysReg names a physical register within one file. None means "no
// register" (absent operand or no destination).
type PhysReg int32

// None is the absent physical register.
const None PhysReg = -1

// Valid reports whether p names a register.
func (p PhysReg) Valid() bool { return p >= 0 }

// NeverReady is a ready time beyond any simulated cycle, used for
// registers whose producing instruction has not yet computed its result
// delivery time (e.g. a load that has not been accepted by the cache).
// ReadyAt returns it for such registers.
const NeverReady = int64(1) << 62

// Entry is one physical register's state: the cycle its value becomes
// available, plus the classification flags the core's stall accounting
// and perceived-latency sampling maintain per register. Timing and flags
// share one entry so the issue stage's ready check and the sampling that
// follows touch a single cache line.
type Entry struct {
	// ReadyAt is the cycle the value is available (NeverReady while the
	// producer's delivery time is unknown).
	ReadyAt int64
	// MissedLoad marks that the value is produced by a load that missed
	// in L1 (or is queued behind a full MSHR file and will almost
	// certainly miss).
	MissedLoad bool
	// Sampled marks that the perceived-latency sample for that load has
	// been recorded (one sample per missed load, at its first consumer).
	Sampled bool
}

// File is a physical register file. Create with New.
type File struct {
	entries []Entry
	free    []PhysReg // stack of free registers
	inFree  []bool    // per-register free-list membership (O(1) double-free check)
	inUse   int
}

// New returns a file with n physical registers, all free. n must be
// positive.
func New(n int) *File {
	if n <= 0 {
		panic(fmt.Sprintf("regfile: size %d must be positive", n))
	}
	f := &File{
		entries: make([]Entry, n),
		free:    make([]PhysReg, n),
		inFree:  make([]bool, n),
	}
	// Pop order is ascending register number for determinism.
	for i := 0; i < n; i++ {
		f.free[i] = PhysReg(n - 1 - i)
		f.inFree[i] = true
	}
	return f
}

// Size returns the total number of physical registers.
func (f *File) Size() int { return len(f.entries) }

// FreeCount returns the number of free registers.
func (f *File) FreeCount() int { return len(f.free) }

// InUse returns the number of allocated registers.
func (f *File) InUse() int { return f.inUse }

// Alloc takes a register from the free list. It reports failure when the
// file is exhausted (dispatch must stall). A fresh register is not ready
// until the producer calls SetReadyAt, and its classification flags are
// cleared.
func (f *File) Alloc() (PhysReg, bool) {
	if len(f.free) == 0 {
		return None, false
	}
	p := f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	f.inFree[p] = false
	f.entries[p] = Entry{ReadyAt: NeverReady}
	f.inUse++
	return p, true
}

// AllocReady allocates a register whose value is ready at the given cycle.
// Used for the initial architectural mappings (ready since "before time").
func (f *File) AllocReady(cycle int64) (PhysReg, bool) {
	p, ok := f.Alloc()
	if ok {
		f.SetReadyAt(p, cycle)
	}
	return p, ok
}

// Free returns p to the free list. Freeing None is a no-op. Double frees
// are a programming error and panic (they would corrupt the free list and
// silently break renaming).
func (f *File) Free(p PhysReg) {
	if p == None {
		return
	}
	if f.inFree[p] {
		panic(fmt.Sprintf("regfile: double free of p%d", p))
	}
	f.inFree[p] = true
	f.free = append(f.free, p)
	f.inUse--
}

// SetReadyAt records that p's value becomes available at the given cycle.
// It sits on the simulator's hottest path: range errors surface as the
// runtime's bounds panic rather than a bespoke check. Result-delivery
// *events* are not tracked here — the core inserts every known delivery
// time into its event calendar at the call sites that compute them.
func (f *File) SetReadyAt(p PhysReg, cycle int64) {
	f.entries[p].ReadyAt = cycle
}

// ReadyAt returns the cycle p's value becomes available (a very large
// sentinel if unknown yet).
func (f *File) ReadyAt(p PhysReg) int64 {
	return f.entries[p].ReadyAt
}

// Ready reports whether p's value is available at cycle now. The absent
// register None is always ready.
func (f *File) Ready(p PhysReg, now int64) bool {
	if p == None {
		return true
	}
	return f.entries[p].ReadyAt <= now
}

// RegReady is Ready for callers that have already excluded None — the
// per-cycle issue classification — saving the sentinel branch.
func (f *File) RegReady(p PhysReg, now int64) bool {
	return f.entries[p].ReadyAt <= now
}

// Entry returns p's state for in-place reads and flag updates. The
// pointer is valid until the file is garbage collected; entries are
// never reallocated.
func (f *File) Entry(p PhysReg) *Entry {
	return &f.entries[p]
}
