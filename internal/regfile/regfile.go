// Package regfile models a physical register file with an explicit free
// list and per-register result timing, as required by the paper's renaming
// scheme (Figure 2: 64 AP physical registers and 96 EP physical registers
// per thread).
//
// The timing model never stores architectural values — only *when* each
// physical register's value becomes available, which is all in-order issue
// needs to decide whether an instruction's operands are ready.
package regfile

import "fmt"

// PhysReg names a physical register within one file. None means "no
// register" (absent operand or no destination).
type PhysReg int32

// None is the absent physical register.
const None PhysReg = -1

// Valid reports whether p names a register.
func (p PhysReg) Valid() bool { return p >= 0 }

// NeverReady is a ready time beyond any simulated cycle, used for
// registers whose producing instruction has not yet computed its result
// delivery time (e.g. a load that has not been accepted by the cache).
// ReadyAt returns it for such registers.
const NeverReady = int64(1) << 62

// File is a physical register file. Create with New.
type File struct {
	readyAt []int64
	free    []PhysReg // stack of free registers
	inFree  []bool    // per-register free-list membership (O(1) double-free check)
	inUse   int

	// nextCache memoizes NextReadyAfter: while the cached cycle is still
	// in the future it remains the exact minimum (ready times only change
	// through SetReadyAt, which folds in below), so the scan reruns only
	// after the cached event has passed.
	nextCache int64
}

// New returns a file with n physical registers, all free. n must be
// positive.
func New(n int) *File {
	if n <= 0 {
		panic(fmt.Sprintf("regfile: size %d must be positive", n))
	}
	f := &File{
		readyAt:   make([]int64, n),
		free:      make([]PhysReg, n),
		inFree:    make([]bool, n),
		nextCache: 0, // 0 = immediately stale: first query scans
	}
	// Pop order is ascending register number for determinism.
	for i := 0; i < n; i++ {
		f.free[i] = PhysReg(n - 1 - i)
		f.inFree[i] = true
	}
	return f
}

// Size returns the total number of physical registers.
func (f *File) Size() int { return len(f.readyAt) }

// FreeCount returns the number of free registers.
func (f *File) FreeCount() int { return len(f.free) }

// InUse returns the number of allocated registers.
func (f *File) InUse() int { return f.inUse }

// Alloc takes a register from the free list. It reports failure when the
// file is exhausted (dispatch must stall). A fresh register is not ready
// until the producer calls SetReadyAt.
func (f *File) Alloc() (PhysReg, bool) {
	if len(f.free) == 0 {
		return None, false
	}
	p := f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	f.inFree[p] = false
	f.readyAt[p] = NeverReady
	f.inUse++
	return p, true
}

// AllocReady allocates a register whose value is ready at the given cycle.
// Used for the initial architectural mappings (ready since "before time").
func (f *File) AllocReady(cycle int64) (PhysReg, bool) {
	p, ok := f.Alloc()
	if ok {
		f.SetReadyAt(p, cycle)
	}
	return p, ok
}

// Free returns p to the free list. Freeing None is a no-op. Double frees
// are a programming error and panic (they would corrupt the free list and
// silently break renaming).
func (f *File) Free(p PhysReg) {
	if p == None {
		return
	}
	f.check(p)
	if f.inFree[p] {
		panic(fmt.Sprintf("regfile: double free of p%d", p))
	}
	f.inFree[p] = true
	f.free = append(f.free, p)
	f.inUse--
}

// SetReadyAt records that p's value becomes available at the given cycle.
func (f *File) SetReadyAt(p PhysReg, cycle int64) {
	f.check(p)
	f.readyAt[p] = cycle
	if cycle < f.nextCache {
		// The new delivery may undercut the cached minimum. If it is
		// already past at the next query, the staleness check rescans.
		f.nextCache = cycle
	}
}

// ReadyAt returns the cycle p's value becomes available (a very large
// sentinel if unknown yet).
func (f *File) ReadyAt(p PhysReg) int64 {
	f.check(p)
	return f.readyAt[p]
}

// NextReadyAfter returns the earliest ReadyAt strictly after now across
// the whole file, or the not-yet-known sentinel when no register's value
// is scheduled to arrive. Registers on the free list retain stale (past)
// ready times and so never contribute; the result is the lower bound the
// core's fast-forward uses for operand-arrival events.
func (f *File) NextReadyAfter(now int64) int64 {
	// While the cached minimum is still in the future it is exact: all
	// ready times > now are a subset of those seen by the cached scan,
	// and the cached minimum itself is among them.
	if f.nextCache > now {
		return f.nextCache
	}
	next := int64(NeverReady)
	for _, at := range f.readyAt {
		if at > now && at < next {
			next = at
		}
	}
	f.nextCache = next
	return next
}

// Ready reports whether p's value is available at cycle now. The absent
// register None is always ready.
func (f *File) Ready(p PhysReg, now int64) bool {
	if p == None {
		return true
	}
	f.check(p)
	return f.readyAt[p] <= now
}

func (f *File) check(p PhysReg) {
	if p < 0 || int(p) >= len(f.readyAt) {
		panic(fmt.Sprintf("regfile: physical register %d out of range [0,%d)", p, len(f.readyAt)))
	}
}
