package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func sampleInsts() []isa.Inst {
	return []isa.Inst{
		{PC: 0x1000, Op: isa.OpIntALU, Dest: isa.IntReg(1), Src1: isa.IntReg(2), Src2: isa.IntReg(3)},
		{PC: 0x1004, Op: isa.OpLoad, Dest: isa.FPReg(0), Src1: isa.IntReg(1), Src2: isa.NoReg, Addr: 0xdeadbeef, Size: 8},
		{PC: 0x1008, Op: isa.OpFPALU, Dest: isa.FPReg(1), Src1: isa.FPReg(0), Src2: isa.FPReg(2)},
		{PC: 0x100c, Op: isa.OpStore, Dest: isa.NoReg, Src1: isa.FPReg(1), Src2: isa.IntReg(1), Addr: 0x8000, Size: 8},
		{PC: 0x1010, Op: isa.OpBranch, Dest: isa.NoReg, Src1: isa.IntReg(4), Src2: isa.NoReg, Taken: true},
		{PC: 0x1014, Op: isa.OpBranch, Dest: isa.NoReg, Src1: isa.IntReg(4), Src2: isa.NoReg, Taken: false},
	}
}

func TestSliceReader(t *testing.T) {
	insts := sampleInsts()
	r := Slice(insts)
	var got isa.Inst
	for i := range insts {
		if !r.Next(&got) {
			t.Fatalf("Next returned false at %d", i)
		}
		if got != insts[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got, insts[i])
		}
	}
	if r.Next(&got) {
		t.Fatal("reader yielded past end")
	}
	if r.Next(&got) {
		t.Fatal("exhausted reader yielded again")
	}
}

func TestLimit(t *testing.T) {
	insts := sampleInsts()
	if n := Count(Limit(Slice(insts), 3)); n != 3 {
		t.Fatalf("Limit(3) yielded %d", n)
	}
	if n := Count(Limit(Slice(insts), 100)); n != int64(len(insts)) {
		t.Fatalf("Limit(100) yielded %d", n)
	}
	if n := Count(Limit(Slice(insts), 0)); n != 0 {
		t.Fatalf("Limit(0) yielded %d", n)
	}
}

func TestConcat(t *testing.T) {
	a := sampleInsts()[:2]
	b := sampleInsts()[2:]
	r := Concat(Slice(a), Slice(b))
	if n := Count(r); n != int64(len(a)+len(b)) {
		t.Fatalf("Concat yielded %d records", n)
	}
	// Order must be preserved across the seam.
	r = Concat(Slice(a), Slice(b))
	var got isa.Inst
	all := sampleInsts()
	for i := range all {
		r.Next(&got)
		if got.PC != all[i].PC {
			t.Fatalf("record %d: pc %#x want %#x", i, got.PC, all[i].PC)
		}
	}
}

func TestConcatEmpty(t *testing.T) {
	if n := Count(Concat()); n != 0 {
		t.Fatal("empty Concat yielded records")
	}
	if n := Count(Concat(Slice(nil), Slice(sampleInsts()))); n != int64(len(sampleInsts())) {
		t.Fatal("Concat with empty first reader lost records")
	}
}

func TestSkip(t *testing.T) {
	r := Skip(Slice(sampleInsts()), 2)
	var got isa.Inst
	if !r.Next(&got) || got.PC != 0x1008 {
		t.Fatalf("Skip(2) first record pc = %#x", got.PC)
	}
	// Skipping past the end leaves an exhausted reader.
	r = Skip(Slice(sampleInsts()), 100)
	if r.Next(&got) {
		t.Fatal("Skip past end still yields")
	}
}

func TestFileRoundTrip(t *testing.T) {
	insts := sampleInsts()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.WriteAll(Slice(insts))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(insts)) || w.Count() != n {
		t.Fatalf("wrote %d records, Count=%d", n, w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got isa.Inst
	for i := range insts {
		if !fr.Next(&got) {
			t.Fatalf("decode stopped at %d: %v", i, fr.Err())
		}
		if got != insts[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got, insts[i])
		}
	}
	if fr.Next(&got) {
		t.Fatal("decoded past end")
	}
	if fr.Err() != nil {
		t.Fatalf("clean EOF reported error: %v", fr.Err())
	}
	if fr.Count() != int64(len(insts)) {
		t.Fatalf("reader Count = %d", fr.Count())
	}
}

func TestFileBadMagic(t *testing.T) {
	_, err := NewFileReader(bytes.NewReader([]byte("NOTATRACEFILE...")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestFileTruncatedHeader(t *testing.T) {
	_, err := NewFileReader(bytes.NewReader([]byte("DAE")))
	if err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestFileBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("DAETRACE"))
	buf.WriteByte(99) // version 99
	_, err := NewFileReader(&buf)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestFileTruncatedRecord(t *testing.T) {
	insts := sampleInsts()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if _, err := w.WriteAll(Slice(insts)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	// Chop the last few bytes off.
	data := buf.Bytes()
	fr, err := NewFileReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	var got isa.Inst
	n := 0
	for fr.Next(&got) {
		n++
	}
	if fr.Err() == nil {
		t.Fatal("truncation not detected")
	}
	if n >= len(insts) {
		t.Fatalf("decoded %d records from truncated file", n)
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriterPropagatesIOError(t *testing.T) {
	w, err := NewWriter(&failingWriter{after: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Force enough data through the bufio layer to hit the failure.
	insts := sampleInsts()
	var wroteErr error
	for i := 0; i < 1<<16 && wroteErr == nil; i++ {
		wroteErr = w.Write(&insts[i%len(insts)])
	}
	if wroteErr == nil {
		wroteErr = w.Flush()
	}
	if wroteErr == nil {
		t.Fatal("io error never surfaced")
	}
	// Writer must stay failed.
	if err := w.Write(&insts[0]); err == nil {
		t.Fatal("write after error succeeded")
	}
}

// Property: any generated instruction survives an encode/decode round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(pcs []uint64, opRaw []uint8) bool {
		n := len(pcs)
		if len(opRaw) < n {
			n = len(opRaw)
		}
		insts := make([]isa.Inst, 0, n)
		for i := 0; i < n; i++ {
			op := isa.Op(opRaw[i] % uint8(isa.NumOps))
			in := isa.Inst{PC: pcs[i], Op: op, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
			switch op {
			case isa.OpIntALU:
				in.Dest = isa.IntReg(int(opRaw[i]) % 32)
			case isa.OpFPALU:
				in.Dest = isa.FPReg(int(opRaw[i]) % 32)
			case isa.OpLoad:
				in.Dest = isa.FPReg(int(opRaw[i]) % 32)
				in.Addr = pcs[i] * 3
				in.Size = 8
			case isa.OpStore:
				in.Addr = pcs[i] * 5
				in.Size = 4
			case isa.OpBranch:
				in.Taken = opRaw[i]&1 == 1
			}
			insts = append(insts, in)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if _, err := w.WriteAll(Slice(insts)); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		fr, err := NewFileReader(&buf)
		if err != nil {
			return false
		}
		var got isa.Inst
		for i := range insts {
			if !fr.Next(&got) || got != insts[i] {
				return false
			}
		}
		return !fr.Next(&got) && fr.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	insts := sampleInsts()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&insts[i%len(insts)]); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}

func TestInterleave(t *testing.T) {
	a := []isa.Inst{{PC: 1, Op: isa.OpIntALU}, {PC: 2, Op: isa.OpIntALU}, {PC: 3, Op: isa.OpIntALU}}
	b := []isa.Inst{{PC: 10, Op: isa.OpFPALU}}
	r := Interleave(Slice(a), Slice(b))
	var got []uint64
	var in isa.Inst
	for r.Next(&in) {
		got = append(got, in.PC)
	}
	want := []uint64{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestInterleaveEmpty(t *testing.T) {
	var in isa.Inst
	if Interleave().Next(&in) {
		t.Fatal("empty interleave yielded")
	}
	if Interleave(Slice(nil), Slice(nil)).Next(&in) {
		t.Fatal("interleave of empty readers yielded")
	}
}
