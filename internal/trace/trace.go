// Package trace defines the dynamic instruction stream abstraction that
// feeds the simulator, together with combinators (limit, concatenation,
// repetition) and a compact binary file format.
//
// The paper's methodology is trace-driven simulation: DEC Alpha binaries
// instrumented with ATOM produce per-benchmark instruction traces which the
// timing simulator replays. This repository replaces the proprietary traces
// with synthetic generators (package workload) that implement the same
// Reader interface, so the simulator is indifferent to whether a stream
// comes from a generator or from a file produced by cmd/dae-trace.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Reader is a stream of dynamic instructions. Next fills *inst with the
// next record and reports whether one was available; after it returns
// false the stream is exhausted and subsequent calls must keep returning
// false.
type Reader interface {
	Next(inst *isa.Inst) bool
}

// Peeker is an optional Reader extension for zero-copy lookahead: the
// core's fetch stage must inspect the next instruction before deciding
// to consume it (control-speculation limits stop *before* a branch).
// PeekNext returns a pointer to the next record without consuming it —
// valid only until the next PeekNext/Consume/Next call, and read-only —
// and Consume advances past it. Readers backed by in-memory buffers
// (interned workload streams) implement it so the peek costs no copy;
// everything else goes through the caller's own one-instruction buffer.
type Peeker interface {
	Reader
	PeekNext() (*isa.Inst, bool)
	Consume()
}

// Func adapts a function to the Reader interface.
type Func func(inst *isa.Inst) bool

// Next implements Reader.
func (f Func) Next(inst *isa.Inst) bool { return f(inst) }

// Slice returns a Reader that yields the given instructions in order.
// The slice is not copied; the caller must not mutate it while reading.
func Slice(insts []isa.Inst) Reader {
	i := 0
	return Func(func(out *isa.Inst) bool {
		if i >= len(insts) {
			return false
		}
		*out = insts[i]
		i++
		return true
	})
}

// Limit returns a Reader that yields at most n instructions from r.
func Limit(r Reader, n int64) Reader {
	remaining := n
	return Func(func(out *isa.Inst) bool {
		if remaining <= 0 {
			return false
		}
		if !r.Next(out) {
			remaining = 0
			return false
		}
		remaining--
		return true
	})
}

// Concat returns a Reader that yields all instructions from each reader in
// turn.
func Concat(readers ...Reader) Reader {
	idx := 0
	return Func(func(out *isa.Inst) bool {
		for idx < len(readers) {
			if readers[idx].Next(out) {
				return true
			}
			idx++
		}
		return false
	})
}

// Interleave returns a Reader that alternates between the given readers
// instruction by instruction (round-robin), dropping exhausted readers.
// Useful for building custom multiprogrammed streams for a single
// context.
func Interleave(readers ...Reader) Reader {
	live := append([]Reader(nil), readers...)
	next := 0
	return Func(func(out *isa.Inst) bool {
		for len(live) > 0 {
			if next >= len(live) {
				next = 0
			}
			if live[next].Next(out) {
				next++
				return true
			}
			live = append(live[:next], live[next+1:]...)
		}
		return false
	})
}

// Skip discards the first n instructions of r (the paper skips each
// benchmark's start-up phase before measuring) and returns r.
func Skip(r Reader, n int64) Reader {
	var tmp isa.Inst
	for i := int64(0); i < n; i++ {
		if !r.Next(&tmp) {
			break
		}
	}
	return r
}

// Count drains r and returns the number of instructions it yielded.
func Count(r Reader) int64 {
	var tmp isa.Inst
	var n int64
	for r.Next(&tmp) {
		n++
	}
	return n
}

// ----------------------------------------------------------------------------
// Binary file format.
//
// Layout: 8-byte magic "DAETRACE", uvarint version, then one record per
// instruction:
//
//	byte   flags: bits 0-2 op, bit 3 taken, bit 4 has-addr
//	uvarint pc
//	byte   dest, src1, src2 (0xFF = none)
//	if has-addr: uvarint addr, byte size
//
// The format is self-delimiting; readers detect truncation.

var magic = [8]byte{'D', 'A', 'E', 'T', 'R', 'A', 'C', 'E'}

// FormatVersion is the current trace file format version.
const FormatVersion = 1

// ErrBadMagic is returned when a trace file does not start with the
// expected magic bytes.
var ErrBadMagic = errors.New("trace: bad magic (not a DAE trace file)")

// ErrBadVersion is returned for unsupported format versions.
var ErrBadVersion = errors.New("trace: unsupported format version")

// Writer encodes instructions to an io.Writer in the binary format.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter writes the file header and returns a Writer. The caller must
// call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], FormatVersion)
	if _, err := bw.Write(buf[:n]); err != nil {
		return nil, fmt.Errorf("trace: writing version: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write encodes one instruction record.
func (w *Writer) Write(inst *isa.Inst) error {
	if w.err != nil {
		return w.err
	}
	flags := byte(inst.Op) & 0x7
	if inst.Taken {
		flags |= 1 << 3
	}
	hasAddr := inst.IsMem()
	if hasAddr {
		flags |= 1 << 4
	}
	var buf [2 + 2*binary.MaxVarintLen64 + 4]byte
	i := 0
	buf[i] = flags
	i++
	i += binary.PutUvarint(buf[i:], inst.PC)
	buf[i] = byte(inst.Dest)
	buf[i+1] = byte(inst.Src1)
	buf[i+2] = byte(inst.Src2)
	i += 3
	if hasAddr {
		i += binary.PutUvarint(buf[i:], inst.Addr)
		buf[i] = inst.Size
		i++
	}
	if _, err := w.w.Write(buf[:i]); err != nil {
		w.err = fmt.Errorf("trace: writing record: %w", err)
		return w.err
	}
	w.n++
	return nil
}

// WriteAll drains r into the writer and returns the number of records
// written.
func (w *Writer) WriteAll(r Reader) (int64, error) {
	var inst isa.Inst
	var n int64
	for r.Next(&inst) {
		if err := w.Write(&inst); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.n }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// FileReader decodes a trace file. It implements Reader; decoding errors
// terminate the stream and are reported by Err.
type FileReader struct {
	r   *bufio.Reader
	err error
	n   int64
}

// NewFileReader validates the header and returns a FileReader.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if got != magic {
		return nil, ErrBadMagic
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if v != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return &FileReader{r: br}, nil
}

// Next implements Reader.
func (fr *FileReader) Next(inst *isa.Inst) bool {
	if fr.err != nil {
		return false
	}
	flags, err := fr.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			fr.err = fmt.Errorf("trace: record %d: %w", fr.n, err)
		}
		return false
	}
	op := isa.Op(flags & 0x7)
	if !op.Valid() {
		fr.err = fmt.Errorf("trace: record %d: invalid op %d", fr.n, op)
		return false
	}
	pc, err := binary.ReadUvarint(fr.r)
	if err != nil {
		fr.err = fmt.Errorf("trace: record %d: truncated pc: %w", fr.n, err)
		return false
	}
	var regs [3]byte
	if _, err := io.ReadFull(fr.r, regs[:]); err != nil {
		fr.err = fmt.Errorf("trace: record %d: truncated regs: %w", fr.n, err)
		return false
	}
	*inst = isa.Inst{
		PC:    pc,
		Op:    op,
		Dest:  isa.Reg(regs[0]),
		Src1:  isa.Reg(regs[1]),
		Src2:  isa.Reg(regs[2]),
		Taken: flags&(1<<3) != 0,
	}
	if flags&(1<<4) != 0 {
		addr, err := binary.ReadUvarint(fr.r)
		if err != nil {
			fr.err = fmt.Errorf("trace: record %d: truncated addr: %w", fr.n, err)
			return false
		}
		size, err := fr.r.ReadByte()
		if err != nil {
			fr.err = fmt.Errorf("trace: record %d: truncated size: %w", fr.n, err)
			return false
		}
		inst.Addr = addr
		inst.Size = size
	}
	fr.n++
	return true
}

// Count returns the number of records decoded so far.
func (fr *FileReader) Count() int64 { return fr.n }

// Err returns the first decoding error encountered, if any. io.EOF at a
// record boundary is a clean end of stream and is not an error.
func (fr *FileReader) Err() error { return fr.err }
