package branch

import (
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Fatalf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Fatalf("counter did not saturate at 3: %d", c)
	}
}

func TestCounterHysteresis(t *testing.T) {
	// From strongly-taken, one not-taken must not flip the prediction.
	c := counter(3)
	c = c.update(false)
	if !c.taken() {
		t.Fatal("single not-taken flipped a strong counter")
	}
	c = c.update(false)
	if c.taken() {
		t.Fatal("two not-takens should flip the prediction")
	}
}

func TestNewBHTValidation(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBHT(%d) did not panic", n)
				}
			}()
			NewBHT(n)
		}()
	}
	if b := NewBHT(2048); b.Entries() != 2048 {
		t.Fatal("Entries mismatch")
	}
}

func TestBHTLearnsLoopBranch(t *testing.T) {
	b := NewBHT(2048)
	pc := uint64(0x1000)
	// A loop back-edge taken 99 times then not taken once: after warmup
	// the predictor must predict taken.
	for i := 0; i < 4; i++ {
		b.Update(pc, true)
	}
	mispredicts := 0
	for iter := 0; iter < 100; iter++ {
		taken := iter != 99
		if b.Predict(pc) != taken {
			mispredicts++
		}
		b.Update(pc, taken)
	}
	if mispredicts > 1 {
		t.Fatalf("BHT mispredicted a simple loop %d times", mispredicts)
	}
}

func TestBHTAliasing(t *testing.T) {
	// PCs exactly table-size*4 apart must collide (direct indexing).
	b := NewBHT(16)
	pcA := uint64(0x100)
	pcB := pcA + 16*4
	for i := 0; i < 4; i++ {
		b.Update(pcA, true)
	}
	if !b.Predict(pcB) {
		t.Fatal("aliased PCs must share a counter")
	}
	// Nearby distinct PCs must not collide.
	pcC := pcA + 4
	if b.Predict(pcC) {
		t.Fatal("adjacent branch unexpectedly aliased")
	}
}

func TestBHTColdStartNotTaken(t *testing.T) {
	b := NewBHT(64)
	if b.Predict(0x4000) {
		t.Fatal("cold BHT should predict weakly not-taken")
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	// A strictly alternating branch defeats a 2-bit BHT but is learnable
	// with global history.
	g := NewGshare(4096, 8)
	pc := uint64(0x2000)
	// Warm up.
	for i := 0; i < 200; i++ {
		g.Update(pc, i%2 == 0)
	}
	mispredicts := 0
	for i := 200; i < 400; i++ {
		taken := i%2 == 0
		if g.Predict(pc) != taken {
			mispredicts++
		}
		g.Update(pc, taken)
	}
	if mispredicts > 4 {
		t.Fatalf("gshare failed to learn alternation: %d mispredicts", mispredicts)
	}
}

func TestGshareValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGshare with non-power-of-two did not panic")
		}
	}()
	NewGshare(100, 8)
}

func TestStatic(t *testing.T) {
	alwaysT := Static{Taken: true}
	alwaysNT := Static{}
	if !alwaysT.Predict(0) || alwaysNT.Predict(0) {
		t.Fatal("static predictors wrong")
	}
	alwaysT.Update(0, false) // must be a no-op
	if !alwaysT.Predict(0) {
		t.Fatal("static predictor trained")
	}
}

func TestNewByKind(t *testing.T) {
	for _, k := range []Kind{KindBHT, KindGshare, KindTaken, KindNotTaken, ""} {
		p, err := New(k, 2048)
		if err != nil || p == nil {
			t.Errorf("New(%q) = %v, %v", k, p, err)
		}
	}
	if _, err := New("bogus", 2048); err == nil {
		t.Error("unknown kind accepted")
	}
}

// Property: BHT prediction is always a deterministic function of the
// update history for a single PC; replaying the same history gives the
// same predictions.
func TestQuickBHTDeterminism(t *testing.T) {
	f := func(pc uint64, outcomes []bool) bool {
		a, b := NewBHT(2048), NewBHT(2048)
		for _, taken := range outcomes {
			if a.Predict(pc) != b.Predict(pc) {
				return false
			}
			a.Update(pc, taken)
			b.Update(pc, taken)
		}
		return a.Predict(pc) == b.Predict(pc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after k>=2 consecutive identical outcomes, the BHT predicts
// that outcome (saturating counter convergence).
func TestQuickBHTConvergence(t *testing.T) {
	f := func(pc uint64, taken bool) bool {
		b := NewBHT(2048)
		for i := 0; i < 3; i++ {
			b.Update(pc, taken)
		}
		return b.Predict(pc) == taken
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBHTPredictUpdate(b *testing.B) {
	p := NewBHT(2048)
	for i := 0; i < b.N; i++ {
		pc := uint64(i*4) & 0xffff
		taken := p.Predict(pc)
		p.Update(pc, !taken)
	}
}
