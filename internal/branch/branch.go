// Package branch implements the branch predictors used by the simulator.
//
// The paper's machine gives every hardware context a private Branch History
// Table of 2K entries × 2-bit saturating counters (Figure 2), indexed by the
// branch PC. That predictor is BHT. A global-history gshare predictor is
// also provided for the predictor-sensitivity ablation; it is not part of
// the paper's configuration.
package branch

import "fmt"

// Predictor is a conditional branch direction predictor. Implementations
// are per-hardware-context (the paper replicates the BHT per thread).
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction of the
	// branch at pc. The paper's machine updates at branch execution.
	Update(pc uint64, taken bool)
}

// counter is a 2-bit saturating counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// BHT is a direct-indexed table of 2-bit saturating counters, the paper's
// per-thread predictor (2K entries in Figure 2).
type BHT struct {
	table []counter
	mask  uint64
}

// NewBHT returns a BHT with the given number of entries, which must be a
// positive power of two. Counters initialise to weakly-not-taken (01),
// matching the usual cold-start convention.
func NewBHT(entries int) *BHT {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("branch: BHT entries %d must be a positive power of two", entries))
	}
	t := make([]counter, entries)
	for i := range t {
		t[i] = 1
	}
	return &BHT{table: t, mask: uint64(entries - 1)}
}

// Entries returns the table size.
func (b *BHT) Entries() int { return len(b.table) }

func (b *BHT) index(pc uint64) uint64 {
	// Instructions are 4-byte aligned; drop the low bits so consecutive
	// branches map to distinct entries.
	return (pc >> 2) & b.mask
}

// Predict implements Predictor.
func (b *BHT) Predict(pc uint64) bool {
	return b.table[b.index(pc)].taken()
}

// Update implements Predictor.
func (b *BHT) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Gshare is a global-history predictor: the PC is XOR-folded with a
// global branch history register to index the counter table. Provided for
// the predictor ablation (the paper itself uses a plain BHT).
type Gshare struct {
	table   []counter
	mask    uint64
	history uint64
	bits    uint
}

// NewGshare returns a gshare predictor with the given table size (positive
// power of two) and history length in bits.
func NewGshare(entries int, historyBits uint) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("branch: gshare entries %d must be a positive power of two", entries))
	}
	if historyBits > 32 {
		panic("branch: gshare history too long")
	}
	t := make([]counter, entries)
	for i := range t {
		t[i] = 1
	}
	return &Gshare{table: t, mask: uint64(entries - 1), bits: historyBits}
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)].taken()
}

// Update implements Predictor. It trains the indexed counter and shifts
// the outcome into the global history register.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.bits) - 1
}

// Static is a trivial always-taken or always-not-taken predictor, useful
// as a lower bound in the predictor ablation and in unit tests.
type Static struct {
	// Taken is the fixed prediction.
	Taken bool
}

// Predict implements Predictor.
func (s Static) Predict(uint64) bool { return s.Taken }

// Update implements Predictor (no-op).
func (s Static) Update(uint64, bool) {}

// Kind selects a predictor implementation by name.
type Kind string

const (
	// KindBHT is the paper's per-thread 2-bit BHT.
	KindBHT Kind = "bht"
	// KindGshare is the global-history ablation predictor.
	KindGshare Kind = "gshare"
	// KindTaken is static always-taken.
	KindTaken Kind = "taken"
	// KindNotTaken is static always-not-taken.
	KindNotTaken Kind = "nottaken"
)

// New builds a predictor of the given kind with the given table size.
// Unknown kinds return an error.
func New(kind Kind, entries int) (Predictor, error) {
	switch kind {
	case KindBHT, "":
		return NewBHT(entries), nil
	case KindGshare:
		return NewGshare(entries, 12), nil
	case KindTaken:
		return Static{Taken: true}, nil
	case KindNotTaken:
		return Static{}, nil
	default:
		return nil, fmt.Errorf("branch: unknown predictor kind %q", kind)
	}
}
