// Package queue provides the bounded FIFO ring buffer used for every
// architectural queue in the simulator: per-thread instruction queues,
// store address queues, fetch buffers and the memory system's request
// queues.
//
// The structures the paper sizes in Figure 2 (Instruction Queue 48 entries,
// Store Address Queue 32 entries) are hardware FIFOs with back-pressure:
// a full queue stalls the producer stage. Ring mirrors that contract —
// Push fails on a full queue rather than growing — so resource-induced
// stalls in the pipeline model are explicit.
package queue

import "fmt"

// Ring is a bounded FIFO queue with O(1) push, pop and random access by
// queue position. The zero value is unusable; create one with New.
type Ring[T any] struct {
	buf  []T
	head int // index of the oldest element
	size int // number of elements
}

// New returns an empty ring with the given capacity. Capacity must be
// positive.
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: non-positive capacity %d", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.size }

// Cap returns the queue capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Empty reports whether the queue holds no elements.
func (r *Ring[T]) Empty() bool { return r.size == 0 }

// Full reports whether the queue is at capacity.
func (r *Ring[T]) Full() bool { return r.size == len(r.buf) }

// Free returns the number of unoccupied slots.
func (r *Ring[T]) Free() int { return len(r.buf) - r.size }

// wrap folds an index in [0, 2·cap) back into the buffer. Indexes only
// ever overshoot by less than one capacity, so a conditional subtract
// replaces the modulo division in the simulator's hottest loops.
func (r *Ring[T]) wrap(i int) int {
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

// Push appends v to the tail. It reports whether the push succeeded; a
// full queue rejects the push (modelling stage back-pressure).
func (r *Ring[T]) Push(v T) bool {
	if r.Full() {
		return false
	}
	r.buf[r.wrap(r.head+r.size)] = v
	r.size++
	return true
}

// Pop removes and returns the head element. The second result is false if
// the queue is empty.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero // release references for GC
	r.head = r.wrap(r.head + 1)
	r.size--
	return v, true
}

// Drop removes the head element without returning or zeroing it. It is
// Pop for the simulator's hottest paths, where the element is known (a
// preceding Peek) and remains reachable elsewhere (pooled DynInsts are
// never garbage), so the release-for-GC store would be pure overhead. It
// panics on an empty queue.
func (r *Ring[T]) Drop() {
	if r.size == 0 {
		panic("queue: Drop on empty queue")
	}
	r.head = r.wrap(r.head + 1)
	r.size--
}

// Peek returns the head element without removing it. The second result is
// false if the queue is empty.
func (r *Ring[T]) Peek() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}

// At returns the element at queue position i (0 = head). It panics if i is
// out of range; use Len to bound iteration.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("queue: index %d out of range (len %d)", i, r.size))
	}
	return r.buf[r.wrap(r.head+i)]
}

// Scan calls f on each element from head to tail until f returns false.
// Unlike an At loop it performs no per-element bounds check or modulo,
// which matters in the simulator's per-cycle queue walks.
func (r *Ring[T]) Scan(f func(T) bool) {
	i := r.head
	for n := 0; n < r.size; n++ {
		if !f(r.buf[i]) {
			return
		}
		i++
		if i == len(r.buf) {
			i = 0
		}
	}
}

// Set overwrites the element at queue position i (0 = head). It panics if
// i is out of range.
func (r *Ring[T]) Set(i int, v T) {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("queue: index %d out of range (len %d)", i, r.size))
	}
	r.buf[r.wrap(r.head+i)] = v
}

// Clear empties the queue, releasing element references.
func (r *Ring[T]) Clear() {
	var zero T
	for i := 0; i < r.size; i++ {
		r.buf[r.wrap(r.head+i)] = zero
	}
	r.head, r.size = 0, 0
}
