package queue

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New[int](c)
		}()
	}
}

func TestPushPopFIFO(t *testing.T) {
	q := New[int](4)
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 1; i <= 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestFullRejectsPush(t *testing.T) {
	q := New[string](2)
	q.Push("a")
	q.Push("b")
	if q.Push("c") {
		t.Fatal("push into full queue succeeded")
	}
	if !q.Full() || q.Free() != 0 {
		t.Fatal("Full/Free inconsistent")
	}
}

func TestWrapAround(t *testing.T) {
	q := New[int](3)
	// Drive head around the buffer several times.
	next := 0
	popped := 0
	for round := 0; round < 10; round++ {
		for q.Push(next) {
			next++
		}
		for q.Len() > 1 {
			v, ok := q.Pop()
			if !ok || v != popped {
				t.Fatalf("round %d: pop = (%d,%v), want %d", round, v, ok, popped)
			}
			popped++
		}
	}
}

func TestPeek(t *testing.T) {
	q := New[int](2)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
	q.Push(42)
	v, ok := q.Peek()
	if !ok || v != 42 {
		t.Fatalf("peek = (%d,%v)", v, ok)
	}
	if q.Len() != 1 {
		t.Fatal("peek consumed the element")
	}
}

func TestAtAndSet(t *testing.T) {
	q := New[int](4)
	q.Push(10)
	q.Push(20)
	q.Push(30)
	q.Pop() // head now at 20, with wraparound potential
	q.Push(40)
	q.Push(50)
	want := []int{20, 30, 40, 50}
	for i, w := range want {
		if got := q.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
	q.Set(2, 99)
	if q.At(2) != 99 {
		t.Error("Set did not stick")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	q := New[int](2)
	q.Push(1)
	for _, i := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			q.At(i)
		}()
	}
}

func TestSetPanicsOutOfRange(t *testing.T) {
	q := New[int](2)
	q.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("Set out of range did not panic")
		}
	}()
	q.Set(1, 5)
}

func TestClear(t *testing.T) {
	q := New[*int](3)
	x := 5
	q.Push(&x)
	q.Push(&x)
	q.Clear()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("Clear left elements")
	}
	if !q.Push(&x) {
		t.Fatal("push after Clear failed")
	}
	v, _ := q.Pop()
	if v != &x {
		t.Fatal("wrong element after Clear")
	}
}

func TestLenCapFreeInvariant(t *testing.T) {
	q := New[int](5)
	check := func() {
		if q.Len()+q.Free() != q.Cap() {
			t.Fatalf("Len(%d)+Free(%d) != Cap(%d)", q.Len(), q.Free(), q.Cap())
		}
	}
	check()
	for i := 0; i < 5; i++ {
		q.Push(i)
		check()
	}
	for !q.Empty() {
		q.Pop()
		check()
	}
}

// Property: a ring behaves exactly like a bounded slice-backed FIFO for an
// arbitrary sequence of operations.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(capRaw uint8, ops []byte) bool {
		capacity := int(capRaw%16) + 1
		q := New[int](capacity)
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				ok := q.Push(next)
				wantOK := len(model) < capacity
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // pop
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // verify full state
				if q.Len() != len(model) {
					return false
				}
				for i, w := range model {
					if q.At(i) != w {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int](64)
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if q.Full() {
			for !q.Empty() {
				q.Pop()
			}
		}
	}
}

func TestScanVisitsHeadToTail(t *testing.T) {
	q := New[int](4)
	// Wrap the ring: push 4, pop 2, push 2 more so elements straddle the
	// buffer end.
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	q.Push(4)
	q.Push(5)
	var got []int
	q.Scan(func(v int) bool {
		got = append(got, v)
		return true
	})
	want := []int{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("scanned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scanned %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	q.Scan(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early-stop scan visited %d elements", n)
	}
}
