package fabric

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueuePriorityOrder: with one slot busy, queued sweeps wait behind
// a later-arriving run — priorities beat arrival order across classes,
// FIFO holds within one.
func TestQueuePriorityOrder(t *testing.T) {
	q := NewQueue(1, 8)
	release, err := q.Acquire(context.Background(), PriorityRun)
	if err != nil {
		t.Fatal(err)
	}

	type grant struct {
		who  string
		prio Priority
	}
	grants := make(chan grant, 4)
	var wg sync.WaitGroup
	enqueue := func(who string, prio Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := q.Acquire(context.Background(), prio)
			if err != nil {
				t.Errorf("%s: %v", who, err)
				return
			}
			grants <- grant{who, prio}
			rel()
		}()
	}
	enqueue("sweep-1", PrioritySweep)
	for {
		if _, w := q.Depth(); w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	enqueue("sweep-2", PrioritySweep)
	for {
		if _, w := q.Depth(); w == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	enqueue("run-1", PriorityRun)
	for {
		if _, w := q.Depth(); w == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	release()
	wg.Wait()
	close(grants)
	var order []string
	for g := range grants {
		order = append(order, g.who)
	}
	want := []string{"run-1", "sweep-1", "sweep-2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// TestQueueFullRefusesImmediately: past active+waiting capacity,
// Acquire returns ErrQueueFull without blocking.
func TestQueueFullRefusesImmediately(t *testing.T) {
	q := NewQueue(1, 1)
	rel, err := q.Acquire(context.Background(), PriorityRun)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Fill the wait room.
	go q.Acquire(context.Background(), PriorityRun)
	for {
		if _, w := q.Depth(); w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if _, err := q.Acquire(context.Background(), PriorityRun); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("full queue did not refuse immediately")
	}
}

// TestQueueDrainShedsWaiters: Drain resolves every queued waiter with
// ErrDraining and refuses new arrivals, while held slots release
// normally.
func TestQueueDrainShedsWaiters(t *testing.T) {
	q := NewQueue(1, 8)
	rel, err := q.Acquire(context.Background(), PriorityRun)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 5
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := q.Acquire(context.Background(), PrioritySweep)
			errs <- err
		}()
	}
	for {
		if _, w := q.Depth(); w == waiters {
			break
		}
		time.Sleep(time.Millisecond)
	}
	q.Drain()
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, ErrDraining) {
			t.Fatalf("shed waiter got %v, want ErrDraining", err)
		}
	}
	if _, err := q.Acquire(context.Background(), PriorityRun); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire got %v, want ErrDraining", err)
	}
	rel() // held slot still releases without panic
	if active, waiting := q.Depth(); active != 0 || waiting != 0 {
		t.Errorf("after drain+release: active=%d waiting=%d", active, waiting)
	}
}

// TestQueueCancelWhileWaiting: a waiter that gives up is withdrawn, and
// a grant racing the cancellation is passed on rather than leaked.
func TestQueueCancelWhileWaiting(t *testing.T) {
	q := NewQueue(1, 8)
	rel, err := q.Acquire(context.Background(), PriorityRun)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, PriorityRun)
		got <- err
	}()
	for {
		if _, w := q.Depth(); w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	if _, w := q.Depth(); w != 0 {
		t.Errorf("%d waiters left after withdrawal", w)
	}
	rel()
	// The slot is free again.
	rel2, err := q.Acquire(context.Background(), PriorityRun)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

// TestQueueConcurrentChurn hammers the queue from many goroutines (run
// under -race in CI): every admitted unit must release, and the queue
// must end empty.
func TestQueueConcurrentChurn(t *testing.T) {
	q := NewQueue(4, 16)
	var admitted, refused atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prio := PrioritySweep
			if i%3 == 0 {
				prio = PriorityRun
			}
			rel, err := q.Acquire(context.Background(), prio)
			if err != nil {
				refused.Add(1)
				return
			}
			admitted.Add(1)
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
			rel()
		}(i)
	}
	wg.Wait()
	if active, waiting := q.Depth(); active != 0 || waiting != 0 {
		t.Errorf("queue not empty after churn: active=%d waiting=%d", active, waiting)
	}
	if admitted.Load() == 0 {
		t.Error("nothing admitted")
	}
	t.Logf("admitted=%d refused=%d", admitted.Load(), refused.Load())
}
