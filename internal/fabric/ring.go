// Package fabric turns N dae-serve replicas into one horizontally
// scalable simulation service. It provides the pieces cmd/dae-router
// assembles:
//
//   - Ring: a consistent-hash ring with virtual nodes that assigns every
//     Request hash a stable owning replica, so identical requests always
//     land on the same Engine (whose in-flight dedup then collapses
//     them) and membership changes move only the departing/arriving
//     replica's keys.
//   - Queue: a bounded priority admission queue — interactive runs are
//     admitted ahead of batch sweeps, overflow is refused immediately
//     (429 + Retry-After at the HTTP layer) and a draining router sheds
//     its waiters instead of stranding them.
//   - flightGroup: single-flight collapsing of concurrent identical
//     forwards, so a dead replica's in-flight work is recomputed exactly
//     once on its successor no matter how many clients were waiting.
//   - Store: a read-only view of the shared content-addressed result
//     store (the replicas' common cache directory), letting the router
//     serve any cached hash itself — even when every replica is down.
//   - Router: the HTTP front end wiring all of the above together.
//
// Reports served through the fabric are byte-identical to `dae-sim
// -json`: the router relays replica response bytes verbatim on the run
// path and keeps reports as raw JSON when reassembling sweeps.
package fabric

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per replica. 64 keeps the
// ring's load spread within a few percent of uniform for small clusters
// while membership changes stay cheap (a few hundred points re-sorted).
const DefaultVNodes = 64

// Ring is a consistent-hash ring with virtual nodes. Keys (Request
// content hashes) map to the member owning the first ring point at or
// after the key's own hash. Adding a member moves only the keys the new
// member now owns; removing one moves only the keys it owned — every
// other key keeps its owner, which is what keeps the fabric's caches and
// in-flight dedup warm across membership changes (asserted by property
// tests). The zero Ring is not usable; construct with NewRing. Safe for
// concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []ringPoint // sorted by (hash, member)
	members map[string]bool
}

// ringPoint is one virtual node: a position on the 64-bit circle and the
// member it belongs to.
type ringPoint struct {
	pos    uint64
	member string
}

// NewRing builds a Ring with the given virtual-node count per member
// (<= 0 applies DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hashKey positions a key (or virtual node label) on the circle.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a member. Adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			pos:    hashKey(fmt.Sprintf("%s#%d", member, i)),
			member: member,
		})
	}
	r.sortLocked()
}

// Remove deletes a member. Removing an absent member is a no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortLocked restores point order. Ties on position (astronomically
// unlikely with 64-bit FNV, but determinism must not hinge on luck) are
// broken by member name so every process builds the identical ring.
func (r *Ring) sortLocked() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].member < r.points[j].member
	})
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if succ := r.Successors(key, 1); len(succ) > 0 {
		return succ[0]
	}
	return ""
}

// Successors returns up to n distinct members in ring order starting at
// key's owner. This is the fabric's failover chain: a request whose
// owner is dead retries down this list, and because the list is a pure
// function of (ring membership, key), every router instance computes the
// same chain.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	pos := hashKey(key)
	// First point at or after pos, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
