package fabric

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

// Priority orders admission: higher values are granted slots first.
type Priority int

// The fabric's two traffic classes. Interactive single runs jump ahead
// of batch sweeps so a sweep storm cannot starve the low-latency path —
// the SLO gate measures cached-run p99 under exactly that contention.
const (
	PrioritySweep Priority = 0
	PriorityRun   Priority = 1
)

// Admission errors.
var (
	// ErrQueueFull refuses an arrival when the wait queue is at capacity;
	// the HTTP layer maps it to 429 + Retry-After.
	ErrQueueFull = errors.New("fabric: admission queue full")
	// ErrDraining sheds arrivals and waiters while the router shuts down;
	// the HTTP layer maps it to 503 + Retry-After.
	ErrDraining = errors.New("fabric: router draining")
)

// Queue is the fabric's bounded priority admission queue: up to active
// slots execute concurrently, up to waiting arrivals queue beyond that
// (highest Priority first, FIFO within a class), and everything past
// both bounds is refused immediately — load the fabric cannot absorb is
// pushed back to clients as backpressure instead of piling up as latent
// latency. Drain sheds all waiters for graceful shutdown. Safe for
// concurrent use.
type Queue struct {
	mu       sync.Mutex
	active   int
	maxAct   int
	maxWait  int
	draining bool
	seq      uint64
	waiters  waiterHeap
}

// waiter is one queued arrival. grant/shed are resolved under the
// queue's lock, then signalled by closing ready.
type waiter struct {
	prio    Priority
	seq     uint64
	ready   chan struct{}
	granted bool
	index   int // heap bookkeeping; -1 once popped
}

// NewQueue builds a Queue admitting active concurrent slots with a wait
// room of waiting arrivals (values < 1 are raised to 1).
func NewQueue(active, waiting int) *Queue {
	if active < 1 {
		active = 1
	}
	if waiting < 1 {
		waiting = 1
	}
	return &Queue{maxAct: active, maxWait: waiting}
}

// Acquire admits one unit of work: it returns a release function once a
// slot is granted, ErrQueueFull if the wait room is at capacity,
// ErrDraining during shutdown, or ctx's error if the caller gives up
// while queued. The release function must be called exactly once when
// the work finishes; it hands the slot to the highest-priority waiter.
func (q *Queue) Acquire(ctx context.Context, prio Priority) (func(), error) {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil, ErrDraining
	}
	if q.active < q.maxAct {
		q.active++
		q.mu.Unlock()
		return q.releaseFunc(), nil
	}
	if q.waiters.Len() >= q.maxWait {
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{prio: prio, seq: q.seq, ready: make(chan struct{})}
	q.seq++
	heap.Push(&q.waiters, w)
	q.mu.Unlock()

	select {
	case <-w.ready:
		// Granted, or shed by Drain.
		if !w.granted {
			return nil, ErrDraining
		}
		return q.releaseFunc(), nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.index >= 0 {
			// Still queued: withdraw.
			heap.Remove(&q.waiters, w.index)
			q.mu.Unlock()
			return nil, ctx.Err()
		}
		q.mu.Unlock()
		// Resolved concurrently with the cancellation: if a slot was
		// granted it must flow back or it would leak.
		<-w.ready
		if w.granted {
			q.releaseFunc()()
		}
		return nil, ctx.Err()
	}
}

// releaseFunc builds the one-shot slot release.
func (q *Queue) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			q.mu.Lock()
			if q.waiters.Len() > 0 {
				// The slot transfers: active stays constant.
				w := heap.Pop(&q.waiters).(*waiter)
				w.granted = true
				close(w.ready)
			} else {
				q.active--
			}
			q.mu.Unlock()
		})
	}
}

// Drain flips the queue into shutdown: every queued waiter is shed with
// ErrDraining (their clients can retry against another router) and all
// future Acquires are refused. Work already holding slots finishes
// normally — graceful shedding, not abortion.
func (q *Queue) Drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.draining = true
	for q.waiters.Len() > 0 {
		w := heap.Pop(&q.waiters).(*waiter)
		close(w.ready) // granted stays false
	}
}

// Depth snapshots the queue (for the router's health endpoint).
func (q *Queue) Depth() (active, waiting int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.active, q.waiters.Len()
}

// waiterHeap orders waiters by (priority desc, arrival asc).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}
