package fabric

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys generates a deterministic key population shaped like the real
// one: hex content hashes.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return keys
}

func owners(r *Ring, keys []string) map[string]string {
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		m[k] = r.Owner(k)
	}
	return m
}

// TestRingRemovalMovesOnlyDepartedKeys is the consistent-hashing
// property the fabric's warm caches depend on: across many random
// membership removals, a key changes owner if and only if its owner
// departed — and its new owner is the next member on its successor
// chain, so routers agree on where the key went.
func TestRingRemovalMovesOnlyDepartedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := ringKeys(4096)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6) // 2..7 replicas
		r := NewRing(DefaultVNodes)
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://replica-%d-%d:81", trial, i)
			r.Add(members[i])
		}
		before := owners(r, keys)
		// Record each key's 2-member chain before the change: if its owner
		// departs, the key must land exactly on the chain's second entry.
		chains := make(map[string][]string, len(keys))
		for _, k := range keys {
			chains[k] = r.Successors(k, 2)
		}

		departing := members[rng.Intn(n)]
		r.Remove(departing)
		after := owners(r, keys)

		moved := 0
		for _, k := range keys {
			switch {
			case before[k] != departing && after[k] != before[k]:
				t.Fatalf("trial %d: key %s moved %s -> %s although %s departed",
					trial, k[:12], before[k], after[k], departing)
			case before[k] == departing:
				moved++
				if want := chains[k][1]; after[k] != want {
					t.Fatalf("trial %d: departed key %s went to %s, want ring successor %s",
						trial, k[:12], after[k], want)
				}
			}
		}
		if n > 1 && moved == 0 {
			t.Fatalf("trial %d: departing replica owned no keys (degenerate ring)", trial)
		}
	}
}

// TestRingAdditionMovesKeysOnlyToArrival: the dual property — after an
// add, every moved key is owned by the new member.
func TestRingAdditionMovesKeysOnlyToArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := ringKeys(4096)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		r := NewRing(DefaultVNodes)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("http://replica-%d-%d:81", trial, i))
		}
		before := owners(r, keys)
		arriving := fmt.Sprintf("http://replica-%d-new:81", trial)
		r.Add(arriving)
		after := owners(r, keys)

		moved := 0
		for _, k := range keys {
			if after[k] != before[k] {
				moved++
				if after[k] != arriving {
					t.Fatalf("trial %d: key %s moved %s -> %s, but only %s arrived",
						trial, k[:12], before[k], after[k], arriving)
				}
			}
		}
		if moved == 0 {
			t.Fatalf("trial %d: new replica took no keys", trial)
		}
		// Rough balance: the newcomer's share of a large uniform key
		// population should be within 3x of fair (vnodes smooth the ring,
		// they don't perfect it).
		fair := len(keys) / (n + 1)
		if moved > 3*fair {
			t.Errorf("trial %d: new replica took %d keys, fair share %d (ring badly unbalanced)",
				trial, moved, fair)
		}
	}
}

// TestRingDeterministicAcrossInstances: two rings built from the same
// membership — in different insertion orders — agree on every owner and
// successor chain. Routers must not need to coordinate.
func TestRingDeterministicAcrossInstances(t *testing.T) {
	members := []string{"http://a:81", "http://b:81", "http://c:81", "http://d:81"}
	a := NewRing(32)
	for _, m := range members {
		a.Add(m)
	}
	b := NewRing(32)
	for i := len(members) - 1; i >= 0; i-- {
		b.Add(members[i])
	}
	for _, k := range ringKeys(512) {
		sa := a.Successors(k, len(members))
		sb := b.Successors(k, len(members))
		if len(sa) != len(sb) {
			t.Fatalf("key %s: chain lengths differ", k[:12])
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("key %s: chains differ at %d: %v vs %v", k[:12], i, sa, sb)
			}
		}
	}
}

// TestRingEdgeCases: empty ring, single member, duplicate adds,
// successor bounds.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(8)
	if got := r.Owner("k"); got != "" {
		t.Errorf("empty ring owner %q", got)
	}
	if got := r.Successors("k", 3); got != nil {
		t.Errorf("empty ring successors %v", got)
	}
	r.Add("only")
	r.Add("only") // duplicate: no-op
	if got := r.Owner("k"); got != "only" {
		t.Errorf("single-member owner %q", got)
	}
	if got := r.Successors("k", 5); len(got) != 1 {
		t.Errorf("successors %v, want exactly the one member", got)
	}
	if got := len(r.Members()); got != 1 {
		t.Errorf("%d members after duplicate add", got)
	}
	r.Remove("absent") // no-op
	r.Remove("only")
	if got := r.Owner("k"); got != "" {
		t.Errorf("owner %q after removing the last member", got)
	}
}
