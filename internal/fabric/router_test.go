package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	daesim "repro"
	"repro/internal/serveapi"
)

// tinyOpts keeps fabric-test simulations in the millisecond range.
func tinyOpts() daesim.RunOpts {
	return daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 2_000}
}

// replicaStack is one in-process dae-serve replica: a real Engine behind
// the real serveapi handler.
type replicaStack struct {
	eng *daesim.Engine
	ts  *httptest.Server
}

// newReplica boots a replica mounted on the shared store directory.
func newReplica(t *testing.T, storeDir string) *replicaStack {
	t.Helper()
	eng, err := daesim.NewEngine(daesim.EngineOpts{CacheDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serveapi.NewHandler(eng, 30*time.Second, serveapi.DefaultMaxBody))
	t.Cleanup(ts.Close)
	return &replicaStack{eng: eng, ts: ts}
}

// newFabric boots n replicas over one shared store plus a router in
// front, returning the router's test server too.
func newFabric(t *testing.T, n int, cfg Config) (*Router, *httptest.Server, []*replicaStack) {
	t.Helper()
	storeDir := cfg.StoreDir
	if storeDir == "" {
		storeDir = t.TempDir()
	}
	replicas := make([]*replicaStack, n)
	for i := range replicas {
		replicas[i] = newReplica(t, storeDir)
		cfg.Replicas = append(cfg.Replicas, replicas[i].ts.URL)
	}
	cfg.StoreDir = storeDir
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts, replicas
}

// post issues one JSON POST and returns status plus raw body bytes.
// Failures report via t.Error (not Fatal) so the helper is safe from
// spawned goroutines; callers check the returned status.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Error(err)
		return 0, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Error(err)
		return 0, nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Error(err)
		return 0, nil
	}
	return resp.StatusCode, b
}

// get issues one GET and returns status plus raw body bytes.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Error(err)
		return 0, nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Error(err)
		return 0, nil
	}
	return resp.StatusCode, b
}

// TestRouterByteIdentity: the acceptance bar — a run POSTed through the
// router (≥2 replicas) returns bytes identical to the same run against
// a standalone dae-serve handler, on both the fresh and the cached path,
// for single runs, sweeps, and GET-by-hash.
func TestRouterByteIdentity(t *testing.T) {
	_, fabricTS, _ := newFabric(t, 2, Config{})
	standalone := newReplica(t, t.TempDir())

	req := daesim.MixRequest(daesim.Figure2(1), tinyOpts())
	req.Label = "identity"

	// Fresh path: both stacks simulate from scratch; determinism makes
	// the reports — and therefore the whole envelope — byte-equal.
	st1, fresh := post(t, fabricTS.URL+"/v1/runs", req)
	st2, want := post(t, standalone.ts.URL+"/v1/runs", req)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("fresh statuses: router=%d standalone=%d (%s)", st1, st2, fresh)
	}
	if !bytes.Equal(fresh, want) {
		t.Errorf("fresh run through router differs from standalone:\nrouter:     %s\nstandalone: %s", fresh, want)
	}
	if !strings.Contains(string(fresh), `"cached": false`) {
		t.Errorf("first run not fresh: %s", fresh)
	}

	// Cached path: the router answers from the shared store; bytes must
	// still match the standalone replica's own cache-hit response.
	st1, cached := post(t, fabricTS.URL+"/v1/runs", req)
	st2, want = post(t, standalone.ts.URL+"/v1/runs", req)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("cached statuses: router=%d standalone=%d", st1, st2)
	}
	if !bytes.Equal(cached, want) {
		t.Errorf("cached run through router differs from standalone:\nrouter:     %s\nstandalone: %s", cached, want)
	}
	if !strings.Contains(string(cached), `"cached": true`) {
		t.Errorf("second run not cached: %s", cached)
	}

	// GET-by-hash, served by the router's store mount vs the replica.
	var rr serveapi.RunResponse
	if err := json.Unmarshal(fresh, &rr); err != nil {
		t.Fatal(err)
	}
	st1, got := get(t, fabricTS.URL+"/v1/runs/"+rr.Hash)
	st2, want = get(t, standalone.ts.URL+"/v1/runs/"+rr.Hash)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("GET statuses: router=%d standalone=%d", st1, st2)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("GET through router differs from standalone:\nrouter:     %s\nstandalone: %s", got, want)
	}

	// Sweep envelope: scattered across the fabric, reassembled in order,
	// byte-identical to one replica running the whole batch. One request
	// repeats (cache hit inside the sweep), one is fresh.
	sweepReqs := []daesim.Request{req}
	fresh2 := daesim.MixRequest(daesim.Figure2(2), tinyOpts())
	fresh2.Label = "identity-2"
	sweepReqs = append(sweepReqs, fresh2)
	st1, sweepGot := post(t, fabricTS.URL+"/v1/sweeps", serveapi.SweepRequest{Requests: sweepReqs})
	st2, sweepWant := post(t, standalone.ts.URL+"/v1/sweeps", serveapi.SweepRequest{Requests: sweepReqs})
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("sweep statuses: router=%d standalone=%d", st1, st2)
	}
	if !bytes.Equal(sweepGot, sweepWant) {
		t.Errorf("sweep through router differs from standalone:\nrouter:     %s\nstandalone: %s", sweepGot, sweepWant)
	}
}

// TestRouterRoutesByHash: each distinct request lands on its ring owner;
// across many requests every replica sees work and nothing is computed
// twice.
func TestRouterRoutesByHash(t *testing.T) {
	_, fabricTS, replicas := newFabric(t, 3, Config{})

	const n = 9
	hashes := make(map[string]bool)
	for i := 0; i < n; i++ {
		req := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{
			WarmupInsts: 500, MeasureInsts: 2_000, Seed: uint64(i + 1)})
		status, body := post(t, fabricTS.URL+"/v1/runs", req)
		if status != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, status, body)
		}
		var rr serveapi.RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		hashes[rr.Hash] = true
	}
	var total int64
	for i, rep := range replicas {
		s := rep.eng.Stats()
		total += s.Simulated
		t.Logf("replica %d: simulated=%d", i, s.Simulated)
	}
	if total != int64(len(hashes)) {
		t.Errorf("total simulations %d != %d unique hashes", total, len(hashes))
	}
}

// TestRouterReplicaDeathMidSweep is the race-enabled failover e2e: a
// replica is killed while a sweep is in flight and the sweep must still
// return every result (nothing lost), while the engines behind the
// surviving replicas simulate each unique request exactly once (nothing
// double-executed). The victim is a hang-until-killed fake that owns a
// known subset of the ring, so the kill deterministically lands
// mid-request.
func TestRouterReplicaDeathMidSweep(t *testing.T) {
	storeDir := t.TempDir()
	live := []*replicaStack{newReplica(t, storeDir), newReplica(t, storeDir)}

	// The victim accepts work, reports it, then hangs until killed.
	victimGotWork := make(chan struct{})
	var once sync.Once
	victimHold := make(chan struct{})
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			serveapi.WriteJSON(w, http.StatusOK, serveapi.HealthResponse{OK: true})
			return
		}
		once.Do(func() { close(victimGotWork) })
		<-victimHold
	}))
	defer victim.Close()

	bases := []string{live[0].ts.URL, live[1].ts.URL, victim.URL}
	rt, err := NewRouter(Config{Replicas: bases, StoreDir: storeDir, HealthEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	fabricTS := httptest.NewServer(rt)
	defer fabricTS.Close()

	// Build a sweep where the victim owns several requests. The mirror
	// ring below is the same deterministic structure the router built.
	mirror := NewRing(0)
	for _, b := range bases {
		mirror.Add(b)
	}
	var reqs []daesim.Request
	victimOwned := 0
	for seed := uint64(1); len(reqs) < 12 || victimOwned < 2; seed++ {
		if seed > 200 {
			t.Fatal("could not find victim-owned requests (ring broken?)")
		}
		req := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{
			WarmupInsts: 500, MeasureInsts: 2_000, Seed: seed})
		req.Label = fmt.Sprintf("kill-%d", seed)
		if mirror.Owner(req.Hash()) == victim.URL {
			victimOwned++
		}
		reqs = append(reqs, req)
	}
	t.Logf("sweep: %d requests, %d owned by victim", len(reqs), victimOwned)

	sweepDone := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(sweepDone)
		status, body = post(t, fabricTS.URL+"/v1/sweeps", serveapi.SweepRequest{Requests: reqs})
	}()

	// Kill the victim while it holds in-flight sweep requests. Its
	// blocked handlers must be released before Close, which waits on
	// them.
	<-victimGotWork
	victim.CloseClientConnections()
	close(victimHold)
	victim.Close()

	select {
	case <-sweepDone:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep did not complete after replica death")
	}
	if status != http.StatusOK {
		t.Fatalf("sweep status %d: %s", status, body)
	}
	var resp routedSweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	// Nothing lost: every request has a report, none an error.
	if resp.Failed != 0 {
		t.Errorf("sweep failed=%d after failover: %s", resp.Failed, body)
	}
	if len(resp.Results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(resp.Results), len(reqs))
	}
	hashes := make(map[string]bool)
	for i, res := range resp.Results {
		if res.Error != "" {
			t.Errorf("result %d (%s): %s", i, res.Label, res.Error)
		}
		if len(res.Report) == 0 {
			t.Errorf("result %d (%s): no report", i, res.Label)
		}
		if res.Label != reqs[i].Label {
			t.Errorf("result %d: label %q, want %q (order lost)", i, res.Label, reqs[i].Label)
		}
		hashes[res.Hash] = true
	}
	// Nothing double-executed: the victim never simulated anything, so
	// the survivors' engines must account for each unique hash once.
	var total int64
	for _, rep := range live {
		total += rep.eng.Stats().Simulated
	}
	if total != int64(len(hashes)) {
		t.Errorf("survivors simulated %d jobs for %d unique hashes", total, len(hashes))
	}

	// The router noticed the death.
	st, hb := get(t, fabricTS.URL+"/healthz")
	if st != http.StatusOK {
		t.Fatalf("router health after failover: %d: %s", st, hb)
	}
	var h Health
	if err := json.Unmarshal(hb, &h); err != nil {
		t.Fatal(err)
	}
	deadSeen := false
	for _, r := range h.Replicas {
		if r.URL == victim.URL && !r.Alive {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Errorf("victim still marked alive in %s", hb)
	}
}

// TestRouterAdmissionControl: with one slot and one waiting spot, a
// third concurrent arrival gets 429 + Retry-After, and a draining router
// sheds with 503.
func TestRouterAdmissionControl(t *testing.T) {
	// A fake replica that hangs until released, so slots stay occupied.
	hold := make(chan struct{})
	var inFlight atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			serveapi.WriteJSON(w, http.StatusOK, serveapi.HealthResponse{OK: true})
			return
		}
		inFlight.Add(1)
		<-hold
		serveapi.WriteJSON(w, http.StatusOK, serveapi.RunResponse{Hash: "deadbeef"})
	}))
	defer slow.Close()

	rt, err := NewRouter(Config{
		Replicas:   []string{slow.URL},
		MaxActive:  1,
		MaxQueue:   1,
		RetryAfter: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt)
	defer ts.Close()
	// Declared last so it runs first: the held forwards must unblock
	// before ts.Close can drain its in-flight requests.
	defer close(hold)

	mkReq := func(seed uint64) daesim.Request {
		return daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{
			WarmupInsts: 500, MeasureInsts: 2_000, Seed: seed})
	}
	// Occupy the slot.
	go post(t, ts.URL+"/v1/runs", mkReq(1))
	waitFor(t, func() bool { return inFlight.Load() == 1 })
	// Occupy the wait room (distinct hash so single-flight can't collapse).
	go post(t, ts.URL+"/v1/runs", mkReq(2))
	waitFor(t, func() bool { _, w := rt.queue.Depth(); return w == 1 })

	// Third arrival: refused with backpressure.
	raw, _ := json.Marshal(mkReq(3))
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full fabric returned %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	// Drain: waiters shed with 503, new arrivals refused with 503.
	rt.queue.Drain()
	resp, err = http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining fabric returned %d, want 503", resp.StatusCode)
	}
}

// waitFor polls cond until true or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRouterEventsProxy: the SSE stream reaches the client through the
// router, including the cached-hash immediate-done contract.
func TestRouterEventsProxy(t *testing.T) {
	_, fabricTS, _ := newFabric(t, 2, Config{})
	req := daesim.MixRequest(daesim.Figure2(1), tinyOpts())
	status, body := post(t, fabricTS.URL+"/v1/runs", req)
	if status != http.StatusOK {
		t.Fatalf("run: %d: %s", status, body)
	}
	var rr serveapi.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fabricTS.URL + "/v1/runs/" + rr.Hash + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	stream, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stream), "event: done") {
		t.Errorf("no done event in proxied stream: %s", stream)
	}
	if !strings.Contains(string(stream), rr.Hash) {
		t.Errorf("stream missing hash %s: %s", rr.Hash, stream)
	}
}

// TestRouterStoreSurvivesTotalReplicaLoss: cached results stay servable
// through the router with every replica down.
func TestRouterStoreSurvivesTotalReplicaLoss(t *testing.T) {
	_, fabricTS, replicas := newFabric(t, 2, Config{})
	req := daesim.MixRequest(daesim.Figure2(1), tinyOpts())
	req.Label = "survivor"
	status, body := post(t, fabricTS.URL+"/v1/runs", req)
	if status != http.StatusOK {
		t.Fatalf("run: %d: %s", status, body)
	}
	var rr serveapi.RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}

	for _, rep := range replicas {
		rep.ts.CloseClientConnections()
		rep.ts.Close()
	}

	// Cached POST and GET still answer from the store.
	status, body2 := post(t, fabricTS.URL+"/v1/runs", req)
	if status != http.StatusOK {
		t.Fatalf("cached run with all replicas down: %d: %s", status, body2)
	}
	if !strings.Contains(string(body2), `"cached": true`) {
		t.Errorf("expected cache hit: %s", body2)
	}
	status, _ = get(t, fabricTS.URL+"/v1/runs/"+rr.Hash)
	if status != http.StatusOK {
		t.Errorf("GET with all replicas down: %d", status)
	}

	// A fresh request, by contrast, reports the fabric as unavailable.
	fresh := daesim.MixRequest(daesim.Figure2(4), tinyOpts())
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	raw, _ := json.Marshal(fresh)
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, fabricTS.URL+"/v1/runs", bytes.NewReader(raw))
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	eb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("fresh run with all replicas down: %d, want 503: %s", resp.StatusCode, eb)
	}
}

// TestRouterSingleFlightCollapsesStampede: N concurrent identical fresh
// requests produce exactly one simulation.
func TestRouterSingleFlightCollapsesStampede(t *testing.T) {
	_, fabricTS, replicas := newFabric(t, 2, Config{})
	req := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{
		WarmupInsts: 2_000, MeasureInsts: 20_000})

	const clients = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, b := post(t, fabricTS.URL+"/v1/runs", req)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, b)
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()

	var total int64
	for _, rep := range replicas {
		total += rep.eng.Stats().Simulated
	}
	if total != 1 {
		t.Errorf("stampede simulated %d times, want 1", total)
	}
	// Every client got a valid report for the same hash.
	var first serveapi.RunResponse
	if err := json.Unmarshal(bodies[0], &first); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < clients; i++ {
		var rr serveapi.RunResponse
		if err := json.Unmarshal(bodies[i], &rr); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if rr.Hash != first.Hash || rr.Report == nil {
			t.Errorf("client %d: hash %q report %v", i, rr.Hash, rr.Report != nil)
		}
	}
}
