package fabric

import (
	"fmt"
	"os"

	"repro/internal/runner"
	"repro/internal/stats"
)

// Store is the router's read-only view of the fabric's shared
// content-addressed result store: the cache directory every replica
// mounts (dae-serve -cache) behind its Engine's two-level cache. Entries
// are one JSON file per Request hash, written atomically by whichever
// replica computed the result — so the store needs no coordinator, any
// replica can serve any hash, and the router itself can answer cache
// hits (and GET-by-hash) without touching a replica at all, replicas
// dead or alive.
type Store struct {
	dir string
}

// OpenStore opens the shared store rooted at dir. The directory is
// created if missing so the router can boot before the first replica
// does; an unusable path is an immediate error rather than a silent
// all-miss store.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("fabric: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Get returns the stored report for a Request content hash. Malformed
// hashes (anything but lowercase hex — defense against path traversal
// on an HTTP-supplied value) and unreadable, partial or mismatched
// entries are misses.
func (s *Store) Get(hash string) (stats.Report, bool) {
	if !validHash(hash) {
		return stats.Report{}, false
	}
	return runner.LoadEntry(s.dir, hash)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validHash reports whether hash looks like a runner content hash
// (non-empty lowercase hex).
func validHash(hash string) bool {
	if hash == "" {
		return false
	}
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
