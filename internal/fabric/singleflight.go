package fabric

import (
	"context"
	"errors"
	"sync"
)

// flightGroup collapses concurrent identical work: while one caller (the
// owner) executes fn for a key, later callers with the same key wait and
// share the owner's result instead of re-executing. This is what makes
// "a dead replica's in-flight work is recomputed exactly once" true at
// the router: when a replica dies with N clients waiting on the same
// Request hash, all N retries collapse into one forward to the successor
// replica — whose own Engine dedup then guards against other routers.
//
// Mirroring internal/runner's in-flight table, a waiter whose owner was
// cancelled or timed out (while the waiter itself is still live) does
// not inherit the owner's failure: it loops and becomes the next owner,
// so one impatient client cannot poison everyone behind it.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight execution.
type flightCall struct {
	done chan struct{}
	val  *forwardResult
	err  error
}

// do executes fn for key, collapsing concurrent duplicates.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*forwardResult, error)) (*forwardResult, error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flightCall)
		}
		if c, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err != nil && ctx.Err() == nil &&
				(errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				// The owner's cancellation, not ours: retry as owner.
				continue
			}
			return c.val, c.err
		}
		c := &flightCall{done: make(chan struct{})}
		g.m[key] = c
		g.mu.Unlock()

		c.val, c.err = fn()
		// Deregister before signalling so a caller arriving after
		// completion starts fresh (and hits the cache) rather than
		// adopting a stale response.
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		return c.val, c.err
	}
}
