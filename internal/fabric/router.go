package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	daesim "repro"
	"repro/internal/serveapi"
)

// Config configures a Router.
type Config struct {
	// Replicas are the dae-serve base URLs (e.g. "http://127.0.0.1:8177")
	// forming the fabric. At least one is required.
	Replicas []string
	// VNodes is the consistent-hash virtual-node count per replica
	// (<= 0 = DefaultVNodes).
	VNodes int
	// HealthEvery is the replica health-probe cadence (<= 0 = 1s).
	// Probes recover replicas that forwards marked dead.
	HealthEvery time.Duration
	// MaxActive bounds concurrently admitted client requests and MaxQueue
	// the arrivals waiting beyond that; everything past both gets 429
	// (<= 0 = 64 and 256).
	MaxActive, MaxQueue int
	// RetryAfter is the hint clients get with 429/503 (<= 0 = 1s).
	RetryAfter time.Duration
	// StoreDir mounts the replicas' shared content-addressed result store
	// read-only, letting the router itself serve cached hashes
	// ("" = always forward).
	StoreDir string
	// SweepFanout bounds a sweep's concurrent per-request forwards
	// (<= 0 = 2 per replica, min 4).
	SweepFanout int
	// MaxBody bounds request bodies (<= 0 = serveapi.DefaultMaxBody).
	MaxBody int64
	// Client overrides the forwarding HTTP client (nil = a pooled default
	// with no global timeout — streams must outlive any fixed cap).
	Client *http.Client
}

// replicaState tracks one replica's liveness as seen by this router.
type replicaState struct {
	base  string
	alive atomic.Bool
}

// Router is the fabric front end: an http.Handler that consistent-hash
// routes simulation traffic across dae-serve replicas, with admission
// control in front and retry-on-replica-death behind. Construct with
// NewRouter, serve it, and Close it on shutdown (sheds the admission
// queue, stops health probes).
type Router struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replicaState
	queue    *Queue
	flights  flightGroup
	store    *Store // nil without StoreDir
	client   *http.Client
	mux      *http.ServeMux

	stopHealth context.CancelFunc
	healthDone chan struct{}
}

// forwardResult is one proxied replica response, relayed verbatim so
// fabric responses stay byte-identical to replica responses.
type forwardResult struct {
	status      int
	contentType string
	body        []byte
	replica     string
}

// NewRouter builds and starts a Router (health probes begin
// immediately).
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fabric: router needs at least one replica")
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = time.Second
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 64
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.SweepFanout <= 0 {
		cfg.SweepFanout = 2 * len(cfg.Replicas)
		if cfg.SweepFanout < 4 {
			cfg.SweepFanout = 4
		}
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = serveapi.DefaultMaxBody
	}
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.VNodes),
		replicas: make(map[string]*replicaState, len(cfg.Replicas)),
		queue:    NewQueue(cfg.MaxActive, cfg.MaxQueue),
		client:   cfg.Client,
	}
	for _, base := range cfg.Replicas {
		for len(base) > 0 && base[len(base)-1] == '/' {
			base = base[:len(base)-1]
		}
		if base == "" {
			return nil, fmt.Errorf("fabric: empty replica URL")
		}
		if _, dup := rt.replicas[base]; dup {
			return nil, fmt.Errorf("fabric: duplicate replica %s", base)
		}
		st := &replicaState{base: base}
		st.alive.Store(true) // optimistic: forwards self-correct
		rt.replicas[base] = st
		rt.ring.Add(base)
	}
	if cfg.StoreDir != "" {
		store, err := OpenStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		rt.store = store
	}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", rt.handleRun)
	mux.HandleFunc("POST /v1/sweeps", rt.handleSweep)
	mux.HandleFunc("GET /v1/runs/{hash}", rt.handleGet)
	mux.HandleFunc("GET /v1/runs/{hash}/events", rt.handleEvents)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux = mux

	hctx, cancel := context.WithCancel(context.Background())
	rt.stopHealth = cancel
	rt.healthDone = make(chan struct{})
	go rt.healthLoop(hctx)
	return rt, nil
}

// Close drains the admission queue (shedding waiters with 503) and stops
// the health probes. In-flight admitted work is not aborted.
func (rt *Router) Close() {
	rt.queue.Drain()
	rt.stopHealth()
	<-rt.healthDone
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// healthLoop probes every replica's /healthz on a fixed cadence. Forward
// failures mark replicas dead instantly; only probes mark them live
// again.
func (rt *Router) healthLoop(ctx context.Context) {
	defer close(rt.healthDone)
	ticker := time.NewTicker(rt.cfg.HealthEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rt.probeAll(ctx)
		}
	}
}

// probeAll checks every replica concurrently.
func (rt *Router) probeAll(ctx context.Context) {
	timeout := rt.cfg.HealthEvery
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	var wg sync.WaitGroup
	for _, st := range rt.replicas {
		wg.Add(1)
		go func(st *replicaState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, st.base+"/healthz", nil)
			if err != nil {
				st.alive.Store(false)
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				st.alive.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			st.alive.Store(resp.StatusCode == http.StatusOK)
		}(st)
	}
	wg.Wait()
}

// chain returns the failover order for a key: the ring's successor chain
// with live replicas first (dead-marked ones stay at the tail — a probe
// may simply not have noticed a recovery yet, and trying them last never
// costs a live request anything).
func (rt *Router) chain(hash string) []string {
	succ := rt.ring.Successors(hash, len(rt.replicas))
	ordered := make([]string, 0, len(succ))
	for _, base := range succ {
		if rt.replicas[base].alive.Load() {
			ordered = append(ordered, base)
		}
	}
	for _, base := range succ {
		if !rt.replicas[base].alive.Load() {
			ordered = append(ordered, base)
		}
	}
	return ordered
}

// forward proxies one request down hash's failover chain, returning the
// first replica response. Transport failures mark the replica dead and
// move on — except the caller's own cancellation, which aborts the
// forward without blaming the replica.
func (rt *Router) forward(ctx context.Context, method, path string, body []byte, hash string) (*forwardResult, error) {
	var lastErr error
	for _, base := range rt.chain(hash) {
		req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if method == http.MethodPost {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			rt.replicas[base].alive.Store(false)
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Died mid-response. Retrying is safe: requests are
			// content-addressed and idempotent, and anything the dead
			// replica did complete is in the shared store.
			rt.replicas[base].alive.Store(false)
			lastErr = err
			continue
		}
		return &forwardResult{
			status:      resp.StatusCode,
			contentType: resp.Header.Get("Content-Type"),
			body:        respBody,
			replica:     base,
		}, nil
	}
	return nil, fmt.Errorf("fabric: no live replica reachable: %w", lastErr)
}

// relay writes a replica response verbatim.
func relay(w http.ResponseWriter, res *forwardResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// admissionError maps queue refusals to HTTP backpressure.
func (rt *Router) admissionError(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(int((rt.cfg.RetryAfter+time.Second-1)/time.Second)))
	switch err {
	case ErrQueueFull:
		serveapi.WriteJSON(w, http.StatusTooManyRequests, serveapi.ErrorResponse{Error: err.Error()})
	case ErrDraining:
		serveapi.WriteJSON(w, http.StatusServiceUnavailable, serveapi.ErrorResponse{Error: err.Error()})
	default: // caller cancelled while queued
		serveapi.WriteJSON(w, 499, serveapi.ErrorResponse{Error: err.Error()})
	}
}

// handleRun routes one Request to its owning replica by content hash.
// Cache hits are served straight from the shared store; misses forward
// under admission control, collapsed by single-flight so concurrent
// identical requests — including the retry stampede after a replica
// death — cost one recomputation.
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	raw, req, ok := rt.decodeRun(w, r)
	if !ok {
		return
	}
	hash := req.Hash()
	// Shared-store fast path: cached results bypass the queue entirely,
	// which is what keeps cached-run p99 flat under sweep pressure.
	if rt.store != nil {
		if rep, ok := rt.store.Get(hash); ok {
			serveapi.WriteJSON(w, http.StatusOK, serveapi.RunResponse{
				Label: req.Label, Hash: hash, Cached: true, Report: &rep})
			return
		}
	}
	res, err := rt.flights.do(r.Context(), hash, func() (*forwardResult, error) {
		release, err := rt.queue.Acquire(r.Context(), PriorityRun)
		if err != nil {
			return nil, err
		}
		defer release()
		return rt.forward(r.Context(), http.MethodPost, "/v1/runs", raw, hash)
	})
	switch {
	case err == ErrQueueFull || err == ErrDraining:
		rt.admissionError(w, err)
	case err != nil:
		status := http.StatusServiceUnavailable
		if r.Context().Err() != nil {
			status = 499
		}
		serveapi.WriteJSON(w, status, serveapi.ErrorResponse{Error: err.Error()})
	default:
		relay(w, res)
	}
}

// decodeRun strictly parses a Request body, answering 400 like a replica
// would on failure. The raw bytes are returned for verbatim forwarding.
func (rt *Router) decodeRun(w http.ResponseWriter, r *http.Request) ([]byte, daesim.Request, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		serveapi.WriteJSON(w, http.StatusBadRequest, serveapi.ErrorResponse{Error: fmt.Sprintf("decode body: %v", err)})
		return nil, daesim.Request{}, false
	}
	var req daesim.Request
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serveapi.WriteJSON(w, http.StatusBadRequest, serveapi.ErrorResponse{Error: fmt.Sprintf("decode body: %v", err)})
		return nil, daesim.Request{}, false
	}
	return raw, req, true
}

// routedResult mirrors serveapi.RunResponse with the report kept as raw
// bytes, so reassembling a sweep cannot perturb replica-produced report
// JSON.
type routedResult struct {
	Label  string          `json:"label,omitempty"`
	Hash   string          `json:"hash,omitempty"`
	Cached bool            `json:"cached"`
	Report json.RawMessage `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// routedSweepResponse is the router's sweep reply, shape-identical to
// serveapi.SweepResponse.
type routedSweepResponse struct {
	Results []routedResult `json:"results"`
	Failed  int            `json:"failed"`
}

// handleSweep scatters a sweep's requests across the fabric — each
// routed by its own content hash — and gathers the results in request
// order. The sweep holds one admission slot; its internal fan-out is
// bounded by SweepFanout.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sweep serveapi.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sweep); err != nil {
		serveapi.WriteJSON(w, http.StatusBadRequest, serveapi.ErrorResponse{Error: fmt.Sprintf("decode body: %v", err)})
		return
	}
	if len(sweep.Requests) == 0 {
		serveapi.WriteJSON(w, http.StatusBadRequest, serveapi.ErrorResponse{Error: serveapi.EmptySweepError})
		return
	}
	if len(sweep.Requests) > serveapi.MaxSweepRequests {
		serveapi.WriteJSON(w, http.StatusBadRequest, serveapi.ErrorResponse{
			Error: serveapi.SweepTooLargeError(len(sweep.Requests))})
		return
	}
	release, err := rt.queue.Acquire(r.Context(), PrioritySweep)
	if err != nil {
		rt.admissionError(w, err)
		return
	}
	defer release()

	results := make([]routedResult, len(sweep.Requests))
	sem := make(chan struct{}, rt.cfg.SweepFanout)
	var wg sync.WaitGroup
	for i, rq := range sweep.Requests {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, rq daesim.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = rt.runOne(r.Context(), rq)
		}(i, rq)
	}
	wg.Wait()

	resp := routedSweepResponse{Results: results}
	for i := range results {
		if results[i].Error != "" {
			resp.Failed++
		}
	}
	serveapi.WriteJSON(w, http.StatusOK, resp)
}

// runOne resolves one sweep point: store, then a single-flighted forward
// to the owner chain.
func (rt *Router) runOne(ctx context.Context, req daesim.Request) routedResult {
	hash := req.Hash()
	if rt.store != nil {
		if rep, ok := rt.store.Get(hash); ok {
			raw, err := json.Marshal(&rep)
			if err == nil {
				return routedResult{Label: req.Label, Hash: hash, Cached: true, Report: raw}
			}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return routedResult{Label: req.Label, Error: fmt.Sprintf("encode request: %v", err)}
	}
	res, err := rt.flights.do(ctx, hash, func() (*forwardResult, error) {
		return rt.forward(ctx, http.MethodPost, "/v1/runs", body, hash)
	})
	if err != nil {
		return routedResult{Label: req.Label, Hash: hash, Error: err.Error()}
	}
	if res.status != http.StatusOK {
		var e serveapi.ErrorResponse
		json.Unmarshal(res.body, &e)
		if e.Error == "" {
			e.Error = fmt.Sprintf("replica %s: status %d", res.replica, res.status)
		}
		rr := routedResult{Label: req.Label, Error: e.Error}
		if res.status != http.StatusBadRequest {
			// Replicas omit the hash only for requests that failed
			// validation (before hashing).
			rr.Hash = hash
		}
		return rr
	}
	var rr routedResult
	if err := json.Unmarshal(res.body, &rr); err != nil {
		return routedResult{Label: req.Label, Hash: hash, Error: fmt.Sprintf("replica %s: malformed response: %v", res.replica, err)}
	}
	return rr
}

// handleGet serves a result by hash: from the shared store if mounted
// (no replica involved — this path survives total replica loss), else
// proxied down the owner chain.
func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if rt.store != nil {
		if rep, ok := rt.store.Get(hash); ok {
			serveapi.WriteJSON(w, http.StatusOK, serveapi.RunResponse{Hash: hash, Cached: true, Report: &rep})
			return
		}
	}
	res, err := rt.forward(r.Context(), http.MethodGet, "/v1/runs/"+hash, nil, hash)
	if err != nil {
		serveapi.WriteJSON(w, http.StatusServiceUnavailable, serveapi.ErrorResponse{Error: err.Error()})
		return
	}
	relay(w, res)
}

// handleEvents proxies a run's progress stream from its owning replica,
// flushing chunk by chunk so SSE events reach the client as they happen.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	flusher, canFlush := w.(http.Flusher)
	var lastErr error
	for _, base := range rt.chain(hash) {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+"/v1/runs/"+hash+"/events", nil)
		if err != nil {
			break
		}
		if accept := r.Header.Get("Accept"); accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			rt.replicas[base].alive.Store(false)
			lastErr = err
			continue
		}
		defer resp.Body.Close()
		for _, h := range []string{"Content-Type", "Cache-Control"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 4<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if canFlush {
					flusher.Flush()
				}
			}
			if err != nil {
				return // io.EOF ends the stream; mid-stream errors end it too
			}
		}
	}
	serveapi.WriteJSON(w, http.StatusServiceUnavailable, serveapi.ErrorResponse{
		Error: fmt.Sprintf("fabric: no live replica for event stream: %v", lastErr)})
}

// ReplicaStatus is one replica's liveness in the router's health reply.
type ReplicaStatus struct {
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
}

// Health is the router's GET /healthz reply.
type Health struct {
	// OK is true while at least one replica is believed live.
	OK       bool            `json:"ok"`
	Replicas []ReplicaStatus `json:"replicas"`
	// QueueActive/QueueWaiting snapshot the admission queue.
	QueueActive  int `json:"queueActive"`
	QueueWaiting int `json:"queueWaiting"`
}

// handleHealth reports the router's own liveness: replica states and
// queue depth.
func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := Health{}
	for base, st := range rt.replicas {
		alive := st.alive.Load()
		h.Replicas = append(h.Replicas, ReplicaStatus{URL: base, Alive: alive})
		if alive {
			h.OK = true
		}
	}
	sort.Slice(h.Replicas, func(i, j int) bool { return h.Replicas[i].URL < h.Replicas[j].URL })
	h.QueueActive, h.QueueWaiting = rt.queue.Depth()
	status := http.StatusOK
	if !h.OK {
		status = http.StatusServiceUnavailable
	}
	serveapi.WriteJSON(w, status, h)
}
