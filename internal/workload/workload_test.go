package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestAllBuiltinsValid(t *testing.T) {
	bs := All()
	if len(bs) != 10 {
		t.Fatalf("%d built-in benchmarks, want 10 (SPEC FP95)", len(bs))
	}
	for _, b := range bs {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestNamesMatchPaperOrder(t *testing.T) {
	want := []string{"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi", "fpppp", "wave5"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("name[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("fpppp")
	if err != nil || b.Name != "fpppp" {
		t.Fatalf("ByName(fpppp) = %v, %v", b.Name, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	good := func() Benchmark {
		b, _ := ByName("tomcatv")
		return b
	}
	cases := []struct {
		name string
		mut  func(*Benchmark)
	}{
		{"no name", func(b *Benchmark) { b.Name = "" }},
		{"no streams", func(b *Benchmark) { b.Streams = nil }},
		{"zero stride", func(b *Benchmark) { b.Streams[0].StrideBytes = 0 }},
		{"stride > size", func(b *Benchmark) { b.Streams[0].StrideBytes = b.Streams[0].SizeBytes * 2 }},
		{"no kernels", func(b *Benchmark) { b.Kernels = nil }},
		{"zero weight", func(b *Benchmark) { b.Kernels[0].Weight = 0 }},
		{"trip 1", func(b *Benchmark) { b.Kernels[0].InnerTrip = 1 }},
		{"bad stream ref", func(b *Benchmark) { b.Kernels[0].FPLoads = []int{99} }},
		{"bad store ref", func(b *Benchmark) { b.Kernels[0].Stores = []int{-1} }},
		{"chains 0", func(b *Benchmark) { b.Kernels[0].FPChains = 0 }},
		{"chains 9", func(b *Benchmark) { b.Kernels[0].FPChains = 9 }},
		{"bad LOD prob", func(b *Benchmark) { b.Kernels[0].LODEvery = 5; b.Kernels[0].LODTakenProb = 2 }},
		{"bad int-load stream", func(b *Benchmark) { b.Kernels[0].IntLoad = IntLoadSpec{Stream: 77, Every: 3} }},
	}
	for _, c := range cases {
		b := good()
		c.mut(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, b := range All() {
		r1 := b.NewReader(ReaderOpts{})
		r2 := b.NewReader(ReaderOpts{})
		var a, c isa.Inst
		for i := 0; i < 5000; i++ {
			ok1, ok2 := r1.Next(&a), r2.Next(&c)
			if !ok1 || !ok2 {
				t.Fatalf("%s: generator ended at %d", b.Name, i)
			}
			if a != c {
				t.Fatalf("%s: diverged at %d: %v vs %v", b.Name, i, a, c)
			}
		}
	}
}

func TestGeneratorSeedChangesOutcomes(t *testing.T) {
	// Different seeds must change data-dependent branch outcomes but not
	// the static code shape (PCs).
	b, _ := ByName("fpppp")
	r1 := b.NewReader(ReaderOpts{Seed: 1})
	r2 := b.NewReader(ReaderOpts{Seed: 2})
	var a, c isa.Inst
	diff := 0
	for i := 0; i < 20000; i++ {
		r1.Next(&a)
		r2.Next(&c)
		if a.PC != c.PC || a.Op != c.Op {
			t.Fatalf("static shape diverged at %d", i)
		}
		if a.Taken != c.Taken {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds did not perturb branch outcomes")
	}
}

func TestAddrOffsetShiftsEverything(t *testing.T) {
	b, _ := ByName("swim")
	r1 := b.NewReader(ReaderOpts{})
	r2 := b.NewReader(ReaderOpts{AddrOffset: 1 << 36})
	var a, c isa.Inst
	for i := 0; i < 5000; i++ {
		r1.Next(&a)
		r2.Next(&c)
		if a.IsMem() {
			if c.Addr != a.Addr+1<<36 {
				t.Fatalf("offset not applied at %d: %#x vs %#x", i, a.Addr, c.Addr)
			}
		}
	}
}

func TestStablePCsAcrossIterations(t *testing.T) {
	// Each static slot keeps its PC across iterations: collect the PC set
	// of the first 200 instructions and verify later instructions reuse
	// them (per kernel).
	b, _ := ByName("su2cor") // single-kernel benchmark
	r := b.NewReader(ReaderOpts{})
	perIter := b.Kernels[0].InstsPerIteration()
	var in isa.Inst
	pcs := map[uint64]bool{}
	for i := 0; i < perIter*3; i++ {
		r.Next(&in)
		pcs[in.PC] = true
	}
	for i := 0; i < perIter*50; i++ {
		r.Next(&in)
		if !pcs[in.PC] {
			t.Fatalf("fresh PC %#x after warmup (unstable code layout)", in.PC)
		}
	}
}

func TestValidInstructionStreams(t *testing.T) {
	for _, b := range All() {
		r := b.NewReader(ReaderOpts{})
		var in isa.Inst
		for i := 0; i < 20000; i++ {
			if !r.Next(&in) {
				t.Fatalf("%s: stream ended", b.Name)
			}
			if !in.Op.Valid() {
				t.Fatalf("%s: invalid op at %d", b.Name, i)
			}
			switch in.Op {
			case isa.OpLoad:
				if !in.Dest.Valid() || in.Size == 0 {
					t.Fatalf("%s: malformed load %+v", b.Name, in)
				}
			case isa.OpStore:
				if in.Dest.Valid() || !in.Src1.Valid() || in.Size == 0 {
					t.Fatalf("%s: malformed store %+v", b.Name, in)
				}
			case isa.OpFPALU:
				if !in.Dest.IsFP() {
					t.Fatalf("%s: FP op without FP dest %+v", b.Name, in)
				}
			case isa.OpBranch:
				if in.Dest.Valid() {
					t.Fatalf("%s: branch with dest %+v", b.Name, in)
				}
			}
		}
	}
}

func TestInstructionMixSane(t *testing.T) {
	// Aggregate mix across benchmarks: FP codes are load/FP heavy with
	// single-digit branch shares.
	for _, b := range All() {
		r := b.NewReader(ReaderOpts{})
		var in isa.Inst
		var counts [isa.NumOps]int
		const n = 50000
		for i := 0; i < n; i++ {
			r.Next(&in)
			counts[in.Op]++
		}
		loads := float64(counts[isa.OpLoad]) / n
		fp := float64(counts[isa.OpFPALU]) / n
		br := float64(counts[isa.OpBranch]) / n
		stores := float64(counts[isa.OpStore]) / n
		if loads < 0.10 || loads > 0.45 {
			t.Errorf("%s: load share %.2f out of range", b.Name, loads)
		}
		if fp < 0.25 || fp > 0.65 {
			t.Errorf("%s: FP share %.2f out of range", b.Name, fp)
		}
		if br <= 0 || br > 0.18 {
			t.Errorf("%s: branch share %.2f out of range", b.Name, br)
		}
		if stores <= 0 || stores > 0.2 {
			t.Errorf("%s: store share %.2f out of range", b.Name, stores)
		}
	}
}

func TestStreamAddressesWrap(t *testing.T) {
	b := Benchmark{
		Name:    "tiny",
		Seed:    1,
		Streams: []StreamSpec{{Name: "a", SizeBytes: 256, StrideBytes: 32}},
		Kernels: []Kernel{{
			Name: "k", Weight: 100, InnerTrip: 10,
			FPLoads: []int{0}, FPOps: 1, FPChains: 1,
		}},
	}
	r := b.NewReader(ReaderOpts{})
	var in isa.Inst
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		r.Next(&in)
		if in.IsLoad() {
			seen[in.Addr] = true
		}
	}
	if len(seen) != 256/32 {
		t.Fatalf("wrapping stream visited %d addresses, want %d", len(seen), 256/32)
	}
}

func TestInstsPerIterationMatchesEmission(t *testing.T) {
	for _, b := range All() {
		for _, k := range b.Kernels {
			// Run a single-kernel copy; the slot-0 counter bump is
			// emitted exactly once per iteration, so counting its PC
			// recurrences counts iterations.
			bb := b
			bb.Kernels = []Kernel{k}
			r := bb.NewReader(ReaderOpts{})
			var in isa.Inst
			r.Next(&in)
			firstPC := in.PC
			const iters = 200
			total := 1
			seen := 1
			for seen <= iters {
				if !r.Next(&in) {
					t.Fatalf("%s/%s: stream ended", b.Name, k.Name)
				}
				total++
				if in.PC == firstPC {
					seen++
				}
			}
			// total includes the bump of iteration iters+1.
			avg := float64(total-1) / float64(iters)
			maxSlots := k.InstsPerIteration()
			if avg > float64(maxSlots)+0.01 {
				t.Errorf("%s/%s: %.2f insts/iter exceeds slot count %d", b.Name, k.Name, avg, maxSlots)
			}
			if avg < 5 {
				t.Errorf("%s/%s: implausibly small iteration %.2f", b.Name, k.Name, avg)
			}
		}
	}
}

func TestMixRotationDiffersPerThread(t *testing.T) {
	r0 := Mix(0, MixOpts{SegmentLen: 100})
	r1 := Mix(1, MixOpts{SegmentLen: 100})
	var a, b isa.Inst
	diff := false
	for i := 0; i < 100; i++ {
		r0.Next(&a)
		r1.Next(&b)
		if a.PC != b.PC || a.Addr != b.Addr {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("threads 0 and 1 see identical streams")
	}
}

func TestMixRotatesThroughAllBenchmarks(t *testing.T) {
	// With a short segment, the mix must cycle through distinct address
	// regions (streams of different benchmarks land in different 256 MB
	// regions only per stream index, so distinguish by behaviour: the
	// segment boundary changes the PC set).
	r := Mix(0, MixOpts{SegmentLen: 50})
	var in isa.Inst
	pcSets := map[uint64]bool{}
	for i := 0; i < 50*10; i++ {
		r.Next(&in)
		pcSets[in.PC] = true
	}
	// 10 benchmarks × distinct kernels: far more static PCs than one
	// benchmark alone would produce (its kernels are ≤ ~40 slots).
	if len(pcSets) < 100 {
		t.Fatalf("mix visited only %d static PCs; rotation broken?", len(pcSets))
	}
}

func TestMixEndless(t *testing.T) {
	r := Mix(3, MixOpts{SegmentLen: 64})
	if n := trace.Count(trace.Limit(r, 10_000)); n != 10_000 {
		t.Fatalf("mix ended after %d instructions", n)
	}
}

func TestMixAddressSpacesDisjoint(t *testing.T) {
	collect := func(tid int) map[uint64]bool {
		r := Mix(tid, MixOpts{SegmentLen: 1000})
		var in isa.Inst
		set := map[uint64]bool{}
		for i := 0; i < 5000; i++ {
			r.Next(&in)
			if in.IsMem() {
				set[in.Addr] = true
			}
		}
		return set
	}
	a, b := collect(0), collect(1)
	for addr := range a {
		if b[addr] {
			t.Fatalf("threads share address %#x", addr)
		}
	}
}

func TestMixNegativeThreadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative thread id accepted")
		}
	}()
	Mix(-1, MixOpts{})
}

func BenchmarkGenerator(b *testing.B) {
	bench, _ := ByName("swim")
	r := bench.NewReader(ReaderOpts{})
	var in isa.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Next(&in)
	}
}

func TestStreamReuseSlowsAdvance(t *testing.T) {
	mk := func(reuse int) Benchmark {
		return Benchmark{
			Name:    "reuse-test",
			Seed:    1,
			Streams: []StreamSpec{{Name: "a", SizeBytes: 1 << 20, StrideBytes: 8, Reuse: reuse}},
			Kernels: []Kernel{{
				Name: "k", Weight: 100, InnerTrip: 10,
				FPLoads: []int{0}, FPOps: 1, FPChains: 1,
			}},
		}
	}
	distinct := func(b Benchmark, n int) int {
		r := b.NewReader(ReaderOpts{})
		var in isa.Inst
		seen := map[uint64]bool{}
		loads := 0
		for loads < n {
			r.Next(&in)
			if in.IsLoad() {
				seen[in.Addr] = true
				loads++
			}
		}
		return len(seen)
	}
	// With Reuse=4, four consecutive accesses share an address: the
	// distinct-address count over N loads is ~N/4.
	base := distinct(mk(0), 400)
	reused := distinct(mk(4), 400)
	if base != 400 {
		t.Fatalf("no-reuse stream repeated addresses: %d distinct", base)
	}
	if reused != 100 {
		t.Fatalf("reuse-4 stream visited %d distinct addresses, want 100", reused)
	}
}

func TestThreadAddrOffsets(t *testing.T) {
	seen := map[uint64]bool{}
	for tid := 0; tid < 16; tid++ {
		off := ThreadAddrOffset(tid)
		if seen[off] {
			t.Fatalf("duplicate offset for thread %d", tid)
		}
		seen[off] = true
		if tid > 0 {
			// The cache-index skew must differ between threads so
			// corresponding streams do not alias pathologically.
			prev := ThreadAddrOffset(tid - 1)
			if (off&0xFFFF)>>5 == (prev&0xFFFF)>>5 {
				t.Fatalf("threads %d and %d share index bits", tid-1, tid)
			}
		}
	}
}

// Property: for any seed, two readers with different AddrOffset never
// touch common addresses (address-space isolation).
func TestQuickAddressIsolation(t *testing.T) {
	b, err := ByName("applu")
	if err != nil {
		t.Fatal(err)
	}
	r1 := b.NewReader(ReaderOpts{AddrOffset: ThreadAddrOffset(0)})
	r2 := b.NewReader(ReaderOpts{AddrOffset: ThreadAddrOffset(1)})
	var a, c isa.Inst
	set := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		r1.Next(&a)
		if a.IsMem() {
			set[a.Addr] = true
		}
	}
	for i := 0; i < 20000; i++ {
		r2.Next(&c)
		if c.IsMem() && set[c.Addr] {
			t.Fatalf("shared address %#x", c.Addr)
		}
	}
}
