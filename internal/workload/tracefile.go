package workload

// Trace-file workloads: externally supplied instruction streams (the
// traceio container or one of its importable formats) served through the
// same trace.Reader interface as the synthetic generators.
//
// Unlike generator streams — infinite, re-derivable, interned chunk by
// chunk — a trace file is finite and already materialized on disk, so
// the PR 3 chunked interner (which grows streams unboundedly and assumes
// an infinite generator behind every chunk) is the wrong shape. Trace
// files get their own registry: the whole file is decoded once into
// per-stream instruction slices and retained under the same global
// InternBudgetBytes accounting the chunk interner uses. When retaining a
// file would blow the budget, the decode still happens but nothing is
// pinned — the "live fallback": every run re-reads the file, trading
// repeat I/O for bounded memory, with bit-identical streams either way.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"unsafe"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/traceio"
)

// instBytes is the in-memory footprint of one decoded record, for
// budget accounting (shared with the chunk interner's arithmetic).
const instBytes = int64(unsafe.Sizeof(isa.Inst{}))

var (
	traceFileMu sync.Mutex
	traceFiles  = map[string][][]isa.Inst{}
)

// traceFileStats reports the registry's entry count (tests only).
func traceFileStats() int {
	traceFileMu.Lock()
	defer traceFileMu.Unlock()
	return len(traceFiles)
}

// loadTraceStreams decodes the file into per-stream slices. A format of
// FormatAuto sniffs the magic bytes; legacy/text/bin inputs decode as a
// single stream.
func loadTraceStreams(path string, format traceio.Format) ([][]isa.Inst, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: opening trace: %w", err)
	}
	defer f.Close()
	return decodeTraceStreams(f, format)
}

// decodeTraceStreams is loadTraceStreams over any reader (dae-trace
// feeds it stdin).
func decodeTraceStreams(r io.Reader, format traceio.Format) ([][]isa.Inst, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if format == traceio.FormatAuto || format == "" {
		var err error
		if format, err = traceio.Detect(br); err != nil {
			return nil, err
		}
	}
	switch format {
	case traceio.FormatContainer:
		_, streams, err := traceio.ReadAll(br)
		return streams, err
	case traceio.FormatLegacy:
		fr, err := trace.NewFileReader(br)
		if err != nil {
			return nil, err
		}
		var insts []isa.Inst
		var in isa.Inst
		for fr.Next(&in) {
			insts = append(insts, in)
		}
		if err := fr.Err(); err != nil {
			return nil, err
		}
		return [][]isa.Inst{insts}, nil
	case traceio.FormatBinary:
		insts, err := traceio.ParseBinary(br)
		if err != nil {
			return nil, err
		}
		return [][]isa.Inst{insts}, nil
	case traceio.FormatText:
		insts, err := traceio.ParseText(br)
		if err != nil {
			return nil, err
		}
		return [][]isa.Inst{insts}, nil
	default:
		return nil, fmt.Errorf("workload: unsupported trace format %q", format)
	}
}

// traceStreamsFor returns the file's decoded streams, serving from the
// registry when the file was already ingested and retaining the decode
// under the intern budget otherwise.
func traceStreamsFor(path string, format traceio.Format) ([][]isa.Inst, error) {
	key := path + "\x1f" + string(format)
	traceFileMu.Lock()
	if streams, ok := traceFiles[key]; ok {
		traceFileMu.Unlock()
		return streams, nil
	}
	traceFileMu.Unlock()

	// Decode outside the lock: files can be large and two concurrent
	// first sightings are rare (the runner ingests once per sweep).
	streams, err := loadTraceStreams(path, format)
	if err != nil {
		return nil, err
	}
	var total int64
	for _, s := range streams {
		total += int64(len(s))
	}
	bytes := total * instBytes
	if InternBudgetBytes > 0 && internUsed.Add(bytes) <= InternBudgetBytes {
		traceFileMu.Lock()
		if prior, ok := traceFiles[key]; ok {
			// Lost a first-sighting race: keep the published decode and
			// return this one's budget charge.
			internUsed.Add(-bytes)
			streams = prior
		} else {
			traceFiles[key] = streams
		}
		traceFileMu.Unlock()
	} else if InternBudgetBytes > 0 {
		// Budget exceeded: live fallback — serve this decode uncached so
		// memory stays bounded; later runs re-read the file.
		internUsed.Add(-bytes)
	}
	return streams, nil
}

// shiftedSlice replays insts with delta added to every memory address —
// the per-context address-space relocation applied when a container's
// stream count and the machine's context count differ.
func shiftedSlice(insts []isa.Inst, delta uint64) trace.Reader {
	if delta == 0 {
		return trace.Slice(insts)
	}
	i := 0
	return trace.Func(func(out *isa.Inst) bool {
		if i >= len(insts) {
			return false
		}
		*out = insts[i]
		i++
		if out.IsMem() {
			out.Addr += delta
		}
		return true
	})
}

// TraceSources builds one finite reader per hardware context from a
// trace file. A container with exactly `contexts` streams replays each
// stream on its context verbatim — the property behind the
// export/import byte-identity guarantee. Otherwise context t replays
// stream t mod S relocated into context t's address space (the same
// ThreadAddrOffset spacing the generators use), so any trace drives any
// machine shape deterministically.
func TraceSources(path, format string, contexts int) ([]trace.Reader, error) {
	if contexts <= 0 {
		return nil, fmt.Errorf("workload: trace sources for %d contexts", contexts)
	}
	f, err := traceio.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	streams, err := traceStreamsFor(path, f)
	if err != nil {
		return nil, err
	}
	if len(streams) == 0 {
		return nil, fmt.Errorf("workload: trace %s holds no streams", path)
	}
	readers := make([]trace.Reader, contexts)
	for t := 0; t < contexts; t++ {
		s := t % len(streams)
		delta := ThreadAddrOffset(t) - ThreadAddrOffset(s)
		readers[t] = shiftedSlice(streams[s], delta)
	}
	return readers, nil
}

// ExportTrace captures the exact per-context streams a simulation of
// the benchmark would consume — context t gets ThreadAddrOffset(t) and
// seed+t, the runner's construction — into a container with perStream
// records per stream. The returned counts are per stream.
func ExportTrace(w io.Writer, b Benchmark, contexts int, seed uint64, perStream int64, note string) ([]int64, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if contexts <= 0 || perStream <= 0 {
		return nil, fmt.Errorf("workload: export wants positive contexts and per-stream count (got %d, %d)", contexts, perStream)
	}
	tw, err := traceio.NewWriter(w, traceio.Header{
		Streams: contexts,
		Name:    fmt.Sprintf("%s t=%d seed=%d", b.Name, contexts, seed),
		Note:    note,
	})
	if err != nil {
		return nil, err
	}
	for t := 0; t < contexts; t++ {
		r := b.NewReader(ReaderOpts{AddrOffset: ThreadAddrOffset(t), Seed: seed + uint64(t)})
		if _, err := tw.AppendAll(t, trace.Limit(r, perStream)); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return tw.Counts(), nil
}
