package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// exportToFile writes a benchmark capture to a temp container file.
func exportToFile(t *testing.T, name string, contexts int, seed uint64, perStream int64) string {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	counts, err := ExportTrace(&buf, b, contexts, seed, perStream, "unit test")
	if err != nil {
		t.Fatal(err)
	}
	for s, c := range counts {
		if c != perStream {
			t.Fatalf("stream %d captured %d records, want %d", s, c, perStream)
		}
	}
	path := filepath.Join(t.TempDir(), name+".dct")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceSourcesMatchGenerator: replaying an exported container feeds
// every context the exact records the generator construction would —
// the invariant behind the end-to-end byte-identity guarantee.
func TestTraceSourcesMatchGenerator(t *testing.T) {
	const contexts, n = 2, 3000
	path := exportToFile(t, "swim", contexts, 5, n)
	sources, err := TraceSources(path, "container", contexts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	for ctx := 0; ctx < contexts; ctx++ {
		want := readN(t, b.NewReader(ReaderOpts{AddrOffset: ThreadAddrOffset(ctx), Seed: 5 + uint64(ctx)}), n)
		got := readN(t, sources[ctx], n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ctx %d record %d: got %+v want %+v", ctx, i, got[i], want[i])
			}
		}
		var extra isa.Inst
		if sources[ctx].Next(&extra) {
			t.Fatalf("ctx %d stream longer than the %d exported records", ctx, n)
		}
	}
}

// TestTraceSourcesReplication: fewer streams than contexts replicates
// streams modulo S, relocated by the thread address-offset delta so
// contexts keep disjoint address spaces.
func TestTraceSourcesReplication(t *testing.T) {
	const n = 500
	path := exportToFile(t, "mgrid", 1, 9, n)
	sources, err := TraceSources(path, "", 3) // "" = auto-detect
	if err != nil {
		t.Fatal(err)
	}
	base := readN(t, sources[0], n)
	repl := readN(t, sources[2], n)
	delta := ThreadAddrOffset(2) - ThreadAddrOffset(0)
	for i := range base {
		want := base[i]
		if want.IsMem() {
			want.Addr += delta
		}
		if repl[i] != want {
			t.Fatalf("record %d: got %+v want %+v", i, repl[i], want)
		}
	}
}

// TestTraceSourcesErrors: bad paths, formats and context counts are
// rejected.
func TestTraceSourcesErrors(t *testing.T) {
	if _, err := TraceSources("/nonexistent/trace.dct", "", 1); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := TraceSources("x", "elf", 1); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := TraceSources("x", "", 0); err == nil {
		t.Error("zero contexts accepted")
	}
}

// TestCatalog: every built-in appears with provenance and a positive
// footprint, in the paper's order.
func TestCatalog(t *testing.T) {
	entries := Catalog()
	names := Names()
	if len(entries) != len(names) {
		t.Fatalf("catalog has %d entries, want %d", len(entries), len(names))
	}
	for i, e := range entries {
		if e.Name != names[i] {
			t.Errorf("entry %d is %q, want %q", i, e.Name, names[i])
		}
		if e.Kind != "generator" || e.Provenance == "" || e.FootprintBytes <= 0 ||
			e.Streams <= 0 || e.Kernels <= 0 || e.InstsPerIteration <= 0 {
			t.Errorf("entry %q incomplete: %+v", e.Name, e)
		}
	}
	if _, err := CatalogByName("swim"); err != nil {
		t.Error(err)
	}
	if _, err := CatalogByName("doom"); err == nil {
		t.Error("unknown catalog name accepted")
	}
}

// TestDecodeTraceStreamsFormats: the per-format decode paths agree on
// the same records.
func TestDecodeTraceStreamsFormats(t *testing.T) {
	b, err := ByName("turb3d")
	if err != nil {
		t.Fatal(err)
	}
	want := readN(t, b.NewReader(ReaderOpts{Seed: 3}), 200)

	var legacy bytes.Buffer
	lw, err := trace.NewWriter(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lw.WriteAll(trace.Slice(want)); err != nil {
		t.Fatal(err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	streams, err := decodeTraceStreams(&legacy, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 || len(streams[0]) != len(want) {
		t.Fatalf("legacy decode shape %d/%d", len(streams), len(streams[0]))
	}
	for i := range want {
		if streams[0][i] != want[i] {
			t.Fatalf("legacy record %d differs", i)
		}
	}
}
