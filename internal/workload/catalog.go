package workload

// The curated benchmark catalog: one entry per runnable workload, each
// naming either a deterministic generator (the built-in SPEC FP95
// models) or a trace path (an ingested external trace), with the mix
// parameters, memory footprint and provenance a user needs to pick one.
// Surfaced through `dae-trace list`, `dae-sim -bench` and
// daesim.Request; kept in the spirit of mgpusim's benchmarks/ tree —
// the catalog is data, the runners stay generic.

import "fmt"

// CatalogEntry describes one curated workload.
type CatalogEntry struct {
	// Name is the workload's catalog key (what -bench resolves).
	Name string
	// Kind is "generator" for built-in synthetic models or "trace" for
	// entries backed by an ingested trace file.
	Kind string
	// Provenance records what the entry models and where its parameters
	// come from.
	Provenance string
	// FootprintBytes is the summed working-set size of the generator's
	// streams (0 for trace-backed entries: footprint is whatever the
	// trace touched — `dae-trace stat` measures it).
	FootprintBytes int64
	// Streams and Kernels summarize the generator's mix shape.
	Streams, Kernels int
	// InstsPerIteration is the inner-loop slot count of the heaviest
	// kernel.
	InstsPerIteration int
	// TracePath and TraceFormat locate trace-backed entries.
	TracePath   string
	TraceFormat string
}

// provenance notes for the built-in models, keyed by benchmark name.
// Each ties the synthetic parameters back to the paper behaviour they
// reproduce.
var builtinProvenance = map[string]string{
	"tomcatv": "mesh generation; regular stride-8 sweeps over 4MB arrays, decouples almost fully (Fig 1-a)",
	"swim":    "shallow-water model; stride-16 8MB sweeps, bandwidth-heavy but latency-tolerant",
	"su2cor":  "quantum field theory; gather via index loads at distance 2 plus LoD every 90 iterations (Fig 1-b)",
	"hydro2d": "Navier-Stokes; largest miss ratio (long-stride sweeps) with CFL-style LoD bursts (Fig 1-d worst case)",
	"mgrid":   "multigrid solver; high-reuse fine-grid sweeps, small perceived latency",
	"applu":   "parabolic/elliptic PDE; moderate footprint with scheduled index loads",
	"turb3d":  "isotropic turbulence FFT; cache-resident working set, short-scheduled bit-reversal index loads (Fig 1-b)",
	"apsi":    "pollutant transport; 1MB temperature sweeps with relaxed index-load scheduling",
	"fpppp":   "two-electron integrals; tiny working set, deep FP chains, LoD every 8 iterations (the decoupling worst case)",
	"wave5":   "particle-in-cell plasma; particle gathers feeding field accesses plus periodic LoD",
}

// Catalog returns the curated workload entries, built-ins first in the
// paper's order.
func Catalog() []CatalogEntry {
	bs := builtins()
	entries := make([]CatalogEntry, 0, len(bs))
	for _, b := range bs {
		var footprint int64
		for _, s := range b.Streams {
			footprint += int64(s.SizeBytes)
		}
		heaviest, insts := 0, 0
		for i, k := range b.Kernels {
			if k.Weight > b.Kernels[heaviest].Weight || i == 0 {
				heaviest = i
			}
		}
		insts = b.Kernels[heaviest].InstsPerIteration()
		entries = append(entries, CatalogEntry{
			Name:              b.Name,
			Kind:              "generator",
			Provenance:        fmt.Sprintf("synthetic model of SPEC FP95 %s: %s", b.Name, builtinProvenance[b.Name]),
			FootprintBytes:    footprint,
			Streams:           len(b.Streams),
			Kernels:           len(b.Kernels),
			InstsPerIteration: insts,
		})
	}
	return entries
}

// CatalogByName returns the named catalog entry.
func CatalogByName(name string) (CatalogEntry, error) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
	}
	return CatalogEntry{}, fmt.Errorf("workload: %w %q", ErrUnknownBenchmark, name)
}
