// Package workload synthesizes the instruction streams the simulator is
// evaluated with.
//
// The paper traces the ten SPEC FP95 benchmarks on DEC Alpha hardware with
// ATOM. Those traces are not redistributable, so this package generates
// synthetic equivalents: each benchmark is modelled as a set of loop-nest
// kernels over strided array streams, parameterised to reproduce the
// properties that drive the paper's results —
//
//   - instruction mix (the AP/EP load balance of Section 3.1);
//   - floating-point chain ILP (the EP's in-order issue throughput);
//   - working-set size and stride versus the 64 KB L1 (the miss ratios of
//     Figure 1-c);
//   - address-stream regularity and loop predictability (AP run-ahead);
//   - indirect (gather) integer loads with short scheduling distance (the
//     integer perceived latency of Figure 1-b);
//   - floating-point-conditional branches that force the AP to wait for
//     the EP — loss-of-decoupling events (fpppp's behaviour in Fig 1-a).
//
// Generation is streaming (trace.Reader), deterministic for a given seed,
// and infinite: kernels loop forever, so run length is set by the
// simulation's instruction budget, as in the paper's 100M-instruction
// windows.
package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// StreamSpec describes one array access stream of a kernel.
type StreamSpec struct {
	// Name labels the stream in reports.
	Name string
	// SizeBytes is the working set the stream sweeps (wraps around).
	SizeBytes int
	// StrideBytes is the per-advance stride. With 32-byte cache lines a
	// stride-8 stream misses ~25% of its advances in steady state,
	// stride-32 ~100%, and a stream whose SizeBytes fits in L1 almost
	// never misses.
	StrideBytes int
	// Reuse is the number of consecutive accesses made to each position
	// before the stream advances (0 behaves as 1). Stencil and tiled
	// codes re-read neighbouring elements, so each cache line serves
	// Reuse×(line/stride) accesses; the per-access miss rate is
	// stride/(32×Reuse). This is the main knob for a benchmark's miss
	// ratio.
	Reuse int
}

// reuse returns the effective reuse factor.
func (s StreamSpec) reuse() int {
	if s.Reuse <= 0 {
		return 1
	}
	return s.Reuse
}

// IntLoadSpec describes the integer (address/index) load behaviour of a
// kernel.
type IntLoadSpec struct {
	// Stream is the index-array stream the integer load reads.
	Stream int
	// Every emits the integer load once per that many iterations (0 =
	// never).
	Every int
	// Feeds makes the following FP load's address register depend on the
	// loaded value (a gather), so AP progress stalls on the integer load.
	Feeds bool
	// Dist is the number of instruction slots between the integer load
	// and its dependent use — the "static scheduling quality" of the
	// paper's Figure 1-b discussion. Larger distances hide more latency.
	Dist int
}

// Kernel is one loop nest of a benchmark.
type Kernel struct {
	// Name labels the kernel.
	Name string
	// Weight is the number of inner iterations run before rotating to the
	// benchmark's next kernel.
	Weight int
	// InnerTrip is the inner-loop trip count; the closing branch is taken
	// InnerTrip-1 times then falls through, which a 2-bit BHT predicts
	// well for large trips.
	InnerTrip int
	// FPLoads lists the streams loaded into FP registers each iteration.
	FPLoads []int
	// Stores lists the streams written each iteration.
	Stores []int
	// IntLoad configures the kernel's integer load behaviour.
	IntLoad IntLoadSpec
	// FPOps is the number of floating-point operations per iteration.
	FPOps int
	// FPChains is the number of independent accumulator chains the FPOps
	// are distributed over — the EP's exploitable ILP.
	FPChains int
	// IntOps is the number of additional integer operations per iteration
	// (index arithmetic beyond the per-stream bumps).
	IntOps int
	// LODEvery inserts a loss-of-decoupling block (FP compare → FP-to-int
	// move → data-dependent branch) once per that many iterations (0 =
	// never). The move executes in the AP but reads an EP register, so
	// the AP drains the EP's backlog before proceeding.
	LODEvery int
	// LODTakenProb is the probability the LOD branch is taken
	// (data-dependent, hence mispredict-prone).
	LODTakenProb float64
}

// Benchmark is a named synthetic program.
type Benchmark struct {
	// Name is the SPEC FP95 benchmark the parameters model.
	Name string
	// Seed drives the benchmark's data-dependent randomness.
	Seed uint64
	// Streams are the arrays the kernels sweep.
	Streams []StreamSpec
	// Kernels are the loop nests, rotated by weight.
	Kernels []Kernel
}

// Validate checks the benchmark definition for consistency.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: benchmark without a name")
	}
	if len(b.Streams) == 0 || len(b.Streams) > maxStreams {
		return fmt.Errorf("workload %s: %d streams (1..%d supported)", b.Name, len(b.Streams), maxStreams)
	}
	for i, s := range b.Streams {
		if s.SizeBytes <= 0 || s.StrideBytes <= 0 {
			return fmt.Errorf("workload %s: stream %d has non-positive geometry", b.Name, i)
		}
		if s.StrideBytes > s.SizeBytes {
			return fmt.Errorf("workload %s: stream %d stride exceeds size", b.Name, i)
		}
	}
	if len(b.Kernels) == 0 {
		return fmt.Errorf("workload %s: no kernels", b.Name)
	}
	for _, k := range b.Kernels {
		if k.Weight <= 0 || k.InnerTrip <= 1 {
			return fmt.Errorf("workload %s/%s: weight/trip must be positive (trip>1)", b.Name, k.Name)
		}
		if len(k.FPLoads) == 0 && k.FPOps > 0 {
			return fmt.Errorf("workload %s/%s: FP ops without FP loads", b.Name, k.Name)
		}
		if len(k.FPLoads) > 8 || len(k.Stores) > 4 {
			return fmt.Errorf("workload %s/%s: too many loads/stores per iteration", b.Name, k.Name)
		}
		if k.FPOps > 0 && (k.FPChains <= 0 || k.FPChains > 8) {
			return fmt.Errorf("workload %s/%s: FP chains %d out of range 1..8", b.Name, k.Name, k.FPChains)
		}
		for _, s := range append(append([]int{}, k.FPLoads...), k.Stores...) {
			if s < 0 || s >= len(b.Streams) {
				return fmt.Errorf("workload %s/%s: stream index %d out of range", b.Name, k.Name, s)
			}
		}
		if k.IntLoad.Every > 0 {
			if k.IntLoad.Stream < 0 || k.IntLoad.Stream >= len(b.Streams) {
				return fmt.Errorf("workload %s/%s: int-load stream out of range", b.Name, k.Name)
			}
		}
		if k.LODEvery > 0 && (k.LODTakenProb < 0 || k.LODTakenProb > 1) {
			return fmt.Errorf("workload %s/%s: LOD probability %v out of range", b.Name, k.Name, k.LODTakenProb)
		}
	}
	return nil
}

// maxStreams bounds the per-kernel register usage.
const maxStreams = 10

// ReaderOpts configures a benchmark trace generator.
type ReaderOpts struct {
	// AddrOffset shifts every address; per-thread offsets give each
	// context its own address space (the paper's multiprogrammed mixes),
	// which makes the combined L1 working set grow with the thread count.
	AddrOffset uint64
	// Seed perturbs the benchmark's base seed (different "inputs").
	Seed uint64
}

// NewReader returns an infinite instruction stream for the benchmark. It
// panics on an invalid benchmark definition (the built-in set is validated
// by tests; custom definitions should be validated by the caller).
//
// Streams are interned on reuse: when a second reader asks for the same
// (benchmark spec, options) pair — as every sweep point after the first
// does — the instructions are materialized once into a shared packed
// buffer and replayed from then on (see intern.go), so sweep points stop
// re-deriving identical traces. Set InternBudgetBytes to 0 to force live
// generation.
func (b Benchmark) NewReader(opts ReaderOpts) trace.Reader {
	if err := b.Validate(); err != nil {
		panic(err)
	}
	if InternBudgetBytes > 0 {
		if s := internFor(b, opts); s != nil {
			return &internReader{s: s}
		}
	}
	return b.newGenerator(opts)
}

// newGenerator builds the underlying streaming kernel interpreter.
func (b Benchmark) newGenerator(opts ReaderOpts) trace.Reader {
	g := &generator{
		bench: b,
		rng:   rng.New(b.Seed ^ (opts.Seed * 0x9e3779b97f4a7c15)),
		off:   opts.AddrOffset,
	}
	g.streamPos = make([]uint64, len(b.Streams))
	g.streamUse = make([]int, len(b.Streams))
	return g
}

// generator is the streaming kernel interpreter.
type generator struct {
	bench Benchmark
	rng   *rng.Source
	off   uint64

	streamPos []uint64 // per-stream byte position
	streamUse []int    // accesses made at the current position (reuse)

	kernel    int // current kernel index
	kernIters int // iterations completed in the current kernel run
	iter      int // absolute iteration number within the kernel (for trips)

	buf  []isa.Inst // instructions of the current iteration
	next int        // read cursor into buf
}

// Next implements trace.Reader. The stream is infinite.
func (g *generator) Next(out *isa.Inst) bool {
	for g.next >= len(g.buf) {
		g.emitIteration()
	}
	*out = g.buf[g.next]
	g.next++
	return true
}

// Register conventions (architectural, per kernel iteration):
//
//	r1..r10  stream base registers
//	r13,r14  integer-load destinations (rotating)
//	r15      loop counter
//	r16      LOD condition register
//	r20,r21  integer scratch
//	f0..f7   accumulator chains
//	f8..f15  FP load temporaries (rotating)
//	f18      LOD compare temporary
const (
	regStreamBase = 1  // r1..r10
	regIdxA       = 13 // rotating int-load destinations
	regIdxB       = 14
	regCounter    = 15
	regLODCC      = 16
	regScratchA   = 20
	regScratchB   = 21
	fpChainBase   = 0  // f0..f7
	fpTempBase    = 8  // f8..f15
	fpLODTemp     = 16 // f16
)

// emitIteration refills g.buf with one inner-loop iteration of the
// current kernel, assigning stable PCs per static slot.
func (g *generator) emitIteration() {
	k := &g.bench.Kernels[g.kernel]
	g.buf = g.buf[:0]
	g.next = 0

	// Stable code layout: per-benchmark base (derived from the seed) plus
	// per-kernel spacing, chosen to avoid systematic BHT aliasing between
	// kernels and benchmarks.
	pcBase := (g.bench.Seed&0xF)*0x1100 + 0x1000 + uint64(g.kernel)*0x84c
	slot := 0
	pc := func() uint64 {
		p := pcBase + uint64(slot)*4
		slot++
		return p
	}
	emit := func(in isa.Inst) { g.buf = append(g.buf, in) }
	skip := func(n int) { slot += n } // reserve slots of a suppressed block

	intReg := func(n int) isa.Reg { return isa.IntReg(n) }
	fpReg := func(n int) isa.Reg { return isa.FPReg(n) }

	// 1. Index arithmetic: one bump of the shared counter plus any extra
	// integer ops. (Strength-reduced code: stream addressing reuses the
	// counter, so per-stream bumps are folded into one.)
	emit(isa.Inst{PC: pc(), Op: isa.OpIntALU, Dest: intReg(regCounter), Src1: intReg(regCounter), Src2: isa.NoReg})
	for i := 0; i < k.IntOps; i++ {
		d := regScratchA + i%2
		emit(isa.Inst{PC: pc(), Op: isa.OpIntALU, Dest: intReg(d), Src1: intReg(d), Src2: intReg(regCounter)})
	}

	// 2. Integer load (index/gather) in its reserved slot.
	idxDest := regIdxA + (g.iter % 2) // rotate destinations across iterations
	intLoadLive := k.IntLoad.Every > 0 && g.iter%k.IntLoad.Every == 0
	if intLoadLive {
		emit(isa.Inst{
			PC: pc(), Op: isa.OpLoad,
			Dest: intReg(idxDest),
			Src1: intReg(regStreamBase + k.IntLoad.Stream), Src2: isa.NoReg,
			Addr: g.advance(k.IntLoad.Stream), Size: 8,
		})
	} else {
		skip(1)
	}
	// Scheduling distance: pad with integer ops between the index load
	// and its dependent use (models compiler scheduling quality).
	if k.IntLoad.Every > 0 && k.IntLoad.Feeds {
		for i := 0; i < k.IntLoad.Dist; i++ {
			if intLoadLive {
				emit(isa.Inst{PC: pc(), Op: isa.OpIntALU, Dest: intReg(regScratchB), Src1: intReg(regScratchB), Src2: isa.NoReg})
			} else {
				skip(1)
			}
		}
	}

	// 3. FP loads. When the kernel gathers, the first FP load of an
	// iteration with a live integer load uses the loaded index as its
	// address register.
	for i, s := range k.FPLoads {
		src := intReg(regStreamBase + s)
		if i == 0 && intLoadLive && k.IntLoad.Feeds {
			src = intReg(idxDest)
		}
		emit(isa.Inst{
			PC: pc(), Op: isa.OpLoad,
			Dest: fpReg(fpTempBase + i),
			Src1: src, Src2: isa.NoReg,
			Addr: g.advance(s), Size: 8,
		})
	}

	// 4. FP computation: round-robin the ops over the accumulator chains,
	// each consuming a loaded temporary.
	for i := 0; i < k.FPOps; i++ {
		chain := fpChainBase + i%k.FPChains
		temp := fpTempBase + i%max(1, len(k.FPLoads))
		emit(isa.Inst{
			PC: pc(), Op: isa.OpFPALU,
			Dest: fpReg(chain), Src1: fpReg(chain), Src2: fpReg(temp),
		})
	}

	// 5. Stores of chain results.
	for i, s := range k.Stores {
		chain := fpChainBase + i%max(1, k.FPChains)
		emit(isa.Inst{
			PC: pc(), Op: isa.OpStore, Dest: isa.NoReg,
			Src1: fpReg(chain), Src2: intReg(regStreamBase + s),
			Addr: g.advance(s), Size: 8,
		})
	}

	// 6. Loss-of-decoupling block in reserved slots: FP compare, FP→int
	// move (the AP instruction that must wait for the EP), and a
	// data-dependent branch.
	if k.LODEvery > 0 {
		if g.iter%k.LODEvery == k.LODEvery-1 {
			c0 := fpReg(fpChainBase)
			c1 := fpReg(fpChainBase + k.FPChains/2)
			emit(isa.Inst{PC: pc(), Op: isa.OpFPALU, Dest: fpReg(fpLODTemp), Src1: c0, Src2: c1})
			emit(isa.Inst{PC: pc(), Op: isa.OpIntALU, Dest: intReg(regLODCC), Src1: fpReg(fpLODTemp), Src2: isa.NoReg})
			emit(isa.Inst{PC: pc(), Op: isa.OpBranch, Dest: isa.NoReg, Src1: intReg(regLODCC), Src2: isa.NoReg, Taken: g.rng.Bool(k.LODTakenProb)})
		} else {
			skip(3)
		}
	}

	// 7. Inner-loop closing branch: taken except on loop exit.
	taken := g.iter%k.InnerTrip != k.InnerTrip-1
	emit(isa.Inst{PC: pc(), Op: isa.OpBranch, Dest: isa.NoReg, Src1: intReg(regCounter), Src2: isa.NoReg, Taken: taken})

	// Advance kernel rotation state.
	g.iter++
	g.kernIters++
	if g.kernIters >= k.Weight && len(g.bench.Kernels) > 1 {
		g.kernIters = 0
		g.iter = 0
		g.kernel = (g.kernel + 1) % len(g.bench.Kernels)
	}
}

// advance returns the current address of the stream and steps it after
// the stream's reuse count is exhausted (stencil-style temporal reuse).
func (g *generator) advance(stream int) uint64 {
	s := &g.bench.Streams[stream]
	pos := g.streamPos[stream]
	g.streamUse[stream]++
	if g.streamUse[stream] >= s.reuse() {
		g.streamUse[stream] = 0
		g.streamPos[stream] = (pos + uint64(s.StrideBytes)) % uint64(s.SizeBytes)
	}
	// Distinct 256 MB regions per stream keep streams apart in memory,
	// and a per-stream index skew spreads small (cache-resident) streams
	// across different L1 sets — without it every stream would start at
	// set 0 and resident streams would thrash each other in the
	// direct-mapped cache.
	base := uint64(stream+1)<<28 + uint64(stream)*0x5340
	return g.off + base + pos
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// InstsPerIteration returns the fixed slot count of one iteration of the
// kernel (reserved slots included), used by tests and documentation.
func (k Kernel) InstsPerIteration() int {
	n := 1 + k.IntOps // counter bump + scratch ops
	n++               // int-load slot
	if k.IntLoad.Every > 0 && k.IntLoad.Feeds {
		n += k.IntLoad.Dist
	}
	n += len(k.FPLoads)
	n += k.FPOps
	n += len(k.Stores)
	if k.LODEvery > 0 {
		n += 3
	}
	n++ // closing branch
	return n
}
