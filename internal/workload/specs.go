package workload

import (
	"errors"
	"fmt"
	"sort"
)

// The ten SPEC FP95 benchmark models. Parameters are calibrated so the
// *cross-benchmark structure* matches the paper's Figure 1:
//
//   - tomcatv, swim, mgrid, applu, apsi: regular stream codes that
//     decouple well (FP miss latency almost fully hidden);
//   - fpppp: tiny working set (miss ratio ≈ 0) but constant
//     loss-of-decoupling events from FP-conditional control, so its few
//     misses are fully perceived, plus the worst integer load scheduling
//     and the deepest (least parallel) FP chains;
//   - turb3d: small working set, short-scheduled integer loads;
//   - su2cor, wave5: gather-style indirect loads (high integer perceived
//     latency) with significant miss ratios;
//   - hydro2d: the largest miss ratio (long-stride sweeps), which makes
//     it bandwidth- and latency-bound even though it decouples fine.
//
// Streams larger than the 64 KB L1 miss at ~stride/(32×reuse) per access
// in steady state; cache-resident streams (a few KB, sized like blocked/
// tiled working sets) hit unless a sweeping stream or another hardware
// context evicts them. EXPERIMENTS.md records the measured per-benchmark
// properties.

const (
	kb = 1024
	mb = 1024 * kb
)

func builtins() []Benchmark {
	return []Benchmark{
		{
			Name: "tomcatv",
			Seed: 0x70C0A001,
			Streams: []StreamSpec{
				{Name: "x", SizeBytes: 4 * mb, StrideBytes: 8, Reuse: 3},
				{Name: "y", SizeBytes: 4 * mb, StrideBytes: 8, Reuse: 2},
				{Name: "rx", SizeBytes: 8 * kb, StrideBytes: 8},
				{Name: "ry", SizeBytes: 6 * kb, StrideBytes: 8},
				{Name: "d", SizeBytes: 4 * kb, StrideBytes: 8},
			},
			Kernels: []Kernel{
				{
					Name: "residual", Weight: 4000, InnerTrip: 250,
					FPLoads: []int{0, 2, 4}, Stores: []int{1},
					FPOps: 6, FPChains: 6, IntOps: 2,
					IntLoad: IntLoadSpec{Stream: 2, Every: 24, Feeds: false},
				},
				{
					Name: "relax", Weight: 3000, InnerTrip: 250,
					FPLoads: []int{1, 3, 4}, Stores: []int{0},
					FPOps: 6, FPChains: 6, IntOps: 2,
				},
			},
		},
		{
			Name: "swim",
			Seed: 0x57130002,
			Streams: []StreamSpec{
				{Name: "u", SizeBytes: 8 * mb, StrideBytes: 16, Reuse: 2},
				{Name: "v", SizeBytes: 8 * mb, StrideBytes: 8},
				{Name: "p", SizeBytes: 8 * mb, StrideBytes: 16, Reuse: 2},
				{Name: "cu", SizeBytes: 8 * kb, StrideBytes: 8},
				{Name: "z", SizeBytes: 4 * kb, StrideBytes: 8},
			},
			Kernels: []Kernel{
				{
					Name: "calc1", Weight: 5000, InnerTrip: 500,
					FPLoads: []int{0, 3, 4}, Stores: []int{1},
					FPOps: 6, FPChains: 6, IntOps: 2,
				},
				{
					Name: "calc2", Weight: 5000, InnerTrip: 500,
					FPLoads: []int{2, 3, 4}, Stores: []int{1},
					FPOps: 6, FPChains: 6, IntOps: 2,
				},
			},
		},
		{
			Name: "su2cor",
			Seed: 0x50200003,
			Streams: []StreamSpec{
				{Name: "gauge", SizeBytes: 2 * mb, StrideBytes: 8, Reuse: 2},
				{Name: "prop", SizeBytes: 8 * kb, StrideBytes: 8},
				{Name: "index", SizeBytes: 1 * mb, StrideBytes: 8, Reuse: 8},
				{Name: "out", SizeBytes: 6 * kb, StrideBytes: 8},
			},
			Kernels: []Kernel{
				{
					Name: "gather-su3", Weight: 6000, InnerTrip: 120,
					FPLoads: []int{0, 1}, Stores: []int{3},
					FPOps: 6, FPChains: 6, IntOps: 2,
					// Gather: the index load feeds the next FP load with
					// almost no scheduling distance.
					IntLoad:  IntLoadSpec{Stream: 2, Every: 2, Feeds: true, Dist: 2},
					LODEvery: 90, LODTakenProb: 0.75,
				},
			},
		},
		{
			Name: "hydro2d",
			Seed: 0x44D20004,
			Streams: []StreamSpec{
				{Name: "ro", SizeBytes: 6 * mb, StrideBytes: 16, Reuse: 2},
				{Name: "en", SizeBytes: 6 * mb, StrideBytes: 8, Reuse: 2},
				{Name: "z", SizeBytes: 6 * kb, StrideBytes: 8},
				{Name: "zn", SizeBytes: 6 * mb, StrideBytes: 8, Reuse: 2},
			},
			Kernels: []Kernel{
				{
					Name: "advect", Weight: 5000, InnerTrip: 300,
					FPLoads: []int{0, 1, 2}, Stores: []int{3},
					FPOps: 6, FPChains: 6, IntOps: 2,
					IntLoad: IntLoadSpec{Stream: 1, Every: 30, Feeds: false},
					// CFL-style FP-conditional checks: each AP/EP resync
					// leaves a burst of unprefetched loads whose latency
					// is fully perceived — hydro2d's "high perceived
					// latency × high miss ratio" degradation (Fig 1-d).
					LODEvery: 60, LODTakenProb: 0.8,
				},
			},
		},
		{
			Name: "mgrid",
			Seed: 0x36B1D005,
			Streams: []StreamSpec{
				{Name: "u-fine", SizeBytes: 4 * mb, StrideBytes: 8, Reuse: 4},
				{Name: "r", SizeBytes: 8 * kb, StrideBytes: 8},
				{Name: "u-coarse", SizeBytes: 6 * kb, StrideBytes: 8},
				{Name: "out", SizeBytes: 4 * kb, StrideBytes: 8},
			},
			Kernels: []Kernel{
				{
					Name: "resid-fine", Weight: 4000, InnerTrip: 200,
					FPLoads: []int{0, 1, 2}, Stores: []int{3},
					FPOps: 6, FPChains: 6, IntOps: 2,
				},
				{
					Name: "smooth-coarse", Weight: 1500, InnerTrip: 60,
					FPLoads: []int{1, 2}, Stores: []int{3},
					FPOps: 6, FPChains: 6, IntOps: 2,
				},
			},
		},
		{
			Name: "applu",
			Seed: 0xAB1B0006,
			Streams: []StreamSpec{
				{Name: "rsd", SizeBytes: 3 * mb, StrideBytes: 8, Reuse: 3},
				{Name: "u", SizeBytes: 8 * kb, StrideBytes: 8},
				{Name: "a", SizeBytes: 6 * kb, StrideBytes: 8},
				{Name: "out", SizeBytes: 4 * kb, StrideBytes: 8},
			},
			Kernels: []Kernel{
				{
					Name: "jacld", Weight: 4000, InnerTrip: 150,
					FPLoads: []int{0, 1, 2}, Stores: []int{3},
					FPOps: 6, FPChains: 6, IntOps: 2,
					IntLoad: IntLoadSpec{Stream: 1, Every: 20, Feeds: false},
				},
				{
					Name: "blts", Weight: 3000, InnerTrip: 150,
					FPLoads: []int{0, 2}, Stores: []int{1},
					FPOps: 6, FPChains: 6, IntOps: 2,
				},
			},
		},
		{
			Name: "turb3d",
			Seed: 0x10B3D007,
			Streams: []StreamSpec{
				{Name: "fft-u", SizeBytes: 10 * kb, StrideBytes: 8},
				{Name: "fft-v", SizeBytes: 8 * kb, StrideBytes: 8},
				{Name: "twiddle", SizeBytes: 80 * kb, StrideBytes: 8, Reuse: 2},
				{Name: "work", SizeBytes: 4 * kb, StrideBytes: 8},
				{Name: "bitrev", SizeBytes: 96 * kb, StrideBytes: 8, Reuse: 24},
			},
			Kernels: []Kernel{
				{
					Name: "fft-pass", Weight: 5000, InnerTrip: 64,
					FPLoads: []int{0, 1, 2}, Stores: []int{3},
					FPOps: 6, FPChains: 6, IntOps: 2,
					// Bit-reversal index loads scheduled close to their
					// uses: they rarely miss (low Fig 1-d loss) but when
					// they do the short distance exposes the full
					// latency (tall Fig 1-b bar).
					IntLoad: IntLoadSpec{Stream: 4, Every: 4, Feeds: true, Dist: 3},
				},
			},
		},
		{
			Name: "apsi",
			Seed: 0xA9510008,
			Streams: []StreamSpec{
				{Name: "t", SizeBytes: 1 * mb, StrideBytes: 8, Reuse: 3},
				{Name: "q", SizeBytes: 8 * kb, StrideBytes: 8},
				{Name: "w", SizeBytes: 6 * kb, StrideBytes: 8},
				{Name: "out", SizeBytes: 6 * kb, StrideBytes: 8},
			},
			Kernels: []Kernel{
				{
					Name: "dctdx", Weight: 4000, InnerTrip: 100,
					FPLoads: []int{0, 1, 2}, Stores: []int{3},
					FPOps: 6, FPChains: 6, IntOps: 2,
					IntLoad: IntLoadSpec{Stream: 1, Every: 16, Feeds: false},
				},
			},
		},
		{
			Name: "fpppp",
			Seed: 0xF9990009,
			Streams: []StreamSpec{
				{Name: "ints", SizeBytes: 80 * kb, StrideBytes: 8, Reuse: 48},
				{Name: "dens", SizeBytes: 72 * kb, StrideBytes: 8, Reuse: 48},
				{Name: "fock", SizeBytes: 12 * kb, StrideBytes: 8},
			},
			Kernels: []Kernel{
				{
					Name: "twoel", Weight: 8000, InnerTrip: 40,
					FPLoads: []int{0, 1}, Stores: []int{2},
					// Deep dependent FP chains: fpppp's huge basic blocks
					// expose little ILP to an in-order EP.
					FPOps: 9, FPChains: 3, IntOps: 2,
					// Short-scheduled integer loads and frequent
					// FP-conditional control: the AP constantly resyncs
					// with the EP (loss of decoupling).
					IntLoad:  IntLoadSpec{Stream: 0, Every: 6, Feeds: true, Dist: 1},
					LODEvery: 8, LODTakenProb: 0.7,
				},
			},
		},
		{
			Name: "wave5",
			Seed: 0x3A5E000A,
			Streams: []StreamSpec{
				{Name: "particles", SizeBytes: 3 * mb, StrideBytes: 8, Reuse: 2},
				{Name: "field", SizeBytes: 8 * kb, StrideBytes: 8},
				{Name: "cellidx", SizeBytes: 2 * mb, StrideBytes: 8, Reuse: 5},
				{Name: "out", SizeBytes: 3 * mb, StrideBytes: 8},
			},
			Kernels: []Kernel{
				{
					Name: "push", Weight: 5000, InnerTrip: 180,
					FPLoads: []int{0, 1}, Stores: []int{3},
					FPOps: 6, FPChains: 6, IntOps: 2,
					// Particle gather: index load feeds the field access.
					IntLoad:  IntLoadSpec{Stream: 2, Every: 3, Feeds: true, Dist: 3},
					LODEvery: 120, LODTakenProb: 0.8,
				},
			},
		},
	}
}

// All returns the ten built-in benchmark models, in the paper's order.
func All() []Benchmark { return builtins() }

// Names returns the benchmark names in the paper's order.
func Names() []string {
	bs := builtins()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// ErrUnknownBenchmark is wrapped by every benchmark-name lookup failure,
// so callers anywhere up the stack can classify it with errors.Is (the
// public API re-exports it as daesim.ErrUnknownBenchmark).
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// ByName returns the named benchmark model.
func ByName(name string) (Benchmark, error) {
	for _, b := range builtins() {
		if b.Name == name {
			return b, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Benchmark{}, fmt.Errorf("workload: %w %q (known: %v)", ErrUnknownBenchmark, name, known)
}
