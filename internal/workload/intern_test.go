package workload

import (
	"sync"
	"testing"

	"repro/internal/isa"
)

// readN pulls n instructions from a reader into a slice.
func readN(t *testing.T, r interface{ Next(*isa.Inst) bool }, n int) []isa.Inst {
	t.Helper()
	out := make([]isa.Inst, n)
	for i := range out {
		if !r.Next(&out[i]) {
			t.Fatalf("stream ended at %d/%d", i, n)
		}
	}
	return out
}

// TestInternMatchesLiveGeneration: the first reader for a key runs live
// (no point buffering a one-shot stream), every later reader is interned
// and must be bit-identical to the raw generator.
func TestInternMatchesLiveGeneration(t *testing.T) {
	b, err := ByName("su2cor")
	if err != nil {
		t.Fatal(err)
	}
	opts := ReaderOpts{AddrOffset: ThreadAddrOffset(2), Seed: 7}
	if _, ok := b.NewReader(opts).(*internReader); ok {
		t.Fatal("first reader for a key should generate live, not interned")
	}
	r := b.NewReader(opts)
	if _, ok := r.(*internReader); !ok {
		t.Fatal("second reader for a key should be interned")
	}
	const n = 3 * internChunkLen // spans several chunks, ends mid-chunk
	live := readN(t, b.newGenerator(opts), n+37)
	interned := readN(t, r, n+37)
	for i := range live {
		if live[i] != interned[i] {
			t.Fatalf("instruction %d differs: live %v, interned %v", i, live[i], interned[i])
		}
	}
}

// TestInternConcurrentReaders: concurrent readers of one stream (the
// runner's worker-pool pattern) must each see the exact sequence. Run
// with -race this also proves the publication protocol.
func TestInternConcurrentReaders(t *testing.T) {
	b, err := ByName("hydro2d")
	if err != nil {
		t.Fatal(err)
	}
	opts := ReaderOpts{AddrOffset: ThreadAddrOffset(1), Seed: 99}
	want := readN(t, b.NewReader(opts), 4*internChunkLen) // first sighting: live
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := b.NewReader(opts)
			var in isa.Inst
			for i := range want {
				if !r.Next(&in) || in != want[i] {
					t.Errorf("instruction %d diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestInternBudgetFallback: when the global budget freezes a stream, a
// reader that outruns the shared prefix must continue bit-identically on
// its private generator.
func TestInternBudgetFallback(t *testing.T) {
	saved := InternBudgetBytes
	defer func() { InternBudgetBytes = saved }()

	b, err := ByName("wave5")
	if err != nil {
		t.Fatal(err)
	}
	// A seed no other test shares, so this stream is not already interned.
	opts := ReaderOpts{AddrOffset: ThreadAddrOffset(3), Seed: 0xB0D6E7}
	const n = 5 * internChunkLen
	want := readN(t, b.NewReader(opts), n) // first sighting: live

	// Allow one more chunk than currently used, then freeze.
	_, used := internStats()
	InternBudgetBytes = used + internChunkBytes
	r := b.NewReader(opts)
	if _, ok := r.(*internReader); !ok {
		t.Fatal("second reader for a key should be interned")
	}
	got := readN(t, r, n)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("instruction %d differs after freeze: want %v, got %v", i, want[i], got[i])
		}
	}
	if ir := r.(*internReader); ir.live == nil {
		t.Fatal("reader never fell back to live generation despite the frozen stream")
	}
}

// TestTraceFileBudgetFallback: ingesting a trace file that would blow
// the intern budget must fall back to uncached (live) service — correct
// streams, nothing pinned in the registry — and ingest normally once
// the budget allows it.
func TestTraceFileBudgetFallback(t *testing.T) {
	saved := InternBudgetBytes
	defer func() { InternBudgetBytes = saved }()

	const contexts, n = 1, 400
	path := exportToFile(t, "apsi", contexts, 0xF411BACC, n)
	b, err := ByName("apsi")
	if err != nil {
		t.Fatal(err)
	}
	want := readN(t, b.NewReader(ReaderOpts{AddrOffset: ThreadAddrOffset(0), Seed: 0xF411BACC}), n)

	// A 1-byte budget cannot retain any decode: live fallback.
	InternBudgetBytes = 1
	entriesBefore := traceFileStats()
	sources, err := TraceSources(path, "container", contexts)
	if err != nil {
		t.Fatal(err)
	}
	got := readN(t, sources[0], n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs under budget fallback", i)
		}
	}
	if after := traceFileStats(); after != entriesBefore {
		t.Fatalf("budget-exceeded ingest pinned a registry entry (%d -> %d)", entriesBefore, after)
	}

	// With headroom the same file is retained and re-served bit-identically.
	InternBudgetBytes = saved
	if _, err := TraceSources(path, "container", contexts); err != nil {
		t.Fatal(err)
	}
	if after := traceFileStats(); after != entriesBefore+1 {
		t.Fatalf("in-budget ingest not retained (%d -> %d)", entriesBefore, after)
	}
	sources, err = TraceSources(path, "container", contexts)
	if err != nil {
		t.Fatal(err)
	}
	got = readN(t, sources[0], n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs from the retained registry entry", i)
		}
	}
}

// TestInternDisabled: a zero budget bypasses interning entirely.
func TestInternDisabled(t *testing.T) {
	saved := InternBudgetBytes
	defer func() { InternBudgetBytes = saved }()
	InternBudgetBytes = 0
	b, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.NewReader(ReaderOpts{}).(*internReader); ok {
		t.Fatal("interning not disabled by a zero budget")
	}
}
