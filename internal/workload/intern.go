package workload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Trace interning.
//
// Every figure in the paper is a sweep, and every sweep point re-creates
// the same per-thread instruction streams: the generator for a given
// (benchmark spec, address offset, seed) triple is deterministic, so
// each point used to re-interpret the same kernels instruction by
// instruction (~8% of a busy simulation profile). NewReader therefore
// memoizes each triple's output in a shared packed buffer: the first
// reader materializes instructions chunk by chunk from one underlying
// generator, and every later reader — in this run, a later sweep point,
// or a concurrent runner worker — replays the prefix with a bounds check
// and a copy.
//
// The buffers are append-only and chunked: a published chunk never moves,
// so readers race-freely index it after observing the published length
// (atomic publication provides the happens-before edge). Growth stops at
// a global byte budget — streams are infinite, the cache must not be —
// after which a reader that outruns the shared prefix falls back to a
// private generator fast-forwarded to its position. Interned and live
// readers produce bit-identical streams by construction.

// Interning starts on *reuse*: the first reader for a key generates
// live (a one-shot stream would only pay the buffer's allocation and
// memory traffic for nothing — a 20M-instruction dae-sim run measured
// ~35% slower with eager interning); the second reader for the same key
// starts materializing the shared buffer from scratch, and later readers
// replay it. A sweep's N points over one stream thus generate it at most
// twice instead of N times.

// internChunkLen is the number of instructions materialized per chunk
// (32 KiB per chunk at 32 bytes per instruction).
const internChunkLen = 1024

// InternBudgetBytes caps the total memory the trace interner may hold
// across all streams, in bytes. Once exhausted, streams stop growing and
// readers beyond the shared prefix generate privately. Set to 0 (before
// any simulation) to disable interning. The default covers the full
// default instruction budgets of every figure sweep's early segments —
// the region sweep points actually share.
var InternBudgetBytes int64 = 256 << 20

type internChunk = [internChunkLen]isa.Inst

// internedStream is one memoized (benchmark, opts) instruction stream.
type internedStream struct {
	// published is the number of instructions readable lock-free; the
	// chunks covering them are reachable via the chunks pointer. Writers
	// publish chunk contents before bumping published (atomic store →
	// atomic load gives readers the happens-before edge).
	published atomic.Int64
	chunks    atomic.Pointer[[]*internChunk]

	mu     sync.Mutex
	gen    trace.Reader // shared generator, positioned at `published`
	newGen func() trace.Reader
	frozen bool // budget exhausted: the stream stops growing
}

var (
	internMu      sync.Mutex
	internStreams = map[string]*internedStream{}
	internUsed    atomic.Int64
)

// internFor returns the shared stream for one generator configuration,
// or nil on the key's first sighting (the caller then reads live; see
// the reuse rule above). The key is the full structural fingerprint of
// the benchmark plus the reader options, so two distinct specs that
// happen to share a name can never alias.
func internFor(b Benchmark, opts ReaderOpts) *internedStream {
	return internForKey(
		fmt.Sprintf("%+v|off=%d|seed=%d", b, opts.AddrOffset, opts.Seed),
		func() trace.Reader { return b.newGenerator(opts) },
	)
}

// internForKey is the generic registry lookup behind internFor (and the
// mix-level interning in mix.go): nil on first sighting, the shared
// stream afterwards.
func internForKey(key string, newGen func() trace.Reader) *internedStream {
	internMu.Lock()
	defer internMu.Unlock()
	s, ok := internStreams[key]
	if !ok {
		// First sighting: remember how to regenerate, but let this
		// reader run live.
		internStreams[key] = &internedStream{newGen: newGen}
		return nil
	}
	return s
}

// internReader replays one interned stream from the beginning. It holds
// a window into the current chunk so the per-instruction fast path is a
// slice read — the atomic loads and chunk lookup run once per window —
// and implements trace.Peeker so the core's fetch stage can look ahead
// without copying.
type internReader struct {
	s   *internedStream
	cur []isa.Inst // unread slice of the current chunk
	pos int64      // absolute position of cur's end
	// live is the private fallback generator once the shared prefix is
	// frozen and exhausted; pending buffers its one-instruction
	// lookahead for PeekNext.
	live        trace.Reader
	pending     isa.Inst
	livePending bool
}

// Next implements trace.Reader; the stream is infinite.
func (r *internReader) Next(out *isa.Inst) bool {
	if len(r.cur) > 0 {
		*out = r.cur[0]
		r.cur = r.cur[1:]
		return true
	}
	if r.live == nil && r.refresh() {
		*out = r.cur[0]
		r.cur = r.cur[1:]
		return true
	}
	if r.livePending {
		*out = r.pending
		r.livePending = false
		return true
	}
	return r.live.Next(out)
}

// PeekNext implements trace.Peeker: a zero-copy pointer into the shared
// buffer (or the fallback generator's one-instruction lookahead), valid
// until the next Consume/Next.
func (r *internReader) PeekNext() (*isa.Inst, bool) {
	if len(r.cur) > 0 {
		return &r.cur[0], true
	}
	if r.live == nil && r.refresh() {
		return &r.cur[0], true
	}
	if !r.livePending {
		if !r.live.Next(&r.pending) {
			return nil, false
		}
		r.livePending = true
	}
	return &r.pending, true
}

// Consume implements trace.Peeker.
func (r *internReader) Consume() {
	if len(r.cur) > 0 {
		r.cur = r.cur[1:]
		return
	}
	if r.livePending {
		r.livePending = false
		return
	}
	panic("workload: Consume without a successful PeekNext")
}

// refresh loads the next window into r.cur, growing the shared stream
// when this reader is at its tip. It reports false after switching the
// reader to private generation (the stream froze short of r.pos).
func (r *internReader) refresh() bool {
	s := r.s
	n := s.published.Load()
	if r.pos >= n {
		if !s.extend(r.pos) {
			// The shared prefix is frozen short of r.pos: fall back to a
			// private generator fast-forwarded to this reader's position.
			r.live = s.newGen()
			var skip isa.Inst
			for i := int64(0); i < r.pos; i++ {
				r.live.Next(&skip)
			}
			return false
		}
		n = s.published.Load()
	}
	chunk := (*s.chunks.Load())[r.pos/internChunkLen]
	lo := r.pos % internChunkLen
	hi := int64(internChunkLen)
	if end := n - (r.pos - lo); end < hi {
		hi = end // the tip chunk may be only partially published
	}
	r.cur = chunk[lo:hi]
	r.pos += hi - lo
	return true
}

// extend grows the shared prefix until it covers pos. It reports false
// when the stream is frozen (budget exhausted) before reaching pos.
func (s *internedStream) extend(pos int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.published.Load()
	for pos >= n {
		if s.frozen {
			return false
		}
		if s.gen == nil {
			// First growth: the shared generator starts from scratch
			// (the key's first reader ran live and shared nothing).
			s.gen = s.newGen()
		}
		if internUsed.Add(internChunkBytes) > InternBudgetBytes {
			internUsed.Add(-internChunkBytes)
			s.frozen = true
			s.gen = nil // release the shared generator
			return false
		}
		ch := new(internChunk)
		for i := range ch {
			s.gen.Next(&ch[i])
		}
		old := s.chunks.Load()
		var grown []*internChunk
		if old != nil {
			grown = append(grown, *old...)
		}
		grown = append(grown, ch)
		s.chunks.Store(&grown)
		n += internChunkLen
		s.published.Store(n)
	}
	return true
}

const internChunkBytes = internChunkLen * int64(unsafe.Sizeof(isa.Inst{}))

// internStats reports the interner's footprint (tests only).
func internStats() (streams int, bytes int64) {
	internMu.Lock()
	defer internMu.Unlock()
	return len(internStreams), internUsed.Load()
}
