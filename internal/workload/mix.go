package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// MixOpts configures a per-thread multiprogrammed workload.
type MixOpts struct {
	// SegmentLen is the number of instructions taken from each benchmark
	// before rotating to the next (the paper runs "a sequence of traces
	// from all SpecFP95 programs, in a different order for each thread").
	SegmentLen int64
	// Seed perturbs each benchmark's data-dependent randomness.
	Seed uint64
}

// DefaultSegmentLen is the segment length used when MixOpts.SegmentLen is
// zero: long enough that steady-state behaviour dominates each segment,
// short enough that a per-thread measurement window of a few hundred
// thousand instructions samples most of the ten benchmarks (otherwise
// thread-count sweeps would measure workload composition, not the
// machine).
const DefaultSegmentLen = 40_000

// threadAddrStride separates the address spaces of different hardware
// contexts (multiprogrammed workloads share no data).
const threadAddrStride = uint64(1) << 36

// threadIndexSkew staggers each thread's streams across L1 sets. Without
// it, thread t's stream s would map to exactly the same sets as every
// other thread's stream s (the address-space stride has zero index bits)
// and resident streams would alias pathologically instead of competing
// for capacity the way distinct programs do.
const threadIndexSkew = uint64(0x4a60) // odd multiple of the 32-byte line

// ThreadAddrOffset returns the address-space displacement for a hardware
// context, used by every per-thread workload constructor.
func ThreadAddrOffset(threadID int) uint64 {
	return uint64(threadID+1)*threadAddrStride + uint64(threadID)*threadIndexSkew
}

// Mix returns thread `threadID`'s infinite instruction stream: the ten
// benchmarks concatenated in a rotated order (thread 0 starts at
// benchmark 0, thread 1 at benchmark 1, ...), SegmentLen instructions per
// segment, forever.
//
// Mix streams are interned at the mix level (see intern.go): the second
// and later requests for the same (thread, options) stream — every sweep
// point after the first, every benchmark iteration — replay a shared
// packed buffer instead of re-running the segment generators.
func Mix(threadID int, opts MixOpts) trace.Reader {
	if threadID < 0 {
		panic(fmt.Sprintf("workload: negative thread id %d", threadID))
	}
	if opts.SegmentLen <= 0 {
		// Normalize before the intern key so explicit-default and
		// zero-value options name the same stream.
		opts.SegmentLen = DefaultSegmentLen
	}
	if InternBudgetBytes > 0 {
		key := fmt.Sprintf("mix|t=%d|seg=%d|seed=%d", threadID, opts.SegmentLen, opts.Seed)
		if s := internForKey(key, func() trace.Reader { return newMixReader(threadID, opts) }); s != nil {
			return &internReader{s: s}
		}
	}
	return newMixReader(threadID, opts)
}

// newMixReader builds the live segment-rotating reader behind Mix.
func newMixReader(threadID int, opts MixOpts) trace.Reader {
	segLen := opts.SegmentLen
	if segLen <= 0 {
		segLen = DefaultSegmentLen
	}
	benches := builtins()
	return &mixReader{
		benches:  benches,
		next:     threadID % len(benches),
		segLen:   segLen,
		addrOff:  ThreadAddrOffset(threadID),
		seedBase: opts.Seed ^ (uint64(threadID)*0x9e3779b97f4a7c15 + 1),
	}
}

// MixSources builds one Mix reader per thread, rotated per the paper.
func MixSources(threads int, opts MixOpts) []trace.Reader {
	srcs := make([]trace.Reader, threads)
	for t := 0; t < threads; t++ {
		srcs[t] = Mix(t, opts)
	}
	return srcs
}

type mixReader struct {
	benches  []Benchmark
	next     int
	segLen   int64
	addrOff  uint64
	seedBase uint64

	cur       trace.Reader
	remaining int64
	segment   uint64 // segments completed, perturbs per-segment seeds
}

// Next implements trace.Reader; the stream never ends.
func (m *mixReader) Next(out *isa.Inst) bool {
	for m.cur == nil || m.remaining <= 0 {
		b := m.benches[m.next]
		m.next = (m.next + 1) % len(m.benches)
		// Segments generate live (newGenerator, not NewReader): mix
		// streams are interned as a whole, so interning the segments too
		// would only double-buffer the same instructions.
		m.cur = b.newGenerator(ReaderOpts{
			AddrOffset: m.addrOff,
			Seed:       m.seedBase + m.segment,
		})
		m.remaining = m.segLen
		m.segment++
	}
	if !m.cur.Next(out) {
		// Benchmark readers are infinite; treat a dry reader defensively
		// by rotating to the next segment.
		m.remaining = 0
		return m.Next(out)
	}
	m.remaining--
	return true
}
