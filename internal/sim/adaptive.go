package sim

// The adaptive execution mode: calendar fast-forward (Step) is a clear
// win when the machine spends long stretches provably idle — a far L2 or
// DRAM miss with nothing else to do — but on busy configurations every
// Step call pays a nextEventAt scan that a plain Tick would not, a few
// percent of the run. The controller below watches the *realized* skip
// rate over windows of scheduler advances and picks the cheaper driver
// for the next window, with an exponential backoff so mostly-busy runs
// pay the probing tax ever more rarely.
//
// The hot path is deliberately free of clock reads: each advance is one
// compare-and-decrement on a local countdown plus the driver call, so
// driving either mode through the controller costs the same as the bare
// run/stepped loops. The machine's clock and skip counter are consulted
// only at window boundaries. Windows therefore count *advances*, not
// cycles: in stepped mode the two are equal (Tick is one cycle); in fast
// mode a window of N advances covers at least N cycles — overshooting is
// harmless there, because a long window in fast mode means skipping is
// working, and the controller's reaction latency stays bounded in
// advances (i.e. in wall-clock work) either way.
//
// Adaptive runs are bit-identical to exact runs by construction: Tick and
// Step leave the machine in identical states (the equivalence suite pins
// this), and the controller's decisions depend only on deterministic
// simulation counters — never on wall-clock time — so the same run always
// takes the same path.

// AdaptiveWindow is a committed window: the advances served in one mode
// before the controller reconsiders.
const AdaptiveWindow = 1 << 16

// AdaptiveProbe is the short fast-forward window used to (re)measure the
// skip rate. Probes are the tax a busy run pays for the chance to notice
// it has turned idle, so they are 16× shorter than committed windows.
const AdaptiveProbe = 1 << 12

// adaptiveSkipPctMin is the skip-rate floor, in percent of window cycles,
// below which fast-forwarding is judged not to pay for its bookkeeping.
// The fast-forward tax measured on the busiest bench configs is ~3% of
// run time, so a window must skip at least that to break even.
const adaptiveSkipPctMin = 3

// adaptiveMaxBackoff caps the stepped-mode backoff, so a run that turns
// idle late is never more than ~16 windows (1M cycles) from rediscovering
// fast-forward.
const adaptiveMaxBackoff = 16

// adaptiveStepper is the controller state.
type adaptiveStepper struct {
	tick    func()
	step    func(horizon int64)
	now     func() int64
	skipped func() int64
	horizon int64

	left     int64 // advances remaining in the current window (the hot countdown)
	stepping bool  // current driver: plain Tick when true
	windows  int   // stepped windows remaining before the next fast probe
	backoff  int   // stepped windows to commit after the next failed probe
	winStart int64 // now() when the current fast window opened
	lastSkip int64 // skipped() when the current fast window opened
}

// NewAdaptiveStepper returns a step function that advances the machine
// one scheduler step, switching between cycle stepping and calendar
// fast-forward based on the realized skip rate. The primitives are passed
// as closures so the simulator's run loop and external harnesses
// (dae-bench) drive the identical controller. tick advances one cycle;
// step fast-forwards (clamped to horizon); now and skipped read the
// machine's clock and cumulative skipped-cycle counter.
func NewAdaptiveStepper(tick func(), step func(horizon int64), now, skipped func() int64, horizon int64) func() {
	a := &adaptiveStepper{
		tick: tick, step: step, now: now, skipped: skipped,
		horizon: horizon,
		backoff: 1,
	}
	a.startFast(AdaptiveProbe)
	return a.advance
}

func (a *adaptiveStepper) advance() {
	if a.left <= 0 {
		a.boundary()
	}
	a.left--
	if a.stepping {
		a.tick()
		return
	}
	a.step(a.horizon)
}

// startFast opens a fast-forward window of n advances and records the
// clock and skip counter it will be judged against.
func (a *adaptiveStepper) startFast(n int64) {
	a.stepping = false
	a.left = n
	a.winStart = a.now()
	a.lastSkip = a.skipped()
}

// boundary closes the elapsed window and picks the driver for the next
// one. Runs once per window — everything here is off the hot path.
func (a *adaptiveStepper) boundary() {
	if a.stepping {
		// Stepped windows skip nothing, so there is no rate to measure;
		// serve the committed windows, then probe one short fast window.
		if a.windows--; a.windows > 0 {
			a.left = AdaptiveWindow
			return
		}
		a.startFast(AdaptiveProbe)
		return
	}
	// A fast window just ended: did fast-forwarding earn its keep?
	elapsed := a.now() - a.winStart
	dSkip := a.skipped() - a.lastSkip
	if dSkip*100 < elapsed*adaptiveSkipPctMin {
		a.stepping = true
		a.left = AdaptiveWindow
		a.windows = a.backoff
		if a.backoff *= 2; a.backoff > adaptiveMaxBackoff {
			a.backoff = adaptiveMaxBackoff
		}
		return
	}
	a.backoff = 1
	a.startFast(AdaptiveWindow)
}
