package sim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The golden equivalence suite: the fast-forward scheduler must produce
// results bit-identical to cycle-by-cycle stepping — same cycle counts,
// same IPC, same (float) waste buckets, same memory counters — for every
// machine the paper's figures sweep. Reports are compared field by field
// with reflect.DeepEqual, which for float fields is exact bit equality.

// shortBudget mirrors experiments.ShortBudget per thread.
const (
	shortWarmup  = 2_000
	shortMeasure = 8_000
)

// mixSources builds the Section-3 mix streams for t threads.
func mixSources(t *testing.T, threads int, seed uint64) []trace.Reader {
	t.Helper()
	return workload.MixSources(threads, workload.MixOpts{Seed: seed})
}

// benchSources builds per-thread copies of one named benchmark.
func benchSources(t *testing.T, name string, threads int, seed uint64) []trace.Reader {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]trace.Reader, threads)
	for i := 0; i < threads; i++ {
		srcs[i] = b.NewReader(workload.ReaderOpts{
			AddrOffset: workload.ThreadAddrOffset(i),
			Seed:       seed + uint64(i),
		})
	}
	return srcs
}

// runBoth runs the same configuration in stepped and fast-forward mode
// and fails the test on any difference between the two results.
func runBoth(t *testing.T, name string, opts Options, sources func() []trace.Reader) Result {
	t.Helper()
	opts.Sources = sources()
	opts.Stepped = true
	stepped, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("%s: stepped run: %v", name, err)
	}
	opts.Sources = sources()
	opts.Stepped = false
	fast, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("%s: fast run: %v", name, err)
	}
	// DeepEqual, not ==: Report carries a per-level slice for hierarchy
	// machines. Float fields still compare exactly (DeepEqual uses ==
	// element-wise), so this remains a bit-identity check.
	if !reflect.DeepEqual(fast, stepped) {
		t.Errorf("%s: fast-forward diverged from stepping\nstepped: %+v\nfast:    %+v", name, stepped, fast)
	}
	return fast
}

// TestEquivalenceFigureConfigs covers one machine per figure of the
// paper: the Section-2 single-threaded machine of Figure 1, the Figure-3
// thread sweep, Figure 4's decoupled/non-decoupled latency-tolerance
// pair, and a Figure-5 many-context point — each across the latency
// extremes where fast-forwarding matters most.
func TestEquivalenceFigureConfigs(t *testing.T) {
	type cfg struct {
		name    string
		machine config.Machine
		threads int
		bench   string // "" = mix
	}
	var cases []cfg
	// Figure 1: Section-2 machine, per-benchmark runs, swept L2 latency.
	for _, bench := range []string{"swim", "fpppp"} {
		for _, lat := range []int64{16, 256} {
			cases = append(cases, cfg{
				name:    "fig1/" + bench,
				machine: config.Section2().WithL2Latency(lat),
				threads: 1,
				bench:   bench,
			})
		}
	}
	// Figure 3: the multithreaded machine's thread axis at L2=16.
	for threads := 1; threads <= 4; threads++ {
		cases = append(cases, cfg{name: "fig3", machine: config.Figure2(threads), threads: threads})
	}
	// Figure 4: latency tolerance, both issue models at a high latency.
	cases = append(cases,
		cfg{name: "fig4/dec", machine: config.Figure2(4).WithL2Latency(256), threads: 4},
		cfg{name: "fig4/nondec", machine: config.Figure2(4).WithL2Latency(256).NonDecoupled(), threads: 4},
	)
	// Figure 5: thread requirements — more contexts, longer latency.
	cases = append(cases,
		cfg{name: "fig5/dec", machine: config.Figure2(8).WithL2Latency(64), threads: 8},
		cfg{name: "fig5/nondec", machine: config.Figure2(8).WithL2Latency(64).NonDecoupled(), threads: 8},
	)
	// Beyond the event calendar's wheel window (4096 cycles): every
	// refill event takes the far-overflow path and skips can span whole
	// wheel revolutions. No figure sweeps this far; the scheduler must
	// still be exact.
	cases = append(cases,
		cfg{name: "far-window", machine: config.Figure2(2).WithL2Latency(6000), threads: 2},
	)
	// Finite shared hierarchies: shared-level fills (and their dirty
	// victims' memory-bus bookings) happen at internally-scheduled
	// cycles the fast-forward path must not skip — the fill-scheduler
	// calendar hookup under test. Small L2s force evictions and
	// write-back chains; the tiny-MSHR case exercises StallLowerMSHR
	// retries; the two-level case exercises composition; the far-DRAM
	// case pushes hierarchy fills through the calendar's overflow heap.
	cases = append(cases,
		cfg{name: "hier/l2-small", machine: config.Figure2(4).WithHierarchy(64, config.SharedL2(64<<10, 1)), threads: 4},
		cfg{name: "hier/l2-roomy", machine: config.Figure2(2).WithHierarchy(64, config.SharedL2(1<<20, 8)), threads: 2},
		cfg{name: "hier/l2-tiny-mshrs", machine: func() config.Machine {
			l2 := config.SharedL2(128<<10, 2)
			l2.MSHRs = 2
			return config.Figure2(4).WithHierarchy(100, l2)
		}(), threads: 4},
		cfg{name: "hier/two-level", machine: func() config.Machine {
			l3 := config.SharedL2(512<<10, 8)
			l3.Name = "L3"
			l3.HitLatency = 30
			l3.BusBytesPerCycle = 8
			return config.Figure2(3).WithHierarchy(120, config.SharedL2(64<<10, 2), l3)
		}(), threads: 3},
		cfg{name: "hier/far-dram", machine: config.Figure2(2).WithHierarchy(6000, config.SharedL2(64<<10, 1)), threads: 2},
	)

	for _, c := range cases {
		opts := Options{
			Machine:      c.machine,
			WarmupInsts:  shortWarmup * int64(c.threads),
			MeasureInsts: shortMeasure * int64(c.threads),
		}
		label := c.name
		if c.bench != "" {
			label += "/" + c.bench
		}
		src := func() []trace.Reader { return mixSources(t, c.threads, 0) }
		if c.bench != "" {
			bench, threads := c.bench, c.threads
			src = func() []trace.Reader { return benchSources(t, bench, threads, 0) }
		}
		runBoth(t, label, opts, src)
	}
}

// TestEquivalenceMaxCyclesInsideSkip pins the cycle cap inside a skipped
// interval: with a 256-cycle L2 and a budget the machine cannot reach,
// the stepped run ends mid-stall, and the fast-forwarded run must land on
// exactly the same cycle with exactly the same accounting.
func TestEquivalenceMaxCyclesInsideSkip(t *testing.T) {
	for _, maxCycles := range []int64{50, 333, 1000, 2500} {
		opts := Options{
			Machine:      config.Section2().WithL2Latency(256),
			WarmupInsts:  0,
			MeasureInsts: 1_000_000_000, // unreachable: the cap decides
			MaxCycles:    maxCycles,
		}
		res := runBoth(t, "maxcycles", opts, func() []trace.Reader {
			return benchSources(t, "swim", 1, 0)
		})
		if res.Completed {
			t.Fatalf("maxCycles=%d: run unexpectedly completed", maxCycles)
		}
		if res.TotalCycles != maxCycles {
			t.Fatalf("maxCycles=%d: stopped at %d", maxCycles, res.TotalCycles)
		}
	}
}

// TestEquivalencePropertySeeds is the property test: across seeds and
// workloads, stepped and fast-forwarded runs must produce identical
// collector snapshots.
func TestEquivalencePropertySeeds(t *testing.T) {
	benches := []string{"tomcatv", "su2cor", "hydro2d", "applu", "turb3d"}
	for seed := uint64(0); seed < 8; seed++ {
		bench := benches[seed%uint64(len(benches))]
		threads := 1 + int(seed%3)
		lat := []int64{1, 32, 128, 256}[seed%4]
		m := config.Figure2(threads).WithL2Latency(lat)
		if seed%2 == 1 {
			m = m.NonDecoupled()
		}
		opts := Options{
			Machine:      m,
			WarmupInsts:  500 * int64(threads),
			MeasureInsts: 4_000 * int64(threads),
		}
		res := runBoth(t, bench, opts, func() []trace.Reader {
			return benchSources(t, bench, threads, seed)
		})
		if res.Report.Graduated == 0 {
			t.Fatalf("seed %d: nothing graduated", seed)
		}
	}
}
