package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/trace"
)

// The parallel arm of the golden equivalence suite: epoch-parallel CMP
// execution (Options.Parallel, DESIGN.md §12) must produce results
// bit-identical to the serial lockstep path on every machine shape it
// can engage — flat, shared-chain and private-chain hierarchies, with
// and without shared-MSHR contention — in every execution mode. These
// tests exercise real goroutine sharing (run them under -race; CI
// does), unlike the single-goroutine lockstep suite.

// runParallelBoth runs the same configuration serially and with
// Parallel workers and fails the test on any difference.
func runParallelBoth(t *testing.T, name string, opts Options, par int, sources func() []trace.Reader) Result {
	t.Helper()
	opts.Sources = sources()
	opts.Parallel = 0
	serial, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("%s: serial run: %v", name, err)
	}
	opts.Sources = sources()
	opts.Parallel = par
	parallel, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("%s: parallel run: %v", name, err)
	}
	if !reflect.DeepEqual(parallel, serial) {
		t.Errorf("%s: parallel diverged from serial\nserial:   %+v\nparallel: %+v", name, serial, parallel)
	}
	return parallel
}

// parallelCases is one machine per epoch-relevant shape: the flat model
// (no interconnect crossings at all), shared chains (every L1 miss is a
// barrier-ordered crossing) including a contended small-and-narrow L2
// and a tiny-MSHR file whose rejections make cores retry — and re-cross
// — every cycle, and the private-chain ablation (chains advance inside
// the worker goroutines).
func parallelCases() []struct {
	name    string
	machine config.Machine
} {
	return []struct {
		name    string
		machine config.Machine
	}{
		{"flat2x2", config.Figure2(2).WithCores(2)},
		{"shared2x2", config.Figure2(2).WithCores(2).
			WithHierarchy(64, config.SharedL2(256<<10, 8))},
		{"shared4x1/contended", config.Figure2(1).WithCores(4).
			WithHierarchy(64, config.SharedL2(64<<10, 1))},
		{"shared4x1/tiny-mshrs", func() config.Machine {
			l2 := config.SharedL2(128<<10, 2)
			l2.MSHRs = 2
			return config.Figure2(1).WithCores(4).WithHierarchy(100, l2)
		}()},
		{"private2x1", config.Figure2(1).WithCores(2).
			WithHierarchy(64, config.SharedL2(64<<10, 8)).WithPrivateHierarchy()},
	}
}

func TestParallelEquivalenceCMP(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeAdaptive, ModeSampled} {
		name := "exact"
		if mode != ModeExact {
			name = string(mode)
		}
		for _, tc := range parallelCases() {
			tc := tc
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				n := tc.machine.TotalContexts()
				opts := Options{
					Machine:               tc.machine,
					WarmupInsts:           shortWarmup * int64(n),
					MeasureInsts:          shortMeasure * int64(n),
					Mode:                  mode,
					DisjointAddressSpaces: true,
				}
				if mode == ModeSampled {
					opts.Sampling = Sampling{PeriodInsts: 5_000, UnitInsts: 500, WarmupInsts: 1_000}
					opts.MeasureInsts *= 4
				}
				runParallelBoth(t, tc.name, opts, 4, func() []trace.Reader {
					return mixSources(t, n, 13)
				})
			})
		}
	}
}

// TestParallelWorkerCounts: the worker-pool size must never leak into
// results — 2, 3 and 8 workers (more than cores) all match serial.
func TestParallelWorkerCounts(t *testing.T) {
	m := config.Figure2(2).WithCores(4).
		WithHierarchy(64, config.SharedL2(128<<10, 4))
	n := m.TotalContexts()
	opts := Options{
		Machine:               m,
		WarmupInsts:           shortWarmup * int64(n),
		MeasureInsts:          shortMeasure * int64(n),
		DisjointAddressSpaces: true,
	}
	for _, par := range []int{2, 3, 8} {
		runParallelBoth(t, "workers", opts, par, func() []trace.Reader {
			return mixSources(t, n, 5)
		})
	}
}

// TestParallelMaxCyclesInsideRun pins the cycle cap against epoch
// horizons: serial and parallel must stop on exactly the same cycle
// with the same accounting when the cap lands mid-window.
func TestParallelMaxCyclesInsideRun(t *testing.T) {
	m := config.Figure2(1).WithCores(2).
		WithHierarchy(64, config.SharedL2(256<<10, 8))
	for _, maxCycles := range []int64{500, 3_333} {
		opts := Options{
			Machine:               m,
			WarmupInsts:           0,
			MeasureInsts:          1 << 50, // unreachable: the cap decides
			MaxCycles:             maxCycles,
			DisjointAddressSpaces: true,
		}
		res := runParallelBoth(t, "maxcycles", opts, 2, func() []trace.Reader {
			return mixSources(t, m.TotalContexts(), 3)
		})
		if res.Completed {
			t.Fatalf("maxCycles=%d: run unexpectedly completed", maxCycles)
		}
		if res.TotalCycles > maxCycles {
			t.Fatalf("maxCycles=%d: stopped at %d", maxCycles, res.TotalCycles)
		}
	}
}

// TestParallelIneligibleFallsBack: configurations the epoch runner must
// decline — non-disjoint address spaces, a single core, stepped mode —
// still run (serially) and still match their serial twins.
func TestParallelIneligibleFallsBack(t *testing.T) {
	cmp := config.Figure2(2).WithCores(2).
		WithHierarchy(64, config.SharedL2(256<<10, 8))
	cases := []struct {
		name string
		m    config.Machine
		mut  func(*Options)
	}{
		{"non-disjoint", cmp, func(o *Options) { o.DisjointAddressSpaces = false }},
		{"single-core", config.Figure2(2), func(o *Options) {}},
		{"stepped", cmp, func(o *Options) { o.Stepped = true }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n := tc.m.TotalContexts()
			opts := Options{
				Machine:               tc.m,
				WarmupInsts:           shortWarmup * int64(n),
				MeasureInsts:          shortMeasure * int64(n),
				DisjointAddressSpaces: true,
			}
			tc.mut(&opts)
			runParallelBoth(t, tc.name, opts, 4, func() []trace.Reader {
				return mixSources(t, n, 9)
			})
		})
	}
}

// TestParallelCancellation: cancelling the context mid-epoch aborts a
// parallel run promptly with the context's error — the coordinator
// polls the context between crossings, not just between epochs.
func TestParallelCancellation(t *testing.T) {
	m := config.Figure2(2).WithCores(4).
		WithHierarchy(64, config.SharedL2(64<<10, 2))
	n := m.TotalContexts()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(100*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := Run(ctx, Options{
		Machine:               m,
		Sources:               mixSources(t, n, 1),
		WarmupInsts:           0,
		MeasureInsts:          1 << 40,
		DisjointAddressSpaces: true,
		Parallel:              4,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancellation took %v; the run did not abort mid-epoch", took)
	}
}
