// Package sim is the simulation front-end: it builds a machine from a
// configuration and per-thread instruction sources, runs a warm-up window
// (the paper skips each benchmark's start-up phase), resets the statistics,
// runs the measurement window, and produces the final report.
//
// Three execution modes cover the speed/fidelity lattice (DESIGN.md §10):
//
//   - exact (the default): every cycle of the measurement is simulated in
//     detail, fast-forwarding over provably idle stretches via the event
//     calendar. Bit-identical to cycle-by-cycle stepping.
//   - adaptive: the same detailed simulation, but a per-window controller
//     watches the realized skip rate and falls back to plain stepping when
//     fast-forwarding cannot pay for its bookkeeping. Bit-identical to
//     exact by construction — the controller only chooses which driver
//     advances the clock.
//   - sampled: SMARTS-style systematic sampling — short detailed units
//     spread over the instruction budget, separated by functional warp
//     gaps (architectural state only) and detailed re-warm windows. An
//     estimate, not an exact result: the report carries the per-unit mean
//     IPC and its 95% confidence interval in Report.Sampled.
package sim

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Mode selects how a run advances the machine.
type Mode string

// Execution modes. The zero value is exact execution, so existing
// callers (and serialized requests) are unchanged.
const (
	// ModeExact is full detailed simulation with calendar fast-forward.
	ModeExact Mode = ""
	// ModeAdaptive is detailed simulation with the per-window
	// fast-forward/stepping controller. Bit-identical to ModeExact.
	ModeAdaptive Mode = "adaptive"
	// ModeSampled is SMARTS-style systematic sampling: estimative, with
	// confidence intervals in Report.Sampled.
	ModeSampled Mode = "sampled"
)

// Sampling parameterizes ModeSampled: every PeriodInsts instructions, one
// detailed unit of UnitInsts is measured after a detailed warm-up of
// WarmupInsts; the rest of the period is functionally warped.
type Sampling struct {
	// PeriodInsts is the sampling period (0 = DefaultSamplingPeriod).
	PeriodInsts int64
	// UnitInsts is the measured unit length (0 = DefaultSamplingUnit).
	UnitInsts int64
	// WarmupInsts is the detailed warm-up run before each unit
	// (0 = DefaultSamplingWarmup; it cannot be disabled — warming is what
	// bounds the cold-pipeline bias).
	WarmupInsts int64
}

// Default sampling parameters: 2k-instruction units every 197k
// instructions with a 4k detailed re-warm — a ~3% detailed duty cycle, in
// the regime SMARTS showed keeps IPC error in the low percents for
// steady-state workloads. The period is deliberately *not* a round
// number: systematic sampling aliases badly when the period is
// commensurate with a workload's own periodicity (the built-in mix
// rotates benchmarks every 40k instructions, so a 200k period would pin
// every unit to a single phase offset forever). 197_000 shares only a
// factor of 1000 with such round periodicities, so successive units
// stride through the phases instead.
const (
	DefaultSamplingPeriod = 197_000
	DefaultSamplingUnit   = 2_000
	DefaultSamplingWarmup = 4_000
)

// withDefaults resolves zero fields to the documented defaults.
func (s Sampling) WithDefaults() Sampling {
	if s.PeriodInsts == 0 {
		s.PeriodInsts = DefaultSamplingPeriod
	}
	if s.UnitInsts == 0 {
		s.UnitInsts = DefaultSamplingUnit
	}
	if s.WarmupInsts == 0 {
		s.WarmupInsts = DefaultSamplingWarmup
	}
	return s
}

// Validate checks the resolved sampling parameters.
func (s Sampling) Validate() error {
	s = s.WithDefaults()
	switch {
	case s.PeriodInsts < 0 || s.UnitInsts < 0 || s.WarmupInsts < 0:
		return fmt.Errorf("sim: negative sampling parameter (period=%d unit=%d warmup=%d)",
			s.PeriodInsts, s.UnitInsts, s.WarmupInsts)
	case s.UnitInsts+s.WarmupInsts > s.PeriodInsts:
		return fmt.Errorf("sim: sampling unit+warmup (%d+%d) exceed the period (%d)",
			s.UnitInsts, s.WarmupInsts, s.PeriodInsts)
	}
	return nil
}

// Options configures one simulation run.
type Options struct {
	// Machine is the processor configuration.
	Machine config.Machine
	// Sources supply one instruction stream per thread.
	Sources []trace.Reader
	// WarmupInsts is the number of graduated instructions to run before
	// statistics are reset (cache warm-up / benchmark start-up skip).
	WarmupInsts int64
	// MeasureInsts is the number of graduated instructions in the
	// measurement window. Zero measures until the sources drain (exact
	// and adaptive modes only; sampled mode needs a finite budget). In
	// sampled mode it is the *total* instruction budget the sampling
	// schedule covers — measured, re-warmed and warped together.
	MeasureInsts int64
	// MaxCycles caps the total simulation length as a safety net;
	// zero applies DefaultMaxCycles.
	MaxCycles int64
	// Mode selects the execution mode; the zero value is exact detailed
	// simulation ("exact" is accepted as a spelled-out synonym).
	Mode Mode
	// Sampling parameterizes ModeSampled (ignored otherwise; zero fields
	// take the documented defaults).
	Sampling Sampling
	// DisjointAddressSpaces declares that the sources give every context
	// a private address space (true for every built-in generator
	// workload; false for imported traces, whose addresses are whatever
	// was captured). On CMP machines the functional warm path then skips
	// its write-invalidate broadcast — a pure optimization, never part
	// of a request hash, with results equivalent by construction.
	DisjointAddressSpaces bool
	// Parallel, when > 1, advances the cores of a CMP run concurrently
	// on up to Parallel worker goroutines in deterministic epochs
	// (DESIGN.md §12). Results are bit-identical to serial execution —
	// the epoch barrier replays every shared-level event in the serial
	// lockstep order — so, like DisjointAddressSpaces, the knob is an
	// execution hint and never part of a request hash. It requires the
	// disjoint-address-space promise and a multi-core machine; runs
	// that do not qualify (single core, trace workloads, Stepped, or a
	// run-to-drain budget) silently take the serial path.
	Parallel int
	// Stepped forces cycle-by-cycle simulation, disabling the core's
	// event-calendar fast-forward over idle stretches. Results are
	// bit-identical either way (enforced by the equivalence tests);
	// stepping exists as the golden reference and for debugging. It
	// overrides ModeAdaptive, and in ModeSampled it steps the detailed
	// phases.
	Stepped bool
	// OnProgress, when set, receives a Snapshot roughly every
	// ProgressEvery graduated instructions (and once at each window
	// boundary). The callback observes simulation state but never
	// mutates it, so enabling progress cannot change results; keep it
	// fast — it runs on the simulation goroutine.
	OnProgress func(Snapshot)
	// ProgressEvery is the snapshot cadence in graduated instructions
	// (<= 0 applies DefaultProgressEvery when OnProgress is set).
	ProgressEvery int64
}

// DefaultMaxCycles bounds runaway simulations (deadlock guard).
const DefaultMaxCycles = 2_000_000_000

// DefaultProgressEvery is the default snapshot cadence.
const DefaultProgressEvery = 100_000

// cancelPollMask amortizes context-cancellation polling: the run loop
// checks ctx once every (mask+1) scheduler steps. At a few microseconds
// per step, cancellation latency stays far under a millisecond of wall
// time while the check costs nothing measurable.
const cancelPollMask = 1<<10 - 1

// Phase names a run window in progress snapshots.
const (
	PhaseWarmup  = "warmup"
	PhaseMeasure = "measure"
)

// Snapshot is a point-in-time progress report of a running simulation.
type Snapshot struct {
	// Phase is the current window (PhaseWarmup or PhaseMeasure).
	Phase string
	// Graduated counts instructions retired in the current window.
	Graduated int64
	// TargetInsts is the window's instruction budget (0 = run to drain).
	TargetInsts int64
	// Cycles counts cycles in the current window.
	Cycles int64
	// TotalCycles is the absolute simulated time including warm-up.
	TotalCycles int64
}

// Result is a finished run.
type Result struct {
	// Report is the measurement-window statistics snapshot.
	Report stats.Report
	// Completed is true when the run reached its measurement target (or
	// drained its sources); false when it hit the cycle cap.
	Completed bool
	// TotalCycles counts all simulated cycles including warm-up.
	TotalCycles int64
}

// Run executes one simulation. Cancelling ctx aborts the run promptly
// (the loop polls the context every few hundred scheduler steps) and
// returns ctx's error; cancellation never produces a partial Result.
func Run(ctx context.Context, opts Options) (Result, error) {
	mode := opts.Mode
	if mode == "exact" {
		mode = ModeExact
	}
	switch mode {
	case ModeExact, ModeAdaptive, ModeSampled:
	default:
		return Result{}, fmt.Errorf("sim: unknown execution mode %q", opts.Mode)
	}
	if mode == ModeSampled {
		if err := opts.Sampling.Validate(); err != nil {
			return Result{}, err
		}
		if opts.MeasureInsts <= 0 {
			return Result{}, fmt.Errorf("sim: sampled mode needs a positive instruction budget")
		}
	}
	m, err := build(opts.Machine, opts.Sources)
	if err != nil {
		return Result{}, err
	}
	if cm, ok := m.(cmpMachine); ok && opts.DisjointAddressSpaces {
		cm.p.Interconnect().SetDisjointAddressSpaces(true)
	}
	r := newRunner(ctx, opts, mode, m)
	if opts.Parallel > 1 && !opts.Stepped && opts.DisjointAddressSpaces {
		if cm, ok := m.(cmpMachine); ok && cm.p.Cores() > 1 {
			// Epoch-parallel CMP execution: bit-identical to the serial
			// drivers (including the adaptive controller it displaces —
			// adaptive is itself bit-identical to exact). Sampled runs
			// parallelize their detailed phases; drains and warps stay
			// serial.
			er := core.NewEpochRunner(cm.p, opts.Parallel)
			defer er.Close()
			r.epoch = er
			r.epochDenom = epochDenom(cm.p.Config())
			r.step = r.epochStep
		}
	}
	if mode == ModeSampled {
		return r.runSampled()
	}
	return r.runDetailed()
}

// RunOrDie is a convenience for examples and tools: it runs and panics on
// configuration errors (which are programming errors there).
func RunOrDie(opts Options) Result {
	r, err := Run(context.Background(), opts)
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	return r
}
