// Package sim is the simulation front-end: it builds a machine from a
// configuration and per-thread instruction sources, runs a warm-up window
// (the paper skips each benchmark's start-up phase), resets the statistics,
// runs the measurement window, and produces the final report.
package sim

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	// Machine is the processor configuration.
	Machine config.Machine
	// Sources supply one instruction stream per thread.
	Sources []trace.Reader
	// WarmupInsts is the number of graduated instructions to run before
	// statistics are reset (cache warm-up / benchmark start-up skip).
	WarmupInsts int64
	// MeasureInsts is the number of graduated instructions in the
	// measurement window. Zero measures until the sources drain.
	MeasureInsts int64
	// MaxCycles caps the total simulation length as a safety net;
	// zero applies DefaultMaxCycles.
	MaxCycles int64
	// Stepped forces cycle-by-cycle simulation, disabling the core's
	// event-calendar fast-forward over idle stretches. Results are
	// bit-identical either way (enforced by the equivalence tests);
	// stepping exists as the golden reference and for debugging.
	Stepped bool
	// OnProgress, when set, receives a Snapshot roughly every
	// ProgressEvery graduated instructions (and once at each window
	// boundary). The callback observes simulation state but never
	// mutates it, so enabling progress cannot change results; keep it
	// fast — it runs on the simulation goroutine.
	OnProgress func(Snapshot)
	// ProgressEvery is the snapshot cadence in graduated instructions
	// (<= 0 applies DefaultProgressEvery when OnProgress is set).
	ProgressEvery int64
}

// DefaultMaxCycles bounds runaway simulations (deadlock guard).
const DefaultMaxCycles = 2_000_000_000

// DefaultProgressEvery is the default snapshot cadence.
const DefaultProgressEvery = 100_000

// cancelPollMask amortizes context-cancellation polling: the run loop
// checks ctx once every (mask+1) scheduler steps. At a few microseconds
// per step, cancellation latency stays far under a millisecond of wall
// time while the check costs nothing measurable.
const cancelPollMask = 1<<10 - 1

// Phase names a run window in progress snapshots.
const (
	PhaseWarmup  = "warmup"
	PhaseMeasure = "measure"
)

// Snapshot is a point-in-time progress report of a running simulation.
type Snapshot struct {
	// Phase is the current window (PhaseWarmup or PhaseMeasure).
	Phase string
	// Graduated counts instructions retired in the current window.
	Graduated int64
	// TargetInsts is the window's instruction budget (0 = run to drain).
	TargetInsts int64
	// Cycles counts cycles in the current window.
	Cycles int64
	// TotalCycles is the absolute simulated time including warm-up.
	TotalCycles int64
}

// Result is a finished run.
type Result struct {
	// Report is the measurement-window statistics snapshot.
	Report stats.Report
	// Completed is true when the run reached its measurement target (or
	// drained its sources); false when it hit the cycle cap.
	Completed bool
	// TotalCycles counts all simulated cycles including warm-up.
	TotalCycles int64
}

// Run executes one simulation. Cancelling ctx aborts the run promptly
// (the loop polls the context every few hundred scheduler steps) and
// returns ctx's error; cancellation never produces a partial Result.
func Run(ctx context.Context, opts Options) (Result, error) {
	if opts.Machine.Effective().CoreCount() > 1 {
		return runCMP(ctx, opts)
	}
	c, err := core.New(opts.Machine, opts.Sources)
	if err != nil {
		return Result{}, err
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = DefaultProgressEvery
	}
	var polls int64
	snapshot := func(phase string, target int64) Snapshot {
		return Snapshot{
			Phase:       phase,
			Graduated:   c.Collector().Graduated,
			TargetInsts: target,
			Cycles:      c.Collector().Cycles,
			TotalCycles: c.Now(),
		}
	}
	// step advances the machine, fast-forwarding over idle stretches
	// unless stepping was requested. The loop conditions below only depend
	// on state that is frozen during a skip (graduation counts, Done, the
	// cycle bound the skip is clamped to), so both modes take the same
	// path through every window boundary.
	step := c.Tick
	if !opts.Stepped {
		step = func() { c.Step(maxCycles) }
	}

	// Warm-up window.
	completed := true
	nextSnap := every
	for c.Collector().Graduated < opts.WarmupInsts && !c.Done() {
		if c.Now() >= maxCycles {
			completed = false
			break
		}
		if polls++; polls&cancelPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		if opts.OnProgress != nil && c.Collector().Graduated >= nextSnap {
			opts.OnProgress(snapshot(PhaseWarmup, opts.WarmupInsts))
			nextSnap = c.Collector().Graduated + every
		}
		step()
	}
	// Reset measurement state; machine state (caches, queues, in-flight
	// instructions) carries over, which is the point of warming up.
	c.Collector().Reset()
	c.Mem().ResetStats()

	// Measurement window.
	nextSnap = every
	for (opts.MeasureInsts <= 0 || c.Collector().Graduated < opts.MeasureInsts) && !c.Done() {
		if c.Now() >= maxCycles {
			completed = false
			break
		}
		if polls++; polls&cancelPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		if opts.OnProgress != nil && c.Collector().Graduated >= nextSnap {
			opts.OnProgress(snapshot(PhaseMeasure, opts.MeasureInsts))
			nextSnap = c.Collector().Graduated + every
		}
		step()
	}
	if opts.OnProgress != nil {
		// Window-boundary snapshot: the final measurement counts.
		opts.OnProgress(snapshot(PhaseMeasure, opts.MeasureInsts))
	}

	col := *c.Collector()
	rep := stats.Report{
		Collector:      col,
		Mem:            c.Mem().Stats(),
		BusUtilization: c.Mem().Bus().Utilization(c.Now(), col.Cycles),
		Threads:        c.Config().Threads,
		Decoupled:      c.Config().Decoupled,
		L2Latency:      c.Config().Mem.L2Latency,
		MemLevels:      c.Mem().LevelStats(c.Now(), col.Cycles),
	}
	return Result{Report: rep, Completed: completed, TotalCycles: c.Now()}, nil
}

// RunOrDie is a convenience for examples and tools: it runs and panics on
// configuration errors (which are programming errors there).
func RunOrDie(opts Options) Result {
	r, err := Run(context.Background(), opts)
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	return r
}
