// Package sim is the simulation front-end: it builds a machine from a
// configuration and per-thread instruction sources, runs a warm-up window
// (the paper skips each benchmark's start-up phase), resets the statistics,
// runs the measurement window, and produces the final report.
package sim

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	// Machine is the processor configuration.
	Machine config.Machine
	// Sources supply one instruction stream per thread.
	Sources []trace.Reader
	// WarmupInsts is the number of graduated instructions to run before
	// statistics are reset (cache warm-up / benchmark start-up skip).
	WarmupInsts int64
	// MeasureInsts is the number of graduated instructions in the
	// measurement window. Zero measures until the sources drain.
	MeasureInsts int64
	// MaxCycles caps the total simulation length as a safety net;
	// zero applies DefaultMaxCycles.
	MaxCycles int64
	// Stepped forces cycle-by-cycle simulation, disabling the core's
	// event-calendar fast-forward over idle stretches. Results are
	// bit-identical either way (enforced by the equivalence tests);
	// stepping exists as the golden reference and for debugging.
	Stepped bool
}

// DefaultMaxCycles bounds runaway simulations (deadlock guard).
const DefaultMaxCycles = 2_000_000_000

// Result is a finished run.
type Result struct {
	// Report is the measurement-window statistics snapshot.
	Report stats.Report
	// Completed is true when the run reached its measurement target (or
	// drained its sources); false when it hit the cycle cap.
	Completed bool
	// TotalCycles counts all simulated cycles including warm-up.
	TotalCycles int64
}

// Run executes one simulation.
func Run(opts Options) (Result, error) {
	c, err := core.New(opts.Machine, opts.Sources)
	if err != nil {
		return Result{}, err
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	// step advances the machine, fast-forwarding over idle stretches
	// unless stepping was requested. The loop conditions below only depend
	// on state that is frozen during a skip (graduation counts, Done, the
	// cycle bound the skip is clamped to), so both modes take the same
	// path through every window boundary.
	step := c.Tick
	if !opts.Stepped {
		step = func() { c.Step(maxCycles) }
	}

	// Warm-up window.
	completed := true
	for c.Collector().Graduated < opts.WarmupInsts && !c.Done() {
		if c.Now() >= maxCycles {
			completed = false
			break
		}
		step()
	}
	// Reset measurement state; machine state (caches, queues, in-flight
	// instructions) carries over, which is the point of warming up.
	c.Collector().Reset()
	c.Mem().ResetStats()

	// Measurement window.
	for (opts.MeasureInsts <= 0 || c.Collector().Graduated < opts.MeasureInsts) && !c.Done() {
		if c.Now() >= maxCycles {
			completed = false
			break
		}
		step()
	}

	col := *c.Collector()
	rep := stats.Report{
		Collector:      col,
		Mem:            c.Mem().Stats(),
		BusUtilization: c.Mem().Bus().Utilization(c.Now(), col.Cycles),
		Threads:        c.Config().Threads,
		Decoupled:      c.Config().Decoupled,
		L2Latency:      c.Config().Mem.L2Latency,
	}
	return Result{Report: rep, Completed: completed, TotalCycles: c.Now()}, nil
}

// RunOrDie is a convenience for examples and tools: it runs and panics on
// configuration errors (which are programming errors there).
func RunOrDie(opts Options) Result {
	r, err := Run(opts)
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	return r
}
