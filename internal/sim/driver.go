package sim

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// machine is the driver's view of a simulated processor — a single Core
// or a lockstep CMP behind one interface, so every execution mode runs
// the same loop over either. Window boundaries are in aggregate graduated
// instructions across all cores (the budget is for the machine, not per
// core), matching how runner.Job provisions WarmupPerThread ×
// TotalContexts.
type machine interface {
	// Tick advances one cycle.
	Tick()
	// Step advances one cycle, then fast-forwards over a provably idle
	// stretch (clamped to horizon) when the cycle made no progress.
	Step(horizon int64)
	// Now is absolute simulated time.
	Now() int64
	// Cycles counts cycles in the current statistics window.
	Cycles() int64
	// Graduated counts instructions retired in the current window.
	Graduated() int64
	// SkippedCycles counts cycles fast-forwarded over since construction.
	SkippedCycles() int64
	// Done reports whether all sources drained and pipelines emptied.
	Done() bool
	// ResetStats zeroes the statistics window; machine state (caches,
	// queues, in-flight instructions) carries over.
	ResetStats()
	// Report snapshots the current window's statistics.
	Report() stats.Report
	// DrainPipeline runs the machine to a clean architectural boundary
	// (empty pipelines, quiescent memory) with fetch frozen.
	DrainPipeline() bool
	// Warp advances architectural state by up to n instructions with no
	// timing, returning the count consumed (short only when sources dry).
	Warp(n int64) int64
}

// build constructs the machine for a configuration: a lockstep CMP when
// more than one core is configured, a bare Core otherwise. The
// single-core path is kept distinct so the default machine's results
// stay byte-identical to the pre-CMP tree.
func build(mc config.Machine, sources []trace.Reader) (machine, error) {
	if mc.Effective().CoreCount() > 1 {
		p, err := core.NewCMP(mc, sources)
		if err != nil {
			return nil, err
		}
		return cmpMachine{p}, nil
	}
	c, err := core.New(mc, sources)
	if err != nil {
		return nil, err
	}
	return coreMachine{c}, nil
}

// coreMachine adapts a single core.Core.
type coreMachine struct{ c *core.Core }

func (m coreMachine) Tick()                { m.c.Tick() }
func (m coreMachine) Step(horizon int64)   { m.c.Step(horizon) }
func (m coreMachine) Now() int64           { return m.c.Now() }
func (m coreMachine) Cycles() int64        { return m.c.Collector().Cycles }
func (m coreMachine) Graduated() int64     { return m.c.Collector().Graduated }
func (m coreMachine) SkippedCycles() int64 { return m.c.SkippedCycles() }
func (m coreMachine) Done() bool           { return m.c.Done() }
func (m coreMachine) DrainPipeline() bool  { return m.c.DrainPipeline() }
func (m coreMachine) Warp(n int64) int64   { return m.c.Warp(n) }

func (m coreMachine) ResetStats() {
	m.c.Collector().Reset()
	m.c.Mem().ResetStats()
}

func (m coreMachine) Report() stats.Report {
	c := m.c
	col := *c.Collector()
	return stats.Report{
		Collector:      col,
		Mem:            c.Mem().Stats(),
		BusUtilization: c.Mem().Bus().Utilization(c.Now(), col.Cycles),
		Threads:        c.Config().Threads,
		Decoupled:      c.Config().Decoupled,
		L2Latency:      c.Config().Mem.L2Latency,
		MemLevels:      c.Mem().LevelStats(c.Now(), col.Cycles),
	}
}

// cmpMachine adapts a lockstep core.CMP.
type cmpMachine struct{ p *core.CMP }

func (m cmpMachine) Tick()                { m.p.Tick() }
func (m cmpMachine) Step(horizon int64)   { m.p.Step(horizon) }
func (m cmpMachine) Now() int64           { return m.p.Now() }
func (m cmpMachine) Cycles() int64        { return m.p.Core(0).Collector().Cycles }
func (m cmpMachine) Graduated() int64     { return m.p.Graduated() }
func (m cmpMachine) SkippedCycles() int64 { return m.p.SkippedCycles() }
func (m cmpMachine) Done() bool           { return m.p.Done() }
func (m cmpMachine) ResetStats()          { m.p.ResetStats() }
func (m cmpMachine) Report() stats.Report { return m.p.Report() }
func (m cmpMachine) DrainPipeline() bool  { return m.p.DrainPipeline() }
func (m cmpMachine) Warp(n int64) int64   { return m.p.Warp(n) }

// runner holds the state one Run invocation threads through its windows.
type runner struct {
	ctx       context.Context
	opts      Options
	m         machine
	maxCycles int64
	every     int64
	// step advances the machine one scheduler step: Tick (stepped),
	// Step-to-horizon (exact), or the adaptive controller's choice. The
	// window loops only depend on state that is frozen during a skip
	// (graduation counts, Done, the cycle bound the skip is clamped to),
	// so every driver takes the same path through each window boundary.
	step func()
	// polls counts scheduler steps for amortized cancellation checks.
	polls int64
	// completed clears when the run hits the cycle cap.
	completed bool

	// Epoch-parallel execution (Options.Parallel on an eligible CMP
	// run): epoch drives the cores concurrently, epochDenom is the
	// machine's maximum graduation rate (instructions per cycle, all
	// cores), which bounds each epoch's horizon so no window boundary
	// can fall strictly inside an epoch, and limit is the current
	// window's instruction bound (set by window; <= 0 = run to drain,
	// which stays serial). stepErr carries an epoch abort out of the
	// step callback.
	epoch      *core.EpochRunner
	epochDenom int64
	limit      int64
	stepErr    error
}

// epochDenom returns the machine-wide per-cycle graduation bound.
func epochDenom(mc config.Machine) int64 {
	d := int64(mc.CoreCount()) * int64(mc.Threads) * int64(mc.GraduateWidth)
	if d < 1 {
		d = 1
	}
	return d
}

// Epoch sizing: below minEpochSpan cycles the parallel barrier cannot
// pay for itself, so the step falls back to the (bit-identical) serial
// driver; maxEpochSpan bounds an epoch so cancellation polling and the
// coordinator's event horizon stay responsive.
const (
	minEpochSpan = 64
	maxEpochSpan = 1 << 22
)

// epochStep advances the machine one parallel epoch. The horizon is
// chosen so the serial loop could not have stopped strictly inside the
// epoch: with at most epochDenom instructions graduating per cycle,
// the window's remaining budget cannot be exhausted before the last
// epoch cycle, so serial and parallel runs observe every window
// boundary at the same cycle.
func (r *runner) epochStep() {
	m := r.m
	if r.limit <= 0 {
		// Run-to-drain window: finite sources can stop the serial loop
		// anywhere, which no pre-computed horizon can match. Stay serial.
		m.Step(r.maxCycles)
		return
	}
	span := (r.limit - m.Graduated()) / r.epochDenom
	if span < minEpochSpan {
		m.Step(r.maxCycles)
		return
	}
	if span > maxEpochSpan {
		span = maxEpochSpan
	}
	h := m.Now() + span
	if h > r.maxCycles {
		h = r.maxCycles
	}
	if h <= m.Now() {
		m.Step(r.maxCycles)
		return
	}
	if err := r.epoch.RunEpoch(r.ctx, h); err != nil {
		r.stepErr = err
	}
}

func newRunner(ctx context.Context, opts Options, mode Mode, m machine) *runner {
	r := &runner{ctx: ctx, opts: opts, m: m, completed: true}
	r.maxCycles = opts.MaxCycles
	if r.maxCycles <= 0 {
		r.maxCycles = DefaultMaxCycles
	}
	r.every = opts.ProgressEvery
	if r.every <= 0 {
		r.every = DefaultProgressEvery
	}
	switch {
	case opts.Stepped:
		r.step = m.Tick
	case mode == ModeAdaptive || mode == ModeSampled:
		// Sampled runs use the adaptive driver for their detailed phases:
		// the controller is bit-neutral, and sampling exists for speed.
		r.step = NewAdaptiveStepper(m.Tick, m.Step, m.Now, m.SkippedCycles, r.maxCycles)
	default:
		r.step = func() { m.Step(r.maxCycles) }
	}
	return r
}

func (r *runner) snapshot(phase string, target int64) Snapshot {
	return Snapshot{
		Phase:       phase,
		Graduated:   r.m.Graduated(),
		TargetInsts: target,
		Cycles:      r.m.Cycles(),
		TotalCycles: r.m.Now(),
	}
}

// window advances the machine while more() holds and the sources are
// live, honouring the cycle cap, amortized cancellation and the progress
// cadence. target only labels the snapshots; limit is the window's
// instruction bound (the value more() compares Graduated against, <= 0
// when the window runs to drain), which the epoch-parallel step uses
// to size horizons.
func (r *runner) window(phase string, target, limit int64, more func() bool) error {
	r.limit = limit
	nextSnap := r.every
	for more() && !r.m.Done() {
		if r.m.Now() >= r.maxCycles {
			r.completed = false
			break
		}
		if r.polls++; r.polls&cancelPollMask == 0 {
			if err := r.ctx.Err(); err != nil {
				return err
			}
		}
		if r.opts.OnProgress != nil && r.m.Graduated() >= nextSnap {
			r.opts.OnProgress(r.snapshot(phase, target))
			nextSnap = r.m.Graduated() + r.every
		}
		r.step()
		if r.stepErr != nil {
			return r.stepErr
		}
	}
	return nil
}

// runDetailed is the exact/adaptive run: warm-up window, stats reset,
// measurement window, report.
func (r *runner) runDetailed() (Result, error) {
	m, opts := r.m, r.opts

	// Warm-up window.
	err := r.window(PhaseWarmup, opts.WarmupInsts, opts.WarmupInsts, func() bool {
		return m.Graduated() < opts.WarmupInsts
	})
	if err != nil {
		return Result{}, err
	}
	// Reset measurement state; machine state (caches, queues, in-flight
	// instructions) carries over, which is the point of warming up.
	m.ResetStats()

	// Measurement window.
	err = r.window(PhaseMeasure, opts.MeasureInsts, opts.MeasureInsts, func() bool {
		return opts.MeasureInsts <= 0 || m.Graduated() < opts.MeasureInsts
	})
	if err != nil {
		return Result{}, err
	}
	if opts.OnProgress != nil {
		// Window-boundary snapshot: the final measurement counts.
		opts.OnProgress(r.snapshot(PhaseMeasure, opts.MeasureInsts))
	}

	return Result{Report: m.Report(), Completed: r.completed, TotalCycles: m.Now()}, nil
}
