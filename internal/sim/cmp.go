package sim

import (
	"context"

	"repro/internal/core"
)

// runCMP is Run for multi-core machines. It mirrors the single-core
// loop — warm-up window, stats reset, measurement window, report — over
// a core.CMP; the single-core path in Run is kept verbatim so the
// default machine's results stay byte-identical to the pre-CMP tree.
// Window boundaries are in aggregate graduated instructions across all
// cores (the budget is for the machine, not per core), matching how
// runner.Job provisions WarmupPerThread × TotalContexts.
func runCMP(ctx context.Context, opts Options) (Result, error) {
	p, err := core.NewCMP(opts.Machine, opts.Sources)
	if err != nil {
		return Result{}, err
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = DefaultProgressEvery
	}
	var polls int64
	snapshot := func(phase string, target int64) Snapshot {
		return Snapshot{
			Phase:       phase,
			Graduated:   p.Graduated(),
			TargetInsts: target,
			Cycles:      p.Core(0).Collector().Cycles,
			TotalCycles: p.Now(),
		}
	}
	step := p.Tick
	if !opts.Stepped {
		step = func() { p.Step(maxCycles) }
	}

	// Warm-up window.
	completed := true
	nextSnap := every
	for p.Graduated() < opts.WarmupInsts && !p.Done() {
		if p.Now() >= maxCycles {
			completed = false
			break
		}
		if polls++; polls&cancelPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		if opts.OnProgress != nil && p.Graduated() >= nextSnap {
			opts.OnProgress(snapshot(PhaseWarmup, opts.WarmupInsts))
			nextSnap = p.Graduated() + every
		}
		step()
	}
	p.ResetStats()

	// Measurement window.
	nextSnap = every
	for (opts.MeasureInsts <= 0 || p.Graduated() < opts.MeasureInsts) && !p.Done() {
		if p.Now() >= maxCycles {
			completed = false
			break
		}
		if polls++; polls&cancelPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		if opts.OnProgress != nil && p.Graduated() >= nextSnap {
			opts.OnProgress(snapshot(PhaseMeasure, opts.MeasureInsts))
			nextSnap = p.Graduated() + every
		}
		step()
	}
	if opts.OnProgress != nil {
		opts.OnProgress(snapshot(PhaseMeasure, opts.MeasureInsts))
	}

	return Result{Report: p.Report(), Completed: completed, TotalCycles: p.Now()}, nil
}
