package sim

import (
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// Execution-mode tests: the adaptive controller must be bit-identical to
// exact execution on every configuration (it only chooses which driver
// advances the clock), and sampled mode must be a deterministic,
// well-formed estimator.

// runAdaptiveExact runs the same configuration in exact and adaptive mode
// and fails the test on any difference between the two results.
func runAdaptiveExact(t *testing.T, name string, opts Options, sources func() []trace.Reader) Result {
	t.Helper()
	opts.Sources = sources()
	opts.Mode = ModeExact
	exact, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("%s: exact run: %v", name, err)
	}
	opts.Sources = sources()
	opts.Mode = ModeAdaptive
	adaptive, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("%s: adaptive run: %v", name, err)
	}
	if !reflect.DeepEqual(adaptive, exact) {
		t.Errorf("%s: adaptive diverged from exact\nexact:    %+v\nadaptive: %+v", name, exact, adaptive)
	}
	return adaptive
}

// TestAdaptiveEquivalence pins adaptive == exact bit-identically on the
// four figure configurations plus the i1 (finite shared L2 + DRAM) and c1
// (CMP) machines, and on controller switch-boundary machines: a window
// straddling calendar far-overflow drains (L2 latency beyond the wheel
// window), tiny MSHR pools so mode switches land mid-fill, and a CMP
// whose cores would disagree on the preferred mode (one stalling, one
// busy) — the controller is per-run, so lockstep stays deterministic.
func TestAdaptiveEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		machine config.Machine
		threads int
	}{
		// The four figure configs.
		{"fig/1T-L2_16", config.Figure2(1), 1},
		{"fig/1T-L2_256", config.Figure2(1).WithL2Latency(256), 1},
		{"fig/4T-L2_16", config.Figure2(4), 4},
		{"fig/4T-L2_256", config.Figure2(4).WithL2Latency(256), 4},
		// i1-style machine: finite shared L2 over DRAM.
		{"i1", config.Figure2(4).WithHierarchy(64, config.SharedL2(64<<10, 8)), 4},
		// c1-style machine: 2 cores × 2 contexts over a shared L2.
		{"c1", config.Figure2(2).WithCores(2).WithHierarchy(64, config.SharedL2(256<<10, 8)), 4},
		// Far-overflow straddle: every refill is scheduled beyond the
		// calendar wheel, so controller windows end inside far-overflow
		// drains.
		{"far-window", config.Figure2(2).WithL2Latency(6000), 2},
		// Mid-MSHR-fill switches: a 2-entry L2 MSHR pool keeps fills
		// in flight almost continuously, so mode switches land mid-fill.
		{"mshr-fill", func() config.Machine {
			l2 := config.SharedL2(128<<10, 2)
			l2.MSHRs = 2
			return config.Figure2(4).WithHierarchy(100, l2)
		}(), 4},
		// Disagreeing CMP cores: core 0 runs a long-latency-bound thread
		// mix while core 1 runs the same — but private-state divergence
		// makes their instantaneous skip rates differ; the per-run
		// controller must still keep the lockstep fabric deterministic.
		{"cmp-disagree", config.Figure2(1).WithCores(2).WithHierarchy(200, config.SharedL2(64<<10, 1)), 2},
	}
	for _, c := range cases {
		opts := Options{
			Machine:      c.machine,
			WarmupInsts:  shortWarmup * int64(c.threads),
			MeasureInsts: shortMeasure * int64(c.threads),
		}
		threads := c.threads
		runAdaptiveExact(t, c.name, opts, func() []trace.Reader {
			return mixSources(t, threads, 0)
		})
	}
}

// TestAdaptiveEquivalenceAcrossWindowScales shrinks the measurement so the
// run ends inside the very first probe window, straddles exactly one
// boundary, and spans many boundaries — the controller's decision points
// must never perturb results.
func TestAdaptiveEquivalenceAcrossWindowScales(t *testing.T) {
	for _, measure := range []int64{500, 3_000, 70_000, 300_000} {
		opts := Options{
			Machine:      config.Figure2(2).WithL2Latency(256),
			WarmupInsts:  1_000,
			MeasureInsts: measure,
		}
		runAdaptiveExact(t, "window-scale", opts, func() []trace.Reader {
			return mixSources(t, 2, 0)
		})
	}
}

// TestSampledReportWellFormed checks the sampled-mode contract: the
// report carries a Sampled summary with measured units, a positive IPC
// estimate, and a graduated count bounded by the detailed duty cycle.
func TestSampledReportWellFormed(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Machine:      config.Figure2(1),
		Sources:      mixSources(t, 1, 0),
		WarmupInsts:  2_000,
		MeasureInsts: 400_000,
		Mode:         ModeSampled,
		Sampling:     Sampling{PeriodInsts: 20_000, UnitInsts: 1_000, WarmupInsts: 2_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Report.Sampled
	if s == nil {
		t.Fatal("sampled run carried no Sampled summary")
	}
	if s.Units < 2 {
		t.Fatalf("expected several measured units, got %d", s.Units)
	}
	if s.Mean <= 0 || s.CI < 0 {
		t.Fatalf("degenerate estimate: mean=%v ci=%v", s.Mean, s.CI)
	}
	if s.WarpedInsts <= 0 {
		t.Fatalf("expected warped instructions between units, got %d", s.WarpedInsts)
	}
	// The aggregated collector must hold only the measured units' cycles —
	// far fewer instructions than the budget the schedule covered.
	if res.Report.Graduated <= 0 || res.Report.Graduated >= 400_000/2 {
		t.Fatalf("measured-unit graduated count out of range: %d", res.Report.Graduated)
	}
}

// TestSampledByteStableAcrossGOMAXPROCS runs the same sampled simulation
// under GOMAXPROCS=1 and 4 and requires byte-identical JSON reports: the
// estimator must not depend on scheduler parallelism in any way.
func TestSampledByteStableAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := Run(context.Background(), Options{
			Machine:      config.Figure2(4),
			Sources:      mixSources(t, 4, 7),
			WarmupInsts:  2_000,
			MeasureInsts: 300_000,
			Mode:         ModeSampled,
			Sampling:     Sampling{PeriodInsts: 29_000, UnitInsts: 1_000, WarmupInsts: 2_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(1)
	four := run(4)
	if string(one) != string(four) {
		t.Errorf("sampled report differs across GOMAXPROCS:\n1: %s\n4: %s", one, four)
	}
}

// TestSampledDeterministicAcrossRuns runs the same sampled simulation
// twice and requires identical results.
func TestSampledDeterministicAcrossRuns(t *testing.T) {
	run := func() Result {
		res, err := Run(context.Background(), Options{
			Machine:      config.Figure2(2).WithL2Latency(256),
			Sources:      mixSources(t, 2, 3),
			WarmupInsts:  2_000,
			MeasureInsts: 250_000,
			Mode:         ModeSampled,
			Sampling:     Sampling{PeriodInsts: 23_000, UnitInsts: 1_000, WarmupInsts: 2_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sampled runs diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestModeValidation covers the mode/sampling front-door errors.
func TestModeValidation(t *testing.T) {
	base := func() Options {
		return Options{
			Machine:      config.Figure2(1),
			Sources:      mixSources(t, 1, 0),
			MeasureInsts: 10_000,
		}
	}

	bad := base()
	bad.Mode = "turbo"
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("unknown mode accepted")
	}

	noBudget := base()
	noBudget.Mode = ModeSampled
	noBudget.MeasureInsts = 0
	if _, err := Run(context.Background(), noBudget); err == nil {
		t.Error("sampled mode without an instruction budget accepted")
	}

	overlong := base()
	overlong.Mode = ModeSampled
	overlong.Sampling = Sampling{PeriodInsts: 1_000, UnitInsts: 900, WarmupInsts: 200}
	if _, err := Run(context.Background(), overlong); err == nil {
		t.Error("unit+warmup exceeding the period accepted")
	}

	negative := base()
	negative.Mode = ModeSampled
	negative.Sampling = Sampling{PeriodInsts: -5}
	if _, err := Run(context.Background(), negative); err == nil {
		t.Error("negative sampling period accepted")
	}

	// "exact" must behave as the zero mode, not an unknown one.
	spelled := base()
	spelled.Mode = "exact"
	if _, err := Run(context.Background(), spelled); err != nil {
		t.Errorf("spelled-out exact mode rejected: %v", err)
	}
}
