package sim

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func finiteTrace(n int) trace.Reader {
	insts := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		insts = append(insts, isa.Inst{
			PC: uint64(i % 16 * 4), Op: isa.OpIntALU,
			Dest: isa.IntReg(1 + i%8), Src1: isa.IntReg(9), Src2: isa.IntReg(10),
		})
	}
	return trace.Slice(insts)
}

func TestRunDrainsFiniteTrace(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Machine: config.Figure2(1),
		Sources: []trace.Reader{finiteTrace(5000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("finite trace did not complete")
	}
	if res.Report.Graduated != 5000 {
		t.Fatalf("graduated %d, want 5000", res.Report.Graduated)
	}
	if res.Report.IPC() <= 0 {
		t.Fatal("IPC not positive")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Machine:     config.Figure2(1),
		Sources:     []trace.Reader{finiteTrace(5000)},
		WarmupInsts: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Graduated != 3000 {
		t.Fatalf("measured %d instructions, want 3000 after warmup", res.Report.Graduated)
	}
	// Total simulated cycles include the warm-up.
	if res.TotalCycles <= res.Report.Cycles {
		t.Fatal("total cycles do not include warm-up")
	}
}

func TestMeasureWindowStopsEarly(t *testing.T) {
	b, err := workload.ByName("tomcatv")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Options{
		Machine:      config.Figure2(1),
		Sources:      []trace.Reader{b.NewReader(workload.ReaderOpts{})},
		WarmupInsts:  5_000,
		MeasureInsts: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("bounded run on an infinite source did not complete")
	}
	// The measurement window stops within a cycle's graduation bandwidth
	// of the target.
	if res.Report.Graduated < 20_000 || res.Report.Graduated > 20_000+64 {
		t.Fatalf("measured %d instructions", res.Report.Graduated)
	}
}

func TestCycleCapReported(t *testing.T) {
	b, _ := workload.ByName("swim")
	res, err := Run(context.Background(), Options{
		Machine:      config.Figure2(1),
		Sources:      []trace.Reader{b.NewReader(workload.ReaderOpts{})},
		MeasureInsts: 1 << 40, // unreachable
		MaxCycles:    2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("cycle-capped run claimed completion")
	}
	if res.TotalCycles > 2_001 {
		t.Fatalf("ran %d cycles past the cap", res.TotalCycles)
	}
}

func TestInvalidMachineRejected(t *testing.T) {
	m := config.Figure2(1)
	m.ROBSize = 0
	if _, err := Run(context.Background(), Options{Machine: m, Sources: []trace.Reader{finiteTrace(1)}}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestSourceCountMismatchRejected(t *testing.T) {
	if _, err := Run(context.Background(), Options{
		Machine: config.Figure2(2),
		Sources: []trace.Reader{finiteTrace(1)},
	}); err == nil {
		t.Fatal("source/thread mismatch accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Result {
		b, _ := workload.ByName("su2cor")
		res, err := Run(context.Background(), Options{
			Machine:      config.Figure2(2).WithL2Latency(64),
			Sources:      []trace.Reader{b.NewReader(workload.ReaderOpts{}), b.NewReader(workload.ReaderOpts{AddrOffset: 1 << 36})},
			WarmupInsts:  5_000,
			MeasureInsts: 30_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Report.Cycles != b.Report.Cycles ||
		a.Report.Graduated != b.Report.Graduated ||
		a.Report.PerceivedFP != b.Report.PerceivedFP ||
		a.Report.Mem != b.Report.Mem {
		t.Fatal("identical runs produced different reports")
	}
}

func TestReportIdentifiesConfiguration(t *testing.T) {
	m := config.Figure2(2).WithL2Latency(128).NonDecoupled()
	b, _ := workload.ByName("mgrid")
	res, err := Run(context.Background(), Options{
		Machine: m,
		Sources: []trace.Reader{
			b.NewReader(workload.ReaderOpts{}),
			b.NewReader(workload.ReaderOpts{AddrOffset: 1 << 36}),
		},
		WarmupInsts:  2_000,
		MeasureInsts: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Threads != 2 || r.Decoupled || r.L2Latency != 128 {
		t.Fatalf("report identity wrong: %+v", r)
	}
	if r.BusUtilization < 0 || r.BusUtilization > 1 {
		t.Fatalf("bus utilization %v out of range", r.BusUtilization)
	}
}

func TestRunOrDiePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunOrDie did not panic")
		}
	}()
	m := config.Figure2(1)
	m.IQSize = 0
	RunOrDie(Options{Machine: m, Sources: []trace.Reader{finiteTrace(1)}})
}

func TestTraceFileRoundTripThroughSimulator(t *testing.T) {
	// Generate a trace, encode it to the binary file format, decode it,
	// and verify the simulator produces *identical* results from the
	// generator and from the file — the cmd/dae-trace → cmd/dae-sim
	// pipeline at library level.
	b, err := workload.ByName("applu")
	if err != nil {
		t.Fatal(err)
	}
	const n = 40_000

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAll(trace.Limit(b.NewReader(workload.ReaderOpts{}), n)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, err := trace.NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}

	run := func(src trace.Reader) Result {
		res, err := Run(context.Background(), Options{
			Machine:     config.Figure2(1),
			Sources:     []trace.Reader{src},
			WarmupInsts: 5_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fromFile := run(fr)
	fromGen := run(trace.Limit(b.NewReader(workload.ReaderOpts{}), n))
	if fromFile.Report.Cycles != fromGen.Report.Cycles ||
		fromFile.Report.Graduated != fromGen.Report.Graduated ||
		fromFile.Report.Mem != fromGen.Report.Mem {
		t.Fatalf("file-driven run differs from generator-driven run:\n%v\nvs\n%v",
			fromFile.Report, fromGen.Report)
	}
	// The warm-up window can overshoot by up to one cycle's graduation
	// bandwidth before the reset, so allow a small shortfall.
	if g := fromFile.Report.Graduated; g < n-5_000-64 || g > n-5_000 {
		t.Fatalf("graduated %d", g)
	}
}

func TestRunObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, Options{
		Machine:      config.Figure2(1),
		Sources:      workload.MixSources(1, workload.MixOpts{}),
		WarmupInsts:  1_000,
		MeasureInsts: 500_000_000, // only cancellation ends this quickly
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestRunStreamsProgressSnapshots(t *testing.T) {
	var snaps []Snapshot
	res, err := Run(context.Background(), Options{
		Machine:       config.Figure2(1),
		Sources:       workload.MixSources(1, workload.MixOpts{}),
		WarmupInsts:   3_000,
		MeasureInsts:  9_000,
		OnProgress:    func(s Snapshot) { snaps = append(snaps, s) },
		ProgressEvery: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 5 {
		t.Fatalf("%d snapshots for a 12k-inst run at 1k cadence", len(snaps))
	}
	var warm, meas int
	lastPhase := ""
	var lastGrad int64
	for _, s := range snaps {
		switch s.Phase {
		case PhaseWarmup:
			warm++
			if lastPhase == PhaseMeasure {
				t.Fatal("warm-up snapshot after measurement began")
			}
			if s.TargetInsts != 3_000 {
				t.Fatalf("warm-up target %d", s.TargetInsts)
			}
		case PhaseMeasure:
			meas++
			if s.TargetInsts != 9_000 {
				t.Fatalf("measure target %d", s.TargetInsts)
			}
		default:
			t.Fatalf("unknown phase %q", s.Phase)
		}
		if s.Phase == lastPhase && s.Graduated < lastGrad {
			t.Fatal("graduated count not monotonic within a phase")
		}
		lastPhase, lastGrad = s.Phase, s.Graduated
	}
	if warm == 0 || meas == 0 {
		t.Fatalf("phases not both sampled: %d warm-up, %d measure snapshots", warm, meas)
	}
	final := snaps[len(snaps)-1]
	if final.Graduated != res.Report.Graduated {
		t.Fatalf("final snapshot graduated %d, report says %d", final.Graduated, res.Report.Graduated)
	}
	// The hook observes but never mutates: results with and without
	// progress enabled are identical.
	plain, err := Run(context.Background(), Options{
		Machine:      config.Figure2(1),
		Sources:      workload.MixSources(1, workload.MixOpts{}),
		WarmupInsts:  3_000,
		MeasureInsts: 9_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, res) {
		t.Fatal("enabling progress snapshots changed the result")
	}
}
