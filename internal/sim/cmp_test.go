package sim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// The CMP arm of the golden equivalence suite: multi-core runs must be
// bit-identical between cycle stepping and fast-forwarding, for the
// shared and the private hierarchy, and Run must dispatch to the CMP
// driver purely on the machine's core count.

func TestEquivalenceCMPConfigs(t *testing.T) {
	sharedL2 := func(m config.Machine) config.Machine {
		return m.WithHierarchy(64, config.SharedL2(256<<10, 8))
	}
	cases := []struct {
		name    string
		machine config.Machine
	}{
		// 2 cores × 1 context, shared L2: the minimal CMP.
		{"cmp2x1/shared", sharedL2(config.Figure2(1).WithCores(2))},
		// 2 cores × 2 contexts: SMT inside each core plus sharing below.
		{"cmp2x2/shared", sharedL2(config.Figure2(2).WithCores(2))},
		// 4 cores × 1 context over a small shared L2: heavy interference,
		// shared-MSHR contention, cross-core fill broadcasts.
		{"cmp4x1/contended", config.Figure2(1).WithCores(4).
			WithHierarchy(64, config.SharedL2(64<<10, 8))},
		// Private per-core L2s over shared DRAM.
		{"cmp2x1/private", config.Figure2(1).WithCores(2).
			WithHierarchy(64, config.SharedL2(64<<10, 8)).WithPrivateHierarchy()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n := tc.machine.TotalContexts()
			opts := Options{
				Machine:      tc.machine,
				WarmupInsts:  shortWarmup * int64(n),
				MeasureInsts: shortMeasure * int64(n),
			}
			res := runBoth(t, tc.name, opts, func() []trace.Reader {
				return mixSources(t, n, 7)
			})
			if res.Report.Cores != tc.machine.CoreCount() {
				t.Errorf("Report.Cores = %d, want %d", res.Report.Cores, tc.machine.CoreCount())
			}
			if len(res.Report.PerCoreGraduated) != tc.machine.CoreCount() {
				t.Errorf("PerCoreGraduated = %v", res.Report.PerCoreGraduated)
			}
		})
	}
}

// TestCMPRunDeterministic: the full sim.Run path (warmup, stat reset,
// measure) gives byte-identical results across repeated CMP runs.
func TestCMPRunDeterministic(t *testing.T) {
	m := config.Figure2(2).WithCores(2).
		WithHierarchy(64, config.SharedL2(256<<10, 8))
	n := m.TotalContexts()
	run := func() Result {
		res, err := Run(context.Background(), Options{
			Machine:      m,
			Sources:      mixSources(t, n, 3),
			WarmupInsts:  shortWarmup * int64(n),
			MeasureInsts: shortMeasure * int64(n),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("CMP Run not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestCMPDisjointWarmEquivalence: declaring disjoint address spaces only
// skips the functional warm path's write-invalidate broadcast, so with
// genuinely disjoint sources (every generator workload) the results must
// be byte-identical with the optimization on and off. Sampled mode is the
// interesting arm — its warp gaps drive Warm for every instruction — but
// the exact path is pinned too.
func TestCMPDisjointWarmEquivalence(t *testing.T) {
	m := config.Figure2(2).WithCores(2).
		WithHierarchy(64, config.SharedL2(64<<10, 8))
	n := m.TotalContexts()
	for _, mode := range []Mode{ModeExact, ModeSampled} {
		name := "exact"
		if mode != ModeExact {
			name = string(mode)
		}
		t.Run(name, func(t *testing.T) {
			run := func(disjoint bool) Result {
				opts := Options{
					Machine:               m,
					Sources:               mixSources(t, n, 11),
					WarmupInsts:           shortWarmup * int64(n),
					MeasureInsts:          shortMeasure * int64(n) * 4,
					Mode:                  mode,
					DisjointAddressSpaces: disjoint,
				}
				if mode == ModeSampled {
					opts.Sampling = Sampling{PeriodInsts: 5_000, UnitInsts: 500, WarmupInsts: 1_000}
				}
				res, err := Run(context.Background(), opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			on, off := run(true), run(false)
			if !reflect.DeepEqual(on, off) {
				t.Fatalf("disjoint-warm skip changed the result:\non:  %+v\noff: %+v", on, off)
			}
		})
	}
}

// TestCMPRespectsMaxCycles: the cycle cap applies to the lockstep chip
// clock.
func TestCMPRespectsMaxCycles(t *testing.T) {
	m := config.Figure2(1).WithCores(2).
		WithHierarchy(64, config.SharedL2(256<<10, 8))
	res, err := Run(context.Background(), Options{
		Machine:      m,
		Sources:      mixSources(t, m.TotalContexts(), 3),
		WarmupInsts:  0,
		MeasureInsts: 1 << 50,
		MaxCycles:    500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("run reported completion under a tiny cycle cap")
	}
	if res.TotalCycles > 500 {
		t.Errorf("TotalCycles = %d, cap 500", res.TotalCycles)
	}
}
