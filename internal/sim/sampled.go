package sim

import "repro/internal/stats"

// The sampled execution mode, after SMARTS (Wunderlich et al., ISCA'03):
// systematic sampling measures short detailed units at a fixed
// instruction period and functionally warps the gaps, so a run covering
// N instructions simulates only a few percent of them in detail. Each
// period is a triplet —
//
//	functional warp (gap) → detailed warm-up → measured unit
//
// — where the warp advances trace cursors, branch predictors and the
// cache footprint with no timing (core.Warp after core.DrainPipeline),
// the detailed warm-up re-fills the pipeline and MSHRs so the unit does
// not measure a cold restart, and the unit's statistics become one IPC
// sample. The report aggregates all measured units' counters and carries
// the sample mean and 95% confidence interval in Report.Sampled.

// sampledAgg accumulates measured-unit reports into one aggregate.
// Counters sum; the derived bus utilizations are cycle-weighted means,
// accumulated as busy-cycle totals and divided out at the end.
type sampledAgg struct {
	rep     stats.Report
	busW    float64   // Σ BusUtilization × window cycles
	levelsW []float64 // per MemLevels entry
	have    bool
}

func (a *sampledAgg) add(rep stats.Report) {
	w := float64(rep.Cycles)
	if !a.have {
		a.have = true
		a.rep = rep
		a.levelsW = make([]float64, len(rep.MemLevels))
	} else {
		a.rep.Collector.Merge(&rep.Collector)
		a.rep.Mem.Merge(rep.Mem)
		for i := range a.rep.MemLevels {
			a.rep.MemLevels[i].MergeCounters(rep.MemLevels[i])
		}
		for i, g := range rep.PerCoreGraduated {
			a.rep.PerCoreGraduated[i] += g
		}
	}
	a.busW += rep.BusUtilization * w
	for i, l := range rep.MemLevels {
		a.levelsW[i] += l.BusUtilization * w
	}
}

// finish resolves the weighted utilizations and returns the aggregate.
// fallback supplies the machine-identity fields when no unit completed.
func (a *sampledAgg) finish(fallback func() stats.Report) stats.Report {
	if !a.have {
		rep := fallback()
		rep.Collector.Reset()
		return rep
	}
	if c := float64(a.rep.Cycles); c > 0 {
		a.rep.BusUtilization = a.busW / c
		for i := range a.rep.MemLevels {
			a.rep.MemLevels[i].BusUtilization = a.levelsW[i] / c
		}
	}
	return a.rep
}

// runSampled executes the sampling schedule over opts.MeasureInsts total
// instructions: an initial detailed warm-up (opts.WarmupInsts, like every
// other mode), then repeating measure → drain → warp → re-warm periods
// until the budget is spent or the sources drain.
func (r *runner) runSampled() (Result, error) {
	m, opts := r.m, r.opts
	sp := opts.Sampling.WithDefaults()
	gap := sp.PeriodInsts - sp.UnitInsts - sp.WarmupInsts

	// Initial detailed warm-up, identical to the other modes.
	err := r.window(PhaseWarmup, opts.WarmupInsts, opts.WarmupInsts, func() bool {
		return m.Graduated() < opts.WarmupInsts
	})
	if err != nil {
		return Result{}, err
	}

	var (
		agg      sampledAgg
		samples  []float64
		warped   int64
		advanced int64 // instructions covered by the schedule so far
	)
	clamp := func(n int64) int64 {
		if left := opts.MeasureInsts - advanced; n > left {
			return left
		}
		return n
	}
	for r.completed && advanced < opts.MeasureInsts && !m.Done() {
		// Measured unit.
		m.ResetStats()
		unit := clamp(sp.UnitInsts)
		err := r.window(PhaseMeasure, opts.MeasureInsts, unit, func() bool {
			return m.Graduated() < unit
		})
		if err != nil {
			return Result{}, err
		}
		rep := m.Report()
		if rep.Cycles > 0 && rep.Graduated > 0 {
			// Sample CPI, not IPC: units are (near-)equal instruction
			// counts, so the mean of per-unit CPIs is the unbiased
			// cycles-per-instruction estimate, where a mean of per-unit
			// IPCs would be Jensen-biased high whenever unit latencies
			// vary. Summarize inverts back to IPC at the end.
			samples = append(samples, float64(rep.Cycles)/float64(rep.Graduated))
			agg.add(rep)
		}
		advanced += rep.Graduated
		if advanced >= opts.MeasureInsts || m.Done() || !r.completed {
			break
		}

		// Gap: drain to a clean boundary, warp the remainder functionally.
		// Instructions graduated by the drain still advance the schedule.
		m.DrainPipeline()
		advanced += m.Graduated() - rep.Graduated
		if g := clamp(gap); g > 0 {
			w := m.Warp(g)
			warped += w
			advanced += w
		}

		// Detailed re-warm so the next unit doesn't measure the restart.
		m.ResetStats()
		warm := clamp(sp.WarmupInsts)
		err = r.window(PhaseWarmup, opts.MeasureInsts, warm, func() bool {
			return m.Graduated() < warm
		})
		if err != nil {
			return Result{}, err
		}
		advanced += m.Graduated()
	}

	rep := agg.finish(m.Report)
	s := stats.SummarizeCPI(samples)
	s.WarpedInsts = warped
	rep.Sampled = &s
	if opts.OnProgress != nil {
		opts.OnProgress(Snapshot{
			Phase:       PhaseMeasure,
			Graduated:   rep.Graduated,
			TargetInsts: opts.MeasureInsts,
			Cycles:      rep.Cycles,
			TotalCycles: m.Now(),
		})
	}
	return Result{Report: rep, Completed: r.completed, TotalCycles: m.Now()}, nil
}
