// Package cache models the tag/state array of the on-chip L1 data cache.
//
// The paper's L1 D-cache (Figure 2) is 64 KB, direct-mapped, 32-byte lines,
// write-back, lockup-free. This package implements the storage-state part
// of that design — lookup, fill, replacement, dirty tracking — with an
// associativity parameter (direct-mapped is associativity 1; higher ways
// with true-LRU replacement support the associativity ablation). All
// timing, port arbitration and miss handling live in package mem.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity, e.g. 64*1024.
	SizeBytes int
	// LineBytes is the line (block) size, e.g. 32.
	LineBytes int
	// Assoc is the set associativity; 1 means direct-mapped.
	Assoc int
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache: size %d must be positive", c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: associativity %d must be positive", c.Assoc)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*assoc %d", c.SizeBytes, c.LineBytes*c.Assoc)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

type way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is the tag/state array. It is not safe for concurrent use; the
// simulator is single-goroutine by design (cycle-stepped determinism).
type Cache struct {
	cfg      Config
	sets     [][]way
	lruClock uint64

	lineShift uint
	setMask   uint64
}

// New builds a cache from the geometry. It panics on an invalid Config
// (configuration is validated up front by package config; reaching here
// with a bad geometry is a programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.Sets()
	sets := make([][]way, nSets)
	backing := make([]way, nSets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		setMask:   uint64(nSets - 1),
	}
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

func (c *Cache) setIndex(addr uint64) uint64 { return (addr >> c.lineShift) & c.setMask }

func (c *Cache) tag(addr uint64) uint64 { return addr >> c.lineShift }

// Lookup probes the cache for addr. On a hit it refreshes the line's LRU
// state and reports true. Direct-mapped caches — the paper's L1 and the
// simulator's hottest configuration — take an inlinable fast path with
// no LRU bookkeeping: with one way per set there is nothing to rank.
func (c *Cache) Lookup(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	t := c.tag(addr)
	if len(set) == 1 {
		return set[0].valid && set[0].tag == t
	}
	return c.lookupAssoc(set, t)
}

// lookupAssoc is the associative probe with LRU refresh (kept out of
// Lookup so the direct-mapped path stays within the inlining budget).
func (c *Cache) lookupAssoc(set []way, t uint64) bool {
	for i := range set {
		if set[i].valid && set[i].tag == t {
			c.lruClock++
			set[i].lru = c.lruClock
			return true
		}
	}
	return false
}

// Probe reports whether addr hits without touching LRU state (used for
// inspection and tests).
func (c *Cache) Probe(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	t := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return true
		}
	}
	return false
}

// Victim describes a line evicted by a Fill.
type Victim struct {
	// Addr is the line address of the evicted line.
	Addr uint64
	// Dirty reports whether the line must be written back.
	Dirty bool
	// Valid reports whether anything was evicted at all.
	Valid bool
}

// Fill installs the line containing addr, evicting the LRU way of its set
// if every way is valid. It returns the victim description. Filling a line
// that is already present refreshes it and returns no victim.
func (c *Cache) Fill(addr uint64) Victim {
	setIdx := c.setIndex(addr)
	set := c.sets[setIdx]
	t := c.tag(addr)
	c.lruClock++
	// Already present (e.g. racing fills merged upstream): refresh.
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i].lru = c.lruClock
			return Victim{}
		}
	}
	// Prefer an invalid way.
	victimIdx := -1
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
	}
	var v Victim
	if victimIdx < 0 {
		// Evict true-LRU.
		victimIdx = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victimIdx].lru {
				victimIdx = i
			}
		}
		old := set[victimIdx]
		v = Victim{
			Addr:  old.tag << c.lineShift,
			Dirty: old.dirty,
			Valid: true,
		}
	}
	set[victimIdx] = way{tag: t, valid: true, dirty: false, lru: c.lruClock}
	return v
}

// SetDirty marks the line containing addr dirty. It reports whether the
// line was present.
func (c *Cache) SetDirty(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	t := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// IsDirty reports whether the line containing addr is present and dirty.
func (c *Cache) IsDirty(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	t := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return set[i].dirty
		}
	}
	return false
}

// Invalidate removes the line containing addr if present, returning its
// dirty state (for write-back) and whether it was present.
func (c *Cache) Invalidate(addr uint64) (dirty, present bool) {
	set := c.sets[c.setIndex(addr)]
	t := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			d := set[i].dirty
			set[i] = way{}
			return d, true
		}
	}
	return false, false
}

// Flush invalidates every line, returning the number that were dirty.
func (c *Cache) Flush() int {
	dirty := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				dirty++
			}
			set[i] = way{}
		}
	}
	return dirty
}

// ValidLines returns the number of valid lines (for tests and reports).
func (c *Cache) ValidLines() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
