package cache

import (
	"testing"
	"testing/quick"
)

func dmConfig() Config {
	return Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 1}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		dmConfig(),
		{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 2},
		{SizeBytes: 8 * 1024, LineBytes: 64, Assoc: 4},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 32}, // fully associative
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 1},
		{SizeBytes: 64 * 1024, LineBytes: 0, Assoc: 1},
		{SizeBytes: 64 * 1024, LineBytes: 33, Assoc: 1},
		{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 0},
		{SizeBytes: 100, LineBytes: 32, Assoc: 1},
		{SizeBytes: 96 * 1024, LineBytes: 32, Assoc: 1}, // 3072 sets: not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

func TestSets(t *testing.T) {
	if got := dmConfig().Sets(); got != 2048 {
		t.Fatalf("Sets() = %d, want 2048", got)
	}
	c := Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 4}
	if got := c.Sets(); got != 512 {
		t.Fatalf("Sets() = %d, want 512", got)
	}
}

func TestLineAddr(t *testing.T) {
	c := New(dmConfig())
	if got := c.LineAddr(0x1234); got != 0x1220 {
		t.Fatalf("LineAddr(0x1234) = %#x, want 0x1220", got)
	}
	if got := c.LineAddr(0x1220); got != 0x1220 {
		t.Fatalf("LineAddr already aligned changed: %#x", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(dmConfig())
	addr := uint64(0x4000)
	if c.Lookup(addr) {
		t.Fatal("cold cache hit")
	}
	c.Fill(addr)
	if !c.Lookup(addr) {
		t.Fatal("miss after fill")
	}
	// Same line, different offset: must hit.
	if !c.Lookup(addr + 31) {
		t.Fatal("same-line offset missed")
	}
	// Next line: must miss.
	if c.Lookup(addr + 32) {
		t.Fatal("adjacent line hit without fill")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(dmConfig())
	a := uint64(0x0)
	b := a + 64*1024 // same set, different tag in a 64 KB direct-mapped cache
	c.Fill(a)
	if !c.Probe(a) {
		t.Fatal("fill did not install")
	}
	v := c.Fill(b)
	if !v.Valid || v.Addr != a {
		t.Fatalf("conflict eviction: victim = %+v, want addr %#x", v, a)
	}
	if c.Probe(a) {
		t.Fatal("evicted line still present")
	}
	if !c.Probe(b) {
		t.Fatal("new line absent")
	}
}

func TestSetAssociativeAvoidsConflict(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 2})
	a := uint64(0x0)
	b := a + 32*1024 // same set in a 2-way 64 KB cache
	c.Fill(a)
	if v := c.Fill(b); v.Valid {
		t.Fatalf("2-way cache evicted with a free way: %+v", v)
	}
	if !c.Probe(a) || !c.Probe(b) {
		t.Fatal("both lines should be resident")
	}
	// Third line in the same set evicts the LRU (a, untouched since fill).
	d := a + 2*32*1024
	v := c.Fill(d)
	if !v.Valid || v.Addr != a {
		t.Fatalf("victim = %+v, want %#x", v, a)
	}
}

func TestLRUOrdering(t *testing.T) {
	c := New(Config{SizeBytes: 128, LineBytes: 32, Assoc: 4}) // 1 set, 4 ways
	addrs := []uint64{0, 32, 64, 96}
	for _, a := range addrs {
		c.Fill(a)
	}
	// Touch 0 so 32 becomes LRU.
	c.Lookup(0)
	v := c.Fill(128)
	if !v.Valid || v.Addr != 32 {
		t.Fatalf("victim = %+v, want LRU line 32", v)
	}
}

func TestDirtyWritebackTracking(t *testing.T) {
	c := New(dmConfig())
	a := uint64(0x1000)
	if c.SetDirty(a) {
		t.Fatal("SetDirty on absent line succeeded")
	}
	c.Fill(a)
	if c.IsDirty(a) {
		t.Fatal("fresh fill is dirty")
	}
	if !c.SetDirty(a) {
		t.Fatal("SetDirty on present line failed")
	}
	if !c.IsDirty(a) {
		t.Fatal("dirty bit not set")
	}
	// Conflict eviction must report the dirty victim.
	b := a + 64*1024
	v := c.Fill(b)
	if !v.Valid || !v.Dirty || v.Addr != c.LineAddr(a) {
		t.Fatalf("victim = %+v, want dirty %#x", v, a)
	}
}

func TestFillAlreadyPresent(t *testing.T) {
	c := New(dmConfig())
	a := uint64(0x2000)
	c.Fill(a)
	c.SetDirty(a)
	v := c.Fill(a)
	if v.Valid {
		t.Fatalf("refilling a present line evicted %+v", v)
	}
	if !c.IsDirty(a) {
		t.Fatal("refill cleared the dirty bit")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(dmConfig())
	a := uint64(0x3000)
	if _, present := c.Invalidate(a); present {
		t.Fatal("invalidate of absent line reported present")
	}
	c.Fill(a)
	c.SetDirty(a)
	dirty, present := c.Invalidate(a)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", dirty, present)
	}
	if c.Probe(a) {
		t.Fatal("line survived invalidation")
	}
}

func TestFlush(t *testing.T) {
	c := New(dmConfig())
	c.Fill(0x100)
	c.Fill(0x200)
	c.SetDirty(0x100)
	if n := c.Flush(); n != 1 {
		t.Fatalf("Flush returned %d dirty lines, want 1", n)
	}
	if c.ValidLines() != 0 {
		t.Fatal("lines survived flush")
	}
}

func TestValidLines(t *testing.T) {
	c := New(dmConfig())
	for i := 0; i < 10; i++ {
		c.Fill(uint64(i * 32))
	}
	if got := c.ValidLines(); got != 10 {
		t.Fatalf("ValidLines = %d, want 10", got)
	}
	// Refill of present lines must not double count.
	c.Fill(0)
	if got := c.ValidLines(); got != 10 {
		t.Fatalf("ValidLines after refill = %d, want 10", got)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 32, Assoc: 1})
}

// Property: the number of valid lines never exceeds capacity, and a fill
// always makes its own line resident.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(addrsRaw []uint32, assocRaw uint8) bool {
		assoc := 1 << (assocRaw % 3) // 1, 2, 4
		cfg := Config{SizeBytes: 4 * 1024, LineBytes: 32, Assoc: assoc}
		c := New(cfg)
		capacity := cfg.SizeBytes / cfg.LineBytes
		for _, a := range addrsRaw {
			addr := uint64(a)
			c.Fill(addr)
			if !c.Probe(addr) {
				return false
			}
			if c.ValidLines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: lookup-after-fill of the same line always hits until an
// eviction of that set occurs; filling lines of distinct sets never
// interferes.
func TestQuickSetIsolation(t *testing.T) {
	f := func(setsRaw []uint16) bool {
		cfg := Config{SizeBytes: 4 * 1024, LineBytes: 32, Assoc: 1}
		c := New(cfg)
		seen := map[uint64]bool{}
		for _, s := range setsRaw {
			set := uint64(s) % uint64(cfg.Sets())
			addr := set * 32 // tag 0 for each set: no conflicts ever
			c.Fill(addr)
			seen[addr] = true
			for a := range seen {
				if !c.Probe(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(dmConfig())
	c.Fill(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(0x1000)
	}
}

func BenchmarkFillConflict(b *testing.B) {
	c := New(dmConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i) * 64 * 1024)
	}
}
