package rename

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/regfile"
)

func TestNewTableUnmapped(t *testing.T) {
	tb := NewTable()
	if tb.Mapped() != 0 {
		t.Fatalf("fresh table has %d mappings", tb.Mapped())
	}
	if tb.Get(isa.IntReg(0)) != regfile.None {
		t.Fatal("unmapped register returned a mapping")
	}
}

func TestInitMapsEverything(t *testing.T) {
	ap := regfile.New(64)
	ep := regfile.New(96)
	tb := NewTable()
	if err := tb.Init(ap, ep); err != nil {
		t.Fatal(err)
	}
	if tb.Mapped() != isa.NumRegs {
		t.Fatalf("Mapped = %d, want %d", tb.Mapped(), isa.NumRegs)
	}
	// 32 integer mappings from AP, 32 FP mappings from EP.
	if ap.InUse() != isa.NumIntRegs {
		t.Fatalf("AP in use = %d", ap.InUse())
	}
	if ep.InUse() != isa.NumFPRegs {
		t.Fatalf("EP in use = %d", ep.InUse())
	}
	// All initial mappings are ready at cycle 0.
	for r := 0; r < isa.NumRegs; r++ {
		reg := isa.Reg(r)
		file := ap
		if reg.IsFP() {
			file = ep
		}
		if !file.Ready(tb.Get(reg), 0) {
			t.Fatalf("initial mapping of %v not ready", reg)
		}
	}
}

func TestInitFailsOnSmallFile(t *testing.T) {
	ap := regfile.New(16) // < 32 integer registers
	ep := regfile.New(96)
	tb := NewTable()
	if err := tb.Init(ap, ep); err == nil {
		t.Fatal("Init accepted an undersized AP file")
	}
	ap = regfile.New(64)
	ep = regfile.New(8)
	tb = NewTable()
	if err := tb.Init(ap, ep); err == nil {
		t.Fatal("Init accepted an undersized EP file")
	}
}

func TestSetReturnsPrevious(t *testing.T) {
	ap := regfile.New(64)
	ep := regfile.New(96)
	tb := NewTable()
	if err := tb.Init(ap, ep); err != nil {
		t.Fatal(err)
	}
	r := isa.FPReg(3)
	old := tb.Get(r)
	p, _ := ep.Alloc()
	prev := tb.Set(r, p)
	if prev != old {
		t.Fatalf("Set returned %d, want previous %d", prev, old)
	}
	if tb.Get(r) != p {
		t.Fatal("new mapping not installed")
	}
	// Other registers untouched.
	if tb.Get(isa.FPReg(4)) == p {
		t.Fatal("Set leaked into another register")
	}
}

func TestGetNoReg(t *testing.T) {
	tb := NewTable()
	if tb.Get(isa.NoReg) != regfile.None {
		t.Fatal("Get(NoReg) != None")
	}
}

func TestSetInvalidPanics(t *testing.T) {
	tb := NewTable()
	defer func() {
		if recover() == nil {
			t.Fatal("Set(NoReg) did not panic")
		}
	}()
	tb.Set(isa.NoReg, 0)
}

func TestRenameChainModelsWAW(t *testing.T) {
	// Two writes to the same architectural register must allocate distinct
	// physical registers, and freeing the first (as its overwriter
	// graduates) must make it reusable.
	ap := regfile.New(64)
	ep := regfile.New(96)
	tb := NewTable()
	if err := tb.Init(ap, ep); err != nil {
		t.Fatal(err)
	}
	r := isa.IntReg(5)
	p1, _ := ap.Alloc()
	old1 := tb.Set(r, p1)
	p2, _ := ap.Alloc()
	old2 := tb.Set(r, p2)
	if old2 != p1 {
		t.Fatalf("second Set returned %d, want %d", old2, p1)
	}
	if p1 == p2 {
		t.Fatal("WAW writes shared a physical register")
	}
	ap.Free(old1) // first writer graduates, freeing the initial mapping
	ap.Free(old2) // second writer graduates, freeing p1
	// Live: 31 untouched initial mappings + p2.
	if ap.InUse() != isa.NumIntRegs {
		t.Fatalf("AP in use = %d, want %d", ap.InUse(), isa.NumIntRegs)
	}
}
