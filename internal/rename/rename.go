// Package rename implements the per-thread register map table that
// translates architectural registers to physical registers at dispatch.
//
// The paper's machine renames into two separate physical files — integer
// registers into the AP file, floating-point registers into the EP file
// (Figure 2: 64 + 96 physical registers per thread). The map table itself
// is a flat array over the 64 architectural registers; which file a
// mapping points into is implied by the architectural register's class
// (isa.RegUnit).
//
// Because the simulator is trace driven and stalls fetch on mispredicted
// branches (no wrong-path dispatch ever happens), the table needs no
// checkpoint/rollback machinery; mappings only advance in program order.
package rename

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/regfile"
)

// Table maps architectural registers to physical registers for one
// hardware context.
type Table struct {
	mapping [isa.NumRegs]regfile.PhysReg
}

// NewTable returns a table with every architectural register unmapped.
// Callers establish the initial mappings with Init.
func NewTable() *Table {
	t := &Table{}
	for i := range t.mapping {
		t.mapping[i] = regfile.None
	}
	return t
}

// Init allocates an initial, value-ready physical register for every
// architectural register: integer registers from ap, floating-point
// registers from ep. It returns an error if either file is too small to
// host the architectural state.
func (t *Table) Init(ap, ep *regfile.File) error {
	for r := 0; r < isa.NumRegs; r++ {
		file := ap
		if isa.Reg(r).IsFP() {
			file = ep
		}
		p, ok := file.AllocReady(0)
		if !ok {
			return fmt.Errorf("rename: %s file too small for architectural state", isa.RegUnit(isa.Reg(r)))
		}
		t.mapping[r] = p
	}
	return nil
}

// Get returns the current physical mapping of r, or regfile.None when r is
// isa.NoReg (absent operand).
func (t *Table) Get(r isa.Reg) regfile.PhysReg {
	if !r.Valid() {
		return regfile.None
	}
	return t.mapping[r]
}

// Set installs a new mapping for r and returns the previous one (which the
// instruction's graduation will free). r must be a valid register.
func (t *Table) Set(r isa.Reg, p regfile.PhysReg) (prev regfile.PhysReg) {
	if !r.Valid() {
		panic(fmt.Sprintf("rename: Set of invalid register %v", r))
	}
	prev = t.mapping[r]
	t.mapping[r] = p
	return prev
}

// Mapped returns the number of architectural registers with a valid
// mapping (used by tests).
func (t *Table) Mapped() int {
	n := 0
	for _, p := range t.mapping {
		if p.Valid() {
			n++
		}
	}
	return n
}
