package traceio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/isa"
)

// testStream builds a deterministic varied instruction sequence.
func testStream(seed uint64, n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		x := seed + uint64(i)*0x9e3779b97f4a7c15
		in := isa.Inst{PC: 0x1000 + (x%64)*4}
		switch x % 5 {
		case 0:
			in.Op = isa.OpIntALU
			in.Dest, in.Src1, in.Src2 = isa.IntReg(int(x%32)), isa.IntReg(int(x/7%32)), isa.NoReg
		case 1:
			in.Op = isa.OpFPALU
			in.Dest, in.Src1, in.Src2 = isa.FPReg(int(x%32)), isa.FPReg(int(x/3%32)), isa.FPReg(int(x/5%32))
		case 2:
			in.Op = isa.OpLoad
			in.Dest, in.Src1 = isa.FPReg(int(x%32)), isa.IntReg(1)
			in.Src2 = isa.NoReg
			in.Addr, in.Size = 0x40000+(x%4096)*8, 8
		case 3:
			in.Op = isa.OpStore
			in.Src1, in.Src2 = isa.FPReg(int(x%32)), isa.IntReg(2)
			in.Dest = isa.NoReg
			in.Addr, in.Size = 0x80000+(x%4096)*8, 8
		case 4:
			in.Op = isa.OpBranch
			in.Dest, in.Src1, in.Src2 = isa.NoReg, isa.IntReg(int(x%32)), isa.NoReg
			in.Taken = x%3 == 0
		}
		out[i] = in
	}
	return out
}

// encodeContainer writes the given streams interleaved per record, so
// chunks from different streams alternate in the file.
func encodeContainer(t *testing.T, h Header, streams [][]isa.Inst) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		wrote := false
		for s := range streams {
			if i < len(streams[s]) {
				if err := w.Append(s, &streams[s][i]); err != nil {
					t.Fatal(err)
				}
				wrote = true
			}
		}
		if !wrote {
			break
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestContainerRoundTrip: a multi-stream container decodes back to the
// exact record sequences, header included, across chunk boundaries.
func TestContainerRoundTrip(t *testing.T) {
	streams := [][]isa.Inst{
		testStream(1, 5000), // spans several 32KB chunks
		testStream(2, 1),
		testStream(3, 1700),
	}
	h := Header{Streams: 3, Name: "round-trip", Note: "unit test"}
	data := encodeContainer(t, h, streams)

	gotH, got, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("header mismatch: got %+v want %+v", gotH, h)
	}
	for s := range streams {
		if len(got[s]) != len(streams[s]) {
			t.Fatalf("stream %d: got %d records, want %d", s, len(got[s]), len(streams[s]))
		}
		for i := range streams[s] {
			if got[s][i] != streams[s][i] {
				t.Fatalf("stream %d record %d: got %+v want %+v", s, i, got[s][i], streams[s][i])
			}
		}
	}
}

// TestContainerEmpty: a container with zero records is valid and decodes
// to empty streams.
func TestContainerEmpty(t *testing.T) {
	data := encodeContainer(t, Header{Streams: 2}, [][]isa.Inst{nil, nil})
	h, streams, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if h.Streams != 2 || len(streams[0])+len(streams[1]) != 0 {
		t.Fatalf("empty container decoded to %+v, %d/%d records", h, len(streams[0]), len(streams[1]))
	}
}

// TestContainerTruncated: cutting the file anywhere after the header
// must surface ErrTruncated, not a silent short stream.
func TestContainerTruncated(t *testing.T) {
	data := encodeContainer(t, Header{Streams: 1}, [][]isa.Inst{testStream(7, 300)})
	for _, cut := range []int{len(data) - 1, len(data) - 5, len(data) / 2, 20} {
		_, _, err := ReadAll(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d/%d: got %v, want ErrTruncated", cut, len(data), err)
		}
	}
}

// TestContainerCRCMismatch: flipping a payload byte must fail the
// chunk's checksum.
func TestContainerCRCMismatch(t *testing.T) {
	data := encodeContainer(t, Header{Streams: 1}, [][]isa.Inst{testStream(9, 300)})
	corrupted := append([]byte(nil), data...)
	corrupted[len(data)/2] ^= 0x40 // mid-file: inside the first chunk's payload
	_, _, err := ReadAll(bytes.NewReader(corrupted))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

// TestContainerUnknownVersion: a future version must be rejected with
// the sentinel, not misparsed.
func TestContainerUnknownVersion(t *testing.T) {
	data := encodeContainer(t, Header{Streams: 1}, [][]isa.Inst{testStream(11, 4)})
	// The version uvarint is the byte right after the 8-byte magic.
	if data[8] != ContainerVersion {
		t.Fatalf("test assumes single-byte version varint, got %#x", data[8])
	}
	data[8] = ContainerVersion + 1
	if _, err := NewDecoder(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("got %v, want ErrBadVersion", err)
	}
}

// TestContainerBadMagic: foreign files are rejected up front.
func TestContainerBadMagic(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("NOTATRCE-rest"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

// TestContainerTerminatorTotal: a terminator disagreeing with the
// decoded record count is corruption (e.g. spliced files).
func TestContainerTerminatorTotal(t *testing.T) {
	data := encodeContainer(t, Header{Streams: 1}, [][]isa.Inst{testStream(13, 3)})
	// The terminator is the trailing "0 total" uvarint pair; patch total.
	total := data[len(data)-1]
	if total != 3 {
		t.Fatalf("test assumes single-byte total varint, got %#x", total)
	}
	data[len(data)-1] = 5
	_, _, err := ReadAll(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestWriterValidation: stream bounds and op validity are enforced at
// append time, before bytes hit the file.
func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Streams: 0}); err == nil {
		t.Fatal("zero-stream header accepted")
	}
	w, err := NewWriter(&buf, Header{Streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := testStream(1, 1)[0]
	if err := w.Append(1, &in); err == nil {
		t.Fatal("out-of-range stream accepted")
	}
	bad := isa.Inst{Op: isa.Op(7)}
	if err := w.Append(0, &bad); err == nil {
		t.Fatal("invalid op accepted")
	}
}

// TestDecoderStreamCounts: Next reports the originating stream of every
// record and Counts tracks the per-stream totals.
func TestDecoderStreamCounts(t *testing.T) {
	streams := [][]isa.Inst{testStream(20, 40), testStream(21, 25)}
	data := encodeContainer(t, Header{Streams: 2}, streams)
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	got := make([]int64, 2)
	for {
		s, ok := d.Next(&in)
		if !ok {
			break
		}
		got[s]++
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 40 || got[1] != 25 {
		t.Fatalf("per-stream counts %v, want [40 25]", got)
	}
	if c := d.Counts(); c[0] != 40 || c[1] != 25 {
		t.Fatalf("Counts() = %v", c)
	}
}

// TestUvarintAssumption pins the encoding detail the corruption tests
// rely on (single-byte varints for small values).
func TestUvarintAssumption(t *testing.T) {
	var buf [binary.MaxVarintLen64]byte
	if n := binary.PutUvarint(buf[:], 5); n != 1 {
		t.Fatalf("uvarint(5) = %d bytes", n)
	}
}
