package traceio

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// TestTextRoundTrip: write → parse reproduces the exact records.
func TestTextRoundTrip(t *testing.T) {
	want := testStream(31, 500)
	var buf bytes.Buffer
	n, err := WriteText(&buf, trace.Slice(want))
	if err != nil || n != int64(len(want)) {
		t.Fatalf("WriteText: n=%d err=%v", n, err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestTextComments: comments and blank lines are skipped; errors carry
// line numbers.
func TestTextComments(t *testing.T) {
	src := "# header comment\n\nint 0x10 r1 r2 -  # trailing comment\n"
	got, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Op != isa.OpIntALU || got[0].PC != 0x10 {
		t.Fatalf("parsed %+v", got)
	}
}

// TestTextErrors: malformed lines are rejected with the offending line
// number in the message.
func TestTextErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown op", "jump 0x10 r1 r2 -\n"},
		{"bad pc", "int zz r1 r2 -\n"},
		{"bad reg", "int 0x10 r99 r2 -\n"},
		{"load missing addr", "load 0x10 f1 r2 -\n"},
		{"branch missing outcome", "branch 0x10 - r2 -\n"},
		{"bad outcome", "branch 0x10 - r2 - maybe\n"},
		{"taken on non-branch", "int 0x10 r1 r2 - taken\n"},
		{"zero size", "load 0x10 f1 r2 - 0x20 0\n"},
	}
	for _, c := range cases {
		if _, err := ParseText(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.src)
		}
	}
}

// TestBinaryRoundTrip: write → parse reproduces the exact records.
func TestBinaryRoundTrip(t *testing.T) {
	want := testStream(37, 500)
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, trace.Slice(want))
	if err != nil || n != int64(len(want)) {
		t.Fatalf("WriteBinary: n=%d err=%v", n, err)
	}
	got, err := ParseBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestBinaryErrors: bad magic, truncated record, reserved bytes and
// invalid ops are all rejected.
func TestBinaryErrors(t *testing.T) {
	var ok bytes.Buffer
	if _, err := WriteBinary(&ok, trace.Slice(testStream(41, 3))); err != nil {
		t.Fatal(err)
	}
	data := ok.Bytes()

	if _, err := ParseBinary(bytes.NewReader([]byte("XXXXXXXX"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	if _, err := ParseBinary(bytes.NewReader(data[:len(data)-7])); err == nil {
		t.Error("truncated record accepted")
	}
	reserved := append([]byte(nil), data...)
	reserved[8+23] ^= 1 // first record's reserved byte
	if _, err := ParseBinary(bytes.NewReader(reserved)); err == nil {
		t.Error("nonzero reserved byte accepted")
	}
	badOp := append([]byte(nil), data...)
	badOp[8+16] = 9 // first record's op byte
	if _, err := ParseBinary(bytes.NewReader(badOp)); err == nil {
		t.Error("invalid op accepted")
	}
}

// TestDetect: the sniffer classifies all three magics and falls back to
// text, without consuming input.
func TestDetect(t *testing.T) {
	var container bytes.Buffer
	w, err := NewWriter(&container, Header{Streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if _, err := WriteBinary(&bin, trace.Slice(nil)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		data []byte
		want Format
	}{
		{container.Bytes(), FormatContainer},
		{bin.Bytes(), FormatBinary},
		{[]byte("DAETRACE\x01"), FormatLegacy},
		{[]byte("int 0x10 r1 r2 -\n"), FormatText},
		{nil, FormatText},
	}
	for _, c := range cases {
		br := bufio.NewReader(bytes.NewReader(c.data))
		got, err := Detect(br)
		if err != nil || got != c.want {
			t.Errorf("Detect(%q...) = %v, %v; want %v", c.data[:min(8, len(c.data))], got, err, c.want)
		}
		// Detection must not consume: the payload must still parse.
		if c.want == FormatContainer {
			if _, err := NewDecoder(br); err != nil {
				t.Errorf("container unreadable after Detect: %v", err)
			}
		}
	}
}

// TestParseFormat: user-facing names resolve, junk is rejected.
func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"": FormatAuto, "auto": FormatAuto, "container": FormatContainer,
		"legacy": FormatLegacy, "bin": FormatBinary, "TEXT": FormatText,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFormat("elf"); err == nil {
		t.Error("unknown format accepted")
	}
}
