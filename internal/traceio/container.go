// Package traceio is the workload-ingestion subsystem: a versioned,
// self-describing container format for externally supplied instruction
// traces, plus importers for two simple interchange formats (a
// human-readable text format and a fixed-width binary format).
//
// The container holds one instruction stream per hardware context, so a
// multithreaded run captured with `dae-trace export` replays
// bit-identically through `dae-sim -trace`: each context consumes exactly
// the stream the generator would have produced for it. The layout is
//
//	8-byte magic "DAETRCNT"
//	uvarint container format version (currently 1)
//	uvarint stream count
//	uvarint name length, name bytes (display label, may be empty)
//	uvarint note length, note bytes (provenance, may be empty)
//	chunks...
//	terminator
//
// Each chunk carries a run of records from one stream:
//
//	uvarint marker            stream index + 1 (0 marks the terminator)
//	uvarint record count
//	uvarint payload length
//	payload                   records, same varint encoding as the
//	                          legacy single-stream format (package trace)
//	uint32le CRC32 (IEEE)     checksum of the payload bytes
//
// The terminator is marker 0 followed by the uvarint total record count
// across all streams, so readers distinguish a clean end of container
// from a truncated file even on unseekable inputs (pipes, stdin).
package traceio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/isa"
)

// Magic identifies a container file.
var Magic = [8]byte{'D', 'A', 'E', 'T', 'R', 'C', 'N', 'T'}

// ContainerVersion is the current container format version.
const ContainerVersion = 1

// Limits that keep a corrupted header from driving huge allocations.
const (
	// MaxStreams bounds the per-context stream count.
	MaxStreams = 1 << 16
	// MaxChunkPayload bounds one chunk's payload length.
	MaxChunkPayload = 1 << 26
	// maxMetaLen bounds the header's name/note strings.
	maxMetaLen = 1 << 16
	// chunkTargetBytes is the writer's per-stream flush threshold.
	chunkTargetBytes = 32 << 10
)

// Error sentinels, classifiable with errors.Is anywhere up the stack.
var (
	// ErrBadMagic marks a file that is not a trace container.
	ErrBadMagic = errors.New("traceio: bad magic (not a DAE trace container)")
	// ErrBadVersion marks an unsupported container version.
	ErrBadVersion = errors.New("traceio: unsupported container version")
	// ErrTruncated marks a container that ends before its terminator (or
	// mid-chunk): the producer crashed or the copy was cut short.
	ErrTruncated = errors.New("traceio: truncated container")
	// ErrChecksum marks a chunk whose payload fails its CRC.
	ErrChecksum = errors.New("traceio: chunk checksum mismatch")
	// ErrCorrupt marks structurally invalid contents (bad stream index,
	// record count/payload disagreement, invalid record encoding).
	ErrCorrupt = errors.New("traceio: corrupt container")
)

// Header is the container's self-description.
type Header struct {
	// Streams is the number of instruction streams (one per hardware
	// context of the capturing run).
	Streams int
	// Name is a display label (typically the workload, e.g. "swim t=4").
	Name string
	// Note records provenance: who produced the trace, from what.
	Note string
}

// ----------------------------------------------------------------------------
// Record encoding (shared with the legacy single-stream format).

// appendRecord encodes one instruction record onto buf.
func appendRecord(buf []byte, in *isa.Inst) []byte {
	flags := byte(in.Op) & 0x7
	if in.Taken {
		flags |= 1 << 3
	}
	hasAddr := in.IsMem()
	if hasAddr {
		flags |= 1 << 4
	}
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, flags)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], in.PC)]...)
	buf = append(buf, byte(in.Dest), byte(in.Src1), byte(in.Src2))
	if hasAddr {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], in.Addr)]...)
		buf = append(buf, in.Size)
	}
	return buf
}

// decodeRecord decodes one record from p into in, returning the bytes
// consumed. Errors are ErrCorrupt-wrapped: the payload passed its CRC,
// so a malformed record means a producer bug, not line noise.
func decodeRecord(p []byte, in *isa.Inst) (int, error) {
	if len(p) < 1 {
		return 0, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	flags := p[0]
	op := isa.Op(flags & 0x7)
	if !op.Valid() {
		return 0, fmt.Errorf("%w: invalid op %d", ErrCorrupt, op)
	}
	i := 1
	pc, n := binary.Uvarint(p[i:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad pc varint", ErrCorrupt)
	}
	i += n
	if len(p) < i+3 {
		return 0, fmt.Errorf("%w: short register bytes", ErrCorrupt)
	}
	*in = isa.Inst{
		PC:    pc,
		Op:    op,
		Dest:  isa.Reg(p[i]),
		Src1:  isa.Reg(p[i+1]),
		Src2:  isa.Reg(p[i+2]),
		Taken: flags&(1<<3) != 0,
	}
	i += 3
	if flags&(1<<4) != 0 {
		addr, n := binary.Uvarint(p[i:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad addr varint", ErrCorrupt)
		}
		i += n
		if len(p) < i+1 {
			return 0, fmt.Errorf("%w: short size byte", ErrCorrupt)
		}
		in.Addr = addr
		in.Size = p[i]
		i++
	}
	return i, nil
}

// ----------------------------------------------------------------------------
// Writer.

// Writer encodes a multi-stream container. Records append to per-stream
// buffers and flush as CRC-checked chunks; Close writes the remaining
// chunks and the terminator (it does not close the underlying writer).
type Writer struct {
	w       *bufio.Writer
	h       Header
	payload [][]byte // pending chunk payload per stream
	pending []int64  // pending record count per stream
	counts  []int64  // total records written per stream
	total   int64
	closed  bool
	err     error
}

// NewWriter writes the container header for h and returns a Writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Streams <= 0 || h.Streams > MaxStreams {
		return nil, fmt.Errorf("traceio: stream count %d out of range [1,%d]", h.Streams, MaxStreams)
	}
	if len(h.Name) > maxMetaLen || len(h.Note) > maxMetaLen {
		return nil, fmt.Errorf("traceio: header name/note exceed %d bytes", maxMetaLen)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, fmt.Errorf("traceio: writing magic: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		_, err := bw.Write(tmp[:binary.PutUvarint(tmp[:], v)])
		return err
	}
	for _, v := range []uint64{ContainerVersion, uint64(h.Streams)} {
		if err := writeUvarint(v); err != nil {
			return nil, fmt.Errorf("traceio: writing header: %w", err)
		}
	}
	for _, s := range []string{h.Name, h.Note} {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return nil, fmt.Errorf("traceio: writing header: %w", err)
		}
		if _, err := bw.WriteString(s); err != nil {
			return nil, fmt.Errorf("traceio: writing header: %w", err)
		}
	}
	return &Writer{
		w:       bw,
		h:       h,
		payload: make([][]byte, h.Streams),
		pending: make([]int64, h.Streams),
		counts:  make([]int64, h.Streams),
	}, nil
}

// Header returns the header the writer was created with.
func (w *Writer) Header() Header { return w.h }

// Counts returns the per-stream record totals written so far.
func (w *Writer) Counts() []int64 { return append([]int64(nil), w.counts...) }

// Append encodes one record onto the given stream.
func (w *Writer) Append(stream int, in *isa.Inst) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("traceio: append after Close")
	}
	if stream < 0 || stream >= w.h.Streams {
		return fmt.Errorf("traceio: stream %d out of range [0,%d)", stream, w.h.Streams)
	}
	if !in.Op.Valid() {
		return fmt.Errorf("traceio: invalid op %d", in.Op)
	}
	w.payload[stream] = appendRecord(w.payload[stream], in)
	w.pending[stream]++
	w.counts[stream]++
	w.total++
	if len(w.payload[stream]) >= chunkTargetBytes {
		return w.flushStream(stream)
	}
	return nil
}

// AppendAll drains r onto the given stream and returns the record count.
func (w *Writer) AppendAll(stream int, r interface{ Next(*isa.Inst) bool }) (int64, error) {
	var in isa.Inst
	var n int64
	for r.Next(&in) {
		if err := w.Append(stream, &in); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// flushStream emits the stream's pending records as one chunk.
func (w *Writer) flushStream(stream int) error {
	p := w.payload[stream]
	if len(p) == 0 {
		return nil
	}
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{uint64(stream) + 1, uint64(w.pending[stream]), uint64(len(p))} {
		if _, err := w.w.Write(tmp[:binary.PutUvarint(tmp[:], v)]); err != nil {
			return w.fail(err)
		}
	}
	if _, err := w.w.Write(p); err != nil {
		return w.fail(err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(p))
	if _, err := w.w.Write(crc[:]); err != nil {
		return w.fail(err)
	}
	w.payload[stream] = p[:0]
	w.pending[stream] = 0
	return nil
}

func (w *Writer) fail(err error) error {
	w.err = fmt.Errorf("traceio: writing chunk: %w", err)
	return w.err
}

// Close flushes every pending chunk and writes the terminator.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	for s := 0; s < w.h.Streams; s++ {
		if err := w.flushStream(s); err != nil {
			return err
		}
	}
	var tmp [1 + binary.MaxVarintLen64]byte
	n := 1 // marker 0
	tmp[0] = 0
	n += binary.PutUvarint(tmp[1:], uint64(w.total))
	if _, err := w.w.Write(tmp[:n]); err != nil {
		return w.fail(err)
	}
	if err := w.w.Flush(); err != nil {
		return w.fail(err)
	}
	return nil
}

// ----------------------------------------------------------------------------
// Decoder.

// Decoder streams a container's records in file order, reporting each
// record's stream index. It never seeks, so it works on pipes and stdin.
type Decoder struct {
	r      *bufio.Reader
	h      Header
	err    error
	done   bool
	counts []int64
	total  int64
	// Current chunk.
	stream    int
	payload   []byte
	off       int
	remaining int64
}

// NewDecoder validates the container header and returns a Decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: short magic", ErrTruncated)
		}
		return nil, fmt.Errorf("traceio: reading magic: %w", err)
	}
	if got != Magic {
		return nil, ErrBadMagic
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: missing version", ErrTruncated)
	}
	if v != ContainerVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	streams, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: missing stream count", ErrTruncated)
	}
	if streams == 0 || streams > MaxStreams {
		return nil, fmt.Errorf("%w: stream count %d out of range [1,%d]", ErrCorrupt, streams, MaxStreams)
	}
	h := Header{Streams: int(streams)}
	for _, dst := range []*string{&h.Name, &h.Note} {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: missing header string", ErrTruncated)
		}
		if n > maxMetaLen {
			return nil, fmt.Errorf("%w: header string of %d bytes", ErrCorrupt, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: short header string", ErrTruncated)
		}
		*dst = string(buf)
	}
	return &Decoder{r: br, h: h, counts: make([]int64, h.Streams)}, nil
}

// Header returns the container's header.
func (d *Decoder) Header() Header { return d.h }

// Counts returns the per-stream record totals decoded so far.
func (d *Decoder) Counts() []int64 { return append([]int64(nil), d.counts...) }

// Err returns the first decoding error, if any. A clean terminator is
// not an error.
func (d *Decoder) Err() error { return d.err }

// Next decodes the next record in file order, returning its stream
// index. It returns ok=false at the terminator or on error (check Err).
func (d *Decoder) Next(in *isa.Inst) (stream int, ok bool) {
	if d.err != nil || d.done {
		return 0, false
	}
	for d.remaining == 0 {
		if !d.nextChunk() {
			return 0, false
		}
	}
	n, err := decodeRecord(d.payload[d.off:], in)
	if err != nil {
		d.err = fmt.Errorf("%v (stream %d record %d)", err, d.stream, d.counts[d.stream])
		return 0, false
	}
	d.off += n
	d.remaining--
	if d.remaining == 0 && d.off != len(d.payload) {
		d.err = fmt.Errorf("%w: chunk of stream %d has %d trailing payload bytes", ErrCorrupt, d.stream, len(d.payload)-d.off)
		return 0, false
	}
	d.counts[d.stream]++
	d.total++
	return d.stream, true
}

// nextChunk loads the next data chunk, or handles the terminator.
func (d *Decoder) nextChunk() bool {
	marker, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("%w: container ends without terminator", ErrTruncated)
		return false
	}
	if marker == 0 {
		total, err := binary.ReadUvarint(d.r)
		if err != nil {
			d.err = fmt.Errorf("%w: terminator missing record total", ErrTruncated)
			return false
		}
		if int64(total) != d.total {
			d.err = fmt.Errorf("%w: terminator declares %d records, decoded %d", ErrCorrupt, total, d.total)
			return false
		}
		d.done = true
		return false
	}
	if marker > uint64(d.h.Streams) {
		d.err = fmt.Errorf("%w: chunk names stream %d of %d", ErrCorrupt, marker-1, d.h.Streams)
		return false
	}
	count, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("%w: chunk missing record count", ErrTruncated)
		return false
	}
	plen, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("%w: chunk missing payload length", ErrTruncated)
		return false
	}
	if count == 0 || plen == 0 || plen > MaxChunkPayload {
		d.err = fmt.Errorf("%w: chunk with %d records, %d payload bytes", ErrCorrupt, count, plen)
		return false
	}
	if cap(d.payload) < int(plen) {
		d.payload = make([]byte, plen)
	}
	d.payload = d.payload[:plen]
	if _, err := io.ReadFull(d.r, d.payload); err != nil {
		d.err = fmt.Errorf("%w: chunk payload cut short", ErrTruncated)
		return false
	}
	var crc [4]byte
	if _, err := io.ReadFull(d.r, crc[:]); err != nil {
		d.err = fmt.Errorf("%w: chunk checksum cut short", ErrTruncated)
		return false
	}
	if got := crc32.ChecksumIEEE(d.payload); got != binary.LittleEndian.Uint32(crc[:]) {
		d.err = fmt.Errorf("%w (stream %d)", ErrChecksum, marker-1)
		return false
	}
	d.stream = int(marker - 1)
	d.off = 0
	d.remaining = int64(count)
	return true
}

// ReadAll decodes a whole container into per-stream instruction slices.
func ReadAll(r io.Reader) (Header, [][]isa.Inst, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return Header{}, nil, err
	}
	streams := make([][]isa.Inst, d.Header().Streams)
	var in isa.Inst
	for {
		s, ok := d.Next(&in)
		if !ok {
			break
		}
		streams[s] = append(streams[s], in)
	}
	if err := d.Err(); err != nil {
		return d.Header(), nil, err
	}
	return d.Header(), streams, nil
}
