package traceio

// Importers for the two external interchange formats, and format
// detection for unseekable inputs.
//
// Text format: one record per line, '#' starts a comment, fields are
// whitespace-separated:
//
//	<op> <pc> <dest> <src1> <src2>            op ∈ int,fp,load,store,branch
//	load/store lines append:  <addr> <size>
//	branch lines append:      taken | not-taken
//
// Registers are r0..r31 (integer), f0..f31 (floating point) or '-'
// (absent); pc/addr accept decimal or 0x-prefixed hex.
//
// Binary format: 8-byte magic "DAEBIN01", then fixed 24-byte
// little-endian records:
//
//	pc u64, addr u64, op u8, dest u8, src1 u8, src2 u8, size u8,
//	flags u8 (bit 0 taken), 2 reserved bytes (zero)
//
// Both formats carry a single instruction stream; `dae-trace import`
// wraps them into a one-stream container. Mapping rule: records land on
// the isa.Inst model verbatim — op class, register split and mem/branch
// payloads are validated, everything else (pipeline behaviour, steering)
// derives from the isa tables exactly as for generated workloads.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// BinaryMagic identifies an external fixed-width binary trace.
var BinaryMagic = [8]byte{'D', 'A', 'E', 'B', 'I', 'N', '0', '1'}

// binaryRecordLen is the fixed record size of the binary format.
const binaryRecordLen = 24

// Format names an on-disk trace encoding.
type Format string

// Trace encodings accepted across the toolchain. FormatAuto sniffs the
// magic bytes (text, the only magic-less format, is the fallback).
const (
	FormatAuto      Format = "auto"
	FormatContainer Format = "container"
	FormatLegacy    Format = "legacy"
	FormatBinary    Format = "bin"
	FormatText      Format = "text"
)

// ParseFormat validates a user-supplied format name ("" means auto).
func ParseFormat(s string) (Format, error) {
	switch f := Format(strings.ToLower(s)); f {
	case "":
		return FormatAuto, nil
	case FormatAuto, FormatContainer, FormatLegacy, FormatBinary, FormatText:
		return f, nil
	default:
		return "", fmt.Errorf("traceio: unknown trace format %q (known: auto, container, legacy, bin, text)", s)
	}
}

// legacyMagic is the single-stream format's magic (package trace owns
// the codec; the bytes are duplicated here only for detection).
var legacyMagic = [8]byte{'D', 'A', 'E', 'T', 'R', 'A', 'C', 'E'}

// Detect sniffs the input's format from its first bytes without
// consuming them, so it works on pipes and stdin. Inputs matching no
// magic are assumed to be text.
func Detect(br *bufio.Reader) (Format, error) {
	head, err := br.Peek(8)
	if err != nil && err != io.EOF {
		return "", fmt.Errorf("traceio: sniffing format: %w", err)
	}
	var h [8]byte
	copy(h[:], head)
	switch {
	case len(head) == 8 && h == Magic:
		return FormatContainer, nil
	case len(head) == 8 && h == legacyMagic:
		return FormatLegacy, nil
	case len(head) == 8 && h == BinaryMagic:
		return FormatBinary, nil
	default:
		return FormatText, nil
	}
}

// validateRecord enforces the isa mapping rules shared by both
// importers. Non-memory records must not carry an address payload and
// only branches may carry an outcome, so a re-export round-trips.
func validateRecord(in *isa.Inst, rec int64) error {
	if !in.Op.Valid() {
		return fmt.Errorf("traceio: record %d: invalid op %d", rec, in.Op)
	}
	for _, r := range []isa.Reg{in.Dest, in.Src1, in.Src2} {
		if r != isa.NoReg && !r.Valid() {
			return fmt.Errorf("traceio: record %d: invalid register %d", rec, r)
		}
	}
	if in.IsMem() {
		if in.Size == 0 {
			return fmt.Errorf("traceio: record %d: memory access with size 0", rec)
		}
	} else if in.Addr != 0 || in.Size != 0 {
		return fmt.Errorf("traceio: record %d: address payload on non-memory op %s", rec, in.Op)
	}
	if in.Taken && !in.IsBranch() {
		return fmt.Errorf("traceio: record %d: taken flag on non-branch op %s", rec, in.Op)
	}
	return nil
}

// ----------------------------------------------------------------------------
// Text format.

// parseReg parses r<N>, f<N> or '-'.
func parseReg(s string) (isa.Reg, error) {
	if s == "-" {
		return isa.NoReg, nil
	}
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'f') {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumIntRegs {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	if s[0] == 'r' {
		return isa.IntReg(n), nil
	}
	return isa.FPReg(n), nil
}

// parseOp maps a text mnemonic onto an op class.
func parseOp(s string) (isa.Op, error) {
	switch s {
	case "int":
		return isa.OpIntALU, nil
	case "fp":
		return isa.OpFPALU, nil
	case "load":
		return isa.OpLoad, nil
	case "store":
		return isa.OpStore, nil
	case "branch":
		return isa.OpBranch, nil
	default:
		return 0, fmt.Errorf("unknown op %q", s)
	}
}

// ParseText decodes the whole text trace. Line numbers appear in every
// error so hand-written traces are debuggable.
func ParseText(r io.Reader) ([]isa.Inst, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var out []isa.Inst
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		in, err := parseTextRecord(fields)
		if err != nil {
			return nil, fmt.Errorf("traceio: text line %d: %w", lineNo, err)
		}
		if err := validateRecord(&in, int64(len(out))); err != nil {
			return nil, fmt.Errorf("%w (text line %d)", err, lineNo)
		}
		out = append(out, in)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: reading text trace: %w", err)
	}
	return out, nil
}

func parseTextRecord(fields []string) (isa.Inst, error) {
	if len(fields) < 5 {
		return isa.Inst{}, fmt.Errorf("want at least 5 fields (op pc dest src1 src2), got %d", len(fields))
	}
	op, err := parseOp(fields[0])
	if err != nil {
		return isa.Inst{}, err
	}
	pc, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return isa.Inst{}, fmt.Errorf("bad pc %q", fields[1])
	}
	in := isa.Inst{PC: pc, Op: op}
	for i, dst := range []*isa.Reg{&in.Dest, &in.Src1, &in.Src2} {
		if *dst, err = parseReg(fields[2+i]); err != nil {
			return isa.Inst{}, err
		}
	}
	rest := fields[5:]
	switch {
	case in.IsMem():
		if len(rest) != 2 {
			return isa.Inst{}, fmt.Errorf("%s wants addr and size fields", op)
		}
		if in.Addr, err = strconv.ParseUint(rest[0], 0, 64); err != nil {
			return isa.Inst{}, fmt.Errorf("bad addr %q", rest[0])
		}
		size, err := strconv.ParseUint(rest[1], 0, 8)
		if err != nil || size == 0 {
			return isa.Inst{}, fmt.Errorf("bad size %q", rest[1])
		}
		in.Size = uint8(size)
	case in.IsBranch():
		if len(rest) != 1 {
			return isa.Inst{}, fmt.Errorf("branch wants a taken|not-taken field")
		}
		switch rest[0] {
		case "taken", "t":
			in.Taken = true
		case "not-taken", "nt":
		default:
			return isa.Inst{}, fmt.Errorf("bad branch outcome %q", rest[0])
		}
	default:
		if len(rest) != 0 {
			return isa.Inst{}, fmt.Errorf("unexpected trailing fields %v", rest)
		}
	}
	return in, nil
}

// WriteText encodes r in the text format and returns the record count.
func WriteText(w io.Writer, r interface{ Next(*isa.Inst) bool }) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var in isa.Inst
	var n int64
	for r.Next(&in) {
		var line string
		switch {
		case in.IsMem():
			line = fmt.Sprintf("%s 0x%x %s %s %s 0x%x %d", in.Op, in.PC, in.Dest, in.Src1, in.Src2, in.Addr, in.Size)
		case in.IsBranch():
			outcome := "not-taken"
			if in.Taken {
				outcome = "taken"
			}
			line = fmt.Sprintf("%s 0x%x %s %s %s %s", in.Op, in.PC, in.Dest, in.Src1, in.Src2, outcome)
		default:
			line = fmt.Sprintf("%s 0x%x %s %s %s", in.Op, in.PC, in.Dest, in.Src1, in.Src2)
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return n, fmt.Errorf("traceio: writing text trace: %w", err)
		}
		n++
	}
	return n, bw.Flush()
}

// ----------------------------------------------------------------------------
// Binary format.

// ParseBinary decodes the whole fixed-width binary trace.
func ParseBinary(r io.Reader) ([]isa.Inst, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("traceio: reading binary magic: %w", err)
	}
	if got != BinaryMagic {
		return nil, fmt.Errorf("%w: not a DAEBIN01 trace", ErrBadMagic)
	}
	var out []isa.Inst
	var rec [binaryRecordLen]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("traceio: binary record %d: truncated: %w", len(out), err)
		}
		if rec[22] != 0 || rec[23] != 0 {
			return nil, fmt.Errorf("traceio: binary record %d: nonzero reserved bytes", len(out))
		}
		in := isa.Inst{
			PC:    binary.LittleEndian.Uint64(rec[0:8]),
			Addr:  binary.LittleEndian.Uint64(rec[8:16]),
			Op:    isa.Op(rec[16]),
			Dest:  isa.Reg(rec[17]),
			Src1:  isa.Reg(rec[18]),
			Src2:  isa.Reg(rec[19]),
			Size:  rec[20],
			Taken: rec[21]&1 != 0,
		}
		if err := validateRecord(&in, int64(len(out))); err != nil {
			return nil, err
		}
		out = append(out, in)
	}
}

// WriteBinary encodes r in the binary format and returns the record
// count.
func WriteBinary(w io.Writer, r interface{ Next(*isa.Inst) bool }) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(BinaryMagic[:]); err != nil {
		return 0, fmt.Errorf("traceio: writing binary magic: %w", err)
	}
	var in isa.Inst
	var rec [binaryRecordLen]byte
	var n int64
	for r.Next(&in) {
		binary.LittleEndian.PutUint64(rec[0:8], in.PC)
		binary.LittleEndian.PutUint64(rec[8:16], in.Addr)
		rec[16] = byte(in.Op)
		rec[17] = byte(in.Dest)
		rec[18] = byte(in.Src1)
		rec[19] = byte(in.Src2)
		rec[20] = in.Size
		rec[21] = 0
		if in.Taken {
			rec[21] = 1
		}
		rec[22], rec[23] = 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return n, fmt.Errorf("traceio: writing binary record: %w", err)
		}
		n++
	}
	return n, bw.Flush()
}
