package serveapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	daesim "repro"
)

// collectSSE reads a complete SSE stream into (event, data) pairs.
func collectSSE(t *testing.T, body *bufio.Scanner) [][2]string {
	t.Helper()
	var events [][2]string
	var ev string
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, [2]string{ev, strings.TrimPrefix(line, "data: ")})
		}
	}
	return events
}

// TestEventsStreamFreshRun: a client watching a fresh run's hash sees
// in-run snapshots followed by exactly one done event, then the stream
// ends. SnapshotEvery is forced small so a tiny-budget run still emits
// snapshots.
func TestEventsStreamFreshRun(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1, SnapshotEvery: 1_000}, 0)
	req := daesim.MixRequest(daesim.Figure2(1), tinyOpts())

	// Open the stream first, then trigger the run: the subscription must
	// observe the whole lifecycle.
	streamDone := make(chan [][2]string, 1)
	streamReady := make(chan struct{})
	go func() {
		hreq, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+req.Hash()+"/events", nil)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Error(err)
			close(streamReady)
			streamDone <- nil
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Errorf("Content-Type %q, want text/event-stream", ct)
		}
		close(streamReady)
		streamDone <- collectSSE(t, bufio.NewScanner(resp.Body))
	}()
	<-streamReady
	var rr RunResponse
	if code := do(t, "POST", ts.URL+"/v1/runs", req, &rr); code != 200 {
		t.Fatalf("POST status %d", code)
	}

	select {
	case events := <-streamDone:
		if len(events) == 0 {
			t.Fatal("empty event stream")
		}
		var snapshots, done int
		for _, e := range events {
			var p daesim.Progress
			if err := json.Unmarshal([]byte(e[1]), &p); err != nil {
				t.Fatalf("bad event data %q: %v", e[1], err)
			}
			if p.Hash != req.Hash() {
				t.Errorf("event for hash %q leaked into the stream", p.Hash)
			}
			switch e[0] {
			case "snapshot":
				snapshots++
			case "done":
				done++
				if p.Error != "" {
					t.Errorf("done event carries error %q", p.Error)
				}
			}
		}
		if snapshots == 0 || done != 1 {
			t.Errorf("stream had %d snapshots and %d done events, want >0 and 1", snapshots, done)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream never ended after the run completed")
	}
}

// TestEventsCachedHashImmediateDone: a hash that is already cached
// yields one immediate done event and the stream closes — this is what
// makes "POST, then GET events" race-free for clients and CI smoke
// scripts.
func TestEventsCachedHashImmediateDone(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	req := daesim.BenchmarkRequest("swim", daesim.Figure2(1), tinyOpts())
	if code := do(t, "POST", ts.URL+"/v1/runs", req, nil); code != 200 {
		t.Fatalf("POST status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + req.Hash() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := collectSSE(t, bufio.NewScanner(resp.Body))
	if len(events) != 1 || events[0][0] != "done" {
		t.Fatalf("events %v, want a single immediate done", events)
	}
	var p daesim.Progress
	if err := json.Unmarshal([]byte(events[0][1]), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Cached || p.Hash != req.Hash() {
		t.Errorf("done event %+v, want cached=true for this hash", p)
	}
}

// TestEventsNDJSONFraming: Accept: application/x-ndjson switches the
// framing to one JSON object per line.
func TestEventsNDJSONFraming(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	req := daesim.MixRequest(daesim.Figure2(1), tinyOpts())
	if code := do(t, "POST", ts.URL+"/v1/runs", req, nil); code != 200 {
		t.Fatalf("POST status %d", code)
	}
	hreq, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+req.Hash()+"/events", nil)
	hreq.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("cached NDJSON stream had %d lines, want 1: %q", len(lines), buf.String())
	}
	var p daesim.Progress
	if err := json.Unmarshal([]byte(lines[0]), &p); err != nil {
		t.Fatalf("line %q: %v", lines[0], err)
	}
	if p.Event != daesim.ProgressDone || !p.Cached {
		t.Errorf("NDJSON event %+v, want cached done", p)
	}
}

// TestEventsClientDisconnect: a stream for a hash nobody runs holds
// open, and a client disconnect tears it down without wedging the
// server.
func TestEventsClientDisconnect(t *testing.T) {
	ts, eng := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	hreq, _ := http.NewRequest("GET", ts.URL+"/v1/runs/deadbeef/events", nil)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	// No events will ever arrive; drop the connection.
	resp.Body.Close()
	// The server keeps serving.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var health HealthResponse
		if code := do(t, "GET", ts.URL+"/healthz", nil, &health); code == 200 && health.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server unhealthy after events-client disconnect")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = eng
}
