package serveapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	daesim "repro"
)

// handleEvents streams one run's progress over HTTP:
// GET /v1/runs/{hash}/events. The stream carries the Engine's Watch
// events for that hash — periodic "snapshot" events while the run
// executes, then exactly one terminal "done" event — and ends after the
// done event. A hash that is already cached yields an immediate done
// event, so clients can always follow a POST with an events GET without
// racing the run's completion.
//
// The wire format is Server-Sent Events by default ("event:" is the
// Progress kind, "data:" its JSON); a client sending
// Accept: application/x-ndjson gets one JSON object per line instead.
// The stream is exempt from the server's per-run timeout — it follows
// the watched run, which is capped by its own executing request.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	flusher, ok := w.(http.Flusher)
	if !ok {
		WriteJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "streaming unsupported by this connection"})
		return
	}
	ndjson := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}

	// Subscribe before the cache check: a run finishing between the two
	// would otherwise slip through both (not yet cached at the lookup,
	// done event published before the subscription).
	events, stop := s.eng.WatchHash(hash, 256)
	defer stop()
	if _, cached := s.eng.Lookup(hash); cached {
		writeEvent(w, ndjson, daesim.Progress{Event: daesim.ProgressDone, Hash: hash, Cached: true})
		flusher.Flush()
		return
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case p, ok := <-events:
			if !ok {
				return
			}
			writeEvent(w, ndjson, p)
			flusher.Flush()
			if p.Event == daesim.ProgressDone {
				return
			}
		}
	}
}

// writeEvent emits one Progress in the negotiated framing.
func writeEvent(w http.ResponseWriter, ndjson bool, p daesim.Progress) {
	raw, err := json.Marshal(p)
	if err != nil {
		return
	}
	if ndjson {
		fmt.Fprintf(w, "%s\n", raw)
	} else {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", p.Event, raw)
	}
}
