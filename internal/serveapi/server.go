// Package serveapi is the HTTP surface of the simulation service: the
// JSON API cmd/dae-serve mounts over one daesim.Engine. It lives in its
// own package (rather than in cmd/dae-serve) because the fabric front
// end — cmd/dae-router — speaks, proxies and reassembles exactly these
// request/response shapes, and the fabric's in-process end-to-end tests
// boot real replicas from this handler.
//
// Endpoints:
//
//	POST /v1/runs                 execute one daesim.Request (JSON body)
//	POST /v1/sweeps               execute {"requests": [...]}; per-result errors
//	GET  /v1/runs/{hash}          serve a previously computed result by hash
//	GET  /v1/runs/{hash}/events   stream the run's progress (SSE or NDJSON)
//	GET  /healthz                 liveness + engine cache statistics
package serveapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	daesim "repro"
)

// API limits.
const (
	// DefaultMaxBody bounds request bodies (a Request is a few KB; custom
	// workload models stay well under this).
	DefaultMaxBody = 8 << 20
	// MaxSweepRequests bounds one sweep submission.
	MaxSweepRequests = 4096
)

// EmptySweepError is the 400 message for a sweep naming no runs. The
// router rejects with the same bytes a replica would.
const EmptySweepError = "empty sweep: requests must name at least one run"

// SweepTooLargeError is the 400 message for an oversized sweep.
func SweepTooLargeError(n int) string {
	return fmt.Sprintf("sweep of %d requests exceeds the %d-request limit", n, MaxSweepRequests)
}

// server wires a shared Engine into the HTTP API. All endpoints speak
// JSON; simulation results are served from the Engine's content-addressed
// cache when present and computed through its bounded worker pool on a
// miss.
type server struct {
	eng *daesim.Engine
	// timeout caps one run's wall time (0 = none). Sweeps are capped as
	// a whole. Event streams are exempt: they follow the watched run.
	timeout time.Duration
	maxBody int64
}

// RunResponse is one executed (or failed) request.
type RunResponse struct {
	// Label echoes the request's display name.
	Label string `json:"label,omitempty"`
	// Hash is the request's content hash; GET /v1/runs/{hash} serves the
	// same result from cache from now on.
	Hash string `json:"hash,omitempty"`
	// Cached reports whether the result was served without simulating
	// (cache tier or deduplicated in-flight run).
	Cached bool `json:"cached"`
	// Report is the simulation result (absent on error).
	Report *daesim.Report `json:"report,omitempty"`
	// Error is the failure, if any.
	Error string `json:"error,omitempty"`
}

// SweepRequest is the POST /v1/sweeps body.
type SweepRequest struct {
	Requests []daesim.Request `json:"requests"`
}

// SweepResponse is the POST /v1/sweeps reply: one result per request, in
// request order.
type SweepResponse struct {
	Results []RunResponse `json:"results"`
	// Failed counts results carrying an error.
	Failed int `json:"failed"`
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	OK bool `json:"ok"`
	// Stats snapshots the Engine's lifetime counters.
	Stats daesim.Stats `json:"stats"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// NewHandler builds the HTTP API over eng.
func NewHandler(eng *daesim.Engine, timeout time.Duration, maxBody int64) http.Handler {
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	s := &server{eng: eng, timeout: timeout, maxBody: maxBody}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/runs/{hash}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{hash}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// WriteJSON writes v with the same encoder settings dae-sim -json uses,
// so the "report" object inside every response is byte-identical to the
// CLI's output for the same Request.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // best effort: the client may already be gone
}

// StatusFor maps an execution error to an HTTP status via the package's
// typed sentinels.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, daesim.ErrInvalidRequest),
		errors.Is(err, daesim.ErrUnknownBenchmark),
		errors.Is(err, daesim.ErrInvalidConfig):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is written into the void but
		// keeps access logs honest (nginx's 499 convention).
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// decode strictly parses the JSON body into v.
func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	return nil
}

// runCtx applies the per-run wall cap to the request context.
func (s *server) runCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// handleRun executes one Request: POST /v1/runs with a daesim.Request
// body. Cached results return instantly with "cached": true.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req daesim.Request
	if err := s.decode(w, r, &req); err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	// RunBatch rather than Run for the per-result Cached flag.
	results, _ := s.eng.RunBatch(ctx, []daesim.Request{req})
	res := results[0]
	if res.Err != nil {
		WriteJSON(w, StatusFor(res.Err), ErrorResponse{Error: res.Err.Error()})
		return
	}
	WriteJSON(w, http.StatusOK, RunResponse{
		Label:  res.Request.Label,
		Hash:   res.Hash,
		Cached: res.Cached,
		Report: &res.Report,
	})
}

// handleSweep executes a batch: POST /v1/sweeps with {"requests": [...]}.
// Individual failures never fail the sweep; each result carries its own
// error and the reply is always 200 once the body parses.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if len(req.Requests) == 0 {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: EmptySweepError})
		return
	}
	if len(req.Requests) > MaxSweepRequests {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: SweepTooLargeError(len(req.Requests))})
		return
	}
	ctx, cancel := s.runCtx(r)
	defer cancel()
	results, _ := s.eng.RunBatch(ctx, req.Requests)
	resp := SweepResponse{Results: make([]RunResponse, len(results))}
	for i, res := range results {
		rr := RunResponse{Label: res.Request.Label, Hash: res.Hash, Cached: res.Cached}
		if res.Err != nil {
			rr.Error = res.Err.Error()
			resp.Failed++
		} else {
			rep := res.Report
			rr.Report = &rep
		}
		resp.Results[i] = rr
	}
	WriteJSON(w, http.StatusOK, resp)
}

// handleGet serves a previously computed result by content hash:
// GET /v1/runs/{hash}. It never simulates; unknown hashes are 404.
func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rep, ok := s.eng.Lookup(hash)
	if !ok {
		WriteJSON(w, http.StatusNotFound, ErrorResponse{
			Error: fmt.Sprintf("no cached result for hash %q (POST the request to /v1/runs to compute it)", hash)})
		return
	}
	WriteJSON(w, http.StatusOK, RunResponse{Hash: hash, Cached: true, Report: &rep})
}

// handleHealth reports liveness and the Engine's counters.
func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	WriteJSON(w, http.StatusOK, HealthResponse{OK: true, Stats: s.eng.Stats()})
}
