package serveapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	daesim "repro"
	"repro/internal/workload"
)

// tinyOpts keeps handler-test simulations in the millisecond range.
func tinyOpts() daesim.RunOpts {
	return daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 2_000}
}

func newTestServer(t *testing.T, opts daesim.EngineOpts, timeout time.Duration) (*httptest.Server, *daesim.Engine) {
	t.Helper()
	eng, err := daesim.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(eng, timeout, DefaultMaxBody))
	t.Cleanup(ts.Close)
	return ts, eng
}

// do issues one JSON request and decodes the reply into out.
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode reply: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestRunEndpointGolden pins the full request/response JSON of
// POST /v1/runs: the response must be exactly the envelope around the
// report the public API computes for the same Request — the golden value
// is derived, not hand-maintained, because the simulator is
// deterministic.
func TestRunEndpointGolden(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	req := daesim.MixRequest(daesim.Figure2(1), tinyOpts())
	req.Label = "golden"

	// Independent reference engine: determinism makes its report the
	// golden value for the served one.
	refEng, err := daesim.NewEngine(daesim.EngineOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantReport, err := refEng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	var goldenBuf bytes.Buffer
	enc := json.NewEncoder(&goldenBuf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(RunResponse{
		Label:  "golden",
		Hash:   req.Hash(),
		Cached: false,
		Report: &wantReport,
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), goldenBuf.String(); got != want {
		t.Errorf("response is not byte-identical to the golden envelope\ngot:  %s\nwant: %s", got, want)
	}
}

func TestRunEndpointCacheHitVsMiss(t *testing.T) {
	ts, eng := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	req := daesim.BenchmarkRequest("swim", daesim.Figure2(1), tinyOpts())

	var first, second RunResponse
	if code := do(t, "POST", ts.URL+"/v1/runs", req, &first); code != 200 {
		t.Fatalf("miss status %d", code)
	}
	if first.Cached || first.Hash != req.Hash() || first.Report == nil {
		t.Fatalf("miss response: %+v", first)
	}
	if code := do(t, "POST", ts.URL+"/v1/runs", req, &second); code != 200 {
		t.Fatalf("hit status %d", code)
	}
	if !second.Cached {
		t.Error("second POST of the same request not served from cache")
	}
	if a, _ := json.Marshal(first.Report); true {
		if b, _ := json.Marshal(second.Report); !bytes.Equal(a, b) {
			t.Error("cached report differs from computed report")
		}
	}
	if s := eng.Stats(); s.Simulated != 1 || s.CacheHits != 1 {
		t.Errorf("engine stats %+v, want 1 simulated + 1 hit", s)
	}
}

func TestGetByHashEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	req := daesim.MixRequest(daesim.Figure2(1), tinyOpts())

	// Unknown hash: 404 with a JSON error body.
	var errResp ErrorResponse
	if code := do(t, "GET", ts.URL+"/v1/runs/"+req.Hash(), nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown hash status %d, want 404", code)
	}
	if !strings.Contains(errResp.Error, "no cached result") {
		t.Errorf("404 body: %+v", errResp)
	}

	// Compute it, then GET serves it without re-simulating.
	var run RunResponse
	if code := do(t, "POST", ts.URL+"/v1/runs", req, &run); code != 200 {
		t.Fatalf("POST status %d", code)
	}
	var got RunResponse
	if code := do(t, "GET", ts.URL+"/v1/runs/"+req.Hash(), nil, &got); code != 200 {
		t.Fatalf("GET status %d", code)
	}
	if !got.Cached || got.Report == nil {
		t.Fatalf("GET response: %+v", got)
	}
	a, _ := json.Marshal(run.Report)
	b, _ := json.Marshal(got.Report)
	if !bytes.Equal(a, b) {
		t.Error("GET served a different report than the POST computed")
	}
}

func TestSweepEndpointPartialFailure(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 2}, 0)
	sweep := SweepRequest{Requests: []daesim.Request{
		daesim.MixRequest(daesim.Figure2(1), tinyOpts()),
		daesim.BenchmarkRequest("quake3", daesim.Figure2(1), tinyOpts()), // invalid
		daesim.BenchmarkRequest("swim", daesim.Figure2(1), tinyOpts()),
	}}
	var resp SweepResponse
	if code := do(t, "POST", ts.URL+"/v1/sweeps", sweep, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 3 || resp.Failed != 1 {
		t.Fatalf("results=%d failed=%d, want 3/1", len(resp.Results), resp.Failed)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Report == nil {
		t.Errorf("result 0: %+v", resp.Results[0])
	}
	if !strings.Contains(resp.Results[1].Error, "unknown benchmark") || resp.Results[1].Report != nil {
		t.Errorf("result 1: %+v", resp.Results[1])
	}
	if resp.Results[2].Error != "" || resp.Results[2].Report == nil {
		t.Errorf("result 2: %+v", resp.Results[2])
	}
}

func TestValidationMapsToBadRequest(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"machine": `},
		{"unknown field", `{"machien": {}}`},
		{"zero threads", `{"machine": {"Threads": 0}, "workload": {"kind": "mix"}}`},
		{"unknown benchmark", `{"machine": {"Threads": 1}, "workload": {"kind": "bench", "bench": "quake3"}}`},
		{"negative budget", `{"workload": {"kind": "mix"}, "budget": {"warmupInsts": -1, "measureInsts": 100}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var body ErrorResponse
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%+v)", tc.name, resp.StatusCode, body)
		}
		if body.Error == "" {
			t.Errorf("%s: missing JSON error body", tc.name)
		}
	}

	// Empty and oversized sweeps are rejected before any work happens.
	for _, body := range []string{`{"requests": []}`, `{}`} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("empty sweep %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestClientCancellationAbortsRun(t *testing.T) {
	ts, eng := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	// A run only cancellation can end quickly.
	req := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 500_000_000})
	raw, _ := json.Marshal(req)

	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/runs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := http.DefaultClient.Do(httpReq); !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want context.Canceled", err)
	}
	// The server must notice the disconnect and abort the simulation
	// (the engine records it as a failure) well before the run's natural
	// length.
	deadline := time.Now().Add(2 * time.Second)
	for eng.Stats().Failures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never aborted the abandoned simulation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("abort took %v", elapsed)
	}
	// Aborted work is not cached, and the server still works.
	if _, ok := eng.Lookup(req.Hash()); ok {
		t.Error("aborted run left a cache entry")
	}
	var health HealthResponse
	if code := do(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 || !health.OK {
		t.Fatalf("healthz after abort: code=%d %+v", code, health)
	}
}

func TestServerTimeoutMapsToGatewayTimeout(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 50*time.Millisecond)
	req := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 500_000_000})
	var body ErrorResponse
	if code := do(t, "POST", ts.URL+"/v1/runs", req, &body); code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%+v)", code, body)
	}
}

func TestHealthzGolden(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	want := fmt.Sprintf("{\n  \"ok\": true,\n  \"stats\": {\n    \"Simulated\": 0,\n    \"CacheHits\": 0,\n    \"Failures\": 0,\n    \"CacheWriteErrors\": 0\n  }\n}\n")
	if buf.String() != want {
		t.Errorf("healthz body:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestRunEndpointHierarchyRequest: the finite-hierarchy config surface
// flows through the HTTP API — a Request with a shared L2 + DRAM runs,
// reports per-level stats, and is served back by its canonical hash
// even when the client left the stale flat L2 latency in place (the
// server normalizes).
func TestRunEndpointHierarchyRequest(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	req := daesim.MixRequest(daesim.Figure2(2).WithHierarchy(64, daesim.SharedL2(128<<10, 8)), tinyOpts())

	// A client hand-editing JSON might leave the flat latency set; the
	// canonical hash must not depend on it.
	sloppy := req
	sloppy.Machine.Mem.L2Latency = 16

	var rr RunResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", sloppy, &rr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rr.Hash != req.Hash() {
		t.Errorf("served hash %s, want normalized %s", rr.Hash, req.Hash())
	}
	if rr.Report == nil || len(rr.Report.MemLevels) != 1 {
		t.Fatalf("report missing per-level stats: %+v", rr.Report)
	}
	l2 := rr.Report.MemLevels[0]
	if l2.Name != "L2" || l2.Accesses == 0 {
		t.Errorf("L2 level stats empty: %+v", l2)
	}
	// And the cache serves it back by hash, levels intact.
	var again RunResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/runs/"+req.Hash(), nil, &again); code != http.StatusOK {
		t.Fatalf("GET by hash status %d", code)
	}
	if !again.Cached || len(again.Report.MemLevels) != 1 {
		t.Errorf("cache round-trip lost the hierarchy levels: %+v", again)
	}
}

// TestRunEndpointCMPRequest: a multi-core request round-trips through
// the service — normalized hash (Cores=1 folds to the single-core
// encoding), per-core L1 levels plus the shared L2 in the report, and a
// cache hit serving the same levels back.
func TestRunEndpointCMPRequest(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	req := daesim.MixRequest(daesim.Figure2(1).WithCores(2).
		WithHierarchy(64, daesim.SharedL2(128<<10, 8)), tinyOpts())

	var rr RunResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", req, &rr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rr.Hash != req.Hash() {
		t.Errorf("served hash %s, want %s", rr.Hash, req.Hash())
	}
	if rr.Report == nil || rr.Report.Cores != 2 {
		t.Fatalf("report not multi-core: %+v", rr.Report)
	}
	names := make(map[string]bool)
	for _, lv := range rr.Report.MemLevels {
		names[lv.Name] = true
	}
	for _, want := range []string{"c0.L1", "c1.L1", "L2"} {
		if !names[want] {
			t.Errorf("report levels missing %q (have %v)", want, names)
		}
	}
	if len(rr.Report.PerCoreGraduated) != 2 {
		t.Errorf("PerCoreGraduated = %v", rr.Report.PerCoreGraduated)
	}

	// An explicit Cores=1 must normalize into the single-core keyspace.
	one := daesim.MixRequest(daesim.Figure2(2).WithCores(1), tinyOpts())
	base := daesim.MixRequest(daesim.Figure2(2), tinyOpts())
	var or RunResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", one, &or); code != http.StatusOK {
		t.Fatalf("Cores=1 status %d", code)
	}
	if or.Hash != base.Hash() {
		t.Errorf("Cores=1 hash %s, want the single-core %s", or.Hash, base.Hash())
	}

	// Cache round-trip keeps the CMP fields.
	var again RunResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/runs/"+req.Hash(), nil, &again); code != http.StatusOK {
		t.Fatalf("GET by hash status %d", code)
	}
	if !again.Cached || again.Report.Cores != 2 {
		t.Errorf("cache round-trip lost the CMP shape: %+v", again.Report)
	}
}

// TestRunEndpointSampledRequest: a sampled-mode request passes through
// the service — normalized hash (defaults spelled out), a Sampled
// summary in the report, exact mode untouched in its own keyspace, and
// invalid mode/sampling combinations mapping to 400s.
func TestRunEndpointSampledRequest(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	req := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 100_000})
	req.Budget.Mode = daesim.ModeSampled
	req.Budget.Sampling = &daesim.Sampling{PeriodInsts: 10_000, UnitInsts: 500, WarmupInsts: 1_000}

	var rr RunResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", req, &rr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rr.Hash != req.Normalized().Hash() {
		t.Errorf("served hash %s, want normalized %s", rr.Hash, req.Normalized().Hash())
	}
	if rr.Report == nil || rr.Report.Sampled == nil {
		t.Fatalf("sampled report missing its summary: %+v", rr.Report)
	}
	if rr.Report.Sampled.Units < 2 || rr.Report.Sampled.Mean <= 0 {
		t.Errorf("degenerate sampling summary: %+v", rr.Report.Sampled)
	}

	// The sampled request must not collide with the exact keyspace.
	exact := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 100_000})
	if rr.Hash == exact.Hash() {
		t.Error("sampled request shares the exact request's hash")
	}

	// Cache round-trip keeps the sampling summary.
	var again RunResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/runs/"+rr.Hash, nil, &again); code != http.StatusOK {
		t.Fatalf("GET by hash status %d", code)
	}
	if !again.Cached || again.Report.Sampled == nil || again.Report.Sampled.Units != rr.Report.Sampled.Units {
		t.Errorf("cache round-trip lost the sampling summary: %+v", again.Report)
	}

	// Validation failures surface as 400s, not 500s.
	bad := req
	bad.Budget.Sampling = &daesim.Sampling{PeriodInsts: 500, UnitInsts: 400, WarmupInsts: 200}
	var er ErrorResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", bad, &er); code != http.StatusBadRequest {
		t.Fatalf("invalid sampling: status %d, want 400", code)
	}
	stray := daesim.MixRequest(daesim.Figure2(1), daesim.RunOpts{WarmupInsts: 500, MeasureInsts: 2_000})
	stray.Budget.Sampling = &daesim.Sampling{PeriodInsts: 1_000, UnitInsts: 100, WarmupInsts: 100}
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", stray, &er); code != http.StatusBadRequest {
		t.Fatalf("stray sampling outside sampled mode: status %d, want 400", code)
	}
}

// TestRunEndpointSpeculationRequest: the speculation knobs ride the
// request JSON unchanged — the served report carries the new counters,
// the hash forks from the plain machine, and bad knobs are 400s.
func TestRunEndpointSpeculationRequest(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	m := daesim.Figure2(2).WithSpeculation(
		daesim.Speculation{SpecLoadFrac: 0.5, MisspecProb: 0.2, LoDEvery: 300})
	req := daesim.MixRequest(m, tinyOpts())

	var rr RunResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", req, &rr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rr.Hash != req.Hash() {
		t.Errorf("served hash %s, want %s", rr.Hash, req.Hash())
	}
	if rr.Hash == daesim.MixRequest(daesim.Figure2(2), tinyOpts()).Hash() {
		t.Error("speculative request shares the plain machine's hash")
	}
	if rr.Report == nil || rr.Report.SpeculativeLoads == 0 {
		t.Fatalf("report lost the speculation counters: %+v", rr.Report)
	}

	bad := daesim.MixRequest(daesim.Figure2(2).WithSpeculation(
		daesim.Speculation{SpecLoadFrac: 1.5}), tinyOpts())
	var er ErrorResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", bad, &er); code != http.StatusBadRequest {
		t.Fatalf("invalid speculation: status %d, want 400", code)
	}
}

// TestRunEndpointTraceRequest: a trace workload round-trips through the
// HTTP surface and reproduces the generator run it was exported from.
func TestRunEndpointTraceRequest(t *testing.T) {
	ts, _ := newTestServer(t, daesim.EngineOpts{Workers: 1}, 0)
	m := daesim.Figure2(2)
	b, err := daesim.BenchmarkByName("tomcatv")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tomcatv.dct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.ExportTrace(f, b, m.TotalContexts(), 0, 10_000, ""); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	req := daesim.TraceRequest(path, "", m, tinyOpts())
	var rr RunResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", req, &rr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rr.Report == nil || rr.Report.IPC() <= 0 {
		t.Fatalf("degenerate trace report: %+v", rr.Report)
	}
	want, err := daesim.RunBenchmark("tomcatv", m, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Report.IPC() != want.IPC() {
		t.Errorf("trace replay IPC %v, generator %v", rr.Report.IPC(), want.IPC())
	}

	var er ErrorResponse
	bad := daesim.TraceRequest("", "", m, tinyOpts())
	if code := do(t, http.MethodPost, ts.URL+"/v1/runs", bad, &er); code != http.StatusBadRequest {
		t.Fatalf("empty trace path: status %d, want 400", code)
	}
}
