package mem

import (
	"testing"

	"repro/internal/cache"
)

// Tests for the functional warm path (warm.go): architectural cache
// updates with no timing, the CMP invalidate twin, and the
// declared-disjoint broadcast skip.

func TestWarmFlatModel(t *testing.T) {
	s := newSys(t, testConfig())
	// A warm load installs the line with no counters and no time.
	s.Warm(0x1000, false)
	if !s.Cache().Lookup(0x1000) {
		t.Error("warm load did not install the line")
	}
	if s.Cache().IsDirty(0x1000) {
		t.Error("warm load dirtied the line")
	}
	// A warm store dirties it.
	s.Warm(0x1008, true)
	if !s.Cache().IsDirty(0x1000) {
		t.Error("warm store did not dirty the line")
	}
	if st := s.Stats(); st.LoadAccesses != 0 || st.StoreAccesses != 0 || st.Fills != 0 {
		t.Errorf("warming booked counters: %+v", st)
	}
	// Evicting the dirty line in the flat model drops the victim (DRAM
	// backs everything); the conflicting line simply takes its place.
	s.Warm(0x1000+64*1024, false)
	if s.Cache().Lookup(0x1000) {
		t.Error("conflicting warm did not evict")
	}
}

func TestWarmHierarchyAllocatesDownChain(t *testing.T) {
	cfg := testConfig()
	cfg.L1 = cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 1}
	cfg.L2Latency = 0
	cfg.Hierarchy = []LevelSpec{l2Spec(64*1024, 1, 16)}
	cfg.DRAMLatency = 64
	s := newSys(t, cfg)

	// A warm miss installs in the L1 and allocates down the chain.
	s.Warm(0x1000, false)
	if !s.Cache().Lookup(0x1000) || !s.LevelCache(0).Lookup(0x1000) {
		t.Error("warm miss did not install in both levels")
	}
	// A line already below only fills the L1 (the chain walk stops at the
	// first level that holds it) — observable as the L2 copy keeping its
	// LRU position, which a direct-mapped L2 can't show; instead check a
	// dirty L1 victim writes back into the L2.
	s.Warm(0x1000, true)
	s.Warm(0x1000+8*1024, false) // evicts the dirty 0x1000 line from the 8 KB L1
	if s.Cache().Lookup(0x1000) {
		t.Error("conflicting warm did not evict the L1 line")
	}
	if !s.LevelCache(0).IsDirty(0x1000) {
		t.Error("dirty warm victim did not write back into the L2")
	}
}

func TestWarmInvalidateBroadcast(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)

	// A clean remote copy dies on a warm store.
	h.sys[1].Warm(0x2000, false)
	if !h.sys[1].Cache().Lookup(0x2000) {
		t.Fatal("warm did not install on core 1")
	}
	h.sys[0].Warm(0x2000, true)
	if h.sys[1].Cache().Lookup(0x2000) {
		t.Error("warm store left the clean remote copy alive")
	}

	// A dirty remote copy migrates into the shared L2 before dying.
	h.sys[1].Warm(0x4000, true)
	h.ic.levels[0].tags.Invalidate(h.sys[1].Cache().LineAddr(0x4000))
	h.sys[0].Warm(0x4000, true)
	if h.sys[1].Cache().Lookup(0x4000) {
		t.Error("warm store left the dirty remote copy alive")
	}
	if !h.ic.levels[0].tags.IsDirty(0x4000) {
		t.Error("dirty remote copy did not migrate to the shared level")
	}
}

func TestWarmDisjointSkipsBroadcast(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)
	h.ic.SetDisjointAddressSpaces(true)

	// With the workload declared disjoint the broadcast is skipped: a
	// remote copy (which a truly disjoint workload could never create)
	// survives a warm store.
	h.sys[1].Warm(0x2000, false)
	h.sys[0].Warm(0x2000, true)
	if !h.sys[1].Cache().Lookup(0x2000) {
		t.Error("disjoint warm store still broadcast an invalidation")
	}

	// Retracting the declaration restores the broadcast.
	h.ic.SetDisjointAddressSpaces(false)
	h.sys[0].Warm(0x2000, true)
	if h.sys[1].Cache().Lookup(0x2000) {
		t.Error("retracted disjoint declaration did not restore the broadcast")
	}
}

func TestWarmPrivateHierarchy(t *testing.T) {
	cfg := cmpConfig()
	cfg.PrivateHierarchy = true
	h := newCMPHarness(t, cfg, 2)

	// Each core's warm chain is its own private L2.
	h.sys[0].Warm(0x1000, false)
	if !h.ic.priv[0][0].tags.Lookup(0x1000) {
		t.Error("core 0 warm did not allocate in its private L2")
	}
	if h.ic.priv[1][0].tags.Lookup(0x1000) {
		t.Error("core 0 warm leaked into core 1's private L2")
	}

	// A warm store kills remote private-chain copies too.
	h.sys[1].Warm(0x1000, false)
	h.sys[0].Warm(0x1000, true)
	if h.sys[1].Cache().Lookup(0x1000) || h.ic.priv[1][0].tags.Lookup(0x1000) {
		t.Error("warm store left copies in core 1's private chain")
	}
}

func TestLevelStatsMergeCounters(t *testing.T) {
	a := LevelStats{Name: "L2", Accesses: 10, Misses: 3, SecondaryMisses: 2,
		MSHRRejects: 1, Fills: 3, WriteAllocates: 1, Writebacks: 2,
		Invalidations: 4, CoherenceWritebacks: 1}
	b := LevelStats{Accesses: 5, Misses: 1, SecondaryMisses: 1,
		MSHRRejects: 2, Fills: 1, WriteAllocates: 2, Writebacks: 1,
		Invalidations: 1, CoherenceWritebacks: 2}
	a.MergeCounters(b)
	want := LevelStats{Name: "L2", Accesses: 15, Misses: 4, SecondaryMisses: 3,
		MSHRRejects: 3, Fills: 4, WriteAllocates: 3, Writebacks: 3,
		Invalidations: 5, CoherenceWritebacks: 3}
	if a != want {
		t.Errorf("MergeCounters = %+v, want %+v", a, want)
	}
	if got := a.MissRatio(); got != 4.0/15.0 {
		t.Errorf("MissRatio = %v", got)
	}
	if got := (LevelStats{}).MissRatio(); got != 0 {
		t.Errorf("empty MissRatio = %v, want 0", got)
	}
}

func TestStatsMergeAndRatios(t *testing.T) {
	a := Stats{LoadAccesses: 10, LoadMisses: 2, StoreAccesses: 4, StoreMisses: 1,
		SecondaryMisses: 3, Writebacks: 1, Fills: 3, PortRejects: 5,
		MSHRRejects: 2, LowerRejects: 1}
	a.Merge(a)
	if a.LoadAccesses != 20 || a.StoreMisses != 2 || a.LowerRejects != 2 {
		t.Errorf("Merge = %+v", a)
	}
	if got := a.LoadMissRatio(); got != 0.2 {
		t.Errorf("LoadMissRatio = %v", got)
	}
	if got := a.StoreMissRatio(); got != 0.25 {
		t.Errorf("StoreMissRatio = %v", got)
	}
	var zero Stats
	if zero.LoadMissRatio() != 0 || zero.StoreMissRatio() != 0 {
		t.Error("zero-access ratios not 0")
	}
}

func TestStallReasonString(t *testing.T) {
	for want, r := range map[string]StallReason{
		"none": StallNone, "port": StallPort, "mshr": StallMSHR,
		"lower-mshr": StallLowerMSHR, "stall(9)": StallReason(9),
	} {
		if got := r.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", r, got, want)
		}
	}
}

func TestSystemAccessorsAndQuiescence(t *testing.T) {
	cfg := testConfig()
	cfg.L2Latency = 0
	cfg.Hierarchy = []LevelSpec{l2Spec(256*1024, 1, 16)}
	cfg.DRAMLatency = 64
	s := newSys(t, cfg)

	if got := s.Config(); got.DRAMLatency != 64 {
		t.Errorf("Config().DRAMLatency = %d", got.DRAMLatency)
	}
	if s.LevelBus(0) == nil {
		t.Error("LevelBus(0) is nil")
	}
	if !s.Quiescent() {
		t.Error("idle system not quiescent")
	}

	// Fill cycles booked by the shared level reach a registered scheduler.
	var scheduled []int64
	s.SetFillScheduler(func(at int64) { scheduled = append(scheduled, at) })

	s.BeginCycle(1)
	if r := s.Load(0x1000); !r.OK || !r.Miss {
		t.Fatalf("miss load rejected: %+v", r)
	}
	if s.Quiescent() {
		t.Error("system quiescent with a miss in flight")
	}
	if len(scheduled) == 0 {
		t.Error("shared-level fill was not scheduled")
	}
	for c := int64(2); s.MSHRsInUse() > 0; c++ {
		s.BeginCycle(c)
	}
	if !s.Quiescent() {
		t.Error("system not quiescent after the fill")
	}

	ls := s.L1LevelStats(100, 100)
	if ls.Accesses != 1 || ls.Misses != 1 {
		t.Errorf("L1LevelStats = %+v", ls)
	}
}

func TestInterconnectFillScheduler(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)
	var scheduled int
	h.ic.SetFillScheduler(func(int64) { scheduled++ })
	h.tick()
	h.load(t, 0, 0x1000)
	if scheduled == 0 {
		t.Error("shared-L2 fill did not reach the interconnect's scheduler")
	}
}
