package mem

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/queue"
)

// This file holds the composable pieces of the memory hierarchy: the
// level abstraction (tags + lockup-free MSHR file + fill FIFO + the bus
// connecting the level to whatever is below it) extracted from the
// original hard-wired L1 implementation, and the backend interface that
// lets levels stack — L1 over a finite shared L2 over DRAM, or L1
// directly over the paper's infinite flat-latency L2 (the default).

// LevelSpec configures one shared cache level of a finite hierarchy
// (mem.Config.Hierarchy). The zero value is invalid; every field must be
// set.
type LevelSpec struct {
	// Name labels the level in statistics ("L2", "L3"); empty defaults
	// to "L<position>" counting from 2.
	Name string `json:",omitempty"`
	// Cache is the level's tag-array geometry. Its line size must equal
	// the L1 line size (refills move whole lines level to level).
	Cache cache.Config
	// MSHRs is the level's miss capacity: outstanding fetches to the
	// next level down.
	MSHRs int
	// HitLatency is the tag+array access latency in cycles.
	HitLatency int64
	// BusBytesPerCycle is the width of the level's downstream bus — the
	// memory bus, for the last level — carrying its refills and dirty
	// write-backs.
	BusBytesPerCycle int
}

// Validate checks one level spec against the L1 geometry.
func (l LevelSpec) Validate(l1 cache.Config) error {
	if err := l.Cache.Validate(); err != nil {
		return err
	}
	switch {
	case l.Cache.LineBytes != l1.LineBytes:
		return fmt.Errorf("mem: level %q line size %d must match L1's %d",
			l.Name, l.Cache.LineBytes, l1.LineBytes)
	case l.MSHRs <= 0:
		return fmt.Errorf("mem: level %q MSHRs %d must be positive", l.Name, l.MSHRs)
	case l.HitLatency <= 0:
		return fmt.Errorf("mem: level %q hit latency %d must be positive", l.Name, l.HitLatency)
	case l.BusBytesPerCycle <= 0:
		return fmt.Errorf("mem: level %q bus width %d must be positive", l.Name, l.BusBytesPerCycle)
	}
	return nil
}

// LevelStats aggregates one shared level's counters. Accesses counts
// requests accepted from the level above; Misses counts primary misses
// forwarded downstream (secondary misses merge into a pending MSHR, the
// same delayed-hit accounting the L1 uses), so MissRatio tracks lines
// fetched, not stalled requests.
type LevelStats struct {
	// Name identifies the level ("L2", ...).
	Name string
	// Accesses counts fetch requests accepted from the level above.
	Accesses int64
	// Misses counts primary misses (lines requested from below).
	Misses int64
	// SecondaryMisses counts requests merged into a pending MSHR.
	SecondaryMisses int64
	// MSHRRejects counts requests rejected for lack of an MSHR.
	MSHRRejects int64
	// Fills counts lines installed by refills from below.
	Fills int64
	// WriteAllocates counts upper-level write-backs that missed and were
	// installed directly (full-line writes fetch nothing).
	WriteAllocates int64
	// Writebacks counts dirty victims pushed downstream.
	Writebacks int64
	// BusUtilization is the fraction of the measurement window the
	// level's downstream bus was busy (the memory bus, for the last
	// level). Filled in by System.LevelStats.
	BusUtilization float64
	// Invalidations counts lines invalidated by a remote core's write
	// (CMP write-invalidate coherence; always 0 — and omitted from
	// encodings — on single-core machines, pinning their report hashes).
	Invalidations int64 `json:",omitempty"`
	// CoherenceWritebacks counts dirty copies pushed downstream by an
	// invalidation (the modified data migrates to the shared level
	// before the line dies).
	CoherenceWritebacks int64 `json:",omitempty"`
}

// MissRatio returns primary misses / accesses (0 if no accesses).
func (l LevelStats) MissRatio() float64 {
	if l.Accesses == 0 {
		return 0
	}
	return float64(l.Misses) / float64(l.Accesses)
}

// backend models everything below a cache level: it accepts line fetches
// and write-backs and reports when fetched data is available at its
// output for the requester to transfer up over its own bus.
type backend interface {
	// fetch requests a line; ready is the cycle the request arrives at
	// the backend. It returns the cycle the line is available at the
	// backend's output, or ok=false when a structural hazard (an MSHR
	// file below being full) rejects the request — in which case no
	// state anywhere below was modified and the caller must retry.
	fetch(line uint64, ready int64) (availAt int64, ok bool)
	// writeback hands down a dirty line evicted by the level above at
	// cycle now. Write-backs are never rejected (they are full-line
	// writes and allocate without fetching).
	writeback(line uint64, now int64)
}

// terminus is a fixed-latency backend that always accepts: the paper's
// infinite flat-latency L2 in the default model, and the DRAM behind the
// last level of a finite hierarchy. Bandwidth is modelled by the
// requesting level's downstream bus, which books the line transfer.
type terminus struct{ latency int64 }

func (t terminus) fetch(line uint64, ready int64) (int64, bool) { return ready + t.latency, true }
func (t terminus) writeback(uint64, int64)                      {}

// mshr is one miss status holding register: a pending line fetch.
type mshr struct {
	line  uint64
	fill  int64 // cycle the line is installed in this level
	dirty bool  // a store (or write-back) merged into the miss: mark dirty at fill
	valid bool
	// cancelled marks an in-flight fill invalidated by a remote write:
	// the data still arrives (and serves the accesses that merged before
	// the invalidation), but the line is not installed. A later access
	// merging into the entry re-arms the install — it is a fresh request
	// for the line, satisfied by the same in-flight transfer.
	cancelled bool
}

// smallMSHRFile is the file size up to which findMSHR's FIFO walk beats
// a hash lookup (the paper's machine has 16 entries; latency scaling and
// high thread counts grow the file into the hundreds).
const smallMSHRFile = 32

// level is one cache level: the tag array, the MSHR file making it
// lockup-free, the fill FIFO ordering refills, and the downstream bus
// carrying its miss traffic. The L1 is a level driven directly by
// System's port-arbitrated access path; shared levels are driven through
// the backend interface by the level above.
type level struct {
	tags       *cache.Cache
	bus        *bus.Bus // downstream bus (refills in, write-backs out)
	next       backend  // what is below this level
	hitLatency int64
	lineBytes  int

	mshrs      []mshr
	mshrsInUse int
	// fillq holds the occupied MSHR indices in allocation order. Bus
	// reservations are monotonic (bus.Reserve never books earlier than a
	// previous reservation), so allocation order is also fill-time
	// order: beginCycle pops due refills from the head in O(1) instead
	// of scanning the file, and the head's fill time is the exact
	// next-fill bound.
	fillq *queue.Ring[int]
	// lineIdx maps a pending line to its MSHR index for large files
	// (nil for paper-sized files, where walking the occupied FIFO beats
	// hashing).
	lineIdx map[uint64]int
	// freeIdx stacks the free MSHR indices.
	freeIdx []int

	// lstats points at the level's counters (owned by System so the
	// legacy flat Stats view and the per-level view share one source).
	lstats *LevelStats
	// sched, when set, is called with every future fill cycle the level
	// books, so the core's event calendar wakes the machine exactly when
	// a line installs (and its dirty victim, if any, books bus time).
	// The L1 needs no hook — the core schedules L1 fill times itself
	// from the access results — so only shared levels set it.
	sched func(at int64)
}

// newLevel builds one cache level over the given backend.
func newLevel(tags cache.Config, mshrs int, hitLatency int64, busBytes int, next backend, lstats *LevelStats) *level {
	l := &level{
		tags:       cache.New(tags),
		bus:        bus.New(busBytes),
		next:       next,
		hitLatency: hitLatency,
		lineBytes:  tags.LineBytes,
		mshrs:      make([]mshr, mshrs),
		fillq:      queue.New[int](mshrs),
		freeIdx:    make([]int, 0, mshrs),
		lstats:     lstats,
	}
	if mshrs > smallMSHRFile {
		l.lineIdx = make(map[uint64]int, mshrs)
	}
	// Pop order is ascending index for determinism.
	for i := mshrs - 1; i >= 0; i-- {
		l.freeIdx = append(l.freeIdx, i)
	}
	return l
}

// beginCycle completes any refills whose data has arrived by now,
// installing lines (dirty victims book bus bandwidth and travel down)
// and freeing their MSHRs. It returns the number of lines installed.
func (l *level) beginCycle(now int64) int {
	filled := 0
	for {
		i, ok := l.fillq.Peek()
		if !ok {
			break
		}
		e := &l.mshrs[i]
		if e.fill > now {
			break // FIFO in fill order: nothing behind is due either
		}
		if e.cancelled {
			// The fill was invalidated in flight: the transfer happened
			// (its bus time is already booked) but the line is dead on
			// arrival — nothing installs, nothing is evicted. Freeing the
			// MSHR is still an event worth a tick: it can unblock
			// MSHR-rejected accesses.
			filled++
		} else {
			victim := l.tags.Fill(e.line)
			if e.dirty {
				l.tags.SetDirty(e.line)
			}
			l.lstats.Fills++
			filled++
			if victim.Valid && victim.Dirty {
				// The write-back occupies the data bus for one line transfer.
				l.bus.Reserve(now, l.bus.TransferCycles(l.lineBytes))
				l.lstats.Writebacks++
				l.next.writeback(victim.Addr, now)
			}
		}
		e.valid = false
		l.mshrsInUse--
		if l.lineIdx != nil {
			delete(l.lineIdx, e.line)
		}
		l.freeIdx = append(l.freeIdx, i)
		l.fillq.Drop()
	}
	return filled
}

// findMSHR returns the pending entry for line, if any. Small files walk
// the fill FIFO, which holds exactly the occupied entries (usually a
// handful); large files use the line index.
func (l *level) findMSHR(line uint64) *mshr {
	if l.lineIdx != nil {
		if i, ok := l.lineIdx[line]; ok {
			return &l.mshrs[i]
		}
		return nil
	}
	var found *mshr
	l.fillq.Scan(func(i int) bool {
		if e := &l.mshrs[i]; e.line == line {
			found = e
			return false
		}
		return true
	})
	return found
}

// alloc claims a free MSHR for a primary miss filling at the given
// cycle. The caller must have checked len(l.freeIdx) > 0.
func (l *level) alloc(line uint64, fill int64, dirty bool) {
	idx := l.freeIdx[len(l.freeIdx)-1]
	l.freeIdx = l.freeIdx[:len(l.freeIdx)-1]
	l.mshrs[idx] = mshr{line: line, fill: fill, dirty: dirty, valid: true}
	if l.lineIdx != nil {
		l.lineIdx[line] = idx
	}
	l.mshrsInUse++
	if !l.fillq.Push(idx) {
		panic("mem: fill queue full despite a free MSHR")
	}
}

// fetch implements backend for shared levels: the level above requests a
// line arriving at cycle ready. Tags are probed when the request is
// issued (the same eager-timing approximation the flat model uses for
// its bus booking); fills install at their fill cycle via beginCycle, so
// requests racing a pending refill merge into its MSHR instead.
func (l *level) fetch(line uint64, ready int64) (int64, bool) {
	if l.tags.Lookup(line) {
		l.lstats.Accesses++
		return ready + l.hitLatency, true
	}
	// Merge into a pending fetch of the same line: a delayed hit. The
	// data cannot be forwarded up before it arrives here, nor faster
	// than a hit could serve it.
	if e := l.findMSHR(line); e != nil {
		e.cancelled = false // a fresh request re-arms a cancelled fill
		l.lstats.Accesses++
		l.lstats.SecondaryMisses++
		avail := ready + l.hitLatency
		if e.fill > avail {
			avail = e.fill
		}
		return avail, true
	}
	if len(l.freeIdx) == 0 {
		l.lstats.MSHRRejects++
		return 0, false
	}
	// Primary miss: tag probe, one cycle on the command channel, then
	// the next level down — mirroring the L1 miss pipeline.
	req := ready + l.hitLatency + 1
	avail, ok := l.next.fetch(line, req)
	if !ok {
		return 0, false // a level below is out of MSHRs; nothing changed here
	}
	l.lstats.Accesses++
	l.lstats.Misses++
	fill := l.bus.Reserve(avail, l.bus.TransferCycles(l.lineBytes))
	l.alloc(line, fill, false)
	if l.sched != nil {
		l.sched(fill)
	}
	return fill, true
}

// invalidate kills this level's copy of line on a remote core's write
// (write-invalidate coherence): a cached copy is dropped — a dirty one
// is first written back downstream, booking the level's bus like any
// write-back, so the modified data survives at the shared level — and a
// pending fill is cancelled in flight (the transfer completes but the
// line is dead on arrival; see mshr.cancelled). Reports whether a copy
// (cached or in flight) was present.
func (l *level) invalidate(line uint64, now int64) bool {
	if dirty, present := l.tags.Invalidate(line); present {
		l.lstats.Invalidations++
		if dirty {
			l.bus.Reserve(now, l.bus.TransferCycles(l.lineBytes))
			l.lstats.CoherenceWritebacks++
			l.next.writeback(line, now)
		}
		return true
	}
	if e := l.findMSHR(line); e != nil && !e.cancelled {
		e.cancelled = true
		e.dirty = false
		l.lstats.Invalidations++
		return true
	}
	return false
}

// writeback implements backend: a dirty line evicted by the level above
// arrives at cycle now. A hit dirties the line; a write to a pending
// fetch merges; a miss installs the line directly — the whole line is
// being written, so nothing is fetched — evicting (and pushing down) a
// dirty victim like a fill would.
func (l *level) writeback(line uint64, now int64) {
	if l.tags.Lookup(line) {
		l.tags.SetDirty(line)
		return
	}
	if e := l.findMSHR(line); e != nil {
		e.dirty = true
		e.cancelled = false // the merged write re-arms a cancelled fill
		return
	}
	victim := l.tags.Fill(line)
	l.tags.SetDirty(line)
	l.lstats.WriteAllocates++
	if victim.Valid && victim.Dirty {
		l.bus.Reserve(now, l.bus.TransferCycles(l.lineBytes))
		l.lstats.Writebacks++
		l.next.writeback(victim.Addr, now)
	}
}
