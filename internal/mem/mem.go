// Package mem models the lockup-free memory subsystem of the paper's
// machine (Figure 2) as a composable hierarchy of cache levels:
//
//   - L1 on-chip data cache: 64 KB direct-mapped, 32-byte lines,
//     write-back/write-allocate, 1-cycle hit, a configurable number of
//     ports (4 in the multithreaded machine, 2 in the Section-2 machine);
//   - 16 MSHRs making the cache lockup-free: misses to distinct lines
//     proceed in parallel, secondary misses merge into the pending entry;
//   - below the L1, either the paper's infinite, multibanked off-chip L2
//     with a fixed hit latency (the default model, swept 1–256 cycles), or
//     a configurable chain of finite shared cache levels (Hierarchy) —
//     each with its own tags, MSHRs and write-backs — terminated by a
//     fixed-latency DRAM behind a bandwidth-limited memory bus;
//   - a 16-byte/cycle bus per level carrying miss requests, line refills
//     and dirty write-backs.
//
// The subsystem is cycle-stepped: the core calls BeginCycle once per cycle
// (which completes fills bottom-up and frees MSHRs), then issues
// Load/StoreCommit accesses, which either succeed with a data-ready cycle
// or report a structural stall (no free port, no free MSHR at some level)
// to be retried next cycle.
package mem

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
)

// Config parameterises the memory subsystem.
type Config struct {
	// L1 is the data cache geometry.
	L1 cache.Config
	// Ports is the number of L1 accesses accepted per cycle.
	Ports int
	// MSHRs is the number of L1 miss status holding registers.
	MSHRs int
	// HitLatency is the L1 hit latency in cycles.
	HitLatency int64
	// L2Latency is the flat infinite L2's access latency in cycles (the
	// paper's swept parameter). It applies only to the default model and
	// must be zero when Hierarchy is set.
	L2Latency int64
	// BusBytesPerCycle is the L1's downstream bus width (16 in Figure 2).
	BusBytesPerCycle int

	// Hierarchy, when non-empty, replaces the infinite flat L2 with a
	// chain of finite shared cache levels under the L1 (Hierarchy[0] is
	// the L2), the last of which is backed by DRAM. Empty selects the
	// paper's default flat model; the field is normalized away at
	// defaults so existing configuration hashes are unchanged.
	Hierarchy []LevelSpec `json:",omitempty"`
	// DRAMLatency is the fixed DRAM access latency behind the last
	// hierarchy level; its bandwidth limit is the last level's
	// BusBytesPerCycle (the memory bus). Hierarchy mode only.
	DRAMLatency int64 `json:",omitempty"`

	// PrivateHierarchy replicates the Hierarchy levels per core of a
	// chip multiprocessor — each core gets its own finite chain over the
	// shared DRAM — instead of sharing one chain between the cores.
	// Meaningful only under an Interconnect with more than one core
	// (config.Machine.Validate rejects it on single-core machines).
	PrivateHierarchy bool `json:",omitempty"`
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return err
	}
	switch {
	case c.Ports <= 0:
		return fmt.Errorf("mem: ports %d must be positive", c.Ports)
	case c.MSHRs <= 0:
		return fmt.Errorf("mem: MSHRs %d must be positive", c.MSHRs)
	case c.HitLatency <= 0:
		return fmt.Errorf("mem: hit latency %d must be positive", c.HitLatency)
	case c.BusBytesPerCycle <= 0:
		return fmt.Errorf("mem: bus width %d must be positive", c.BusBytesPerCycle)
	}
	if len(c.Hierarchy) == 0 {
		switch {
		case c.L2Latency <= 0:
			return fmt.Errorf("mem: L2 latency %d must be positive", c.L2Latency)
		case c.DRAMLatency != 0:
			return fmt.Errorf("mem: DRAM latency %d requires a hierarchy", c.DRAMLatency)
		case c.PrivateHierarchy:
			return fmt.Errorf("mem: private hierarchy requires a hierarchy")
		}
		return nil
	}
	// Finite hierarchy: the flat latency is meaningless and must be
	// normalized to zero (config.Machine.WithHierarchy and
	// Request.Normalized do) so two spellings of the same machine cannot
	// hash apart.
	if c.L2Latency != 0 {
		return fmt.Errorf("mem: flat L2 latency %d is unused with a hierarchy (set it to 0)", c.L2Latency)
	}
	if c.DRAMLatency <= 0 {
		return fmt.Errorf("mem: DRAM latency %d must be positive with a hierarchy", c.DRAMLatency)
	}
	for _, lv := range c.Hierarchy {
		if err := lv.Validate(c.L1); err != nil {
			return err
		}
	}
	return nil
}

// levelName returns the display name of hierarchy level i (L2 onward).
func levelName(spec LevelSpec, i int) string {
	if spec.Name != "" {
		return spec.Name
	}
	return fmt.Sprintf("L%d", i+2)
}

// StallReason classifies why an access could not be accepted this cycle.
type StallReason uint8

const (
	// StallNone: the access was accepted.
	StallNone StallReason = iota
	// StallPort: all L1 ports are taken this cycle.
	StallPort
	// StallMSHR: the access misses and no L1 MSHR is free.
	StallMSHR
	// StallLowerMSHR: the access misses through to a shared level whose
	// MSHR file is full (finite hierarchy only).
	StallLowerMSHR
)

func (s StallReason) String() string {
	switch s {
	case StallNone:
		return "none"
	case StallPort:
		return "port"
	case StallMSHR:
		return "mshr"
	case StallLowerMSHR:
		return "lower-mshr"
	default:
		return fmt.Sprintf("stall(%d)", uint8(s))
	}
}

// Result reports the outcome of a cache access.
type Result struct {
	// OK reports whether the access was accepted. When false, Stall gives
	// the structural reason and the access must be retried.
	OK bool
	// Stall is the structural hazard that rejected the access.
	Stall StallReason
	// ReadyAt is the cycle the data is available (loads) or the line is
	// written (stores). Only meaningful when OK.
	ReadyAt int64
	// Miss reports whether the access missed in L1.
	Miss bool
}

// Stats aggregates L1/memory subsystem counters. Miss counters are
// *primary* misses (one per line fetched from below); accesses that merge
// into a pending MSHR are delayed hits and appear only in
// SecondaryMisses — the accounting Figure 1-c of the paper implies (its
// ratios track lines fetched, not stalled accesses). Shared hierarchy
// levels keep their own LevelStats (System.LevelStats).
type Stats struct {
	LoadAccesses    int64
	LoadMisses      int64
	StoreAccesses   int64
	StoreMisses     int64
	SecondaryMisses int64 // accesses merged into a pending MSHR (delayed hits)
	Writebacks      int64 // dirty lines written back below L1
	Fills           int64 // lines installed in L1
	PortRejects     int64 // accesses rejected for lack of a port
	MSHRRejects     int64 // accesses rejected for lack of an L1 MSHR
	// LowerRejects counts accesses rejected because a shared level below
	// ran out of MSHRs (always 0 in the default flat model, and omitted
	// from reports there so result hashes are unchanged).
	LowerRejects int64 `json:",omitempty"`
}

// LoadMissRatio returns load misses / load accesses (0 if no loads).
func (s Stats) LoadMissRatio() float64 {
	if s.LoadAccesses == 0 {
		return 0
	}
	return float64(s.LoadMisses) / float64(s.LoadAccesses)
}

// StoreMissRatio returns store misses / store accesses (0 if no stores).
func (s Stats) StoreMissRatio() float64 {
	if s.StoreAccesses == 0 {
		return 0
	}
	return float64(s.StoreMisses) / float64(s.StoreAccesses)
}

// Merge sums another L1's counters into s — CMP reports aggregate the
// cores' private L1s into the one Stats slot single-core reports use.
func (s *Stats) Merge(o Stats) {
	s.LoadAccesses += o.LoadAccesses
	s.LoadMisses += o.LoadMisses
	s.StoreAccesses += o.StoreAccesses
	s.StoreMisses += o.StoreMisses
	s.SecondaryMisses += o.SecondaryMisses
	s.Writebacks += o.Writebacks
	s.Fills += o.Fills
	s.PortRejects += o.PortRejects
	s.MSHRRejects += o.MSHRRejects
	s.LowerRejects += o.LowerRejects
}

// System is the memory subsystem: the port-arbitrated L1 level over a
// backend chain of shared levels ending in a fixed-latency terminus.
// Create with New; not safe for concurrent use (the simulator is
// single-goroutine by design).
type System struct {
	cfg Config
	l1  *level
	// levels are the shared hierarchy levels under the L1, top-down
	// (levels[0] is the L2). Nil in the default flat model.
	levels []*level
	// chain is this core's private hierarchy chain under an epoch-mode
	// CMP interconnect (PrivateHierarchy only): the levels still live
	// in (and are reported by) the Interconnect, but BeginCycle here
	// advances them so a parallel worker drives its own chain without
	// touching shared state. Nil outside epoch mode.
	chain []*level

	now       int64
	portsUsed int
	stats     Stats
	l1Stats   LevelStats
	// levelStats backs each shared level's counters.
	levelStats []LevelStats

	// ic and coreID attach this System to a CMP interconnect: the shared
	// levels live in the interconnect (s.levels is nil then) and stores
	// broadcast write-invalidations to the other cores' private levels.
	// Nil on the paper's single-core machine.
	ic     *Interconnect
	coreID int
}

// New builds a memory subsystem. It returns an error for invalid
// configurations.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	// Build bottom-up: DRAM (or the flat infinite L2) first, then each
	// shared level over it, then the L1 on top.
	var lower backend = terminus{latency: cfg.L2Latency}
	if n := len(cfg.Hierarchy); n > 0 {
		lower = terminus{latency: cfg.DRAMLatency}
		s.levelStats = make([]LevelStats, n)
		s.levels = make([]*level, n)
		for i := n - 1; i >= 0; i-- {
			spec := cfg.Hierarchy[i]
			s.levelStats[i].Name = levelName(spec, i)
			s.levels[i] = newLevel(spec.Cache, spec.MSHRs, spec.HitLatency,
				spec.BusBytesPerCycle, lower, &s.levelStats[i])
			lower = s.levels[i]
		}
	}
	s.l1 = newLevel(cfg.L1, cfg.MSHRs, cfg.HitLatency, cfg.BusBytesPerCycle, lower, &s.l1Stats)
	return s, nil
}

// Config returns the configuration.
func (s *System) Config() Config { return s.cfg }

// Bus exposes the L1's downstream bus for utilization reporting.
func (s *System) Bus() *bus.Bus { return s.l1.bus }

// Cache exposes the L1 tag array (for tests and reports).
func (s *System) Cache() *cache.Cache { return s.l1.tags }

// LevelCache exposes shared level i's tag array (for tests and reports).
func (s *System) LevelCache(i int) *cache.Cache { return s.levels[i].tags }

// LevelBus exposes shared level i's downstream bus (the memory bus, for
// the last level).
func (s *System) LevelBus(i int) *bus.Bus { return s.levels[i].bus }

// Stats returns a snapshot of the L1 counters.
func (s *System) Stats() Stats {
	st := s.stats
	st.Fills = s.l1Stats.Fills
	st.Writebacks = s.l1Stats.Writebacks
	return st
}

// LevelStats returns per-shared-level counters with downstream-bus
// utilization computed over the measurement window ending at cycle end
// (nil for the default flat model, keeping report encodings unchanged).
func (s *System) LevelStats(end, window int64) []LevelStats {
	if len(s.levels) == 0 {
		return nil
	}
	out := make([]LevelStats, len(s.levels))
	for i, l := range s.levels {
		ls := *l.lstats
		ls.BusUtilization = l.bus.Utilization(end, window)
		out[i] = ls
	}
	return out
}

// L1LevelStats returns the private L1's counters in LevelStats form
// (named "c<i>.L1" on CMP machines) with bus utilization over the
// window ending at cycle end. The CMP report lists one per core ahead
// of the interconnect's shared levels, so per-core coherence traffic
// (invalidations, coherence write-backs) is visible per L1.
func (s *System) L1LevelStats(end, window int64) LevelStats {
	ls := s.l1Stats
	ls.Accesses = s.stats.LoadAccesses + s.stats.StoreAccesses
	ls.Misses = s.stats.LoadMisses + s.stats.StoreMisses
	ls.SecondaryMisses = s.stats.SecondaryMisses
	ls.MSHRRejects = s.stats.MSHRRejects
	ls.BusUtilization = s.l1.bus.Utilization(end, window)
	return ls
}

// MSHRsInUse returns the number of occupied L1 MSHRs.
func (s *System) MSHRsInUse() int { return s.l1.mshrsInUse }

// Quiescent reports whether no miss is in flight at the L1 or at any
// finite level below it (this core's view, for CMP machines): the
// memory-side half of the drained-machine condition sampled execution
// warps from.
func (s *System) Quiescent() bool {
	if s.l1.mshrsInUse > 0 {
		return false
	}
	for _, l := range s.warmChain() {
		if l.mshrsInUse > 0 {
			return false
		}
	}
	return true
}

// SetFillScheduler registers fn to be called with every future fill
// cycle a shared level books. The core registers its event calendar
// here, so fast-forwarding never skips the cycle at which a shared
// cache installs a line (and its dirty victim, if any, books memory-bus
// time) — the invariant the stepped/fast equivalence suite relies on.
// The default flat model books no internal fills; fn is never called
// there. The L1's own fill times travel back through access Results and
// are scheduled by the core directly.
func (s *System) SetFillScheduler(fn func(at int64)) {
	for _, l := range s.levels {
		l.sched = fn
	}
}

// BeginCycle advances the subsystem to the given cycle: it releases the
// access ports and completes any refills whose data has arrived — bottom
// level first, so a line installs below before (hypothetically) being
// requested from above in the same cycle — installing lines (write-backs
// of dirty victims reserve bus bandwidth) and freeing MSHRs. It returns
// the number of lines installed anywhere, which is zero on quiescent
// cycles.
func (s *System) BeginCycle(now int64) int {
	s.now = now
	s.portsUsed = 0
	filled := 0
	for i := len(s.chain) - 1; i >= 0; i-- {
		filled += s.chain[i].beginCycle(now)
	}
	for i := len(s.levels) - 1; i >= 0; i-- {
		filled += s.levels[i].beginCycle(now)
	}
	filled += s.l1.beginCycle(now)
	return filled
}

// access implements the shared load/store path. isStore selects
// write-allocate dirty marking.
func (s *System) access(addr uint64, isStore bool) Result {
	if s.portsUsed >= s.cfg.Ports {
		s.stats.PortRejects++
		return Result{Stall: StallPort}
	}
	l1 := s.l1
	line := l1.tags.LineAddr(addr)
	if l1.tags.Lookup(addr) {
		s.portsUsed++
		s.count(isStore, false)
		if isStore {
			l1.tags.SetDirty(addr)
			if s.ic != nil {
				s.ic.invalidateRemote(s.coreID, line)
			}
		}
		return Result{OK: true, ReadyAt: s.now + s.cfg.HitLatency}
	}
	// Miss. Merge into a pending MSHR if one covers the line: a delayed
	// hit (no new traffic below), but the data still arrives at fill time.
	if e := l1.findMSHR(line); e != nil {
		s.portsUsed++
		s.count(isStore, false)
		s.stats.SecondaryMisses++
		e.cancelled = false // a fresh access re-arms an invalidated fill
		if isStore {
			e.dirty = true
		}
		if isStore && s.ic != nil {
			s.ic.invalidateRemote(s.coreID, line)
		}
		return Result{OK: true, ReadyAt: e.fill, Miss: true}
	}
	if len(l1.freeIdx) == 0 {
		s.stats.MSHRRejects++
		return Result{Stall: StallMSHR}
	}
	// Tag probe (hit latency), one cycle for the request on the address/
	// command channel, then the level below serves the line, which
	// returns over the 16-byte data bus (the contended resource;
	// requests ride a separate command channel in this split-transaction
	// interface, so accesses below from different MSHRs overlap).
	reqDone := s.now + s.cfg.HitLatency + 1
	avail, ok := l1.next.fetch(line, reqDone)
	if !ok {
		// A shared level below is out of MSHRs: nothing was modified at
		// any level; retry like an L1 MSHR conflict.
		s.stats.LowerRejects++
		return Result{Stall: StallLowerMSHR}
	}
	s.portsUsed++
	s.count(isStore, true)
	if isStore && s.ic != nil {
		// The invalidation rides the miss request: remote copies die at
		// the (eager) access time, matching the eager tag-probe timing
		// approximation the rest of the miss pipeline uses.
		s.ic.invalidateRemote(s.coreID, line)
	}
	fill := l1.bus.Reserve(avail, l1.bus.TransferCycles(s.cfg.L1.LineBytes))
	l1.alloc(line, fill, isStore)
	return Result{OK: true, ReadyAt: fill, Miss: true}
}

func (s *System) count(isStore, miss bool) {
	if isStore {
		s.stats.StoreAccesses++
		if miss {
			s.stats.StoreMisses++
		}
	} else {
		s.stats.LoadAccesses++
		if miss {
			s.stats.LoadMisses++
		}
	}
}

// Load performs a load access at the current cycle. On a hit the data is
// ready after the hit latency; on a miss, when the line refill completes.
func (s *System) Load(addr uint64) Result {
	return s.access(addr, false)
}

// StoreCommit writes a graduating store into the cache (write-back,
// write-allocate): a hit dirties the line, a miss fetches the line and
// dirties it on arrival. ReadyAt is when the store is globally performed,
// which holds its SAQ entry until then.
func (s *System) StoreCommit(addr uint64) Result {
	return s.access(addr, true)
}

// ResetStats clears counters and bus accounting at every level (used to
// exclude warm-up from measurements). Cache and MSHR state are preserved.
func (s *System) ResetStats() {
	s.stats = Stats{}
	s.l1Stats = LevelStats{Name: s.l1Stats.Name}
	s.l1.bus.Reset()
	for i, l := range s.levels {
		s.levelStats[i] = LevelStats{Name: s.levelStats[i].Name}
		l.bus.Reset()
	}
}
