// Package mem glues the L1 data cache, the MSHRs and the L1↔L2 bus into
// the lockup-free memory subsystem of the paper's machine (Figure 2):
//
//   - L1 on-chip data cache: 64 KB direct-mapped, 32-byte lines,
//     write-back/write-allocate, 1-cycle hit, a configurable number of
//     ports (4 in the multithreaded machine, 2 in the Section-2 machine);
//   - 16 MSHRs making the cache lockup-free: misses to distinct lines
//     proceed in parallel, secondary misses merge into the pending entry;
//   - an infinite, multibanked off-chip L2 with a fixed hit latency (the
//     paper sweeps 1–256 cycles);
//   - a 16-byte/cycle bus carrying miss requests, line refills and dirty
//     write-backs.
//
// The subsystem is cycle-stepped: the core calls BeginCycle once per cycle
// (which completes fills and frees MSHRs), then issues Load/StoreCommit
// accesses, which either succeed with a data-ready cycle or report a
// structural stall (no free port, no free MSHR) to be retried next cycle.
package mem

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/queue"
)

// Config parameterises the memory subsystem.
type Config struct {
	// L1 is the data cache geometry.
	L1 cache.Config
	// Ports is the number of L1 accesses accepted per cycle.
	Ports int
	// MSHRs is the number of miss status holding registers.
	MSHRs int
	// HitLatency is the L1 hit latency in cycles.
	HitLatency int64
	// L2Latency is the L2 access latency in cycles (the paper's swept
	// parameter).
	L2Latency int64
	// BusBytesPerCycle is the L1↔L2 bus width (16 in Figure 2).
	BusBytesPerCycle int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return err
	}
	switch {
	case c.Ports <= 0:
		return fmt.Errorf("mem: ports %d must be positive", c.Ports)
	case c.MSHRs <= 0:
		return fmt.Errorf("mem: MSHRs %d must be positive", c.MSHRs)
	case c.HitLatency <= 0:
		return fmt.Errorf("mem: hit latency %d must be positive", c.HitLatency)
	case c.L2Latency <= 0:
		return fmt.Errorf("mem: L2 latency %d must be positive", c.L2Latency)
	case c.BusBytesPerCycle <= 0:
		return fmt.Errorf("mem: bus width %d must be positive", c.BusBytesPerCycle)
	}
	return nil
}

// StallReason classifies why an access could not be accepted this cycle.
type StallReason uint8

const (
	// StallNone: the access was accepted.
	StallNone StallReason = iota
	// StallPort: all L1 ports are taken this cycle.
	StallPort
	// StallMSHR: the access misses and no MSHR is free.
	StallMSHR
)

func (s StallReason) String() string {
	switch s {
	case StallNone:
		return "none"
	case StallPort:
		return "port"
	case StallMSHR:
		return "mshr"
	default:
		return fmt.Sprintf("stall(%d)", uint8(s))
	}
}

// Result reports the outcome of a cache access.
type Result struct {
	// OK reports whether the access was accepted. When false, Stall gives
	// the structural reason and the access must be retried.
	OK bool
	// Stall is the structural hazard that rejected the access.
	Stall StallReason
	// ReadyAt is the cycle the data is available (loads) or the line is
	// written (stores). Only meaningful when OK.
	ReadyAt int64
	// Miss reports whether the access missed in L1.
	Miss bool
}

// Stats aggregates memory subsystem counters. Miss counters are *primary*
// misses (one per line fetched from L2); accesses that merge into a
// pending MSHR are delayed hits and appear only in SecondaryMisses — the
// accounting Figure 1-c of the paper implies (its ratios track lines
// fetched, not stalled accesses).
type Stats struct {
	LoadAccesses    int64
	LoadMisses      int64
	StoreAccesses   int64
	StoreMisses     int64
	SecondaryMisses int64 // accesses merged into a pending MSHR (delayed hits)
	Writebacks      int64 // dirty lines written back to L2
	Fills           int64 // lines installed in L1
	PortRejects     int64 // accesses rejected for lack of a port
	MSHRRejects     int64 // accesses rejected for lack of an MSHR
}

// LoadMissRatio returns load misses / load accesses (0 if no loads).
func (s Stats) LoadMissRatio() float64 {
	if s.LoadAccesses == 0 {
		return 0
	}
	return float64(s.LoadMisses) / float64(s.LoadAccesses)
}

// StoreMissRatio returns store misses / store accesses (0 if no stores).
func (s Stats) StoreMissRatio() float64 {
	if s.StoreAccesses == 0 {
		return 0
	}
	return float64(s.StoreMisses) / float64(s.StoreAccesses)
}

type mshr struct {
	line  uint64
	fill  int64 // cycle the line is installed in L1
	dirty bool  // a store merged into this miss: mark dirty at fill
	valid bool
}

// System is the memory subsystem. Create with New; not safe for concurrent
// use (the simulator is single-goroutine by design).
type System struct {
	cfg   Config
	l1    *cache.Cache
	bus   *bus.Bus
	mshrs []mshr

	// mshrsInUse counts valid entries.
	mshrsInUse int
	// fillq holds the occupied MSHR indices in allocation order. Bus
	// reservations are monotonic (bus.Reserve never books earlier than a
	// previous reservation), so allocation order is also fill-time
	// order: BeginCycle pops due refills from the head in O(1) instead
	// of scanning the file, and the head's fill time is the exact
	// next-fill bound.
	fillq *queue.Ring[int]
	// lineIdx maps a pending line to its MSHR index for large files
	// (nil for the paper-sized 16-entry file, where walking the
	// occupied FIFO beats hashing; high thread counts scale the file
	// into the hundreds, where a linear probe per miss would be
	// quadratic in outstanding misses).
	lineIdx map[uint64]int
	// freeIdx stacks the free MSHR indices.
	freeIdx []int

	now       int64
	portsUsed int
	stats     Stats
}

// New builds a memory subsystem. It returns an error for invalid
// configurations.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		l1:      cache.New(cfg.L1),
		bus:     bus.New(cfg.BusBytesPerCycle),
		mshrs:   make([]mshr, cfg.MSHRs),
		fillq:   queue.New[int](cfg.MSHRs),
		freeIdx: make([]int, 0, cfg.MSHRs),
	}
	if cfg.MSHRs > smallMSHRFile {
		s.lineIdx = make(map[uint64]int, cfg.MSHRs)
	}
	// Pop order is ascending index for determinism.
	for i := cfg.MSHRs - 1; i >= 0; i-- {
		s.freeIdx = append(s.freeIdx, i)
	}
	return s, nil
}

// smallMSHRFile is the file size up to which findMSHR's FIFO walk beats
// a hash lookup (the paper's machine has 16 entries; latency scaling and
// high thread counts grow the file into the hundreds).
const smallMSHRFile = 32

// Config returns the configuration.
func (s *System) Config() Config { return s.cfg }

// Bus exposes the bus for utilization reporting.
func (s *System) Bus() *bus.Bus { return s.bus }

// Cache exposes the L1 tag array (for tests and reports).
func (s *System) Cache() *cache.Cache { return s.l1 }

// Stats returns a snapshot of the counters.
func (s *System) Stats() Stats { return s.stats }

// MSHRsInUse returns the number of occupied MSHRs.
func (s *System) MSHRsInUse() int { return s.mshrsInUse }

// BeginCycle advances the subsystem to the given cycle: it releases the
// access ports and completes any refills whose data has arrived,
// installing lines in L1 (write-backs of dirty victims reserve bus
// bandwidth) and freeing their MSHRs. It returns the number of lines
// installed, which is zero on quiescent cycles.
func (s *System) BeginCycle(now int64) int {
	s.now = now
	s.portsUsed = 0
	filled := 0
	for {
		i, ok := s.fillq.Peek()
		if !ok {
			break
		}
		e := &s.mshrs[i]
		if e.fill > now {
			break // FIFO in fill order: nothing behind is due either
		}
		victim := s.l1.Fill(e.line)
		if e.dirty {
			s.l1.SetDirty(e.line)
		}
		s.stats.Fills++
		filled++
		if victim.Valid && victim.Dirty {
			// The write-back occupies the data bus for one line transfer.
			s.bus.Reserve(now, s.bus.TransferCycles(s.cfg.L1.LineBytes))
			s.stats.Writebacks++
		}
		e.valid = false
		s.mshrsInUse--
		if s.lineIdx != nil {
			delete(s.lineIdx, e.line)
		}
		s.freeIdx = append(s.freeIdx, i)
		s.fillq.Drop()
	}
	return filled
}

// findMSHR returns the pending entry for line, if any. Small files walk
// the fill FIFO, which holds exactly the occupied entries (usually a
// handful); large files use the line index.
func (s *System) findMSHR(line uint64) *mshr {
	if s.lineIdx != nil {
		if i, ok := s.lineIdx[line]; ok {
			return &s.mshrs[i]
		}
		return nil
	}
	var found *mshr
	s.fillq.Scan(func(i int) bool {
		if e := &s.mshrs[i]; e.line == line {
			found = e
			return false
		}
		return true
	})
	return found
}

// access implements the shared load/store path. isStore selects
// write-allocate dirty marking.
func (s *System) access(addr uint64, isStore bool) Result {
	if s.portsUsed >= s.cfg.Ports {
		s.stats.PortRejects++
		return Result{Stall: StallPort}
	}
	line := s.l1.LineAddr(addr)
	if s.l1.Lookup(addr) {
		s.portsUsed++
		s.count(isStore, false)
		if isStore {
			s.l1.SetDirty(addr)
		}
		return Result{OK: true, ReadyAt: s.now + s.cfg.HitLatency}
	}
	// Miss. Merge into a pending MSHR if one covers the line: a delayed
	// hit (no new L2 traffic), but the data still arrives at fill time.
	if e := s.findMSHR(line); e != nil {
		s.portsUsed++
		s.count(isStore, false)
		s.stats.SecondaryMisses++
		if isStore {
			e.dirty = true
		}
		return Result{OK: true, ReadyAt: e.fill, Miss: true}
	}
	if len(s.freeIdx) == 0 {
		s.stats.MSHRRejects++
		return Result{Stall: StallMSHR}
	}
	idx := s.freeIdx[len(s.freeIdx)-1]
	s.freeIdx = s.freeIdx[:len(s.freeIdx)-1]
	e := &s.mshrs[idx]
	s.portsUsed++
	s.count(isStore, true)
	// Tag probe (hit latency), one cycle for the request on the address/
	// command channel, the L2 access, then the line returns over the
	// 16-byte data bus (the contended resource; requests ride a separate
	// command channel in this split-transaction interface, so L2 accesses
	// from different MSHRs overlap).
	reqDone := s.now + s.cfg.HitLatency + 1
	l2Done := reqDone + s.cfg.L2Latency
	fill := s.bus.Reserve(l2Done, s.bus.TransferCycles(s.cfg.L1.LineBytes))
	*e = mshr{line: line, fill: fill, dirty: isStore, valid: true}
	if s.lineIdx != nil {
		s.lineIdx[line] = idx
	}
	s.mshrsInUse++
	if !s.fillq.Push(idx) {
		panic("mem: fill queue full despite a free MSHR")
	}
	return Result{OK: true, ReadyAt: fill, Miss: true}
}

func (s *System) count(isStore, miss bool) {
	if isStore {
		s.stats.StoreAccesses++
		if miss {
			s.stats.StoreMisses++
		}
	} else {
		s.stats.LoadAccesses++
		if miss {
			s.stats.LoadMisses++
		}
	}
}

// Load performs a load access at the current cycle. On a hit the data is
// ready after the hit latency; on a miss, when the line refill completes.
func (s *System) Load(addr uint64) Result {
	return s.access(addr, false)
}

// StoreCommit writes a graduating store into the cache (write-back,
// write-allocate): a hit dirties the line, a miss fetches the line and
// dirties it on arrival. ReadyAt is when the store is globally performed,
// which holds its SAQ entry until then.
func (s *System) StoreCommit(addr uint64) Result {
	return s.access(addr, true)
}

// ResetStats clears counters and bus accounting (used to exclude warm-up
// from measurements). Cache and MSHR state are preserved.
func (s *System) ResetStats() {
	s.stats = Stats{}
	s.bus.Reset()
}
