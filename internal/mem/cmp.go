package mem

import "fmt"

// This file composes several cores' private memory systems over shared
// lower levels: the Interconnect owns everything below the private L1s —
// the finite shared hierarchy (or one private chain per core over the
// shared DRAM, for the private-L2 ablation axis), plus the
// write-invalidate coherence fabric between the L1s.
//
// Coherence is deliberately simple (and documented in DESIGN.md §9): on
// every store a core performs, the interconnect eagerly invalidates the
// line in every other core's private levels — a cached copy dies (a
// dirty one is first written back downstream, so the modified data
// migrates to the shared level), and an in-flight fill is cancelled
// (mshr.cancelled). Reads do not snoop dirty remote copies; the model
// assumes the shared level is kept current by the invalidation
// write-backs, which is the inclusive-hierarchy approximation. All
// traffic timing is eager, matching the eager tag-probe approximation
// the single-core miss pipeline already uses.

// Interconnect is the shared memory fabric of a chip multiprocessor:
// the levels below the cores' private L1s, and the coherence broadcast
// between them. Create with NewInterconnect, then attach one core per
// System slot. Like System, it is single-goroutine by design: the CMP
// driver ticks cores in a fixed order, so shared-level arbitration is
// first-come-first-served by core index within a cycle — deterministic,
// and independent of host scheduling.
type Interconnect struct {
	cfg   Config
	cores int

	// levels is the shared chain under every L1 (levels[0] is the shared
	// L2), nil with PrivateHierarchy or the flat model.
	levels     []*level
	levelStats []LevelStats
	// priv[c] is core c's private chain over the shared DRAM
	// (PrivateHierarchy only).
	priv      [][]*level
	privStats [][]LevelStats

	systems []*System

	// now mirrors the current cycle (maintained by BeginCycle) so
	// coherence traffic triggered from any core's access path books bus
	// time at the right cycle.
	now int64

	// disjoint declares that no line is ever cached by two cores (the
	// workload gives every context a private address space, as the
	// built-in generators do). The *functional* warm path then skips its
	// write-invalidate broadcast — a pure optimization, equivalent by
	// construction since the broadcast could never find a remote copy.
	// The timed coherence path is untouched: its probes book counters
	// and the equivalence is the workload's claim, not the machine's.
	disjoint bool

	// Epoch-parallel execution state (see epoch.go and DESIGN.md §12).
	// epochMode: the fabric is rewired for epoch runs (private chains
	// advance in their cores' System.BeginCycle; shared fills feed
	// fillCal instead of the per-core calendar broadcast). epochActive:
	// an epoch is open right now — L1 traffic into the shared chain
	// detours through the EpochHandlers and coherence broadcasts are
	// suppressed (sound only under the disjoint promise, which the
	// epoch runner requires).
	epochMode   bool
	epochActive bool
	fillCal     fillHeap
}

// NewInterconnect builds the shared fabric for the given number of
// cores. Each core's private System is pre-built; fetch it with System.
func NewInterconnect(cfg Config, cores int) (*Interconnect, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		return nil, fmt.Errorf("mem: interconnect needs at least one core, got %d", cores)
	}
	ic := &Interconnect{cfg: cfg, cores: cores}

	// Backend below each core's L1, by mode.
	lower := make([]backend, cores)
	switch {
	case len(cfg.Hierarchy) == 0:
		// Flat model: the infinite L2 accepts every request — the cores
		// contend on nothing below their private buses, so one stateless
		// terminus serves all.
		for c := range lower {
			lower[c] = terminus{latency: cfg.L2Latency}
		}
	case cfg.PrivateHierarchy:
		// One private chain per core over the shared (infinite-bandwidth)
		// DRAM; each chain's buses model its own refill/write-back paths.
		ic.priv = make([][]*level, cores)
		ic.privStats = make([][]LevelStats, cores)
		n := len(cfg.Hierarchy)
		for c := 0; c < cores; c++ {
			var down backend = terminus{latency: cfg.DRAMLatency}
			ic.privStats[c] = make([]LevelStats, n)
			ic.priv[c] = make([]*level, n)
			for i := n - 1; i >= 0; i-- {
				spec := cfg.Hierarchy[i]
				ic.privStats[c][i].Name = fmt.Sprintf("c%d.%s", c, levelName(spec, i))
				ic.priv[c][i] = newLevel(spec.Cache, spec.MSHRs, spec.HitLatency,
					spec.BusBytesPerCycle, down, &ic.privStats[c][i])
				down = ic.priv[c][i]
			}
			lower[c] = down
		}
	default:
		// One shared chain: every core's L1 misses into the same levels,
		// contending for their MSHRs and buses.
		var down backend = terminus{latency: cfg.DRAMLatency}
		n := len(cfg.Hierarchy)
		ic.levelStats = make([]LevelStats, n)
		ic.levels = make([]*level, n)
		for i := n - 1; i >= 0; i-- {
			spec := cfg.Hierarchy[i]
			ic.levelStats[i].Name = levelName(spec, i)
			ic.levels[i] = newLevel(spec.Cache, spec.MSHRs, spec.HitLatency,
				spec.BusBytesPerCycle, down, &ic.levelStats[i])
			down = ic.levels[i]
		}
		for c := range lower {
			lower[c] = down
		}
	}

	ic.systems = make([]*System, cores)
	for c := 0; c < cores; c++ {
		s := &System{cfg: cfg, ic: ic, coreID: c}
		s.l1Stats.Name = fmt.Sprintf("c%d.L1", c)
		s.l1 = newLevel(cfg.L1, cfg.MSHRs, cfg.HitLatency, cfg.BusBytesPerCycle, lower[c], &s.l1Stats)
		ic.systems[c] = s
	}
	return ic, nil
}

// Cores returns the number of attached cores.
func (ic *Interconnect) Cores() int { return ic.cores }

// System returns core c's private memory system (L1 + ports + MSHRs over
// the shared fabric).
func (ic *Interconnect) System(c int) *System { return ic.systems[c] }

// SetDisjointAddressSpaces declares (or retracts) the workload's promise
// that no two cores ever touch the same line, letting the functional
// warm path skip its invalidate broadcast (see the disjoint field).
func (ic *Interconnect) SetDisjointAddressSpaces(v bool) { ic.disjoint = v }

// eachLevel visits every level the interconnect owns (shared chain or
// all private chains).
func (ic *Interconnect) eachLevel(fn func(*level)) {
	for _, l := range ic.levels {
		fn(l)
	}
	for _, chain := range ic.priv {
		for _, l := range chain {
			fn(l)
		}
	}
}

// SetFillScheduler registers fn with every level the interconnect owns,
// exactly as System.SetFillScheduler does for a single core's hierarchy:
// the CMP driver registers the cores' event calendars here so
// fast-forwarding never skips a shared-level (or private-L2) fill cycle.
func (ic *Interconnect) SetFillScheduler(fn func(at int64)) {
	ic.eachLevel(func(l *level) { l.sched = fn })
}

// BeginCycle advances the fabric to the given cycle, completing due
// refills bottom-up in every chain (private chains in core order). The
// cores' own L1s advance in their System.BeginCycle calls, which the CMP
// driver makes after this. Returns the number of lines installed (or
// cancelled fills retired), zero on quiescent cycles.
func (ic *Interconnect) BeginCycle(now int64) int {
	ic.now = now
	filled := 0
	for i := len(ic.levels) - 1; i >= 0; i-- {
		filled += ic.levels[i].beginCycle(now)
	}
	if ic.epochMode {
		// Private chains advance in their cores' System.BeginCycle, and
		// shared fills just completed are spent calendar entries.
		ic.fillCal.dropThrough(now)
		return filled
	}
	for _, chain := range ic.priv {
		for i := len(chain) - 1; i >= 0; i-- {
			filled += chain[i].beginCycle(now)
		}
	}
	return filled
}

// invalidateRemote broadcasts a write-invalidation for line from core
// `from` to every other core's private levels (L1, and the private chain
// when the hierarchy is replicated). Called from the writing core's
// access path at the current cycle.
func (ic *Interconnect) invalidateRemote(from int, line uint64) {
	if ic.epochActive {
		// Parallel epoch: a probe would race the remote cores' private
		// tags. The epoch runner requires disjoint address spaces, under
		// which every probe provably finds nothing and mutates nothing
		// (invalidate on an absent line is side-effect-free), so the
		// skip is equivalent by construction.
		return
	}
	for c, s := range ic.systems {
		if c == from {
			continue
		}
		s.l1.invalidate(line, ic.now)
	}
	for c, chain := range ic.priv {
		if c == from {
			continue
		}
		for _, l := range chain {
			l.invalidate(line, ic.now)
		}
	}
}

// LevelStats snapshots the interconnect-owned levels' counters with
// downstream-bus utilization over the measurement window ending at cycle
// end: the shared chain top-down, or each core's private chain (core
// order, top-down within a core). Nil in the flat model.
func (ic *Interconnect) LevelStats(end, window int64) []LevelStats {
	var out []LevelStats
	ic.eachLevel(func(l *level) {
		ls := *l.lstats
		ls.BusUtilization = l.bus.Utilization(end, window)
		out = append(out, ls)
	})
	return out
}

// ResetStats clears the interconnect-owned levels' counters and bus
// accounting (names survive); the cores' Systems reset their own L1s.
func (ic *Interconnect) ResetStats() {
	ic.eachLevel(func(l *level) {
		*l.lstats = LevelStats{Name: l.lstats.Name}
		l.bus.Reset()
	})
}
