package mem

// This file is the functional warm path behind the simulator's sampling
// gaps: Warm advances the cache hierarchy's *architectural* state for one
// memory reference — tags, LRU order, dirty bits, down the whole chain —
// with none of the timing machinery (no ports, no MSHRs, no buses, no
// latencies) and none of the statistics. The sampling driver drains the
// pipeline first, so Warm never races an in-flight timed fill; it simply
// installs lines the way the timed path eventually would, keeping the
// caches hot across a fast-forwarded gap so the next measured unit does
// not start cold (the cold-start bias SMARTS warming exists to kill).

// warmChain returns the finite levels below this core's L1 (the shared
// chain, this core's private chain, or nothing in the flat model).
func (s *System) warmChain() []*level {
	if s.ic != nil {
		if s.ic.priv != nil {
			return s.ic.priv[s.coreID]
		}
		return s.ic.levels
	}
	return s.levels
}

// Warm touches addr functionally: a store dirties the line, a miss
// installs it in the L1 and allocates it down the chain to the first
// level that already holds it. Dirty L1 victims write back into the
// level below (allocate + dirty, mirroring the timed write-allocate
// path); victims of deeper levels are dropped — DRAM backs everything,
// so losing them only costs warm-up fidelity, never correctness. On CMP
// machines a store also runs the write-invalidate broadcast so remote
// copies die exactly as they would in the timed model.
func (s *System) Warm(addr uint64, store bool) {
	l1 := s.l1.tags
	line := l1.LineAddr(addr)
	if !l1.Lookup(addr) {
		chain := s.warmChain()
		for _, l := range chain {
			if l.tags.Lookup(line) {
				break
			}
			l.tags.Fill(line)
		}
		if v := l1.Fill(line); v.Valid && v.Dirty && len(chain) > 0 {
			if !chain[0].tags.Lookup(v.Addr) {
				chain[0].tags.Fill(v.Addr)
			}
			chain[0].tags.SetDirty(v.Addr)
		}
	}
	if store {
		l1.SetDirty(line)
		// With a declared-disjoint workload no remote copy can exist, so
		// the broadcast is skipped — the dominant cost of warming a
		// many-core machine through a sampling gap.
		if s.ic != nil && !s.ic.disjoint {
			s.ic.warmInvalidate(s.coreID, line)
		}
	}
}

// warmInvalidate is the functional twin of invalidateRemote: remote
// copies of the line die (tags only — no bus time, no counters), and a
// dirty remote copy migrates into the top shared level when there is
// one, matching the timed model's write-back-on-invalidate migration.
func (ic *Interconnect) warmInvalidate(from int, line uint64) {
	for c, s := range ic.systems {
		if c == from {
			continue
		}
		if dirty, present := s.l1.tags.Invalidate(line); present && dirty && len(ic.levels) > 0 {
			if !ic.levels[0].tags.Lookup(line) {
				ic.levels[0].tags.Fill(line)
			}
			ic.levels[0].tags.SetDirty(line)
		}
	}
	for c, chain := range ic.priv {
		if c == from {
			continue
		}
		for _, l := range chain {
			l.tags.Invalidate(line)
		}
	}
}

// MergeCounters sums another window's counters into l (Name and the
// derived BusUtilization are left to the caller): sampled runs aggregate
// per-unit level snapshots into one report.
func (l *LevelStats) MergeCounters(o LevelStats) {
	l.Accesses += o.Accesses
	l.Misses += o.Misses
	l.SecondaryMisses += o.SecondaryMisses
	l.MSHRRejects += o.MSHRRejects
	l.Fills += o.Fills
	l.WriteAllocates += o.WriteAllocates
	l.Writebacks += o.Writebacks
	l.Invalidations += o.Invalidations
	l.CoherenceWritebacks += o.CoherenceWritebacks
}
