package mem

// Epoch mode: support for deterministic parallel CMP simulation
// (DESIGN.md §12). The CMP driver shards cores across goroutines in
// epochs; everything that crosses the interconnect — shared-chain
// fetches, dirty-victim write-backs into the shared chain, and the
// shared levels' own internally-scheduled fills — must still happen at
// exact cycles in the serial lockstep order (FCFS by core index within
// a cycle). This file provides the hooks the core-side epoch
// coordinator drives:
//
//   - EnableEpochMode rewires the fabric once per run: each core's
//     private chain (PrivateHierarchy) is moved into its own
//     System.BeginCycle so a worker goroutine advances it without
//     touching shared state, and with a shared chain each L1's
//     downstream backend is wrapped in an epochPort that detours
//     traffic to the core's EpochHandler while an epoch is open.
//   - The interconnect keeps its own calendar of pending shared-chain
//     fill cycles (fillCal): during an epoch the coordinator applies
//     due fills at their exact cycles with ApplySharedCycle, and on the
//     serial path the CMP driver clamps fast-forwards with
//     NextSharedFillAt (per-core calendars no longer hear about shared
//     fills in epoch mode).
//   - SharedFetch/SharedWriteback let the coordinator replay a parked
//     core's crossing against the real shared chain in barrier order.
//
// Epoch mode requires the workload's disjoint-address-space promise:
// invalidateRemote is skipped while an epoch is open (a probe could
// race a run-ahead core's private tags), which is equivalent by
// construction only when no line is ever cached by two cores — the
// same claim the functional warm path's skip rests on.

// EpochHandler intercepts one core's shared-chain traffic during a
// parallel epoch. Fetches park the calling goroutine until the epoch
// coordinator applies the request in deterministic order; write-backs
// are fire-and-forget and are buffered, cycle-stamped, for the
// barrier. now is the calling core's current cycle.
type EpochHandler interface {
	EpochFetch(line uint64, now, ready int64) (availAt int64, ok bool)
	EpochWriteback(line uint64, now int64)
}

// epochPort wraps the real backend below one core's L1. While an epoch
// is open it detours traffic to the core's EpochHandler; otherwise it
// is a transparent pass-through, so the serial stretches between
// epochs (and every run without -parallel) hit the chain directly.
type epochPort struct {
	ic   *Interconnect
	sys  *System
	h    EpochHandler
	real backend
}

func (p *epochPort) fetch(line uint64, ready int64) (int64, bool) {
	if !p.ic.epochActive {
		return p.real.fetch(line, ready)
	}
	return p.h.EpochFetch(line, p.sys.now, ready)
}

func (p *epochPort) writeback(line uint64, now int64) {
	if !p.ic.epochActive {
		p.real.writeback(line, now)
		return
	}
	p.h.EpochWriteback(line, now)
}

// EnableEpochMode rewires the fabric for epoch-parallel execution.
// Called at most once, before the first cycle. handlers[c] intercepts
// core c's shared-chain traffic during epochs (unused without a shared
// chain); coreSched(c) returns the scheduling hook for core c's event
// calendar, which private-chain fills are rerouted to (the CMP
// driver's broadcast hook is replaced: shared fills go to the
// interconnect's own calendar instead, see NextSharedFillAt).
func (ic *Interconnect) EnableEpochMode(handlers []EpochHandler, coreSched func(c int) func(at int64)) {
	if ic.epochMode {
		return
	}
	ic.epochMode = true
	// Private chains: advancement moves from BeginCycle into each
	// core's System.BeginCycle, and fills schedule into that core's own
	// calendar — the chain is private state, so its owner worker can
	// drive it with no cross-core traffic at all.
	for c, chain := range ic.priv {
		ic.systems[c].chain = chain
		fn := coreSched(c)
		for _, l := range chain {
			l.sched = fn
		}
	}
	// Shared chain: wrap every L1's backend and reroute the shared
	// levels' fill events to the interconnect's own calendar.
	if len(ic.levels) > 0 {
		for c, s := range ic.systems {
			s.l1.next = &epochPort{ic: ic, sys: s, h: handlers[c], real: s.l1.next}
		}
		for _, l := range ic.levels {
			l.sched = ic.scheduleSharedFill
			// Seed the calendar from fills already in flight (none when
			// enabling before the first cycle, but exactness is cheap).
			l.fillq.Scan(func(i int) bool {
				ic.scheduleSharedFill(l.mshrs[i].fill)
				return true
			})
		}
	}
}

// EpochMode reports whether EnableEpochMode has run.
func (ic *Interconnect) EpochMode() bool { return ic.epochMode }

// EpochSetActive opens (true) or closes (false) an epoch: while open,
// L1 traffic into the shared chain detours through the EpochHandlers
// and coherence broadcasts are suppressed. Called by the epoch
// coordinator with all worker goroutines parked, so the flag needs no
// synchronization beyond the coordinator's own channels.
func (ic *Interconnect) EpochSetActive(v bool) { ic.epochActive = v }

// scheduleSharedFill records a future shared-chain fill cycle.
func (ic *Interconnect) scheduleSharedFill(at int64) { ic.fillCal.push(at) }

// NextSharedFillAt returns the earliest pending shared-chain fill
// cycle, if any. The serial CMP fast-forward clamps on it in epoch
// mode, standing in for the per-core calendar broadcast.
func (ic *Interconnect) NextSharedFillAt() (int64, bool) {
	if len(ic.fillCal) == 0 {
		return 0, false
	}
	return ic.fillCal[0], true
}

// ApplySharedCycle advances the shared chain to the given cycle,
// completing due refills bottom-up exactly as the serial BeginCycle
// does. The epoch coordinator calls it for every pending fill cycle in
// order, so dirty-victim bus bookings happen at their true cycles.
func (ic *Interconnect) ApplySharedCycle(now int64) int {
	ic.now = now
	filled := 0
	for i := len(ic.levels) - 1; i >= 0; i-- {
		filled += ic.levels[i].beginCycle(now)
	}
	ic.fillCal.dropThrough(now)
	return filled
}

// SharedFetch replays a parked core's shared-chain fetch against the
// real chain: the coordinator calls it in (cycle, core-index) barrier
// order, which is exactly the serial arbitration order.
func (ic *Interconnect) SharedFetch(now int64, line uint64, ready int64) (int64, bool) {
	ic.now = now
	return ic.levels[0].fetch(line, ready)
}

// SharedWriteback replays a buffered dirty-victim write-back into the
// shared chain at its recorded cycle.
func (ic *Interconnect) SharedWriteback(now int64, line uint64) {
	ic.now = now
	ic.levels[0].writeback(line, now)
}

// fillHeap is a plain min-heap of pending shared-fill cycles.
// Duplicates are fine (popping both is harmless).
type fillHeap []int64

func (h *fillHeap) push(at int64) {
	*h = append(*h, at)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *fillHeap) dropThrough(now int64) {
	for len(*h) > 0 && (*h)[0] <= now {
		h.pop()
	}
}

func (h *fillHeap) pop() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l] < s[min] {
			min = l
		}
		if r < n && s[r] < s[min] {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
}
