package mem

import (
	"testing"

	"repro/internal/cache"
)

// cmpConfig is a two-level CMP configuration with a small direct-mapped
// L1 (8 KB, 256 sets) under a 64 KB direct-mapped shared L2 (2048
// sets): the size split lets tests pick addresses that conflict in one
// level but not the other.
func cmpConfig() Config {
	c := testConfig()
	c.L1 = cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 1}
	c.L2Latency = 0
	c.Hierarchy = []LevelSpec{l2Spec(64*1024, 1, 16)}
	c.DRAMLatency = 64
	return c
}

// cmpHarness drives an Interconnect plus its per-core Systems cycle by
// cycle, the way the CMP core driver does.
type cmpHarness struct {
	ic  *Interconnect
	sys []*System
	now int64
}

func newCMPHarness(t *testing.T, cfg Config, cores int) *cmpHarness {
	t.Helper()
	ic, err := NewInterconnect(cfg, cores)
	if err != nil {
		t.Fatal(err)
	}
	h := &cmpHarness{ic: ic}
	for c := 0; c < cores; c++ {
		h.sys = append(h.sys, ic.System(c))
	}
	return h
}

// tick advances one cycle: fabric first, then every core's L1 — the CMP
// driver's order.
func (h *cmpHarness) tick() {
	h.now++
	h.ic.BeginCycle(h.now)
	for _, s := range h.sys {
		s.BeginCycle(h.now)
	}
}

// runTo ticks until the given cycle.
func (h *cmpHarness) runTo(cycle int64) {
	for h.now < cycle {
		h.tick()
	}
}

// load issues a load on core c and fails the test if it is rejected.
func (h *cmpHarness) load(t *testing.T, c int, addr uint64) Result {
	t.Helper()
	r := h.sys[c].Load(addr)
	if !r.OK {
		t.Fatalf("cycle %d: core %d load %#x rejected: %v", h.now, c, addr, r.Stall)
	}
	return r
}

// store issues a store commit on core c and fails the test if rejected.
func (h *cmpHarness) store(t *testing.T, c int, addr uint64) Result {
	t.Helper()
	r := h.sys[c].StoreCommit(addr)
	if !r.OK {
		t.Fatalf("cycle %d: core %d store %#x rejected: %v", h.now, c, addr, r.Stall)
	}
	return r
}

func TestInterconnectConstruction(t *testing.T) {
	if _, err := NewInterconnect(cmpConfig(), 0); err == nil {
		t.Error("zero cores accepted")
	}
	bad := cmpConfig()
	bad.Ports = 0
	if _, err := NewInterconnect(bad, 2); err == nil {
		t.Error("invalid config accepted")
	}

	// Private hierarchies need a hierarchy to replicate.
	flatPriv := testConfig()
	flatPriv.PrivateHierarchy = true
	if _, err := NewInterconnect(flatPriv, 2); err == nil {
		t.Error("flat private hierarchy accepted")
	}

	ic, err := NewInterconnect(cmpConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Cores() != 2 {
		t.Fatalf("Cores() = %d", ic.Cores())
	}
	for c := 0; c < 2; c++ {
		s := ic.System(c)
		if s == nil {
			t.Fatalf("core %d has no System", c)
		}
		if got := s.l1Stats.Name; got != map[int]string{0: "c0.L1", 1: "c1.L1"}[c] {
			t.Errorf("core %d L1 name = %q", c, got)
		}
	}
	// Shared mode: one L2 entry, no per-core chains.
	if ls := ic.LevelStats(0, 1); len(ls) != 1 || ls[0].Name != "L2" {
		t.Fatalf("shared LevelStats = %+v", ls)
	}

	priv := cmpConfig()
	priv.PrivateHierarchy = true
	icp, err := NewInterconnect(priv, 2)
	if err != nil {
		t.Fatal(err)
	}
	ls := icp.LevelStats(0, 1)
	if len(ls) != 2 || ls[0].Name != "c0.L2" || ls[1].Name != "c1.L2" {
		t.Fatalf("private LevelStats = %+v", ls)
	}
}

// TestCoherenceInvalidatesCleanRemoteCopy: a store on one core kills the
// other core's cached copy, so its next access misses again.
func TestCoherenceInvalidatesCleanRemoteCopy(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)
	const addr = 0x40

	h.tick()
	r := h.load(t, 1, addr)
	if !r.Miss {
		t.Fatal("cold load did not miss")
	}
	h.runTo(r.ReadyAt)
	h.tick()
	if r := h.load(t, 1, addr); r.Miss {
		t.Fatal("line not installed in core 1's L1")
	}

	// Core 0 writes the line: core 1's copy must die.
	h.tick()
	h.store(t, 0, addr)
	st1 := h.sys[1].l1Stats
	if st1.Invalidations != 1 {
		t.Fatalf("core 1 invalidations = %d, want 1", st1.Invalidations)
	}
	if st1.CoherenceWritebacks != 0 {
		t.Fatalf("clean copy produced %d coherence write-backs", st1.CoherenceWritebacks)
	}
	h.tick()
	if r := h.load(t, 1, addr); !r.Miss {
		t.Fatal("invalidated line still hit in core 1's L1")
	}
	// The writing core keeps its own copy.
	if h.sys[0].l1Stats.Invalidations != 0 {
		t.Fatal("the writer invalidated its own copy")
	}
}

// TestCoherenceWritesBackDirtyRemoteCopy: invalidating a dirty copy
// first pushes the modified line downstream (a coherence write-back), so
// the data migrates to the shared level instead of vanishing.
func TestCoherenceWritesBackDirtyRemoteCopy(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)
	const addr = 0x40

	h.tick()
	r := h.store(t, 1, addr) // core 1 dirties the line
	h.runTo(r.ReadyAt)
	h.tick()
	h.store(t, 1, addr) // hit: definitely dirty in core 1's L1

	h.tick()
	h.store(t, 0, addr)
	st1 := h.sys[1].l1Stats
	if st1.Invalidations == 0 {
		t.Fatal("dirty remote copy not invalidated")
	}
	if st1.CoherenceWritebacks != 1 {
		t.Fatalf("coherence write-backs = %d, want 1", st1.CoherenceWritebacks)
	}
}

// TestInvalidateRacesInFlightFill (satellite edge case): a store hitting
// a line another core is still fetching cancels the fill in flight — the
// transfer completes, frees the MSHR, but installs nothing.
func TestInvalidateRacesInFlightFill(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)
	const addr = 0x40

	h.tick()
	r := h.load(t, 1, addr)
	if !r.Miss {
		t.Fatal("cold load did not miss")
	}
	// Invalidate while the fill is in flight.
	h.tick()
	h.store(t, 0, addr)
	if h.sys[1].l1Stats.Invalidations != 1 {
		t.Fatalf("in-flight fill not invalidated (invals = %d)", h.sys[1].l1Stats.Invalidations)
	}

	fillsBefore := h.sys[1].l1Stats.Fills
	if h.sys[1].MSHRsInUse() != 1 {
		t.Fatalf("core 1 MSHRs in use = %d, want 1", h.sys[1].MSHRsInUse())
	}
	h.runTo(r.ReadyAt)
	if h.sys[1].MSHRsInUse() != 0 {
		t.Fatal("cancelled fill did not free its MSHR")
	}
	if got := h.sys[1].l1Stats.Fills; got != fillsBefore {
		t.Fatalf("cancelled fill installed a line (fills %d -> %d)", fillsBefore, got)
	}
	// The line is dead on arrival: the next access misses again.
	h.tick()
	if r := h.load(t, 1, addr); !r.Miss {
		t.Fatal("cancelled fill still installed the line")
	}
}

// TestMergeReArmsCancelledFill: an access merging into a cancelled MSHR
// is a fresh request for the line — the same in-flight transfer serves
// it and the install is re-armed.
func TestMergeReArmsCancelledFill(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)
	const addr = 0x40

	h.tick()
	r := h.load(t, 1, addr)
	h.tick()
	h.store(t, 0, addr) // cancel in flight
	h.tick()
	r2 := h.load(t, 1, addr) // secondary miss: re-arms the install
	if !r2.Miss {
		t.Fatal("merge into pending MSHR not a delayed hit")
	}
	if h.sys[1].stats.SecondaryMisses != 1 {
		t.Fatalf("secondary misses = %d, want 1", h.sys[1].stats.SecondaryMisses)
	}
	h.runTo(r.ReadyAt)
	h.tick()
	if r := h.load(t, 1, addr); r.Miss {
		t.Fatal("re-armed fill did not install the line")
	}
}

// TestSharedMSHRExhaustionTwoCores (satellite edge case): with a single
// shared-L2 MSHR, a second and third primary miss — one from each core —
// both bounce with StallLowerMSHR, leaving no partial state anywhere;
// after the fill frees the MSHR, one retry wins and the other keeps
// stalling.
func TestSharedMSHRExhaustionTwoCores(t *testing.T) {
	cfg := cmpConfig()
	cfg.Hierarchy[0].MSHRs = 1
	h := newCMPHarness(t, cfg, 2)
	const (
		a = 0x40
		b = 0x10040
		c = 0x20040
	)

	h.tick()
	r := h.load(t, 0, a) // takes the one L2 MSHR
	if !r.Miss {
		t.Fatal("cold load did not miss")
	}

	h.tick()
	mshrs0, mshrs1 := h.sys[0].MSHRsInUse(), h.sys[1].MSHRsInUse()
	r0 := h.sys[0].Load(b)
	r1 := h.sys[1].Load(c)
	if r0.OK || r0.Stall != StallLowerMSHR {
		t.Fatalf("core 0 second miss = %+v, want StallLowerMSHR", r0)
	}
	if r1.OK || r1.Stall != StallLowerMSHR {
		t.Fatalf("core 1 concurrent miss = %+v, want StallLowerMSHR", r1)
	}
	// Rejection is stateless: neither L1 allocated an MSHR.
	if h.sys[0].MSHRsInUse() != mshrs0 || h.sys[1].MSHRsInUse() != mshrs1 {
		t.Fatal("rejected access left an L1 MSHR allocated")
	}
	l2 := h.ic.LevelStats(h.now, h.now)[0]
	if l2.MSHRRejects != 2 {
		t.Fatalf("L2 MSHR rejects = %d, want 2", l2.MSHRRejects)
	}

	// After the fill the MSHR frees; exactly one retry can win.
	h.runTo(r.ReadyAt)
	h.tick()
	r0 = h.sys[0].Load(b)
	if !r0.OK || !r0.Miss {
		t.Fatalf("core 0 retry after fill = %+v", r0)
	}
	r1 = h.sys[1].Load(c)
	if r1.OK || r1.Stall != StallLowerMSHR {
		t.Fatalf("core 1 retry with the MSHR re-taken = %+v, want StallLowerMSHR", r1)
	}
}

// TestDirtyEvictionDuringSecondaryMerge (satellite edge case): a shared-
// L2 fill whose MSHR collected a secondary miss from another core evicts
// a dirty victim — the write-back books the memory bus and travels to
// DRAM while both cores' delayed hits are served.
func TestDirtyEvictionDuringSecondaryMerge(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)
	const (
		a = 0x0     // L1 set 0, L2 set 0
		b = 0x2000  // L1 set 0 (evicts a), L2 set 256
		c = 0x10000 // L1 set 0, L2 set 0 (evicts a from L2)
	)

	// Dirty a in the L2: store it on core 0, then evict it from core 0's
	// L1 (same L1 set) so the dirty line writes back into the L2.
	h.tick()
	r := h.store(t, 0, a)
	h.runTo(r.ReadyAt)
	h.tick()
	r = h.load(t, 0, b)
	h.runTo(r.ReadyAt)
	l2 := h.ic.LevelStats(h.now, h.now)[0]
	if l2.Writebacks != 0 {
		t.Fatalf("premature L2 write-back (%d)", l2.Writebacks)
	}

	// Core 0 misses on c (same L2 set as dirty a): L2 primary miss.
	h.tick()
	rc := h.load(t, 0, c)
	if !rc.Miss {
		t.Fatal("load of c did not miss")
	}
	// Core 1 requests c while the L2 fetch is pending: secondary miss at
	// the shared level.
	h.tick()
	rc1 := h.load(t, 1, c)
	if !rc1.Miss {
		t.Fatal("core 1 load of c did not miss")
	}
	l2 = h.ic.LevelStats(h.now, h.now)[0]
	if l2.SecondaryMisses != 1 {
		t.Fatalf("L2 secondary misses = %d, want 1", l2.SecondaryMisses)
	}

	// The fill installs c and evicts dirty a to DRAM.
	end := rc.ReadyAt
	if rc1.ReadyAt > end {
		end = rc1.ReadyAt
	}
	h.runTo(end)
	l2 = h.ic.LevelStats(h.now, h.now)[0]
	if l2.Writebacks != 1 {
		t.Fatalf("L2 write-backs after fill = %d, want 1 (dirty victim)", l2.Writebacks)
	}
	// Both cores now hold c.
	h.tick()
	if r := h.load(t, 0, c); r.Miss {
		t.Fatal("core 0 lost c")
	}
	if r := h.load(t, 1, c); r.Miss {
		t.Fatal("core 1 lost c")
	}
}

// TestPrivateHierarchyIsolatesCapacity: with per-core L2s, one core's
// working set cannot evict the other's, and coherence still reaches the
// private chains.
func TestPrivateHierarchyIsolatesCapacity(t *testing.T) {
	cfg := cmpConfig()
	cfg.PrivateHierarchy = true
	h := newCMPHarness(t, cfg, 2)
	const addr = 0x40

	// Warm the line into core 1's L1 and private L2.
	h.tick()
	r := h.load(t, 1, addr)
	h.runTo(r.ReadyAt)

	// A write on core 0 invalidates both of core 1's private levels.
	h.tick()
	h.store(t, 0, addr)
	if h.sys[1].l1Stats.Invalidations != 1 {
		t.Fatalf("core 1 L1 invalidations = %d, want 1", h.sys[1].l1Stats.Invalidations)
	}
	ls := h.ic.LevelStats(h.now, h.now)
	var c1l2 LevelStats
	for _, lv := range ls {
		if lv.Name == "c1.L2" {
			c1l2 = lv
		}
	}
	if c1l2.Invalidations != 1 {
		t.Fatalf("core 1 private L2 invalidations = %d, want 1", c1l2.Invalidations)
	}
	for _, lv := range ls {
		if lv.Name == "c0.L2" && lv.Invalidations != 0 {
			t.Fatal("the writer's own private L2 was invalidated")
		}
	}
}

// TestInterconnectResetStats: counters clear, names survive, and the
// cores' Systems keep their per-core L1 names through their own resets.
func TestInterconnectResetStats(t *testing.T) {
	h := newCMPHarness(t, cmpConfig(), 2)
	h.tick()
	r := h.load(t, 0, 0x40)
	h.runTo(r.ReadyAt)

	h.ic.ResetStats()
	for _, s := range h.sys {
		s.ResetStats()
	}
	if ls := h.ic.LevelStats(h.now, 1); ls[0].Name != "L2" || ls[0].Accesses != 0 {
		t.Fatalf("L2 stats after reset = %+v", ls[0])
	}
	if h.sys[0].l1Stats.Name != "c0.L1" {
		t.Fatalf("core 0 L1 name lost on reset: %q", h.sys[0].l1Stats.Name)
	}
}
