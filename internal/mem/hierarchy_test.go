package mem

import (
	"testing"

	"repro/internal/cache"
)

// l2Spec returns a small shared-L2 spec compatible with testConfig's L1.
func l2Spec(size, assoc, mshrs int) LevelSpec {
	return LevelSpec{
		Name:             "L2",
		Cache:            cache.Config{SizeBytes: size, LineBytes: 32, Assoc: assoc},
		MSHRs:            mshrs,
		HitLatency:       16,
		BusBytesPerCycle: 16,
	}
}

// hierConfig is testConfig with a finite 256 KB shared L2 over DRAM.
func hierConfig() Config {
	c := testConfig()
	c.L2Latency = 0
	c.Hierarchy = []LevelSpec{l2Spec(256*1024, 8, 16)}
	c.DRAMLatency = 64
	return c
}

func TestHierarchyConfigValidate(t *testing.T) {
	if err := hierConfig().Validate(); err != nil {
		t.Fatalf("valid hierarchy config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"stale flat latency", func(c *Config) { c.L2Latency = 16 }},
		{"zero DRAM latency", func(c *Config) { c.DRAMLatency = 0 }},
		{"line size mismatch", func(c *Config) { c.Hierarchy[0].Cache.LineBytes = 64 }},
		{"zero level MSHRs", func(c *Config) { c.Hierarchy[0].MSHRs = 0 }},
		{"zero level hit latency", func(c *Config) { c.Hierarchy[0].HitLatency = 0 }},
		{"zero level bus", func(c *Config) { c.Hierarchy[0].BusBytesPerCycle = 0 }},
		{"bad level geometry", func(c *Config) { c.Hierarchy[0].Cache.SizeBytes = 100 }},
	}
	for _, m := range mutations {
		c := hierConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", m.name)
		}
	}
	// The flat model must reject a stray DRAM latency (it would fork the
	// content hash of identical machines).
	flat := testConfig()
	flat.DRAMLatency = 64
	if err := flat.Validate(); err == nil {
		t.Error("flat config with DRAM latency accepted")
	}
}

// TestHierarchyL2HitTiming: with the L2 hit latency equal to the flat
// model's L2 latency, an L1 miss that hits in the L2 costs exactly what
// the flat model charges: probe (1) + request (1) + array (16) +
// transfer (2).
func TestHierarchyL2HitTiming(t *testing.T) {
	s := newSys(t, hierConfig())
	flat := newSys(t, testConfig())

	s.BeginCycle(10)
	flat.BeginCycle(10)
	// Prime the L2: the first access goes to DRAM; after its L1 fill the
	// line is in both levels. Evict it from L1 only by filling the same
	// set, then re-access: an L2 hit.
	r := s.Load(0x4000)
	if !r.OK || !r.Miss {
		t.Fatalf("first access = %+v", r)
	}
	rf := flat.Load(0x4000)
	if rf.ReadyAt >= r.ReadyAt {
		t.Fatalf("DRAM-backed miss (%d) not slower than flat L2 (%d)", r.ReadyAt, rf.ReadyAt)
	}
	s.BeginCycle(r.ReadyAt)
	// Conflict line: same L1 set (64 KB direct-mapped), different L2 set
	// region — evicts 0x4000 from L1 but not from the 256 KB L2.
	r2 := s.Load(0x4000 + 64*1024)
	if !r2.OK || !r2.Miss {
		t.Fatalf("conflict access = %+v", r2)
	}
	s.BeginCycle(r2.ReadyAt)
	if s.Cache().Probe(0x4000) {
		t.Fatal("victim still in L1")
	}
	now := r2.ReadyAt
	r3 := s.Load(0x4000)
	if !r3.OK || !r3.Miss {
		t.Fatalf("re-access = %+v", r3)
	}
	want := now + 1 + 1 + 16 + 2 // probe + request + L2 array + bus transfer
	if r3.ReadyAt != want {
		t.Fatalf("L2 hit ready at %d, want %d", r3.ReadyAt, want)
	}
	ls := s.LevelStats(now, now)
	// Three L2 accesses: the two distinct-line DRAM misses plus the
	// final hit.
	if ls[0].Name != "L2" || ls[0].Accesses != 3 || ls[0].Misses != 2 {
		t.Fatalf("level stats = %+v, want 3 accesses / 2 primary misses", ls[0])
	}
}

// TestHierarchyDRAMTiming pins the full miss path: L1 probe + request,
// L2 array + request, DRAM latency, memory-bus transfer, then the L2→L1
// transfer.
func TestHierarchyDRAMTiming(t *testing.T) {
	s := newSys(t, hierConfig())
	s.BeginCycle(0)
	r := s.Load(0x8000)
	if !r.OK || !r.Miss {
		t.Fatalf("access = %+v", r)
	}
	// L1: hit latency (1) + command (1) → req at 2.
	// L2: array (16) + command (1) → DRAM request at 19.
	// DRAM: 64 → data at 83; memory bus 32B/16B = 2 → L2 fill at 85.
	// L1 bus transfer 2 → L1 fill at 87.
	if want := int64(87); r.ReadyAt != want {
		t.Fatalf("DRAM miss ready at %d, want %d", r.ReadyAt, want)
	}
}

// TestHierarchyWritebackChain: a dirty line evicted from L1
// write-allocates into the L2; a dirty line evicted from the L2 books
// the memory bus. Uses a direct-mapped 1-set-sized L2 so evictions are
// forced deterministically.
func TestHierarchyWritebackChain(t *testing.T) {
	c := testConfig()
	c.L2Latency = 0
	// L2 exactly one L1's size, direct-mapped: every L1 conflict is an
	// L2 conflict too.
	c.Hierarchy = []LevelSpec{l2Spec(64*1024, 1, 16)}
	c.DRAMLatency = 64
	s := newSys(t, c)

	const a, b = 0x1000, 0x1000 + 64*1024 // same set in both levels
	s.BeginCycle(0)
	r := s.StoreCommit(a)
	s.BeginCycle(r.ReadyAt)
	if !s.Cache().IsDirty(a) {
		t.Fatal("store did not dirty the L1 line")
	}
	// Evict a: its dirty line write-allocates into the L2's set.
	r2 := s.Load(b)
	s.BeginCycle(r2.ReadyAt)
	if got := s.Stats().Writebacks; got != 1 {
		t.Fatalf("L1 writebacks = %d, want 1", got)
	}
	ls := s.LevelStats(r2.ReadyAt, r2.ReadyAt)
	if ls[0].WriteAllocates != 1 {
		t.Fatalf("L2 write-allocates = %d, want 1 (%+v)", ls[0].WriteAllocates, ls[0])
	}
	if !s.LevelCache(0).IsDirty(a) {
		t.Fatal("written-back line not dirty in L2")
	}
	// b's fill evicted a from... no: b's L2 fill happened before a's
	// write-back arrived (the write-back allocates over b's set entry).
	// Evict the dirty a-line from the L2 by touching b again after it
	// left L1: the L2 write-allocate displaced b, so this misses through
	// to DRAM, and its L2 fill evicts the dirty a-line downstream.
	now := r2.ReadyAt
	r3 := s.Load(a) // brings a back into L1 via L2 hit; keeps L2 state
	s.BeginCycle(r3.ReadyAt)
	before := s.LevelStats(now, now)[0].Writebacks
	r4 := s.Load(b + 64*1024) // third line of the set: force the L2 eviction
	s.BeginCycle(r4.ReadyAt)
	after := s.LevelStats(r4.ReadyAt, r4.ReadyAt)[0].Writebacks
	if after != before+1 {
		t.Fatalf("L2 writebacks %d → %d, want +1 (dirty victim to DRAM)", before, after)
	}
}

// TestHierarchyLowerMSHRStall: when the L2's MSHR file is exhausted,
// further L1 misses are rejected with StallLowerMSHR, consume no L1
// MSHR, and are counted.
func TestHierarchyLowerMSHRStall(t *testing.T) {
	c := hierConfig()
	c.Hierarchy[0].MSHRs = 2
	s := newSys(t, c)
	s.BeginCycle(0)
	for i := 0; i < 2; i++ {
		if r := s.Load(uint64(0x10000 + i*32)); !r.OK {
			t.Fatalf("miss %d rejected: %+v", i, r)
		}
	}
	r := s.Load(0x20000)
	if r.OK || r.Stall != StallLowerMSHR {
		t.Fatalf("third distinct miss = %+v, want StallLowerMSHR", r)
	}
	if got := s.Stats().LowerRejects; got != 1 {
		t.Fatalf("LowerRejects = %d, want 1", got)
	}
	if got := s.MSHRsInUse(); got != 2 {
		t.Fatalf("L1 MSHRs in use = %d, want 2 (reject must not leak)", got)
	}
	ls := s.LevelStats(0, 1)
	if ls[0].MSHRRejects != 1 {
		t.Fatalf("L2 MSHRRejects = %d, want 1", ls[0].MSHRRejects)
	}
}

// TestLevelSecondaryMerge drives a level directly: two fetches of one
// line while the first is pending merge into a single downstream miss.
func TestLevelSecondaryMerge(t *testing.T) {
	var ls LevelStats
	l := newLevel(cache.Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 1},
		4, 16, 16, terminus{latency: 64}, &ls)
	a1, ok := l.fetch(0x40, 10)
	if !ok {
		t.Fatal("first fetch rejected")
	}
	a2, ok := l.fetch(0x40, 12)
	if !ok {
		t.Fatal("merging fetch rejected")
	}
	if ls.Misses != 1 || ls.SecondaryMisses != 1 || ls.Accesses != 2 {
		t.Fatalf("stats = %+v, want 1 primary + 1 secondary", ls)
	}
	if a2 < a1 {
		t.Fatalf("merged fetch available at %d before the fill %d", a2, a1)
	}
	// After the fill installs, the same line is a hit.
	l.beginCycle(a1)
	if ls.Fills != 1 {
		t.Fatalf("fills = %d, want 1", ls.Fills)
	}
	a3, ok := l.fetch(0x40, a1)
	if !ok || a3 != a1+16 {
		t.Fatalf("post-fill fetch = (%d,%v), want hit at +16", a3, ok)
	}
	// A write-back to a pending line merges as a dirty mark.
	if _, ok := l.fetch(0x80, a1); !ok {
		t.Fatal("fetch rejected")
	}
	l.writeback(0x80, a1)
	if e := l.findMSHR(0x80); e == nil || !e.dirty {
		t.Fatal("write-back did not dirty the pending MSHR")
	}
}

// TestHierarchyTwoLevels: levels compose — an L3 between the L2 and
// DRAM serves L2 misses and the names land in order in LevelStats.
func TestHierarchyTwoLevels(t *testing.T) {
	c := testConfig()
	c.L2Latency = 0
	c.Hierarchy = []LevelSpec{
		l2Spec(128*1024, 8, 16),
		{Cache: cache.Config{SizeBytes: 1024 * 1024, LineBytes: 32, Assoc: 8},
			MSHRs: 16, HitLatency: 30, BusBytesPerCycle: 8},
	}
	c.DRAMLatency = 100
	s := newSys(t, c)
	s.BeginCycle(0)
	r := s.Load(0x9000)
	if !r.OK || !r.Miss {
		t.Fatalf("access = %+v", r)
	}
	// L1 req at 2; L2 array+cmd → 19; L3 array+cmd → 50; DRAM 100 →
	// 150; L3 memory bus 32/8 = 4 → 154; L2 bus 2 → 156; L1 bus 2 → 158.
	if want := int64(158); r.ReadyAt != want {
		t.Fatalf("two-level miss ready at %d, want %d", r.ReadyAt, want)
	}
	ls := s.LevelStats(1, 1)
	if len(ls) != 2 || ls[0].Name != "L2" || ls[1].Name != "L3" {
		t.Fatalf("level names = %+v, want [L2 L3]", ls)
	}
	if ls[0].Misses != 1 || ls[1].Misses != 1 {
		t.Fatalf("miss counts = %+v, want 1 at each level", ls)
	}
}

// TestHierarchyResetStatsPreservesState: ResetStats clears counters and
// bus accounting at every level but keeps tags and MSHR state.
func TestHierarchyResetStatsPreservesState(t *testing.T) {
	s := newSys(t, hierConfig())
	s.BeginCycle(0)
	r := s.Load(0x3000)
	s.BeginCycle(r.ReadyAt)
	s.ResetStats()
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
	ls := s.LevelStats(r.ReadyAt, r.ReadyAt)
	if ls[0].Accesses != 0 || ls[0].Name != "L2" {
		t.Fatalf("level stats after reset = %+v", ls[0])
	}
	if !s.Cache().Probe(0x3000) || !s.LevelCache(0).Probe(0x3000) {
		t.Fatal("reset dropped cache state")
	}
	// The line is still a hit (state preserved), and new counters accrue.
	r2 := s.Load(0x3000)
	if !r2.OK || r2.Miss {
		t.Fatalf("post-reset access = %+v, want hit", r2)
	}
}
