package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func testConfig() Config {
	return Config{
		L1:               cache.Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 1},
		Ports:            4,
		MSHRs:            16,
		HitLatency:       1,
		L2Latency:        16,
		BusBytesPerCycle: 16,
	}
}

func newSys(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Ports = 0 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.HitLatency = 0 },
		func(c *Config) { c.L2Latency = 0 },
		func(c *Config) { c.BusBytesPerCycle = 0 },
		func(c *Config) { c.L1.LineBytes = 33 },
	}
	for i, m := range mutations {
		c := testConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted mutation %d", i)
		}
	}
}

func TestLoadHit(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	// Prime the line.
	r := s.Load(0x1000)
	if !r.OK || !r.Miss {
		t.Fatalf("first access = %+v, want accepted miss", r)
	}
	// Wait for the fill, then hit.
	s.BeginCycle(r.ReadyAt)
	r2 := s.Load(0x1008)
	if !r2.OK || r2.Miss {
		t.Fatalf("post-fill access = %+v, want hit", r2)
	}
	if r2.ReadyAt != r.ReadyAt+1 {
		t.Fatalf("hit latency: ready %d, want %d", r2.ReadyAt, r.ReadyAt+1)
	}
}

func TestMissLatencyComposition(t *testing.T) {
	cfg := testConfig()
	s := newSys(t, cfg)
	s.BeginCycle(10)
	r := s.Load(0x2000)
	if !r.OK || !r.Miss {
		t.Fatalf("access = %+v", r)
	}
	// tag probe (1) + request (1) + L2 (16) + line transfer (32/16 = 2)
	want := int64(10) + 1 + 1 + cfg.L2Latency + 2
	if r.ReadyAt != want {
		t.Fatalf("miss ready at %d, want %d", r.ReadyAt, want)
	}
}

func TestSecondaryMissMerges(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	r1 := s.Load(0x3000)
	r2 := s.Load(0x3010) // same 32-byte line
	if !r2.OK || !r2.Miss {
		t.Fatalf("secondary access = %+v", r2)
	}
	if r2.ReadyAt != r1.ReadyAt {
		t.Fatalf("merged miss ready %d != primary %d", r2.ReadyAt, r1.ReadyAt)
	}
	st := s.Stats()
	if st.SecondaryMisses != 1 {
		t.Fatalf("SecondaryMisses = %d, want 1", st.SecondaryMisses)
	}
	if s.MSHRsInUse() != 1 {
		t.Fatalf("MSHRs in use = %d, want 1 (merged)", s.MSHRsInUse())
	}
	// Only one refill should have crossed the data bus (requests ride the
	// command channel).
	if got := s.Bus().Transactions(); got != 1 {
		t.Fatalf("bus transactions = %d, want 1", got)
	}
}

func TestPortExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.Ports = 2
	s := newSys(t, cfg)
	s.BeginCycle(0)
	if r := s.Load(0x100); !r.OK {
		t.Fatal("first access rejected")
	}
	if r := s.Load(0x200); !r.OK {
		t.Fatal("second access rejected")
	}
	r := s.Load(0x300)
	if r.OK || r.Stall != StallPort {
		t.Fatalf("third access = %+v, want port stall", r)
	}
	// Next cycle the ports are free again.
	s.BeginCycle(1)
	if r := s.Load(0x300); !r.OK {
		t.Fatal("retry after port stall rejected")
	}
	if s.Stats().PortRejects != 1 {
		t.Fatalf("PortRejects = %d", s.Stats().PortRejects)
	}
}

func TestMSHRExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.MSHRs = 2
	cfg.Ports = 8
	s := newSys(t, cfg)
	s.BeginCycle(0)
	s.Load(0x0000)
	s.Load(0x1000)
	r := s.Load(0x2000)
	if r.OK || r.Stall != StallMSHR {
		t.Fatalf("third miss = %+v, want MSHR stall", r)
	}
	if s.Stats().MSHRRejects != 1 {
		t.Fatalf("MSHRRejects = %d", s.Stats().MSHRRejects)
	}
	// A hit must still be accepted while MSHRs are full — lockup-free.
	s.BeginCycle(100) // first fills complete
	if r := s.Load(0x0008); !r.OK || r.Miss {
		t.Fatalf("hit under full MSHRs = %+v", r)
	}
}

func TestMSHRFreedAfterFill(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	r := s.Load(0x4000)
	if s.MSHRsInUse() != 1 {
		t.Fatal("MSHR not allocated")
	}
	s.BeginCycle(r.ReadyAt - 1)
	if s.MSHRsInUse() != 1 {
		t.Fatal("MSHR freed early")
	}
	s.BeginCycle(r.ReadyAt)
	if s.MSHRsInUse() != 0 {
		t.Fatal("MSHR not freed at fill time")
	}
	if s.Stats().Fills != 1 {
		t.Fatalf("Fills = %d", s.Stats().Fills)
	}
}

func TestStoreHitDirtiesLine(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	r := s.StoreCommit(0x5000)
	if !r.OK || !r.Miss {
		t.Fatalf("store miss = %+v", r)
	}
	s.BeginCycle(r.ReadyAt)
	if !s.Cache().IsDirty(0x5000) {
		t.Fatal("write-allocated line not dirty after fill")
	}
	r2 := s.StoreCommit(0x5008)
	if !r2.OK || r2.Miss {
		t.Fatalf("store hit = %+v", r2)
	}
	st := s.Stats()
	if st.StoreAccesses != 2 || st.StoreMisses != 1 {
		t.Fatalf("store stats = %+v", st)
	}
}

func TestStoreMergeMarksDirty(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	rl := s.Load(0x6000)
	s.StoreCommit(0x6010) // merges into the pending load miss
	s.BeginCycle(rl.ReadyAt)
	if !s.Cache().IsDirty(0x6000) {
		t.Fatal("merged store did not dirty the line at fill")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	r := s.StoreCommit(0x0)
	s.BeginCycle(r.ReadyAt)
	// Conflicting line in a 64 KB direct-mapped cache.
	r2 := s.Load(64 * 1024)
	s.BeginCycle(r2.ReadyAt)
	if s.Stats().Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", s.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	r := s.Load(0x0)
	s.BeginCycle(r.ReadyAt)
	r2 := s.Load(64 * 1024)
	s.BeginCycle(r2.ReadyAt)
	if s.Stats().Writebacks != 0 {
		t.Fatalf("Writebacks = %d, want 0", s.Stats().Writebacks)
	}
}

func TestMissRatios(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	r := s.Load(0x100) // miss
	s.BeginCycle(r.ReadyAt)
	s.Load(0x108) // hit
	s.Load(0x110) // hit
	s.Load(0x118) // hit
	st := s.Stats()
	if got := st.LoadMissRatio(); got != 0.25 {
		t.Fatalf("LoadMissRatio = %v, want 0.25", got)
	}
	if got := st.StoreMissRatio(); got != 0 {
		t.Fatalf("StoreMissRatio = %v, want 0", got)
	}
}

func TestL2LatencyScaling(t *testing.T) {
	short := testConfig()
	long := testConfig()
	long.L2Latency = 256
	a, b := newSys(t, short), newSys(t, long)
	a.BeginCycle(0)
	b.BeginCycle(0)
	ra := a.Load(0x1000)
	rb := b.Load(0x1000)
	if rb.ReadyAt-ra.ReadyAt != 256-16 {
		t.Fatalf("latency delta = %d, want 240", rb.ReadyAt-ra.ReadyAt)
	}
}

func TestBusContentionSerializesMisses(t *testing.T) {
	cfg := testConfig()
	cfg.L2Latency = 1 // keep L2 out of the picture
	s := newSys(t, cfg)
	s.BeginCycle(0)
	var last int64
	// Each miss needs 1 request + 2 transfer cycles on the bus; with many
	// parallel misses the bus must serialize them.
	for i := 0; i < 4; i++ {
		r := s.Load(uint64(i) * 0x1000)
		if !r.OK {
			t.Fatalf("miss %d rejected", i)
		}
		if r.ReadyAt <= last {
			t.Fatalf("miss %d ready %d, not after previous %d", i, r.ReadyAt, last)
		}
		last = r.ReadyAt
	}
}

func TestResetStats(t *testing.T) {
	s := newSys(t, testConfig())
	s.BeginCycle(0)
	s.Load(0x1)
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Fatal("stats survived reset")
	}
	if s.Bus().BusyCycles() != 0 {
		t.Fatal("bus accounting survived reset")
	}
}

// Property: MSHR occupancy never exceeds the configured count, and every
// accepted miss is eventually filled (occupancy returns to zero).
func TestQuickMSHRBounds(t *testing.T) {
	f := func(addrsRaw []uint16, mshrRaw uint8) bool {
		cfg := testConfig()
		cfg.MSHRs = int(mshrRaw%8) + 1
		cfg.Ports = 64
		s, err := New(cfg)
		if err != nil {
			return false
		}
		now := int64(0)
		for _, a := range addrsRaw {
			s.BeginCycle(now)
			s.Load(uint64(a) << 5) // distinct lines
			if s.MSHRsInUse() > cfg.MSHRs {
				return false
			}
			now++
		}
		// Run forward; everything must drain.
		for i := 0; i < 10000 && s.MSHRsInUse() > 0; i++ {
			now++
			s.BeginCycle(now)
		}
		return s.MSHRsInUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: accepted accesses always have ReadyAt strictly after the
// current cycle, and hits are exactly hit-latency away.
func TestQuickReadyAtMonotone(t *testing.T) {
	f := func(addrsRaw []uint16) bool {
		s, err := New(testConfig())
		if err != nil {
			return false
		}
		now := int64(0)
		for _, a := range addrsRaw {
			s.BeginCycle(now)
			r := s.Load(uint64(a))
			if r.OK {
				if r.ReadyAt <= now {
					return false
				}
				if !r.Miss && r.ReadyAt != now+1 {
					return false
				}
			}
			now++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLoadHit(b *testing.B) {
	s, _ := New(testConfig())
	s.BeginCycle(0)
	s.Load(0x1000)
	s.BeginCycle(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BeginCycle(int64(100 + i))
		s.Load(0x1000)
	}
}

func BenchmarkLoadMissStream(b *testing.B) {
	s, _ := New(testConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BeginCycle(int64(i * 4))
		s.Load(uint64(i) << 5)
	}
}
