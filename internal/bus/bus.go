// Package bus models the off-chip L1↔L2 interface bus.
//
// Figure 2 of the paper specifies a 128-bit (16 bytes/cycle) bus between
// the on-chip L1 data cache and the off-chip L2. Section 3.3 shows this bus
// becoming the bottleneck of the non-decoupled machine at high thread
// counts (89% utilization with 12 threads, 98% with 16, at L2 latency 64).
//
// The bus is modelled as a single time-shared resource: every transaction
// (miss request, line refill, dirty write-back) reserves a contiguous span
// of bus cycles at the earliest time at or after its ready time. The model
// keeps a single "busy until" horizon rather than an event calendar — the
// simulator issues reservations in non-decreasing ready-time order, so the
// horizon is exact for in-order request streams and a tight approximation
// when refills interleave with new requests.
package bus

import "fmt"

// Bus is the shared L1↔L2 interface. The zero value is unusable; use New.
type Bus struct {
	bytesPerCycle int
	busyUntil     int64
	busyCycles    int64
	transactions  int64
}

// New returns a bus transferring bytesPerCycle bytes per cycle.
func New(bytesPerCycle int) *Bus {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("bus: bytes per cycle %d must be positive", bytesPerCycle))
	}
	return &Bus{bytesPerCycle: bytesPerCycle}
}

// BytesPerCycle returns the configured bus width.
func (b *Bus) BytesPerCycle() int { return b.bytesPerCycle }

// TransferCycles returns how many bus cycles moving n bytes occupies
// (at least 1).
func (b *Bus) TransferCycles(n int) int64 {
	if n <= 0 {
		return 1
	}
	return int64((n + b.bytesPerCycle - 1) / b.bytesPerCycle)
}

// Reserve books the bus for the given number of cycles at the earliest
// time ≥ ready. It returns the cycle the transaction completes (i.e. the
// first cycle the data is fully transferred). Cycles must be positive.
func (b *Bus) Reserve(ready int64, cycles int64) (done int64) {
	if cycles <= 0 {
		panic(fmt.Sprintf("bus: reservation of %d cycles", cycles))
	}
	start := ready
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.busyUntil = start + cycles
	b.busyCycles += cycles
	b.transactions++
	return b.busyUntil
}

// BusyUntil returns the cycle at which all booked traffic completes.
func (b *Bus) BusyUntil() int64 { return b.busyUntil }

// BusyCycles returns the total cycles of traffic booked so far.
func (b *Bus) BusyCycles() int64 { return b.busyCycles }

// Transactions returns the number of reservations made.
func (b *Bus) Transactions() int64 { return b.transactions }

// Utilization returns the fraction of a measurement window the bus was
// busy. The window ends at absolute cycle `end` and spans `window`
// cycles; traffic booked since the last Reset but scheduled beyond `end`
// (a saturated bus running ahead of real time) is excluded, and the
// result is clamped to [0, 1].
func (b *Bus) Utilization(end, window int64) float64 {
	if window <= 0 {
		return 0
	}
	busy := b.busyCycles
	// Overhang: traffic booked past the end of the window has not yet
	// occupied real cycles.
	if over := b.busyUntil - end; over > 0 {
		busy -= over
	}
	if busy < 0 {
		busy = 0
	}
	u := float64(busy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears the traffic *accounting* (used between the warm-up and
// measurement windows). The busy horizon is physical state — in-flight
// transfers keep their reservations — so it is preserved.
func (b *Bus) Reset() {
	b.busyCycles = 0
	b.transactions = 0
}
