package bus

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestTransferCycles(t *testing.T) {
	b := New(16)
	cases := []struct {
		bytes int
		want  int64
	}{
		{0, 1}, {1, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3}, {48, 3},
	}
	for _, c := range cases {
		if got := b.TransferCycles(c.bytes); got != c.want {
			t.Errorf("TransferCycles(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestReserveIdleBus(t *testing.T) {
	b := New(16)
	done := b.Reserve(10, 2)
	if done != 12 {
		t.Fatalf("done = %d, want 12", done)
	}
	if b.BusyUntil() != 12 || b.BusyCycles() != 2 || b.Transactions() != 1 {
		t.Fatalf("state = (%d,%d,%d)", b.BusyUntil(), b.BusyCycles(), b.Transactions())
	}
}

func TestReserveQueuesBehindTraffic(t *testing.T) {
	b := New(16)
	b.Reserve(0, 10) // busy 0..10
	done := b.Reserve(3, 2)
	if done != 12 {
		t.Fatalf("second reservation done = %d, want 12", done)
	}
	// A reservation after the horizon starts at its ready time.
	done = b.Reserve(20, 2)
	if done != 22 {
		t.Fatalf("post-gap reservation done = %d, want 22", done)
	}
}

func TestReservePanicsOnNonPositive(t *testing.T) {
	b := New(16)
	defer func() {
		if recover() == nil {
			t.Fatal("Reserve(_,0) did not panic")
		}
	}()
	b.Reserve(0, 0)
}

func TestUtilization(t *testing.T) {
	b := New(16)
	b.Reserve(0, 30)
	if got := b.Utilization(100, 100); got != 0.30 {
		t.Fatalf("Utilization = %v, want 0.30", got)
	}
	if got := b.Utilization(100, 0); got != 0 {
		t.Fatalf("zero window = %v", got)
	}
}

func TestUtilizationWindowed(t *testing.T) {
	// Traffic booked before the window belongs to the previous window's
	// accounting; after a Reset only new traffic counts, measured against
	// the window length.
	b := New(16)
	b.Reserve(0, 50) // warm-up traffic
	b.Reset()
	b.Reserve(100, 20) // measurement traffic, completes at 120
	if got := b.Utilization(200, 100); got != 0.20 {
		t.Fatalf("windowed utilization = %v, want 0.20", got)
	}
}

func TestResetPreservesHorizon(t *testing.T) {
	b := New(16)
	done := b.Reserve(0, 10)
	b.Reset()
	// A new reservation must still queue behind the in-flight transfer.
	if got := b.Reserve(0, 2); got != done+2 {
		t.Fatalf("post-reset reservation done = %d, want %d", got, done+2)
	}
}

func TestUtilizationSaturationClamped(t *testing.T) {
	b := New(16)
	// Book far more traffic than elapsed time: a saturated bus.
	for i := 0; i < 100; i++ {
		b.Reserve(0, 10)
	}
	u := b.Utilization(50, 50)
	if u > 1 || u < 0.99 {
		t.Fatalf("saturated utilization = %v, want ~1.0 clamped", u)
	}
}

func TestReset(t *testing.T) {
	b := New(16)
	b.Reserve(0, 5)
	b.Reset()
	if b.BusyCycles() != 0 || b.Transactions() != 0 {
		t.Fatal("Reset left accounting behind")
	}
	if b.BusyUntil() != 5 {
		t.Fatal("Reset discarded the physical busy horizon")
	}
}

// Property: reservations never overlap and never start before their ready
// time; total busy cycles equals the sum of requested cycles.
func TestQuickNoOverlap(t *testing.T) {
	f := func(reqs []struct {
		Ready  uint16
		Cycles uint8
	}) bool {
		b := New(16)
		var lastDone int64
		var total int64
		var prevReady int64
		for _, r := range reqs {
			// Issue in non-decreasing ready order, as the simulator does.
			ready := prevReady + int64(r.Ready%64)
			prevReady = ready
			cycles := int64(r.Cycles%8) + 1
			done := b.Reserve(ready, cycles)
			start := done - cycles
			if start < ready { // started before ready
				return false
			}
			if start < lastDone { // overlapped previous transaction
				return false
			}
			lastDone = done
			total += cycles
		}
		return b.BusyCycles() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization is always within [0,1].
func TestQuickUtilizationBounds(t *testing.T) {
	f := func(cycles []uint8, elapsed uint16) bool {
		b := New(16)
		for _, c := range cycles {
			b.Reserve(0, int64(c%16)+1)
		}
		end := int64(elapsed) + 1
		u := b.Utilization(end, end)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReserve(b *testing.B) {
	bs := New(16)
	for i := 0; i < b.N; i++ {
		bs.Reserve(int64(i), 2)
	}
}
