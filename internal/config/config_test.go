package config

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/mem"
)

func TestFigure2MatchesPaper(t *testing.T) {
	m := Figure2(4)
	if m.Threads != 4 || !m.Decoupled {
		t.Fatal("thread/decoupled defaults wrong")
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"fetch threads", m.FetchThreads, 2},
		{"fetch width", m.FetchWidth, 8},
		{"dispatch width", m.DispatchWidth, 8},
		{"AP width", m.APWidth, 4},
		{"EP width", m.EPWidth, 4},
		{"unresolved branches", m.MaxUnresolvedBranches, 4},
		{"BHT entries", m.BHTEntries, 2048},
		{"IQ size", m.IQSize, 48},
		{"SAQ size", m.SAQSize, 32},
		{"AP regs", m.APRegs, 64},
		{"EP regs", m.EPRegs, 96},
		{"L1 ports", m.Mem.Ports, 4},
		{"MSHRs", m.Mem.MSHRs, 16},
		{"L1 size", m.Mem.L1.SizeBytes, 64 * 1024},
		{"line size", m.Mem.L1.LineBytes, 32},
		{"assoc", m.Mem.L1.Assoc, 1},
		{"bus width", m.Mem.BusBytesPerCycle, 16},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (Figure 2)", c.name, c.got, c.want)
		}
	}
	if m.APLatency != 1 || m.EPLatency != 4 {
		t.Errorf("FU latencies = (%d,%d), want (1,4)", m.APLatency, m.EPLatency)
	}
	if m.Mem.L2Latency != 16 || m.Mem.HitLatency != 1 {
		t.Errorf("cache latencies = (%d,%d), want (16,1)", m.Mem.L2Latency, m.Mem.HitLatency)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Figure2 invalid: %v", err)
	}
}

func TestSection2MatchesPaper(t *testing.T) {
	m := Section2()
	if m.Threads != 1 {
		t.Error("Section 2 machine is single threaded")
	}
	if m.SharedFUs != 4 {
		t.Errorf("shared FUs = %d, want 4 general purpose FUs", m.SharedFUs)
	}
	if m.DispatchWidth != 4 {
		t.Errorf("dispatch width = %d, want 4-way issue", m.DispatchWidth)
	}
	if m.Mem.Ports != 2 {
		t.Errorf("L1 ports = %d, want 2", m.Mem.Ports)
	}
	if !m.ScaleWithLatency {
		t.Error("Section 2 machine must scale queues with latency")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Section2 invalid: %v", err)
	}
}

func TestNonDecoupled(t *testing.T) {
	m := Figure2(2).NonDecoupled()
	if m.Decoupled {
		t.Fatal("NonDecoupled did not clear the flag")
	}
	// Everything else preserved.
	if m.IQSize != 48 || m.Threads != 2 {
		t.Fatal("NonDecoupled changed unrelated fields")
	}
}

func TestWithL2LatencyAndThreads(t *testing.T) {
	m := Figure2(1).WithL2Latency(256).WithThreads(7)
	if m.Mem.L2Latency != 256 || m.Threads != 7 {
		t.Fatal("builders did not apply")
	}
	// Original preset unchanged (value semantics).
	if Figure2(1).Mem.L2Latency != 16 {
		t.Fatal("preset mutated")
	}
}

func TestEffectiveScaling(t *testing.T) {
	m := Section2().WithL2Latency(256)
	e := m.Effective()
	// ceil(256/16) = 16.
	if e.IQSize != 48*16 {
		t.Errorf("scaled IQ = %d, want %d", e.IQSize, 48*16)
	}
	if e.SAQSize != 32*16 {
		t.Errorf("scaled SAQ = %d, want %d", e.SAQSize, 32*16)
	}
	if e.APRegs != 32+(64-32)*16 {
		t.Errorf("scaled AP regs = %d", e.APRegs)
	}
	if e.EPRegs != 32+(96-32)*16 {
		t.Errorf("scaled EP regs = %d", e.EPRegs)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("scaled machine invalid: %v", err)
	}
}

func TestEffectiveNoScalingAtBaseline(t *testing.T) {
	m := Section2() // L2 = 16 → factor 1
	e := m.Effective()
	if e.IQSize != m.IQSize || e.APRegs != m.APRegs {
		t.Fatal("baseline latency should not scale")
	}
	// Figure-2 machines never scale even at high latency.
	f := Figure2(4).WithL2Latency(256).Effective()
	if f.IQSize != 48 {
		t.Fatal("Figure2 machine scaled without ScaleWithLatency")
	}
}

func TestEffectiveScalingLowLatency(t *testing.T) {
	m := Section2().WithL2Latency(1)
	e := m.Effective()
	if e.IQSize != m.IQSize {
		t.Fatal("latency 1 should scale by factor 1")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Machine)
	}{
		{"zero threads", func(m *Machine) { m.Threads = 0 }},
		{"zero fetch threads", func(m *Machine) { m.FetchThreads = 0 }},
		{"zero fetch width", func(m *Machine) { m.FetchWidth = 0 }},
		{"small fetch buffer", func(m *Machine) { m.FetchBufSize = 1 }},
		{"zero branch limit", func(m *Machine) { m.MaxUnresolvedBranches = 0 }},
		{"non-pow2 BHT", func(m *Machine) { m.BHTEntries = 1000 }},
		{"zero dispatch", func(m *Machine) { m.DispatchWidth = 0 }},
		{"zero AP width", func(m *Machine) { m.APWidth = 0 }},
		{"zero EP width", func(m *Machine) { m.EPWidth = 0 }},
		{"negative shared FUs", func(m *Machine) { m.SharedFUs = -1 }},
		{"zero AP latency", func(m *Machine) { m.APLatency = 0 }},
		{"zero EP latency", func(m *Machine) { m.EPLatency = 0 }},
		{"zero IQ", func(m *Machine) { m.IQSize = 0 }},
		{"zero SAQ", func(m *Machine) { m.SAQSize = 0 }},
		{"zero ROB", func(m *Machine) { m.ROBSize = 0 }},
		{"AP regs too small", func(m *Machine) { m.APRegs = 32 }},
		{"EP regs too small", func(m *Machine) { m.EPRegs = 20 }},
		{"zero graduate width", func(m *Machine) { m.GraduateWidth = 0 }},
		{"bad fetch policy", func(m *Machine) { m.FetchPolicy = "lottery" }},
		{"bad mem", func(m *Machine) { m.Mem.Ports = 0 }},
	}
	for _, c := range mutations {
		m := Figure2(4)
		c.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFetchPolicies(t *testing.T) {
	for _, p := range []FetchPolicy{FetchICOUNT, FetchRoundRobin, ""} {
		m := Figure2(2)
		m.FetchPolicy = p
		if err := m.Validate(); err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
		}
	}
}

func TestMSHRsPerThreadResolved(t *testing.T) {
	m := Figure2(4)
	e := m.Effective()
	if e.Mem.MSHRs != 16*4 {
		t.Fatalf("effective MSHRs = %d, want 64 (16 per context)", e.Mem.MSHRs)
	}
	// Latency scaling multiplies the per-thread capacity too.
	m.ScaleWithLatency = true
	m = m.WithL2Latency(64) // factor 4
	if got := m.Effective().Mem.MSHRs; got != 16*4*4 {
		t.Fatalf("scaled MSHRs = %d, want 256", got)
	}
	// Fixed-total mode: MSHRsPerThread == 0 leaves Mem.MSHRs untouched.
	fixed := Figure2(4)
	fixed.MSHRsPerThread = 0
	fixed.Mem.MSHRs = 10
	if got := fixed.Effective().Mem.MSHRs; got != 10 {
		t.Fatalf("fixed MSHRs = %d, want 10", got)
	}
	// Negative is rejected.
	bad := Figure2(1)
	bad.MSHRsPerThread = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative MSHRsPerThread accepted")
	}
}

func TestIssuePolicyValidation(t *testing.T) {
	for _, p := range []IssuePolicy{IssueRoundRobin, IssueOldestFirst, ""} {
		m := Figure2(2)
		m.IssuePolicy = p
		if err := m.Validate(); err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
		}
	}
	m := Figure2(2)
	m.IssuePolicy = "lifo"
	if err := m.Validate(); err == nil {
		t.Error("unknown issue policy accepted")
	}
}

func TestPredictorValidation(t *testing.T) {
	for _, k := range []string{"", "bht", "gshare", "taken", "nottaken"} {
		m := Figure2(2)
		m.Predictor = branch.Kind(k)
		if err := m.Validate(); err != nil {
			t.Errorf("predictor %q rejected: %v", k, err)
		}
	}
	m := Figure2(2)
	m.Predictor = "neural"
	if err := m.Validate(); err == nil {
		t.Error("unknown predictor accepted")
	}
}

func TestWithHierarchy(t *testing.T) {
	m := Figure2(4).WithHierarchy(64, SharedL2(512<<10, 8))
	if err := m.Validate(); err != nil {
		t.Fatalf("hierarchy machine rejected: %v", err)
	}
	if m.Mem.L2Latency != 0 {
		t.Errorf("WithHierarchy left flat L2 latency %d, want 0 (hash canonicalization)", m.Mem.L2Latency)
	}
	if m.Mem.DRAMLatency != 64 || len(m.Mem.Hierarchy) != 1 {
		t.Errorf("hierarchy not attached: %+v", m.Mem)
	}
	spec := SharedL2(512<<10, 8)
	if spec.Name != "L2" || spec.Cache.LineBytes != 32 || spec.HitLatency != 16 {
		t.Errorf("SharedL2 defaults = %+v", spec)
	}
	// The Section-2 latency-scaling rule has no flat latency to scale
	// with under a hierarchy.
	s2 := Section2()
	s2 = s2.WithHierarchy(64, SharedL2(256<<10, 4))
	if err := s2.Validate(); err == nil {
		t.Error("ScaleWithLatency with a hierarchy accepted")
	}
	// WithHierarchy copies its level slice: mutating the argument later
	// must not reach into the machine.
	levels := []mem.LevelSpec{SharedL2(256<<10, 4)}
	m2 := Figure2(1).WithHierarchy(64, levels...)
	levels[0].MSHRs = 0
	if m2.Mem.Hierarchy[0].MSHRs == 0 {
		t.Error("WithHierarchy aliased the caller's level slice")
	}
}

func TestCoresValidation(t *testing.T) {
	bad := []struct {
		name string
		mut  func(*Machine)
	}{
		{"negative cores", func(m *Machine) { m.Cores = -1 }},
		{"private hierarchy on one core", func(m *Machine) {
			m.Cores = 0
			m.Mem.PrivateHierarchy = true
		}},
		{"private hierarchy without hierarchy", func(m *Machine) {
			m.Mem.Hierarchy = nil
			m.Mem.PrivateHierarchy = true
		}},
		{"latency scaling on a CMP", func(m *Machine) { m.ScaleWithLatency = true }},
	}
	for _, c := range bad {
		m := Figure2(2).WithCores(2).WithHierarchy(64, SharedL2(256<<10, 8))
		c.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	// A CMP over the flat L2 and over a private hierarchy both validate.
	if err := Figure2(2).WithCores(2).Validate(); err != nil {
		t.Errorf("flat CMP rejected: %v", err)
	}
	m := Figure2(1).WithCores(2).WithHierarchy(64, SharedL2(64<<10, 8)).WithPrivateHierarchy()
	if err := m.Validate(); err != nil {
		t.Errorf("private-hierarchy CMP rejected: %v", err)
	}
}

func TestCoreCountAndTotalContexts(t *testing.T) {
	cases := []struct {
		cores, threads, wantCores, wantCtx int
	}{
		{0, 1, 1, 1}, // zero value: single core
		{1, 4, 1, 4}, // explicit 1 is still a single-core machine
		{2, 1, 2, 2},
		{4, 2, 4, 8},
	}
	for _, c := range cases {
		m := Figure2(c.threads).WithCores(c.cores)
		if got := m.CoreCount(); got != c.wantCores {
			t.Errorf("Cores=%d: CoreCount() = %d, want %d", c.cores, got, c.wantCores)
		}
		if got := m.TotalContexts(); got != c.wantCtx {
			t.Errorf("Cores=%d Threads=%d: TotalContexts() = %d, want %d",
				c.cores, c.threads, got, c.wantCtx)
		}
	}
}
