// Package config defines the machine configuration for the multithreaded
// decoupled processor and provides the paper's two reference presets:
//
//   - Figure2: the Section-3 multithreaded machine (8-way issue, 4 AP FUs
//     at latency 1, 4 EP FUs at latency 4, 4-port 64 KB L1, 16-cycle L2,
//     per-thread IQ 48 / SAQ 32 / 64+96 physical registers / 2K-entry BHT,
//     fetch 2 threads × 8 instructions with ICOUNT, ≤4 unresolved
//     branches);
//   - Section2: the single-threaded latency-hiding study machine (4-way
//     issue from a shared pool of 4 general-purpose FUs, 2-port L1, and
//     every queue/register file scaled proportionally to the L2 latency).
package config

import (
	"errors"
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/mem"
)

// IssuePolicy selects how issue slots are shared between threads.
type IssuePolicy string

const (
	// IssueRoundRobin rotates thread priority every cycle (the paper's
	// "full simultaneous issue" with round-robin priorities).
	IssueRoundRobin IssuePolicy = "rr"
	// IssueOldestFirst gives priority to the thread whose stream head
	// was fetched earliest (Tullsen's oldest-first heuristic; ablation).
	IssueOldestFirst IssuePolicy = "oldest"
)

// FetchPolicy selects how the fetch stage picks threads each cycle.
type FetchPolicy string

const (
	// FetchICOUNT picks the threads with the fewest instructions pending
	// dispatch (the paper's policy, after Tullsen's ICOUNT).
	FetchICOUNT FetchPolicy = "icount"
	// FetchRoundRobin rotates through threads regardless of occupancy
	// (ablation A2).
	FetchRoundRobin FetchPolicy = "rr"
)

// Machine is the complete parameter set for one simulated configuration.
type Machine struct {
	// Threads is the number of hardware contexts per core.
	Threads int
	// Cores is the number of cores of a chip multiprocessor: each core
	// replicates the full pipeline — Threads SMT contexts, decoupled
	// AP/EP queues, private L1 and MSHRs — and the cores compose over
	// the shared memory levels (the finite Hierarchy, or the flat
	// infinite L2) with write-invalidate coherence between the private
	// L1s. Zero or one selects the paper's single-core machine, whose
	// simulation path (and result encoding) is unchanged; the omitempty
	// keeps every pre-CMP configuration hash pinned.
	Cores int `json:",omitempty"`
	// Decoupled selects the decoupled issue model; false disables the
	// instruction queues' slippage (the paper's "non-decoupled" machine:
	// per-thread program-order issue across both units).
	Decoupled bool

	// FetchThreads is how many threads may fetch per cycle (2).
	FetchThreads int
	// FetchWidth is the maximum instructions fetched per thread per cycle
	// (8, up to the first predicted-taken branch).
	FetchWidth int
	// FetchPolicy picks fetch threads (ICOUNT in the paper).
	FetchPolicy FetchPolicy
	// FetchBufSize is the per-thread buffer between fetch and dispatch.
	FetchBufSize int
	// MaxUnresolvedBranches is the per-thread control speculation limit (4).
	MaxUnresolvedBranches int
	// BHTEntries sizes the per-thread branch history table (2048).
	BHTEntries int
	// Predictor selects the branch predictor implementation; empty means
	// the paper's 2-bit BHT (ablation A7 compares alternatives).
	Predictor branch.Kind

	// DispatchWidth is the total instructions renamed/steered per cycle (8).
	DispatchWidth int

	// IssuePolicy arbitrates issue slots between threads; empty means
	// round-robin (the paper's scheme).
	IssuePolicy IssuePolicy

	// APWidth and EPWidth are the per-unit issue widths; with fully
	// pipelined FUs they equal the FU counts (4 and 4).
	APWidth, EPWidth int
	// SharedFUs, when positive, caps total issue across both units — the
	// Section-2 machine's "4 general purpose functional units". Zero means
	// the units have private FU pools.
	SharedFUs int
	// APLatency and EPLatency are the FU latencies in cycles (1 and 4).
	APLatency, EPLatency int64

	// IQSize is the per-thread EP instruction queue (48): the decoupling
	// slippage window.
	IQSize int
	// APQSize is the per-thread AP-side dispatch queue. The paper does not
	// size it separately; it defaults to IQSize.
	APQSize int
	// SAQSize is the per-thread store address queue (32).
	SAQSize int
	// ROBSize is the per-thread reorder buffer.
	ROBSize int
	// APRegs and EPRegs are the per-thread physical register file sizes
	// (64 and 96).
	APRegs, EPRegs int
	// GraduateWidth is the per-thread graduation bandwidth per cycle.
	GraduateWidth int

	// MSHRsPerThread sizes the lockup-free miss capacity per hardware
	// context (16 in Figure 2). Like the queues and register files, miss
	// tracking replicates with contexts; the shared-cache resources the
	// threads compete for are the ports, the array itself and the bus.
	// When zero, Mem.MSHRs is used directly as a fixed total (for
	// ablations).
	MSHRsPerThread int

	// StoreForwarding enables store→load data forwarding from the SAQ
	// (ablation A4; off reproduces the paper's bypass-only behaviour,
	// where a load to a conflicting pending-store address waits for the
	// store to commit).
	StoreForwarding bool

	// Spec enables the speculative access/execute extension (see
	// Speculation). Nil — the canonical spelling of "off", kept by
	// request normalization so every pre-existing configuration hash is
	// pinned — runs the paper's non-speculative machine.
	Spec *Speculation `json:",omitempty"`

	// Mem is the memory subsystem configuration.
	Mem mem.Config

	// ScaleWithLatency applies the Section-2 rule: "the sizes of all the
	// architectural queues and physical register files are scaled up
	// proportionally to the L2 latency". The scale factor is
	// ceil(L2Latency/16), i.e. 1 at the paper's 16-cycle baseline.
	ScaleWithLatency bool
}

// Speculation parameterizes the speculative-DAE extension, after
// Szafarczyk et al.: a decoupled access slice that no longer waits for
// may-alias or control dependences but issues a fraction of its loads
// speculatively, paying a squash-and-refetch penalty when one
// misspeculates, plus periodic loss-of-decoupling (LoD) events where a
// value computed in the execute slice feeds an address — fetch must
// hold until the execute queue drains, collapsing the AP/EP slip the
// whole model exists to create. All draws are derived from deterministic
// hashes of (PC, sequence number, context), so runs are reproducible
// and independent of execution mode and host parallelism.
type Speculation struct {
	// SpecLoadFrac is the fraction of loads hoisted speculatively into
	// the access slice, in [0,1]. Zero disables speculative issue (LoD
	// modeling may still be on).
	SpecLoadFrac float64 `json:",omitempty"`
	// MisspecProb is the probability, in [0,1], that a speculative load
	// misspeculates and squashes its thread's fetch stream.
	MisspecProb float64 `json:",omitempty"`
	// SquashCycles is the refetch penalty of one squash; zero means
	// DefaultSquashCycles (request normalization spells the default out
	// so both spellings hash identically).
	SquashCycles int64 `json:",omitempty"`
	// LoDEvery injects one loss-of-decoupling event per context every
	// LoDEvery fetched instructions (zero: never).
	LoDEvery int64 `json:",omitempty"`
}

// DefaultSquashCycles is the squash refetch penalty applied when
// Speculation.SquashCycles is zero: a mispredict-flavoured pipeline
// refill.
const DefaultSquashCycles = 8

// WithSpeculation returns a copy of m with the speculative-DAE knobs
// set.
func (m Machine) WithSpeculation(s Speculation) Machine {
	m.Spec = &s
	return m
}

// Figure2 returns the Section-3 multithreaded decoupled machine with the
// given number of hardware contexts.
func Figure2(threads int) Machine {
	return Machine{
		Threads:               threads,
		Decoupled:             true,
		FetchThreads:          2,
		FetchWidth:            8,
		FetchPolicy:           FetchICOUNT,
		FetchBufSize:          16,
		MaxUnresolvedBranches: 4,
		BHTEntries:            2048,
		DispatchWidth:         8,
		APWidth:               4,
		EPWidth:               4,
		APLatency:             1,
		EPLatency:             4,
		MSHRsPerThread:        16,
		IQSize:                48,
		APQSize:               48,
		SAQSize:               32,
		ROBSize:               128,
		APRegs:                64,
		EPRegs:                96,
		GraduateWidth:         8,
		Mem: mem.Config{
			L1:               cache.Config{SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 1},
			Ports:            4,
			MSHRs:            16,
			HitLatency:       1,
			L2Latency:        16,
			BusBytesPerCycle: 16,
		},
	}
}

// Section2 returns the single-threaded machine of the paper's Section 2:
// 4-way issue from a shared pool of 4 general-purpose FUs, a 2-port L1,
// and queue/register-file scaling with L2 latency enabled.
func Section2() Machine {
	m := Figure2(1)
	m.DispatchWidth = 4
	m.FetchThreads = 1
	m.APWidth = 4
	m.EPWidth = 4
	m.SharedFUs = 4
	m.GraduateWidth = 4
	m.Mem.Ports = 2
	m.ScaleWithLatency = true
	return m
}

// NonDecoupled returns a copy of m with the instruction queues' slippage
// disabled (the paper's degenerate comparison machine).
func (m Machine) NonDecoupled() Machine {
	m.Decoupled = false
	return m
}

// WithL2Latency returns a copy of m with the flat L2 latency set (the
// paper's swept parameter). It applies to the default infinite-L2 model
// only; machines built with WithHierarchy ignore it (and Validate
// rejects a non-zero flat latency there).
func (m Machine) WithL2Latency(lat int64) Machine {
	m.Mem.L2Latency = lat
	return m
}

// WithHierarchy returns a copy of m running a finite shared memory
// hierarchy in place of the paper's flat infinite L2: the given levels
// compose under the private L1 (levels[0] is the shared L2), the last
// one backed by a fixed-latency DRAM reached over that level's
// BusBytesPerCycle-wide memory bus. The flat L2Latency is zeroed — it is
// meaningless under a hierarchy, and normalizing it keeps every
// hierarchy machine's content hash canonical.
func (m Machine) WithHierarchy(dramLatency int64, levels ...mem.LevelSpec) Machine {
	m.Mem.Hierarchy = append([]mem.LevelSpec(nil), levels...)
	m.Mem.DRAMLatency = dramLatency
	m.Mem.L2Latency = 0
	return m
}

// SharedL2 returns a LevelSpec for a finite shared L2 with the given
// capacity and associativity and Figure-2-flavoured defaults: 32-byte
// lines matching the L1, 16 MSHRs, a 16-cycle array access (the paper's
// baseline flat-L2 latency, so an L2 hit costs what the default model
// charges every miss), and a 16-byte/cycle downstream bus.
func SharedL2(sizeBytes, assoc int) mem.LevelSpec {
	return mem.LevelSpec{
		Name:             "L2",
		Cache:            cache.Config{SizeBytes: sizeBytes, LineBytes: 32, Assoc: assoc},
		MSHRs:            16,
		HitLatency:       16,
		BusBytesPerCycle: 16,
	}
}

// WithThreads returns a copy of m with the thread count set.
func (m Machine) WithThreads(n int) Machine {
	m.Threads = n
	return m
}

// WithCores returns a copy of m with the core count set (see Cores).
func (m Machine) WithCores(n int) Machine {
	m.Cores = n
	return m
}

// WithPrivateHierarchy returns a copy of m whose hierarchy levels are
// replicated per core (each core gets its own finite L2 chain over the
// shared DRAM) instead of shared between the cores — the private-vs-
// shared L2 axis of figure C1. Meaningful only with Cores > 1 and a
// finite hierarchy.
func (m Machine) WithPrivateHierarchy() Machine {
	m.Mem.PrivateHierarchy = true
	return m
}

// CoreCount returns the effective number of cores (Cores, floored at 1:
// zero is the canonical single-core spelling).
func (m Machine) CoreCount() int {
	if m.Cores > 1 {
		return m.Cores
	}
	return 1
}

// TotalContexts returns the machine-wide hardware context count:
// CoreCount() × Threads. Workload builders produce one instruction
// stream per context, core c running contexts [c×Threads, (c+1)×Threads).
func (m Machine) TotalContexts() int { return m.CoreCount() * m.Threads }

// scaleFactor implements the Section-2 scaling rule.
func (m Machine) scaleFactor() int {
	if !m.ScaleWithLatency {
		return 1
	}
	f := int((m.Mem.L2Latency + 15) / 16)
	if f < 1 {
		f = 1
	}
	return f
}

// Effective returns the machine with derived sizes resolved: the MSHR
// total (per-thread capacity × contexts) and, when ScaleWithLatency is
// set, the Section-2 latency-proportional scaling of every buffer.
func (m Machine) Effective() Machine {
	f := m.scaleFactor()
	if m.MSHRsPerThread > 0 {
		m.Mem.MSHRs = m.MSHRsPerThread * m.Threads * f
	}
	if f == 1 {
		return m
	}
	m.IQSize *= f
	m.APQSize *= f
	m.SAQSize *= f
	m.ROBSize *= f
	// Physical files scale on top of the architectural baseline: the 32
	// architectural mappings are a fixed cost, the in-flight capacity is
	// what the paper scales.
	m.APRegs = 32 + (m.APRegs-32)*f
	m.EPRegs = 32 + (m.EPRegs-32)*f
	m.FetchBufSize *= f
	return m
}

// ErrInvalid is wrapped by every Validate failure, so callers anywhere
// up the stack (the runner, the public Engine, the HTTP service) can
// classify configuration errors with errors.Is without matching message
// text. The public API re-exports it as daesim.ErrInvalidConfig.
var ErrInvalid = errors.New("invalid machine configuration")

// Validate checks the configuration for consistency.
func (m Machine) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("config: %w: %s", ErrInvalid, fmt.Sprintf(format, args...))
	}
	switch {
	case m.Threads <= 0:
		return fail("threads %d must be positive", m.Threads)
	case m.Cores < 0:
		return fail("cores %d must be non-negative", m.Cores)
	case m.Mem.PrivateHierarchy && m.CoreCount() == 1:
		// A single core's "private" hierarchy is just the hierarchy; the
		// stray spelling would hash apart from the canonical machine.
		return fail("private hierarchy requires multiple cores")
	case m.ScaleWithLatency && m.CoreCount() > 1:
		// The Section-2 scaling rule targets the single-threaded
		// latency study; its interaction with CMP composition is
		// undefined.
		return fail("latency-proportional scaling applies only to single-core machines")
	case m.FetchThreads <= 0:
		return fail("fetch threads %d must be positive", m.FetchThreads)
	case m.FetchWidth <= 0:
		return fail("fetch width %d must be positive", m.FetchWidth)
	case m.FetchBufSize < m.FetchWidth:
		return fail("fetch buffer %d smaller than fetch width %d", m.FetchBufSize, m.FetchWidth)
	case m.MaxUnresolvedBranches <= 0:
		return fail("unresolved branch limit %d must be positive", m.MaxUnresolvedBranches)
	case m.BHTEntries <= 0 || m.BHTEntries&(m.BHTEntries-1) != 0:
		return fail("BHT entries %d must be a positive power of two", m.BHTEntries)
	case m.DispatchWidth <= 0:
		return fail("dispatch width %d must be positive", m.DispatchWidth)
	case m.APWidth <= 0 || m.EPWidth <= 0:
		return fail("unit widths (%d,%d) must be positive", m.APWidth, m.EPWidth)
	case m.SharedFUs < 0:
		return fail("shared FUs %d must be non-negative", m.SharedFUs)
	case m.MSHRsPerThread < 0:
		return fail("MSHRs per thread %d must be non-negative", m.MSHRsPerThread)
	case m.APLatency <= 0 || m.EPLatency <= 0:
		return fail("FU latencies (%d,%d) must be positive", m.APLatency, m.EPLatency)
	case m.IQSize <= 0 || m.APQSize <= 0 || m.SAQSize <= 0 || m.ROBSize <= 0:
		return fail("queue sizes (%d,%d,%d,%d) must be positive", m.IQSize, m.APQSize, m.SAQSize, m.ROBSize)
	case m.APRegs < 32+1:
		return fail("AP registers %d must exceed the 32 architectural mappings", m.APRegs)
	case m.EPRegs < 32+1:
		return fail("EP registers %d must exceed the 32 architectural mappings", m.EPRegs)
	case m.GraduateWidth <= 0:
		return fail("graduate width %d must be positive", m.GraduateWidth)
	case m.ScaleWithLatency && len(m.Mem.Hierarchy) > 0:
		// The Section-2 rule scales buffers with the flat L2 latency,
		// which a finite hierarchy does not have.
		return fail("latency-proportional scaling applies only to the flat L2 model")
	}
	if s := m.Spec; s != nil {
		switch {
		case *s == (Speculation{}):
			// The canonical spelling of "off" is a nil Spec; the stray
			// all-zero block would hash apart from the same machine.
			return fail("empty speculation block (omit Spec to disable)")
		case s.SpecLoadFrac < 0 || s.SpecLoadFrac > 1:
			return fail("speculative load fraction %g outside [0,1]", s.SpecLoadFrac)
		case s.MisspecProb < 0 || s.MisspecProb > 1:
			return fail("misspeculation probability %g outside [0,1]", s.MisspecProb)
		case s.SquashCycles < 0:
			return fail("squash cycles %d must be non-negative", s.SquashCycles)
		case s.LoDEvery < 0:
			return fail("LoD period %d must be non-negative", s.LoDEvery)
		case s.SpecLoadFrac == 0 && (s.MisspecProb > 0 || s.SquashCycles > 0):
			return fail("misspeculation knobs are inert without a speculative load fraction")
		}
	}
	switch m.FetchPolicy {
	case FetchICOUNT, FetchRoundRobin, "":
	default:
		return fail("unknown fetch policy %q", m.FetchPolicy)
	}
	switch m.IssuePolicy {
	case IssueRoundRobin, IssueOldestFirst, "":
	default:
		return fail("unknown issue policy %q", m.IssuePolicy)
	}
	switch m.Predictor {
	case branch.KindBHT, branch.KindGshare, branch.KindTaken, branch.KindNotTaken, "":
	default:
		return fail("unknown predictor %q", m.Predictor)
	}
	if err := m.Mem.Validate(); err != nil {
		return fmt.Errorf("config: %w: %w", ErrInvalid, err)
	}
	return nil
}
