package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/regfile"
	"repro/internal/rename"
	"repro/internal/trace"
)

// Context is one hardware thread context. The paper replicates fetch and
// dispatch state, register map tables, register files and all queues per
// context; the issue logic, functional units and caches are shared (and
// live in Core).
type Context struct {
	// ID is the thread index.
	ID int
	// Source is the thread's instruction stream.
	Source trace.Reader
	// Exhausted marks that Source has run dry; the thread idles.
	Exhausted bool

	// pending is a one-instruction peek buffer over Source, needed to
	// stop fetching *before* consuming a branch that would exceed the
	// control-speculation limit.
	pending    isa.Inst
	hasPending bool

	// FetchBuf holds fetched instructions awaiting dispatch. Its length
	// is the ICOUNT fetch-policy metric.
	FetchBuf *queue.Ring[*DynInst]
	// APQ and EPQ are the per-unit in-order issue queues. EPQ is the
	// paper's Instruction Queue — the decoupling slippage window.
	APQ, EPQ *queue.Ring[*DynInst]
	// ROB is the reorder buffer (program order, graduation from the head).
	ROB *queue.Ring[*DynInst]
	// SAQ is the store address queue: stores from dispatch until their
	// data is written to the cache. Loads check it for older conflicting
	// stores.
	SAQ *queue.Ring[*DynInst]

	// APFile and EPFile are the physical register files.
	APFile, EPFile *regfile.File
	// Map is the architectural→physical register map table.
	Map *rename.Table
	// Pred is the thread's private branch predictor.
	Pred branch.Predictor

	// Meta is the per-file, per-physical-register bookkeeping.
	Meta [isa.NumUnits][]regMeta

	// NextSeq numbers dynamic instructions in program order.
	NextSeq int64
	// Unresolved counts in-flight (fetched, unresolved) branches; fetch
	// stalls at the speculation limit.
	Unresolved int
	// unresolvedBranches lists issued branches awaiting resolution.
	unresolvedBranches []*DynInst
	// nextBranchResolveAt is the earliest DoneAt among the issued
	// unresolved branches (Never when none): resolveBranches skips its
	// scan until that cycle, and fast-forward uses it as the branch event
	// bound. Maintained at branch issue and after every resolution scan.
	nextBranchResolveAt int64
	// FetchBlocked is the mispredicted branch currently freezing fetch.
	FetchBlocked *DynInst
	// FetchResumeAt is the earliest cycle fetch may resume after a
	// mispredict redirect.
	FetchResumeAt int64

	// PendingAccess lists issued loads awaiting cache acceptance, in age
	// order.
	PendingAccess []*DynInst

	// pool recycles DynInst allocations.
	pool []*DynInst
}

// newContext builds a context for machine m.
func newContext(id int, m config.Machine, src trace.Reader) (*Context, error) {
	kind := m.Predictor
	if kind == "" {
		kind = branch.KindBHT
	}
	pred, err := branch.New(kind, m.BHTEntries)
	if err != nil {
		return nil, err
	}
	c := &Context{
		ID:                  id,
		Source:              src,
		nextBranchResolveAt: Never,
		FetchBuf:            queue.New[*DynInst](m.FetchBufSize),
		APQ:                 queue.New[*DynInst](m.APQSize),
		EPQ:                 queue.New[*DynInst](m.IQSize),
		ROB:                 queue.New[*DynInst](m.ROBSize),
		SAQ:                 queue.New[*DynInst](m.SAQSize),
		APFile:              regfile.New(m.APRegs),
		EPFile:              regfile.New(m.EPRegs),
		Map:                 rename.NewTable(),
		Pred:                pred,
	}
	c.Meta[isa.AP] = make([]regMeta, m.APRegs)
	c.Meta[isa.EP] = make([]regMeta, m.EPRegs)
	if err := c.Map.Init(c.APFile, c.EPFile); err != nil {
		return nil, fmt.Errorf("thread %d: %w", id, err)
	}
	return c, nil
}

// file returns the register file for the given unit.
func (c *Context) file(u isa.Unit) *regfile.File {
	if u == isa.AP {
		return c.APFile
	}
	return c.EPFile
}

// NextEventAt returns the earliest cycle strictly after now at which this
// context's state can change on its own: fetch unfreezes after a redirect,
// an issued branch resolves, the ROB head completes or becomes eligible to
// probe the cache, a pending load's or queued store's address arrives, or
// any physical register's value is delivered. Together with the memory
// system's pending refills these bound every comparison the pipeline
// stages make against the current cycle, which is what makes Core.Step's
// fast-forward exact.
func (c *Context) NextEventAt(now int64) int64 {
	next := Never
	consider := func(at int64) {
		if at > now && at < next {
			next = at
		}
	}
	consider(c.FetchResumeAt)
	consider(c.nextBranchResolveAt)
	if d, ok := c.ROB.Peek(); ok {
		consider(d.DoneAt)
		consider(d.AccessAt)
	}
	for _, d := range c.PendingAccess {
		consider(d.AccessAt)
	}
	c.SAQ.Scan(func(d *DynInst) bool {
		consider(d.AccessAt)
		return true
	})
	// The register files come last: their cached minima make these O(1)
	// in the common case.
	consider(c.APFile.NextReadyAfter(now))
	consider(c.EPFile.NextReadyAfter(now))
	return next
}

// poolBlock is the batch size of DynInst pool growth: one backing array
// per block amortizes ramp-up allocation and keeps in-flight instructions
// dense in memory.
const poolBlock = 64

// alloc takes a DynInst from the pool (growing it a block at a time) and
// resets it. In steady state the pool recycles without allocating.
func (c *Context) alloc() *DynInst {
	if len(c.pool) == 0 {
		block := make([]DynInst, poolBlock)
		for i := range block {
			c.pool = append(c.pool, &block[i])
		}
	}
	n := len(c.pool) - 1
	d := c.pool[n]
	c.pool = c.pool[:n]
	d.reset()
	return d
}

// release returns a graduated DynInst to the pool.
func (c *Context) release(d *DynInst) {
	c.pool = append(c.pool, d)
}

// peekSource returns the next trace instruction without consuming it.
func (c *Context) peekSource() (*isa.Inst, bool) {
	if c.hasPending {
		return &c.pending, true
	}
	if c.Exhausted {
		return nil, false
	}
	if !c.Source.Next(&c.pending) {
		c.Exhausted = true
		return nil, false
	}
	c.hasPending = true
	return &c.pending, true
}

// consumeSource consumes the peeked instruction.
func (c *Context) consumeSource() {
	if !c.hasPending {
		panic("core: consumeSource without peek")
	}
	c.hasPending = false
}

// InFlight returns the number of instructions in the ROB (dispatched, not
// graduated), used by tests and the drain logic.
func (c *Context) InFlight() int { return c.ROB.Len() }
