package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/regfile"
	"repro/internal/rename"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Context is one hardware thread context. The paper replicates fetch and
// dispatch state, register map tables, register files and all queues per
// context; the issue logic, functional units and caches are shared (and
// live in Core).
type Context struct {
	// ID is the thread index.
	ID int
	// Source is the thread's instruction stream.
	Source trace.Reader
	// Exhausted marks that Source has run dry; the thread idles.
	Exhausted bool

	// peeker is Source's zero-copy lookahead interface when it has one
	// (interned workload streams); nil sources fall back to the pending
	// buffer below.
	peeker trace.Peeker
	// pending is a one-instruction peek buffer over Source, needed to
	// stop fetching *before* consuming a branch that would exceed the
	// control-speculation limit.
	pending    isa.Inst
	hasPending bool

	// FetchBuf holds fetched instructions awaiting dispatch. Its length
	// is the ICOUNT fetch-policy metric.
	FetchBuf *queue.Ring[*DynInst]
	// APQ and EPQ are the per-unit in-order issue queues. EPQ is the
	// paper's Instruction Queue — the decoupling slippage window.
	APQ, EPQ *queue.Ring[*DynInst]
	// ROB is the reorder buffer (program order, graduation from the head).
	ROB *queue.Ring[*DynInst]
	// SAQ is the store address queue: stores from dispatch until their
	// data is written to the cache. Loads check it for older conflicting
	// stores.
	SAQ *queue.Ring[*DynInst]

	// APFile and EPFile are the physical register files.
	APFile, EPFile *regfile.File
	// Map is the architectural→physical register map table.
	Map *rename.Table
	// Pred is the thread's private branch predictor.
	Pred branch.Predictor

	// NextSeq numbers dynamic instructions in program order.
	NextSeq int64
	// Unresolved counts in-flight (fetched, unresolved) branches; fetch
	// stalls at the speculation limit.
	Unresolved int
	// issuedBranches holds issued branches awaiting resolution. Branches
	// issue in program order with a fixed latency, so their DoneAt times
	// are monotone and the queue resolves strictly from the head — no
	// scan, no reordering.
	issuedBranches *queue.Ring[*DynInst]
	// nextBranchResolveAt is the head of issuedBranches' DoneAt (Never
	// when empty): resolveBranches skips the context until that cycle,
	// and fast-forward uses it as the branch event bound. Maintained at
	// branch issue and after every resolution pass.
	nextBranchResolveAt int64
	// FetchBlocked is the mispredicted branch currently freezing fetch.
	FetchBlocked *DynInst
	// FetchResumeAt is the earliest cycle fetch may resume after a
	// mispredict redirect.
	FetchResumeAt int64

	// PendingAccess lists issued loads awaiting cache acceptance, in age
	// order.
	PendingAccess []*DynInst
	// nextAccessAt is the earliest cycle a pending load can probe the
	// cache (now+1 when one is blocked and must retry): cacheAccess's
	// active-set gate. Maintained at load issue and after every walk.
	nextAccessAt int64

	// gradNextAt is the earliest cycle the ROB head can possibly
	// graduate, when that bound is known (0 = probe every cycle, Never =
	// parked on an empty ROB until dispatch pushes): graduate's
	// active-set gate.
	gradNextAt int64

	// issueStall caches a provably-stalled stream head's verdict per
	// unit: until the recorded cycle, issueStream replays the verdict —
	// reason, and the head's memory-stall accrual via mem — without
	// walking the queue. Armed only for blocking conditions with a known
	// expiry; the empty-queue verdict (until = Never) is disarmed by the
	// next dispatch push.
	issueStall [isa.NumUnits]issueStall

	// sinceLoD counts fetched instructions toward the next
	// loss-of-decoupling event (config.Speculation.LoDEvery), and
	// lodPending holds fetch until the execute queue drains once one
	// fires. Untouched (always zero) when the extension is off.
	sinceLoD   int64
	lodPending bool

	// files indexes the physical register files by unit (branch-free
	// file()).
	files [isa.NumUnits]*regfile.File

	// pool recycles DynInst allocations.
	pool []*DynInst
}

// issueStall is one stream's cached stall verdict (see Context.issueStall).
type issueStall struct {
	until  int64
	reason stats.WasteReason
	mem    *DynInst // head charged with MemStall while cached, if any
}

// newContext builds a context for machine m.
func newContext(id int, m config.Machine, src trace.Reader) (*Context, error) {
	kind := m.Predictor
	if kind == "" {
		kind = branch.KindBHT
	}
	pred, err := branch.New(kind, m.BHTEntries)
	if err != nil {
		return nil, err
	}
	maxBr := m.MaxUnresolvedBranches
	if maxBr < 1 {
		maxBr = 1
	}
	c := &Context{
		ID:                  id,
		Source:              src,
		nextBranchResolveAt: Never,
		issuedBranches:      queue.New[*DynInst](maxBr),
		FetchBuf:            queue.New[*DynInst](m.FetchBufSize),
		APQ:                 queue.New[*DynInst](m.APQSize),
		EPQ:                 queue.New[*DynInst](m.IQSize),
		ROB:                 queue.New[*DynInst](m.ROBSize),
		SAQ:                 queue.New[*DynInst](m.SAQSize),
		APFile:              regfile.New(m.APRegs),
		EPFile:              regfile.New(m.EPRegs),
		Map:                 rename.NewTable(),
		Pred:                pred,
	}
	c.files[isa.AP] = c.APFile
	c.files[isa.EP] = c.EPFile
	c.peeker, _ = src.(trace.Peeker)
	if err := c.Map.Init(c.APFile, c.EPFile); err != nil {
		return nil, fmt.Errorf("thread %d: %w", id, err)
	}
	return c, nil
}

// file returns the register file for the given unit.
func (c *Context) file(u isa.Unit) *regfile.File { return c.files[u] }

// poolBlock is the batch size of DynInst pool growth: one backing array
// per block amortizes ramp-up allocation and keeps in-flight instructions
// dense in memory.
const poolBlock = 64

// alloc takes a DynInst from the pool (growing it a block at a time) and
// resets it. In steady state the pool recycles without allocating.
func (c *Context) alloc() *DynInst {
	if len(c.pool) == 0 {
		block := make([]DynInst, poolBlock)
		for i := range block {
			c.pool = append(c.pool, &block[i])
		}
	}
	n := len(c.pool) - 1
	d := c.pool[n]
	c.pool = c.pool[:n]
	d.reset()
	return d
}

// release returns a graduated DynInst to the pool.
func (c *Context) release(d *DynInst) {
	c.pool = append(c.pool, d)
}

// peekSource returns the next trace instruction without consuming it.
// Sources with native lookahead (trace.Peeker — interned workload
// streams) hand back a pointer into their own buffer, copy-free; others
// go through the one-instruction pending buffer.
func (c *Context) peekSource() (*isa.Inst, bool) {
	if c.peeker != nil {
		if c.Exhausted {
			return nil, false
		}
		in, ok := c.peeker.PeekNext()
		if !ok {
			c.Exhausted = true
		}
		return in, ok
	}
	if c.hasPending {
		return &c.pending, true
	}
	if c.Exhausted {
		return nil, false
	}
	if !c.Source.Next(&c.pending) {
		c.Exhausted = true
		return nil, false
	}
	c.hasPending = true
	return &c.pending, true
}

// consumeSource consumes the peeked instruction.
func (c *Context) consumeSource() {
	if c.peeker != nil {
		c.peeker.Consume()
		return
	}
	if !c.hasPending {
		panic("core: consumeSource without peek")
	}
	c.hasPending = false
}

// InFlight returns the number of instructions in the ROB (dispatched, not
// graduated), used by tests and the drain logic.
func (c *Context) InFlight() int { return c.ROB.Len() }
