package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/regfile"
	"repro/internal/rename"
	"repro/internal/trace"
)

// Context is one hardware thread context. The paper replicates fetch and
// dispatch state, register map tables, register files and all queues per
// context; the issue logic, functional units and caches are shared (and
// live in Core).
type Context struct {
	// ID is the thread index.
	ID int
	// Source is the thread's instruction stream.
	Source trace.Reader
	// Exhausted marks that Source has run dry; the thread idles.
	Exhausted bool

	// pending is a one-instruction peek buffer over Source, needed to
	// stop fetching *before* consuming a branch that would exceed the
	// control-speculation limit.
	pending    isa.Inst
	hasPending bool

	// FetchBuf holds fetched instructions awaiting dispatch. Its length
	// is the ICOUNT fetch-policy metric.
	FetchBuf *queue.Ring[*DynInst]
	// APQ and EPQ are the per-unit in-order issue queues. EPQ is the
	// paper's Instruction Queue — the decoupling slippage window.
	APQ, EPQ *queue.Ring[*DynInst]
	// ROB is the reorder buffer (program order, graduation from the head).
	ROB *queue.Ring[*DynInst]
	// SAQ is the store address queue: stores from dispatch until their
	// data is written to the cache. Loads check it for older conflicting
	// stores.
	SAQ *queue.Ring[*DynInst]

	// APFile and EPFile are the physical register files.
	APFile, EPFile *regfile.File
	// Map is the architectural→physical register map table.
	Map *rename.Table
	// Pred is the thread's private branch predictor.
	Pred branch.Predictor

	// Meta is the per-file, per-physical-register bookkeeping.
	Meta [isa.NumUnits][]regMeta

	// NextSeq numbers dynamic instructions in program order.
	NextSeq int64
	// Unresolved counts in-flight (fetched, unresolved) branches; fetch
	// stalls at the speculation limit.
	Unresolved int
	// unresolvedBranches lists issued branches awaiting resolution.
	unresolvedBranches []*DynInst
	// FetchBlocked is the mispredicted branch currently freezing fetch.
	FetchBlocked *DynInst
	// FetchResumeAt is the earliest cycle fetch may resume after a
	// mispredict redirect.
	FetchResumeAt int64

	// PendingAccess lists issued loads awaiting cache acceptance, in age
	// order.
	PendingAccess []*DynInst

	// pool recycles DynInst allocations.
	pool []*DynInst
}

// newContext builds a context for machine m.
func newContext(id int, m config.Machine, src trace.Reader) (*Context, error) {
	kind := m.Predictor
	if kind == "" {
		kind = branch.KindBHT
	}
	pred, err := branch.New(kind, m.BHTEntries)
	if err != nil {
		return nil, err
	}
	c := &Context{
		ID:       id,
		Source:   src,
		FetchBuf: queue.New[*DynInst](m.FetchBufSize),
		APQ:      queue.New[*DynInst](m.APQSize),
		EPQ:      queue.New[*DynInst](m.IQSize),
		ROB:      queue.New[*DynInst](m.ROBSize),
		SAQ:      queue.New[*DynInst](m.SAQSize),
		APFile:   regfile.New(m.APRegs),
		EPFile:   regfile.New(m.EPRegs),
		Map:      rename.NewTable(),
		Pred:     pred,
	}
	c.Meta[isa.AP] = make([]regMeta, m.APRegs)
	c.Meta[isa.EP] = make([]regMeta, m.EPRegs)
	if err := c.Map.Init(c.APFile, c.EPFile); err != nil {
		return nil, fmt.Errorf("thread %d: %w", id, err)
	}
	return c, nil
}

// file returns the register file for the given unit.
func (c *Context) file(u isa.Unit) *regfile.File {
	if u == isa.AP {
		return c.APFile
	}
	return c.EPFile
}

// alloc takes a DynInst from the pool (or allocates one) and resets it.
func (c *Context) alloc() *DynInst {
	var d *DynInst
	if n := len(c.pool); n > 0 {
		d = c.pool[n-1]
		c.pool = c.pool[:n-1]
	} else {
		d = new(DynInst)
	}
	d.reset()
	return d
}

// release returns a graduated DynInst to the pool.
func (c *Context) release(d *DynInst) {
	c.pool = append(c.pool, d)
}

// peekSource returns the next trace instruction without consuming it.
func (c *Context) peekSource() (*isa.Inst, bool) {
	if c.hasPending {
		return &c.pending, true
	}
	if c.Exhausted {
		return nil, false
	}
	if !c.Source.Next(&c.pending) {
		c.Exhausted = true
		return nil, false
	}
	c.hasPending = true
	return &c.pending, true
}

// consumeSource consumes the peeked instruction.
func (c *Context) consumeSource() {
	if !c.hasPending {
		panic("core: consumeSource without peek")
	}
	c.hasPending = false
}

// InFlight returns the number of instructions in the ROB (dispatched, not
// graduated), used by tests and the drain logic.
func (c *Context) InFlight() int { return c.ROB.Len() }
