package core

import "math/bits"

// calendar is the core's event calendar: the set of future cycles at
// which the machine's state can change on its own. Subsystems insert a
// cycle the moment the corresponding delivery time becomes known — a
// load or store address becoming available, a cache fill, a register
// value arriving, a branch resolving, fetch unfreezing after a redirect
// — and Step's fast-forward asks for the earliest scheduled cycle with a
// single O(1) peek instead of re-scanning every context, queue and
// register file (the pre-calendar design).
//
// The calendar stores bare cycles, not payloads: the stage logic already
// knows what to do once the machine is ticked at the right cycle, so all
// the scheduler needs is "nothing can change strictly before cycle T".
// That makes stale entries harmless by construction — an event whose
// cause was cancelled (say, a fetch-resume for a branch that was
// overtaken by an earlier redirect) at worst wakes the machine for one
// no-progress Tick, which accounts the cycle exactly like stepping
// would. Correctness needs only the converse invariant, enforced by the
// insertion sites and the equivalence suite: every cycle at which state
// *can* change is present (or the machine reported progress, which
// forbids skipping altogether).
//
// Structurally it is a two-level hierarchical timing wheel with an
// overflow heap:
//
//   - the wheel proper covers the next calWindow cycles as one bit per
//     cycle (64 words of 64 bits), with a one-word summary bitmap whose
//     bit w mirrors "word w has events". Schedule is two OR
//     instructions; the next-event query is at most four masked
//     trailing-zeros scans;
//   - cycles beyond the window (long L2 latencies, bus queueing) go to a
//     small binary min-heap and migrate into the wheel as it advances.
//
// Wheel bits live at index cycle&calMask, unambiguous because the
// occupied range (clearedTo, clearedTo+calWindow] never spans more than
// one window. Advancing clears passed bits in word-sized strokes, so a
// k-cycle fast-forward costs O(min(k, calWindow)/64) word writes.
type calendar struct {
	bits    [calWords]uint64
	summary uint64
	// clearedTo is the cycle up to which (inclusive) the wheel has been
	// swept clean: every wheel bit encodes a cycle in
	// (clearedTo, clearedTo+calWindow].
	clearedTo int64
	// far holds scheduled cycles beyond the wheel window, as a binary
	// min-heap (hand-rolled: the hot path must not allocate and the
	// stdlib heap interface boxes).
	far []int64
}

const (
	// calWindow is the wheel span in cycles. It comfortably covers the
	// paper's event horizon (L2 latency up to a few hundred cycles plus
	// bus queueing); anything longer overflows to the heap.
	calWindow = 1 << 12
	calMask   = calWindow - 1
	calWords  = calWindow / 64
)

// schedule inserts an event at cycle `at`, given the current cycle. Calls
// with at <= now+1 are ignored: the present is not a future event, and
// an event on the very next cycle needs no entry because Step always
// simulates at least one cycle before consulting the calendar — an event
// at time T only influences cycles ≥ T, all of which the unconditional
// Tick covers.
func (c *calendar) schedule(now, at int64) {
	if at <= now+1 {
		return
	}
	if at-c.clearedTo > calWindow {
		if at-now > calWindow {
			c.farPush(at)
			return
		}
		// The wheel lags `now` (advance is lazy: it runs only on
		// queries); catch it up so the event fits the window.
		c.advance(now)
	}
	idx := uint64(at) & calMask
	c.bits[idx>>6] |= 1 << (idx & 63)
	c.summary |= 1 << (idx >> 6)
}

// nextAfter returns the earliest scheduled cycle strictly after now, or
// Never when nothing is scheduled. Entries at or before now are
// discarded on the way.
func (c *calendar) nextAfter(now int64) int64 {
	c.advance(now)
	// Wheel entries now all lie in (now, now+calWindow]; in circular
	// order from index now+1 they appear by increasing cycle, so the
	// first set bit found below is the minimum. The four probes cover
	// the circular split: the start word's high bits, the summary above
	// and below the start word, and finally the start word's low bits
	// (which encode cycles near now+calWindow, after the wrap).
	if c.summary != 0 {
		start := uint64(now+1) & calMask
		w := start >> 6
		if m := c.bits[w] &^ (1<<(start&63) - 1); m != 0 {
			return c.cycleFor(now, w<<6|uint64(bits.TrailingZeros64(m)))
		}
		if s := c.summary &^ (1<<(w+1) - 1); s != 0 {
			hw := uint64(bits.TrailingZeros64(s))
			return c.cycleFor(now, hw<<6|uint64(bits.TrailingZeros64(c.bits[hw])))
		}
		if s := c.summary & (1<<w - 1); s != 0 {
			lw := uint64(bits.TrailingZeros64(s))
			return c.cycleFor(now, lw<<6|uint64(bits.TrailingZeros64(c.bits[lw])))
		}
		if m := c.bits[w] & (1<<(start&63) - 1); m != 0 {
			return c.cycleFor(now, w<<6|uint64(bits.TrailingZeros64(m)))
		}
	}
	if len(c.far) > 0 {
		return c.far[0]
	}
	return Never
}

// cycleFor converts a wheel bit index back to the absolute cycle it
// encodes, given that all wheel cycles lie in (now, now+calWindow].
func (c *calendar) cycleFor(now int64, idx uint64) int64 {
	base := now + 1
	return base + int64((idx-uint64(base))&calMask)
}

// advance sweeps the wheel clean through cycle `to` and migrates far
// events that now fit the window.
func (c *calendar) advance(to int64) {
	if to <= c.clearedTo {
		return
	}
	if to-c.clearedTo >= calWindow {
		// The whole wheel span has passed.
		if c.summary != 0 {
			c.bits = [calWords]uint64{}
			c.summary = 0
		}
	} else if c.summary != 0 {
		c.clearRange(c.clearedTo+1, to)
	}
	c.clearedTo = to
	for len(c.far) > 0 && c.far[0] <= to+calWindow {
		at := c.farPop()
		if at > to {
			idx := uint64(at) & calMask
			c.bits[idx>>6] |= 1 << (idx & 63)
			c.summary |= 1 << (idx >> 6)
		}
	}
}

// clearRange clears the wheel bits for cycles [from, to], where the span
// is known to be shorter than one window. The range may wrap the wheel;
// word indices are recomputed per segment, so the walk follows the ring.
func (c *calendar) clearRange(from, to int64) {
	for from <= to {
		b := uint64(from) & 63
		wordEnd := from + int64(63-b) // last cycle sharing from's word
		if wordEnd > to {
			wordEnd = to
		}
		mask := ^uint64(0) >> (63 - uint64(wordEnd)&63) &^ (1<<b - 1)
		w := (uint64(from) & calMask) >> 6
		c.bits[w] &^= mask
		if c.bits[w] == 0 {
			c.summary &^= 1 << w
		}
		from = wordEnd + 1
	}
}

// empty reports whether no events are scheduled (tests only).
func (c *calendar) empty() bool { return c.summary == 0 && len(c.far) == 0 }

// farPush inserts into the overflow min-heap.
func (c *calendar) farPush(at int64) {
	c.far = append(c.far, at)
	i := len(c.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if c.far[p] <= c.far[i] {
			break
		}
		c.far[p], c.far[i] = c.far[i], c.far[p]
		i = p
	}
}

// farPop removes and returns the overflow minimum.
func (c *calendar) farPop() int64 {
	min := c.far[0]
	last := len(c.far) - 1
	c.far[0] = c.far[last]
	c.far = c.far[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && c.far[l] < c.far[s] {
			s = l
		}
		if r < last && c.far[r] < c.far[s] {
			s = r
		}
		if s == i {
			break
		}
		c.far[i], c.far[s] = c.far[s], c.far[i]
		i = s
	}
	return min
}
