package core_test

// Core microbenchmarks: raw simulation throughput of the hot loop, with
// and without the fast-forward scheduler, plus a steady-state allocation
// check on Tick. CI runs these with -benchmem and compares against the
// base commit with benchstat (see .github/workflows/ci.yml); run locally
// with
//
//	go test -run '^$' -bench . -benchmem ./internal/core
//
// BenchmarkCoreRun/4T-L2_256 vs BenchmarkCoreRunStepped/4T-L2_256 is the
// headline pair: the paper's interesting regime is huge memory latency,
// which is exactly where most cycles are provably idle and skippable.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

// benchInsts is the per-iteration graduation target. Large enough to
// reach steady state (warmed caches, saturated queues), small enough to
// keep -count=3 runs quick.
const benchInsts = 120_000

type benchConfig struct {
	name    string
	machine config.Machine
}

func benchConfigs() []benchConfig {
	return []benchConfig{
		{"1T-L2_16", config.Figure2(1)},
		{"1T-L2_256", config.Figure2(1).WithL2Latency(256)},
		{"4T-L2_16", config.Figure2(4)},
		{"4T-L2_256", config.Figure2(4).WithL2Latency(256)},
	}
}

func newBenchCore(b *testing.B, m config.Machine) *core.Core {
	b.Helper()
	c, err := core.New(m, workload.MixSources(m.Threads, workload.MixOpts{}))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// runTo advances the core (fast-forwarding) until the graduation target.
func runTo(c *core.Core, insts int64) {
	const horizon = int64(1) << 50
	for c.Collector().Graduated < insts {
		c.Step(horizon)
	}
}

// BenchmarkCoreRun measures simulated instructions per second with the
// fast-forward scheduler (the default mode of Core.Run and sim.Run).
func BenchmarkCoreRun(b *testing.B) {
	for _, cfg := range benchConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			var skipped, cycles int64
			for i := 0; i < b.N; i++ {
				c := newBenchCore(b, cfg.machine)
				runTo(c, benchInsts)
				skipped += c.SkippedCycles()
				cycles += c.Collector().Cycles
			}
			reportSimRate(b, cycles)
			b.ReportMetric(100*float64(skipped)/float64(cycles), "skipped-%")
		})
	}
}

// BenchmarkCoreRunStepped is the cycle-by-cycle baseline the fast-forward
// speedup is measured against.
func BenchmarkCoreRunStepped(b *testing.B) {
	for _, cfg := range benchConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				c := newBenchCore(b, cfg.machine)
				for c.Collector().Graduated < benchInsts {
					c.Tick()
				}
				cycles += c.Collector().Cycles
			}
			reportSimRate(b, cycles)
		})
	}
}

func reportSimRate(b *testing.B, cycles int64) {
	b.Helper()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(benchInsts)*float64(b.N)/sec, "insts/s")
		b.ReportMetric(float64(cycles)/sec, "cycles/s")
	}
}

// BenchmarkTick measures one steady-state cycle of the 4-thread machine.
// The headline number is allocs/op: the hot loop must not allocate once
// the pipeline has reached steady state.
func BenchmarkTick(b *testing.B) {
	for _, cfg := range []benchConfig{
		{"4T-L2_16", config.Figure2(4)},
		{"4T-L2_256", config.Figure2(4).WithL2Latency(256)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			c := newBenchCore(b, cfg.machine)
			runTo(c, 40_000) // warm caches, fill queues, grow all pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Tick()
			}
		})
	}
}

// BenchmarkStep measures the fast-forwarding scheduler at the same
// steady state, skips included (also required to be allocation-free).
func BenchmarkStep(b *testing.B) {
	c := newBenchCore(b, config.Figure2(4).WithL2Latency(256))
	runTo(c, 40_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(int64(1) << 50)
	}
}

// TestBenchConfigsValid guards the benchmark configurations against
// silent config/workload API drift.
func TestBenchConfigsValid(t *testing.T) {
	for _, cfg := range benchConfigs() {
		if _, err := core.New(cfg.machine, workload.MixSources(cfg.machine.Threads, workload.MixOpts{})); err != nil {
			t.Errorf("%s: %v", cfg.name, err)
		}
	}
}
