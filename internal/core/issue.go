package core

import (
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/regfile"
	"repro/internal/stats"
)

// issue runs the shared issue stage for one cycle. In decoupled mode each
// unit walks every thread's own stream in order (full simultaneous issue,
// round-robin thread priority); slippage between the AP and EP streams is
// unbounded up to the queue capacities. In non-decoupled mode each thread
// issues strictly in program order across both units — the degenerate
// machine of the paper with the instruction queues disabled.
func (c *Core) issue() {
	c.reasonBuf[isa.AP] = [stats.NumWasteReasons]int32{}
	c.reasonBuf[isa.EP] = [stats.NumWasteReasons]int32{}
	c.reasonTotal[isa.AP] = 0
	c.reasonTotal[isa.EP] = 0
	c.memStallBuf = c.memStallBuf[:0]
	shared := c.cfg.SharedFUs
	if shared <= 0 {
		shared = 1 << 30 // effectively unlimited: private per-unit FUs
	}
	if c.cfg.Decoupled {
		c.issueDecoupled(shared)
	} else {
		c.issueMerged(shared)
	}
}

// issueDecoupled walks the AP streams then the EP streams.
func (c *Core) issueDecoupled(shared int) {
	apSlots, epSlots := c.cfg.APWidth, c.cfg.EPWidth

	if c.cfg.IssuePolicy != config.IssueOldestFirst {
		// Round-robin: walk the rotation directly, no order buffer.
		n := len(c.ctxs)
		t := c.rotStart()
		for k := 0; k < n && apSlots > 0 && shared > 0; k++ {
			apSlots, shared = c.issueStream(c.ctxs[t], isa.AP, apSlots, shared)
			t = c.rotNext(t)
		}
		t = c.rotStart()
		for k := 0; k < n && epSlots > 0 && shared > 0; k++ {
			epSlots, shared = c.issueStream(c.ctxs[t], isa.EP, epSlots, shared)
			t = c.rotNext(t)
		}
	} else {
		for _, t := range c.threadOrder(isa.AP) {
			if apSlots <= 0 || shared <= 0 {
				break
			}
			apSlots, shared = c.issueStream(c.ctxs[t], isa.AP, apSlots, shared)
		}
		for _, t := range c.threadOrder(isa.EP) {
			if epSlots <= 0 || shared <= 0 {
				break
			}
			epSlots, shared = c.issueStream(c.ctxs[t], isa.EP, epSlots, shared)
		}
	}
	c.accountSlots(isa.AP, c.cfg.APWidth, apSlots)
	c.accountSlots(isa.EP, c.cfg.EPWidth, epSlots)
}

// threadOrder returns the thread visit order for one unit's issue walk:
// round-robin rotation (the paper's policy) or oldest-first by the fetch
// time of each thread's stream head (ablation A7).
func (c *Core) threadOrder(unit isa.Unit) []int {
	n := len(c.ctxs)
	order := c.orderBuf[:0]
	t := c.rotStart()
	for k := 0; k < n; k++ {
		order = append(order, t)
		t = c.rotNext(t)
	}
	if c.cfg.IssuePolicy != config.IssueOldestFirst {
		c.orderBuf = order
		return order
	}
	age := func(t int) int64 {
		var q *queue.Ring[*DynInst]
		if unit == isa.AP {
			q = c.ctxs[t].APQ
		} else {
			q = c.ctxs[t].EPQ
		}
		if d, ok := q.Peek(); ok {
			return d.FetchedAt
		}
		return Never // empty stream: lowest priority
	}
	// Stable insertion sort over the rotated order keeps ties fair.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && age(order[j]) < age(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	c.orderBuf = order
	return order
}

// issueStream issues consecutive ready instructions from one thread's
// stream for the given unit, recording the blocking reason when the head
// cannot issue while slots remain.
//
// The per-unit stall cache (Context.issueStall) is the issue stage's
// ready-set: a stream whose head is provably stalled until a known cycle
// — or whose queue is empty — records its cached verdict without
// touching the queue or re-classifying, exactly reproducing what the
// full walk would do (including the head's memory-stall accrual). The
// cache is armed only when the blocking condition has a known expiry
// (the same rule as DynInst.StallUntil) and re-armed by dispatch when a
// push ends an empty-queue verdict.
func (c *Core) issueStream(ctx *Context, unit isa.Unit, slots, shared int) (int, int) {
	st := &ctx.issueStall[unit]
	if c.now < st.until {
		if st.mem != nil {
			st.mem.MemStall++
			c.memStallBuf = append(c.memStallBuf, st.mem)
		}
		c.record(unit, st.reason)
		return slots, shared
	}
	q := ctx.APQ
	if unit == isa.EP {
		q = ctx.EPQ
	}
	for slots > 0 && shared > 0 {
		d, ok := q.Peek()
		if !ok {
			st.until, st.reason, st.mem = Never, stats.WasteIdle, nil
			c.record(unit, stats.WasteIdle)
			return slots, shared
		}
		if c.now < d.StallUntil {
			r := c.stalledVerdict(d)
			c.cacheStreamStall(st, d, r)
			c.record(unit, r)
			return slots, shared
		}
		reason, ready := c.classify(ctx, d)
		if !ready {
			if c.now < d.StallUntil {
				// block() recorded a known delivery time: the verdict —
				// and the head — are fixed until then.
				c.cacheStreamStall(st, d, reason)
			}
			c.record(unit, reason)
			return slots, shared
		}
		q.Drop()
		c.execute(ctx, d)
		slots--
		shared--
		c.col.Slots[unit].Issued++
	}
	return slots, shared
}

// cacheStreamStall arms one stream's stall cache from its blocked head.
func (c *Core) cacheStreamStall(st *issueStall, d *DynInst, r stats.WasteReason) {
	st.until, st.reason = d.StallUntil, r
	if r == stats.WasteMem {
		st.mem = d
	} else {
		st.mem = nil
	}
}

// issueMerged implements the non-decoupled machine: per thread, walk the
// merged program-order stream; stop at the first instruction that cannot
// issue (operands, unit width, or shared FU budget).
func (c *Core) issueMerged(shared int) {
	apSlots, epSlots := c.cfg.APWidth, c.cfg.EPWidth

	for _, t := range c.threadOrder(isa.AP) {
		if (apSlots <= 0 && epSlots <= 0) || shared <= 0 {
			break
		}
		ctx := c.ctxs[t]
	walk:
		for shared > 0 {
			d := mergedHead(ctx)
			if d == nil {
				c.record(isa.AP, stats.WasteIdle)
				c.record(isa.EP, stats.WasteIdle)
				break
			}
			slots := &apSlots
			q := ctx.APQ
			if d.Unit == isa.EP {
				slots = &epSlots
				q = ctx.EPQ
			}
			if *slots == 0 {
				// In-order: a width-stalled head blocks the other unit
				// too. Charge the structural reason to the other unit.
				other := isa.AP
				if d.Unit == isa.AP {
					other = isa.EP
				}
				c.record(other, stats.WasteOther)
				break walk
			}
			if c.now < d.StallUntil {
				reason := c.stalledVerdict(d)
				c.record(isa.AP, reason)
				c.record(isa.EP, reason)
				break walk
			}
			reason, ready := c.classify(ctx, d)
			if !ready {
				// Program order blocks both units on this reason.
				c.record(isa.AP, reason)
				c.record(isa.EP, reason)
				break walk
			}
			q.Drop()
			c.execute(ctx, d)
			*slots--
			shared--
			c.col.Slots[d.Unit].Issued++
		}
	}
	c.accountSlots(isa.AP, c.cfg.APWidth, apSlots)
	c.accountSlots(isa.EP, c.cfg.EPWidth, epSlots)
}

// mergedHead returns the older of the two stream heads (program order).
func mergedHead(ctx *Context) *DynInst {
	a, aok := ctx.APQ.Peek()
	e, eok := ctx.EPQ.Peek()
	switch {
	case aok && eok:
		if a.Seq < e.Seq {
			return a
		}
		return e
	case aok:
		return a
	case eok:
		return e
	default:
		return nil
	}
}

// classify decides whether d can issue now and, if not, why. It also
// maintains d's memory-stall accounting (the perceived-latency numerator).
func (c *Core) classify(ctx *Context, d *DynInst) (stats.WasteReason, bool) {
	// Stores issue on address operands only (Src2); the data operand
	// (Src1) joins at graduation via the SAQ. Everything else needs all
	// sources. The None guard makes the RegReady index known-valid.
	if p := d.PSrc1; p != regfile.None && !d.IsStore() && !ctx.files[d.Src1File].RegReady(p, c.now) {
		return c.block(ctx, d, p, d.Src1File), false
	}
	if p := d.PSrc2; p != regfile.None && !ctx.files[d.Src2File].RegReady(p, c.now) {
		return c.block(ctx, d, p, d.Src2File), false
	}
	return 0, true
}

// stalledVerdict repeats a cached classification: the blocking operand
// cannot arrive before d.StallUntil, so the verdict — and blockOn's
// per-cycle accounting for the unchanged blocker — repeats verbatim.
func (c *Core) stalledVerdict(d *DynInst) stats.WasteReason {
	if d.StallReason == stats.WasteMem {
		d.MemStall++
		c.memStallBuf = append(c.memStallBuf, d)
	}
	return d.StallReason
}

// block classifies a blocked head via blockOn and, when the operand's
// delivery time is already known, caches the verdict until that cycle.
// An unknown delivery time (a load the cache has not accepted) cannot be
// cached: it may resolve to any cycle.
func (c *Core) block(ctx *Context, d *DynInst, p regfile.PhysReg, file isa.Unit) stats.WasteReason {
	reason := c.blockOn(ctx, d, p, file)
	if until := ctx.file(file).ReadyAt(p); until != regfile.NeverReady {
		d.StallUntil = until
		d.StallReason = reason
	}
	return reason
}

// blockOn classifies a not-ready operand and accrues the head's memory
// stall time. Switching blockers flushes the previous blocker's
// perceived-latency sample.
func (c *Core) blockOn(ctx *Context, d *DynInst, p regfile.PhysReg, file isa.Unit) stats.WasteReason {
	if !ctx.files[file].Entry(p).MissedLoad {
		return stats.WasteFU
	}
	if d.BlockPhys != p || d.BlockFile != file {
		c.flushBlockSample(ctx, d)
		d.BlockPhys = p
		d.BlockFile = file
		d.MemStall = 0
	}
	d.MemStall++
	c.memStallBuf = append(c.memStallBuf, d)
	return stats.WasteMem
}

// flushBlockSample records the perceived-latency sample for the missed
// load currently blocking d, if one is pending.
func (c *Core) flushBlockSample(ctx *Context, d *DynInst) {
	if d.BlockPhys == regfile.None {
		return
	}
	m := ctx.files[d.BlockFile].Entry(d.BlockPhys)
	if m.MissedLoad && !m.Sampled {
		m.Sampled = true
		c.addPerceived(d.BlockFile, d.MemStall)
	}
	d.BlockPhys = regfile.None
	d.MemStall = 0
}

// addPerceived records one perceived-latency sample, classified FP or
// integer by the register file the load writes.
func (c *Core) addPerceived(file isa.Unit, cycles int64) {
	if file == isa.EP {
		c.col.PerceivedFP.Add(cycles)
	} else {
		c.col.PerceivedInt.Add(cycles)
	}
}

// execute performs issue-time actions: computes completion times, writes
// register-ready times, starts memory accesses and branch resolution, and
// takes the perceived-latency samples for consumed missed loads.
func (c *Core) execute(ctx *Context, d *DynInst) {
	c.progressed = true
	d.Issued = true
	d.IssueAt = c.now

	// Perceived-latency sampling: first consumer of each missed load.
	c.samplePerceived(ctx, d)

	switch d.Op {
	case isa.OpLoad:
		d.AccessAt = c.now + c.cfg.APLatency
		ctx.PendingAccess = append(ctx.PendingAccess, d)
		if d.AccessAt < ctx.nextAccessAt || len(ctx.PendingAccess) == 1 {
			ctx.nextAccessAt = d.AccessAt
		}
		c.cal.schedule(c.now, d.AccessAt)
	case isa.OpStore:
		d.AccessAt = c.now + c.cfg.APLatency
		d.DoneAt = d.AccessAt // address computed; data joins at graduation
		c.cal.schedule(c.now, d.AccessAt)
	case isa.OpBranch:
		d.DoneAt = c.now + c.cfg.APLatency
		if !ctx.issuedBranches.Push(d) {
			panic("core: issued branches exceed the speculation limit")
		}
		if d.DoneAt < ctx.nextBranchResolveAt {
			ctx.nextBranchResolveAt = d.DoneAt
		}
		if d.DoneAt < c.branchResolveAt {
			c.branchResolveAt = d.DoneAt
		}
		c.cal.schedule(c.now, d.DoneAt)
	default:
		lat := c.cfg.APLatency
		if d.Unit == isa.EP {
			lat = c.cfg.EPLatency
		}
		d.DoneAt = c.now + lat
		if d.PDest != regfile.None {
			ctx.file(d.DestFile).SetReadyAt(d.PDest, d.DoneAt)
		}
		c.cal.schedule(c.now, d.DoneAt)
	}
}

// samplePerceived records a zero-or-more-cycle sample for every
// missed-load operand this instruction consumes whose sample is still
// pending. The stall counted is the time *this* instruction spent blocked
// on that operand at the head of its stream — zero when decoupling
// delivered the data before the consumer arrived.
func (c *Core) samplePerceived(ctx *Context, d *DynInst) {
	if !d.IsStore() { // store data is consumed at graduation, not issue
		c.takePerceived(ctx, d, d.PSrc1, d.Src1File)
	}
	c.takePerceived(ctx, d, d.PSrc2, d.Src2File)
}

// takePerceived samples one consumed operand if it is an unsampled
// missed load.
func (c *Core) takePerceived(ctx *Context, d *DynInst, p regfile.PhysReg, file isa.Unit) {
	if p == regfile.None {
		return
	}
	m := ctx.files[file].Entry(p)
	if !m.MissedLoad || m.Sampled {
		return
	}
	m.Sampled = true
	var cycles int64
	if d.BlockPhys == p && d.BlockFile == file {
		cycles = d.MemStall
		d.BlockPhys = regfile.None
		d.MemStall = 0
	}
	c.addPerceived(file, cycles)
}

// record notes one thread's blocking reason for a unit this cycle.
func (c *Core) record(unit isa.Unit, r stats.WasteReason) {
	c.reasonBuf[unit][r]++
	c.reasonTotal[unit]++
}

// accountSlots distributes a unit's wasted slots this cycle across the
// blocked threads' reasons (evenly, one reason per thread), defaulting to
// idle when no thread reported a reason — the Tullsen-style accounting the
// paper's Figure 3 uses. The float share is added once per blocked
// thread, never pre-multiplied, so the waste buckets accumulate in the
// exact sequence the original per-thread walk produced (bit-identical
// floats).
func (c *Core) accountSlots(unit isa.Unit, width, left int) {
	s := &c.col.Slots[unit]
	s.Total += int64(width)
	if left <= 0 {
		return
	}
	n := int(c.reasonTotal[unit])
	if n == 0 {
		s.Wasted[stats.WasteIdle] += float64(left)
		return
	}
	share := float64(left) / float64(n)
	for r, k := range c.reasonBuf[unit] {
		for ; k > 0; k-- {
			s.Wasted[r] += share
		}
	}
}
