package core

import (
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/regfile"
	"repro/internal/stats"
)

// issue runs the shared issue stage for one cycle. In decoupled mode each
// unit walks every thread's own stream in order (full simultaneous issue,
// round-robin thread priority); slippage between the AP and EP streams is
// unbounded up to the queue capacities. In non-decoupled mode each thread
// issues strictly in program order across both units — the degenerate
// machine of the paper with the instruction queues disabled.
func (c *Core) issue() {
	c.reasonBuf[isa.AP] = c.reasonBuf[isa.AP][:0]
	c.reasonBuf[isa.EP] = c.reasonBuf[isa.EP][:0]
	c.memStallBuf = c.memStallBuf[:0]
	shared := c.cfg.SharedFUs
	if shared <= 0 {
		shared = 1 << 30 // effectively unlimited: private per-unit FUs
	}
	if c.cfg.Decoupled {
		c.issueDecoupled(shared)
	} else {
		c.issueMerged(shared)
	}
}

// issueDecoupled walks the AP streams then the EP streams.
func (c *Core) issueDecoupled(shared int) {
	apSlots, epSlots := c.cfg.APWidth, c.cfg.EPWidth

	if c.cfg.IssuePolicy != config.IssueOldestFirst {
		// Round-robin: walk the rotation directly, no order buffer.
		n := len(c.ctxs)
		t := c.rotStart()
		for k := 0; k < n && apSlots > 0 && shared > 0; k++ {
			c.issueStream(c.ctxs[t], isa.AP, &apSlots, &shared)
			t = c.rotNext(t)
		}
		t = c.rotStart()
		for k := 0; k < n && epSlots > 0 && shared > 0; k++ {
			c.issueStream(c.ctxs[t], isa.EP, &epSlots, &shared)
			t = c.rotNext(t)
		}
	} else {
		for _, t := range c.threadOrder(isa.AP) {
			if apSlots <= 0 || shared <= 0 {
				break
			}
			c.issueStream(c.ctxs[t], isa.AP, &apSlots, &shared)
		}
		for _, t := range c.threadOrder(isa.EP) {
			if epSlots <= 0 || shared <= 0 {
				break
			}
			c.issueStream(c.ctxs[t], isa.EP, &epSlots, &shared)
		}
	}
	c.accountSlots(isa.AP, c.cfg.APWidth, apSlots)
	c.accountSlots(isa.EP, c.cfg.EPWidth, epSlots)
}

// threadOrder returns the thread visit order for one unit's issue walk:
// round-robin rotation (the paper's policy) or oldest-first by the fetch
// time of each thread's stream head (ablation A7).
func (c *Core) threadOrder(unit isa.Unit) []int {
	n := len(c.ctxs)
	order := c.orderBuf[:0]
	t := c.rotStart()
	for k := 0; k < n; k++ {
		order = append(order, t)
		t = c.rotNext(t)
	}
	if c.cfg.IssuePolicy != config.IssueOldestFirst {
		c.orderBuf = order
		return order
	}
	age := func(t int) int64 {
		var q *queue.Ring[*DynInst]
		if unit == isa.AP {
			q = c.ctxs[t].APQ
		} else {
			q = c.ctxs[t].EPQ
		}
		if d, ok := q.Peek(); ok {
			return d.FetchedAt
		}
		return Never // empty stream: lowest priority
	}
	// Stable insertion sort over the rotated order keeps ties fair.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && age(order[j]) < age(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	c.orderBuf = order
	return order
}

// issueStream issues consecutive ready instructions from one thread's
// stream for the given unit, recording the blocking reason when the head
// cannot issue while slots remain.
func (c *Core) issueStream(ctx *Context, unit isa.Unit, slots, shared *int) {
	q := ctx.APQ
	if unit == isa.EP {
		q = ctx.EPQ
	}
	for *slots > 0 && *shared > 0 {
		d, ok := q.Peek()
		if !ok {
			c.record(unit, stats.WasteIdle)
			return
		}
		if c.now < d.StallUntil {
			c.record(unit, c.stalledVerdict(d))
			return
		}
		reason, ready := c.classify(ctx, d)
		if !ready {
			c.record(unit, reason)
			return
		}
		q.Pop()
		c.execute(ctx, d)
		*slots--
		*shared--
		c.col.Slots[unit].Issued++
	}
}

// issueMerged implements the non-decoupled machine: per thread, walk the
// merged program-order stream; stop at the first instruction that cannot
// issue (operands, unit width, or shared FU budget).
func (c *Core) issueMerged(shared int) {
	apSlots, epSlots := c.cfg.APWidth, c.cfg.EPWidth

	for _, t := range c.threadOrder(isa.AP) {
		if (apSlots <= 0 && epSlots <= 0) || shared <= 0 {
			break
		}
		ctx := c.ctxs[t]
	walk:
		for shared > 0 {
			d := mergedHead(ctx)
			if d == nil {
				c.record(isa.AP, stats.WasteIdle)
				c.record(isa.EP, stats.WasteIdle)
				break
			}
			slots := &apSlots
			q := ctx.APQ
			if d.Unit == isa.EP {
				slots = &epSlots
				q = ctx.EPQ
			}
			if *slots == 0 {
				// In-order: a width-stalled head blocks the other unit
				// too. Charge the structural reason to the other unit.
				other := isa.AP
				if d.Unit == isa.AP {
					other = isa.EP
				}
				c.record(other, stats.WasteOther)
				break walk
			}
			if c.now < d.StallUntil {
				reason := c.stalledVerdict(d)
				c.record(isa.AP, reason)
				c.record(isa.EP, reason)
				break walk
			}
			reason, ready := c.classify(ctx, d)
			if !ready {
				// Program order blocks both units on this reason.
				c.record(isa.AP, reason)
				c.record(isa.EP, reason)
				break walk
			}
			q.Pop()
			c.execute(ctx, d)
			*slots--
			shared--
			c.col.Slots[d.Unit].Issued++
		}
	}
	c.accountSlots(isa.AP, c.cfg.APWidth, apSlots)
	c.accountSlots(isa.EP, c.cfg.EPWidth, epSlots)
}

// mergedHead returns the older of the two stream heads (program order).
func mergedHead(ctx *Context) *DynInst {
	a, aok := ctx.APQ.Peek()
	e, eok := ctx.EPQ.Peek()
	switch {
	case aok && eok:
		if a.Seq < e.Seq {
			return a
		}
		return e
	case aok:
		return a
	case eok:
		return e
	default:
		return nil
	}
}

// classify decides whether d can issue now and, if not, why. It also
// maintains d's memory-stall accounting (the perceived-latency numerator).
func (c *Core) classify(ctx *Context, d *DynInst) (stats.WasteReason, bool) {
	// Stores issue on address operands only (Src2); the data operand
	// (Src1) joins at graduation via the SAQ. Everything else needs all
	// sources.
	if !d.IsStore() && d.PSrc1 != regfile.None && !ctx.file(d.Src1File).Ready(d.PSrc1, c.now) {
		return c.block(ctx, d, d.PSrc1, d.Src1File), false
	}
	if d.PSrc2 != regfile.None && !ctx.file(d.Src2File).Ready(d.PSrc2, c.now) {
		return c.block(ctx, d, d.PSrc2, d.Src2File), false
	}
	return 0, true
}

// stalledVerdict repeats a cached classification: the blocking operand
// cannot arrive before d.StallUntil, so the verdict — and blockOn's
// per-cycle accounting for the unchanged blocker — repeats verbatim.
func (c *Core) stalledVerdict(d *DynInst) stats.WasteReason {
	if d.StallReason == stats.WasteMem {
		d.MemStall++
		c.memStallBuf = append(c.memStallBuf, d)
	}
	return d.StallReason
}

// block classifies a blocked head via blockOn and, when the operand's
// delivery time is already known, caches the verdict until that cycle.
// An unknown delivery time (a load the cache has not accepted) cannot be
// cached: it may resolve to any cycle.
func (c *Core) block(ctx *Context, d *DynInst, p regfile.PhysReg, file isa.Unit) stats.WasteReason {
	reason := c.blockOn(ctx, d, p, file)
	if until := ctx.file(file).ReadyAt(p); until != regfile.NeverReady {
		d.StallUntil = until
		d.StallReason = reason
	}
	return reason
}

// blockOn classifies a not-ready operand and accrues the head's memory
// stall time. Switching blockers flushes the previous blocker's
// perceived-latency sample.
func (c *Core) blockOn(ctx *Context, d *DynInst, p regfile.PhysReg, file isa.Unit) stats.WasteReason {
	if !ctx.Meta[file][p].MissedLoad {
		return stats.WasteFU
	}
	if d.BlockPhys != p || d.BlockFile != file {
		c.flushBlockSample(ctx, d)
		d.BlockPhys = p
		d.BlockFile = file
		d.MemStall = 0
	}
	d.MemStall++
	c.memStallBuf = append(c.memStallBuf, d)
	return stats.WasteMem
}

// flushBlockSample records the perceived-latency sample for the missed
// load currently blocking d, if one is pending.
func (c *Core) flushBlockSample(ctx *Context, d *DynInst) {
	if d.BlockPhys == regfile.None {
		return
	}
	m := &ctx.Meta[d.BlockFile][d.BlockPhys]
	if m.MissedLoad && !m.Sampled {
		m.Sampled = true
		c.addPerceived(d.BlockFile, d.MemStall)
	}
	d.BlockPhys = regfile.None
	d.MemStall = 0
}

// addPerceived records one perceived-latency sample, classified FP or
// integer by the register file the load writes.
func (c *Core) addPerceived(file isa.Unit, cycles int64) {
	if file == isa.EP {
		c.col.PerceivedFP.Add(cycles)
	} else {
		c.col.PerceivedInt.Add(cycles)
	}
}

// execute performs issue-time actions: computes completion times, writes
// register-ready times, starts memory accesses and branch resolution, and
// takes the perceived-latency samples for consumed missed loads.
func (c *Core) execute(ctx *Context, d *DynInst) {
	c.progressed = true
	d.Issued = true
	d.IssueAt = c.now

	// Perceived-latency sampling: first consumer of each missed load.
	c.samplePerceived(ctx, d)

	switch d.Op {
	case isa.OpLoad:
		d.AccessAt = c.now + c.cfg.APLatency
		ctx.PendingAccess = append(ctx.PendingAccess, d)
	case isa.OpStore:
		d.AccessAt = c.now + c.cfg.APLatency
		d.DoneAt = d.AccessAt // address computed; data joins at graduation
	case isa.OpBranch:
		d.DoneAt = c.now + c.cfg.APLatency
		if d.DoneAt < ctx.nextBranchResolveAt {
			ctx.nextBranchResolveAt = d.DoneAt
		}
	default:
		lat := c.cfg.APLatency
		if d.Unit == isa.EP {
			lat = c.cfg.EPLatency
		}
		d.DoneAt = c.now + lat
		if d.PDest != regfile.None {
			ctx.file(d.DestFile).SetReadyAt(d.PDest, d.DoneAt)
		}
	}
}

// samplePerceived records a zero-or-more-cycle sample for every
// missed-load operand this instruction consumes whose sample is still
// pending. The stall counted is the time *this* instruction spent blocked
// on that operand at the head of its stream — zero when decoupling
// delivered the data before the consumer arrived.
func (c *Core) samplePerceived(ctx *Context, d *DynInst) {
	take := func(p regfile.PhysReg, file isa.Unit) {
		if p == regfile.None {
			return
		}
		m := &ctx.Meta[file][p]
		if !m.MissedLoad || m.Sampled {
			return
		}
		m.Sampled = true
		var cycles int64
		if d.BlockPhys == p && d.BlockFile == file {
			cycles = d.MemStall
			d.BlockPhys = regfile.None
			d.MemStall = 0
		}
		c.addPerceived(file, cycles)
	}
	if !d.IsStore() { // store data is consumed at graduation, not issue
		take(d.PSrc1, d.Src1File)
	}
	take(d.PSrc2, d.Src2File)
}

// record notes one thread's blocking reason for a unit this cycle.
func (c *Core) record(unit isa.Unit, r stats.WasteReason) {
	c.reasonBuf[unit] = append(c.reasonBuf[unit], r)
}

// accountSlots distributes a unit's wasted slots this cycle across the
// blocked threads' reasons (evenly, one reason per thread), defaulting to
// idle when no thread reported a reason — the Tullsen-style accounting the
// paper's Figure 3 uses.
func (c *Core) accountSlots(unit isa.Unit, width, left int) {
	s := &c.col.Slots[unit]
	s.Total += int64(width)
	if left <= 0 {
		return
	}
	reasons := c.reasonBuf[unit]
	if len(reasons) == 0 {
		s.Wasted[stats.WasteIdle] += float64(left)
		return
	}
	share := float64(left) / float64(len(reasons))
	for _, r := range reasons {
		s.Wasted[r] += share
	}
}
