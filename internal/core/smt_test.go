package core

// Multithreading-specific behaviour, scheduling policies, and
// adversarial/property tests for the pipeline.

import (
	"testing"
	"testing/quick"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// runThreads builds a core with one trace per thread and drains it.
func runThreads(t *testing.T, m config.Machine, traces ...[]isa.Inst) *Core {
	t.Helper()
	sources := make([]trace.Reader, len(traces))
	for i, tr := range traces {
		sources[i] = trace.Slice(tr)
	}
	c, err := New(m.WithThreads(len(traces)), sources)
	if err != nil {
		t.Fatal(err)
	}
	if _, drained := c.Run(5_000_000); !drained {
		t.Fatal("machine did not drain")
	}
	return c
}

func TestSMTFairnessIdenticalThreads(t *testing.T) {
	// Two identical threads must finish together (round-robin sharing):
	// the drain time must be far below 2× the single-thread time.
	mk := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 2000; i++ {
			insts = append(insts, fpOp(uint64(i%8*4), i%4, i%4, i%4))
			insts = append(insts, intOp(0x100, 1+(i%4), 9, 10))
		}
		return insts
	}
	single := runThreads(t, config.Figure2(1), mk())
	double := runThreads(t, config.Figure2(1), mk(), mk())
	if double.Now() > single.Now()*3/2 {
		t.Fatalf("2 threads took %d cycles vs %d for 1 — no SMT overlap", double.Now(), single.Now())
	}
}

func TestMispredictStallIsPerThread(t *testing.T) {
	// Thread 0 mispredicts constantly; thread 1 is branch-free. Thread 1
	// must keep the machine busy: total cycles must track thread 1's
	// throughput, not thread 0's stalls.
	var bad, good []isa.Inst
	for i := 0; i < 1500; i++ {
		bad = append(bad, brInst(0x0, 1, i%2 == 0)) // alternating: ~50% mispredict
		good = append(good, intOp(uint64(i%8*4), 1+(i%4), 9, 10))
		good = append(good, intOp(uint64(0x40+i%8*4), 5+(i%2), 9, 10))
	}
	c := runThreads(t, config.Figure2(1), bad, good)
	// Thread 1 alone would take ~1500×2/4 = 750+ cycles; thread 0 alone
	// (mispredict-bound) takes several thousand. Combined must not be the
	// sum of both: the machine overlaps them.
	if c.Collector().Graduated != int64(len(bad)+len(good)) {
		t.Fatal("lost instructions")
	}
	soloBad := runThreads(t, config.Figure2(1), bad)
	soloGood := runThreads(t, config.Figure2(1), good)
	if c.Now() > soloBad.Now()+soloGood.Now()-soloGood.Now()/2 {
		t.Fatalf("no overlap: combined %d vs solos %d+%d", c.Now(), soloBad.Now(), soloGood.Now())
	}
}

func TestSAQIsolationAcrossThreads(t *testing.T) {
	// Thread 0 has a store stuck behind a slow FP chain at address X;
	// thread 1 loads from the same physical address. The SAQ is
	// per-thread, so thread 1's load must not wait for thread 0's store.
	m := config.Figure2(1)
	m.StoreForwarding = true // even with forwarding, no cross-thread hit
	slowStore := []isa.Inst{
		fpOp(0x0, 1, 1, 1), fpOp(0x4, 1, 1, 1), fpOp(0x8, 1, 1, 1),
		fpOp(0xc, 1, 1, 1), fpOp(0x10, 1, 1, 1), fpOp(0x14, 1, 1, 1),
		fpStore(0x18, 1, 2, 0x4000),
	}
	otherLoad := []isa.Inst{
		fpLoad(0x20, 3, 2, 0x4000),
		fpOp(0x24, 4, 3, 3),
	}
	c := runThreads(t, m, slowStore, otherLoad)
	if c.Collector().LoadConflictStalls != 0 {
		t.Fatalf("cross-thread SAQ conflict: %d stalls", c.Collector().LoadConflictStalls)
	}
	if c.Collector().StoreForwards != 0 {
		t.Fatal("cross-thread store forwarding happened")
	}
}

func TestOldestFirstIssuePolicy(t *testing.T) {
	mk := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 1500; i++ {
			insts = append(insts, fpOp(uint64(i%8*4), i%3, i%3, i%3))
			insts = append(insts, intOp(0x40, 1+(i%4), 9, 10))
		}
		return insts
	}
	m := config.Figure2(1)
	m.IssuePolicy = config.IssueOldestFirst
	c := runThreads(t, m, mk(), mk(), mk())
	if c.Collector().Graduated != 3*3000 {
		t.Fatal("oldest-first lost instructions")
	}
	rr := runThreads(t, config.Figure2(1), mk(), mk(), mk())
	// Same work, both policies near-equivalent on symmetric threads.
	ratio := float64(c.Now()) / float64(rr.Now())
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("oldest-first wildly different from RR: %d vs %d cycles", c.Now(), rr.Now())
	}
}

func TestStaticPredictorHurtsTakenLoops(t *testing.T) {
	// Always-not-taken prediction mispredicts every taken loop branch;
	// the BHT learns them. Same trace, measurably different throughput.
	var insts []isa.Inst
	for i := 0; i < 1200; i++ {
		insts = append(insts, intOp(0x0, 1+(i%4), 9, 10))
		insts = append(insts, intOp(0x4, 5+(i%2), 9, 10))
		insts = append(insts, brInst(0x8, 1, i%16 != 15)) // hot loop branch
	}
	bht := runThreads(t, config.Figure2(1), insts)
	m := config.Figure2(1)
	m.Predictor = branch.KindNotTaken
	nt := runThreads(t, m, insts)
	if bht.Collector().MispredictRate() >= nt.Collector().MispredictRate() {
		t.Fatalf("BHT mispredict rate %.2f not below static-NT %.2f",
			bht.Collector().MispredictRate(), nt.Collector().MispredictRate())
	}
	if bht.Now() >= nt.Now() {
		t.Fatalf("BHT (%d cycles) not faster than static not-taken (%d)", bht.Now(), nt.Now())
	}
	// Always-taken predicts these loops almost perfectly.
	m.Predictor = branch.KindTaken
	tk := runThreads(t, m, insts)
	if tk.Collector().MispredictRate() > 0.10 {
		t.Fatalf("always-taken mispredict rate %.2f on a taken loop", tk.Collector().MispredictRate())
	}
}

func TestGsharePredictorRuns(t *testing.T) {
	m := config.Figure2(1)
	m.Predictor = branch.KindGshare
	var insts []isa.Inst
	for i := 0; i < 800; i++ {
		insts = append(insts, intOp(0x0, 1, 9, 10))
		insts = append(insts, brInst(0x4, 1, i%2 == 0)) // alternating: gshare learns it
	}
	c := runThreads(t, m, insts)
	if c.Collector().MispredictRate() > 0.2 {
		t.Fatalf("gshare failed to learn alternation: %.2f", c.Collector().MispredictRate())
	}
}

func TestCrossUnitDependenceStallsAP(t *testing.T) {
	// An integer move reading an FP register (the loss-of-decoupling
	// conduit) must wait for the EP chain — total time is bounded below
	// by the chain latency.
	insts := []isa.Inst{
		fpOp(0x0, 1, 1, 1), // 4 cycles
		fpOp(0x4, 1, 1, 1), // +4
		{PC: 0x8, Op: isa.OpIntALU, Dest: isa.IntReg(1), Src1: isa.FPReg(1), Src2: isa.NoReg},
		brInst(0xc, 1, false),
	}
	c := runThreads(t, config.Figure2(1), insts)
	// fetch@1, dispatch@2: chain completes ~2+4+4; move issues after;
	// anything under ~10 cycles would mean the dependence was ignored.
	if c.Now() < 11 {
		t.Fatalf("LOD dependence ignored: drained in %d cycles", c.Now())
	}
}

func TestFetchStopsAtTakenBranches(t *testing.T) {
	// With a taken branch every 2 instructions, fetch delivers ≤2
	// instructions per cycle, capping IPC near 2 even though the AP could
	// issue 4.
	var insts []isa.Inst
	for i := 0; i < 2000; i++ {
		insts = append(insts, intOp(uint64(i%4*8), 1+(i%4), 9, 10))
		insts = append(insts, brInst(uint64(i%4*8+4), 1, true))
	}
	c := runThreads(t, config.Figure2(1), insts)
	if ipc := c.Collector().IPC(); ipc > 2.3 {
		t.Fatalf("IPC %.2f exceeds the taken-branch fetch bound", ipc)
	}
}

func TestSpeculationLimitThrottles(t *testing.T) {
	// Pure not-taken branch stream: the 4-unresolved-branch limit gates
	// fetch. Raising the limit must raise throughput.
	var insts []isa.Inst
	for i := 0; i < 2000; i++ {
		insts = append(insts, brInst(uint64(i%8*4), 1, false))
	}
	tight := runThreads(t, config.Figure2(1), insts)
	loose := config.Figure2(1)
	loose.MaxUnresolvedBranches = 64
	wide := runThreads(t, loose, insts)
	if wide.Now() >= tight.Now() {
		t.Fatalf("raising the speculation limit did not help: %d vs %d cycles",
			wide.Now(), tight.Now())
	}
}

func TestDispatchBackpressureCounted(t *testing.T) {
	m := config.Figure2(1)
	m.IQSize = 2 // tiny IQ: the FP chain clogs dispatch
	var insts []isa.Inst
	for i := 0; i < 400; i++ {
		insts = append(insts, fpOp(uint64(i%8*4), 0, 0, 0))
	}
	c := runThreads(t, m, insts)
	if c.Collector().DispatchStalls == 0 {
		t.Fatal("no dispatch stalls recorded with a 2-entry IQ")
	}
}

// ---------------------------------------------------------------------------
// Adversarial traces (failure injection).

func TestAdversarialTraces(t *testing.T) {
	cases := map[string][]isa.Inst{
		"zero-size load": {
			{PC: 0, Op: isa.OpLoad, Dest: isa.IntReg(1), Src1: isa.IntReg(2), Src2: isa.NoReg, Addr: 0x100, Size: 0},
			intOp(4, 3, 1, 1),
		},
		"same dest and sources": {
			intOp(0, 1, 1, 1), intOp(4, 1, 1, 1), intOp(8, 1, 1, 1),
		},
		"address near wraparound": {
			fpLoad(0, 1, 1, ^uint64(0)-7),
			fpOp(4, 2, 1, 1),
			fpStore(8, 2, 1, ^uint64(0)-39),
		},
		"store to load forwarding chain": {
			fpOp(0, 1, 1, 1),
			fpStore(4, 1, 2, 0x8000),
			fpLoad(8, 3, 2, 0x8004), // overlapping but offset
			fpOp(12, 4, 3, 3),
		},
		"all branches": {
			brInst(0, 1, true), brInst(4, 1, false), brInst(8, 1, true),
			brInst(12, 1, false), brInst(16, 1, true),
		},
		"duplicate PCs": {
			intOp(0, 1, 9, 10), intOp(0, 2, 9, 10), intOp(0, 3, 9, 10),
			brInst(0, 1, false),
		},
	}
	for name, insts := range cases {
		c := runThreads(t, config.Figure2(1), insts)
		if got := c.Collector().Graduated; got != int64(len(insts)) {
			t.Errorf("%s: graduated %d of %d", name, got, len(insts))
		}
	}
}

// ---------------------------------------------------------------------------
// Properties over random programs.

// genProgram builds a random but well-formed instruction sequence from a
// byte string: ops, registers and branch outcomes derive from the bytes.
func genProgram(data []byte) []isa.Inst {
	var insts []isa.Inst
	addr := uint64(0x1000)
	for i, b := range data {
		pc := uint64(i%32) * 4
		switch b % 7 {
		case 0, 1:
			insts = append(insts, intOp(pc, 1+int(b)%8, 9+int(b)%4, 13))
		case 2, 3:
			insts = append(insts, fpOp(pc, int(b)%6, int(b/7)%6, 8+int(b)%4))
		case 4:
			insts = append(insts, fpLoad(pc, 8+int(b)%4, 1, addr))
			addr += uint64(b%64) * 8
		case 5:
			insts = append(insts, fpStore(pc, int(b)%6, 1, addr+32))
		case 6:
			insts = append(insts, brInst(pc, 1+int(b)%4, b%3 == 0))
		}
	}
	return insts
}

// Property: every well-formed program drains completely, graduating
// exactly its length, in both machine modes, and the decoupled machine is
// never slower than the non-decoupled one.
func TestQuickProgramsDrainBothModes(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		insts := genProgram(data)
		run := func(m config.Machine) (int64, int64, bool) {
			c, err := New(m, []trace.Reader{trace.Slice(insts)})
			if err != nil {
				return 0, 0, false
			}
			_, drained := c.Run(2_000_000)
			return c.Collector().Graduated, c.Now(), drained
		}
		gDec, cycDec, okDec := run(config.Figure2(1))
		gNon, cycNon, okNon := run(config.Figure2(1).NonDecoupled())
		if !okDec || !okNon {
			return false
		}
		if gDec != int64(len(insts)) || gNon != int64(len(insts)) {
			return false
		}
		// In-order-per-stream issue can only gain from slippage — up to a
		// small terminal-drain artifact: on rare programs the decoupled
		// machine's AP/EP queue handoff delays the very last graduations by
		// a cycle or two after the source runs dry (see
		// TestDecoupledDrainSlackCounterexample for a pinned instance; a
		// 300k-program scan never exceeded 2 cycles).
		return cycDec <= cycNon+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the issue-slot accounting identity (issued + wasted = offered)
// holds for arbitrary programs and thread counts.
func TestQuickSlotAccountingIdentity(t *testing.T) {
	f := func(data []byte, threadsRaw uint8) bool {
		if len(data) == 0 {
			return true
		}
		threads := int(threadsRaw%3) + 1
		sources := make([]trace.Reader, threads)
		for i := range sources {
			sources[i] = trace.Slice(genProgram(data))
		}
		c, err := New(config.Figure2(threads), sources)
		if err != nil {
			return false
		}
		if _, drained := c.Run(2_000_000); !drained {
			return false
		}
		for u := 0; u < isa.NumUnits; u++ {
			s := c.Collector().Slots[u]
			var wasted float64
			for _, w := range s.Wasted {
				wasted += w
			}
			diff := float64(s.Issued) + wasted - float64(s.Total)
			if diff > 1e-6 || diff < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: perceived-latency samples are bounded by the worst possible
// memory round trip.
func TestQuickPerceivedBounded(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		m := config.Figure2(1).WithL2Latency(64)
		c, err := New(m, []trace.Reader{trace.Slice(genProgram(data))})
		if err != nil {
			return false
		}
		if _, drained := c.Run(2_000_000); !drained {
			return false
		}
		p := c.Collector().Perceived()
		if p.Count == 0 {
			return true
		}
		// A single sample can never exceed ~latency + queueing slack.
		return p.Mean() <= 64*4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedFUPoolCapsTotalIssue(t *testing.T) {
	// The Section-2 machine shares 4 general-purpose FUs between the
	// units: even with both streams saturated, total issue ≤ 4/cycle.
	var insts []isa.Inst
	for i := 0; i < 3000; i++ {
		insts = append(insts, intOp(uint64(i%8*4), 1+(i%6), 9, 10))
		insts = append(insts, fpOp(uint64(0x40+i%8*4), i%6, 8+(i%4), 8+(i%4)))
	}
	shared := runThreads(t, config.Section2(), insts)
	if ipc := shared.Collector().IPC(); ipc > 4.01 {
		t.Fatalf("shared-pool IPC %.2f exceeds the 4-FU budget", ipc)
	}
	// The same trace on private 4+4 FUs can exceed 4.
	private := config.Section2()
	private.SharedFUs = 0
	private.DispatchWidth = 8
	private.GraduateWidth = 8 // lift the Section-2 retirement cap too
	wide := runThreads(t, private, insts)
	if wide.Collector().IPC() <= shared.Collector().IPC() {
		t.Fatalf("private FUs (%.2f) not faster than shared pool (%.2f)",
			wide.Collector().IPC(), shared.Collector().IPC())
	}
}

func TestGraduationObservesProgramOrder(t *testing.T) {
	// A long-latency load followed by fast int ops: nothing after the
	// load may graduate before it. Observable through timing: the machine
	// cannot drain before the miss returns even though all later
	// instructions complete early.
	insts := []isa.Inst{fpLoad(0x0, 1, 1, 0x9000)}
	for i := 0; i < 20; i++ {
		insts = append(insts, intOp(uint64(0x10+i*4), 2+(i%4), 9, 10))
	}
	c := runThreads(t, config.Figure2(1).WithL2Latency(64), insts)
	// Miss returns around cycle ~70; in-order graduation forces the drain
	// past it.
	if c.Now() < 64 {
		t.Fatalf("drained at cycle %d, before the miss could return", c.Now())
	}
}

func TestROBBackpressureBoundsRunahead(t *testing.T) {
	// A tiny ROB caps how far the AP can slip past a blocked load at the
	// ROB head: the tight machine must be slower on a miss-heavy stream.
	tight := config.Figure2(1).WithL2Latency(128)
	tight.ROBSize = 8
	wide := config.Figure2(1).WithL2Latency(128)
	mk := func() []isa.Inst { return slipTrace(600) }
	a := runThreads(t, tight, mk())
	b := runThreads(t, wide, mk())
	if a.Now() <= b.Now() {
		t.Fatalf("8-entry ROB (%d cycles) not slower than 128-entry (%d)", a.Now(), b.Now())
	}
}

func TestPortContentionSlowsLoads(t *testing.T) {
	// Single-ported L1 vs the Figure-2 four ports, on a load-dense stream
	// that hits in cache.
	mk := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 3000; i++ {
			// Revisit a small set of lines: everything hits after warmup.
			insts = append(insts, fpLoad(uint64(i%8*4), 8+(i%4), 1, uint64(i%64)*32))
			insts = append(insts, fpLoad(uint64(0x40+i%8*4), 12+(i%2), 2, uint64(i%64)*32+8))
		}
		return insts
	}
	one := config.Figure2(1)
	one.Mem.Ports = 1
	narrow := runThreads(t, one, mk())
	full := runThreads(t, config.Figure2(1), mk())
	if narrow.Now() <= full.Now() {
		t.Fatalf("1-port L1 (%d cycles) not slower than 4-port (%d)", narrow.Now(), full.Now())
	}
	if narrow.Mem().Stats().PortRejects == 0 {
		t.Fatal("no port rejections recorded on a 1-port cache")
	}
}
