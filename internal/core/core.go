// Package core implements the paper's primary contribution: a cycle-level
// model of a simultaneous-multithreaded, access/execute-decoupled
// processor.
//
// Each hardware context runs in decoupled mode: at dispatch, instructions
// are steered by data type to the Address Processor (integer, memory and
// branch instructions) or the Execute Processor (floating-point), each of
// which issues **in order within each thread's stream**. The per-thread
// Instruction Queue between dispatch and the EP lets the AP slip ahead,
// issuing loads long before the EP consumes their values — the decoupling
// that hides memory latency. All threads share the issue slots (full
// simultaneous issue with round-robin priority), the functional units and
// the caches; fetch picks the two threads with the fewest instructions
// pending dispatch (ICOUNT).
//
// The "non-decoupled" comparison machine of the paper (instruction queues
// disabled) is the same hardware with slippage suppressed: each thread
// issues in program order across *both* units, like a conventional
// in-order superscalar with separate integer/FP pipelines.
//
// The model is trace driven and simulates the correct path only: on a
// branch misprediction the thread's fetch freezes until the branch
// resolves in the AP (plus a one-cycle redirect), and the lost slots are
// accounted in the same "wrong-path or idle" bucket the paper uses.
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Core is the shared machine: issue logic, functional units, memory
// subsystem, plus one Context per hardware thread.
type Core struct {
	cfg  config.Machine
	mem  *mem.System
	ctxs []*Context

	now int64
	// rotate gives round-robin priority for issue, dispatch and cache
	// access across threads; it advances every cycle.
	rotate int

	col stats.Collector

	// scratch buffers reused every cycle (avoid per-cycle allocation).
	reasonBuf [isa.NumUnits][]stats.WasteReason
	fetchPick []int
	orderBuf  []int
}

// New builds a core for machine m (after applying the latency scaling
// rule) with one instruction source per thread.
func New(m config.Machine, sources []trace.Reader) (*Core, error) {
	m = m.Effective()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != m.Threads {
		return nil, fmt.Errorf("core: %d sources for %d threads", len(sources), m.Threads)
	}
	ms, err := mem.New(m.Mem)
	if err != nil {
		return nil, err
	}
	c := &Core{cfg: m, mem: ms}
	for i := 0; i < m.Threads; i++ {
		ctx, err := newContext(i, m, sources[i])
		if err != nil {
			return nil, err
		}
		c.ctxs = append(c.ctxs, ctx)
	}
	for u := range c.reasonBuf {
		c.reasonBuf[u] = make([]stats.WasteReason, 0, m.Threads)
	}
	c.fetchPick = make([]int, 0, m.Threads)
	c.orderBuf = make([]int, 0, m.Threads)
	return c, nil
}

// Config returns the effective (scaled) machine configuration.
func (c *Core) Config() config.Machine { return c.cfg }

// Mem returns the memory subsystem.
func (c *Core) Mem() *mem.System { return c.mem }

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Collector returns the statistics collector (mutable; reset between
// warm-up and measurement).
func (c *Core) Collector() *stats.Collector { return &c.col }

// Context returns thread t's context (for tests and reports).
func (c *Core) Context(t int) *Context { return c.ctxs[t] }

// Done reports whether every thread has exhausted its source and drained
// its pipeline.
func (c *Core) Done() bool {
	for _, ctx := range c.ctxs {
		if !ctx.Exhausted || ctx.InFlight() > 0 || ctx.FetchBuf.Len() > 0 {
			return false
		}
	}
	return true
}

// Tick advances the machine by one cycle. Stages run back to front so a
// value produced in cycle N is consumable in cycle N+latency and a fetched
// instruction dispatches no earlier than the following cycle.
func (c *Core) Tick() {
	c.now++
	c.col.Cycles++
	c.mem.BeginCycle(c.now)
	c.resolveBranches()
	c.graduate()
	c.cacheAccess()
	c.issue()
	c.dispatch()
	c.fetch()
	c.rotate++
}

// Run ticks until every source is drained or the cycle limit is hit; it
// returns the number of cycles executed and whether the machine drained.
func (c *Core) Run(maxCycles int64) (int64, bool) {
	start := c.now
	for !c.Done() {
		if c.now-start >= maxCycles {
			return c.now - start, false
		}
		c.Tick()
	}
	return c.now - start, true
}

// ----------------------------------------------------------------------------
// Branch resolution.

// resolveBranches retires issued branches whose AP latency has elapsed:
// releases the speculation slot and un-freezes fetch after a
// misprediction (one-cycle redirect). Predictor state is trained at fetch
// (see fetchThread): in a correct-path-only trace-driven model the fetch
// stream is the architectural branch stream, so in-order training there
// keeps history-based predictors (gshare) consistent; resolution here
// only drives the pipeline timing.
func (c *Core) resolveBranches() {
	for _, ctx := range c.ctxs {
		for i := 0; i < len(ctx.unresolvedBranches); {
			b := ctx.unresolvedBranches[i]
			if !b.Issued || b.DoneAt > c.now {
				i++
				continue
			}
			ctx.Unresolved--
			c.col.Branches++
			if b.Mispredicted {
				c.col.Mispredicts++
				if ctx.FetchBlocked == b {
					ctx.FetchBlocked = nil
					ctx.FetchResumeAt = c.now + 1 // redirect penalty
				}
			}
			ctx.unresolvedBranches = append(ctx.unresolvedBranches[:i], ctx.unresolvedBranches[i+1:]...)
		}
	}
}

// ----------------------------------------------------------------------------
// Graduation.

// graduate retires completed instructions from each ROB head in program
// order. Stores graduate by writing to the cache (write-back,
// write-allocate); a store blocked on its data operand or on a cache
// structural hazard stalls its thread's graduation, which is what bounds
// the AP's run-ahead when the EP falls far behind.
func (c *Core) graduate() {
	for k := 0; k < len(c.ctxs); k++ {
		ctx := c.ctxs[(c.rotate+k)%len(c.ctxs)]
		budget := c.cfg.GraduateWidth
		for budget > 0 {
			d, ok := ctx.ROB.Peek()
			if !ok {
				break
			}
			if d.IsStore() {
				if !c.tryCommitStore(ctx, d) {
					break
				}
			} else if d.DoneAt > c.now {
				break
			}
			ctx.ROB.Pop()
			if d.Dest.Valid() {
				ctx.file(isa.DestUnit(&d.Inst)).Free(d.POld)
			}
			c.col.Graduated++
			c.col.GraduatedByOp[d.Op]++
			ctx.release(d)
			budget--
		}
	}
}

// tryCommitStore attempts to write the store at the ROB head into the
// cache. It returns false if the store is not ready (address not yet
// computed, data operand not ready) or the cache rejected it this cycle.
func (c *Core) tryCommitStore(ctx *Context, d *DynInst) bool {
	if !d.Issued || c.now < d.AccessAt {
		return false // address not computed yet
	}
	if !ctx.file(d.Src1File).Ready(d.PSrc1, c.now) {
		return false // store data not produced yet
	}
	res := c.mem.StoreCommit(d.Addr)
	if !res.OK {
		return false // port or MSHR pressure: retry next cycle
	}
	// The SAQ is FIFO in program order and stores graduate in program
	// order, so the head must be this store.
	head, ok := ctx.SAQ.Pop()
	if !ok || head != d {
		panic("core: SAQ out of sync with ROB")
	}
	return true
}

// ----------------------------------------------------------------------------
// Cache access for loads.

// cacheAccess sends issued loads to the data cache in age order per
// thread, with round-robin priority across threads. A load first checks
// the SAQ for an older store to an overlapping address: with forwarding
// enabled it takes the store's data once ready; otherwise it waits until
// the store has committed (the paper's SAQ only lets loads bypass
// *non-conflicting* stores).
func (c *Core) cacheAccess() {
	for k := 0; k < len(c.ctxs); k++ {
		ctx := c.ctxs[(c.rotate+k)%len(c.ctxs)]
		keep := ctx.PendingAccess[:0]
		blocked := false // once one access is rejected, keep age order
		for _, d := range ctx.PendingAccess {
			if blocked || d.AccessAt > c.now {
				keep = append(keep, d)
				continue
			}
			switch c.tryLoad(ctx, d) {
			case loadDone:
				// dropped from pending
			case loadRetry:
				keep = append(keep, d)
				blocked = true
			}
		}
		ctx.PendingAccess = keep
	}
}

type loadOutcome uint8

const (
	loadDone loadOutcome = iota
	loadRetry
)

// tryLoad attempts one load's cache access.
func (c *Core) tryLoad(ctx *Context, d *DynInst) loadOutcome {
	// Older conflicting store in the SAQ? (All older stores have computed
	// their addresses: the AP issues in order, so any store still awaiting
	// its address is younger than d.)
	for i := 0; i < ctx.SAQ.Len(); i++ {
		st := ctx.SAQ.At(i)
		if st.Seq >= d.Seq {
			break // SAQ is in program order; the rest are younger
		}
		if !st.Issued || c.now < st.AccessAt {
			continue // address not known yet; store is younger in AP order anyway
		}
		if !overlaps(d, st) {
			continue
		}
		if c.cfg.StoreForwarding && ctx.file(st.Src1File).Ready(st.PSrc1, c.now) {
			// Forward the store data to the load.
			c.completeLoad(ctx, d, c.now+1, false)
			c.col.StoreForwards++
			return loadDone
		}
		c.col.LoadConflictStalls++
		return loadRetry
	}
	res := c.mem.Load(d.Addr)
	if !res.OK {
		if res.Stall == mem.StallMSHR {
			// The load is queued behind a full MSHR file: it will almost
			// certainly miss. Mark its destination now so consumers
			// blocked on it are classified (and sampled) as memory
			// stalls rather than FU stalls.
			file := isa.DestUnit(&d.Inst)
			if !ctx.Meta[file][d.PDest].MissedLoad {
				ctx.Meta[file][d.PDest] = regMeta{MissedLoad: true}
			}
		}
		return loadRetry
	}
	c.completeLoad(ctx, d, res.ReadyAt, res.Miss)
	return loadDone
}

// completeLoad records a load's data delivery time and, for misses, the
// per-register metadata driving stall classification and the
// perceived-latency samples.
func (c *Core) completeLoad(ctx *Context, d *DynInst, readyAt int64, miss bool) {
	d.Sent = true
	d.Missed = miss
	d.DoneAt = readyAt
	file := isa.DestUnit(&d.Inst)
	ctx.file(file).SetReadyAt(d.PDest, readyAt)
	if miss {
		// Preserve the Sampled flag: a consumer may already have flushed
		// its sample while the access was queued on a full MSHR file.
		ctx.Meta[file][d.PDest].MissedLoad = true
	}
}

// overlaps reports whether a load and a store touch overlapping bytes.
func overlaps(ld, st *DynInst) bool {
	ls, le := ld.Addr, ld.Addr+uint64(ld.Size)
	ss, se := st.Addr, st.Addr+uint64(st.Size)
	return ls < se && ss < le
}

// ----------------------------------------------------------------------------
// Dispatch.

// dispatch renames and steers instructions from the fetch buffers into
// the issue queues, round-robin across threads, up to DispatchWidth per
// cycle, stopping a thread at its first unavailable resource (in-order
// dispatch with back-pressure).
func (c *Core) dispatch() {
	budget := c.cfg.DispatchWidth
	for k := 0; k < len(c.ctxs) && budget > 0; k++ {
		ctx := c.ctxs[(c.rotate+k)%len(c.ctxs)]
		for budget > 0 {
			d, ok := ctx.FetchBuf.Peek()
			if !ok {
				break
			}
			if !c.tryDispatch(ctx, d) {
				c.col.DispatchStalls++
				break
			}
			ctx.FetchBuf.Pop()
			budget--
		}
	}
}

// tryDispatch allocates every resource the instruction needs; on any
// shortage it leaves the machine untouched and reports failure.
func (c *Core) tryDispatch(ctx *Context, d *DynInst) bool {
	if ctx.ROB.Full() {
		return false
	}
	var q = ctx.APQ
	if d.Unit == isa.EP {
		q = ctx.EPQ
	}
	if q.Full() {
		return false
	}
	if d.IsStore() && ctx.SAQ.Full() {
		return false
	}
	destFile := isa.DestUnit(&d.Inst)
	if d.Dest.Valid() && ctx.file(destFile).FreeCount() == 0 {
		return false
	}
	// All resources available: rename.
	if d.Src1.Valid() {
		d.Src1File = isa.RegUnit(d.Src1)
		d.PSrc1 = ctx.Map.Get(d.Src1)
	}
	if d.Src2.Valid() {
		d.Src2File = isa.RegUnit(d.Src2)
		d.PSrc2 = ctx.Map.Get(d.Src2)
	}
	if d.Dest.Valid() {
		p, ok := ctx.file(destFile).Alloc()
		if !ok {
			panic("core: register file exhausted after FreeCount check")
		}
		d.PDest = p
		d.POld = ctx.Map.Set(d.Dest, p)
		ctx.Meta[destFile][p] = regMeta{}
	}
	ctx.ROB.Push(d)
	q.Push(d)
	if d.IsStore() {
		ctx.SAQ.Push(d)
	}
	return true
}

// ----------------------------------------------------------------------------
// Fetch.

// fetch brings instructions from the per-thread sources into the fetch
// buffers: up to FetchThreads threads per cycle (chosen by ICOUNT or
// round-robin), up to FetchWidth consecutive instructions each, stopping
// at a predicted-taken branch, a full buffer, the control-speculation
// limit, or a misprediction (which freezes the thread until resolution).
func (c *Core) fetch() {
	c.fetchPick = c.fetchPick[:0]
	for k := 0; k < len(c.ctxs); k++ {
		t := (c.rotate + k) % len(c.ctxs)
		ctx := c.ctxs[t]
		if ctx.FetchBlocked != nil || c.now < ctx.FetchResumeAt || ctx.FetchBuf.Full() {
			continue
		}
		if _, ok := ctx.peekSource(); !ok {
			continue
		}
		c.fetchPick = append(c.fetchPick, t)
	}
	if c.cfg.FetchPolicy != config.FetchRoundRobin {
		// ICOUNT: fewest instructions pending dispatch first. Stable
		// insertion sort over the rotated order keeps ties round-robin.
		p := c.fetchPick
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && c.ctxs[p[j]].FetchBuf.Len() < c.ctxs[p[j-1]].FetchBuf.Len(); j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
	}
	n := c.cfg.FetchThreads
	if n > len(c.fetchPick) {
		n = len(c.fetchPick)
	}
	for _, t := range c.fetchPick[:n] {
		c.fetchThread(c.ctxs[t])
	}
}

// fetchThread fetches up to FetchWidth instructions for one thread.
func (c *Core) fetchThread(ctx *Context) {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if ctx.FetchBuf.Full() {
			return
		}
		in, ok := ctx.peekSource()
		if !ok {
			return
		}
		if in.IsBranch() && ctx.Unresolved >= c.cfg.MaxUnresolvedBranches {
			return // speculation limit: leave the branch for later
		}
		d := ctx.alloc()
		d.Inst = *in
		ctx.consumeSource()
		d.FetchedAt = c.now
		d.Thread = ctx.ID
		d.Seq = ctx.NextSeq
		ctx.NextSeq++
		d.Unit = isa.Steer(&d.Inst)
		ctx.FetchBuf.Push(d)
		c.col.FetchedInsts++

		if d.IsBranch() {
			ctx.Unresolved++
			ctx.unresolvedBranches = append(ctx.unresolvedBranches, d)
			predicted := ctx.Pred.Predict(d.PC)
			ctx.Pred.Update(d.PC, d.Taken)
			if predicted != d.Taken {
				d.Mispredicted = true
				ctx.FetchBlocked = d
				return // wrong path from here: freeze until resolution
			}
			if d.Taken {
				return // fetch stops at a (correctly) predicted-taken branch
			}
		}
	}
}
