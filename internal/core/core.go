// Package core implements the paper's primary contribution: a cycle-level
// model of a simultaneous-multithreaded, access/execute-decoupled
// processor.
//
// Each hardware context runs in decoupled mode: at dispatch, instructions
// are steered by data type to the Address Processor (integer, memory and
// branch instructions) or the Execute Processor (floating-point), each of
// which issues **in order within each thread's stream**. The per-thread
// Instruction Queue between dispatch and the EP lets the AP slip ahead,
// issuing loads long before the EP consumes their values — the decoupling
// that hides memory latency. All threads share the issue slots (full
// simultaneous issue with round-robin priority), the functional units and
// the caches; fetch picks the two threads with the fewest instructions
// pending dispatch (ICOUNT).
//
// The "non-decoupled" comparison machine of the paper (instruction queues
// disabled) is the same hardware with slippage suppressed: each thread
// issues in program order across *both* units, like a conventional
// in-order superscalar with separate integer/FP pipelines.
//
// The model is trace driven and simulates the correct path only: on a
// branch misprediction the thread's fetch freezes until the branch
// resolves in the AP (plus a one-cycle redirect), and the lost slots are
// accounted in the same "wrong-path or idle" bucket the paper uses.
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/regfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Core is the shared machine: issue logic, functional units, memory
// subsystem, plus one Context per hardware thread.
type Core struct {
	cfg  config.Machine
	mem  *mem.System
	ctxs []*Context

	now int64
	// rotate gives round-robin priority for issue, dispatch and cache
	// access across threads; it advances every cycle and is kept in
	// [0, threads) so the stage walks never divide.
	rotate int

	// cal is the event calendar: every future cycle at which machine
	// state can change on its own is inserted the moment its time
	// becomes known (loads accepted, branches issued, registers
	// written, redirects), and Step's fast-forward reads the earliest
	// pending event with one O(1) peek.
	cal calendar
	// branchResolveAt is the earliest issued-branch resolution time
	// across all contexts (a lower bound; per-context exact times live
	// in Context.nextBranchResolveAt). resolveBranches skips the whole
	// stage until it is due.
	branchResolveAt int64

	col stats.Collector

	// skippedCycles counts cycles fast-forwarded over rather than ticked
	// (for reporting; they are fully accounted in the collector).
	skippedCycles int64
	// progressed reports whether the last Tick changed machine state
	// beyond the constant per-cycle stall accounting. A cycle without
	// progress is provably identical to every following cycle up to the
	// next scheduled event, which is what lets Step fast-forward.
	progressed bool
	// fetchFrozen suspends the fetch stage while DrainPipeline empties
	// the machine to the architectural boundary a functional warp
	// resumes from. Never set during exact or adaptive execution.
	fetchFrozen bool
	// dispatchStallDelta, conflictStallDelta and lodStallDelta are the
	// last Tick's increments of the corresponding collector counters,
	// replayed per skipped cycle by fastForward.
	dispatchStallDelta int64
	conflictStallDelta int64
	lodStallDelta      int64

	// spec is the resolved speculative-DAE configuration (see spec.go);
	// the zero value disables every hook.
	spec spec

	// reasonBuf counts this cycle's blocked-stream verdicts per unit and
	// reason; reasonTotal is the per-unit count of blocked streams. Both
	// are rebuilt by issue each ticked cycle and replayed verbatim per
	// skipped cycle by fastForward.
	reasonBuf   [isa.NumUnits][stats.NumWasteReasons]int32
	reasonTotal [isa.NumUnits]int32
	// memStallBuf lists the stream heads whose MemStall counter advanced
	// this cycle (rebuilt alongside reasonBuf, replayed by fastForward).
	memStallBuf []*DynInst
	fetchPick   []int
	fetchLens   []int
	orderBuf    []int
}

// New builds a core for machine m (after applying the latency scaling
// rule) with one instruction source per thread.
func New(m config.Machine, sources []trace.Reader) (*Core, error) {
	m = m.Effective()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ms, err := mem.New(m.Mem)
	if err != nil {
		return nil, err
	}
	return newCore(m, sources, ms)
}

// newCore wires a core around an already-built memory system (its own,
// from New, or a CMP interconnect slot, from NewCMP). m must already be
// effective and validated.
func newCore(m config.Machine, sources []trace.Reader, ms *mem.System) (*Core, error) {
	if len(sources) != m.Threads {
		return nil, fmt.Errorf("core: %d sources for %d threads", len(sources), m.Threads)
	}
	c := &Core{cfg: m, mem: ms, branchResolveAt: Never, spec: newSpec(m.Spec)}
	// Shared hierarchy levels (finite L2 and below) install lines — and
	// book dirty-victim write-backs on their downstream buses — at their
	// fill cycles; registering the calendar here guarantees the machine
	// ticks at exactly those cycles, so fast-forwarding stays
	// bit-identical to stepping. The default flat model books no such
	// fills and never calls back.
	ms.SetFillScheduler(func(at int64) { c.cal.schedule(c.now, at) })
	for i := 0; i < m.Threads; i++ {
		ctx, err := newContext(i, m, sources[i])
		if err != nil {
			return nil, err
		}
		c.ctxs = append(c.ctxs, ctx)
	}
	c.fetchPick = make([]int, 0, m.Threads)
	c.fetchLens = make([]int, m.Threads)
	c.orderBuf = make([]int, 0, m.Threads)
	return c, nil
}

// Config returns the effective (scaled) machine configuration.
func (c *Core) Config() config.Machine { return c.cfg }

// Mem returns the memory subsystem.
func (c *Core) Mem() *mem.System { return c.mem }

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// SkippedCycles returns how many cycles Step fast-forwarded over instead
// of simulating stage by stage. The skipped cycles are fully accounted in
// the collector; this counter only measures the scheduler's leverage.
func (c *Core) SkippedCycles() int64 { return c.skippedCycles }

// Collector returns the statistics collector (mutable; reset between
// warm-up and measurement).
func (c *Core) Collector() *stats.Collector { return &c.col }

// Context returns thread t's context (for tests and reports).
func (c *Core) Context(t int) *Context { return c.ctxs[t] }

// Done reports whether every thread has exhausted its source and drained
// its pipeline.
func (c *Core) Done() bool {
	for _, ctx := range c.ctxs {
		if !ctx.Exhausted || ctx.InFlight() > 0 || ctx.FetchBuf.Len() > 0 {
			return false
		}
	}
	return true
}

// Tick advances the machine by one cycle. Stages run back to front so a
// value produced in cycle N is consumable in cycle N+latency and a fetched
// instruction dispatches no earlier than the following cycle.
func (c *Core) Tick() {
	c.now++
	c.col.Cycles++
	c.progressed = false
	dispatchStalls := c.col.DispatchStalls
	conflictStalls := c.col.LoadConflictStalls
	lodStalls := c.col.LoDStalls
	if c.mem.BeginCycle(c.now) > 0 {
		c.progressed = true
	}
	c.resolveBranches()
	c.graduate()
	c.cacheAccess()
	c.issue()
	c.dispatch()
	c.fetch()
	c.rotate = c.rotNext(c.rotate)
	c.dispatchStallDelta = c.col.DispatchStalls - dispatchStalls
	c.conflictStallDelta = c.col.LoadConflictStalls - conflictStalls
	c.lodStallDelta = c.col.LoDStalls - lodStalls
}

// Step advances the machine by at least one cycle, fast-forwarding over
// provably idle stretches: when a Tick makes no forward progress, every
// following cycle is identical to it until the next scheduled event (a
// load or store completes, a branch resolves, fetch unfreezes, an operand
// arrives), so Step jumps directly to the cycle before that event,
// bulk-accounting the skipped cycles into the same waste buckets stepping
// would fill. Results are bit-identical to calling Tick in a loop. The
// machine never advances past the absolute cycle horizon.
func (c *Core) Step(horizon int64) {
	c.Tick()
	if c.progressed || c.now >= horizon {
		return
	}
	end := c.nextEventAt() - 1
	if end > horizon {
		end = horizon
	}
	// A tick that discovers source exhaustion can drain the machine
	// without registering progress; never skip once Done. The check runs
	// only when a non-empty skip is actually pending, keeping the
	// no-progress-but-event-imminent path (busy low-latency machines)
	// free of the context scan.
	if end > c.now && !c.Done() {
		c.fastForward(end - c.now)
	}
}

// Run advances until every source is drained or the cycle limit is hit
// (fast-forwarding over idle stretches); it returns the number of cycles
// executed and whether the machine drained.
func (c *Core) Run(maxCycles int64) (int64, bool) {
	start := c.now
	for !c.Done() {
		if c.now-start >= maxCycles {
			return c.now - start, false
		}
		c.Step(start + maxCycles)
	}
	return c.now - start, true
}

// RunStepped is Run without fast-forwarding: the golden reference the
// equivalence tests compare Run against, and the baseline the speedup
// benchmarks measure.
func (c *Core) RunStepped(maxCycles int64) (int64, bool) {
	start := c.now
	for !c.Done() {
		if c.now-start >= maxCycles {
			return c.now - start, false
		}
		c.Tick()
	}
	return c.now - start, true
}

// ----------------------------------------------------------------------------
// Fast-forward.

// nextEventAt returns the earliest cycle strictly after now at which the
// machine's state can change: a peek at the event calendar, into which
// every subsystem inserted its delivery times as they became known.
// Never when nothing is scheduled (the machine is deadlocked or
// drained).
func (c *Core) nextEventAt() int64 {
	return c.cal.nextAfter(c.now)
}

// fastForward bulk-accounts k cycles identical to the one just simulated.
// Only the constant per-cycle deltas of a no-progress cycle exist: the
// cycle counter, each unit's offered and wasted issue slots, the blocked
// heads' memory-stall counters, and the dispatch/load-conflict stall
// counters. The float additions are repeated rather than multiplied so the
// waste buckets stay bit-identical to stepping.
func (c *Core) fastForward(k int64) {
	c.skippedCycles += k
	for i := int64(0); i < k; i++ {
		c.col.Cycles++
		// On a no-progress cycle nothing issued, so every slot was left
		// over: accountSlots with left == width repeats the recorded
		// cycle's accounting exactly (reasonBuf still holds its reasons).
		c.accountSlots(isa.AP, c.cfg.APWidth, c.cfg.APWidth)
		c.accountSlots(isa.EP, c.cfg.EPWidth, c.cfg.EPWidth)
	}
	for _, d := range c.memStallBuf {
		d.MemStall += k
	}
	c.col.DispatchStalls += k * c.dispatchStallDelta
	c.col.LoadConflictStalls += k * c.conflictStallDelta
	c.col.LoDStalls += k * c.lodStallDelta
	c.rotate = (c.rotate + int(k%int64(len(c.ctxs)))) % len(c.ctxs)
	c.now += k
}

// rotStart returns this cycle's round-robin starting thread, and rotNext
// the following index (modulo-free wrap; rotate is maintained in range).
// Every rotated stage walk uses this pair so the rotation policy lives
// in one place.
func (c *Core) rotStart() int { return c.rotate }

func (c *Core) rotNext(t int) int {
	if t++; t == len(c.ctxs) {
		return 0
	}
	return t
}

// ----------------------------------------------------------------------------
// Branch resolution.

// resolveBranches retires issued branches whose AP latency has elapsed:
// releases the speculation slot and un-freezes fetch after a
// misprediction (one-cycle redirect). Predictor state is trained at fetch
// (see fetchThread): in a correct-path-only trace-driven model the fetch
// stream is the architectural branch stream, so in-order training there
// keeps history-based predictors (gshare) consistent; resolution here
// only drives the pipeline timing.
func (c *Core) resolveBranches() {
	// Active-set gate: branchResolveAt is the minimum of the per-context
	// resolution times (maintained at branch issue, recomputed below);
	// until it is due, no context has a due branch and the whole stage —
	// which has no per-cycle side effects when nothing retires — is
	// skipped.
	if c.now < c.branchResolveAt {
		return
	}
	min := Never
	for _, ctx := range c.ctxs {
		if c.now < ctx.nextBranchResolveAt {
			if ctx.nextBranchResolveAt < min {
				min = ctx.nextBranchResolveAt
			}
			continue // earliest issued branch is not due yet
		}
		// Branches issue in program order with a fixed latency, so
		// DoneAt is monotone along the queue: retire strictly from the
		// head, and the new head's DoneAt is the exact next bound.
		next := Never
		for {
			b, ok := ctx.issuedBranches.Peek()
			if !ok {
				break
			}
			if b.DoneAt > c.now {
				next = b.DoneAt
				break
			}
			ctx.issuedBranches.Drop()
			ctx.Unresolved--
			c.col.Branches++
			c.progressed = true
			if b.Mispredicted {
				c.col.Mispredicts++
				if ctx.FetchBlocked == b {
					// One-cycle redirect penalty. No calendar entry is
					// needed: retiring the branch set progressed, which
					// forbids skipping this cycle, and Step's next Tick
					// covers now+1 unconditionally.
					ctx.FetchBlocked = nil
					ctx.FetchResumeAt = c.now + 1
				}
			}
		}
		ctx.nextBranchResolveAt = next
		if next < min {
			min = next
		}
	}
	c.branchResolveAt = min
}

// ----------------------------------------------------------------------------
// Graduation.

// graduate retires completed instructions from each ROB head in program
// order. Stores graduate by writing to the cache (write-back,
// write-allocate); a store blocked on its data operand or on a cache
// structural hazard stalls its thread's graduation, which is what bounds
// the AP's run-ahead when the EP falls far behind.
func (c *Core) graduate() {
	t := c.rotStart()
	for k := 0; k < len(c.ctxs); k++ {
		ctx := c.ctxs[t]
		t = c.rotNext(t)
		// Active-set gate: gradNextAt is the earliest cycle this thread's
		// ROB head can possibly graduate, recorded below whenever the
		// blocking condition has a known delivery time. Skipping until
		// then is exact because the skipped walk would have returned at
		// the same check with no side effects.
		if c.now < ctx.gradNextAt {
			continue
		}
		budget := c.cfg.GraduateWidth
		var next int64
		for budget > 0 {
			d, ok := ctx.ROB.Peek()
			if !ok {
				next = Never // re-armed by the next ROB push (tryDispatch)
				break
			}
			if d.IsStore() {
				committed, retryAt := c.tryCommitStore(ctx, d)
				if !committed {
					next = retryAt
					break
				}
			} else if d.DoneAt > c.now {
				if d.DoneAt != Never {
					next = d.DoneAt // completion time known and final
				}
				break
			}
			ctx.ROB.Drop()
			c.progressed = true
			if d.Dest.Valid() {
				ctx.file(d.DestFile).Free(d.POld)
			}
			c.col.Graduated++
			c.col.GraduatedByOp[d.Op]++
			ctx.release(d)
			budget--
		}
		ctx.gradNextAt = next
	}
}

// tryCommitStore attempts to write the store at the ROB head into the
// cache. When it cannot commit — address not yet computed, data operand
// not ready, or the cache rejected it this cycle — it also returns the
// earliest cycle the attempt could succeed (0 when unknown, meaning
// retry every cycle).
func (c *Core) tryCommitStore(ctx *Context, d *DynInst) (bool, int64) {
	if !d.Issued {
		return false, 0 // address computation not even started
	}
	if c.now < d.AccessAt {
		return false, d.AccessAt // address not computed yet
	}
	if p := d.PSrc1; p != regfile.None {
		if ra := ctx.file(d.Src1File).ReadyAt(p); ra > c.now {
			if ra == regfile.NeverReady {
				return false, 0 // store data delivery not known yet
			}
			return false, ra // store data not produced yet
		}
	}
	// The probe mutates memory-system counters even when rejected, so a
	// cycle that reaches it is never skippable.
	c.progressed = true
	res := c.mem.StoreCommit(d.Addr)
	if !res.OK {
		return false, 0 // port or MSHR pressure: retry next cycle
	}
	if res.Miss {
		// The fill is a future event: it frees an MSHR (and installs the
		// line), which can unblock MSHR-rejected accesses.
		c.cal.schedule(c.now, res.ReadyAt)
	}
	// The SAQ is FIFO in program order and stores graduate in program
	// order, so the head must be this store.
	head, ok := ctx.SAQ.Pop()
	if !ok || head != d {
		panic("core: SAQ out of sync with ROB")
	}
	return true, 0
}

// ----------------------------------------------------------------------------
// Cache access for loads.

// cacheAccess sends issued loads to the data cache in age order per
// thread, with round-robin priority across threads. A load first checks
// the SAQ for an older store to an overlapping address: with forwarding
// enabled it takes the store's data once ready; otherwise it waits until
// the store has committed (the paper's SAQ only lets loads bypass
// *non-conflicting* stores).
func (c *Core) cacheAccess() {
	t := c.rotStart()
	for k := 0; k < len(c.ctxs); k++ {
		ctx := c.ctxs[t]
		t = c.rotNext(t)
		// Active-set gate: nextAccessAt is the earliest AccessAt among the
		// pending loads (or now+1 when one is blocked on a structural or
		// conflict hazard and must retry). Until it is due, the walk would
		// only rebuild the same list with no side effects.
		if len(ctx.PendingAccess) == 0 || c.now < ctx.nextAccessAt {
			continue
		}
		keep := ctx.PendingAccess[:0]
		blocked := false // once one access is rejected, keep age order
		next := Never
		for _, d := range ctx.PendingAccess {
			if blocked || d.AccessAt > c.now {
				keep = append(keep, d)
				if d.AccessAt < next {
					next = d.AccessAt
				}
				continue
			}
			switch c.tryLoad(ctx, d) {
			case loadDone:
				// dropped from pending
			case loadRetry:
				keep = append(keep, d)
				blocked = true
			}
		}
		ctx.PendingAccess = keep
		if blocked {
			next = c.now + 1
		}
		ctx.nextAccessAt = next
	}
}

type loadOutcome uint8

const (
	loadDone loadOutcome = iota
	loadRetry
	// loadProbe is internal to tryLoad: no SAQ decision was reached and
	// the load proceeds to the cache probe.
	loadProbe
)

// tryLoad attempts one load's cache access.
func (c *Core) tryLoad(ctx *Context, d *DynInst) loadOutcome {
	// Older conflicting store in the SAQ? (All older stores have computed
	// their addresses: the AP issues in order, so any store still awaiting
	// its address is younger than d.)
	outcome := loadProbe
	ctx.SAQ.Scan(func(st *DynInst) bool {
		if st.Seq >= d.Seq {
			return false // SAQ is in program order; the rest are younger
		}
		if !st.Issued || c.now < st.AccessAt {
			return true // address not known yet; store is younger in AP order anyway
		}
		if !overlaps(d, st) {
			return true
		}
		if c.cfg.StoreForwarding && ctx.file(st.Src1File).Ready(st.PSrc1, c.now) {
			// Forward the store data to the load.
			c.completeLoad(ctx, d, c.now+1, false)
			c.col.StoreForwards++
			outcome = loadDone
			return false
		}
		c.col.LoadConflictStalls++
		outcome = loadRetry
		return false
	})
	if outcome != loadProbe {
		return outcome
	}
	// The probe mutates memory-system counters even when rejected, so a
	// cycle that reaches it is never skippable.
	c.progressed = true
	res := c.mem.Load(d.Addr)
	if !res.OK {
		if res.Stall == mem.StallMSHR || res.Stall == mem.StallLowerMSHR {
			// The load is queued behind a full MSHR file (at L1 or at a
			// shared level below): it will almost certainly miss. Mark
			// its destination now so consumers blocked on it are
			// classified (and sampled) as memory stalls rather than FU
			// stalls.
			if e := ctx.files[d.DestFile].Entry(d.PDest); !e.MissedLoad {
				e.MissedLoad = true
				e.Sampled = false
			}
		}
		return loadRetry
	}
	c.completeLoad(ctx, d, res.ReadyAt, res.Miss)
	return loadDone
}

// completeLoad records a load's data delivery time and, for misses, the
// per-register metadata driving stall classification and the
// perceived-latency samples.
func (c *Core) completeLoad(ctx *Context, d *DynInst, readyAt int64, miss bool) {
	c.progressed = true
	d.Sent = true
	d.Missed = miss
	d.DoneAt = readyAt
	ctx.file(d.DestFile).SetReadyAt(d.PDest, readyAt)
	// The delivery is an event: consumers blocked on the register can
	// issue, and the load itself can graduate, at readyAt (for a primary
	// miss this is also the fill that frees the MSHR).
	c.cal.schedule(c.now, readyAt)
	if miss {
		// Preserve the Sampled flag: a consumer may already have flushed
		// its sample while the access was queued on a full MSHR file.
		ctx.files[d.DestFile].Entry(d.PDest).MissedLoad = true
	}
}

// overlaps reports whether a load and a store touch overlapping bytes.
func overlaps(ld, st *DynInst) bool {
	ls, le := ld.Addr, ld.Addr+uint64(ld.Size)
	ss, se := st.Addr, st.Addr+uint64(st.Size)
	return ls < se && ss < le
}

// ----------------------------------------------------------------------------
// Dispatch.

// dispatch renames and steers instructions from the fetch buffers into
// the issue queues, round-robin across threads, up to DispatchWidth per
// cycle, stopping a thread at its first unavailable resource (in-order
// dispatch with back-pressure).
func (c *Core) dispatch() {
	budget := c.cfg.DispatchWidth
	t := c.rotStart()
	for k := 0; k < len(c.ctxs) && budget > 0; k++ {
		ctx := c.ctxs[t]
		t = c.rotNext(t)
		for budget > 0 {
			d, ok := ctx.FetchBuf.Peek()
			if !ok {
				break
			}
			if !c.tryDispatch(ctx, d) {
				c.col.DispatchStalls++
				break
			}
			ctx.FetchBuf.Drop()
			c.progressed = true
			budget--
		}
	}
}

// tryDispatch allocates every resource the instruction needs; on any
// shortage it leaves the machine untouched and reports failure.
func (c *Core) tryDispatch(ctx *Context, d *DynInst) bool {
	if ctx.ROB.Full() {
		return false
	}
	var q = ctx.APQ
	if d.Unit == isa.EP {
		q = ctx.EPQ
	}
	if q.Full() {
		return false
	}
	if d.IsStore() && ctx.SAQ.Full() {
		return false
	}
	destFile := d.DestFile
	if d.Dest.Valid() && ctx.file(destFile).FreeCount() == 0 {
		return false
	}
	// All resources available: rename. (The source-file classification
	// already happened at fetch, fused with steering.)
	if d.Src1.Valid() {
		d.PSrc1 = ctx.Map.Get(d.Src1)
	}
	if d.Src2.Valid() {
		d.PSrc2 = ctx.Map.Get(d.Src2)
	}
	if d.Dest.Valid() {
		p, ok := ctx.file(destFile).Alloc()
		if !ok {
			panic("core: register file exhausted after FreeCount check")
		}
		d.PDest = p
		d.POld = ctx.Map.Set(d.Dest, p)
	}
	ctx.ROB.Push(d)
	if ctx.ROB.Len() == 1 {
		ctx.gradNextAt = 0 // an empty ROB parked graduation; re-arm it
	}
	q.Push(d)
	if st := &ctx.issueStall[d.Unit]; st.until == Never {
		st.until = 0 // the stream was cached empty-idle; re-arm it
	}
	if d.IsStore() {
		ctx.SAQ.Push(d)
	}
	return true
}

// ----------------------------------------------------------------------------
// Fetch.

// fetch brings instructions from the per-thread sources into the fetch
// buffers: up to FetchThreads threads per cycle (chosen by ICOUNT or
// round-robin), up to FetchWidth consecutive instructions each, stopping
// at a predicted-taken branch, a full buffer, the control-speculation
// limit, or a misprediction (which freezes the thread until resolution).
func (c *Core) fetch() {
	if c.fetchFrozen {
		return
	}
	c.fetchPick = c.fetchPick[:0]
	rot := c.rotStart()
	for k := 0; k < len(c.ctxs); k++ {
		t := rot
		rot = c.rotNext(rot)
		ctx := c.ctxs[t]
		if ctx.FetchBlocked != nil || c.now < ctx.FetchResumeAt || ctx.FetchBuf.Full() {
			continue
		}
		if _, ok := ctx.peekSource(); !ok {
			continue
		}
		if ctx.lodPending {
			// Loss of decoupling: an execute-slice value feeds the next
			// address computation, so fetch holds until this context's
			// execute queue has drained. The blocked cycles are the LoD
			// stall metric; the condition is constant across a
			// no-progress stretch, so fastForward replays the counter via
			// lodStallDelta. (EPQ drain only ever happens on a ticked
			// cycle — issue sets progressed — so the gate re-evaluates
			// exactly when it can change.)
			if ctx.EPQ.Len() > 0 {
				c.col.LoDStalls++
				continue
			}
			ctx.lodPending = false
		}
		c.fetchPick = append(c.fetchPick, t)
	}
	if c.cfg.FetchPolicy != config.FetchRoundRobin {
		// ICOUNT: fewest instructions pending dispatch first. Stable
		// insertion sort over the rotated order keeps ties round-robin;
		// the buffer lengths are read once, not per comparison.
		p := c.fetchPick
		lens := c.fetchLens[:len(p)]
		for i, t := range p {
			lens[i] = c.ctxs[t].FetchBuf.Len()
		}
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && lens[j] < lens[j-1]; j-- {
				p[j], p[j-1] = p[j-1], p[j]
				lens[j], lens[j-1] = lens[j-1], lens[j]
			}
		}
	}
	n := c.cfg.FetchThreads
	if n > len(c.fetchPick) {
		n = len(c.fetchPick)
	}
	for _, t := range c.fetchPick[:n] {
		c.fetchThread(c.ctxs[t])
	}
	// Fetch is the one rotation-sensitive stage: an eligible thread left
	// unpicked this cycle (FetchThreads limit) whose head is actually
	// fetchable will be picked within the next few rotations, so the
	// following cycles are not identical to this one even if nothing else
	// happens — forbid skipping. A thread whose head is a branch at the
	// speculation limit stays unfetchable until a resolution event and
	// does not block fast-forwarding.
	for _, t := range c.fetchPick[n:] {
		ctx := c.ctxs[t]
		if in, ok := ctx.peekSource(); ok &&
			!(in.IsBranch() && ctx.Unresolved >= c.cfg.MaxUnresolvedBranches) {
			c.progressed = true
			return
		}
	}
}

// fetchThread fetches up to FetchWidth instructions for one thread.
func (c *Core) fetchThread(ctx *Context) {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if ctx.FetchBuf.Full() {
			return
		}
		in, ok := ctx.peekSource()
		if !ok {
			return
		}
		if in.IsBranch() && ctx.Unresolved >= c.cfg.MaxUnresolvedBranches {
			return // speculation limit: leave the branch for later
		}
		d := ctx.alloc()
		d.Inst = *in
		ctx.consumeSource()
		d.FetchedAt = c.now
		d.Thread = ctx.ID
		d.Seq = ctx.NextSeq
		ctx.NextSeq++
		// Classify once at fetch, all from the shared tables: executing
		// unit, destination file, and both source files (RegUnit maps
		// NoReg to AP, which is never consulted — PSrc stays None).
		d.Unit = isa.Steer(&d.Inst)
		d.DestFile = isa.DestUnit(&d.Inst)
		d.Src1File = isa.RegUnit(d.Inst.Src1)
		d.Src2File = isa.RegUnit(d.Inst.Src2)
		ctx.FetchBuf.Push(d)
		c.progressed = true
		c.col.FetchedInsts++

		// Speculative-DAE hooks: the LoD countdown charges every fetched
		// instruction and, once armed, stops this thread's fetch after
		// the branch below is still accounted; a misspeculated hoisted
		// load squashes the stream outright.
		lod := c.spec.enabled && c.specFetched(ctx)
		if c.spec.enabled && d.IsLoad() && c.specFetchLoad(ctx, d) {
			return
		}

		if d.IsBranch() {
			ctx.Unresolved++
			predicted := ctx.Pred.Predict(d.PC)
			ctx.Pred.Update(d.PC, d.Taken)
			if predicted != d.Taken {
				d.Mispredicted = true
				ctx.FetchBlocked = d
				return // wrong path from here: freeze until resolution
			}
			if d.Taken {
				return // fetch stops at a (correctly) predicted-taken branch
			}
		}
		if lod {
			return // loss of decoupling: hold fetch until the EPQ drains
		}
	}
}
